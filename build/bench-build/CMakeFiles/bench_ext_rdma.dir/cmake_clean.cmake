file(REMOVE_RECURSE
  "../bench/bench_ext_rdma"
  "../bench/bench_ext_rdma.pdb"
  "CMakeFiles/bench_ext_rdma.dir/bench_ext_rdma.cpp.o"
  "CMakeFiles/bench_ext_rdma.dir/bench_ext_rdma.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_rdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
