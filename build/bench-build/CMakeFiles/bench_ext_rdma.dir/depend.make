# Empty dependencies file for bench_ext_rdma.
# This may be replaced when dependencies are built.
