file(REMOVE_RECURSE
  "../bench/gbench_simcore"
  "../bench/gbench_simcore.pdb"
  "CMakeFiles/gbench_simcore.dir/gbench_simcore.cpp.o"
  "CMakeFiles/gbench_simcore.dir/gbench_simcore.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbench_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
