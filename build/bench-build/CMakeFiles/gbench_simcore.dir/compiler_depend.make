# Empty compiler generated dependencies file for gbench_simcore.
# This may be replaced when dependencies are built.
