file(REMOVE_RECURSE
  "../bench/bench_fig6_multivi"
  "../bench/bench_fig6_multivi.pdb"
  "CMakeFiles/bench_fig6_multivi.dir/bench_fig6_multivi.cpp.o"
  "CMakeFiles/bench_fig6_multivi.dir/bench_fig6_multivi.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_multivi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
