file(REMOVE_RECURSE
  "../bench/bench_ext_topology"
  "../bench/bench_ext_topology.pdb"
  "CMakeFiles/bench_ext_topology.dir/bench_ext_topology.cpp.o"
  "CMakeFiles/bench_ext_topology.dir/bench_ext_topology.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
