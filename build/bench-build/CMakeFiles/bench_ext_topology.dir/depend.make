# Empty dependencies file for bench_ext_topology.
# This may be replaced when dependencies are built.
