# Empty compiler generated dependencies file for bench_cq_overhead.
# This may be replaced when dependencies are built.
