file(REMOVE_RECURSE
  "../bench/bench_cq_overhead"
  "../bench/bench_cq_overhead.pdb"
  "CMakeFiles/bench_cq_overhead.dir/bench_cq_overhead.cpp.o"
  "CMakeFiles/bench_cq_overhead.dir/bench_cq_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cq_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
