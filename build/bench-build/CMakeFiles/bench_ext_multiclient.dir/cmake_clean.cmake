file(REMOVE_RECURSE
  "../bench/bench_ext_multiclient"
  "../bench/bench_ext_multiclient.pdb"
  "CMakeFiles/bench_ext_multiclient.dir/bench_ext_multiclient.cpp.o"
  "CMakeFiles/bench_ext_multiclient.dir/bench_ext_multiclient.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multiclient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
