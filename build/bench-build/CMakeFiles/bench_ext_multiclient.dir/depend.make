# Empty dependencies file for bench_ext_multiclient.
# This may be replaced when dependencies are built.
