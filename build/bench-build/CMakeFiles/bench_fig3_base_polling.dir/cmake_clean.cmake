file(REMOVE_RECURSE
  "../bench/bench_fig3_base_polling"
  "../bench/bench_fig3_base_polling.pdb"
  "CMakeFiles/bench_fig3_base_polling.dir/bench_fig3_base_polling.cpp.o"
  "CMakeFiles/bench_fig3_base_polling.dir/bench_fig3_base_polling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_base_polling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
