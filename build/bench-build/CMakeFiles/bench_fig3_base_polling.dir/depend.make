# Empty dependencies file for bench_fig3_base_polling.
# This may be replaced when dependencies are built.
