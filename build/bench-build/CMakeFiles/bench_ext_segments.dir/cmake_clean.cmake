file(REMOVE_RECURSE
  "../bench/bench_ext_segments"
  "../bench/bench_ext_segments.pdb"
  "CMakeFiles/bench_ext_segments.dir/bench_ext_segments.cpp.o"
  "CMakeFiles/bench_ext_segments.dir/bench_ext_segments.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_segments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
