# Empty dependencies file for bench_ext_segments.
# This may be replaced when dependencies are built.
