file(REMOVE_RECURSE
  "../bench/bench_fig1_memreg"
  "../bench/bench_fig1_memreg.pdb"
  "CMakeFiles/bench_fig1_memreg.dir/bench_fig1_memreg.cpp.o"
  "CMakeFiles/bench_fig1_memreg.dir/bench_fig1_memreg.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_memreg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
