# Empty compiler generated dependencies file for bench_fig1_memreg.
# This may be replaced when dependencies are built.
