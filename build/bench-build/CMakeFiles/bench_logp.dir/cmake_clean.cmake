file(REMOVE_RECURSE
  "../bench/bench_logp"
  "../bench/bench_logp.pdb"
  "CMakeFiles/bench_logp.dir/bench_logp.cpp.o"
  "CMakeFiles/bench_logp.dir/bench_logp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_logp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
