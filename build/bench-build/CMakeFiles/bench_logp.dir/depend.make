# Empty dependencies file for bench_logp.
# This may be replaced when dependencies are built.
