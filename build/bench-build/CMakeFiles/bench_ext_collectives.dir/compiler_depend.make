# Empty compiler generated dependencies file for bench_ext_collectives.
# This may be replaced when dependencies are built.
