file(REMOVE_RECURSE
  "../bench/bench_ext_collectives"
  "../bench/bench_ext_collectives.pdb"
  "CMakeFiles/bench_ext_collectives.dir/bench_ext_collectives.cpp.o"
  "CMakeFiles/bench_ext_collectives.dir/bench_ext_collectives.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
