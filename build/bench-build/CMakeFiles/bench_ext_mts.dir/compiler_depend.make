# Empty compiler generated dependencies file for bench_ext_mts.
# This may be replaced when dependencies are built.
