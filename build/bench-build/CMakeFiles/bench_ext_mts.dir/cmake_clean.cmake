file(REMOVE_RECURSE
  "../bench/bench_ext_mts"
  "../bench/bench_ext_mts.pdb"
  "CMakeFiles/bench_ext_mts.dir/bench_ext_mts.cpp.o"
  "CMakeFiles/bench_ext_mts.dir/bench_ext_mts.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_mts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
