# Empty dependencies file for bench_table1_nondata.
# This may be replaced when dependencies are built.
