file(REMOVE_RECURSE
  "../bench/bench_table1_nondata"
  "../bench/bench_table1_nondata.pdb"
  "CMakeFiles/bench_table1_nondata.dir/bench_table1_nondata.cpp.o"
  "CMakeFiles/bench_table1_nondata.dir/bench_table1_nondata.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_nondata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
