# Empty dependencies file for bench_fig7_clientserver.
# This may be replaced when dependencies are built.
