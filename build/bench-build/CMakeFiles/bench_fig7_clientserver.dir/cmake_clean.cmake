file(REMOVE_RECURSE
  "../bench/bench_fig7_clientserver"
  "../bench/bench_fig7_clientserver.pdb"
  "CMakeFiles/bench_fig7_clientserver.dir/bench_fig7_clientserver.cpp.o"
  "CMakeFiles/bench_fig7_clientserver.dir/bench_fig7_clientserver.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_clientserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
