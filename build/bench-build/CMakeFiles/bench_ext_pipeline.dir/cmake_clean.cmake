file(REMOVE_RECURSE
  "../bench/bench_ext_pipeline"
  "../bench/bench_ext_pipeline.pdb"
  "CMakeFiles/bench_ext_pipeline.dir/bench_ext_pipeline.cpp.o"
  "CMakeFiles/bench_ext_pipeline.dir/bench_ext_pipeline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
