# Empty compiler generated dependencies file for bench_ext_async.
# This may be replaced when dependencies are built.
