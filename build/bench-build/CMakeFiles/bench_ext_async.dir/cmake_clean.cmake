file(REMOVE_RECURSE
  "../bench/bench_ext_async"
  "../bench/bench_ext_async.pdb"
  "CMakeFiles/bench_ext_async.dir/bench_ext_async.cpp.o"
  "CMakeFiles/bench_ext_async.dir/bench_ext_async.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_async.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
