
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/gbench_vipl.cpp" "bench-build/CMakeFiles/gbench_vipl.dir/gbench_vipl.cpp.o" "gcc" "bench-build/CMakeFiles/gbench_vipl.dir/gbench_vipl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vibe/CMakeFiles/vibe_suite.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/vibe_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/upper/CMakeFiles/vibe_upper.dir/DependInfo.cmake"
  "/root/repo/build/src/vipl/CMakeFiles/vibe_vipl.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/vibe_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/vibe_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/vibe_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
