# Empty dependencies file for gbench_vipl.
# This may be replaced when dependencies are built.
