file(REMOVE_RECURSE
  "../bench/gbench_vipl"
  "../bench/gbench_vipl.pdb"
  "CMakeFiles/gbench_vipl.dir/gbench_vipl.cpp.o"
  "CMakeFiles/gbench_vipl.dir/gbench_vipl.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbench_vipl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
