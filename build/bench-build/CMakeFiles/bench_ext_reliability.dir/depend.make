# Empty dependencies file for bench_ext_reliability.
# This may be replaced when dependencies are built.
