file(REMOVE_RECURSE
  "../bench/bench_ext_reliability"
  "../bench/bench_ext_reliability.pdb"
  "CMakeFiles/bench_ext_reliability.dir/bench_ext_reliability.cpp.o"
  "CMakeFiles/bench_ext_reliability.dir/bench_ext_reliability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
