file(REMOVE_RECURSE
  "../bench/bench_ext_layertax"
  "../bench/bench_ext_layertax.pdb"
  "CMakeFiles/bench_ext_layertax.dir/bench_ext_layertax.cpp.o"
  "CMakeFiles/bench_ext_layertax.dir/bench_ext_layertax.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_layertax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
