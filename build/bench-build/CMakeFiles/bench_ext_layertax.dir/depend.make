# Empty dependencies file for bench_ext_layertax.
# This may be replaced when dependencies are built.
