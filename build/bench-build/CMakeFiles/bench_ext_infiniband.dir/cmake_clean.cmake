file(REMOVE_RECURSE
  "../bench/bench_ext_infiniband"
  "../bench/bench_ext_infiniband.pdb"
  "CMakeFiles/bench_ext_infiniband.dir/bench_ext_infiniband.cpp.o"
  "CMakeFiles/bench_ext_infiniband.dir/bench_ext_infiniband.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_infiniband.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
