# Empty compiler generated dependencies file for bench_ext_infiniband.
# This may be replaced when dependencies are built.
