# Empty compiler generated dependencies file for bench_fig4_base_blocking.
# This may be replaced when dependencies are built.
