file(REMOVE_RECURSE
  "../bench/bench_fig4_base_blocking"
  "../bench/bench_fig4_base_blocking.pdb"
  "CMakeFiles/bench_fig4_base_blocking.dir/bench_fig4_base_blocking.cpp.o"
  "CMakeFiles/bench_fig4_base_blocking.dir/bench_fig4_base_blocking.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_base_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
