# Empty dependencies file for bench_fig2_memdereg.
# This may be replaced when dependencies are built.
