file(REMOVE_RECURSE
  "../bench/bench_fig2_memdereg"
  "../bench/bench_fig2_memdereg.pdb"
  "CMakeFiles/bench_fig2_memdereg.dir/bench_fig2_memdereg.cpp.o"
  "CMakeFiles/bench_fig2_memdereg.dir/bench_fig2_memdereg.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_memdereg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
