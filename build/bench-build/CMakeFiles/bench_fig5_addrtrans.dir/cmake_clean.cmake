file(REMOVE_RECURSE
  "../bench/bench_fig5_addrtrans"
  "../bench/bench_fig5_addrtrans.pdb"
  "CMakeFiles/bench_fig5_addrtrans.dir/bench_fig5_addrtrans.cpp.o"
  "CMakeFiles/bench_fig5_addrtrans.dir/bench_fig5_addrtrans.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_addrtrans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
