# Empty dependencies file for bench_fig5_addrtrans.
# This may be replaced when dependencies are built.
