file(REMOVE_RECURSE
  "CMakeFiles/vibe_upper.dir/dsm/dsm.cpp.o"
  "CMakeFiles/vibe_upper.dir/dsm/dsm.cpp.o.d"
  "CMakeFiles/vibe_upper.dir/getput/window.cpp.o"
  "CMakeFiles/vibe_upper.dir/getput/window.cpp.o.d"
  "CMakeFiles/vibe_upper.dir/msg/communicator.cpp.o"
  "CMakeFiles/vibe_upper.dir/msg/communicator.cpp.o.d"
  "CMakeFiles/vibe_upper.dir/rpc/rpc.cpp.o"
  "CMakeFiles/vibe_upper.dir/rpc/rpc.cpp.o.d"
  "CMakeFiles/vibe_upper.dir/sockets/stream.cpp.o"
  "CMakeFiles/vibe_upper.dir/sockets/stream.cpp.o.d"
  "libvibe_upper.a"
  "libvibe_upper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vibe_upper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
