
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/upper/dsm/dsm.cpp" "src/upper/CMakeFiles/vibe_upper.dir/dsm/dsm.cpp.o" "gcc" "src/upper/CMakeFiles/vibe_upper.dir/dsm/dsm.cpp.o.d"
  "/root/repo/src/upper/getput/window.cpp" "src/upper/CMakeFiles/vibe_upper.dir/getput/window.cpp.o" "gcc" "src/upper/CMakeFiles/vibe_upper.dir/getput/window.cpp.o.d"
  "/root/repo/src/upper/msg/communicator.cpp" "src/upper/CMakeFiles/vibe_upper.dir/msg/communicator.cpp.o" "gcc" "src/upper/CMakeFiles/vibe_upper.dir/msg/communicator.cpp.o.d"
  "/root/repo/src/upper/rpc/rpc.cpp" "src/upper/CMakeFiles/vibe_upper.dir/rpc/rpc.cpp.o" "gcc" "src/upper/CMakeFiles/vibe_upper.dir/rpc/rpc.cpp.o.d"
  "/root/repo/src/upper/sockets/stream.cpp" "src/upper/CMakeFiles/vibe_upper.dir/sockets/stream.cpp.o" "gcc" "src/upper/CMakeFiles/vibe_upper.dir/sockets/stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vibe/CMakeFiles/vibe_suite.dir/DependInfo.cmake"
  "/root/repo/build/src/vipl/CMakeFiles/vibe_vipl.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/vibe_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/vibe_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/vibe_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/vibe_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
