# Empty dependencies file for vibe_upper.
# This may be replaced when dependencies are built.
