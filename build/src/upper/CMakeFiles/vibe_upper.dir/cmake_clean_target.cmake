file(REMOVE_RECURSE
  "libvibe_upper.a"
)
