file(REMOVE_RECURSE
  "libvibe_simcore.a"
)
