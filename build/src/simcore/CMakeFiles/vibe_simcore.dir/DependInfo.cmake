
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simcore/engine.cpp" "src/simcore/CMakeFiles/vibe_simcore.dir/engine.cpp.o" "gcc" "src/simcore/CMakeFiles/vibe_simcore.dir/engine.cpp.o.d"
  "/root/repo/src/simcore/process.cpp" "src/simcore/CMakeFiles/vibe_simcore.dir/process.cpp.o" "gcc" "src/simcore/CMakeFiles/vibe_simcore.dir/process.cpp.o.d"
  "/root/repo/src/simcore/stats.cpp" "src/simcore/CMakeFiles/vibe_simcore.dir/stats.cpp.o" "gcc" "src/simcore/CMakeFiles/vibe_simcore.dir/stats.cpp.o.d"
  "/root/repo/src/simcore/trace.cpp" "src/simcore/CMakeFiles/vibe_simcore.dir/trace.cpp.o" "gcc" "src/simcore/CMakeFiles/vibe_simcore.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
