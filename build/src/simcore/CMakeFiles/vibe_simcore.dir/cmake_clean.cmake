file(REMOVE_RECURSE
  "CMakeFiles/vibe_simcore.dir/engine.cpp.o"
  "CMakeFiles/vibe_simcore.dir/engine.cpp.o.d"
  "CMakeFiles/vibe_simcore.dir/process.cpp.o"
  "CMakeFiles/vibe_simcore.dir/process.cpp.o.d"
  "CMakeFiles/vibe_simcore.dir/stats.cpp.o"
  "CMakeFiles/vibe_simcore.dir/stats.cpp.o.d"
  "CMakeFiles/vibe_simcore.dir/trace.cpp.o"
  "CMakeFiles/vibe_simcore.dir/trace.cpp.o.d"
  "libvibe_simcore.a"
  "libvibe_simcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vibe_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
