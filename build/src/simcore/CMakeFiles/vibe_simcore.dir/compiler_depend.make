# Empty compiler generated dependencies file for vibe_simcore.
# This may be replaced when dependencies are built.
