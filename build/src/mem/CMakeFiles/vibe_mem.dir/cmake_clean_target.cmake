file(REMOVE_RECURSE
  "libvibe_mem.a"
)
