
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/host_memory.cpp" "src/mem/CMakeFiles/vibe_mem.dir/host_memory.cpp.o" "gcc" "src/mem/CMakeFiles/vibe_mem.dir/host_memory.cpp.o.d"
  "/root/repo/src/mem/memory_registry.cpp" "src/mem/CMakeFiles/vibe_mem.dir/memory_registry.cpp.o" "gcc" "src/mem/CMakeFiles/vibe_mem.dir/memory_registry.cpp.o.d"
  "/root/repo/src/mem/tlb.cpp" "src/mem/CMakeFiles/vibe_mem.dir/tlb.cpp.o" "gcc" "src/mem/CMakeFiles/vibe_mem.dir/tlb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simcore/CMakeFiles/vibe_simcore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
