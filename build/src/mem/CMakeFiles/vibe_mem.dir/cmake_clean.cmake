file(REMOVE_RECURSE
  "CMakeFiles/vibe_mem.dir/host_memory.cpp.o"
  "CMakeFiles/vibe_mem.dir/host_memory.cpp.o.d"
  "CMakeFiles/vibe_mem.dir/memory_registry.cpp.o"
  "CMakeFiles/vibe_mem.dir/memory_registry.cpp.o.d"
  "CMakeFiles/vibe_mem.dir/tlb.cpp.o"
  "CMakeFiles/vibe_mem.dir/tlb.cpp.o.d"
  "libvibe_mem.a"
  "libvibe_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vibe_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
