# Empty dependencies file for vibe_mem.
# This may be replaced when dependencies are built.
