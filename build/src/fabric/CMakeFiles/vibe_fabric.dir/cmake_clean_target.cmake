file(REMOVE_RECURSE
  "libvibe_fabric.a"
)
