# Empty compiler generated dependencies file for vibe_fabric.
# This may be replaced when dependencies are built.
