file(REMOVE_RECURSE
  "CMakeFiles/vibe_fabric.dir/link.cpp.o"
  "CMakeFiles/vibe_fabric.dir/link.cpp.o.d"
  "CMakeFiles/vibe_fabric.dir/network.cpp.o"
  "CMakeFiles/vibe_fabric.dir/network.cpp.o.d"
  "libvibe_fabric.a"
  "libvibe_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vibe_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
