file(REMOVE_RECURSE
  "libvibe_suite.a"
)
