file(REMOVE_RECURSE
  "CMakeFiles/vibe_suite.dir/clientserver.cpp.o"
  "CMakeFiles/vibe_suite.dir/clientserver.cpp.o.d"
  "CMakeFiles/vibe_suite.dir/cluster.cpp.o"
  "CMakeFiles/vibe_suite.dir/cluster.cpp.o.d"
  "CMakeFiles/vibe_suite.dir/datatransfer.cpp.o"
  "CMakeFiles/vibe_suite.dir/datatransfer.cpp.o.d"
  "CMakeFiles/vibe_suite.dir/nondata.cpp.o"
  "CMakeFiles/vibe_suite.dir/nondata.cpp.o.d"
  "CMakeFiles/vibe_suite.dir/report.cpp.o"
  "CMakeFiles/vibe_suite.dir/report.cpp.o.d"
  "CMakeFiles/vibe_suite.dir/results.cpp.o"
  "CMakeFiles/vibe_suite.dir/results.cpp.o.d"
  "libvibe_suite.a"
  "libvibe_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vibe_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
