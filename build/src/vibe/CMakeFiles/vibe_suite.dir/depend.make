# Empty dependencies file for vibe_suite.
# This may be replaced when dependencies are built.
