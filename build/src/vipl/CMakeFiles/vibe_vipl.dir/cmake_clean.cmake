file(REMOVE_RECURSE
  "CMakeFiles/vibe_vipl.dir/provider.cpp.o"
  "CMakeFiles/vibe_vipl.dir/provider.cpp.o.d"
  "libvibe_vipl.a"
  "libvibe_vipl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vibe_vipl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
