# Empty compiler generated dependencies file for vibe_vipl.
# This may be replaced when dependencies are built.
