file(REMOVE_RECURSE
  "libvibe_vipl.a"
)
