file(REMOVE_RECURSE
  "libvibe_nic.a"
)
