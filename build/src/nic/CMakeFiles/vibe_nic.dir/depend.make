# Empty dependencies file for vibe_nic.
# This may be replaced when dependencies are built.
