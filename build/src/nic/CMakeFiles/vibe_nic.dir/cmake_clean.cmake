file(REMOVE_RECURSE
  "CMakeFiles/vibe_nic.dir/nic_device.cpp.o"
  "CMakeFiles/vibe_nic.dir/nic_device.cpp.o.d"
  "CMakeFiles/vibe_nic.dir/profiles.cpp.o"
  "CMakeFiles/vibe_nic.dir/profiles.cpp.o.d"
  "libvibe_nic.a"
  "libvibe_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vibe_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
