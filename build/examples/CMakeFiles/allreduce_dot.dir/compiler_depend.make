# Empty compiler generated dependencies file for allreduce_dot.
# This may be replaced when dependencies are built.
