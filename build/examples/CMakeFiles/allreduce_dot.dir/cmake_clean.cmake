file(REMOVE_RECURSE
  "CMakeFiles/allreduce_dot.dir/allreduce_dot.cpp.o"
  "CMakeFiles/allreduce_dot.dir/allreduce_dot.cpp.o.d"
  "allreduce_dot"
  "allreduce_dot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allreduce_dot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
