file(REMOVE_RECURSE
  "CMakeFiles/getput_stencil.dir/getput_stencil.cpp.o"
  "CMakeFiles/getput_stencil.dir/getput_stencil.cpp.o.d"
  "getput_stencil"
  "getput_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/getput_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
