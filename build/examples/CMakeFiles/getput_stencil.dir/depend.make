# Empty dependencies file for getput_stencil.
# This may be replaced when dependencies are built.
