# Empty dependencies file for vibe_survey.
# This may be replaced when dependencies are built.
