file(REMOVE_RECURSE
  "CMakeFiles/vibe_survey.dir/vibe_survey.cpp.o"
  "CMakeFiles/vibe_survey.dir/vibe_survey.cpp.o.d"
  "vibe_survey"
  "vibe_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vibe_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
