# Empty dependencies file for rpc_kv_store.
# This may be replaced when dependencies are built.
