file(REMOVE_RECURSE
  "CMakeFiles/rpc_kv_store.dir/rpc_kv_store.cpp.o"
  "CMakeFiles/rpc_kv_store.dir/rpc_kv_store.cpp.o.d"
  "rpc_kv_store"
  "rpc_kv_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_kv_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
