file(REMOVE_RECURSE
  "CMakeFiles/dsm_sor.dir/dsm_sor.cpp.o"
  "CMakeFiles/dsm_sor.dir/dsm_sor.cpp.o.d"
  "dsm_sor"
  "dsm_sor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_sor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
