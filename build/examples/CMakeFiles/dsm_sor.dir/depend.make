# Empty dependencies file for dsm_sor.
# This may be replaced when dependencies are built.
