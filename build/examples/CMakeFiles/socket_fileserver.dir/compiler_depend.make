# Empty compiler generated dependencies file for socket_fileserver.
# This may be replaced when dependencies are built.
