file(REMOVE_RECURSE
  "CMakeFiles/socket_fileserver.dir/socket_fileserver.cpp.o"
  "CMakeFiles/socket_fileserver.dir/socket_fileserver.cpp.o.d"
  "socket_fileserver"
  "socket_fileserver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socket_fileserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
