file(REMOVE_RECURSE
  "CMakeFiles/trace_debug.dir/trace_debug.cpp.o"
  "CMakeFiles/trace_debug.dir/trace_debug.cpp.o.d"
  "trace_debug"
  "trace_debug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
