# Empty compiler generated dependencies file for trace_debug.
# This may be replaced when dependencies are built.
