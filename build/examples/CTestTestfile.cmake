# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_rpc_kv_store "/root/repo/build/examples/rpc_kv_store")
set_tests_properties(example_rpc_kv_store PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_allreduce_dot "/root/repo/build/examples/allreduce_dot")
set_tests_properties(example_allreduce_dot PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_getput_stencil "/root/repo/build/examples/getput_stencil")
set_tests_properties(example_getput_stencil PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dsm_sor "/root/repo/build/examples/dsm_sor")
set_tests_properties(example_dsm_sor PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_socket_fileserver "/root/repo/build/examples/socket_fileserver")
set_tests_properties(example_socket_fileserver PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_debug "/root/repo/build/examples/trace_debug")
set_tests_properties(example_trace_debug PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_vibe_survey "/root/repo/build/examples/vibe_survey")
set_tests_properties(example_vibe_survey PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
