# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_simcore[1]_include.cmake")
include("/root/repo/build/tests/test_fabric[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_vipl[1]_include.cmake")
include("/root/repo/build/tests/test_reliability[1]_include.cmake")
include("/root/repo/build/tests/test_msg[1]_include.cmake")
include("/root/repo/build/tests/test_getput[1]_include.cmake")
include("/root/repo/build/tests/test_rpc[1]_include.cmake")
include("/root/repo/build/tests/test_calibration[1]_include.cmake")
include("/root/repo/build/tests/test_vibe_suite[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_dsm[1]_include.cmake")
include("/root/repo/build/tests/test_nic[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_raii[1]_include.cmake")
include("/root/repo/build/tests/test_sockets[1]_include.cmake")
include("/root/repo/build/tests/test_misc_coverage[1]_include.cmake")
