file(REMOVE_RECURSE
  "CMakeFiles/test_getput.dir/test_getput.cpp.o"
  "CMakeFiles/test_getput.dir/test_getput.cpp.o.d"
  "test_getput"
  "test_getput.pdb"
  "test_getput[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_getput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
