# Empty dependencies file for test_getput.
# This may be replaced when dependencies are built.
