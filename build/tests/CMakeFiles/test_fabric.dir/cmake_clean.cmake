file(REMOVE_RECURSE
  "CMakeFiles/test_fabric.dir/test_fabric.cpp.o"
  "CMakeFiles/test_fabric.dir/test_fabric.cpp.o.d"
  "test_fabric"
  "test_fabric.pdb"
  "test_fabric[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
