# Empty dependencies file for test_sockets.
# This may be replaced when dependencies are built.
