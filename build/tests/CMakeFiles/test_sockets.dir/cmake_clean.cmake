file(REMOVE_RECURSE
  "CMakeFiles/test_sockets.dir/test_sockets.cpp.o"
  "CMakeFiles/test_sockets.dir/test_sockets.cpp.o.d"
  "test_sockets"
  "test_sockets.pdb"
  "test_sockets[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sockets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
