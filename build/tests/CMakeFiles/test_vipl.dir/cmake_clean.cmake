file(REMOVE_RECURSE
  "CMakeFiles/test_vipl.dir/test_vipl.cpp.o"
  "CMakeFiles/test_vipl.dir/test_vipl.cpp.o.d"
  "test_vipl"
  "test_vipl.pdb"
  "test_vipl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vipl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
