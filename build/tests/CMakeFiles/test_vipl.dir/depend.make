# Empty dependencies file for test_vipl.
# This may be replaced when dependencies are built.
