# Empty dependencies file for test_vibe_suite.
# This may be replaced when dependencies are built.
