file(REMOVE_RECURSE
  "CMakeFiles/test_vibe_suite.dir/test_vibe_suite.cpp.o"
  "CMakeFiles/test_vibe_suite.dir/test_vibe_suite.cpp.o.d"
  "test_vibe_suite"
  "test_vibe_suite.pdb"
  "test_vibe_suite[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vibe_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
