file(REMOVE_RECURSE
  "CMakeFiles/test_nic.dir/test_nic.cpp.o"
  "CMakeFiles/test_nic.dir/test_nic.cpp.o.d"
  "test_nic"
  "test_nic.pdb"
  "test_nic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
