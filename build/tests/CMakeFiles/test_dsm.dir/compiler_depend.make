# Empty compiler generated dependencies file for test_dsm.
# This may be replaced when dependencies are built.
