# Empty dependencies file for test_reliability.
# This may be replaced when dependencies are built.
