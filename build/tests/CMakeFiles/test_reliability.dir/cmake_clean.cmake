file(REMOVE_RECURSE
  "CMakeFiles/test_reliability.dir/test_reliability.cpp.o"
  "CMakeFiles/test_reliability.dir/test_reliability.cpp.o.d"
  "test_reliability"
  "test_reliability.pdb"
  "test_reliability[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
