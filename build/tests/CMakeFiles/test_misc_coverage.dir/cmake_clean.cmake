file(REMOVE_RECURSE
  "CMakeFiles/test_misc_coverage.dir/test_misc_coverage.cpp.o"
  "CMakeFiles/test_misc_coverage.dir/test_misc_coverage.cpp.o.d"
  "test_misc_coverage"
  "test_misc_coverage.pdb"
  "test_misc_coverage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_misc_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
