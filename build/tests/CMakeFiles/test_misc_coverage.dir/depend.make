# Empty dependencies file for test_misc_coverage.
# This may be replaced when dependencies are built.
