file(REMOVE_RECURSE
  "CMakeFiles/test_raii.dir/test_raii.cpp.o"
  "CMakeFiles/test_raii.dir/test_raii.cpp.o.d"
  "test_raii"
  "test_raii.pdb"
  "test_raii[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_raii.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
