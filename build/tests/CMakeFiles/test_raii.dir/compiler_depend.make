# Empty compiler generated dependencies file for test_raii.
# This may be replaced when dependencies are built.
