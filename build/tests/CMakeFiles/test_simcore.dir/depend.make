# Empty dependencies file for test_simcore.
# This may be replaced when dependencies are built.
