# Empty dependencies file for test_msg.
# This may be replaced when dependencies are built.
