file(REMOVE_RECURSE
  "CMakeFiles/test_msg.dir/test_msg.cpp.o"
  "CMakeFiles/test_msg.dir/test_msg.cpp.o.d"
  "test_msg"
  "test_msg.pdb"
  "test_msg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
