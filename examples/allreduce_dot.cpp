// Distributed dot product with the MPI-like message layer — the
// "distributed memory programming model" scenario from the paper's §5
// future work, run on all three VIA implementation models side by side.
//
// Four ranks each own a slice of two vectors, compute their partial dot
// product, and combine it with allreduce. The example also times a ring
// exchange of the slices to show how the underlying VIA implementation
// shows through a programming-model layer.
//
//   $ ./allreduce_dot
#include <cstdio>
#include <numeric>
#include <vector>

#include "nic/profiles.hpp"
#include "upper/msg/communicator.hpp"
#include "vibe/cluster.hpp"

using namespace vibe;
using upper::msg::Communicator;

namespace {

constexpr std::uint32_t kRanks = 4;
constexpr std::size_t kSlice = 4096;  // doubles per rank

double runOnProfile(const nic::NicProfile& profile, double& ringUsec) {
  suite::ClusterConfig config;
  config.profile = profile;
  config.nodes = kRanks;
  suite::Cluster cluster(config);

  double result = 0;
  double ringTime = 0;
  std::vector<std::function<void(suite::NodeEnv&)>> programs;
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    programs.push_back([&, r](suite::NodeEnv& env) {
      auto comm = Communicator::create(env, r, kRanks, {});

      // Each rank fills its slice: x[i] = i+1, y[i] = 2 (global indices).
      std::vector<double> x(kSlice);
      std::vector<double> y(kSlice, 2.0);
      for (std::size_t i = 0; i < kSlice; ++i) {
        x[i] = static_cast<double>(r * kSlice + i + 1);
      }
      double partial = std::inner_product(x.begin(), x.end(), y.begin(), 0.0);
      const double total = comm->allreduceSum(partial);
      if (r == 0) result = total;

      // Ring shift of the x slices (32 KB rendezvous messages), timed.
      comm->barrier();
      const sim::SimTime t0 = env.now();
      const std::uint32_t next = (r + 1) % kRanks;
      const std::uint32_t prev = (r + kRanks - 1) % kRanks;
      if (r % 2 == 0) {
        comm->send(next, 1, std::as_bytes(std::span(x)));
        const auto incoming = comm->recv(prev, 1);
        (void)incoming;
      } else {
        const auto incoming = comm->recv(prev, 1);
        comm->send(next, 1, std::as_bytes(std::span(x)));
        (void)incoming;
      }
      comm->barrier();
      if (r == 0) ringTime = sim::toUsec(env.now() - t0);
    });
  }
  cluster.run(std::move(programs));
  ringUsec = ringTime;
  return result;
}

}  // namespace

int main() {
  // Analytic value of sum_{i=1..N} 2*i with N = kRanks * kSlice.
  const double n = static_cast<double>(kRanks) * kSlice;
  const double expected = n * (n + 1.0);

  std::printf("distributed dot product, %u ranks x %zu doubles\n", kRanks,
              kSlice);
  for (const auto* name : {"mvia", "bvia", "clan"}) {
    double ringUsec = 0;
    const double got = runOnProfile(nic::profileByName(name), ringUsec);
    std::printf("  %-6s dot=%.0f (expected %.0f, %s)  ring shift of 32 KB "
                "slices: %.1f us\n",
                name, got, expected, got == expected ? "exact" : "WRONG",
                ringUsec);
  }
  return 0;
}
