// A replicated-free in-memory key/value service over the RPC layer — the
// cluster client/server scenario that motivates the paper's §3.3
// programming-model benchmarks.
//
// One server node hosts the store; three client nodes hammer it with
// PUT/GET/DELETE traffic. The server multiplexes all client VIs through a
// single completion queue, exactly the design VIBe's CQ measurements
// recommend for multi-client services on hardware VIA.
//
//   $ ./rpc_kv_store
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "nic/profiles.hpp"
#include "upper/rpc/rpc.hpp"
#include "vibe/cluster.hpp"

using namespace vibe;
using upper::rpc::RpcClient;
using upper::rpc::RpcServer;

namespace {

// Methods.
constexpr std::uint32_t kPut = 1;
constexpr std::uint32_t kGet = 2;
constexpr std::uint32_t kDel = 3;
constexpr std::uint32_t kStats = 4;

std::vector<std::byte> toBytes(const std::string& s) {
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  return {p, p + s.size()};
}

std::string toString(std::span<const std::byte> b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

// Request encoding: "key\0value" for PUT, "key" for GET/DEL.
std::vector<std::byte> encodePut(const std::string& k, const std::string& v) {
  std::string s = k;
  s.push_back('\0');
  s += v;
  return toBytes(s);
}

}  // namespace

int main() {
  constexpr std::uint32_t kClients = 3;
  suite::ClusterConfig config;
  config.profile = nic::clanProfile();
  config.nodes = kClients + 1;
  suite::Cluster cluster(config);

  auto serverProgram = [&](suite::NodeEnv& env) {
    std::map<std::string, std::string> store;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    RpcServer server(env);
    server.registerMethod(kPut, [&](std::span<const std::byte> args) {
      const std::string s = toString(args);
      const auto split = s.find('\0');
      store[s.substr(0, split)] = s.substr(split + 1);
      return toBytes("ok");
    });
    server.registerMethod(kGet, [&](std::span<const std::byte> args) {
      auto it = store.find(toString(args));
      if (it == store.end()) {
        ++misses;
        return toBytes("\x01");  // miss marker
      }
      ++hits;
      return toBytes(std::string(1, '\0') + it->second);
    });
    server.registerMethod(kDel, [&](std::span<const std::byte> args) {
      return toBytes(store.erase(toString(args)) ? "1" : "0");
    });
    server.registerMethod(kStats, [&](std::span<const std::byte>) {
      char buf[96];
      std::snprintf(buf, sizeof buf, "keys=%zu hits=%llu misses=%llu",
                    store.size(), static_cast<unsigned long long>(hits),
                    static_cast<unsigned long long>(misses));
      return toBytes(buf);
    });

    server.acceptClients(kClients);
    server.serve();
    std::printf("[server] served %llu requests, final store has %zu keys\n",
                static_cast<unsigned long long>(server.requestsServed()),
                store.size());
  };

  auto clientProgram = [&](suite::NodeEnv& env) {
    const std::uint32_t me = env.nodeId;  // 1..kClients
    RpcClient client(env, /*serverNode=*/0);

    double rttSum = 0;
    int calls = 0;
    auto timedCall = [&](std::uint32_t method,
                         const std::vector<std::byte>& args) {
      auto reply = client.call(method, args);
      rttSum += client.lastRoundTripUsec();
      ++calls;
      return reply;
    };

    // Each client owns a key namespace, writes, reads back, deletes half.
    for (int i = 0; i < 20; ++i) {
      const std::string key = "c" + std::to_string(me) + "/k" +
                              std::to_string(i);
      timedCall(kPut, encodePut(key, std::string(200 + i * 37, 'v')));
    }
    for (int i = 0; i < 20; ++i) {
      const std::string key = "c" + std::to_string(me) + "/k" +
                              std::to_string(i);
      const auto reply = timedCall(kGet, toBytes(key));
      if (reply.empty() || reply[0] != std::byte{0}) {
        std::fprintf(stderr, "[client %u] lost key %s!\n", me, key.c_str());
        std::exit(1);
      }
      if (toString(reply).size() - 1 != 200 + i * 37u) {
        std::fprintf(stderr, "[client %u] wrong value size for %s\n", me,
                     key.c_str());
        std::exit(1);
      }
    }
    for (int i = 0; i < 10; ++i) {
      const std::string key = "c" + std::to_string(me) + "/k" +
                              std::to_string(i);
      timedCall(kDel, toBytes(key));
    }
    std::printf("[client %u] %d calls, mean round trip %.2f us\n", me, calls,
                rttSum / calls);
    client.shutdown();
  };

  std::vector<std::function<void(suite::NodeEnv&)>> programs;
  programs.push_back(serverProgram);
  for (std::uint32_t c = 0; c < kClients; ++c) {
    programs.push_back(clientProgram);
  }
  cluster.run(std::move(programs));

  std::printf("kv-store demo finished after %.2f simulated ms\n",
              sim::toUsec(cluster.engine().now()) / 1000.0);
  return 0;
}
