// 1-D Jacobi heat diffusion with one-sided halo exchange — the get/put /
// distributed-shared-memory scenario from the paper's §5 future work.
//
// Each of four ranks owns a block of cells in a get/put Window and, per
// iteration, puts its boundary cells into its neighbours' halo slots and
// fences. On the cLAN model the puts are true RDMA writes; on the BVIA
// model (no RDMA) the same program transparently uses the emulated
// active-message path — the capability difference VIBe's RDMA benchmark
// exposes, visible here as put-path statistics.
//
//   $ ./getput_stencil
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "nic/profiles.hpp"
#include "upper/getput/window.hpp"
#include "vibe/cluster.hpp"

using namespace vibe;
using upper::getput::Window;
using upper::getput::WindowConfig;
using upper::msg::Communicator;

namespace {

constexpr std::uint32_t kRanks = 4;
constexpr std::size_t kCells = 256;   // interior cells per rank
constexpr int kIterations = 50;

// Window layout (doubles): [0] left halo | [1..kCells] cells | [kCells+1]
// right halo.
constexpr std::uint64_t kLeftHalo = 0;
constexpr std::uint64_t kCellsOff = sizeof(double);
constexpr std::uint64_t kRightHalo = (kCells + 1) * sizeof(double);

std::span<const std::byte> bytesOf(const double& v) {
  return {reinterpret_cast<const std::byte*>(&v), sizeof(double)};
}

}  // namespace

int main() {
  for (const auto* profileName : {"clan", "bvia"}) {
    suite::ClusterConfig config;
    config.profile = nic::profileByName(profileName);
    config.nodes = kRanks;
    suite::Cluster cluster(config);

    double residual = 0;
    std::uint64_t rdmaPuts = 0;
    std::uint64_t emulatedPuts = 0;
    std::vector<std::function<void(suite::NodeEnv&)>> programs;
    for (std::uint32_t r = 0; r < kRanks; ++r) {
      programs.push_back([&, r](suite::NodeEnv& env) {
        auto comm = Communicator::create(env, r, kRanks, {});
        WindowConfig wc;
        wc.windowBytes = (kCells + 2) * sizeof(double);
        auto win = Window::create(*comm, wc);

        // Initial condition: a hot spike at the global left edge.
        std::vector<double> u(kCells, 0.0);
        if (r == 0) u[0] = 1000.0;
        auto writeCells = [&] {
          win->writeLocal(kCellsOff,
                          std::as_bytes(std::span<const double>(u)));
        };
        writeCells();
        win->fence();

        for (int it = 0; it < kIterations; ++it) {
          // Publish boundary cells into the neighbours' halos (fixed
          // boundary at the global edges).
          if (r > 0) win->put(r - 1, kRightHalo, bytesOf(u.front()));
          if (r + 1 < kRanks) win->put(r + 1, kLeftHalo, bytesOf(u.back()));
          win->fence();

          double left = (r == 0) ? 1000.0 : 0.0;
          double right = 0.0;
          auto halo = win->readLocal(kLeftHalo, sizeof(double));
          if (r > 0) std::memcpy(&left, halo.data(), sizeof(double));
          halo = win->readLocal(kRightHalo, sizeof(double));
          if (r + 1 < kRanks) std::memcpy(&right, halo.data(), sizeof(double));

          // Jacobi sweep.
          std::vector<double> next(kCells);
          for (std::size_t i = 0; i < kCells; ++i) {
            const double lo = (i == 0) ? left : u[i - 1];
            const double hi = (i == kCells - 1) ? right : u[i + 1];
            next[i] = 0.5 * (lo + hi);
          }
          u.swap(next);
          writeCells();
          win->fence();
        }

        const double partial =
            std::inner_product(u.begin(), u.end(), u.begin(), 0.0);
        const double total = comm->allreduceSum(partial);
        if (r == 0) {
          residual = std::sqrt(total);
          rdmaPuts = win->rdmaPuts();
          emulatedPuts = win->emulatedPuts();
        }
      });
    }
    cluster.run(std::move(programs));

    std::printf(
        "%-6s: ||u||_2 after %d sweeps = %.4f   puts: %llu RDMA, %llu "
        "emulated   (%.2f simulated ms)\n",
        profileName, kIterations, residual,
        static_cast<unsigned long long>(rdmaPuts),
        static_cast<unsigned long long>(emulatedPuts),
        sim::toUsec(cluster.engine().now()) / 1000.0);
  }
  std::printf("both models compute identical physics; only the transport "
              "path differs\n");
  return 0;
}
