// A blob/file server over the stream-sockets layer — the sockets-over-VIA
// scenario of the paper's ref [17]: legacy byte-stream applications riding
// a user-level SAN transport with no kernel in the data path (except on
// the M-VIA model, where the kernel IS the transport — run both and watch
// the goodput gap).
//
// Protocol: client sends "GET <name>\n"; server replies with an 8-byte
// length header followed by the blob; client verifies a checksum.
//
//   $ ./socket_fileserver
#include <cstdio>
#include <cstring>
#include <map>
#include <numeric>
#include <string>
#include <vector>

#include "nic/profiles.hpp"
#include "upper/sockets/stream.hpp"
#include "vibe/cluster.hpp"

using namespace vibe;
using upper::sockets::StreamListener;
using upper::sockets::StreamSocket;

namespace {

std::vector<std::byte> makeBlob(std::size_t len, std::uint8_t seed) {
  std::vector<std::byte> blob(len);
  for (std::size_t i = 0; i < len; ++i) {
    blob[i] = std::byte(static_cast<std::uint8_t>(seed + i * 37));
  }
  return blob;
}

std::uint64_t checksum(const std::vector<std::byte>& data) {
  std::uint64_t sum = 0;
  for (std::byte b : data) sum = sum * 131 + std::to_integer<std::uint8_t>(b);
  return sum;
}

void runOn(const char* profileName) {
  suite::ClusterConfig config;
  config.profile = nic::profileByName(profileName);
  suite::Cluster cluster(config);

  std::map<std::string, std::vector<std::byte>> files{
      {"readme.txt", makeBlob(1200, 1)},
      {"dataset.bin", makeBlob(512 * 1024, 2)},
      {"trace.log", makeBlob(64 * 1024, 3)},
  };

  double goodputMBps = 0;
  auto server = [&](suite::NodeEnv& env) {
    StreamListener listener(env, 2049);  // nfs + 0 :-)
    auto sock = listener.accept();
    for (;;) {
      // Read a line.
      std::string name;
      std::array<std::byte, 1> c;
      for (;;) {
        if (sock->recvSome(c) == 0) return;  // client closed: done
        const char ch = static_cast<char>(c[0]);
        if (ch == '\n') break;
        name.push_back(ch);
      }
      if (name.rfind("GET ", 0) != 0) return;
      const auto it = files.find(name.substr(4));
      const std::uint64_t len = it == files.end() ? 0 : it->second.size();
      std::array<std::byte, 8> header;
      std::memcpy(header.data(), &len, 8);
      sock->sendAll(header);
      if (len > 0) sock->sendAll(it->second);
    }
  };

  auto client = [&](suite::NodeEnv& env) {
    auto sock = StreamSocket::connect(env, 1, 2049);
    std::uint64_t totalBytes = 0;
    const sim::SimTime t0 = env.now();
    for (const auto& [name, blob] : files) {
      const std::string request = "GET " + name + "\n";
      sock->sendAll(std::as_bytes(std::span(request)));
      std::array<std::byte, 8> header;
      sock->recvAll(header);
      std::uint64_t len = 0;
      std::memcpy(&len, header.data(), 8);
      std::vector<std::byte> blobIn(len);
      sock->recvAll(blobIn);
      if (checksum(blobIn) != checksum(blob)) {
        std::fprintf(stderr, "checksum mismatch for %s!\n", name.c_str());
        std::exit(1);
      }
      totalBytes += len;
    }
    const double sec = sim::toSec(env.now() - t0);
    goodputMBps = static_cast<double>(totalBytes) / (sec * 1e6);
    sock->close();
  };

  cluster.run({client, server});
  std::printf("  %-24s %8.2f MB/s goodput over the socket stream\n",
              config.profile.name.c_str(), goodputMBps);
}

}  // namespace

int main() {
  std::printf("fetching 3 blobs (1.2 KB / 64 KB / 512 KB) per transport:\n");
  for (const char* p : {"clan", "bvia", "mvia"}) runOn(p);
  std::printf("all checksums verified.\n");
  return 0;
}
