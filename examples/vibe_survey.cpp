// VIBe survey: runs a condensed version of the whole micro-benchmark suite
// against one VIA implementation model and prints a report — the tool a
// VIA developer would run first against a new implementation. The heavy
// lifting lives in the suite library (vibe/report.hpp); the per-figure
// bench binaries in bench/ print the full paper tables.
//
//   $ ./vibe_survey [mvia|bvia|clan|firmvia]
#include <cstdio>
#include <string>

#include "nic/profiles.hpp"
#include "vibe/report.hpp"

int main(int argc, char** argv) {
  using namespace vibe;
  const std::string which = argc > 1 ? argv[1] : "clan";
  const nic::NicProfile profile = nic::profileByName(which);
  const suite::SurveyResult result = suite::runSurvey(profile);
  std::fputs(suite::renderSurvey(result).c_str(), stdout);
  return 0;
}
