// Red-black successive over-relaxation on a shared 1-D grid over the DSM
// layer — the canonical TreadMarks-class workload, here running on the
// software distributed shared memory the paper lists as future work (§5,
// and the authors' own ref [7], "Implementing TreadMarks over VIA").
//
// The grid lives in one DsmRegion; each rank sweeps a block of cells.
// Red/black phases plus DSM barriers give a data-race-free schedule; the
// page cache means interior cells are local after the first sweep, and
// only the block-boundary pages move between ranks each iteration.
//
//   $ ./dsm_sor
#include <cmath>
#include <cstdio>
#include <vector>

#include "nic/profiles.hpp"
#include "upper/dsm/dsm.hpp"
#include "vibe/cluster.hpp"

using namespace vibe;
using upper::dsm::DsmConfig;
using upper::dsm::DsmRegion;
using upper::msg::Communicator;

namespace {

constexpr std::uint32_t kRanks = 4;
constexpr std::uint32_t kCells = 512;
constexpr int kSweeps = 12;
constexpr double kOmega = 1.5;

std::uint64_t at(std::uint32_t i) { return i * sizeof(double); }

}  // namespace

int main() {
  suite::ClusterConfig config;
  config.profile = nic::clanProfile();
  config.nodes = kRanks;
  suite::Cluster cluster(config);

  double finalResidual = 0;
  std::uint64_t remoteReads = 0;
  std::uint64_t writeThroughs = 0;

  std::vector<std::function<void(suite::NodeEnv&)>> programs;
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    programs.push_back([&, r](suite::NodeEnv& env) {
      auto comm = Communicator::create(env, r, kRanks, {});
      DsmConfig dc;
      dc.pageBytes = 512;  // 64 doubles per page
      auto dsm = DsmRegion::create(*comm, kCells * sizeof(double), dc);

      // Boundary conditions: 100 at both ends, 0 inside (rank 0 writes).
      if (r == 0) {
        dsm->writeDouble(at(0), 100.0);
        dsm->writeDouble(at(kCells - 1), 100.0);
      }
      dsm->barrier();

      const std::uint32_t per = kCells / kRanks;
      const std::uint32_t lo = std::max<std::uint32_t>(1, r * per);
      const std::uint32_t hi =
          std::min<std::uint32_t>(kCells - 1, (r + 1) * per);

      for (int sweep = 0; sweep < kSweeps; ++sweep) {
        for (const int colour : {0, 1}) {  // red, then black
          for (std::uint32_t i = lo + ((lo % 2) != (unsigned)colour ? 1 : 0);
               i < hi; i += 2) {
            const double left = dsm->readDouble(at(i - 1));
            const double right = dsm->readDouble(at(i + 1));
            const double old = dsm->readDouble(at(i));
            dsm->writeDouble(at(i),
                             (1 - kOmega) * old + kOmega * 0.5 * (left + right));
          }
          dsm->barrier();
        }
      }

      // Residual: distance from the exact linear solution (==100 line).
      double partial = 0;
      for (std::uint32_t i = lo; i < hi; ++i) {
        const double d = dsm->readDouble(at(i)) - 100.0;
        partial += d * d;
      }
      const double total = comm->allreduceSum(partial);
      if (r == 0) {
        finalResidual = std::sqrt(total);
        remoteReads = dsm->remoteReads();
        writeThroughs = dsm->writeThroughs();
      }
      dsm->barrier();
    });
  }
  cluster.run(std::move(programs));

  std::printf("red-black SOR, %u cells on %u ranks, %d sweeps\n", kCells,
              kRanks, kSweeps);
  std::printf("  ||u-100||_2 = %.3f (decreases with more sweeps)\n",
              finalResidual);
  std::printf("  rank 0 DSM traffic: %llu remote page reads, %llu "
              "write-throughs\n",
              static_cast<unsigned long long>(remoteReads),
              static_cast<unsigned long long>(writeThroughs));
  std::printf("  simulated time: %.2f ms\n",
              sim::toUsec(cluster.engine().now()) / 1000.0);
  return 0;
}
