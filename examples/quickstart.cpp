// Quickstart: the smallest complete VIPL program.
//
// Builds a two-host simulated SAN with the cLAN hardware-VIA model,
// connects a VI pair, exchanges a greeting, and runs a short ping-pong —
// the canonical first VIA program, written against the spec-named API.
//
//   $ ./quickstart
#include <cstdio>
#include <cstring>
#include <string>

#include "nic/profiles.hpp"
#include "vibe/cluster.hpp"
#include "vipl/vipl.hpp"

using namespace vibe;
using vipl::PendingConn;
using vipl::Vi;
using vipl::VipDescriptor;
using vipl::VipResult;

namespace {

constexpr std::uint64_t kService = 42;  // connection discriminator
constexpr std::uint32_t kBufBytes = 4096;

void check(VipResult r, const char* what) {
  if (r != VipResult::VIP_SUCCESS) {
    std::fprintf(stderr, "%s failed: %s\n", what, vipl::toString(r));
    std::exit(1);
  }
}

}  // namespace

int main() {
  suite::ClusterConfig config;
  config.profile = nic::clanProfile();  // try mviaProfile() / bviaProfile()
  config.nodes = 2;
  suite::Cluster cluster(config);

  auto client = [&](suite::NodeEnv& env) {
    vipl::Provider& nic = env.nic;

    // 1. Protection tag + registered buffer.
    const mem::PtagId ptag = vipl::VipCreatePtag(nic);
    const mem::VirtAddr buf = nic.memory().alloc(kBufBytes, mem::kPageSize);
    mem::MemHandle handle = 0;
    check(vipl::VipRegisterMem(nic, buf, kBufBytes, {ptag, false, false},
                               handle),
          "VipRegisterMem");

    // 2. Create a VI and connect to the server by name.
    vipl::VipViAttributes attrs;
    attrs.ptag = ptag;
    attrs.reliabilityLevel = nic::Reliability::ReliableDelivery;
    Vi* vi = nullptr;
    check(vipl::VipCreateVi(nic, attrs, nullptr, nullptr, vi), "VipCreateVi");
    fabric::NodeId server = 0;
    check(vipl::VipNSGetHostByName(nic, "node1", server),
          "VipNSGetHostByName");
    check(vipl::VipConnectRequest(nic, vi, {server, kService}, sim::kSecond),
          "VipConnectRequest");

    // 3. Send a greeting; the reply arrives in the same buffer.
    const std::string hello = "hello, VIA!";
    nic.memory().write(buf, std::as_bytes(std::span(hello)));
    VipDescriptor recvD = VipDescriptor::recv(buf, handle, kBufBytes);
    check(vipl::VipPostRecv(nic, vi, &recvD), "VipPostRecv");
    VipDescriptor sendD = VipDescriptor::send(
        buf, handle, static_cast<std::uint32_t>(hello.size()));
    check(vipl::VipPostSend(nic, vi, &sendD), "VipPostSend");
    VipDescriptor* done = nullptr;
    check(nic.pollSend(vi, done), "send completion");
    check(nic.pollRecv(vi, done), "reply");
    std::string reply(done->cs.length, '\0');
    nic.memory().read(buf, std::as_writable_bytes(std::span(reply)));
    std::printf("client got: \"%s\" (%u bytes) at t=%.1f us\n", reply.c_str(),
                done->cs.length, sim::toUsec(env.now()));

    // 4. A quick ping-pong latency measurement.
    constexpr int kIters = 200;
    const sim::SimTime t0 = env.now();
    for (int i = 0; i < kIters; ++i) {
      VipDescriptor r = VipDescriptor::recv(buf, handle, 4);
      check(vipl::VipPostRecv(nic, vi, &r), "post recv");
      VipDescriptor s = VipDescriptor::send(buf, handle, 4);
      check(vipl::VipPostSend(nic, vi, &s), "post send");
      check(nic.pollRecv(vi, done), "pong");
      check(nic.pollSend(vi, done), "ping completion");
    }
    std::printf("4-byte one-way latency on %s: %.2f us\n",
                nic.profile().name.c_str(),
                sim::toUsec(env.now() - t0) / (2.0 * kIters));
    check(vipl::VipDisconnect(nic, vi), "VipDisconnect");
  };

  auto server = [&](suite::NodeEnv& env) {
    vipl::Provider& nic = env.nic;
    const mem::PtagId ptag = vipl::VipCreatePtag(nic);
    const mem::VirtAddr buf = nic.memory().alloc(kBufBytes, mem::kPageSize);
    mem::MemHandle handle = 0;
    check(vipl::VipRegisterMem(nic, buf, kBufBytes, {ptag, false, false},
                               handle),
          "VipRegisterMem");
    vipl::VipViAttributes attrs;
    attrs.ptag = ptag;
    attrs.reliabilityLevel = nic::Reliability::ReliableDelivery;
    Vi* vi = nullptr;
    check(vipl::VipCreateVi(nic, attrs, nullptr, nullptr, vi), "VipCreateVi");

    VipDescriptor first = VipDescriptor::recv(buf, handle, kBufBytes);
    check(vipl::VipPostRecv(nic, vi, &first), "prepost");
    PendingConn conn;
    check(vipl::VipConnectWait(nic, {env.nodeId, kService}, sim::kSecond,
                               conn),
          "VipConnectWait");
    check(vipl::VipConnectAccept(nic, conn, vi), "VipConnectAccept");

    // Greeting: upper-case it and send it back.
    VipDescriptor* done = nullptr;
    check(nic.pollRecv(vi, done), "greeting");
    std::string text(done->cs.length, '\0');
    nic.memory().read(buf, std::as_writable_bytes(std::span(text)));
    for (char& c : text) c = static_cast<char>(std::toupper(c));
    nic.memory().write(buf, std::as_bytes(std::span(text)));
    VipDescriptor reply = VipDescriptor::send(
        buf, handle, static_cast<std::uint32_t>(text.size()));
    check(vipl::VipPostSend(nic, vi, &reply), "reply");
    check(nic.pollSend(vi, done), "reply completion");

    // Ping-pong responder.
    for (int i = 0; i < 200; ++i) {
      VipDescriptor r = VipDescriptor::recv(buf, handle, 4);
      check(vipl::VipPostRecv(nic, vi, &r), "post recv");
      check(nic.pollRecv(vi, done), "ping");
      VipDescriptor s = VipDescriptor::send(buf, handle, 4);
      check(vipl::VipPostSend(nic, vi, &s), "post pong");
      check(nic.pollSend(vi, done), "pong completion");
    }
  };

  cluster.run({client, server});
  std::printf("quickstart finished cleanly after %.1f simulated us\n",
              sim::toUsec(cluster.engine().now()));
  return 0;
}
