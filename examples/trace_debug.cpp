// Debugging a VIA implementation with the tracer — the workflow a VIA
// developer would use when a VIBe number looks wrong: attach a Tracer to
// the NIC models, rerun the offending scenario, and read the datapath
// timeline (doorbells, fragments on the wire, RX processing, completions,
// retransmissions, translation-cache misses).
//
// The scenario here: one 6 KB reliable message on a fabric that drops 40%
// of frames — the timeline shows the initial fragments, the RTO firing,
// and the go-back-N replay until the receipt ack lands.
//
//   $ ./trace_debug
#include <cstdio>

#include "nic/profiles.hpp"
#include "simcore/trace.hpp"
#include "vibe/cluster.hpp"
#include "vipl/raii.hpp"
#include "vipl/vipl.hpp"

using namespace vibe;

int main() {
  suite::ClusterConfig config;
  config.profile = nic::clanProfile();
  config.lossRate = 0.4;
  config.seed = 1302;
  suite::Cluster cluster(config);

  sim::Tracer tracer(1 << 14);
  tracer.enable(sim::TraceCategory::Doorbell);
  tracer.enable(sim::TraceCategory::Wire);
  tracer.enable(sim::TraceCategory::Rx);
  tracer.enable(sim::TraceCategory::Reliability);
  tracer.enable(sim::TraceCategory::Completion);
  cluster.node(0).device().setTracer(&tracer);
  cluster.node(1).device().setTracer(&tracer);

  auto sender = [&](suite::NodeEnv& env) {
    vipl::Provider& nic = env.nic;
    vipl::ScopedPtag ptag(nic);
    vipl::RegisteredBuffer buf(nic, 6144, ptag.get());
    vipl::VipViAttributes attrs;
    attrs.ptag = ptag.get();
    attrs.reliabilityLevel = nic::Reliability::ReliableDelivery;
    vipl::ScopedVi vi(nic, attrs);
    vipl::VipConnectRequest(nic, vi.get(), {1, 7}, sim::kSecond * 30);
    auto d = buf.sendDesc(6144);
    vipl::VipPostSend(nic, vi.get(), &d);
    vipl::VipDescriptor* done = nullptr;
    nic.sendWait(vi.get(), sim::kSecond * 30, done);
    std::printf("send completed %s after %.1f us (40%% frame loss)\n\n",
                d.cs.status.ok() ? "OK" : "with error",
                sim::toUsec(env.now()));
    // The ScopedVi destructor disconnects; the receiver lingers until then
    // so a lost final ack cannot abort our completion.
  };
  auto receiver = [&](suite::NodeEnv& env) {
    vipl::Provider& nic = env.nic;
    vipl::ScopedPtag ptag(nic);
    vipl::RegisteredBuffer buf(nic, 6144, ptag.get());
    vipl::VipViAttributes attrs;
    attrs.ptag = ptag.get();
    attrs.reliabilityLevel = nic::Reliability::ReliableDelivery;
    vipl::ScopedVi vi(nic, attrs);
    auto d = buf.recvDesc();
    vipl::VipPostRecv(nic, vi.get(), &d);
    vipl::PendingConn conn;
    vipl::VipConnectWait(nic, {1, 7}, sim::kSecond * 30, conn);
    vipl::VipConnectAccept(nic, conn, vi.get());
    vipl::VipDescriptor* done = nullptr;
    nic.recvWait(vi.get(), sim::kSecond * 30, done);
    // Stay connected until the sender is done: its completion may need
    // retransmitted acks that a premature disconnect would abort.
    while (vi->state() == vipl::ViState::Connected) {
      env.self.advance(sim::usec(100), sim::CpuUse::Idle);
    }
  };
  cluster.run({sender, receiver});

  std::printf("datapath timeline (n0 = sender, n1 = receiver):\n%s",
              tracer.dump().c_str());
  std::printf("\n%llu records total; look for [reliability] RTO lines — each\n"
              "is a go-back-N replay of the unacked window.\n",
              static_cast<unsigned long long>(tracer.totalRecorded()));
  return 0;
}
