// Fig. 5: impact of virtual-to-physical address translation — latency and
// bandwidth vs percentage of send/receive buffer reuse, for BVIA (the model
// whose NIC translates through a host-table-backed software cache).
// M-VIA and cLAN are insensitive to buffer reuse and are printed as
// controls, as the paper notes their results do not change significantly.
#include <cstdio>

#include "bench_common.hpp"
#include "vibe/datatransfer.hpp"

int main(int argc, char** argv) {
  using namespace vibe;
  using namespace vibe::bench;
  parseStatsFlag(argc, argv);

  printHeader("Impact of address translation (buffer reuse %)",
              "Fig. 5: BVIA latency rises and bandwidth falls as reuse "
              "drops; the effect grows with message size (more pages per "
              "message); M-VIA/cLAN unaffected");

  const int reuseLevels[] = {100, 75, 50, 25, 0};
  const std::uint64_t sizes[] = {4, 1024, 4096, 12288, 28672};

  suite::ResultTable lat(
      "BVIA one-way latency (us) vs reuse%",
      {"bytes", "r100", "r75", "r50", "r25", "r0"});
  suite::ResultTable bw(
      "BVIA bandwidth (MB/s) vs reuse%",
      {"bytes", "r100", "r75", "r50", "r25", "r0"});

  const auto bvia = nic::bviaProfile();
  for (const std::uint64_t size : sizes) {
    std::vector<double> latRow{static_cast<double>(size)};
    std::vector<double> bwRow{static_cast<double>(size)};
    for (const int reuse : reuseLevels) {
      suite::TransferConfig cfg;
      cfg.msgBytes = size;
      cfg.reusePercent = reuse;
      cfg.bufferPool = reuse == 100 ? 1 : 160;  // overwhelm the 64-entry TLB
      cfg.iterations = 200;
      cfg.warmup = 20;
      const auto ping = suite::runPingPong(clusterFor(bvia), cfg);
      latRow.push_back(ping.latencyUsec);
      suite::TransferConfig bcfg = cfg;
      bcfg.burst = 150;
      const auto stream = suite::runBandwidth(clusterFor(bvia), bcfg);
      bwRow.push_back(stream.bandwidthMBps);
    }
    lat.addRow(latRow);
    bw.addRow(bwRow);
  }
  vibe::bench::emit(lat);
  vibe::bench::emit(bw);

  // Control: the other two implementations at 0% vs 100% reuse.
  suite::ResultTable ctrl("Control: 28 KB latency (us) at 100%/0% reuse",
                          {"impl", "r100", "r0"});
  int idx = 0;
  const double implTag[3] = {0, 1, 2};  // 0=mvia 1=bvia 2=clan
  for (const auto& np : paperProfiles()) {
    suite::TransferConfig cfg;
    cfg.msgBytes = 28672;
    cfg.iterations = 100;
    const auto full = suite::runPingPong(clusterFor(np.profile), cfg);
    cfg.reusePercent = 0;
    cfg.bufferPool = 160;
    const auto none = suite::runPingPong(clusterFor(np.profile), cfg);
    ctrl.addRow({implTag[idx++], full.latencyUsec, none.latencyUsec});
  }
  vibe::bench::emit(ctrl);
  std::printf("(impl: 0 = M-VIA, 1 = BVIA, 2 = cLAN — only BVIA moves)\n\n");

  // Partial reuse makes the latency *distribution* bimodal: cached
  // iterations at the fast mode, cold ones paying the full miss chain.
  // Mean-only reporting (all the paper had) hides this; the suite also
  // records per-iteration percentiles.
  suite::ResultTable dist(
      "BVIA 12 KB one-way latency distribution (us) vs reuse%",
      {"reuse_pct", "mean", "p50", "p99"});
  for (const int reuse : {100, 50, 0}) {
    suite::TransferConfig cfg;
    cfg.msgBytes = 12288;
    cfg.reusePercent = reuse;
    cfg.bufferPool = reuse == 100 ? 1 : 160;
    cfg.iterations = 200;
    const auto r = suite::runPingPong(clusterFor(bvia), cfg);
    dist.addRow({static_cast<double>(reuse), r.latencyUsec, r.latencyP50Usec,
                 r.latencyP99Usec});
  }
  vibe::bench::emit(dist);
  std::printf("At 50%% reuse the p99/p50 gap is the full translation-miss\n"
              "chain; at 100%% and 0%% the distribution is tight again.\n");
  return 0;
}
