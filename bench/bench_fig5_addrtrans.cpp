// Fig. 5: impact of virtual-to-physical address translation — latency and
// bandwidth vs percentage of send/receive buffer reuse, for BVIA (the model
// whose NIC translates through a host-table-backed software cache).
// M-VIA and cLAN are insensitive to buffer reuse and are printed as
// controls, as the paper notes their results do not change significantly.
#include <cstdio>

#include "bench_common.hpp"
#include "bench_registry.hpp"
#include "vibe/datatransfer.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace vibe;
  using namespace vibe::bench;
  parseStatsFlag(argc, argv);

  printHeader("Impact of address translation (buffer reuse %)",
              "Fig. 5: BVIA latency rises and bandwidth falls as reuse "
              "drops; the effect grows with message size (more pages per "
              "message); M-VIA/cLAN unaffected");

  const std::vector<int> reuseLevels = {100, 75, 50, 25, 0};
  const std::vector<std::uint64_t> sizes = {4, 1024, 4096, 12288, 28672};

  suite::ResultTable lat(
      "BVIA one-way latency (us) vs reuse%",
      {"bytes", "r100", "r75", "r50", "r25", "r0"});
  suite::ResultTable bw(
      "BVIA bandwidth (MB/s) vs reuse%",
      {"bytes", "r100", "r75", "r50", "r25", "r0"});

  const auto bvia = nic::bviaProfile();
  struct Point {
    double lat = 0.0;
    double bw = 0.0;
  };
  const auto points = harness::runSweep(
      sizes.size() * reuseLevels.size(),
      [&](harness::PointEnv& env) {
        const std::uint64_t size = sizes[env.index / reuseLevels.size()];
        const int reuse = reuseLevels[env.index % reuseLevels.size()];
        suite::TransferConfig cfg;
        cfg.msgBytes = size;
        cfg.reusePercent = reuse;
        cfg.bufferPool = reuse == 100 ? 1 : 160;  // overwhelm the 64-entry TLB
        cfg.iterations = 200;
        cfg.warmup = 20;
        Point pt;
        pt.lat = suite::runPingPong(clusterFor(bvia, 2, env), cfg).latencyUsec;
        suite::TransferConfig bcfg = cfg;
        bcfg.burst = 150;
        pt.bw = suite::runBandwidth(clusterFor(bvia, 2, env), bcfg)
                    .bandwidthMBps;
        return pt;
      },
      sweepOptions());
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    std::vector<double> latRow{static_cast<double>(sizes[si])};
    std::vector<double> bwRow{static_cast<double>(sizes[si])};
    for (std::size_t ri = 0; ri < reuseLevels.size(); ++ri) {
      const Point& pt = points[si * reuseLevels.size() + ri];
      latRow.push_back(pt.lat);
      bwRow.push_back(pt.bw);
    }
    lat.addRow(latRow);
    bw.addRow(bwRow);
  }
  vibe::bench::emit(lat);
  vibe::bench::emit(bw);

  // Control: the other two implementations at 0% vs 100% reuse.
  suite::ResultTable ctrl("Control: 28 KB latency (us) at 100%/0% reuse",
                          {"impl", "r100", "r0"});
  const auto profiles = paperProfiles();
  struct CtrlPoint {
    double full = 0.0;
    double none = 0.0;
  };
  const auto ctrlPoints = harness::runSweep(
      profiles.size(),
      [&](harness::PointEnv& env) {
        const auto& np = profiles[env.index];
        suite::TransferConfig cfg;
        cfg.msgBytes = 28672;
        cfg.iterations = 100;
        const auto full = suite::runPingPong(clusterFor(np.profile, 2, env),
                                             cfg);
        cfg.reusePercent = 0;
        cfg.bufferPool = 160;
        const auto none = suite::runPingPong(clusterFor(np.profile, 2, env),
                                             cfg);
        return CtrlPoint{full.latencyUsec, none.latencyUsec};
      },
      sweepOptions());
  for (std::size_t i = 0; i < ctrlPoints.size(); ++i) {
    // 0 = mvia, 1 = bvia, 2 = clan
    ctrl.addRow({static_cast<double>(i), ctrlPoints[i].full,
                 ctrlPoints[i].none});
  }
  vibe::bench::emit(ctrl);
  std::printf("(impl: 0 = M-VIA, 1 = BVIA, 2 = cLAN — only BVIA moves)\n\n");

  // Partial reuse makes the latency *distribution* bimodal: cached
  // iterations at the fast mode, cold ones paying the full miss chain.
  // Mean-only reporting (all the paper had) hides this; the suite also
  // records per-iteration percentiles.
  suite::ResultTable dist(
      "BVIA 12 KB one-way latency distribution (us) vs reuse%",
      {"reuse_pct", "mean", "p50", "p99"});
  const std::vector<int> distReuse = {100, 50, 0};
  const auto distPoints = harness::runSweep(
      distReuse.size(),
      [&](harness::PointEnv& env) {
        const int reuse = distReuse[env.index];
        suite::TransferConfig cfg;
        cfg.msgBytes = 12288;
        cfg.reusePercent = reuse;
        cfg.bufferPool = reuse == 100 ? 1 : 160;
        cfg.iterations = 200;
        return suite::runPingPong(clusterFor(bvia, 2, env), cfg);
      },
      sweepOptions());
  for (std::size_t i = 0; i < distReuse.size(); ++i) {
    const auto& r = distPoints[i];
    dist.addRow({static_cast<double>(distReuse[i]), r.latencyUsec,
                 r.latencyP50Usec, r.latencyP99Usec});
  }
  vibe::bench::emit(dist);
  std::printf("At 50%% reuse the p99/p50 gap is the full translation-miss\n"
              "chain; at 100%% and 0%% the distribution is tight again.\n");
  return 0;
}

}  // namespace

VIBE_BENCH_MAIN(fig5_addrtrans, run)
