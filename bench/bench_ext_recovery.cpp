// Recovery extension bench: the measurements the paper could never run,
// because a year-2000 VIA fabric that lost a link simply hung. With the
// session layer on top of the same NIC models we can quantify:
//   1. MTTR — from fabric partition to re-established session, per profile
//      (detection is RTO-budget exhaustion, then backoff'd reconnects).
//   2. The rtoBackoffCap sweep: the cap bounds the largest RTO step, so it
//      trades retransmission pressure against break-detection latency.
//   3. Goodput under link flaps at the msg layer (recovery-mode
//      Communicator): exactly-once replay turns outages into stalls.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "bench_registry.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "obs/span.hpp"
#include "obs/trace_export.hpp"
#include "session/session.hpp"
#include "simcore/trace.hpp"
#include "upper/msg/communicator.hpp"

namespace {

using namespace vibe;
using bench::clusterFor;
using suite::Cluster;
using suite::NodeEnv;

constexpr sim::SimTime kPartStart = sim::msec(100);
constexpr sim::Duration kPartDur = sim::msec(400);

struct Episode {
  double detectMs = 0;   // partition start -> session notices the break
  double mttrMs = 0;     // break noticed -> session re-established
  double attempts = 0;   // connect dialogs tried over the whole run
  double replayed = 0;   // messages resubmitted after the reconnect
};

session::SessionConfig sessionCfg(bool initiator) {
  session::SessionConfig c;
  c.sid = 1;
  c.remoteNode = initiator ? 1 : 0;
  c.discriminator = 0x5245'4356;  // "RECV"
  c.initiator = initiator;
  c.policy.seed = 42;
  return c;
}

fault::FaultPlan partitionPlan(int count, sim::SimTime start,
                               sim::Duration duration, sim::Duration gap) {
  fault::FaultPlan plan;
  plan.seed = 42;
  for (int i = 0; i < count; ++i) {
    fault::FaultAction part;
    part.kind = fault::FaultKind::Partition;
    part.node = 1;
    part.side = fault::LinkSide::Both;
    part.start = start + i * (duration + gap);
    part.duration = duration;
    part.rate = 1.0;
    plan.actions.push_back(part);
  }
  return plan;
}

/// One partition across a paced session stream; returns the recovery
/// timeline as seen by the initiator. With `exporter` set, the episode's
/// Session trace records and Reconnect spans land in the Perfetto file
/// (the CI soak job uploads one such episode as an artifact).
Episode runEpisode(const nic::NicProfile& profile,
                   const harness::PointEnv& penv,
                   obs::TraceJsonExporter* exporter = nullptr) {
  Cluster cluster(clusterFor(profile, 2, penv));

  obs::SpanProfiler spans;
  spans.setKeepEvents(true);

  sim::Tracer tracer(512);
  tracer.enable(sim::TraceCategory::Session);
  sim::SimTime downAt = 0;
  tracer.setSink([&](const sim::TraceRecord& rec) {
    if (rec.category != sim::TraceCategory::Session) return;
    if (exporter) exporter->instant(rec);
    if (rec.component == 0 && downAt == 0 &&
        rec.message.rfind("down ", 0) == 0) {
      downAt = rec.time;
    }
  });
  cluster.setTracer(&tracer);

  fault::FaultInjector injector(partitionPlan(1, kPartStart, kPartDur, 0));
  injector.arm(cluster);

  constexpr int kMsgs = 160;  // 5 ms pace => traffic spans the partition
  Episode ep;
  auto sender = [&](NodeEnv& env) {
    session::SessionConfig cfg = sessionCfg(/*initiator=*/true);
    if (exporter) cfg.spans = &spans;
    session::Session s(env.nic, cfg);
    if (!s.establish()) return;
    const std::vector<std::byte> payload(256, std::byte{0x42});
    for (int i = 0; i < kMsgs; ++i) {
      s.send(payload);
      s.progress();
      env.self.advance(sim::msec(5), sim::CpuUse::Idle);
    }
    s.flush(10 * sim::kSecond);
    ep.mttrMs = static_cast<double>(s.stats().lastMttr) / 1e6;
    ep.attempts = static_cast<double>(s.stats().connectAttempts);
    ep.replayed = static_cast<double>(s.stats().replayed);
  };
  auto receiver = [&](NodeEnv& env) {
    session::SessionConfig cfg = sessionCfg(/*initiator=*/false);
    if (exporter) cfg.spans = &spans;
    session::Session s(env.nic, cfg);
    if (!s.establish()) return;
    std::vector<std::byte> m;
    for (int got = 0; got < kMsgs && s.recv(m, 10 * sim::kSecond); ++got) {
    }
  };
  cluster.run({sender, receiver});
  if (exporter) exporter->exportSpans(spans);
  ep.detectMs =
      downAt == 0 ? 0 : static_cast<double>(downAt - kPartStart) / 1e6;
  return ep;
}

/// Goodput of a recovery-mode Communicator stream across `flaps` link
/// flaps. Returns MB/s of application payload over the full run.
double runGoodput(int flaps, const harness::PointEnv& penv) {
  Cluster cluster(clusterFor(nic::clanProfile(), 2, penv));
  fault::FaultInjector injector(
      partitionPlan(flaps, kPartStart, sim::msec(250), sim::msec(150)));
  injector.arm(cluster);

  constexpr int kMsgs = 256;
  constexpr std::uint64_t kBytes = 16u << 10;
  double mbps = 0;
  auto rank0 = [&](NodeEnv& env) {
    upper::msg::CommConfig cc;
    cc.recovery = true;
    cc.reconnect.seed = 42;
    auto comm = upper::msg::Communicator::create(env, 0, 2, cc);
    const std::vector<std::byte> payload(kBytes, std::byte{0x7});
    for (int i = 0; i < kMsgs; ++i) {
      comm->send(1, /*tag=*/1, payload);
      env.self.advance(sim::msec(2), sim::CpuUse::Idle);
    }
    comm->barrier();
  };
  auto rank1 = [&](NodeEnv& env) {
    upper::msg::CommConfig cc;
    cc.recovery = true;
    cc.reconnect.seed = 42;
    auto comm = upper::msg::Communicator::create(env, 1, 2, cc);
    for (int i = 0; i < kMsgs; ++i) (void)comm->recv(0, /*tag=*/1);
    const double sec = static_cast<double>(env.now()) / 1e9;
    mbps = static_cast<double>(kMsgs * kBytes) / 1e6 / sec;
    comm->barrier();
  };
  cluster.run({rank0, rank1});
  return mbps;
}

int run(int argc, char** argv) {
  using namespace vibe;
  bench::parseStatsFlag(argc, argv);

  bench::printHeader(
      "Session recovery: MTTR and goodput under link flaps",
      "beyond the paper — TR §3.2.5 measures reliability levels on a "
      "healthy fabric; this bench partitions it and measures the way back");

  std::vector<std::pair<std::string, double>> recoveryMetrics;

  // With VIBE_TRACE_OUT set, the first profile's episode is exported as a
  // Perfetto-loadable trace: Session lifecycle records as instant events,
  // Reconnect spans as durations.
  auto exporter = obs::TraceJsonExporter::fromEnv();

  suite::ResultTable mttr(
      "Recovery timeline by NIC profile (400 ms partition)",
      {"impl", "detect_ms", "mttr_ms", "attempts", "replayed"});
  const auto profiles = bench::paperProfiles();
  const auto episodes = harness::runSweep(
      profiles.size(),
      [&](harness::PointEnv& env) {
        // Only point 0 feeds the exporter, so the trace file stays
        // identical to a serial run regardless of thread count.
        return runEpisode(profiles[env.index].profile, env,
                          env.index == 0 ? exporter.get() : nullptr);
      },
      bench::sweepOptions());
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const Episode& ep = episodes[i];
    mttr.addRow({static_cast<double>(i), ep.detectMs, ep.mttrMs,
                 ep.attempts, ep.replayed});
    recoveryMetrics.emplace_back(profiles[i].shortName + "_detect_ms",
                                 ep.detectMs);
    recoveryMetrics.emplace_back(profiles[i].shortName + "_mttr_ms",
                                 ep.mttrMs);
  }
  if (exporter) {
    const std::size_t n = exporter->eventCount();
    if (exporter->finish()) {
      std::printf("wrote %s (%zu trace events)\n\n", exporter->path().c_str(),
                  n);
    }
  }
  bench::emit(mttr);
  std::printf("(impl: 0 = M-VIA, 1 = BVIA, 2 = cLAN; detect = RTO budget "
              "exhaustion, mttr = detect -> session re-established)\n\n");

  // The backoff cap is the knob PR 2 buried in a comment: a smaller cap
  // keeps RTO steps short, so the retry budget burns down sooner and the
  // break surfaces earlier (at the price of more retransmissions on a
  // merely-congested fabric).
  suite::ResultTable caps(
      "Break detection vs rtoBackoffCap (cLAN, 400 ms partition)",
      {"cap", "detect_ms", "mttr_ms"});
  const std::vector<std::uint32_t> capValues = {2u, 4u, 8u, 16u};
  const auto capEpisodes = harness::runSweep(
      capValues.size(),
      [&](harness::PointEnv& env) {
        nic::NicProfile p = nic::clanProfile();
        p.rtoBackoffCap = capValues[env.index];
        return runEpisode(p, env);
      },
      bench::sweepOptions());
  for (std::size_t i = 0; i < capValues.size(); ++i) {
    const Episode& ep = capEpisodes[i];
    caps.addRow({static_cast<double>(capValues[i]), ep.detectMs, ep.mttrMs});
    recoveryMetrics.emplace_back(
        "cap" + std::to_string(capValues[i]) + "_detect_ms", ep.detectMs);
  }
  bench::emit(caps);

  suite::ResultTable goodput(
      "msg-layer goodput under link flaps (cLAN, 256 x 16 KiB)",
      {"flaps", "goodput_MBps"});
  const std::vector<int> flapCounts = {0, 1, 2};
  const auto goodputs = harness::runSweep(
      flapCounts.size(),
      [&](harness::PointEnv& env) {
        return runGoodput(flapCounts[env.index], env);
      },
      bench::sweepOptions());
  for (std::size_t i = 0; i < flapCounts.size(); ++i) {
    goodput.addRow({static_cast<double>(flapCounts[i]), goodputs[i]});
    recoveryMetrics.emplace_back(
        "goodput_flaps" + std::to_string(flapCounts[i]) + "_MBps",
        goodputs[i]);
  }
  bench::emit(goodput);

  if (bench::jsonRequested()) {
    // Schema 2 nested group only: no new flat keys, so schema-1 consumers
    // of the existing BENCH_*.json files see nothing change.
    bench::writeBenchJson("ext_recovery", {},
                          {{"recovery", std::move(recoveryMetrics)}});
  }
  return 0;
}

}  // namespace

VIBE_BENCH_MAIN(ext_recovery, run)
