// Fig. 7: client/server transaction benchmark — transactions per second
// for request sizes 16 B and 256 B with the reply size swept. Paper shape:
// cLAN on top; M-VIA above BVIA for short replies; BVIA overtakes in the
// mid range; the two converge for long replies.
#include <cstdio>

#include "bench_common.hpp"
#include "vibe/clientserver.hpp"

int main() {
  using namespace vibe;
  using namespace vibe::bench;

  printHeader("Client/server transaction benchmark",
              "Fig. 7: transactions/s for request sizes 16 and 256 bytes, "
              "varying reply size");

  for (const std::uint32_t request : {16u, 256u}) {
    suite::ResultTable t(
        "Transactions/s, request = " + std::to_string(request) + " B",
        {"reply_bytes", "mvia", "bvia", "clan"});
    for (const std::uint64_t reply : suite::paperMessageSizes()) {
      std::vector<double> row{static_cast<double>(reply)};
      for (const auto& np : paperProfiles()) {
        suite::ClientServerConfig cfg;
        cfg.requestBytes = request;
        cfg.replyBytes = static_cast<std::uint32_t>(reply);
        const auto r = suite::runClientServer(clusterFor(np.profile), cfg);
        row.push_back(r.transactionsPerSec);
      }
      t.addRow(row);
    }
    vibe::bench::emit(t, 0);
  }
  std::printf(
      "Paper anchor: cLAN sustains the most transactions/s at every reply\n"
      "size (~45-50k for small replies); M-VIA beats BVIA for short replies,\n"
      "BVIA wins in the mid range, and the two converge for long replies.\n");
  return 0;
}
