// Fig. 7: client/server transaction benchmark — transactions per second
// for request sizes 16 B and 256 B with the reply size swept. Paper shape:
// cLAN on top; M-VIA above BVIA for short replies; BVIA overtakes in the
// mid range; the two converge for long replies.
#include <cstdio>

#include "bench_common.hpp"
#include "bench_registry.hpp"
#include "vibe/clientserver.hpp"

namespace {

int run(int, char**) {
  using namespace vibe;
  using namespace vibe::bench;

  printHeader("Client/server transaction benchmark",
              "Fig. 7: transactions/s for request sizes 16 and 256 bytes, "
              "varying reply size");

  const std::vector<std::uint32_t> requests = {16u, 256u};
  const auto replies = suite::paperMessageSizes();
  const auto profiles = paperProfiles();
  const std::size_t perRequest = replies.size() * profiles.size();
  const auto points = harness::runSweep(
      requests.size() * perRequest,
      [&](harness::PointEnv& env) {
        const std::uint32_t request = requests[env.index / perRequest];
        const std::size_t rest = env.index % perRequest;
        const std::uint64_t reply = replies[rest / profiles.size()];
        const auto& np = profiles[rest % profiles.size()];
        suite::ClientServerConfig cfg;
        cfg.requestBytes = request;
        cfg.replyBytes = static_cast<std::uint32_t>(reply);
        return suite::runClientServer(clusterFor(np.profile, 2, env), cfg)
            .transactionsPerSec;
      },
      sweepOptions());

  for (std::size_t qi = 0; qi < requests.size(); ++qi) {
    suite::ResultTable t(
        "Transactions/s, request = " + std::to_string(requests[qi]) + " B",
        {"reply_bytes", "mvia", "bvia", "clan"});
    for (std::size_t ri = 0; ri < replies.size(); ++ri) {
      std::vector<double> row{static_cast<double>(replies[ri])};
      for (std::size_t pi = 0; pi < profiles.size(); ++pi) {
        row.push_back(points[qi * perRequest + ri * profiles.size() + pi]);
      }
      t.addRow(row);
    }
    vibe::bench::emit(t, 0);
  }
  std::printf(
      "Paper anchor: cLAN sustains the most transactions/s at every reply\n"
      "size (~45-50k for small replies); M-VIA beats BVIA for short replies,\n"
      "BVIA wins in the mid range, and the two converge for long replies.\n");
  return 0;
}

}  // namespace

VIBE_BENCH_MAIN(fig7_clientserver, run)
