// Extension: collective operations at the programming-model level —
// barrier and allreduce time versus rank count, per VIA implementation.
// This is the scalability study the paper says VIBe should enable ("insight
// about the number of VIs to be used in an implementation and scalability
// studies", §1): a collective over N ranks holds N-1 VI pairs per node, so
// on the firmware model every extra rank taxes every message twice.
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_common.hpp"
#include "bench_registry.hpp"
#include "upper/msg/communicator.hpp"
#include "vibe/cluster.hpp"

namespace {

using namespace vibe;
using upper::msg::Communicator;

struct CollectiveTimes {
  double barrierUsec = 0;
  double allreduceUsec = 0;
};

CollectiveTimes measure(const nic::NicProfile& profile, std::uint32_t ranks,
                        int repetitions, const harness::PointEnv& penv,
                        std::uint32_t fatTreeK = 0,
                        const upper::msg::CommConfig& commCfg = {}) {
  suite::ClusterConfig cc = bench::clusterFor(profile, ranks, penv);
  cc.fatTreeK = fatTreeK;
  suite::Cluster cluster(cc);
  CollectiveTimes result;
  std::vector<std::function<void(suite::NodeEnv&)>> programs;
  for (std::uint32_t r = 0; r < ranks; ++r) {
    programs.push_back([&, r](suite::NodeEnv& env) {
      auto comm = Communicator::create(env, r, ranks, commCfg);
      comm->barrier();  // align all ranks before timing

      sim::SimTime t0 = env.now();
      for (int i = 0; i < repetitions; ++i) comm->barrier();
      const double barrier =
          sim::toUsec(env.now() - t0) / repetitions;

      std::vector<double> v(64, static_cast<double>(r));
      t0 = env.now();
      for (int i = 0; i < repetitions; ++i) comm->allreduceSum(v);
      const double allreduce =
          sim::toUsec(env.now() - t0) / repetitions;

      if (r == 0) {
        result.barrierUsec = barrier;
        result.allreduceUsec = allreduce;
      }
    });
  }
  cluster.run(std::move(programs));
  return result;
}

int run(int, char**) {
  using namespace vibe::bench;
  printHeader("Collective operations vs rank count",
              "Extension of §1's scalability question: dissemination "
              "barrier and 64-double allreduce through the message layer");

  suite::ResultTable barrier("Barrier time (us)",
                             {"ranks", "mvia", "bvia", "clan"});
  suite::ResultTable allreduce("Allreduce time, 64 doubles (us)",
                               {"ranks", "mvia", "bvia", "clan"});
  const std::vector<std::uint32_t> rankCounts = {2u, 4u, 8u};
  const auto profiles = paperProfiles();
  const auto points = harness::runSweep(
      rankCounts.size() * profiles.size(),
      [&](harness::PointEnv& env) {
        const std::uint32_t ranks = rankCounts[env.index / profiles.size()];
        const auto& np = profiles[env.index % profiles.size()];
        return measure(np.profile, ranks, 12, env);
      },
      sweepOptions());
  for (std::size_t ri = 0; ri < rankCounts.size(); ++ri) {
    std::vector<double> bRow{static_cast<double>(rankCounts[ri])};
    std::vector<double> aRow{static_cast<double>(rankCounts[ri])};
    for (std::size_t pi = 0; pi < profiles.size(); ++pi) {
      const CollectiveTimes& t = points[ri * profiles.size() + pi];
      bRow.push_back(t.barrierUsec);
      aRow.push_back(t.allreduceUsec);
    }
    barrier.addRow(bRow);
    allreduce.addRow(aRow);
  }
  emit(barrier);
  emit(allreduce);
  std::printf(
      "The dissemination barrier costs ceil(log2 N) rounds of one-way\n"
      "latency — but on the firmware model each node also holds 2(N-1) VIs\n"
      "(control+bulk per peer), so every round's messages pay a longer\n"
      "doorbell scan as N grows: the Fig. 6 effect compounding with depth.\n");

  // Collectives across the fabric: the same barrier/allreduce on cLAN at
  // 16 and 32 ranks, flat star vs k=8 fat-tree. Every rank pair holds a VI
  // pair (the mesh is O(N^2) — and so is the wall cost of wiring it, which
  // is what bounds the rank count here), so credits and eager buffers are
  // trimmed to keep the mesh's preposted memory small; both columns use the
  // same trimmed config, so the delta is purely the fabric's path lengths —
  // dissemination rounds hit ever-farther partners (rank +1, +2, +4 ...):
  // with 4 hosts per edge switch and 16 per pod, rounds past +4 cross the
  // aggregation tier and rounds past +16 pay the full core crossing.
  suite::ResultTable fabricT(
      "Barrier / allreduce (us), cLAN, flat star vs k=8 fat-tree",
      {"ranks", "flat_barrier", "ft_barrier", "flat_allred", "ft_allred"});
  const std::vector<std::uint32_t> bigRanks = {16u, 32u};
  upper::msg::CommConfig lean;
  lean.eagerThreshold = 2048;
  lean.creditsPerPeer = 4;
  lean.controlReserve = 4;
  struct FabricPoint {
    CollectiveTimes flat;
    CollectiveTimes fatTree;
  };
  const auto fabricPoints = harness::runSweep(
      bigRanks.size(),
      [&](harness::PointEnv& env) {
        const std::uint32_t ranks = bigRanks[env.index];
        return FabricPoint{
            measure(nic::clanProfile(), ranks, 4, env, 0, lean),
            measure(nic::clanProfile(), ranks, 4, env, 8, lean)};
      },
      sweepOptions());
  for (std::size_t i = 0; i < bigRanks.size(); ++i) {
    const FabricPoint& p = fabricPoints[i];
    fabricT.addRow({static_cast<double>(bigRanks[i]), p.flat.barrierUsec,
                    p.fatTree.barrierUsec, p.flat.allreduceUsec,
                    p.fatTree.allreduceUsec});
  }
  emit(fabricT);
  std::printf(
      "On the fat-tree the early dissemination rounds stay inside an edge\n"
      "switch or pod while the late rounds cross the cores, so the barrier\n"
      "pays a weighted mix of the path tiers rather than N times the flat\n"
      "latency — the Clos tax grows with log N, not with N.\n");
  return 0;
}

}  // namespace

VIBE_BENCH_MAIN(ext_collectives, run)
