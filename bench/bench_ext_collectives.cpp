// Extension: collective operations at the programming-model level —
// barrier and allreduce time versus rank count, per VIA implementation.
// This is the scalability study the paper says VIBe should enable ("insight
// about the number of VIs to be used in an implementation and scalability
// studies", §1): a collective over N ranks holds N-1 VI pairs per node, so
// on the firmware model every extra rank taxes every message twice.
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "bench_registry.hpp"
#include "simcore/pdes.hpp"
#include "upper/msg/communicator.hpp"
#include "vibe/cluster.hpp"
#include "vipl/vipl.hpp"

namespace {

using namespace vibe;
using upper::msg::Communicator;

struct CollectiveTimes {
  double barrierUsec = 0;
  double allreduceUsec = 0;
};

CollectiveTimes measure(const nic::NicProfile& profile, std::uint32_t ranks,
                        int repetitions, const harness::PointEnv& penv,
                        std::uint32_t fatTreeK = 0,
                        const upper::msg::CommConfig& commCfg = {}) {
  suite::ClusterConfig cc = bench::clusterFor(profile, ranks, penv);
  cc.fatTreeK = fatTreeK;
  suite::Cluster cluster(cc);
  CollectiveTimes result;
  std::vector<std::function<void(suite::NodeEnv&)>> programs;
  for (std::uint32_t r = 0; r < ranks; ++r) {
    programs.push_back([&, r](suite::NodeEnv& env) {
      auto comm = Communicator::create(env, r, ranks, commCfg);
      comm->barrier();  // align all ranks before timing

      sim::SimTime t0 = env.now();
      for (int i = 0; i < repetitions; ++i) comm->barrier();
      const double barrier =
          sim::toUsec(env.now() - t0) / repetitions;

      std::vector<double> v(64, static_cast<double>(r));
      t0 = env.now();
      for (int i = 0; i < repetitions; ++i) comm->allreduceSum(v);
      const double allreduce =
          sim::toUsec(env.now() - t0) / repetitions;

      if (r == 0) {
        result.barrierUsec = barrier;
        result.allreduceUsec = allreduce;
      }
    });
  }
  cluster.run(std::move(programs));
  return result;
}

// --- raw-VIPL hypercube collectives ------------------------------------
//
// The Communicator wires a full O(N^2) VI mesh, which is what bounds the
// rank counts above. Recursive doubling needs only log2(N) VIs per rank
// (dimension d pairs rank r with r ^ 2^d), so the same barrier and
// allreduce reach thousands of ranks — the scale where hosting the stack
// on the sharded PDES engine starts to pay.

constexpr std::uint64_t kHcDisc = 0x4859'5043;  // "HYPC" + dimension
constexpr sim::Duration kHcTimeout = sim::kSecond * 10;
constexpr std::size_t kHcAllredDoubles = 64;
constexpr std::size_t kHcAllredBytes = kHcAllredDoubles * sizeof(double);
constexpr std::size_t kHcBarrierBytes = 8;

void hcRequire(vipl::VipResult r, const char* what) {
  if (r != vipl::VipResult::VIP_SUCCESS) {
    throw std::runtime_error(std::string("hypercube: ") + what + " -> " +
                             vipl::toString(r));
  }
}

/// Engine-mode witness of one hypercube run (same idiom as
/// bench_ext_multiclient): virtual end time plus a fold of every node's
/// NicStats; identical values across shard counts mean identical
/// per-domain schedules.
struct HyperWitness {
  sim::SimTime endTime = 0;
  std::uint64_t nicDigest = 0;
  std::uint64_t events = 0;
  std::uint64_t windows = 0;
};

std::uint64_t hcFoldNicStats(std::uint64_t acc, const nic::NicStats& s) {
  for (std::uint64_t v :
       {s.sendsPosted, s.recvsPosted, s.fragsTx, s.fragsRx, s.bytesTx,
        s.bytesRx, s.acksTx, s.acksRx, s.retransmits, s.rxCorrupted,
        s.rxDroppedNoDescriptor, s.rxDroppedBadEndpoint,
        s.rxOutOfOrderDropped, s.protocolErrors}) {
    acc = sim::Tracer::combineDigest(acc, v);
  }
  return acc;
}

CollectiveTimes hypercube(const nic::NicProfile& profile,
                          std::uint32_t ranks, std::uint32_t fatTreeK,
                          int reps, std::uint32_t simShards,
                          const harness::PointEnv* penv,
                          HyperWitness* witness = nullptr) {
  if (!std::has_single_bit(ranks)) {
    throw std::invalid_argument("hypercube: ranks must be a power of two");
  }
  const std::uint32_t dims =
      static_cast<std::uint32_t>(std::countr_zero(ranks));
  suite::ClusterConfig cc = penv ? bench::clusterFor(profile, ranks, *penv)
                                 : bench::clusterFor(profile, ranks);
  cc.fatTreeK = fatTreeK;
  cc.simShards = simShards;
  suite::Cluster cluster(cc);
  CollectiveTimes result;

  std::vector<std::function<void(suite::NodeEnv&)>> programs;
  for (std::uint32_t r = 0; r < ranks; ++r) {
    programs.push_back([&, r](suite::NodeEnv& env) {
      vipl::Provider& nic = env.nic;
      const auto ptag = vipl::VipCreatePtag(nic);
      // Per dimension: one VI, one tx buffer, and a rx arena preposted in
      // exactly the order the exchanges will consume it — (1 + reps)
      // barrier messages, then reps allreduce payloads. The VI is a
      // single-writer ReliableDelivery channel, so completions pop FIFO.
      struct Dim {
        vipl::Vi* vi = nullptr;
        mem::VirtAddr txVa = 0;
        mem::MemHandle txHandle = 0;
        mem::VirtAddr rxVa = 0;
        mem::MemHandle rxHandle = 0;
        std::vector<std::unique_ptr<vipl::VipDescriptor>> rxDescs;
        std::vector<mem::VirtAddr> rxSlots;
        std::size_t rxNext = 0;
      };
      const std::size_t rxArena =
          (1 + reps) * kHcBarrierBytes + reps * kHcAllredBytes;
      std::vector<Dim> dim(dims);
      for (std::uint32_t d = 0; d < dims; ++d) {
        Dim& dd = dim[d];
        dd.txVa = nic.memory().alloc(kHcAllredBytes, mem::kPageSize);
        dd.rxVa = nic.memory().alloc(rxArena, mem::kPageSize);
        vipl::VipMemAttributes ma;
        ma.ptag = ptag;
        hcRequire(vipl::VipRegisterMem(nic, dd.txVa, kHcAllredBytes, ma,
                                       dd.txHandle),
                  "register tx");
        hcRequire(
            vipl::VipRegisterMem(nic, dd.rxVa, rxArena, ma, dd.rxHandle),
            "register rx");
        vipl::VipViAttributes va;
        va.ptag = ptag;
        va.reliabilityLevel = nic::Reliability::ReliableDelivery;
        hcRequire(vipl::VipCreateVi(nic, va, nullptr, nullptr, dd.vi),
                  "create vi");
        mem::VirtAddr slot = dd.rxVa;
        auto prepost = [&](std::size_t bytes) {
          dd.rxDescs.push_back(std::make_unique<vipl::VipDescriptor>(
              vipl::VipDescriptor::recv(slot, dd.rxHandle, bytes)));
          hcRequire(vipl::VipPostRecv(nic, dd.vi, dd.rxDescs.back().get()),
                    "post recv");
          dd.rxSlots.push_back(slot);
          slot += bytes;
        };
        for (int i = 0; i < 1 + reps; ++i) prepost(kHcBarrierBytes);
        for (int i = 0; i < reps; ++i) prepost(kHcAllredBytes);
      }
      // Dial the cube: dimension d pairs r with r ^ 2^d, the lower rank
      // requests and the higher accepts. Every rank owns exactly one side
      // of one dialog per dimension, so all dialogs of a dimension run in
      // parallel — no accept serialization, no stagger needed.
      for (std::uint32_t d = 0; d < dims; ++d) {
        const std::uint32_t peer = r ^ (1u << d);
        const std::uint64_t disc = kHcDisc + d;
        if (r < peer) {
          hcRequire(vipl::VipConnectRequest(nic, dim[d].vi, {peer, disc},
                                            kHcTimeout),
                    "connect request");
        } else {
          vipl::PendingConn conn;
          hcRequire(vipl::VipConnectWait(nic, {r, disc}, kHcTimeout, conn),
                    "connect wait");
          hcRequire(vipl::VipConnectAccept(nic, conn, dim[d].vi),
                    "connect accept");
        }
      }
      // One exchange along dimension d; returns the VA of the peer's
      // payload (the next FIFO rx slot).
      auto exchange = [&](std::uint32_t d,
                          std::size_t bytes) -> mem::VirtAddr {
        Dim& dd = dim[d];
        vipl::VipDescriptor s =
            vipl::VipDescriptor::send(dd.txVa, dd.txHandle, bytes);
        hcRequire(vipl::VipPostSend(nic, dd.vi, &s), "post send");
        vipl::VipDescriptor* done = nullptr;
        hcRequire(nic.sendWait(dd.vi, kHcTimeout, done), "send wait");
        hcRequire(nic.recvWait(dd.vi, kHcTimeout, done), "recv wait");
        if (done != dd.rxDescs[dd.rxNext].get()) {
          throw std::runtime_error("hypercube: rx completion out of order");
        }
        return dd.rxSlots[dd.rxNext++];
      };
      auto barrier = [&] {
        for (std::uint32_t d = 0; d < dims; ++d) {
          (void)exchange(d, kHcBarrierBytes);
        }
      };
      barrier();  // align all ranks before timing

      sim::SimTime t0 = env.now();
      for (int i = 0; i < reps; ++i) barrier();
      const double barrierUsec = sim::toUsec(env.now() - t0) / reps;

      std::vector<double> v(kHcAllredDoubles, static_cast<double>(r));
      std::vector<std::byte> wire(kHcAllredBytes);
      std::vector<double> peerV(kHcAllredDoubles);
      t0 = env.now();
      for (int i = 0; i < reps; ++i) {
        for (std::uint32_t d = 0; d < dims; ++d) {
          std::memcpy(wire.data(), v.data(), kHcAllredBytes);
          nic.memory().write(dim[d].txVa, wire);
          const mem::VirtAddr peerVa = exchange(d, kHcAllredBytes);
          nic.memory().read(peerVa, wire);
          std::memcpy(peerV.data(), wire.data(), kHcAllredBytes);
          for (std::size_t j = 0; j < kHcAllredDoubles; ++j) {
            v[j] += peerV[j];
          }
        }
      }
      const double allreduceUsec = sim::toUsec(env.now() - t0) / reps;

      // After rep 1 every rank holds S1 = N(N-1)/2; each further rep
      // multiplies by N. Exact in doubles while under 2^53.
      double expect = static_cast<double>(ranks) *
                      (static_cast<double>(ranks) - 1) / 2;
      for (int i = 1; i < reps; ++i) expect *= static_cast<double>(ranks);
      if (expect < 9.0e15 && v[0] != expect) {
        throw std::runtime_error("hypercube: allreduce sum mismatch");
      }
      if (r == 0) {
        result.barrierUsec = barrierUsec;
        result.allreduceUsec = allreduceUsec;
      }
    });
  }
  const bool prof =
      cluster.sharded() && std::getenv("VIBE_PDES_PROFILE") != nullptr;
  if (prof) cluster.shardedEngine().setProfiling(true);
  cluster.run(std::move(programs));
  if (prof) {
    for (const sim::ShardProfile& p :
         cluster.shardedEngine().shardProfiles()) {
      std::fprintf(stderr,
                   "  [prof] shard %u: domains=%u events=%llu active=%llu "
                   "exec_ms=%.1f barrier_ms=%.1f\n",
                   p.shard, p.domains,
                   static_cast<unsigned long long>(p.events),
                   static_cast<unsigned long long>(p.windowsActive),
                   p.execNs / 1e6, p.barrierWaitNs / 1e6);
    }
  }
  if (witness) {
    witness->endTime = cluster.now();
    std::uint64_t d = 0xcbf29ce484222325ull;
    for (std::uint32_t n = 0; n < cluster.nodeCount(); ++n) {
      d = hcFoldNicStats(d, cluster.node(n).device().stats());
    }
    witness->nicDigest = d;
    if (cluster.sharded()) {
      witness->events = cluster.shardedEngine().executedEvents();
      witness->windows = cluster.shardedEngine().windowsExecuted();
    }
  }
  return result;
}

/// Golden: the hypercube collectives hosted on the sharded PDES engine.
/// Per-domain schedules are shard-count-invariant, so the table is
/// byte-identical at any VIBE_SIM_SHARDS >= 1 — the golden matrix's
/// shards axis re-runs it on real worker threads against the same bytes.
void shardedHypercubeTable() {
  using namespace vibe::bench;
  suite::ResultTable t(
      "Hypercube barrier / allreduce (us), cLAN k=8 fat-tree, hosted on "
      "the sharded PDES engine vs the serial engine",
      {"ranks", "pdes_barrier", "pdes_allred", "serial_barrier",
       "serial_allred"});
  const std::vector<std::uint32_t> counts = {32u, 64u};
  struct Pair {
    CollectiveTimes hosted;
    CollectiveTimes serial;
  };
  const auto points = harness::runSweep(
      counts.size(),
      [&](harness::PointEnv& env) {
        const std::uint32_t ranks = counts[env.index];
        return Pair{hypercube(nic::clanProfile(), ranks, 8, 4,
                              std::max(1u, sim::shardCount()), &env),
                    hypercube(nic::clanProfile(), ranks, 8, 4, 0, &env)};
      },
      sweepOptions());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    t.addRow({static_cast<double>(counts[i]), points[i].hosted.barrierUsec,
              points[i].hosted.allreduceUsec, points[i].serial.barrierUsec,
              points[i].serial.allreduceUsec});
  }
  emit(t, 0);
  std::printf(
      "log2(N) VIs per rank instead of the Communicator's O(N^2) mesh;\n"
      "the pdes and serial columns run the same collective on the hosted\n"
      "sharded engine and on the classic serial engine.\n");
}

#ifndef VIBE_BENCH_LIBRARY
/// Standalone-only (wall-clock columns cannot be golden): the hypercube
/// at 4096 ranks on a k=32 fat-tree — 1280 PDES domains — swept over
/// worker shard counts. Every run must reproduce the shards=1 witness
/// bit-for-bit; the speedup column is the point of the exercise.
int shardedHypercubeDemo() {
  const std::uint32_t ranks = 4096;
  std::printf(
      "\nScale demo: %u-rank hypercube barrier + allreduce, k=32 fat-tree "
      "(4096 hosts, 1280 PDES domains)\n",
      ranks);
  struct ShardRun {
    std::uint32_t shards = 0;
    double wallMs = 0;
    CollectiveTimes times;
    HyperWitness w;
  };
  std::vector<std::uint32_t> shardCounts = {1u, 2u, 4u};
  const std::uint32_t hw = std::max(1u, sim::shardCount());
  if (hw > 4) shardCounts.push_back(hw);
  std::vector<ShardRun> runs;
  for (std::uint32_t s : shardCounts) {
    ShardRun r;
    r.shards = s;
    const auto t0 = std::chrono::steady_clock::now();
    r.times = hypercube(nic::clanProfile(), ranks, 32, 2, s, nullptr, &r.w);
    r.wallMs = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    runs.push_back(r);
  }
  const ShardRun& base = runs.front();
  bool deterministic = true;
  std::printf("%8s %12s %14s %12s %12s %10s %10s\n", "shards", "wall_ms",
              "events/sec", "barrier_us", "allred_us", "speedup",
              "witness");
  for (const ShardRun& r : runs) {
    const bool same = r.w.endTime == base.w.endTime &&
                      r.w.nicDigest == base.w.nicDigest &&
                      r.w.events == base.w.events &&
                      r.w.windows == base.w.windows;
    deterministic = deterministic && same;
    std::printf("%8u %12.0f %14.0f %12.1f %12.1f %9.2fx %10s\n", r.shards,
                r.wallMs, static_cast<double>(r.w.events) / (r.wallMs / 1e3),
                r.times.barrierUsec, r.times.allreduceUsec,
                base.wallMs / r.wallMs, same ? "match" : "DIVERGED");
  }
  std::printf("determinism across shard counts: %s\n",
              deterministic ? "OK (witnesses byte-identical)" : "FAILED");
  if (std::thread::hardware_concurrency() <= 1) {
    std::printf(
        "note: single-core host; worker threads time-slice one core, so "
        "speedup ~= 1.0 here by necessity (see docs/PDES.md)\n");
  }
  return deterministic ? 0 : 1;
}
#endif  // VIBE_BENCH_LIBRARY

int run(int, char**) {
  using namespace vibe::bench;
  printHeader("Collective operations vs rank count",
              "Extension of §1's scalability question: dissemination "
              "barrier and 64-double allreduce through the message layer");

  suite::ResultTable barrier("Barrier time (us)",
                             {"ranks", "mvia", "bvia", "clan"});
  suite::ResultTable allreduce("Allreduce time, 64 doubles (us)",
                               {"ranks", "mvia", "bvia", "clan"});
  const std::vector<std::uint32_t> rankCounts = {2u, 4u, 8u};
  const auto profiles = paperProfiles();
  const auto points = harness::runSweep(
      rankCounts.size() * profiles.size(),
      [&](harness::PointEnv& env) {
        const std::uint32_t ranks = rankCounts[env.index / profiles.size()];
        const auto& np = profiles[env.index % profiles.size()];
        return measure(np.profile, ranks, 12, env);
      },
      sweepOptions());
  for (std::size_t ri = 0; ri < rankCounts.size(); ++ri) {
    std::vector<double> bRow{static_cast<double>(rankCounts[ri])};
    std::vector<double> aRow{static_cast<double>(rankCounts[ri])};
    for (std::size_t pi = 0; pi < profiles.size(); ++pi) {
      const CollectiveTimes& t = points[ri * profiles.size() + pi];
      bRow.push_back(t.barrierUsec);
      aRow.push_back(t.allreduceUsec);
    }
    barrier.addRow(bRow);
    allreduce.addRow(aRow);
  }
  emit(barrier);
  emit(allreduce);
  std::printf(
      "The dissemination barrier costs ceil(log2 N) rounds of one-way\n"
      "latency — but on the firmware model each node also holds 2(N-1) VIs\n"
      "(control+bulk per peer), so every round's messages pay a longer\n"
      "doorbell scan as N grows: the Fig. 6 effect compounding with depth.\n");

  // Collectives across the fabric: the same barrier/allreduce on cLAN at
  // 16 and 32 ranks, flat star vs k=8 fat-tree. Every rank pair holds a VI
  // pair (the mesh is O(N^2) — and so is the wall cost of wiring it, which
  // is what bounds the rank count here), so credits and eager buffers are
  // trimmed to keep the mesh's preposted memory small; both columns use the
  // same trimmed config, so the delta is purely the fabric's path lengths —
  // dissemination rounds hit ever-farther partners (rank +1, +2, +4 ...):
  // with 4 hosts per edge switch and 16 per pod, rounds past +4 cross the
  // aggregation tier and rounds past +16 pay the full core crossing.
  suite::ResultTable fabricT(
      "Barrier / allreduce (us), cLAN, flat star vs k=8 fat-tree",
      {"ranks", "flat_barrier", "ft_barrier", "flat_allred", "ft_allred"});
  const std::vector<std::uint32_t> bigRanks = {16u, 32u};
  upper::msg::CommConfig lean;
  lean.eagerThreshold = 2048;
  lean.creditsPerPeer = 4;
  lean.controlReserve = 4;
  struct FabricPoint {
    CollectiveTimes flat;
    CollectiveTimes fatTree;
  };
  const auto fabricPoints = harness::runSweep(
      bigRanks.size(),
      [&](harness::PointEnv& env) {
        const std::uint32_t ranks = bigRanks[env.index];
        return FabricPoint{
            measure(nic::clanProfile(), ranks, 4, env, 0, lean),
            measure(nic::clanProfile(), ranks, 4, env, 8, lean)};
      },
      sweepOptions());
  for (std::size_t i = 0; i < bigRanks.size(); ++i) {
    const FabricPoint& p = fabricPoints[i];
    fabricT.addRow({static_cast<double>(bigRanks[i]), p.flat.barrierUsec,
                    p.fatTree.barrierUsec, p.flat.allreduceUsec,
                    p.fatTree.allreduceUsec});
  }
  emit(fabricT);
  std::printf(
      "On the fat-tree the early dissemination rounds stay inside an edge\n"
      "switch or pod while the late rounds cross the cores, so the barrier\n"
      "pays a weighted mix of the path tiers rather than N times the flat\n"
      "latency — the Clos tax grows with log N, not with N.\n");
  shardedHypercubeTable();
#ifndef VIBE_BENCH_LIBRARY
  return shardedHypercubeDemo();
#else
  return 0;
#endif
}

}  // namespace

VIBE_BENCH_MAIN(ext_collectives, run)
