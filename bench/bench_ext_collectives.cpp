// Extension: collective operations at the programming-model level —
// barrier and allreduce time versus rank count, per VIA implementation.
// This is the scalability study the paper says VIBe should enable ("insight
// about the number of VIs to be used in an implementation and scalability
// studies", §1): a collective over N ranks holds N-1 VI pairs per node, so
// on the firmware model every extra rank taxes every message twice.
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_common.hpp"
#include "bench_registry.hpp"
#include "upper/msg/communicator.hpp"
#include "vibe/cluster.hpp"

namespace {

using namespace vibe;
using upper::msg::Communicator;

struct CollectiveTimes {
  double barrierUsec = 0;
  double allreduceUsec = 0;
};

CollectiveTimes measure(const nic::NicProfile& profile, std::uint32_t ranks,
                        int repetitions, const harness::PointEnv& penv) {
  suite::ClusterConfig cc = bench::clusterFor(profile, ranks, penv);
  suite::Cluster cluster(cc);
  CollectiveTimes result;
  std::vector<std::function<void(suite::NodeEnv&)>> programs;
  for (std::uint32_t r = 0; r < ranks; ++r) {
    programs.push_back([&, r](suite::NodeEnv& env) {
      auto comm = Communicator::create(env, r, ranks, {});
      comm->barrier();  // align all ranks before timing

      sim::SimTime t0 = env.now();
      for (int i = 0; i < repetitions; ++i) comm->barrier();
      const double barrier =
          sim::toUsec(env.now() - t0) / repetitions;

      std::vector<double> v(64, static_cast<double>(r));
      t0 = env.now();
      for (int i = 0; i < repetitions; ++i) comm->allreduceSum(v);
      const double allreduce =
          sim::toUsec(env.now() - t0) / repetitions;

      if (r == 0) {
        result.barrierUsec = barrier;
        result.allreduceUsec = allreduce;
      }
    });
  }
  cluster.run(std::move(programs));
  return result;
}

int run(int, char**) {
  using namespace vibe::bench;
  printHeader("Collective operations vs rank count",
              "Extension of §1's scalability question: dissemination "
              "barrier and 64-double allreduce through the message layer");

  suite::ResultTable barrier("Barrier time (us)",
                             {"ranks", "mvia", "bvia", "clan"});
  suite::ResultTable allreduce("Allreduce time, 64 doubles (us)",
                               {"ranks", "mvia", "bvia", "clan"});
  const std::vector<std::uint32_t> rankCounts = {2u, 4u, 8u};
  const auto profiles = paperProfiles();
  const auto points = harness::runSweep(
      rankCounts.size() * profiles.size(),
      [&](harness::PointEnv& env) {
        const std::uint32_t ranks = rankCounts[env.index / profiles.size()];
        const auto& np = profiles[env.index % profiles.size()];
        return measure(np.profile, ranks, 12, env);
      },
      sweepOptions());
  for (std::size_t ri = 0; ri < rankCounts.size(); ++ri) {
    std::vector<double> bRow{static_cast<double>(rankCounts[ri])};
    std::vector<double> aRow{static_cast<double>(rankCounts[ri])};
    for (std::size_t pi = 0; pi < profiles.size(); ++pi) {
      const CollectiveTimes& t = points[ri * profiles.size() + pi];
      bRow.push_back(t.barrierUsec);
      aRow.push_back(t.allreduceUsec);
    }
    barrier.addRow(bRow);
    allreduce.addRow(aRow);
  }
  emit(barrier);
  emit(allreduce);
  std::printf(
      "The dissemination barrier costs ceil(log2 N) rounds of one-way\n"
      "latency — but on the firmware model each node also holds 2(N-1) VIs\n"
      "(control+bulk per peer), so every round's messages pay a longer\n"
      "doorbell scan as N grows: the Fig. 6 effect compounding with depth.\n");
  return 0;
}

}  // namespace

VIBE_BENCH_MAIN(ext_collectives, run)
