// Extension: multi-switch topology. The paper's testbeds used a single
// switch; scaling a SAN past one switch adds trunk hops and trunk sharing.
// This bench quantifies both on the cLAN model: the per-hop latency tax of
// crossing the root, the bandwidth collapse when an oversubscribed trunk
// carries concurrent flows, and — on the k-ary fat-tree fabric — the
// path-length tiers of a folded Clos, tail drop under 1023:1 incast with
// finite switch buffers, and the throughput collapse of an all-cross-pod
// permutation as the fabric tier is oversubscribed.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "bench_registry.hpp"
#include "fabric/network.hpp"
#include "simcore/engine.hpp"
#include "vibe/datatransfer.hpp"

namespace {

/// Raw-fabric NetworkParams on the cLAN link model (no NIC/VIPL stack):
/// at 1024 hosts the full provider stack is too heavy, but the fabric
/// alone — links, switches, ECMP, buffers — simulates in milliseconds.
vibe::fabric::NetworkParams rawFatTree(std::uint32_t k, std::uint32_t nodes,
                                       std::uint32_t bufferFrames,
                                       double trunkMBps = 0.0) {
  const vibe::nic::NicProfile p = vibe::nic::clanProfile();
  vibe::fabric::NetworkParams np;
  np.nodes = nodes;
  np.link.bandwidthMBps = p.linkMBps;
  np.link.propagation = p.linkPropagation;
  np.link.headerBytes = p.linkHeaderBytes;
  np.switchLatency = p.switchLatency;
  np.fatTreeK = k;
  np.trunk = np.link;
  if (trunkMBps > 0.0) np.trunk.bandwidthMBps = trunkMBps;
  np.rootSwitchLatency = p.switchLatency;
  np.switchBufferFrames = bufferFrames;
  return np;
}

vibe::fabric::Packet rawFrame(std::uint32_t src, std::uint32_t dst,
                              std::size_t payloadBytes) {
  vibe::fabric::Packet f;
  f.kind = vibe::fabric::PacketKind::Data;
  f.src = src;
  f.dst = dst;
  f.payload.assign(payloadBytes, std::byte{0x5A});
  return f;
}

int run(int, char**) {
  using namespace vibe;
  using namespace vibe::bench;

  printHeader("Two-level switch topology",
              "Extension: latency/bandwidth across a root switch and under "
              "trunk oversubscription (paper testbeds were single-switch)");

  suite::ResultTable lat("One-way latency (us): single switch vs via root",
                         {"bytes", "flat", "cross_leaf"});
  const std::vector<std::uint64_t> sizes = {4, 1024, 8192, 28672};
  struct LatPoint {
    double flat = 0.0;
    double tree = 0.0;
  };
  const auto latPoints = harness::runSweep(
      sizes.size(),
      [&](harness::PointEnv& env) {
        suite::TransferConfig t;
        t.msgBytes = sizes[env.index];
        suite::ClusterConfig flat = clusterFor(nic::clanProfile(), 2, env);
        suite::ClusterConfig tree = flat;
        tree.nodesPerSwitch = 1;  // nodes 0 and 1 sit on different leaves
        return LatPoint{suite::runPingPong(flat, t).latencyUsec,
                        suite::runPingPong(tree, t).latencyUsec};
      },
      sweepOptions());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    lat.addRow({static_cast<double>(sizes[i]), latPoints[i].flat,
                latPoints[i].tree});
  }
  vibe::bench::emit(lat);

  suite::ResultTable bw(
      "Streaming bandwidth (MB/s) vs trunk capacity, 8 KB messages",
      {"trunk_MBps", "bandwidth"});
  const std::vector<double> trunks = {156.0, 110.0, 60.0, 30.0};
  const auto bwPoints = harness::runSweep(
      trunks.size(),
      [&](harness::PointEnv& env) {
        suite::ClusterConfig tree = clusterFor(nic::clanProfile(), 2, env);
        tree.nodesPerSwitch = 1;
        tree.trunkMBps = trunks[env.index];
        suite::TransferConfig t;
        t.msgBytes = 8192;
        return suite::runBandwidth(tree, t).bandwidthMBps;
      },
      sweepOptions());
  for (std::size_t i = 0; i < trunks.size(); ++i) {
    bw.addRow({trunks[i], bwPoints[i]});
  }
  vibe::bench::emit(bw);
  std::printf(
      "Crossing the root adds two trunk traversals plus its forwarding\n"
      "latency at every size; once the trunk is slower than the hosts'\n"
      "PCI DMA (~112 MB/s here), it becomes the end-to-end bottleneck.\n");

  // Fat-tree path tiers: the full VIA stack over a k=4 fat-tree (16
  // hosts). Host pairs sit 2, 4, or 6 links apart depending on whether
  // they share an edge switch, a pod, or nothing; each tier adds two
  // fabric-link traversals plus two switch forwards to the one-way path.
  suite::ResultTable ft(
      "Fat-tree one-way latency (us), k=4, 16 hosts, cLAN stack",
      {"bytes", "same_edge", "same_pod", "cross_pod"});
  struct FtPair {
    std::uint32_t dst;  // src is always host 0
  };
  const std::vector<FtPair> pairs = {{1}, {2}, {12}};
  const auto ftPoints = harness::runSweep(
      sizes.size() * pairs.size(),
      [&](harness::PointEnv& env) {
        suite::TransferConfig t;
        t.msgBytes = sizes[env.index / pairs.size()];
        t.pingDst = pairs[env.index % pairs.size()].dst;
        suite::ClusterConfig cc = clusterFor(nic::clanProfile(), 16, env);
        cc.fatTreeK = 4;
        return suite::runPingPong(cc, t).latencyUsec;
      },
      sweepOptions());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    ft.addRow({static_cast<double>(sizes[i]), ftPoints[i * pairs.size()],
               ftPoints[i * pairs.size() + 1],
               ftPoints[i * pairs.size() + 2]});
  }
  vibe::bench::emit(ft);

  // 1023:1 incast on a 1024-host k=16 fat-tree (raw fabric): every other
  // host fires a burst of 1 KB frames at host 0. The victim's edge down
  // port can only drain one frame at a time, so finite output buffers
  // tail-drop the convergent burst; the unbounded legacy wire absorbs it
  // all into an ever-deeper queue instead.
  suite::ResultTable incast(
      "Incast, 1023 senders -> 1 host, k=16 fat-tree, 1024 hosts, "
      "4 x 1 KB frames each",
      {"buf_frames", "delivered", "dropped", "max_queue"});
  const std::vector<std::uint32_t> bufs = {0, 256, 64, 16};
  struct IncastPoint {
    double delivered = 0;
    double dropped = 0;
    double maxQueue = 0;
  };
  const std::vector<IncastPoint> incastRows = harness::runSweep(
      bufs.size(),
      [&](harness::PointEnv& env) {
        sim::Engine eng;
        fabric::Network net(eng, rawFatTree(16, 1024, bufs[env.index]));
        std::uint64_t delivered = 0;
        for (std::uint32_t n = 0; n < 1024; ++n) {
          net.setReceiver(n, [&](fabric::Packet&&) { ++delivered; });
        }
        for (std::uint32_t s = 1; s < 1024; ++s) {
          for (int i = 0; i < 4; ++i) net.send(rawFrame(s, 0, 1024));
        }
        eng.run();
        return IncastPoint{static_cast<double>(delivered),
                           static_cast<double>(net.switchBufferDrops()),
                           static_cast<double>(net.maxSwitchQueueDepth())};
      },
      sweepOptions());
  for (std::size_t i = 0; i < bufs.size(); ++i) {
    incast.addRow({static_cast<double>(bufs[i]), incastRows[i].delivered,
                   incastRows[i].dropped, incastRows[i].maxQueue});
  }
  vibe::bench::emit(incast, 0);

  // Fabric oversubscription: an all-cross-pod permutation (host i -> host
  // (i + 512) mod 1024) over the same 1024-host fat-tree, with the
  // inter-switch links throttled below the 156 MB/s host links. ECMP
  // spreads the 1024 flows across the 64 cores; aggregate goodput tracks
  // the fabric tier until the trunks become the bottleneck.
  suite::ResultTable oversub(
      "Cross-pod permutation goodput (MB/s), k=16 fat-tree, 1024 hosts, "
      "16 x 1 KB frames per flow",
      {"trunk_MBps", "agg_MBps", "max_queue"});
  struct OversubPoint {
    double aggMBps = 0;
    double maxQueue = 0;
  };
  const std::vector<OversubPoint> oversubRows = harness::runSweep(
      trunks.size(),
      [&](harness::PointEnv& env) {
        sim::Engine eng;
        // Buffers large enough never to drop (4096 frames) but finite, so
        // the fabric meters occupancy: max_queue shows where the slow
        // trunks back traffic up.
        fabric::Network net(
            eng, rawFatTree(16, 1024, 4096, trunks[env.index]));
        std::uint64_t deliveredBytes = 0;
        sim::SimTime last = 0;
        for (std::uint32_t n = 0; n < 1024; ++n) {
          net.setReceiver(n, [&](fabric::Packet&& f) {
            deliveredBytes += f.payload.size();
            last = std::max(last, eng.now());
          });
        }
        for (std::uint32_t s = 0; s < 1024; ++s) {
          for (int i = 0; i < 16; ++i) {
            net.send(rawFrame(s, (s + 512u) % 1024u, 1024));
          }
        }
        eng.run();
        return OversubPoint{
            static_cast<double>(deliveredBytes) / 1e6 / sim::toSec(last),
            static_cast<double>(net.maxSwitchQueueDepth())};
      },
      sweepOptions());
  for (std::size_t i = 0; i < trunks.size(); ++i) {
    oversub.addRow(
        {trunks[i], oversubRows[i].aggMBps, oversubRows[i].maxQueue});
  }
  vibe::bench::emit(oversub);
  std::printf(
      "The fat-tree's tiers price the Clos geometry: each tier adds two\n"
      "link serializations plus two switch forwards each way. Incast is\n"
      "absorbed silently by the legacy unbounded wire (occupancy is only\n"
      "metered on finite buffers, hence max_queue 0 on that row) but\n"
      "tail-drops once port buffers are finite — the drop count, not\n"
      "latency, is the congestion signal. Under the cross-pod permutation\n"
      "the 64 cores carry all 1024 flows, so aggregate goodput degrades\n"
      "roughly with the trunk rate once it falls below the host links'.\n");
  return 0;
}

}  // namespace

VIBE_BENCH_MAIN(ext_topology, run)
