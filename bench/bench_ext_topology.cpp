// Extension: multi-switch topology. The paper's testbeds used a single
// switch; scaling a SAN past one switch adds trunk hops and trunk sharing.
// This bench quantifies both on the cLAN model: the per-hop latency tax of
// crossing the root, and the bandwidth collapse when an oversubscribed
// trunk carries concurrent flows.
#include <cstdio>

#include "bench_common.hpp"
#include "vibe/datatransfer.hpp"

int main() {
  using namespace vibe;
  using namespace vibe::bench;

  printHeader("Two-level switch topology",
              "Extension: latency/bandwidth across a root switch and under "
              "trunk oversubscription (paper testbeds were single-switch)");

  suite::ResultTable lat("One-way latency (us): single switch vs via root",
                         {"bytes", "flat", "cross_leaf"});
  for (const std::uint64_t size : {4ull, 1024ull, 8192ull, 28672ull}) {
    suite::TransferConfig t;
    t.msgBytes = size;
    suite::ClusterConfig flat = clusterFor(nic::clanProfile());
    suite::ClusterConfig tree = flat;
    tree.nodesPerSwitch = 1;  // nodes 0 and 1 sit on different leaves
    lat.addRow({static_cast<double>(size),
                suite::runPingPong(flat, t).latencyUsec,
                suite::runPingPong(tree, t).latencyUsec});
  }
  vibe::bench::emit(lat);

  suite::ResultTable bw(
      "Streaming bandwidth (MB/s) vs trunk capacity, 8 KB messages",
      {"trunk_MBps", "bandwidth"});
  for (const double trunk : {156.0, 110.0, 60.0, 30.0}) {
    suite::ClusterConfig tree = clusterFor(nic::clanProfile());
    tree.nodesPerSwitch = 1;
    tree.trunkMBps = trunk;
    suite::TransferConfig t;
    t.msgBytes = 8192;
    bw.addRow({trunk, suite::runBandwidth(tree, t).bandwidthMBps});
  }
  vibe::bench::emit(bw);
  std::printf(
      "Crossing the root adds two trunk traversals plus its forwarding\n"
      "latency at every size; once the trunk is slower than the hosts'\n"
      "PCI DMA (~112 MB/s here), it becomes the end-to-end bottleneck.\n");
  return 0;
}
