// Extension: multi-switch topology. The paper's testbeds used a single
// switch; scaling a SAN past one switch adds trunk hops and trunk sharing.
// This bench quantifies both on the cLAN model: the per-hop latency tax of
// crossing the root, and the bandwidth collapse when an oversubscribed
// trunk carries concurrent flows.
#include <cstdio>

#include "bench_common.hpp"
#include "bench_registry.hpp"
#include "vibe/datatransfer.hpp"

namespace {

int run(int, char**) {
  using namespace vibe;
  using namespace vibe::bench;

  printHeader("Two-level switch topology",
              "Extension: latency/bandwidth across a root switch and under "
              "trunk oversubscription (paper testbeds were single-switch)");

  suite::ResultTable lat("One-way latency (us): single switch vs via root",
                         {"bytes", "flat", "cross_leaf"});
  const std::vector<std::uint64_t> sizes = {4, 1024, 8192, 28672};
  struct LatPoint {
    double flat = 0.0;
    double tree = 0.0;
  };
  const auto latPoints = harness::runSweep(
      sizes.size(),
      [&](harness::PointEnv& env) {
        suite::TransferConfig t;
        t.msgBytes = sizes[env.index];
        suite::ClusterConfig flat = clusterFor(nic::clanProfile(), 2, env);
        suite::ClusterConfig tree = flat;
        tree.nodesPerSwitch = 1;  // nodes 0 and 1 sit on different leaves
        return LatPoint{suite::runPingPong(flat, t).latencyUsec,
                        suite::runPingPong(tree, t).latencyUsec};
      },
      sweepOptions());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    lat.addRow({static_cast<double>(sizes[i]), latPoints[i].flat,
                latPoints[i].tree});
  }
  vibe::bench::emit(lat);

  suite::ResultTable bw(
      "Streaming bandwidth (MB/s) vs trunk capacity, 8 KB messages",
      {"trunk_MBps", "bandwidth"});
  const std::vector<double> trunks = {156.0, 110.0, 60.0, 30.0};
  const auto bwPoints = harness::runSweep(
      trunks.size(),
      [&](harness::PointEnv& env) {
        suite::ClusterConfig tree = clusterFor(nic::clanProfile(), 2, env);
        tree.nodesPerSwitch = 1;
        tree.trunkMBps = trunks[env.index];
        suite::TransferConfig t;
        t.msgBytes = 8192;
        return suite::runBandwidth(tree, t).bandwidthMBps;
      },
      sweepOptions());
  for (std::size_t i = 0; i < trunks.size(); ++i) {
    bw.addRow({trunks[i], bwPoints[i]});
  }
  vibe::bench::emit(bw);
  std::printf(
      "Crossing the root adds two trunk traversals plus its forwarding\n"
      "latency at every size; once the trunk is slower than the hosts'\n"
      "PCI DMA (~112 MB/s here), it becomes the end-to-end bottleneck.\n");
  return 0;
}

}  // namespace

VIBE_BENCH_MAIN(ext_topology, run)
