// Fig. 4: base latency and CPU utilization with blocking completion
// (VipSendWait/VipRecvWait). Paper shape: blocking latency significantly
// above polling latency (interrupt + scheduler wakeup on the critical
// path); CPU utilizations comparable across implementations for most sizes,
// with M-VIA highest for small messages (kernel emulation).
#include <cstdio>

#include "bench_common.hpp"
#include "vibe/datatransfer.hpp"

int main() {
  using namespace vibe;
  using namespace vibe::bench;

  printHeader("Base latency & CPU utilization, blocking",
              "Fig. 4: blocking latency >> polling latency; M-VIA's CPU "
              "utilization highest for small messages");

  suite::ResultTable lat("One-way latency, blocking (us)",
                         {"bytes", "mvia", "bvia", "clan"});
  suite::ResultTable cpu("Receiver CPU utilization, blocking (%)",
                         {"bytes", "mvia", "bvia", "clan"});
  suite::ResultTable delta("Blocking minus polling latency (us)",
                           {"bytes", "mvia", "bvia", "clan"});

  for (const std::uint64_t size : suite::paperMessageSizes()) {
    std::vector<double> latRow{static_cast<double>(size)};
    std::vector<double> cpuRow{static_cast<double>(size)};
    std::vector<double> dRow{static_cast<double>(size)};
    for (const auto& np : paperProfiles()) {
      suite::TransferConfig blocking;
      blocking.msgBytes = size;
      blocking.reap = suite::ReapMode::Block;
      const auto b = suite::runPingPong(clusterFor(np.profile), blocking);
      suite::TransferConfig polling = blocking;
      polling.reap = suite::ReapMode::Poll;
      const auto p = suite::runPingPong(clusterFor(np.profile), polling);
      latRow.push_back(b.latencyUsec);
      cpuRow.push_back(b.receiverCpuPct);
      dRow.push_back(b.latencyUsec - p.latencyUsec);
    }
    lat.addRow(latRow);
    cpu.addRow(cpuRow);
    delta.addRow(dRow);
  }

  vibe::bench::emit(lat);
  vibe::bench::emit(cpu);
  vibe::bench::emit(delta);
  std::printf(
      "With polling every implementation runs at 100%% CPU (paper §4.3.1);\n"
      "blocking trades latency for idle cycles. Bandwidth under blocking is\n"
      "similar to polling and is therefore not shown, as in the paper.\n");
  return 0;
}
