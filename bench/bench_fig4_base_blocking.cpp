// Fig. 4: base latency and CPU utilization with blocking completion
// (VipSendWait/VipRecvWait). Paper shape: blocking latency significantly
// above polling latency (interrupt + scheduler wakeup on the critical
// path); CPU utilizations comparable across implementations for most sizes,
// with M-VIA highest for small messages (kernel emulation).
#include <cstdio>

#include "bench_common.hpp"
#include "bench_registry.hpp"
#include "vibe/datatransfer.hpp"

namespace {

int run(int, char**) {
  using namespace vibe;
  using namespace vibe::bench;

  printHeader("Base latency & CPU utilization, blocking",
              "Fig. 4: blocking latency >> polling latency; M-VIA's CPU "
              "utilization highest for small messages");

  suite::ResultTable lat("One-way latency, blocking (us)",
                         {"bytes", "mvia", "bvia", "clan"});
  suite::ResultTable cpu("Receiver CPU utilization, blocking (%)",
                         {"bytes", "mvia", "bvia", "clan"});
  suite::ResultTable delta("Blocking minus polling latency (us)",
                           {"bytes", "mvia", "bvia", "clan"});

  const auto sizes = suite::paperMessageSizes();
  const auto profiles = paperProfiles();
  struct Point {
    double lat = 0.0;
    double cpu = 0.0;
    double delta = 0.0;
  };
  const auto points = harness::runSweep(
      sizes.size() * profiles.size(),
      [&](harness::PointEnv& env) {
        const std::uint64_t size = sizes[env.index / profiles.size()];
        const auto& np = profiles[env.index % profiles.size()];
        suite::TransferConfig blocking;
        blocking.msgBytes = size;
        blocking.reap = suite::ReapMode::Block;
        const auto b =
            suite::runPingPong(clusterFor(np.profile, 2, env), blocking);
        suite::TransferConfig polling = blocking;
        polling.reap = suite::ReapMode::Poll;
        const auto p =
            suite::runPingPong(clusterFor(np.profile, 2, env), polling);
        return Point{b.latencyUsec, b.receiverCpuPct,
                     b.latencyUsec - p.latencyUsec};
      },
      sweepOptions());

  for (std::size_t si = 0; si < sizes.size(); ++si) {
    std::vector<double> latRow{static_cast<double>(sizes[si])};
    std::vector<double> cpuRow{static_cast<double>(sizes[si])};
    std::vector<double> dRow{static_cast<double>(sizes[si])};
    for (std::size_t pi = 0; pi < profiles.size(); ++pi) {
      const Point& pt = points[si * profiles.size() + pi];
      latRow.push_back(pt.lat);
      cpuRow.push_back(pt.cpu);
      dRow.push_back(pt.delta);
    }
    lat.addRow(latRow);
    cpu.addRow(cpuRow);
    delta.addRow(dRow);
  }

  vibe::bench::emit(lat);
  vibe::bench::emit(cpu);
  vibe::bench::emit(delta);
  std::printf(
      "With polling every implementation runs at 100%% CPU (paper §4.3.1);\n"
      "blocking trades latency for idle cycles. Bandwidth under blocking is\n"
      "similar to polling and is therefore not shown, as in the paper.\n");
  return 0;
}

}  // namespace

VIBE_BENCH_MAIN(fig4_base_blocking, run)
