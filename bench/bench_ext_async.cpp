// TR §3.2.5 extension: asynchronous message handling (L_async) — receive
// completions delivered through the VipRecvNotify handler instead of
// polling or blocking. The handler dispatch costs an interrupt, so async
// latency sits between polling and blocking-with-wakeup.
#include <cstdio>

#include "bench_common.hpp"
#include "bench_registry.hpp"
#include "vibe/datatransfer.hpp"

namespace {

int run(int, char**) {
  using namespace vibe;
  using namespace vibe::bench;

  printHeader("Impact of asynchronous (notify) message handling",
              "TR §3.2.5: notify adds interrupt-dispatch cost over polling");

  suite::ResultTable t("One-way latency (us): poll vs notify vs block",
                       {"bytes", "mvia_poll", "mvia_notify", "mvia_block",
                        "bvia_poll", "bvia_notify", "bvia_block",
                        "clan_poll", "clan_notify", "clan_block"});
  const std::vector<std::uint64_t> sizes = {4, 256, 4096, 28672};
  const std::vector<suite::ReapMode> modes = {
      suite::ReapMode::Poll, suite::ReapMode::Notify, suite::ReapMode::Block};
  const auto profiles = paperProfiles();
  const std::size_t perSize = profiles.size() * modes.size();
  const auto points = harness::runSweep(
      sizes.size() * perSize,
      [&](harness::PointEnv& env) {
        const std::uint64_t size = sizes[env.index / perSize];
        const std::size_t rest = env.index % perSize;
        const auto& np = profiles[rest / modes.size()];
        suite::TransferConfig cfg;
        cfg.msgBytes = size;
        cfg.reap = modes[rest % modes.size()];
        return suite::runPingPong(clusterFor(np.profile, 2, env), cfg)
            .latencyUsec;
      },
      sweepOptions());
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    std::vector<double> row{static_cast<double>(sizes[si])};
    for (std::size_t j = 0; j < perSize; ++j) {
      row.push_back(points[si * perSize + j]);
    }
    t.addRow(row);
  }
  vibe::bench::emit(t);
  return 0;
}

}  // namespace

VIBE_BENCH_MAIN(ext_async, run)
