// TR §3.2.5 extension: asynchronous message handling (L_async) — receive
// completions delivered through the VipRecvNotify handler instead of
// polling or blocking. The handler dispatch costs an interrupt, so async
// latency sits between polling and blocking-with-wakeup.
#include <cstdio>

#include "bench_common.hpp"
#include "vibe/datatransfer.hpp"

int main() {
  using namespace vibe;
  using namespace vibe::bench;

  printHeader("Impact of asynchronous (notify) message handling",
              "TR §3.2.5: notify adds interrupt-dispatch cost over polling");

  suite::ResultTable t("One-way latency (us): poll vs notify vs block",
                       {"bytes", "mvia_poll", "mvia_notify", "mvia_block",
                        "bvia_poll", "bvia_notify", "bvia_block",
                        "clan_poll", "clan_notify", "clan_block"});
  for (const std::uint64_t size : {4ull, 256ull, 4096ull, 28672ull}) {
    std::vector<double> row{static_cast<double>(size)};
    for (const auto& np : paperProfiles()) {
      for (const auto mode : {suite::ReapMode::Poll, suite::ReapMode::Notify,
                              suite::ReapMode::Block}) {
        suite::TransferConfig cfg;
        cfg.msgBytes = size;
        cfg.reap = mode;
        const auto r = suite::runPingPong(clusterFor(np.profile), cfg);
        row.push_back(r.latencyUsec);
      }
    }
    t.addRow(row);
  }
  vibe::bench::emit(t);
  return 0;
}
