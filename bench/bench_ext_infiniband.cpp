// Extension: the InfiniBand forward-port the paper's conclusion promises
// ("we also plan to develop a similar micro-benchmark suite for the
// upcoming InfiniBand Architecture", §5). IBA carried VIA's verbs forward
// — QPs, CQs, registration, send/recv + both RDMA directions — so the
// VIBe suite runs unchanged against a first-generation HCA model and
// shows the generational jump over the paper's three systems.
#include <cstdio>

#include "bench_common.hpp"
#include "bench_registry.hpp"
#include "vibe/datatransfer.hpp"

namespace {

int run(int, char**) {
  using namespace vibe;
  using namespace vibe::bench;

  printHeader("VIBe on an InfiniBand-class HCA",
              "Section 5 future work: the suite applied to IBA unchanged");

  std::vector<NamedProfile> all = paperProfiles();
  all.push_back({"iba", nic::profileByName("iba")});

  suite::ResultTable lat("One-way latency (us), polling",
                         {"bytes", "mvia", "bvia", "clan", "iba"});
  suite::ResultTable bw("Bandwidth (MB/s)",
                        {"bytes", "mvia", "bvia", "clan", "iba"});
  const std::vector<std::uint64_t> sizes = {4, 1024, 8192, 28672};
  struct Point {
    double lat = 0.0;
    double bw = 0.0;
  };
  const auto points = harness::runSweep(
      sizes.size() * all.size(),
      [&](harness::PointEnv& env) {
        const std::uint64_t size = sizes[env.index / all.size()];
        const auto& np = all[env.index % all.size()];
        suite::TransferConfig cfg;
        cfg.msgBytes = size;
        Point pt;
        pt.lat =
            suite::runPingPong(clusterFor(np.profile, 2, env), cfg)
                .latencyUsec;
        pt.bw = suite::runBandwidth(clusterFor(np.profile, 2, env), cfg)
                    .bandwidthMBps;
        return pt;
      },
      sweepOptions());
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    std::vector<double> latRow{static_cast<double>(sizes[si])};
    std::vector<double> bwRow{static_cast<double>(sizes[si])};
    for (std::size_t pi = 0; pi < all.size(); ++pi) {
      latRow.push_back(points[si * all.size() + pi].lat);
      bwRow.push_back(points[si * all.size() + pi].bw);
    }
    lat.addRow(latRow);
    bw.addRow(bwRow);
  }
  emit(lat);
  emit(bw);

  // RDMA read — the verb none of the paper's systems implemented.
  const auto rdPoints = harness::runSweep(
      1,
      [&](harness::PointEnv& env) {
        suite::TransferConfig rd;
        rd.msgBytes = 4096;
        rd.useRdmaWrite = true;
        return suite::runPingPong(clusterFor(all.back().profile, 2, env), rd)
            .latencyUsec;
      },
      sweepOptions());
  std::printf(
      "RDMA write ping on IBA: %.2f us one way (and RDMA read is native —\n"
      "see the get/put layer, whose get() uses it only on this profile).\n"
      "Every VIBe insight transfers: the components are the same verbs,\n"
      "only the constants moved a decade.\n",
      rdPoints[0]);
  return 0;
}

}  // namespace

VIBE_BENCH_MAIN(ext_infiniband, run)
