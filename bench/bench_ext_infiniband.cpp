// Extension: the InfiniBand forward-port the paper's conclusion promises
// ("we also plan to develop a similar micro-benchmark suite for the
// upcoming InfiniBand Architecture", §5). IBA carried VIA's verbs forward
// — QPs, CQs, registration, send/recv + both RDMA directions — so the
// VIBe suite runs unchanged against a first-generation HCA model and
// shows the generational jump over the paper's three systems.
#include <cstdio>

#include "bench_common.hpp"
#include "vibe/datatransfer.hpp"

int main() {
  using namespace vibe;
  using namespace vibe::bench;

  printHeader("VIBe on an InfiniBand-class HCA",
              "Section 5 future work: the suite applied to IBA unchanged");

  std::vector<NamedProfile> all = paperProfiles();
  all.push_back({"iba", nic::profileByName("iba")});

  suite::ResultTable lat("One-way latency (us), polling",
                         {"bytes", "mvia", "bvia", "clan", "iba"});
  suite::ResultTable bw("Bandwidth (MB/s)",
                        {"bytes", "mvia", "bvia", "clan", "iba"});
  for (const std::uint64_t size : {4ull, 1024ull, 8192ull, 28672ull}) {
    std::vector<double> latRow{static_cast<double>(size)};
    std::vector<double> bwRow{static_cast<double>(size)};
    for (const auto& np : all) {
      suite::TransferConfig cfg;
      cfg.msgBytes = size;
      latRow.push_back(suite::runPingPong(clusterFor(np.profile), cfg)
                           .latencyUsec);
      bwRow.push_back(suite::runBandwidth(clusterFor(np.profile), cfg)
                          .bandwidthMBps);
    }
    lat.addRow(latRow);
    bw.addRow(bwRow);
  }
  emit(lat);
  emit(bw);

  // RDMA read — the verb none of the paper's systems implemented.
  suite::TransferConfig rd;
  rd.msgBytes = 4096;
  rd.useRdmaWrite = true;
  const auto iba = suite::runPingPong(clusterFor(all.back().profile), rd);
  std::printf(
      "RDMA write ping on IBA: %.2f us one way (and RDMA read is native —\n"
      "see the get/put layer, whose get() uses it only on this profile).\n"
      "Every VIBe insight transfers: the components are the same verbs,\n"
      "only the constants moved a decade.\n",
      iba.latencyUsec);
  return 0;
}
