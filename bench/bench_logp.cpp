// LogP parameter extraction. The paper argues (§1) that the LogP model's
// four parameters cannot answer the questions VIBe probes — but they are
// still the common currency for communication-layer comparisons, so this
// bench extracts them from each implementation model:
//   o_s : sender overhead   (CPU time inside VipPostSend, incl. doorbell)
//   o_r : receiver overhead (CPU time to reap an already-arrived message)
//   g   : gap               (inverse small-message streaming rate)
//   L   : latency           (one-way time minus the overheads)
#include <cstdio>

#include "bench_common.hpp"
#include "bench_registry.hpp"
#include "vibe/datatransfer.hpp"
#include "vipl/vipl.hpp"

namespace {

using namespace vibe;

struct LogP {
  double os = 0;
  double orr = 0;
  double g = 0;
  double latency = 0;  // total one-way
  double L = 0;        // latency - os - orr
};

LogP extract(const nic::NicProfile& profile,
             const harness::PointEnv& penv) {
  LogP result;

  // Overheads: timed directly around the API calls on a live connection.
  suite::ClusterConfig cc = bench::clusterFor(profile, 2, penv);
  suite::Cluster cluster(cc);
  constexpr int kIters = 50;
  auto sender = [&](suite::NodeEnv& env) {
    vipl::Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    auto buf = nic.memory().alloc(4096, mem::kPageSize);
    mem::MemHandle h = 0;
    vipl::VipRegisterMem(nic, buf, 4096, {ptag, false, false}, h);
    vipl::Vi* vi = nullptr;
    vipl::VipViAttributes va;
    va.ptag = ptag;
    va.reliabilityLevel = nic::Reliability::ReliableDelivery;
    vipl::VipCreateVi(nic, va, nullptr, nullptr, vi);
    vipl::VipConnectRequest(nic, vi, {1, 3}, sim::kSecond);
    double postTotal = 0;
    for (int i = 0; i < kIters; ++i) {
      vipl::VipDescriptor d = vipl::VipDescriptor::send(buf, h, 4);
      const sim::SimTime t0 = env.now();
      vipl::VipPostSend(nic, vi, &d);
      postTotal += sim::toUsec(env.now() - t0);  // o_s: caller-blocked time
      vipl::VipDescriptor* done = nullptr;
      nic.pollSend(vi, done);
      env.self.advance(sim::usec(200), sim::CpuUse::Idle);  // drain pipeline
    }
    result.os = postTotal / kIters;
  };
  auto receiver = [&](suite::NodeEnv& env) {
    vipl::Provider& nic = env.nic;
    auto ptag = vipl::VipCreatePtag(nic);
    auto buf = nic.memory().alloc(4096, mem::kPageSize);
    mem::MemHandle h = 0;
    vipl::VipRegisterMem(nic, buf, 4096, {ptag, false, false}, h);
    vipl::Vi* vi = nullptr;
    vipl::VipViAttributes va;
    va.ptag = ptag;
    va.reliabilityLevel = nic::Reliability::ReliableDelivery;
    vipl::VipCreateVi(nic, va, nullptr, nullptr, vi);
    vipl::PendingConn conn;
    vipl::VipConnectWait(nic, {1, 3}, sim::kSecond, conn);
    vipl::VipConnectAccept(nic, conn, vi);
    double reapTotal = 0;
    for (int i = 0; i < kIters; ++i) {
      vipl::VipDescriptor d = vipl::VipDescriptor::recv(buf, h, 4096);
      vipl::VipPostRecv(nic, vi, &d);
      // Let the message arrive and settle, then time only the reap.
      env.self.advance(sim::usec(150), sim::CpuUse::Idle);
      const sim::SimTime t0 = env.now();
      vipl::VipDescriptor* done = nullptr;
      nic.recvDone(vi, done);
      reapTotal += sim::toUsec(env.now() - t0);  // o_r: completed reap
    }
    result.orr = reapTotal / kIters;
  };
  cluster.run({sender, receiver});

  // Latency and gap from the standard suite probes.
  suite::TransferConfig tiny;
  tiny.msgBytes = 4;
  result.latency =
      suite::runPingPong(bench::clusterFor(profile, 2, penv), tiny)
          .latencyUsec;
  suite::TransferConfig stream = tiny;
  stream.burst = 200;
  const double mbps =
      suite::runBandwidth(bench::clusterFor(profile, 2, penv), stream)
          .bandwidthMBps;
  result.g = 4.0 / mbps;  // us between 4-byte message injections
  result.L = result.latency - result.os - result.orr;
  return result;
}

int run(int, char**) {
  using namespace vibe::bench;
  printHeader("LogP parameters of the three implementations",
              "Section 1: 'the LogP model attempts to capture the major "
              "characteristics with a few parameters' — extracted here for "
              "reference, though VIBe exists because they do not suffice");

  std::printf("%-8s %10s %10s %10s %12s %10s\n", "impl", "o_s (us)",
              "o_r (us)", "g (us)", "lat 4B (us)", "L (us)");
  const auto profiles = paperProfiles();
  const auto params = harness::runSweep(
      profiles.size(),
      [&](harness::PointEnv& env) {
        return extract(profiles[env.index].profile, env);
      },
      sweepOptions());
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const LogP& p = params[i];
    std::printf("%-8s %10.2f %10.2f %10.2f %12.2f %10.2f\n",
                profiles[i].shortName.c_str(), p.os, p.orr, p.g, p.latency,
                p.L);
  }
  std::printf(
      "\nWhat LogP hides (and VIBe shows): o_s/o_r say nothing about how\n"
      "they scale with buffer reuse, active VIs, or segment counts; g is a\n"
      "single number although the gap of firmware implementations grows\n"
      "with every active VI; L mixes NIC processing with wire time.\n");
  return 0;
}

}  // namespace

VIBE_BENCH_MAIN(logp, run)
