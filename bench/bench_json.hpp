// Perf-trajectory JSON output for the gbench_* binaries.
//
// With VIBE_JSON=1 each gbench writes a flat BENCH_<name>.json file of
// named scalar metrics (events/sec, ping-pong latency, ...) into the
// current directory, so every PR leaves a recorded wall-clock trajectory
// of the simulator substrate next to the virtual-time paper tables.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace vibe::bench {

inline bool jsonRequested() {
  const char* v = std::getenv("VIBE_JSON");
  return v != nullptr && v[0] == '1';
}

/// Writes {"bench":<name>, "<metric>":<value>, ...} to BENCH_<name>.json.
/// Non-finite values are emitted as null. Returns false on I/O failure.
inline bool writeBenchJson(
    const std::string& name,
    const std::vector<std::pair<std::string, double>>& metrics) {
  const std::string path = "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_json: cannot open %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\"", name.c_str());
  for (const auto& [key, value] : metrics) {
    if (std::isnan(value) || std::isinf(value)) {
      std::fprintf(f, ",\n  \"%s\": null", key.c_str());
    } else {
      std::fprintf(f, ",\n  \"%s\": %.17g", key.c_str(), value);
    }
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace vibe::bench
