// Perf-trajectory JSON output for the gbench_* binaries.
//
// With VIBE_JSON=1 each gbench writes a BENCH_<name>.json file of named
// scalar metrics (events/sec, ping-pong latency, ...) into the current
// directory, so every PR leaves a recorded wall-clock trajectory of the
// simulator substrate next to the virtual-time paper tables.
//
// Schema 2 (this layout): the flat top-level keys of schema 1 are kept
// verbatim so existing trajectory tooling keeps working, plus a "schema"
// version marker and optional named groups of nested metrics (stage
// attribution, percentile families). Consumers that only know schema 1
// can ignore both additions.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace vibe::bench {

inline bool jsonRequested() {
  const char* v = std::getenv("VIBE_JSON");
  return v != nullptr && v[0] == '1';
}

/// A named group of scalar metrics, emitted as one nested JSON object.
struct MetricGroup {
  std::string name;
  std::vector<std::pair<std::string, double>> metrics;
};

/// Writes {"bench":<name>, "schema":2, "<metric>":<value>, ...,
/// "<group>":{...}} to BENCH_<name>.json. Flat keys come first and are
/// byte-compatible with schema 1. Non-finite values are emitted as null.
/// Returns false on I/O failure.
inline bool writeBenchJson(
    const std::string& name,
    const std::vector<std::pair<std::string, double>>& metrics,
    const std::vector<MetricGroup>& groups = {}) {
  const std::string path = "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_json: cannot open %s\n", path.c_str());
    return false;
  }
  const auto emitMetric = [f](const std::string& key, double value,
                              const char* indent) {
    if (std::isnan(value) || std::isinf(value)) {
      std::fprintf(f, ",\n%s\"%s\": null", indent, key.c_str());
    } else {
      std::fprintf(f, ",\n%s\"%s\": %.17g", indent, key.c_str(), value);
    }
  };
  std::fprintf(f, "{\n  \"bench\": \"%s\"", name.c_str());
  std::fprintf(f, ",\n  \"schema\": 2");
  for (const auto& [key, value] : metrics) emitMetric(key, value, "  ");
  for (const auto& group : groups) {
    std::fprintf(f, ",\n  \"%s\": {", group.name.c_str());
    bool first = true;
    for (const auto& [key, value] : group.metrics) {
      if (first) {
        // No leading comma on the first nested entry.
        if (std::isnan(value) || std::isinf(value)) {
          std::fprintf(f, "\n    \"%s\": null", key.c_str());
        } else {
          std::fprintf(f, "\n    \"%s\": %.17g", key.c_str(), value);
        }
        first = false;
      } else {
        emitMetric(key, value, "    ");
      }
    }
    std::fprintf(f, "\n  }");
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace vibe::bench
