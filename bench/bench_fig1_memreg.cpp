// Fig. 1: memory registration cost vs buffer length for the three
// implementations. Paper shape: registration is most expensive on BVIA for
// buffers up to ~20 KB (host<->firmware dialog to install pages in the
// NIC-visible tables); M-VIA's per-page pinning cost grows fastest, so the
// curves cross above ~20 KB.
#include <cstdio>

#include "bench_common.hpp"
#include "bench_registry.hpp"
#include "vibe/nondata.hpp"

namespace {

int run(int, char**) {
  using namespace vibe;
  using namespace vibe::bench;

  printHeader("Memory registration cost",
              "Fig. 1: BVIA most expensive up to ~20 KB; costs grow with "
              "page count; all under ~35 us in the plotted range");

  suite::ResultTable t("Registration cost (us) vs buffer length",
                       {"bytes", "mvia", "bvia", "clan"});
  const auto profiles = paperProfiles();
  const auto sweeps = harness::runSweep(
      profiles.size(),
      [&](harness::PointEnv& env) {
        return suite::runMemCostSweep(
            clusterFor(profiles[env.index].profile, 1, env),
            suite::paperBufferSizes());
      },
      sweepOptions());
  for (std::size_t i = 0; i < sweeps[0].size(); ++i) {
    t.addRow({static_cast<double>(sweeps[0][i].bytes),
              sweeps[0][i].registerUs, sweeps[1][i].registerUs,
              sweeps[2][i].registerUs});
  }
  vibe::bench::emit(t);
  return 0;
}

}  // namespace

VIBE_BENCH_MAIN(fig1_memreg, run)
