// Wall-clock microbenchmarks of the VIPL/NIC stack (google-benchmark):
// how many simulated ping-pongs and registrations per second the harness
// executes. These are simulator-performance numbers, not VIA-performance
// numbers — the virtual-time results live in the bench_* binaries.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "nic/profiles.hpp"
#include "obs/span.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace_export.hpp"
#include "simcore/trace.hpp"
#include "vibe/clientserver.hpp"
#include "vibe/datatransfer.hpp"
#include "upper/dsm/dsm.hpp"
#include "upper/msg/communicator.hpp"
#include "vibe/nondata.hpp"
#include "vibe/report.hpp"

namespace {

using namespace vibe;

suite::ClusterConfig clanCluster() {
  // clusterFor wires the --stats registry in when stats are requested.
  return bench::clusterFor(nic::clanProfile());
}

void BM_SimulatedPingPong(benchmark::State& state) {
  const int iters = static_cast<int>(state.range(0));
  for (auto _ : state) {
    suite::TransferConfig cfg;
    cfg.msgBytes = 64;
    cfg.iterations = iters;
    cfg.warmup = 4;
    const auto r = suite::runPingPong(clanCluster(), cfg);
    benchmark::DoNotOptimize(r.latencyUsec);
  }
  state.SetItemsProcessed(state.iterations() * iters);
  state.SetLabel("simulated round trips");
}
BENCHMARK(BM_SimulatedPingPong)->Arg(50)->Unit(benchmark::kMillisecond);

void BM_SimulatedBandwidthBurst(benchmark::State& state) {
  for (auto _ : state) {
    suite::TransferConfig cfg;
    cfg.msgBytes = 8192;
    cfg.burst = 100;
    const auto r = suite::runBandwidth(clanCluster(), cfg);
    benchmark::DoNotOptimize(r.bandwidthMBps);
  }
  state.SetItemsProcessed(state.iterations() * 100);
  state.SetLabel("simulated messages");
}
BENCHMARK(BM_SimulatedBandwidthBurst)->Unit(benchmark::kMillisecond);

void BM_MemRegistrationSweep(benchmark::State& state) {
  for (auto _ : state) {
    const auto pts = suite::runMemCostSweep(clanCluster(), {4096, 65536}, 4);
    benchmark::DoNotOptimize(pts.size());
  }
  state.SetLabel("register/deregister pairs");
}
BENCHMARK(BM_MemRegistrationSweep)->Unit(benchmark::kMillisecond);

void BM_SimulatedTransactions(benchmark::State& state) {
  for (auto _ : state) {
    suite::ClientServerConfig cfg;
    cfg.transactions = 50;
    cfg.warmup = 5;
    const auto r = suite::runClientServer(clanCluster(), cfg);
    benchmark::DoNotOptimize(r.transactionsPerSec);
  }
  state.SetItemsProcessed(state.iterations() * 50);
  state.SetLabel("simulated transactions");
}
BENCHMARK(BM_SimulatedTransactions)->Unit(benchmark::kMillisecond);

void BM_MsgLayerExchange(benchmark::State& state) {
  // Wall cost of a 4-rank allreduce + barrier through the message layer.
  for (auto _ : state) {
    suite::ClusterConfig cc;
    cc.profile = nic::clanProfile();
    cc.nodes = 4;
    suite::Cluster cluster(cc);
    std::vector<std::function<void(suite::NodeEnv&)>> programs;
    for (std::uint32_t r = 0; r < 4; ++r) {
      programs.push_back([r](suite::NodeEnv& env) {
        auto comm = upper::msg::Communicator::create(env, r, 4, {});
        double v = r + 1.0;
        for (int i = 0; i < 10; ++i) v = comm->allreduceSum(v) / 4.0;
        comm->barrier();
        benchmark::DoNotOptimize(v);
      });
    }
    cluster.run(std::move(programs));
  }
  state.SetItemsProcessed(state.iterations() * 10);
  state.SetLabel("simulated 4-rank allreduces");
}
BENCHMARK(BM_MsgLayerExchange)->Unit(benchmark::kMillisecond);

void BM_DsmSharedCounter(benchmark::State& state) {
  for (auto _ : state) {
    suite::ClusterConfig cc;
    cc.profile = nic::clanProfile();
    cc.nodes = 2;
    suite::Cluster cluster(cc);
    std::vector<std::function<void(suite::NodeEnv&)>> programs;
    for (std::uint32_t r = 0; r < 2; ++r) {
      programs.push_back([r](suite::NodeEnv& env) {
        auto comm = upper::msg::Communicator::create(env, r, 2, {});
        auto dsm = upper::dsm::DsmRegion::create(*comm, 4096, {});
        for (int round = 0; round < 8; ++round) {
          if (static_cast<int>(r) == round % 2) {
            dsm->writeDouble(0, round);
          }
          dsm->barrier();
        }
      });
    }
    cluster.run(std::move(programs));
  }
  state.SetItemsProcessed(state.iterations() * 8);
  state.SetLabel("simulated DSM rounds");
}
BENCHMARK(BM_DsmSharedCounter)->Unit(benchmark::kMillisecond);

/// Wall-clock rate of simulated cLAN round trips through the full
/// VIPL/NIC/fabric stack (the VIBE_JSON trajectory metric).
double measureRoundTripsPerSec() {
  constexpr int kIters = 200;
  double best = 0;
  for (int rep = 0; rep < 3; ++rep) {
    suite::TransferConfig cfg;
    cfg.msgBytes = 64;
    cfg.iterations = kIters;
    cfg.warmup = 4;
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = suite::runPingPong(clanCluster(), cfg);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    benchmark::DoNotOptimize(r.latencyUsec);
    best = std::max(best, kIters / secs);
  }
  return best;
}

/// Observability pass: one instrumented ping-pong run with a span profiler
/// (and, with VIBE_TRACE_OUT, a tracer streaming into the Perfetto
/// exporter) attached. Prints the stage-attribution table and returns the
/// per-stage means for the schema-2 JSON group.
bench::MetricGroup runAttributedPingPong() {
  auto exporter = obs::TraceJsonExporter::fromEnv();
  obs::SpanProfiler spans;
  sim::Tracer tracer;
  obs::TimeSeriesSampler sampler;
  suite::ClusterConfig cc = clanCluster();
  cc.spans = &spans;
  if (exporter) {
    spans.setKeepEvents(true);
    tracer.enableAll();
    tracer.setSink(exporter->makeSink());
    cc.tracer = &tracer;
    // Counter tracks ride along with the span stream: NIC/fabric queue
    // depths sampled every 50 us of virtual time render as ph:"C" tracks
    // above the spans in the Perfetto UI.
    cc.sampler = &sampler;
    cc.samplePeriod = sim::usec(50);
  }
  suite::TransferConfig cfg;
  cfg.msgBytes = 64;
  cfg.iterations = 200;
  cfg.warmup = 4;
  const auto pp = suite::runPingPong(cc, cfg);
  std::printf("%s", suite::renderStageAttribution(spans).c_str());
  std::printf("measured one-way ping-pong latency: %.3f us\n\n",
              pp.latencyUsec);
  if (exporter) {
    exporter->exportSpans(spans);
    sampler.exportCounterTracks(*exporter);
    const std::size_t n = exporter->eventCount();
    if (exporter->finish()) {
      std::printf("wrote %s (%zu trace events, %zu counter windows)\n",
                  exporter->path().c_str(), n, sampler.windowCount());
    }
  }
  bench::MetricGroup group{"stage_usec", {}};
  for (std::size_t s = 0; s < static_cast<std::size_t>(obs::Stage::kCount);
       ++s) {
    const auto stage = static_cast<obs::Stage>(s);
    const obs::Histogram& h = spans.stage(stage);
    if (h.count() == 0) continue;
    group.metrics.emplace_back(std::string(obs::toString(stage)) + "_mean",
                               h.mean() / 1000.0);
  }
  group.metrics.emplace_back("stage_mean_sum", spans.stageMeanSumUsec());
  group.metrics.emplace_back("pingpong_one_way", pp.latencyUsec);
  return group;
}

}  // namespace

int main(int argc, char** argv) {
  vibe::bench::parseStatsFlag(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::vector<vibe::bench::MetricGroup> groups;
  if (vibe::bench::statsAttached() ||
      vibe::obs::TraceJsonExporter::envPath() != nullptr) {
    groups.push_back(runAttributedPingPong());
  }
  if (vibe::bench::jsonRequested()) {
    vibe::suite::TransferConfig cfg;
    cfg.msgBytes = 64;
    cfg.iterations = 200;
    cfg.warmup = 4;
    const auto pp = vibe::suite::runPingPong(clanCluster(), cfg);
    vibe::bench::writeBenchJson(
        "vipl",
        {{"sim_roundtrips_per_sec", measureRoundTripsPerSec()},
         {"pingpong_sim_usec", pp.latencyUsec}},
        groups);
  }
  return 0;
}
