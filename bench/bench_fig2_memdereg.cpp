// Fig. 2: memory deregistration cost vs buffer length. Paper shape:
// deregistration is much cheaper than registration and stays under ~16 us
// even for regions up to 32 MB (essentially O(1) in region size).
#include <cstdio>

#include "bench_common.hpp"
#include "bench_registry.hpp"
#include "vibe/nondata.hpp"

namespace {

int run(int, char**) {
  using namespace vibe;
  using namespace vibe::bench;

  printHeader("Memory deregistration cost",
              "Fig. 2: flat and small; < 16 us up to 32 MB regions");

  suite::ResultTable t("Deregistration cost (us) vs buffer length",
                       {"bytes", "mvia", "bvia", "clan"});
  const auto profiles = paperProfiles();
  const auto sweeps = harness::runSweep(
      profiles.size(),
      [&](harness::PointEnv& env) {
        return suite::runMemCostSweep(
            clusterFor(profiles[env.index].profile, 1, env),
            suite::extendedBufferSizes());
      },
      sweepOptions());
  bool allUnder16 = true;
  for (std::size_t i = 0; i < sweeps[0].size(); ++i) {
    t.addRow({static_cast<double>(sweeps[0][i].bytes),
              sweeps[0][i].deregisterUs, sweeps[1][i].deregisterUs,
              sweeps[2][i].deregisterUs});
    for (const auto& sweep : sweeps) {
      if (sweep[i].deregisterUs >= 16.0) allUnder16 = false;
    }
  }
  vibe::bench::emit(t);
  std::printf("Paper claim 'deregistration < 16 us up to 32 MB': %s\n",
              allUnder16 ? "HOLDS" : "VIOLATED");
  return 0;
}

}  // namespace

VIBE_BENCH_MAIN(fig2_memdereg, run)
