// §4.3.3: impact of completion queues. Latency with receive completions
// checked through a CQ versus directly on the work queue. Paper finding:
// negligible for M-VIA and cLAN; 2-5 us of overhead for BVIA (the firmware
// writes a second completion record into NIC-resident CQ memory).
#include <cstdio>

#include "bench_common.hpp"
#include "bench_registry.hpp"
#include "vibe/datatransfer.hpp"

namespace {

int run(int, char**) {
  using namespace vibe;
  using namespace vibe::bench;

  printHeader("Impact of completion queues",
              "Section 4.3.3: CQ overhead negligible for M-VIA/cLAN, "
              "2-5 us for BVIA");

  suite::ResultTable t("CQ overhead on one-way latency (us)",
                       {"bytes", "mvia_wq", "mvia_cq", "bvia_wq", "bvia_cq",
                        "clan_wq", "clan_cq"});
  const std::vector<std::uint64_t> sizes = {4, 256, 1024, 4096, 28672};
  const auto profiles = paperProfiles();
  struct Point {
    double wq = 0.0;
    double cq = 0.0;
  };
  const auto points = harness::runSweep(
      sizes.size() * profiles.size(),
      [&](harness::PointEnv& env) {
        const std::uint64_t size = sizes[env.index / profiles.size()];
        const auto& np = profiles[env.index % profiles.size()];
        suite::TransferConfig direct;
        direct.msgBytes = size;
        direct.reap = suite::ReapMode::Poll;
        const auto wq =
            suite::runPingPong(clusterFor(np.profile, 2, env), direct);
        suite::TransferConfig viaCq = direct;
        viaCq.reap = suite::ReapMode::PollCq;
        const auto cq =
            suite::runPingPong(clusterFor(np.profile, 2, env), viaCq);
        return Point{wq.latencyUsec, cq.latencyUsec};
      },
      sweepOptions());
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    std::vector<double> row{static_cast<double>(sizes[si])};
    for (std::size_t pi = 0; pi < profiles.size(); ++pi) {
      const Point& pt = points[si * profiles.size() + pi];
      row.push_back(pt.wq);
      row.push_back(pt.cq);
    }
    t.addRow(row);
  }
  vibe::bench::emit(t);

  std::printf("Per-implementation CQ overhead at 4 B (cq - wq):\n");
  const auto deltas = harness::runSweep(
      profiles.size(),
      [&](harness::PointEnv& env) {
        const auto& np = profiles[env.index];
        suite::TransferConfig direct;
        direct.msgBytes = 4;
        const auto wq =
            suite::runPingPong(clusterFor(np.profile, 2, env), direct);
        suite::TransferConfig viaCq = direct;
        viaCq.reap = suite::ReapMode::PollCq;
        const auto cq =
            suite::runPingPong(clusterFor(np.profile, 2, env), viaCq);
        return cq.latencyUsec - wq.latencyUsec;
      },
      sweepOptions());
  for (std::size_t pi = 0; pi < profiles.size(); ++pi) {
    std::printf("  %-6s %+0.2f us\n", profiles[pi].shortName.c_str(),
                deltas[pi]);
  }
  return 0;
}

}  // namespace

VIBE_BENCH_MAIN(cq_overhead, run)
