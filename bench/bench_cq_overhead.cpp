// §4.3.3: impact of completion queues. Latency with receive completions
// checked through a CQ versus directly on the work queue. Paper finding:
// negligible for M-VIA and cLAN; 2-5 us of overhead for BVIA (the firmware
// writes a second completion record into NIC-resident CQ memory).
#include <cstdio>

#include "bench_common.hpp"
#include "vibe/datatransfer.hpp"

int main() {
  using namespace vibe;
  using namespace vibe::bench;

  printHeader("Impact of completion queues",
              "Section 4.3.3: CQ overhead negligible for M-VIA/cLAN, "
              "2-5 us for BVIA");

  suite::ResultTable t("CQ overhead on one-way latency (us)",
                       {"bytes", "mvia_wq", "mvia_cq", "bvia_wq", "bvia_cq",
                        "clan_wq", "clan_cq"});
  for (const std::uint64_t size : {4ull, 256ull, 1024ull, 4096ull, 28672ull}) {
    std::vector<double> row{static_cast<double>(size)};
    for (const auto& np : paperProfiles()) {
      suite::TransferConfig direct;
      direct.msgBytes = size;
      direct.reap = suite::ReapMode::Poll;
      const auto wq = suite::runPingPong(clusterFor(np.profile), direct);
      suite::TransferConfig viaCq = direct;
      viaCq.reap = suite::ReapMode::PollCq;
      const auto cq = suite::runPingPong(clusterFor(np.profile), viaCq);
      row.push_back(wq.latencyUsec);
      row.push_back(cq.latencyUsec);
    }
    t.addRow(row);
  }
  vibe::bench::emit(t);

  std::printf("Per-implementation CQ overhead at 4 B (cq - wq):\n");
  for (const auto& np : paperProfiles()) {
    suite::TransferConfig direct;
    direct.msgBytes = 4;
    const auto wq = suite::runPingPong(clusterFor(np.profile), direct);
    suite::TransferConfig viaCq = direct;
    viaCq.reap = suite::ReapMode::PollCq;
    const auto cq = suite::runPingPong(clusterFor(np.profile), viaCq);
    std::printf("  %-6s %+0.2f us\n", np.shortName.c_str(),
                cq.latencyUsec - wq.latencyUsec);
  }
  return 0;
}
