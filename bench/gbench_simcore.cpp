// Wall-clock microbenchmarks of the simulation substrate itself
// (google-benchmark): event throughput, process context-switch cost,
// resource pipeline arithmetic, and PRNG speed. These bound how fast the
// VIBe suite itself runs — useful when extending the workloads.
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_json.hpp"
#include "simcore/engine.hpp"
#include "simcore/process.hpp"
#include "simcore/prng.hpp"
#include "simcore/resource.hpp"
#include "vibe/datatransfer.hpp"
#include "nic/profiles.hpp"

namespace {

using namespace vibe::sim;

void BM_EventDispatch(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Engine eng;
    for (int i = 0; i < batch; ++i) {
      eng.post(i, [] {});
    }
    eng.run();
    benchmark::DoNotOptimize(eng.executedEvents());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventDispatch)->Arg(1000)->Arg(10000);

void BM_SelfRescheduling(benchmark::State& state) {
  // A single event chain of depth N: stresses push/pop interleaving.
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Engine eng;
    int remaining = depth;
    std::function<void()> step = [&] {
      if (--remaining > 0) eng.post(1, step);
    };
    eng.post(1, step);
    eng.run();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_SelfRescheduling)->Arg(10000);

void BM_ProcessContextSwitch(benchmark::State& state) {
  // Each advance() is two OS-level handoffs (engine->proc->engine).
  const int hops = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Engine eng;
    Process p(eng, "hopper", [&] {
      for (int i = 0; i < hops; ++i) {
        eng.currentProcess()->advance(10);
      }
    });
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * hops);
}
BENCHMARK(BM_ProcessContextSwitch)->Arg(200);

void BM_ResourceAcquire(benchmark::State& state) {
  Resource r("bench");
  SimTime t = 0;
  for (auto _ : state) {
    t = r.acquire(t, 3);
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ResourceAcquire);

void BM_PrngUniform(benchmark::State& state) {
  Xoshiro256 rng(42);
  double acc = 0;
  for (auto _ : state) {
    acc += rng.uniform();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrngUniform);

// --- VIBE_JSON=1 trajectory: direct wall-clock measurements, written to
// BENCH_simcore.json so successive PRs have a recorded perf history. ---

double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Best-of-3 wall-clock events/sec: batches of timer posts drained by run(),
/// the same shape as BM_EventDispatch.
double measureEventsPerSec() {
  constexpr int kBatch = 10000;
  constexpr int kBatches = 100;
  double best = 0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int b = 0; b < kBatches; ++b) {
      Engine eng;
      for (int i = 0; i < kBatch; ++i) {
        eng.post(i, [] {});
      }
      eng.run();
      benchmark::DoNotOptimize(eng.executedEvents());
    }
    best = std::max(best, kBatch * kBatches / secondsSince(t0));
  }
  return best;
}

/// Best-of-3 post+cancel pairs/sec: the retransmit-timer pattern.
double measureCancelsPerSec() {
  constexpr int kPairs = 1000000;
  double best = 0;
  for (int rep = 0; rep < 3; ++rep) {
    Engine eng;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kPairs; ++i) {
      const EventId id = eng.post(1000000, [] {});
      eng.cancel(id);
    }
    best = std::max(best, kPairs / secondsSince(t0));
    eng.run();
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (vibe::bench::jsonRequested()) {
    // Simulated 64-byte cLAN ping-pong: wall cost of the full stack plus
    // the (deterministic) virtual-time latency it reports.
    vibe::suite::ClusterConfig cluster;
    cluster.profile = vibe::nic::clanProfile();
    vibe::suite::TransferConfig cfg;
    cfg.msgBytes = 64;
    cfg.iterations = 200;
    cfg.warmup = 4;
    const auto t0 = std::chrono::steady_clock::now();
    const auto pp = vibe::suite::runPingPong(cluster, cfg);
    const double ppWall = secondsSince(t0);
    vibe::bench::writeBenchJson(
        "simcore", {{"events_per_sec", measureEventsPerSec()},
                    {"post_cancel_pairs_per_sec", measureCancelsPerSec()},
                    {"pingpong_sim_usec", pp.latencyUsec},
                    {"pingpong_wall_sec", ppWall}});
  }
  return 0;
}
