// Wall-clock microbenchmarks of the simulation substrate itself
// (google-benchmark): event throughput, process context-switch cost,
// resource pipeline arithmetic, and PRNG speed. These bound how fast the
// VIBe suite itself runs — useful when extending the workloads.
#include <benchmark/benchmark.h>

#include "simcore/engine.hpp"
#include "simcore/process.hpp"
#include "simcore/prng.hpp"
#include "simcore/resource.hpp"

namespace {

using namespace vibe::sim;

void BM_EventDispatch(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Engine eng;
    for (int i = 0; i < batch; ++i) {
      eng.post(i, [] {});
    }
    eng.run();
    benchmark::DoNotOptimize(eng.executedEvents());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventDispatch)->Arg(1000)->Arg(10000);

void BM_SelfRescheduling(benchmark::State& state) {
  // A single event chain of depth N: stresses push/pop interleaving.
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Engine eng;
    int remaining = depth;
    std::function<void()> step = [&] {
      if (--remaining > 0) eng.post(1, step);
    };
    eng.post(1, step);
    eng.run();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_SelfRescheduling)->Arg(10000);

void BM_ProcessContextSwitch(benchmark::State& state) {
  // Each advance() is two OS-level handoffs (engine->proc->engine).
  const int hops = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Engine eng;
    Process p(eng, "hopper", [&] {
      for (int i = 0; i < hops; ++i) {
        eng.currentProcess()->advance(10);
      }
    });
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * hops);
}
BENCHMARK(BM_ProcessContextSwitch)->Arg(200);

void BM_ResourceAcquire(benchmark::State& state) {
  Resource r("bench");
  SimTime t = 0;
  for (auto _ : state) {
    t = r.acquire(t, 3);
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ResourceAcquire);

void BM_PrngUniform(benchmark::State& state) {
  Xoshiro256 rng(42);
  double acc = 0;
  for (auto _ : state) {
    acc += rng.uniform();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrngUniform);

}  // namespace

BENCHMARK_MAIN();
