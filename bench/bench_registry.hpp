// Bench entry-point registry.
//
// Every bench driver defines one `int run(int, char**)` function and
// declares it with VIBE_BENCH_MAIN(name, run). Built standalone (the
// default), the macro expands to a real main() and the driver is an
// ordinary binary. Built with -DVIBE_BENCH_LIBRARY, the macro instead
// registers the function in a process-wide registry so the golden-table
// tests can link every driver into one binary and re-run each table
// in-process, capturing stdout without spawning subprocesses.
#pragma once

#include <string>
#include <vector>

namespace vibe::bench {

using BenchFn = int (*)(int argc, char** argv);

struct BenchInfo {
  std::string name;
  BenchFn fn = nullptr;
};

/// Registered drivers, in static-init order. Call sites should sort by
/// name before iterating: registration order depends on link order.
inline std::vector<BenchInfo>& benchRegistry() {
  static std::vector<BenchInfo> registry;
  return registry;
}

struct BenchRegistrar {
  BenchRegistrar(const char* name, BenchFn fn) {
    benchRegistry().push_back({name, fn});
  }
};

}  // namespace vibe::bench

#ifdef VIBE_BENCH_LIBRARY
#define VIBE_BENCH_MAIN(name, fn)                                           \
  namespace {                                                               \
  const ::vibe::bench::BenchRegistrar vibeBenchRegistrar_##name(#name, fn); \
  }
#else
#define VIBE_BENCH_MAIN(name, fn)                 \
  int main(int argc, char** argv) {               \
    return fn(argc, argv);                        \
  }
#endif
