// Extension: programming-model layer tax. The paper's refs [14][17][7]
// build MPI, sockets, and DSM over VIA; this bench measures what each of
// this repo's layers costs over raw VIPL on every implementation model —
// the end-to-end answer to the question VIBe's component probes inform.
//
// Rows: 4 B latency-ish round trip and 256 KB transfer throughput for
//   raw     : VipPostSend/pollRecv ping-pong (the Fig. 3 base)
//   sockets : StreamSocket sendAll/recvAll (framing + credits + copies)
//   msg     : Communicator send/recv (eager or rendezvous + matching)
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_common.hpp"
#include "bench_registry.hpp"
#include "upper/msg/communicator.hpp"
#include "upper/sockets/stream.hpp"
#include "vibe/datatransfer.hpp"

namespace {

using namespace vibe;
using upper::msg::Communicator;
using upper::sockets::StreamListener;
using upper::sockets::StreamSocket;

struct LayerNumbers {
  double smallRttUsec = 0;   // 4 B request/response round trip
  double bulkMBps = 0;       // 256 KB one-way transfer
};

LayerNumbers rawNumbers(const nic::NicProfile& profile,
                        const harness::PointEnv& penv) {
  LayerNumbers n;
  suite::TransferConfig ping;
  ping.msgBytes = 4;
  n.smallRttUsec =
      2 * suite::runPingPong(bench::clusterFor(profile, 2, penv), ping)
              .latencyUsec;
  suite::TransferConfig bulk;
  bulk.msgBytes = 32768;
  bulk.burst = 8;  // 256 KB total
  n.bulkMBps =
      suite::runBandwidth(bench::clusterFor(profile, 2, penv), bulk)
          .bandwidthMBps;
  return n;
}

LayerNumbers socketNumbers(const nic::NicProfile& profile,
                        const harness::PointEnv& penv) {
  LayerNumbers n;
  suite::ClusterConfig cc = bench::clusterFor(profile, 2, penv);
  suite::Cluster cluster(cc);
  constexpr int kRtts = 60;
  constexpr std::size_t kBulk = 256 * 1024;
  auto client = [&](suite::NodeEnv& env) {
    auto s = StreamSocket::connect(env, 1, 9090);
    std::array<std::byte, 4> word{};
    // Small round trips.
    const sim::SimTime t0 = env.now();
    for (int i = 0; i < kRtts; ++i) {
      s->sendAll(word);
      s->recvAll(word);
    }
    n.smallRttUsec = sim::toUsec(env.now() - t0) / kRtts;
    // Bulk transfer.
    std::vector<std::byte> bulk(kBulk, std::byte{0x5A});
    const sim::SimTime t1 = env.now();
    s->sendAll(bulk);
    s->recvAll(word);  // receiver confirms full delivery
    n.bulkMBps = kBulk / (sim::toSec(env.now() - t1) * 1e6);
    s->close();
  };
  auto server = [&](suite::NodeEnv& env) {
    StreamListener listener(env, 9090);
    auto s = listener.accept();
    std::array<std::byte, 4> word{};
    for (int i = 0; i < kRtts; ++i) {
      s->recvAll(word);
      s->sendAll(word);
    }
    std::vector<std::byte> bulk(kBulk);
    s->recvAll(bulk);
    s->sendAll(word);
    std::array<std::byte, 1> sink;
    while (s->recvSome(sink) != 0) {
    }
  };
  cluster.run({client, server});
  return n;
}

LayerNumbers msgNumbers(const nic::NicProfile& profile,
                        const harness::PointEnv& penv) {
  LayerNumbers n;
  suite::ClusterConfig cc = bench::clusterFor(profile, 2, penv);
  suite::Cluster cluster(cc);
  constexpr int kRtts = 60;
  constexpr std::size_t kBulk = 256 * 1024;
  std::vector<std::function<void(suite::NodeEnv&)>> programs;
  programs.push_back([&](suite::NodeEnv& env) {
    auto comm = Communicator::create(env, 0, 2, {});
    std::vector<std::byte> word(4);
    const sim::SimTime t0 = env.now();
    for (int i = 0; i < kRtts; ++i) {
      comm->send(1, 1, word);
      (void)comm->recv(1, 2);
    }
    n.smallRttUsec = sim::toUsec(env.now() - t0) / kRtts;
    std::vector<std::byte> bulk(kBulk, std::byte{0x77});
    const sim::SimTime t1 = env.now();
    comm->send(1, 3, bulk);  // rendezvous path
    (void)comm->recv(1, 4);
    n.bulkMBps = kBulk / (sim::toSec(env.now() - t1) * 1e6);
  });
  programs.push_back([&](suite::NodeEnv& env) {
    auto comm = Communicator::create(env, 1, 2, {});
    std::vector<std::byte> word(4);
    for (int i = 0; i < kRtts; ++i) {
      (void)comm->recv(0, 1);
      comm->send(0, 2, word);
    }
    (void)comm->recv(0, 3);
    comm->send(0, 4, word);
  });
  cluster.run(std::move(programs));
  return n;
}

int run(int, char**) {
  using namespace vibe::bench;
  printHeader("Programming-model layer tax",
              "Refs [14][17][7] build layers over VIA; measured here: what "
              "each layer adds over raw VIPL, per implementation");

  suite::ResultTable rtt("4 B round trip (us)",
                         {"impl", "raw", "sockets", "msg"});
  suite::ResultTable bw("256 KB transfer (MB/s)",
                        {"impl", "raw", "sockets", "msg"});
  const auto profiles = paperProfiles();
  struct Point {
    LayerNumbers raw;
    LayerNumbers sock;
    LayerNumbers msg;
  };
  const auto points = harness::runSweep(
      profiles.size(),
      [&](harness::PointEnv& env) {
        const auto& np = profiles[env.index];
        return Point{rawNumbers(np.profile, env),
                     socketNumbers(np.profile, env),
                     msgNumbers(np.profile, env)};
      },
      sweepOptions());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& pt = points[i];
    rtt.addRow({static_cast<double>(i), pt.raw.smallRttUsec,
                pt.sock.smallRttUsec, pt.msg.smallRttUsec});
    bw.addRow({static_cast<double>(i), pt.raw.bulkMBps, pt.sock.bulkMBps,
               pt.msg.bulkMBps});
  }
  vibe::bench::emit(rtt);
  std::printf("(impl: 0 = M-VIA, 1 = BVIA, 2 = cLAN)\n\n");
  vibe::bench::emit(bw);
  std::printf(
      "(impl: 0 = M-VIA, 1 = BVIA, 2 = cLAN)\n\n"
      "The layer tax scales with the implementation's per-message cost:\n"
      "cheap hardware doorbells make the extra layer frames almost free on\n"
      "cLAN, while every extra frame hurts on the firmware model — the\n"
      "guidance VIBe's per-component numbers predict.\n");
  return 0;
}

}  // namespace

VIBE_BENCH_MAIN(ext_layertax, run)
