// TR §3.2.5 extension: RDMA operations (L_rdma / B_rdma). RDMA write with
// immediate data versus the send/receive model. BVIA 2.2 does not
// implement RDMA — its cells print as n/s, itself a VIBe insight.
#include <cmath>
#include <cstdio>
#include <limits>

#include "bench_common.hpp"
#include "bench_registry.hpp"
#include "vibe/datatransfer.hpp"

namespace {

int run(int, char**) {
  using namespace vibe;
  using namespace vibe::bench;

  printHeader("RDMA write vs send/receive",
              "TR §3.2.5: RDMA write skips receive-descriptor matching; "
              "BVIA lacks RDMA entirely (reported as n/s)");

  suite::ResultTable lat("One-way latency (us): send/recv vs RDMA write",
                         {"bytes", "mvia_sr", "mvia_rdma", "bvia_sr",
                          "bvia_rdma", "clan_sr", "clan_rdma"});
  suite::ResultTable bw("Bandwidth (MB/s): send/recv vs RDMA write",
                        {"bytes", "mvia_sr", "mvia_rdma", "bvia_sr",
                         "bvia_rdma", "clan_sr", "clan_rdma"});
  const std::vector<std::uint64_t> sizes = {4, 1024, 4096, 28672};
  const auto profiles = paperProfiles();
  struct Point {
    double srLat = 0.0;
    double rdLat = 0.0;
    double srBw = 0.0;
    double rdBw = 0.0;
  };
  const auto points = harness::runSweep(
      sizes.size() * profiles.size(),
      [&](harness::PointEnv& env) {
        const std::uint64_t size = sizes[env.index / profiles.size()];
        const auto& np = profiles[env.index % profiles.size()];
        suite::TransferConfig sr;
        sr.msgBytes = size;
        const auto pingSr =
            suite::runPingPong(clusterFor(np.profile, 2, env), sr);
        const auto bwSr =
            suite::runBandwidth(clusterFor(np.profile, 2, env), sr);
        suite::TransferConfig rd = sr;
        rd.useRdmaWrite = true;
        const auto pingRd =
            suite::runPingPong(clusterFor(np.profile, 2, env), rd);
        const auto bwRd =
            suite::runBandwidth(clusterFor(np.profile, 2, env), rd);
        const double nanv = std::numeric_limits<double>::quiet_NaN();
        return Point{pingSr.latencyUsec,
                     pingRd.supported ? pingRd.latencyUsec : nanv,
                     bwSr.bandwidthMBps,
                     bwRd.supported ? bwRd.bandwidthMBps : nanv};
      },
      sweepOptions());
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    std::vector<double> latRow{static_cast<double>(sizes[si])};
    std::vector<double> bwRow{static_cast<double>(sizes[si])};
    for (std::size_t pi = 0; pi < profiles.size(); ++pi) {
      const Point& pt = points[si * profiles.size() + pi];
      latRow.push_back(pt.srLat);
      latRow.push_back(pt.rdLat);
      bwRow.push_back(pt.srBw);
      bwRow.push_back(pt.rdBw);
    }
    lat.addRow(latRow);
    bw.addRow(bwRow);
  }
  vibe::bench::emit(lat);
  vibe::bench::emit(bw);
  return 0;
}

}  // namespace

VIBE_BENCH_MAIN(ext_rdma, run)
