// TR §3.2.5 extension: RDMA operations (L_rdma / B_rdma). RDMA write with
// immediate data versus the send/receive model. BVIA 2.2 does not
// implement RDMA — its cells print as n/s, itself a VIBe insight.
#include <cmath>
#include <cstdio>
#include <limits>

#include "bench_common.hpp"
#include "vibe/datatransfer.hpp"

int main() {
  using namespace vibe;
  using namespace vibe::bench;

  printHeader("RDMA write vs send/receive",
              "TR §3.2.5: RDMA write skips receive-descriptor matching; "
              "BVIA lacks RDMA entirely (reported as n/s)");

  suite::ResultTable lat("One-way latency (us): send/recv vs RDMA write",
                         {"bytes", "mvia_sr", "mvia_rdma", "bvia_sr",
                          "bvia_rdma", "clan_sr", "clan_rdma"});
  suite::ResultTable bw("Bandwidth (MB/s): send/recv vs RDMA write",
                        {"bytes", "mvia_sr", "mvia_rdma", "bvia_sr",
                         "bvia_rdma", "clan_sr", "clan_rdma"});
  const double nan = std::numeric_limits<double>::quiet_NaN();

  for (const std::uint64_t size : {4ull, 1024ull, 4096ull, 28672ull}) {
    std::vector<double> latRow{static_cast<double>(size)};
    std::vector<double> bwRow{static_cast<double>(size)};
    for (const auto& np : paperProfiles()) {
      suite::TransferConfig sr;
      sr.msgBytes = size;
      const auto pingSr = suite::runPingPong(clusterFor(np.profile), sr);
      const auto bwSr = suite::runBandwidth(clusterFor(np.profile), sr);
      suite::TransferConfig rd = sr;
      rd.useRdmaWrite = true;
      const auto pingRd = suite::runPingPong(clusterFor(np.profile), rd);
      const auto bwRd = suite::runBandwidth(clusterFor(np.profile), rd);
      latRow.push_back(pingSr.latencyUsec);
      latRow.push_back(pingRd.supported ? pingRd.latencyUsec : nan);
      bwRow.push_back(bwSr.bandwidthMBps);
      bwRow.push_back(bwRd.supported ? bwRd.bandwidthMBps : nan);
    }
    lat.addRow(latRow);
    bw.addRow(bwRow);
  }
  vibe::bench::emit(lat);
  vibe::bench::emit(bw);
  return 0;
}
