// Design-choice ablations (the CANPC'00 taxonomy the paper builds on,
// its ref [5]): starting from one neutral hardware-VIA baseline, change a
// single implementation decision and rerun the relevant VIBe probes.
//
//  A. address-translation placement: host-at-post / NIC-with-SRAM-tables /
//     NIC-with-host-tables+cache — under 100% and 0% buffer reuse
//  B. doorbell implementation: MMIO store vs kernel trap
//  C. translation-cache size (for the host-table scheme)
//  D. interrupt cost vs blocking latency/CPU trade
#include <cstdio>

#include "bench_common.hpp"
#include "vibe/datatransfer.hpp"

namespace {

using namespace vibe;

/// Neutral baseline: cLAN-like hardware engine with middle-of-the-road
/// costs so a single change stands out.
nic::NicProfile baseline() {
  nic::NicProfile p = nic::clanProfile();
  p.name = "ablation-baseline";
  return p;
}

}  // namespace

int main() {
  using namespace vibe::bench;

  printHeader("Design-choice ablations",
              "CANPC'00 taxonomy (paper ref [5]): one decision changed at "
              "a time against a neutral hardware-VIA baseline");

  // --- A: translation placement --------------------------------------
  nic::NicProfile hostXlate = baseline();
  hostXlate.translation = nic::TranslationMode::NicSram;
  hostXlate.translationPerPage = 0;
  hostXlate.hostTranslationPerPage = sim::usec(0.15);

  nic::NicProfile nicSram = baseline();  // translation in NIC SRAM

  nic::NicProfile nicHostTbl = baseline();
  nicHostTbl.translation = nic::TranslationMode::NicTlbHostTable;
  nicHostTbl.tlbHitCost = sim::usec(0.15);
  nicHostTbl.tlbMissCost = sim::usec(22);
  nicHostTbl.tlbEntries = 64;

  suite::ResultTable xlate(
      "A. translation placement: one-way latency (us)",
      {"bytes", "host_r100", "host_r0", "nicsram_r100", "nicsram_r0",
       "nictlb_r100", "nictlb_r0"});
  for (const std::uint64_t size : {4ull, 4096ull, 28672ull}) {
    std::vector<double> row{static_cast<double>(size)};
    for (const auto* prof : {&hostXlate, &nicSram, &nicHostTbl}) {
      for (const int reuse : {100, 0}) {
        suite::TransferConfig cfg;
        cfg.msgBytes = size;
        cfg.reusePercent = reuse;
        cfg.bufferPool = reuse == 100 ? 1 : 160;
        cfg.iterations = 150;
        row.push_back(suite::runPingPong(clusterFor(*prof), cfg).latencyUsec);
      }
    }
    xlate.addRow(row);
  }
  vibe::bench::emit(xlate);
  std::printf(
      "Host translation pays per page on EVERY post (CPU burn) but is\n"
      "reuse-insensitive; NIC SRAM tables are both cheap and insensitive\n"
      "(the cLAN design); NIC caching of host tables is cheap only while\n"
      "the working set fits — the BVIA trap the paper's Fig. 5 exposes.\n\n");

  // --- B: doorbell implementation -------------------------------------
  nic::NicProfile trapBell = baseline();
  trapBell.doorbellCost = sim::usec(2.5);  // int 0x80 instead of MMIO
  suite::ResultTable bell("B. doorbell: one-way latency (us)",
                          {"bytes", "mmio", "kernel_trap"});
  for (const std::uint64_t size : {4ull, 1024ull, 28672ull}) {
    suite::TransferConfig cfg;
    cfg.msgBytes = size;
    bell.addRow({static_cast<double>(size),
                 suite::runPingPong(clusterFor(baseline()), cfg).latencyUsec,
                 suite::runPingPong(clusterFor(trapBell), cfg).latencyUsec});
  }
  vibe::bench::emit(bell);
  std::printf("Two doorbells ring per round trip (recv + send), so the trap\n"
              "adds ~4.7 us to one-way latency at every size.\n\n");

  // --- C: translation-cache size --------------------------------------
  suite::ResultTable tlb(
      "C. cache size (host-table scheme), 12 KB @ 0% reuse",
      {"entries", "latency_us", "bandwidth_MBps"});
  for (const std::size_t entries : {16u, 64u, 256u, 1024u}) {
    nic::NicProfile p = nicHostTbl;
    p.tlbEntries = entries;
    suite::TransferConfig cfg;
    cfg.msgBytes = 12288;
    cfg.reusePercent = 0;
    cfg.bufferPool = 160;
    cfg.iterations = 400;  // several full pool cycles, so a cache that can
    cfg.warmup = 170;      // hold the working set actually gets warm
    const auto ping = suite::runPingPong(clusterFor(p), cfg);
    suite::TransferConfig bcfg = cfg;
    bcfg.burst = 100;
    const auto bw = suite::runBandwidth(clusterFor(p), bcfg);
    tlb.addRow({static_cast<double>(entries), ping.latencyUsec,
                bw.bandwidthMBps});
  }
  vibe::bench::emit(tlb);
  std::printf("A 160-buffer working set (480 pages at 12 KB) defeats any\n"
              "cache smaller than the pool — capacity, not policy, decides.\n\n");

  // --- D: interrupt cost vs blocking ----------------------------------
  suite::ResultTable irq("D. interrupt cost: blocking 4 B reap",
                         {"irq_us", "latency_us", "recv_cpu_pct"});
  for (const double cost : {3.0, 7.0, 15.0, 30.0}) {
    nic::NicProfile p = baseline();
    p.interruptCost = sim::usec(cost);
    suite::TransferConfig cfg;
    cfg.msgBytes = 4;
    cfg.reap = suite::ReapMode::Block;
    const auto r = suite::runPingPong(clusterFor(p), cfg);
    irq.addRow({cost, r.latencyUsec, r.receiverCpuPct});
  }
  vibe::bench::emit(irq);
  std::printf(
      "Each microsecond of interrupt cost lands 1:1 in the blocking round\n"
      "trip (two reaps per round trip, one per direction); the measured\n"
      "utilization falls only because the same busy work spreads over a\n"
      "longer iteration.\n");
  return 0;
}
