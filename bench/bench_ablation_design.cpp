// Design-choice ablations (the CANPC'00 taxonomy the paper builds on,
// its ref [5]): starting from one neutral hardware-VIA baseline, change a
// single implementation decision and rerun the relevant VIBe probes.
//
//  A. address-translation placement: host-at-post / NIC-with-SRAM-tables /
//     NIC-with-host-tables+cache — under 100% and 0% buffer reuse
//  B. doorbell implementation: MMIO store vs kernel trap
//  C. translation-cache size (for the host-table scheme)
//  D. interrupt cost vs blocking latency/CPU trade
#include <cstdio>

#include "bench_common.hpp"
#include "bench_registry.hpp"
#include "vibe/datatransfer.hpp"

namespace {

using namespace vibe;

/// Neutral baseline: cLAN-like hardware engine with middle-of-the-road
/// costs so a single change stands out.
nic::NicProfile baseline() {
  nic::NicProfile p = nic::clanProfile();
  p.name = "ablation-baseline";
  return p;
}

int run(int, char**) {
  using namespace vibe::bench;

  printHeader("Design-choice ablations",
              "CANPC'00 taxonomy (paper ref [5]): one decision changed at "
              "a time against a neutral hardware-VIA baseline");

  // --- A: translation placement --------------------------------------
  nic::NicProfile hostXlate = baseline();
  hostXlate.translation = nic::TranslationMode::NicSram;
  hostXlate.translationPerPage = 0;
  hostXlate.hostTranslationPerPage = sim::usec(0.15);

  nic::NicProfile nicSram = baseline();  // translation in NIC SRAM

  nic::NicProfile nicHostTbl = baseline();
  nicHostTbl.translation = nic::TranslationMode::NicTlbHostTable;
  nicHostTbl.tlbHitCost = sim::usec(0.15);
  nicHostTbl.tlbMissCost = sim::usec(22);
  nicHostTbl.tlbEntries = 64;

  suite::ResultTable xlate(
      "A. translation placement: one-way latency (us)",
      {"bytes", "host_r100", "host_r0", "nicsram_r100", "nicsram_r0",
       "nictlb_r100", "nictlb_r0"});
  const std::vector<std::uint64_t> xlateSizes = {4, 4096, 28672};
  const std::vector<const nic::NicProfile*> xlateProfiles = {
      &hostXlate, &nicSram, &nicHostTbl};
  const std::vector<int> xlateReuse = {100, 0};
  const std::size_t perXlateSize = xlateProfiles.size() * xlateReuse.size();
  const auto xlatePoints = harness::runSweep(
      xlateSizes.size() * perXlateSize,
      [&](harness::PointEnv& env) {
        const std::uint64_t size = xlateSizes[env.index / perXlateSize];
        const std::size_t rest = env.index % perXlateSize;
        const nic::NicProfile* prof = xlateProfiles[rest / xlateReuse.size()];
        const int reuse = xlateReuse[rest % xlateReuse.size()];
        suite::TransferConfig cfg;
        cfg.msgBytes = size;
        cfg.reusePercent = reuse;
        cfg.bufferPool = reuse == 100 ? 1 : 160;
        cfg.iterations = 150;
        return suite::runPingPong(clusterFor(*prof, 2, env), cfg).latencyUsec;
      },
      sweepOptions());
  for (std::size_t si = 0; si < xlateSizes.size(); ++si) {
    std::vector<double> row{static_cast<double>(xlateSizes[si])};
    for (std::size_t j = 0; j < perXlateSize; ++j) {
      row.push_back(xlatePoints[si * perXlateSize + j]);
    }
    xlate.addRow(row);
  }
  vibe::bench::emit(xlate);
  std::printf(
      "Host translation pays per page on EVERY post (CPU burn) but is\n"
      "reuse-insensitive; NIC SRAM tables are both cheap and insensitive\n"
      "(the cLAN design); NIC caching of host tables is cheap only while\n"
      "the working set fits — the BVIA trap the paper's Fig. 5 exposes.\n\n");

  // --- B: doorbell implementation -------------------------------------
  nic::NicProfile trapBell = baseline();
  trapBell.doorbellCost = sim::usec(2.5);  // int 0x80 instead of MMIO
  suite::ResultTable bell("B. doorbell: one-way latency (us)",
                          {"bytes", "mmio", "kernel_trap"});
  const std::vector<std::uint64_t> bellSizes = {4, 1024, 28672};
  struct BellPoint {
    double mmio = 0.0;
    double trap = 0.0;
  };
  const auto bellPoints = harness::runSweep(
      bellSizes.size(),
      [&](harness::PointEnv& env) {
        suite::TransferConfig cfg;
        cfg.msgBytes = bellSizes[env.index];
        return BellPoint{
            suite::runPingPong(clusterFor(baseline(), 2, env), cfg)
                .latencyUsec,
            suite::runPingPong(clusterFor(trapBell, 2, env), cfg)
                .latencyUsec};
      },
      sweepOptions());
  for (std::size_t i = 0; i < bellSizes.size(); ++i) {
    bell.addRow({static_cast<double>(bellSizes[i]), bellPoints[i].mmio,
                 bellPoints[i].trap});
  }
  vibe::bench::emit(bell);
  std::printf("Two doorbells ring per round trip (recv + send), so the trap\n"
              "adds ~4.7 us to one-way latency at every size.\n\n");

  // --- C: translation-cache size --------------------------------------
  suite::ResultTable tlb(
      "C. cache size (host-table scheme), 12 KB @ 0% reuse",
      {"entries", "latency_us", "bandwidth_MBps"});
  const std::vector<std::size_t> tlbSizes = {16u, 64u, 256u, 1024u};
  struct TlbPoint {
    double lat = 0.0;
    double bw = 0.0;
  };
  const auto tlbPoints = harness::runSweep(
      tlbSizes.size(),
      [&](harness::PointEnv& env) {
        nic::NicProfile p = nicHostTbl;
        p.tlbEntries = tlbSizes[env.index];
        suite::TransferConfig cfg;
        cfg.msgBytes = 12288;
        cfg.reusePercent = 0;
        cfg.bufferPool = 160;
        cfg.iterations = 400;  // several full pool cycles, so a cache that
        cfg.warmup = 170;      // can hold the working set actually gets warm
        TlbPoint pt;
        pt.lat = suite::runPingPong(clusterFor(p, 2, env), cfg).latencyUsec;
        suite::TransferConfig bcfg = cfg;
        bcfg.burst = 100;
        pt.bw = suite::runBandwidth(clusterFor(p, 2, env), bcfg).bandwidthMBps;
        return pt;
      },
      sweepOptions());
  for (std::size_t i = 0; i < tlbSizes.size(); ++i) {
    tlb.addRow({static_cast<double>(tlbSizes[i]), tlbPoints[i].lat,
                tlbPoints[i].bw});
  }
  vibe::bench::emit(tlb);
  std::printf("A 160-buffer working set (480 pages at 12 KB) defeats any\n"
              "cache smaller than the pool — capacity, not policy, decides.\n\n");

  // --- D: interrupt cost vs blocking ----------------------------------
  suite::ResultTable irq("D. interrupt cost: blocking 4 B reap",
                         {"irq_us", "latency_us", "recv_cpu_pct"});
  const std::vector<double> irqCosts = {3.0, 7.0, 15.0, 30.0};
  struct IrqPoint {
    double lat = 0.0;
    double cpu = 0.0;
  };
  const auto irqPoints = harness::runSweep(
      irqCosts.size(),
      [&](harness::PointEnv& env) {
        nic::NicProfile p = baseline();
        p.interruptCost = sim::usec(irqCosts[env.index]);
        suite::TransferConfig cfg;
        cfg.msgBytes = 4;
        cfg.reap = suite::ReapMode::Block;
        const auto r = suite::runPingPong(clusterFor(p, 2, env), cfg);
        return IrqPoint{r.latencyUsec, r.receiverCpuPct};
      },
      sweepOptions());
  for (std::size_t i = 0; i < irqCosts.size(); ++i) {
    irq.addRow({irqCosts[i], irqPoints[i].lat, irqPoints[i].cpu});
  }
  vibe::bench::emit(irq);
  std::printf(
      "Each microsecond of interrupt cost lands 1:1 in the blocking round\n"
      "trip (two reaps per round trip, one per direction); the measured\n"
      "utilization falls only because the same busy work spreads over a\n"
      "longer iteration.\n");
  return 0;
}

}  // namespace

VIBE_BENCH_MAIN(ablation_design, run)
