// TR §3.2.5 extension: sender pipeline length (B_pipe) — streaming
// bandwidth versus the number of outstanding send descriptors. One
// outstanding send degenerates to half-round-trip pacing; a few outstanding
// messages saturate the bottleneck stage.
#include <cstdio>

#include "bench_common.hpp"
#include "bench_registry.hpp"
#include "vibe/datatransfer.hpp"

namespace {

int run(int, char**) {
  using namespace vibe;
  using namespace vibe::bench;

  printHeader("Impact of sender pipeline length",
              "TR §3.2.5: bandwidth climbs with pipeline depth and "
              "saturates once the bottleneck stage stays busy");

  const std::vector<int> depths = {1, 2, 4, 8, 16, 0 /* unlimited */};
  const std::vector<std::uint64_t> sizes = {1024, 4096, 28672};
  const auto profiles = paperProfiles();
  const std::size_t perSize = depths.size() * profiles.size();
  const auto points = harness::runSweep(
      sizes.size() * perSize,
      [&](harness::PointEnv& env) {
        const std::uint64_t size = sizes[env.index / perSize];
        const std::size_t rest = env.index % perSize;
        const int depth = depths[rest / profiles.size()];
        const auto& np = profiles[rest % profiles.size()];
        suite::TransferConfig cfg;
        cfg.msgBytes = size;
        cfg.pipelineDepth = depth;
        return suite::runBandwidth(clusterFor(np.profile, 2, env), cfg)
            .bandwidthMBps;
      },
      sweepOptions());
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    suite::ResultTable t(
        "Bandwidth (MB/s), " + std::to_string(sizes[si]) + " B messages",
        {"depth", "mvia", "bvia", "clan"});
    for (std::size_t di = 0; di < depths.size(); ++di) {
      std::vector<double> row{
          depths[di] == 0 ? 999.0 : static_cast<double>(depths[di])};
      for (std::size_t pi = 0; pi < profiles.size(); ++pi) {
        row.push_back(points[si * perSize + di * profiles.size() + pi]);
      }
      t.addRow(row);
    }
    vibe::bench::emit(t);
    std::printf("(depth 999 = unlimited: the whole burst posted up front)\n\n");
  }
  return 0;
}

}  // namespace

VIBE_BENCH_MAIN(ext_pipeline, run)
