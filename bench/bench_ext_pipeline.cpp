// TR §3.2.5 extension: sender pipeline length (B_pipe) — streaming
// bandwidth versus the number of outstanding send descriptors. One
// outstanding send degenerates to half-round-trip pacing; a few outstanding
// messages saturate the bottleneck stage.
#include <cstdio>

#include "bench_common.hpp"
#include "vibe/datatransfer.hpp"

int main() {
  using namespace vibe;
  using namespace vibe::bench;

  printHeader("Impact of sender pipeline length",
              "TR §3.2.5: bandwidth climbs with pipeline depth and "
              "saturates once the bottleneck stage stays busy");

  const int depths[] = {1, 2, 4, 8, 16, 0 /* unlimited */};
  for (const std::uint64_t size : {1024ull, 4096ull, 28672ull}) {
    suite::ResultTable t(
        "Bandwidth (MB/s), " + std::to_string(size) + " B messages",
        {"depth", "mvia", "bvia", "clan"});
    for (const int depth : depths) {
      std::vector<double> row{depth == 0 ? 999.0 : static_cast<double>(depth)};
      for (const auto& np : paperProfiles()) {
        suite::TransferConfig cfg;
        cfg.msgBytes = size;
        cfg.pipelineDepth = depth;
        const auto r = suite::runBandwidth(clusterFor(np.profile), cfg);
        row.push_back(r.bandwidthMBps);
      }
      t.addRow(row);
    }
    vibe::bench::emit(t);
    std::printf("(depth 999 = unlimited: the whole burst posted up front)\n\n");
  }
  return 0;
}
