// Shared helpers for the VIBe bench binaries: the three paper profiles,
// paper-reference printing, and result assembly.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "harness/sweep.hpp"
#include "nic/profiles.hpp"
#include "obs/metrics.hpp"
#include "vibe/cluster.hpp"
#include "vibe/report.hpp"
#include "vibe/results.hpp"

namespace vibe::bench {

struct NamedProfile {
  std::string shortName;
  nic::NicProfile profile;
};

inline std::vector<NamedProfile> paperProfiles() {
  return {{"mvia", nic::mviaProfile()},
          {"bvia", nic::bviaProfile()},
          {"clan", nic::clanProfile()}};
}

/// True when a stats appendix was requested (`--stats` flag, which sets
/// the variable, or VIBE_STATS=1 directly).
inline bool statsRequested() {
  const char* v = std::getenv("VIBE_STATS");
  return v != nullptr && v[0] == '1';
}

/// VIBE_METRICS_OUT destination for the final-registry JSON dump, or
/// nullptr when unset/empty.
inline const char* metricsOutPath() {
  const char* v = std::getenv("VIBE_METRICS_OUT");
  return (v != nullptr && v[0] != '\0') ? v : nullptr;
}

/// True when the benchmark clusters should publish into statsRegistry():
/// either the stdout appendix (--stats / VIBE_STATS=1) or the JSON dump
/// (VIBE_METRICS_OUT=<path>) was requested.
inline bool statsAttached() {
  return statsRequested() || metricsOutPath() != nullptr;
}

/// Process-wide registry the benchmark clusters publish into when stats
/// are requested. Owned here so every cluster built via clusterFor()
/// accumulates into one appendix.
inline obs::MetricsRegistry& statsRegistry() {
  static obs::MetricsRegistry registry;
  return registry;
}

/// Installs the end-of-run appendix printer and, when VIBE_METRICS_OUT
/// is set, the final-registry schema-2 JSON dump (idempotent).
inline void installStatsAppendix() {
  static bool installed = false;
  if (installed) return;
  installed = true;
  // Construct the registry static BEFORE registering the atexit handler:
  // handlers and static destructors unwind together in reverse order, so
  // the handler must come later to still find the registry alive.
  statsRegistry();
  std::atexit([] {
    if (statsRequested()) {
      const std::string appendix =
          suite::renderStatsAppendix(statsRegistry());
      if (!appendix.empty()) std::printf("%s", appendix.c_str());
    }
    if (const char* path = metricsOutPath()) {
      const std::string body = obs::renderMetricsJson(statsRegistry());
      if (std::FILE* f = std::fopen(path, "w")) {
        std::fwrite(body.data(), 1, body.size(), f);
        std::fclose(f);
      } else {
        std::fprintf(stderr, "VIBE_METRICS_OUT: cannot open %s\n", path);
      }
    }
  });
}

/// Strips a `--stats` flag from argv (exporting VIBE_STATS=1 so helpers
/// and child clusters observe it) and arms the appendix printer. Call at
/// the top of a bench main before handing argv to other parsers.
inline void parseStatsFlag(int& argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--stats") {
      setenv("VIBE_STATS", "1", 1);
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  if (statsAttached()) installStatsAppendix();
}

inline suite::ClusterConfig clusterFor(const nic::NicProfile& p,
                                       std::uint32_t nodes = 2) {
  suite::ClusterConfig c;
  c.profile = p;
  c.nodes = nodes;
  if (statsAttached()) {
    c.metrics = &statsRegistry();
    installStatsAppendix();
  }
  return c;
}

/// Sweep-point variant of clusterFor: publishes into the point's private
/// registry (set exactly when stats were requested via sweepOptions())
/// instead of the shared process-wide one, so points can run on worker
/// threads without racing on statsRegistry(). The harness merges the
/// per-point registries into statsRegistry() in index order afterwards.
inline suite::ClusterConfig clusterFor(const nic::NicProfile& p,
                                       std::uint32_t nodes,
                                       const harness::PointEnv& env) {
  suite::ClusterConfig c;
  c.profile = p;
  c.nodes = nodes;
  c.metrics = env.metrics;
  return c;
}

/// Options for harness::runSweep in a bench driver: when stats are
/// requested, arms the appendix printer and routes the per-point
/// registries into statsRegistry().
inline harness::SweepOptions sweepOptions() {
  harness::SweepOptions opts;
  if (statsAttached()) {
    installStatsAppendix();
    opts.mergeInto = &statsRegistry();
  }
  return opts;
}

/// Prints a table; with VIBE_CSV=1 in the environment, also emits the
/// machine-readable CSV block (for plotting scripts), and with VIBE_JSON=1
/// a one-line JSON block (for trajectory/regression tooling).
inline void emit(const suite::ResultTable& table, int precision = 2) {
  std::printf("%s\n", table.renderText(precision).c_str());
  const char* csv = std::getenv("VIBE_CSV");
  if (csv != nullptr && csv[0] == '1') {
    std::printf("--- csv: %s ---\n%s--- end csv ---\n\n",
                table.title().c_str(), table.renderCsv().c_str());
  }
  const char* json = std::getenv("VIBE_JSON");
  if (json != nullptr && json[0] == '1') {
    std::printf("--- json: %s ---\n%s\n--- end json ---\n\n",
                table.title().c_str(), table.renderJson().c_str());
  }
}

inline void printHeader(const std::string& what, const std::string& paperRef) {
  std::printf("\n############################################################\n");
  std::printf("# VIBe reproduction: %s\n", what.c_str());
  std::printf("# Paper reference: %s\n", paperRef.c_str());
  std::printf("############################################################\n");
}

}  // namespace vibe::bench
