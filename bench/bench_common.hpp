// Shared helpers for the VIBe bench binaries: the three paper profiles,
// paper-reference printing, and result assembly.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "nic/profiles.hpp"
#include "vibe/cluster.hpp"
#include "vibe/results.hpp"

namespace vibe::bench {

struct NamedProfile {
  std::string shortName;
  nic::NicProfile profile;
};

inline std::vector<NamedProfile> paperProfiles() {
  return {{"mvia", nic::mviaProfile()},
          {"bvia", nic::bviaProfile()},
          {"clan", nic::clanProfile()}};
}

inline suite::ClusterConfig clusterFor(const nic::NicProfile& p,
                                       std::uint32_t nodes = 2) {
  suite::ClusterConfig c;
  c.profile = p;
  c.nodes = nodes;
  return c;
}

/// Prints a table; with VIBE_CSV=1 in the environment, also emits the
/// machine-readable CSV block (for plotting scripts), and with VIBE_JSON=1
/// a one-line JSON block (for trajectory/regression tooling).
inline void emit(const suite::ResultTable& table, int precision = 2) {
  std::printf("%s\n", table.renderText(precision).c_str());
  const char* csv = std::getenv("VIBE_CSV");
  if (csv != nullptr && csv[0] == '1') {
    std::printf("--- csv: %s ---\n%s--- end csv ---\n\n",
                table.title().c_str(), table.renderCsv().c_str());
  }
  const char* json = std::getenv("VIBE_JSON");
  if (json != nullptr && json[0] == '1') {
    std::printf("--- json: %s ---\n%s\n--- end json ---\n\n",
                table.title().c_str(), table.renderJson().c_str());
  }
}

inline void printHeader(const std::string& what, const std::string& paperRef) {
  std::printf("\n############################################################\n");
  std::printf("# VIBe reproduction: %s\n", what.c_str());
  std::printf("# Paper reference: %s\n", paperRef.c_str());
  std::printf("############################################################\n");
}

}  // namespace vibe::bench
