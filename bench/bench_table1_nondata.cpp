// Table 1: cost of the non-data-transfer VIA operations (µs) for the
// three implementations, with the paper's reported values side by side.
#include <cstdio>

#include "bench_common.hpp"
#include "bench_registry.hpp"
#include "vibe/nondata.hpp"

namespace {
struct PaperRow {
  const char* op;
  double mvia;
  double bvia;
  double clan;
};
constexpr PaperRow kPaper[] = {
    {"Creating VI", 93, 28, 3},
    {"Destroying VI", 0.19, 0.19, 0.11},
    {"Establishing Connection", 6465, 496, 2454},
    {"Tearing Down Connection", 3, 9, 155},
    {"Creating CQ", 17, 206, 54},
    {"Destroying CQ", 8.44, 35, 15},
};

int run(int argc, char** argv) {
  using namespace vibe;
  using namespace vibe::bench;
  parseStatsFlag(argc, argv);

  printHeader("Non-data transfer micro-benchmarks",
              "Table 1 (all costs in microseconds)");

  const auto profiles = paperProfiles();
  const auto results = harness::runSweep(
      profiles.size(),
      [&](harness::PointEnv& env) {
        return suite::runNonData(
            clusterFor(profiles[env.index].profile, 2, env));
      },
      sweepOptions());

  const double measured[6][3] = {
      {results[0].createVi, results[1].createVi, results[2].createVi},
      {results[0].destroyVi, results[1].destroyVi, results[2].destroyVi},
      {results[0].connect, results[1].connect, results[2].connect},
      {results[0].teardown, results[1].teardown, results[2].teardown},
      {results[0].createCq, results[1].createCq, results[2].createCq},
      {results[0].destroyCq, results[1].destroyCq, results[2].destroyCq},
  };

  std::printf("%-26s %21s  %21s  %21s\n", "", "M-VIA", "BVIA", "cLAN");
  std::printf("%-26s %10s %10s  %10s %10s  %10s %10s\n", "Operation",
              "measured", "paper", "measured", "paper", "measured", "paper");
  for (int r = 0; r < 6; ++r) {
    std::printf("%-26s %10.2f %10.2f  %10.2f %10.2f  %10.2f %10.2f\n",
                kPaper[r].op, measured[r][0], kPaper[r].mvia, measured[r][1],
                kPaper[r].bvia, measured[r][2], kPaper[r].clan);
  }
  std::printf(
      "\nConnection establishment includes the live handshake round trip on\n"
      "the simulated fabric, so it sits slightly above the pure host-side\n"
      "constants; all relative orderings match the paper.\n");
  return 0;
}

}  // namespace

VIBE_BENCH_MAIN(table1_nondata, run)
