// Fig. 6: impact of the number of active VIs — latency and bandwidth for
// BVIA, whose firmware polls a descriptor structure for every active VI
// (discovery time grows linearly with VI count). M-VIA and cLAN controls
// do not change, as the paper reports.
#include <cstdio>

#include "bench_common.hpp"
#include "bench_registry.hpp"
#include "vibe/datatransfer.hpp"

namespace {

int run(int, char**) {
  using namespace vibe;
  using namespace vibe::bench;

  printHeader("Impact of multiple active VIs",
              "Fig. 6: BVIA latency rises and bandwidth falls with the "
              "number of active VIs (firmware polls every VI); M-VIA and "
              "cLAN unaffected");

  const std::vector<int> viCounts = {1, 4, 8, 16, 32};
  const std::vector<std::uint64_t> sizes = {4, 1024, 4096, 12288, 28672};

  suite::ResultTable lat("BVIA one-way latency (us) vs #VIs",
                         {"bytes", "v1", "v4", "v8", "v16", "v32"});
  suite::ResultTable bw("BVIA bandwidth (MB/s) vs #VIs",
                        {"bytes", "v1", "v4", "v8", "v16", "v32"});

  const auto bvia = nic::bviaProfile();
  struct Point {
    double lat = 0.0;
    double bw = 0.0;
  };
  const auto points = harness::runSweep(
      sizes.size() * viCounts.size(),
      [&](harness::PointEnv& env) {
        const std::uint64_t size = sizes[env.index / viCounts.size()];
        const int vis = viCounts[env.index % viCounts.size()];
        suite::TransferConfig cfg;
        cfg.msgBytes = size;
        cfg.extraVis = vis - 1;
        Point pt;
        pt.lat = suite::runPingPong(clusterFor(bvia, 2, env), cfg).latencyUsec;
        pt.bw =
            suite::runBandwidth(clusterFor(bvia, 2, env), cfg).bandwidthMBps;
        return pt;
      },
      sweepOptions());
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    std::vector<double> latRow{static_cast<double>(sizes[si])};
    std::vector<double> bwRow{static_cast<double>(sizes[si])};
    for (std::size_t vi = 0; vi < viCounts.size(); ++vi) {
      const Point& pt = points[si * viCounts.size() + vi];
      latRow.push_back(pt.lat);
      bwRow.push_back(pt.bw);
    }
    lat.addRow(latRow);
    bw.addRow(bwRow);
  }
  vibe::bench::emit(lat);
  vibe::bench::emit(bw);

  suite::ResultTable ctrl("Control: 4 B latency (us) with 1 vs 32 VIs",
                          {"impl", "v1", "v32"});
  const auto profiles = paperProfiles();
  struct CtrlPoint {
    double one = 0.0;
    double many = 0.0;
  };
  const auto ctrlPoints = harness::runSweep(
      profiles.size(),
      [&](harness::PointEnv& env) {
        const auto& np = profiles[env.index];
        suite::TransferConfig cfg;
        cfg.msgBytes = 4;
        const auto one = suite::runPingPong(clusterFor(np.profile, 2, env),
                                            cfg);
        cfg.extraVis = 31;
        const auto many = suite::runPingPong(clusterFor(np.profile, 2, env),
                                             cfg);
        return CtrlPoint{one.latencyUsec, many.latencyUsec};
      },
      sweepOptions());
  for (std::size_t i = 0; i < ctrlPoints.size(); ++i) {
    ctrl.addRow({static_cast<double>(i), ctrlPoints[i].one,
                 ctrlPoints[i].many});
  }
  vibe::bench::emit(ctrl);
  std::printf("(impl: 0 = M-VIA, 1 = BVIA, 2 = cLAN — only BVIA moves)\n");
  return 0;
}

}  // namespace

VIBE_BENCH_MAIN(fig6_multivi, run)
