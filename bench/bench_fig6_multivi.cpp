// Fig. 6: impact of the number of active VIs — latency and bandwidth for
// BVIA, whose firmware polls a descriptor structure for every active VI
// (discovery time grows linearly with VI count). M-VIA and cLAN controls
// do not change, as the paper reports.
#include <cstdio>

#include "bench_common.hpp"
#include "vibe/datatransfer.hpp"

int main() {
  using namespace vibe;
  using namespace vibe::bench;

  printHeader("Impact of multiple active VIs",
              "Fig. 6: BVIA latency rises and bandwidth falls with the "
              "number of active VIs (firmware polls every VI); M-VIA and "
              "cLAN unaffected");

  const int viCounts[] = {1, 4, 8, 16, 32};
  const std::uint64_t sizes[] = {4, 1024, 4096, 12288, 28672};

  suite::ResultTable lat("BVIA one-way latency (us) vs #VIs",
                         {"bytes", "v1", "v4", "v8", "v16", "v32"});
  suite::ResultTable bw("BVIA bandwidth (MB/s) vs #VIs",
                        {"bytes", "v1", "v4", "v8", "v16", "v32"});

  const auto bvia = nic::bviaProfile();
  for (const std::uint64_t size : sizes) {
    std::vector<double> latRow{static_cast<double>(size)};
    std::vector<double> bwRow{static_cast<double>(size)};
    for (const int vis : viCounts) {
      suite::TransferConfig cfg;
      cfg.msgBytes = size;
      cfg.extraVis = vis - 1;
      const auto ping = suite::runPingPong(clusterFor(bvia), cfg);
      latRow.push_back(ping.latencyUsec);
      const auto stream = suite::runBandwidth(clusterFor(bvia), cfg);
      bwRow.push_back(stream.bandwidthMBps);
    }
    lat.addRow(latRow);
    bw.addRow(bwRow);
  }
  vibe::bench::emit(lat);
  vibe::bench::emit(bw);

  suite::ResultTable ctrl("Control: 4 B latency (us) with 1 vs 32 VIs",
                          {"impl", "v1", "v32"});
  int idx = 0;
  for (const auto& np : paperProfiles()) {
    suite::TransferConfig cfg;
    cfg.msgBytes = 4;
    const auto one = suite::runPingPong(clusterFor(np.profile), cfg);
    cfg.extraVis = 31;
    const auto many = suite::runPingPong(clusterFor(np.profile), cfg);
    ctrl.addRow({static_cast<double>(idx++), one.latencyUsec,
                 many.latencyUsec});
  }
  vibe::bench::emit(ctrl);
  std::printf("(impl: 0 = M-VIA, 1 = BVIA, 2 = cLAN — only BVIA moves)\n");
  return 0;
}
