// TR §3.2.5 extension: impact of multiple data segments per descriptor
// (L_seg / B_seg). Each implementation pays a per-segment cost at post time
// and (for NIC-processed models) in the gather/scatter engine.
#include <cstdio>

#include "bench_common.hpp"
#include "bench_registry.hpp"
#include "vibe/datatransfer.hpp"

namespace {

int run(int, char**) {
  using namespace vibe;
  using namespace vibe::bench;

  printHeader("Impact of multiple data segments",
              "TR OSU-CISRC-10/00-TR20 §3.2.5: latency grows with segment "
              "count; steepest where segment handling is in slow firmware "
              "(BVIA), shallowest on the host-copy path (M-VIA)");

  const std::vector<int> segCounts = {1, 2, 4, 8, 16, 32};
  const std::vector<std::uint64_t> sizes = {256, 4096, 28672};
  const auto profiles = paperProfiles();

  struct Spec {
    std::uint64_t size = 0;
    int segs = 0;
    std::size_t profile = 0;
  };
  std::vector<Spec> specs;
  for (const std::uint64_t size : sizes) {
    for (const int segs : segCounts) {
      if (static_cast<std::uint64_t>(segs) > size) continue;
      for (std::size_t pi = 0; pi < profiles.size(); ++pi) {
        specs.push_back({size, segs, pi});
      }
    }
  }
  const auto points = harness::runSweep(
      specs.size(),
      [&](harness::PointEnv& env) {
        const Spec& s = specs[env.index];
        suite::TransferConfig cfg;
        cfg.msgBytes = s.size;
        cfg.dataSegments = s.segs;
        return suite::runPingPong(
                   clusterFor(profiles[s.profile].profile, 2, env), cfg)
            .latencyUsec;
      },
      sweepOptions());

  std::size_t next = 0;
  for (const std::uint64_t size : sizes) {
    suite::ResultTable t(
        "One-way latency (us), " + std::to_string(size) + " B message",
        {"segments", "mvia", "bvia", "clan"});
    for (const int segs : segCounts) {
      if (static_cast<std::uint64_t>(segs) > size) continue;
      std::vector<double> row{static_cast<double>(segs)};
      for (std::size_t pi = 0; pi < profiles.size(); ++pi) {
        row.push_back(points[next++]);
      }
      t.addRow(row);
    }
    vibe::bench::emit(t);
  }
  return 0;
}

}  // namespace

VIBE_BENCH_MAIN(ext_segments, run)
