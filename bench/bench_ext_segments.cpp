// TR §3.2.5 extension: impact of multiple data segments per descriptor
// (L_seg / B_seg). Each implementation pays a per-segment cost at post time
// and (for NIC-processed models) in the gather/scatter engine.
#include <cstdio>

#include "bench_common.hpp"
#include "vibe/datatransfer.hpp"

int main() {
  using namespace vibe;
  using namespace vibe::bench;

  printHeader("Impact of multiple data segments",
              "TR OSU-CISRC-10/00-TR20 §3.2.5: latency grows with segment "
              "count; steepest where segment handling is in slow firmware "
              "(BVIA), shallowest on the host-copy path (M-VIA)");

  const int segCounts[] = {1, 2, 4, 8, 16, 32};
  for (const std::uint64_t size : {256ull, 4096ull, 28672ull}) {
    suite::ResultTable t(
        "One-way latency (us), " + std::to_string(size) + " B message",
        {"segments", "mvia", "bvia", "clan"});
    for (const int segs : segCounts) {
      if (static_cast<std::uint64_t>(segs) > size) continue;
      std::vector<double> row{static_cast<double>(segs)};
      for (const auto& np : paperProfiles()) {
        suite::TransferConfig cfg;
        cfg.msgBytes = size;
        cfg.dataSegments = segs;
        const auto r = suite::runPingPong(clusterFor(np.profile), cfg);
        row.push_back(r.latencyUsec);
      }
      t.addRow(row);
    }
    vibe::bench::emit(t);
  }
  return 0;
}
