// Serving extension bench: overload robustness the paper never measured.
// §3.3.1 drives closed-loop client/server transactions — clients that wait
// for each reply can never overload the server, so VIBe's numbers say
// nothing about what a VIA server does when the offered load exceeds its
// capacity. This bench offers genuinely open-loop load (seed-deterministic
// Poisson / bursty MMPP arrivals with per-request deadlines) against an
// RpcServer running an AdmissionQueue, and measures:
//   1. Goodput vs offered load, 0.5x-4x capacity: with deadline-aware
//      shedding the goodput curve stays flat past saturation; with every
//      policy disabled it collapses (the classic congestion cliff).
//   2. Policy comparison at 2x: reject-new / drop-oldest bounded backlog,
//      token bucket, CoDel, deadline shed — goodput vs tail latency.
//   3. The same overload on all three paper NIC models.
//   4. A bursty-load SLO timeline (SloMonitor windows, breach/recover
//      crossings, optional VIBE_FLIGHT_OUT post-mortem dump).
//   5. Session churn: link flaps plus one long "client departed" partition
//      that trips the session circuit breaker; Session::reopen revives it.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "bench_registry.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "serve/admission.hpp"
#include "serve/loadgen.hpp"
#include "simcore/pdes.hpp"
#include "simcore/trace.hpp"
#include "upper/rpc/rpc.hpp"

namespace {

using namespace vibe;
using bench::clusterFor;
using suite::Cluster;
using suite::NodeEnv;

// One handler, kServiceTime of busy CPU per request => nominal capacity.
// (Receive-interrupt CPU per arrival is on top of this, so the achievable
// rate sits a little under nominal — and erodes further with overload,
// the receive-livelock tax the tables make visible.)
constexpr sim::Duration kServiceTime = sim::usec(30);
constexpr double kCapacityRps = 1e9 / static_cast<double>(kServiceTime);
constexpr sim::SimTime kStart = sim::msec(40);  // after staggered accepts
constexpr sim::Duration kHorizon = sim::msec(50);
constexpr sim::Duration kDeadline = sim::msec(8);
// The on-wire deadline stamp is tightened by the expected service +
// reply-flight cost, so the server sheds requests it could only finish
// after the client's deadline anyway.
constexpr sim::Duration kServeMargin = sim::usec(200);
constexpr std::size_t kRequestBytes = 16;
constexpr std::size_t kReplyBytes = 64;

struct RunConfig {
  nic::NicProfile profile = nic::clanProfile();
  double loadMult = 1.0;          // offered load as a multiple of capacity
  serve::PolicyConfig policy{};   // default: everything disabled
  bool bursty = false;            // MMPP on/off instead of plain Poisson
  std::uint32_t clients = 16;
  std::uint32_t fatTreeK = 16;    // 0 = single switch
  sim::Duration horizon = kHorizon;
  std::uint64_t seed = 42;
  const fault::FaultPlan* churn = nullptr;
  bool tightBreaker = false;      // churn runs: trip Down within the run
  /// All clients share one arrival schedule (phase-synchronized bursts —
  /// correlated demand). Off: independent per-client draws, whose MMPP
  /// phases average out across clients.
  bool syncArrivals = false;
  /// >= 1 hosts the whole run on the sharded PDES engine (one domain per
  /// switch); 0 = the classic serial engine.
  std::uint32_t simShards = 0;
};

struct RunResult {
  double offered = 0;
  double good = 0;        // ok reply received within the deadline
  double late = 0;        // reply received, but past the deadline
  double lost = 0;        // never sent (session down) or never answered
  double goodputRps = 0;
  double p50Ms = 0;
  double p99Ms = 0;
  double served = 0;      // admission-queue accounting, server side
  double rejected = 0;    // backlog + rate rejections at the door
  double evicted = 0;     // DropOldest victims
  double shed = 0;        // deadline + CoDel sheds at dequeue
  double reconnects = 0;  // client-side session re-establishments
  double reopens = 0;     // client-side circuit-breaker revivals tried
};

/// Churn runs tune the transport for fast failover, the way a serving
/// deployment would: the stock ~119 ms RTO budget (rtoBase 1 ms times the
/// doubling ramp, recovery bench table 1) dwarfs the 50 ms churn window,
/// so no flap or departure would ever surface as a session break. With
/// rtoBase 0.5 ms, budget 6 and cap 2, ConnectionLost fires after ~5.5 ms
/// of silence.
nic::NicProfile fastFailoverProfile() {
  nic::NicProfile p = nic::clanProfile();
  p.rtoBase = sim::usec(500);
  p.rtoRetryBudget = 6;
  p.rtoBackoffCap = 2;
  return p;
}

upper::rpc::RpcConfig rpcBaseFor(const RunConfig& rc) {
  upper::rpc::RpcConfig cfg;
  cfg.recovery = true;
  cfg.maxMessageBytes = 1024;
  cfg.reconnect.seed = rc.seed;
  if (rc.tightBreaker) {
    // Small retry budget (~7 ms): a reconnect loop runs inline and blocks
    // its node, so a long outage must trip the breaker quickly — both so
    // the "client departed" partition reaches Down inside the run (the
    // reopen path), and so the server's own broken sessions do not stall
    // serving long enough to starve other clients' redials into halting.
    cfg.reconnect.attemptsPerRound = 2;
    cfg.reconnect.maxRounds = 1;
    cfg.reconnect.connectTimeout = sim::msec(2);
    cfg.reconnect.helloTimeout = sim::msec(3);
    cfg.reconnect.backoffCap = sim::msec(2);
  }
  return cfg;
}

/// One complete serving run: an RpcServer with an AdmissionQueue on node 0,
/// `clients` open-loop senders on nodes 1..N. All observability attachments
/// are optional; latencies land in `lat` when given (so an SloMonitor can
/// watch them), a private histogram otherwise.
RunResult runServing(const RunConfig& rc, const harness::PointEnv* penv,
                     sim::Tracer* tracer = nullptr,
                     obs::TimeSeriesSampler* sampler = nullptr,
                     obs::Histogram* lat = nullptr) {
  const std::uint32_t nodes = rc.clients + 1;
  suite::ClusterConfig cc = penv != nullptr
                                ? clusterFor(rc.profile, nodes, *penv)
                                : clusterFor(rc.profile, nodes);
  cc.fatTreeK = rc.fatTreeK;
  cc.simShards = rc.simShards;
  if (sampler != nullptr) {
    cc.sampler = sampler;
    cc.samplePeriod = sim::msec(5);
  }
  Cluster cluster(cc);
  if (tracer != nullptr) cluster.setTracer(tracer);
  std::optional<fault::FaultInjector> injector;
  if (rc.churn != nullptr) {
    injector.emplace(*rc.churn);
    injector->arm(cluster);
  }

  obs::Histogram localLat;
  obs::Histogram& hist = lat != nullptr ? *lat : localLat;
  const upper::rpc::RpcConfig rpcBase = rpcBaseFor(rc);

  serve::AdmissionStats qstats;
  std::uint64_t offered = 0, good = 0, late = 0, lost = 0;
  std::uint64_t reconnects = 0, reopens = 0;

  std::vector<std::function<void(NodeEnv&)>> programs;
  programs.push_back([&](NodeEnv& env) {
    upper::rpc::RpcServer server(env, rpcBase);
    server.registerMethod(1, [&env](std::span<const std::byte>) {
      env.self.advance(kServiceTime, sim::CpuUse::Busy);
      return std::vector<std::byte>(kReplyBytes, std::byte{0x5A});
    });
    std::vector<fabric::NodeId> clientNodes(rc.clients);
    for (std::uint32_t i = 0; i < rc.clients; ++i) clientNodes[i] = i + 1;
    server.acceptClients(clientNodes);
    serve::AdmissionQueue queue(rc.policy);
    if (tracer != nullptr) queue.setTracer(tracer, /*component=*/0);
    upper::rpc::ServeOptions so;
    // Must outlast the accept-to-first-arrival gap (arrivals only start at
    // kStart) and any mid-run outage, or the server gives up early.
    so.idleTimeout = sim::msec(60);
    so.reopenInterval = rc.churn != nullptr ? sim::msec(3) : sim::Duration{0};
    server.serveOpenLoop(queue, so);
    qstats = queue.stats();
  });

  for (std::uint32_t c = 0; c < rc.clients; ++c) {
    programs.push_back([&, c](NodeEnv& env) {
      // Stagger the dials at roughly the server's serial accept rate, so
      // no client burns its (possibly tightened) retry budget waiting in
      // the accept queue behind fifteen earlier dialers.
      env.self.advance(sim::msec(1) * c, sim::CpuUse::Idle);
      upper::rpc::RpcConfig cfg = rpcBase;
      cfg.clientId = c;
      upper::rpc::RpcClient client(env, /*serverNode=*/0, cfg);

      serve::ArrivalConfig acfg;
      acfg.ratePerSec = rc.loadMult * kCapacityRps / rc.clients;
      acfg.start = kStart;
      acfg.horizon = rc.horizon;
      acfg.deadline = kDeadline;
      if (rc.bursty) {
        acfg.meanOn = sim::msec(4);
        acfg.meanOff = sim::msec(4);
      }
      const std::vector<sim::SimTime> arrivals =
          serve::generateArrivals(acfg, rc.seed, rc.syncArrivals ? 0 : c);

      struct Pend {
        sim::SimTime gen;
        sim::SimTime dl;
      };
      std::map<std::uint32_t, Pend> pending;
      std::uint64_t myGood = 0, myLate = 0, myLost = 0;
      const std::vector<std::byte> body(kRequestBytes, std::byte{0x42});
      upper::rpc::AsyncReply rep;
      sim::SimTime lastReopen = 0;

      auto account = [&](const upper::rpc::AsyncReply& r) {
        auto it = pending.find(r.token);
        if (it == pending.end()) return;
        hist.add(static_cast<std::int64_t>(env.now() - it->second.gen));
        if (r.status == upper::rpc::kStatusOk && env.now() <= it->second.dl) {
          ++myGood;
        } else {
          ++myLate;
        }
        pending.erase(it);
      };

      for (const sim::SimTime at : arrivals) {
        // Open loop: drain replies until the next arrival time, then fire
        // regardless of how the server is doing. A tripped session gets a
        // periodic reopen attempt; arrivals fired while it is down are lost.
        while (env.now() < at) {
          if (client.down()) {
            if (env.now() - lastReopen >= sim::msec(3)) {
              lastReopen = env.now();
              (void)client.reopen();
              continue;  // a failed reopen blocks past `at`: recheck time
            }
            env.self.advance(
                std::min<sim::Duration>(sim::msec(1), at - env.now()),
                sim::CpuUse::Idle);
            continue;
          }
          if (client.waitReply(rep, at - env.now())) account(rep);
        }
        const sim::SimTime now = env.now();
        const serve::Stamp st{now, now + kDeadline - kServeMargin};
        const std::uint32_t tok =
            client.down() ? 0u : client.callAsync(1, serve::stampArgs(st, body));
        if (tok == 0) {
          ++myLost;
        } else {
          pending.emplace(tok, Pend{now, now + kDeadline});
        }
      }
      // Grace drain: anything unanswered once every deadline has passed
      // was rejected, shed, or abandoned server-side — no reply is coming.
      // A session that tripped Down keeps getting reopen attempts here,
      // so a departed node that returns late still rejoins the service.
      const sim::SimTime drainEnd = env.now() + kDeadline + sim::msec(4);
      while (env.now() < drainEnd && (!pending.empty() || client.down())) {
        if (client.down()) {
          if (env.now() - lastReopen >= sim::msec(3)) {
            lastReopen = env.now();
            (void)client.reopen();
            continue;  // a failed reopen blocks past drainEnd: recheck time
          }
          env.self.advance(
              std::min<sim::Duration>(sim::msec(1), drainEnd - env.now()),
              sim::CpuUse::Idle);
          continue;
        }
        if (client.waitReply(rep, std::min<sim::Duration>(
                                      sim::msec(1), drainEnd - env.now()))) {
          account(rep);
        }
      }
      myLost += pending.size();
      if (!client.down()) {
        try {
          client.shutdown();
        } catch (const std::exception&) {
          // Session broke during the final flush; the server's idle
          // timeout reaps the connection.
        }
      }
      offered += arrivals.size();
      good += myGood;
      late += myLate;
      lost += myLost;
      if (const session::SessionStats* ss = client.sessionStats()) {
        reconnects += ss->reconnects;
        reopens += ss->reopens;
      }
    });
  }
  cluster.run(std::move(programs));

  RunResult r;
  const double horizonSec = static_cast<double>(rc.horizon) / 1e9;
  r.offered = static_cast<double>(offered);
  r.good = static_cast<double>(good);
  r.late = static_cast<double>(late);
  r.lost = static_cast<double>(lost);
  r.goodputRps = static_cast<double>(good) / horizonSec;
  r.p50Ms = hist.quantile(0.5) / 1e6;
  r.p99Ms = hist.quantile(0.99) / 1e6;
  r.served = static_cast<double>(qstats.served);
  r.rejected =
      static_cast<double>(qstats.rejectedBacklog + qstats.rejectedRate);
  r.evicted = static_cast<double>(qstats.evicted);
  r.shed = static_cast<double>(qstats.shedDeadline + qstats.shedCodel);
  r.reconnects = static_cast<double>(reconnects);
  r.reopens = static_cast<double>(reopens);
  return r;
}

int run(int argc, char** argv) {
  bench::parseStatsFlag(argc, argv);
  bench::printHeader(
      "Overload-robust serving: open-loop load, admission control, shedding",
      "beyond the paper — §3.3.1 measures closed-loop transactions, which "
      "cannot overload the server; this bench offers open-loop load past "
      "capacity and measures goodput under shedding policies");

  std::printf(
      "server: 1 handler x %.0f us service => nominal capacity %.0f req/s\n"
      "clients: 16 open-loop senders on a k=16 fat-tree, %.0f ms deadlines\n\n",
      static_cast<double>(kServiceTime) / 1e3, kCapacityRps,
      static_cast<double>(kDeadline) / 1e6);

  std::vector<std::pair<std::string, double>> servingMetrics;

  serve::PolicyConfig nonePolicy;  // everything disabled: the baseline
  serve::PolicyConfig shedPolicy;
  shedPolicy.deadlineShed = true;

  // --- 1. Graceful degradation: goodput vs offered load ------------------
  const std::vector<double> loads = {0.5, 1.0, 2.0, 4.0};
  const auto degradeRuns = harness::runSweep(
      loads.size() * 2,
      [&](harness::PointEnv& env) {
        RunConfig rc;
        rc.loadMult = loads[env.index / 2];
        rc.policy = env.index % 2 == 0 ? nonePolicy : shedPolicy;
        return runServing(rc, &env);
      },
      bench::sweepOptions());

  suite::ResultTable degrade(
      "Goodput vs offered load (cLAN): no policy vs deadline-aware shed",
      {"offered_x", "offered_rps", "none_good_rps", "none_p99_ms",
       "shed_good_rps", "shed_p99_ms"});
  double peakNone = 0, peakShed = 0;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const RunResult& rn = degradeRuns[2 * i];
    const RunResult& rs = degradeRuns[2 * i + 1];
    peakNone = std::max(peakNone, rn.goodputRps);
    peakShed = std::max(peakShed, rs.goodputRps);
    degrade.addRow({loads[i], loads[i] * kCapacityRps, rn.goodputRps,
                    rn.p99Ms, rs.goodputRps, rs.p99Ms});
    const std::string tag = std::to_string(loads[i]);
    servingMetrics.emplace_back("none_goodput_" + tag + "x_rps",
                                rn.goodputRps);
    servingMetrics.emplace_back("shed_goodput_" + tag + "x_rps",
                                rs.goodputRps);
  }
  bench::emit(degrade);
  const double shedFrac =
      peakShed > 0 ? degradeRuns.back().goodputRps / peakShed : 0;
  const double noneFrac =
      peakNone > 0 ? degradeRuns[2 * (loads.size() - 1)].goodputRps / peakNone
                   : 0;
  std::printf(
      "graceful degradation @ 4x offered: shed goodput %.1f%% of peak "
      "(>= 80%% required): %s; unpoliced collapses to %.1f%% of its peak\n\n",
      shedFrac * 100.0, shedFrac >= 0.8 ? "PASS" : "FAIL", noneFrac * 100.0);
  servingMetrics.emplace_back("shed_goodput_4x_frac", shedFrac);
  servingMetrics.emplace_back("none_goodput_4x_frac", noneFrac);
  servingMetrics.emplace_back("peak_goodput_rps", peakShed);

  // --- 2. Admission policies at 2x overload ------------------------------
  struct NamedPolicy {
    const char* name;
    serve::PolicyConfig cfg;
  };
  std::vector<NamedPolicy> policies;
  policies.push_back({"none", nonePolicy});
  // Backlog bound sized under the deadline: 192 x 30 us = 5.8 ms of queue,
  // so an admitted request can still finish in time.
  {
    serve::PolicyConfig p;
    p.backlogLimit = 192;
    p.admit = serve::AdmitPolicy::RejectNew;
    policies.push_back({"reject", p});
  }
  {
    serve::PolicyConfig p;
    p.backlogLimit = 192;
    p.admit = serve::AdmitPolicy::DropOldest;
    policies.push_back({"oldest", p});
  }
  policies.push_back({"deadline", shedPolicy});
  {
    serve::PolicyConfig p;
    p.bucket.ratePerSec = kCapacityRps;
    p.bucket.burst = 64;
    policies.push_back({"bucket", p});
  }
  {
    serve::PolicyConfig p;
    p.codel.target = sim::msec(1);
    p.codel.interval = sim::msec(10);
    policies.push_back({"codel", p});
  }
  const auto policyRuns = harness::runSweep(
      policies.size(),
      [&](harness::PointEnv& env) {
        RunConfig rc;
        rc.loadMult = 2.0;
        rc.policy = policies[env.index].cfg;
        return runServing(rc, &env);
      },
      bench::sweepOptions());
  suite::ResultTable ptable(
      "Admission policies at 2x overload (cLAN)",
      {"policy", "good_rps", "p50_ms", "p99_ms", "served", "rejected",
       "evicted", "shed"});
  for (std::size_t i = 0; i < policies.size(); ++i) {
    const RunResult& r = policyRuns[i];
    ptable.addRow({static_cast<double>(i), r.goodputRps, r.p50Ms, r.p99Ms,
                   r.served, r.rejected, r.evicted, r.shed});
    servingMetrics.emplace_back(
        std::string(policies[i].name) + "_2x_goodput_rps", r.goodputRps);
  }
  bench::emit(ptable);
  std::printf(
      "(policy: 0=none 1=reject[backlog 192] 2=oldest[backlog 192] "
      "3=deadline 4=bucket[capacity, burst 64] 5=codel[1ms/10ms])\n\n");

  // --- 3. The same 2x overload on every paper NIC model ------------------
  const auto profiles = bench::paperProfiles();
  const auto profileRuns = harness::runSweep(
      profiles.size(),
      [&](harness::PointEnv& env) {
        RunConfig rc;
        rc.profile = profiles[env.index].profile;
        rc.loadMult = 2.0;
        rc.policy = shedPolicy;
        return runServing(rc, &env);
      },
      bench::sweepOptions());
  suite::ResultTable proftable(
      "2x overload with deadline shed, by NIC model",
      {"impl", "good_rps", "p99_ms", "served", "shed"});
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const RunResult& r = profileRuns[i];
    proftable.addRow(
        {static_cast<double>(i), r.goodputRps, r.p99Ms, r.served, r.shed});
    servingMetrics.emplace_back(profiles[i].shortName + "_2x_goodput_rps",
                                r.goodputRps);
  }
  bench::emit(proftable);
  std::printf("(impl: 0 = M-VIA, 1 = BVIA, 2 = cLAN; goodput below cLAN "
              "reflects each model's lower per-request capacity)\n\n");

  // --- 4. Bursty-load SLO timeline ---------------------------------------
  // Phase-synchronized MMPP at 0.8x mean (1.6x during on-phases): the
  // queue builds during bursts and drains between them, so the windowed
  // p99 crosses the SLO threshold and comes back — the breach/recover
  // cycle the flight recorder is for.
  {
    obs::Histogram lat;
    obs::TimeSeriesSampler sampler;
    obs::SloMonitor slo("serve_latency", lat);
    slo.setThresholdNs(static_cast<std::uint64_t>(sim::msec(2)));
    sim::Tracer tracer(4096);
    tracer.enable(sim::TraceCategory::User);
    tracer.enable(sim::TraceCategory::Session);
    slo.setTracer(&tracer, /*component=*/0);
    slo.bindTo(sampler);
    auto flight = obs::FlightRecorder::fromEnv();
    if (flight) {
      flight->setSampler(&sampler);
      flight->setSlo(&slo);
      flight->setTracer(&tracer);
    }
    RunConfig rc;
    rc.loadMult = 0.8;
    rc.bursty = true;
    rc.syncArrivals = true;
    rc.policy = shedPolicy;
    const RunResult r =
        runServing(rc, nullptr, &tracer, &sampler, &lat);
    suite::ResultTable timeline(
        "SLO timeline under bursty load (sync MMPP 0.8x mean, deadline shed)",
        {"t_ms", "reqs", "p50_ms", "p99_ms", "p9999_ms", "burn"});
    for (const obs::SloMonitor::Window& w : slo.windows()) {
      if (w.t <= kStart) continue;  // pre-traffic accept phase: all zeros
      timeline.addRow({static_cast<double>(w.t) / 1e6,
                       static_cast<double>(w.count), w.p50 / 1e6, w.p99 / 1e6,
                       w.p9999 / 1e6, w.burnRate});
    }
    bench::emit(timeline, 3);
    std::printf(
        "slo: threshold=2 ms, crossings=%llu, breached at end=%s; "
        "good=%.0f late=%.0f lost=%.0f shed=%.0f\n",
        static_cast<unsigned long long>(slo.crossingCount()),
        slo.breached() ? "yes" : "no", r.good, r.late, r.lost, r.shed);
    servingMetrics.emplace_back(
        "bursty_slo_crossings", static_cast<double>(slo.crossingCount()));
    servingMetrics.emplace_back("bursty_goodput_rps", r.goodputRps);
    if (flight && slo.crossingCount() > 0 &&
        flight->dump("serving SLO breach: windowed p99 over threshold")) {
      std::printf("flight recorder dump written to %s\n",
                  flight->path().c_str());
    }
    std::printf("\n");
  }

  // --- 5. Session churn: flaps plus one departed client ------------------
  // Short flaps stay inside the reconnect budget (session recovery hides
  // them); the one long partition trips the tightened circuit breaker, and
  // the client+server reopen path revives the session when the node
  // returns. The Session-category trace digest doubles as the determinism
  // witness for this scenario.
  {
    fault::ChurnParams cp;
    cp.firstNode = 1;
    cp.nodes = 16;
    cp.start = kStart;
    cp.horizon = kHorizon;
    cp.flapsPerNode = 0.25;
    // Long enough to exhaust the NIC's RTO budget (a break the session
    // layer must reconnect from), short enough to stay inside the
    // tightened retry budget.
    cp.meanFlapLen = sim::msec(12);
    fault::FaultPlan plan = fault::FaultPlan::generateChurn(7, cp);
    // One deliberate departure, pinned early so detection (+ the ~20 ms
    // breaker budget) trips Down with run time left for the revival.
    fault::FaultAction depart;
    depart.kind = fault::FaultKind::Partition;
    depart.node = 16;
    depart.side = fault::LinkSide::Both;
    depart.start = kStart + sim::msec(5);
    depart.duration = sim::msec(35);
    depart.rate = 1.0;
    plan.actions.push_back(depart);
    sim::Tracer tracer(16384);
    tracer.enable(sim::TraceCategory::Session);
    tracer.enable(sim::TraceCategory::User);
    RunConfig rc;
    rc.profile = fastFailoverProfile();
    rc.loadMult = 2.0;
    rc.policy = shedPolicy;
    rc.churn = &plan;
    rc.tightBreaker = true;
    // Same config minus the fault plan: the baseline row isolates what
    // churn costs (every break blocks the single-threaded server in an
    // inline reconnect loop — fail-fast VIA recovery is not free).
    RunConfig base = rc;
    base.churn = nullptr;
    const RunResult b = runServing(base, nullptr, nullptr);
    const RunResult r = runServing(rc, nullptr, &tracer);
    suite::ResultTable churn(
        "2x overload + session churn (flaps on all clients, 1 depart)",
        {"churn", "offered", "good", "late", "lost", "reconnects", "reopens",
         "served", "shed"});
    churn.addRow({0, b.offered, b.good, b.late, b.lost, b.reconnects,
                  b.reopens, b.served, b.shed});
    churn.addRow({1, r.offered, r.good, r.late, r.lost, r.reconnects,
                  r.reopens, r.served, r.shed});
    bench::emit(churn, 0);
    std::printf(
        "(churn=1 adds ~4 link flaps + one 35 ms departure; goodput lost to "
        "churn is serving time the server spends blocked in inline session "
        "recovery)\n");
    if (const char* p = std::getenv("VIBE_DEBUG_TRACE")) {
      if (std::FILE* f = std::fopen(p, "w")) {
        const std::string d = tracer.dump();
        std::fwrite(d.data(), 1, d.size(), f);
        std::fclose(f);
      }
    }
    std::printf("churn trace digest: %016llx (%llu session records)\n\n",
                static_cast<unsigned long long>(tracer.digest()),
                static_cast<unsigned long long>(tracer.totalRecorded()));
    servingMetrics.emplace_back("churn_good", r.good);
    servingMetrics.emplace_back("churn_lost", r.lost);
    servingMetrics.emplace_back("churn_reconnects", r.reconnects);
    servingMetrics.emplace_back("churn_reopens", r.reopens);
  }

  // --- Chaos sweep (CI soak): VIBE_CHAOS_SEEDS=<n> ------------------------
  // Smaller churn runs across n seeds; per-seed Session trace digests fold
  // (in index order) into one digest, so two soak invocations can be
  // compared byte-for-byte. Skipped when the variable is unset, keeping
  // the default output — and the golden capture — unchanged.
  if (const char* cs = std::getenv("VIBE_CHAOS_SEEDS")) {
    const int seeds = std::atoi(cs);
    if (seeds > 0) {
      struct ChaosPoint {
        std::uint64_t digest = 0;
        double good = 0;
        double lost = 0;
        double reconnects = 0;
      };
      const auto points = harness::runSweep(
          static_cast<std::size_t>(seeds),
          [&](harness::PointEnv& env) {
            const std::uint64_t seed = 1000 + env.index;
            fault::ChurnParams cp;
            cp.firstNode = 1;
            cp.nodes = 8;
            cp.start = kStart;
            cp.horizon = sim::msec(30);
            cp.flapsPerNode = 1.0;
            cp.meanFlapLen = sim::msec(10);
            cp.departs = 1;
            cp.departLen = sim::msec(40);
            const fault::FaultPlan plan =
                fault::FaultPlan::generateChurn(seed, cp);
            sim::Tracer t(256);
            t.enable(sim::TraceCategory::Session);
            t.enable(sim::TraceCategory::User);
            RunConfig rc;
            rc.profile = fastFailoverProfile();
            rc.clients = 8;
            rc.fatTreeK = 0;
            rc.loadMult = 1.0;
            rc.horizon = sim::msec(30);
            rc.policy = shedPolicy;
            rc.churn = &plan;
            rc.tightBreaker = true;
            rc.seed = seed;
            const RunResult r = runServing(rc, &env, &t);
            return ChaosPoint{t.digest(), r.good, r.lost, r.reconnects};
          },
          bench::sweepOptions());
      std::uint64_t digest = sim::Tracer::kDigestSeed;
      double good = 0, lost = 0, reconnects = 0;
      for (const ChaosPoint& p : points) {
        digest = sim::Tracer::combineDigest(digest, p.digest);
        good += p.good;
        lost += p.lost;
        reconnects += p.reconnects;
      }
      std::printf(
          "chaos churn: seeds=%d good=%.0f lost=%.0f reconnects=%.0f "
          "digest=%016llx\n\n",
          seeds, good, lost, reconnects,
          static_cast<unsigned long long>(digest));
    }
  }

  // --- 6. The serving macro-benchmark hosted on the sharded PDES engine --
  // The full stack — open-loop arrivals, admission queue, recovery RPC —
  // runs with one PDES domain per switch. Per-domain schedules are
  // shard-count-invariant, so the table is byte-identical at any
  // VIBE_SIM_SHARDS >= 1 and the golden matrix's shards axis re-runs it
  // on real worker threads against the same bytes.
  {
    const std::vector<double> pdesLoads = {1.0, 2.0};
    const auto pdesRuns = harness::runSweep(
        pdesLoads.size(),
        [&](harness::PointEnv& env) {
          RunConfig rc;
          rc.loadMult = pdesLoads[env.index];
          rc.policy = shedPolicy;
          rc.simShards = std::max(1u, sim::shardCount());
          return runServing(rc, &env);
        },
        bench::sweepOptions());
    suite::ResultTable pdes(
        "Goodput under overload hosted on the sharded PDES engine "
        "(cLAN k=16, deadline shed, any shard count)",
        {"offered_x", "good_rps", "p99_ms", "shed", "lost"});
    for (std::size_t i = 0; i < pdesLoads.size(); ++i) {
      const RunResult& r = pdesRuns[i];
      pdes.addRow({pdesLoads[i], r.goodputRps, r.p99Ms, r.shed, r.lost});
    }
    bench::emit(pdes);
  }

  if (bench::jsonRequested()) {
    bench::writeBenchJson("ext_serving", {},
                          {{"serving", std::move(servingMetrics)}});
  }
  return 0;
}

}  // namespace

VIBE_BENCH_MAIN(ext_serving, run)
