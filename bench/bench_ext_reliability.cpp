// TR §3.2.5 extension: reliability levels (L_rel / B_rel). Unreliable
// delivery completes sends locally; Reliable Delivery waits for the NIC
// receipt ack; Reliable Reception waits for the memory-placement ack. The
// benchmark also shows goodput under injected frame loss, where the
// reliable levels pay retransmission while Unreliable silently loses data.
#include <cstdio>

#include "bench_common.hpp"
#include "vibe/datatransfer.hpp"

int main() {
  using namespace vibe;
  using namespace vibe::bench;

  printHeader("Impact of reliability level",
              "TR §3.2.5: UD < RD < RR in send-completion cost; ping-pong "
              "latency is similar (the reply already acknowledges), "
              "bandwidth differs via ack/window pressure");

  const nic::Reliability levels[] = {nic::Reliability::Unreliable,
                                     nic::Reliability::ReliableDelivery,
                                     nic::Reliability::ReliableReception};

  suite::ResultTable lat("One-way latency (us) by reliability level",
                         {"bytes", "mvia_ud", "mvia_rd", "mvia_rr",
                          "bvia_ud", "bvia_rd", "bvia_rr", "clan_ud",
                          "clan_rd", "clan_rr"});
  suite::ResultTable bw("Bandwidth (MB/s) by reliability level",
                        {"bytes", "mvia_ud", "mvia_rd", "mvia_rr",
                         "bvia_ud", "bvia_rd", "bvia_rr", "clan_ud",
                         "clan_rd", "clan_rr"});
  for (const std::uint64_t size : {4ull, 1024ull, 4096ull, 28672ull}) {
    std::vector<double> latRow{static_cast<double>(size)};
    std::vector<double> bwRow{static_cast<double>(size)};
    for (const auto& np : paperProfiles()) {
      for (const auto level : levels) {
        suite::TransferConfig cfg;
        cfg.msgBytes = size;
        cfg.reliability = level;
        const auto ping = suite::runPingPong(clusterFor(np.profile), cfg);
        latRow.push_back(ping.latencyUsec);
        const auto stream = suite::runBandwidth(clusterFor(np.profile), cfg);
        bwRow.push_back(stream.bandwidthMBps);
      }
    }
    lat.addRow(latRow);
    bw.addRow(bwRow);
  }
  vibe::bench::emit(lat);
  vibe::bench::emit(bw);

  // The level semantics show up in *send completion* time: UD completes at
  // local transmit, RD at the remote NIC's receipt ack, RR only once the
  // data has been placed in target memory.
  suite::ResultTable sc("Send post-to-completion time (us), 4096 B",
                        {"impl", "ud", "rd", "rr"});
  int idx = 0;
  for (const auto& np : paperProfiles()) {
    std::vector<double> row{static_cast<double>(idx++)};
    for (const auto level : levels) {
      suite::TransferConfig cfg;
      cfg.msgBytes = 4096;
      cfg.reliability = level;
      cfg.measureSendCompletion = true;
      const auto r = suite::runPingPong(clusterFor(np.profile), cfg);
      row.push_back(r.sendCompletionUsec);
    }
    sc.addRow(row);
  }
  vibe::bench::emit(sc);
  std::printf("(impl: 0 = M-VIA, 1 = BVIA, 2 = cLAN)\n\n");

  // Reliable goodput under loss: RD keeps delivering (slower), UD loses.
  suite::ResultTable lossT(
      "cLAN 4 KiB bandwidth (MB/s) under frame loss, RD",
      {"loss_pct", "rd_bandwidth"});
  for (const double loss : {0.0, 0.01, 0.05}) {
    suite::ClusterConfig cc = clusterFor(nic::clanProfile());
    cc.lossRate = loss;
    suite::TransferConfig cfg;
    cfg.msgBytes = 4096;
    cfg.burst = 100;
    const auto r = suite::runBandwidth(cc, cfg);
    lossT.addRow({loss * 100.0, r.bandwidthMBps});
  }
  vibe::bench::emit(lossT);
  return 0;
}
