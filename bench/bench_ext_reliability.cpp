// TR §3.2.5 extension: reliability levels (L_rel / B_rel). Unreliable
// delivery completes sends locally; Reliable Delivery waits for the NIC
// receipt ack; Reliable Reception waits for the memory-placement ack. The
// benchmark also shows goodput under injected frame loss, where the
// reliable levels pay retransmission while Unreliable silently loses data.
#include <cstdio>

#include "bench_common.hpp"
#include "bench_registry.hpp"
#include "vibe/datatransfer.hpp"

namespace {

int run(int, char**) {
  using namespace vibe;
  using namespace vibe::bench;

  printHeader("Impact of reliability level",
              "TR §3.2.5: UD < RD < RR in send-completion cost; ping-pong "
              "latency is similar (the reply already acknowledges), "
              "bandwidth differs via ack/window pressure");

  const std::vector<nic::Reliability> levels = {
      nic::Reliability::Unreliable, nic::Reliability::ReliableDelivery,
      nic::Reliability::ReliableReception};

  suite::ResultTable lat("One-way latency (us) by reliability level",
                         {"bytes", "mvia_ud", "mvia_rd", "mvia_rr",
                          "bvia_ud", "bvia_rd", "bvia_rr", "clan_ud",
                          "clan_rd", "clan_rr"});
  suite::ResultTable bw("Bandwidth (MB/s) by reliability level",
                        {"bytes", "mvia_ud", "mvia_rd", "mvia_rr",
                         "bvia_ud", "bvia_rd", "bvia_rr", "clan_ud",
                         "clan_rd", "clan_rr"});
  const std::vector<std::uint64_t> sizes = {4, 1024, 4096, 28672};
  const auto profiles = paperProfiles();
  const std::size_t perSize = profiles.size() * levels.size();
  struct Point {
    double lat = 0.0;
    double bw = 0.0;
  };
  const auto points = harness::runSweep(
      sizes.size() * perSize,
      [&](harness::PointEnv& env) {
        const std::uint64_t size = sizes[env.index / perSize];
        const std::size_t rest = env.index % perSize;
        const auto& np = profiles[rest / levels.size()];
        suite::TransferConfig cfg;
        cfg.msgBytes = size;
        cfg.reliability = levels[rest % levels.size()];
        Point pt;
        pt.lat =
            suite::runPingPong(clusterFor(np.profile, 2, env), cfg).latencyUsec;
        pt.bw = suite::runBandwidth(clusterFor(np.profile, 2, env), cfg)
                    .bandwidthMBps;
        return pt;
      },
      sweepOptions());
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    std::vector<double> latRow{static_cast<double>(sizes[si])};
    std::vector<double> bwRow{static_cast<double>(sizes[si])};
    for (std::size_t j = 0; j < perSize; ++j) {
      latRow.push_back(points[si * perSize + j].lat);
      bwRow.push_back(points[si * perSize + j].bw);
    }
    lat.addRow(latRow);
    bw.addRow(bwRow);
  }
  vibe::bench::emit(lat);
  vibe::bench::emit(bw);

  // The level semantics show up in *send completion* time: UD completes at
  // local transmit, RD at the remote NIC's receipt ack, RR only once the
  // data has been placed in target memory.
  suite::ResultTable sc("Send post-to-completion time (us), 4096 B",
                        {"impl", "ud", "rd", "rr"});
  const auto scPoints = harness::runSweep(
      profiles.size() * levels.size(),
      [&](harness::PointEnv& env) {
        const auto& np = profiles[env.index / levels.size()];
        suite::TransferConfig cfg;
        cfg.msgBytes = 4096;
        cfg.reliability = levels[env.index % levels.size()];
        cfg.measureSendCompletion = true;
        return suite::runPingPong(clusterFor(np.profile, 2, env), cfg)
            .sendCompletionUsec;
      },
      sweepOptions());
  for (std::size_t pi = 0; pi < profiles.size(); ++pi) {
    std::vector<double> row{static_cast<double>(pi)};
    for (std::size_t li = 0; li < levels.size(); ++li) {
      row.push_back(scPoints[pi * levels.size() + li]);
    }
    sc.addRow(row);
  }
  vibe::bench::emit(sc);
  std::printf("(impl: 0 = M-VIA, 1 = BVIA, 2 = cLAN)\n\n");

  // Reliable goodput under loss: RD keeps delivering (slower), UD loses.
  suite::ResultTable lossT(
      "cLAN 4 KiB bandwidth (MB/s) under frame loss, RD",
      {"loss_pct", "rd_bandwidth"});
  const std::vector<double> losses = {0.0, 0.01, 0.05};
  const auto lossPoints = harness::runSweep(
      losses.size(),
      [&](harness::PointEnv& env) {
        suite::ClusterConfig cc = clusterFor(nic::clanProfile(), 2, env);
        cc.lossRate = losses[env.index];
        suite::TransferConfig cfg;
        cfg.msgBytes = 4096;
        cfg.burst = 100;
        return suite::runBandwidth(cc, cfg).bandwidthMBps;
      },
      sweepOptions());
  for (std::size_t i = 0; i < losses.size(); ++i) {
    lossT.addRow({losses[i] * 100.0, lossPoints[i]});
  }
  vibe::bench::emit(lossT);
  return 0;
}

}  // namespace

VIBE_BENCH_MAIN(ext_reliability, run)
