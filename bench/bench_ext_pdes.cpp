// Extension: conservative PDES scaling. Every prior bench exercises one
// serial event loop; this one shards a single fat-tree multiclient
// simulation across cores (VIBE_SIM_SHARDS) and measures what that buys
// at fabric sizes the serial loop crawls through — up to the 8192-host
// k=32 fat-tree. Determinism is asserted inline: at every size the
// digest, event count, window count, and virtual end time must be
// byte-identical across all shard counts, or the bench fails loudly.
//
// Deliberately NOT part of the golden-table suite: its tables contain
// wall-clock columns. The deterministic columns are pinned by test_pdes
// instead.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "bench_registry.hpp"
#include "fabric/pdes_traffic.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/timeseries.hpp"
#include "simcore/pdes.hpp"

namespace {

struct ShardRun {
  unsigned shards = 0;
  double wallMs = 0.0;
  vibe::fabric::PdesTrafficResult res;
};

int run(int, char**) {
  using namespace vibe;
  using namespace vibe::bench;

  printHeader("Conservative PDES scaling",
              "Extension: sharding one simulation across cores "
              "(paper testbeds and all prior benches are serial)");

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware threads: %u; shard counts swept: 1 2 4%s\n", hw,
              hw > 4 ? " hw" : "");

  std::vector<unsigned> shardCounts = {1, 2, 4};
  if (hw > 4) shardCounts.push_back(hw);

  struct Size {
    std::uint32_t k;
    std::uint32_t rounds;
  };
  const std::vector<Size> sizes = {{8, 12}, {16, 12}, {32, 12}};

  suite::ResultTable table(
      "PDES fat-tree multiclient scaling (full population, k^3/4 hosts)",
      {"k", "hosts", "shards", "events", "windows", "wall_ms", "ev_per_sec",
       "speedup", "xshard_frac"});

  bool deterministic = true;
  double speedup4AtScale = 0.0;   // >= 4096 hosts, 4 shards
  double xshardFracAtScale = 0.0;
  double evPerSecSerial = 0.0;
  std::vector<ShardRun> atScale;  // k=32 runs, kept for the profiler table
  for (const Size& sz : sizes) {
    std::vector<ShardRun> runs;
    for (unsigned shards : shardCounts) {
      fabric::PdesTrafficConfig cfg;
      cfg.fatTreeK = sz.k;
      cfg.rounds = sz.rounds;
      cfg.seed = 42;
      cfg.shards = shards;
      cfg.profileShards = true;
      const auto t0 = std::chrono::steady_clock::now();
      ShardRun r;
      r.res = fabric::runPdesTraffic(cfg);
      r.wallMs = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
      r.shards = shards;
      runs.push_back(std::move(r));
    }
    const ShardRun& base = runs.front();
    if (sz.k == 32) {
      evPerSecSerial =
          static_cast<double>(base.res.events) / (base.wallMs / 1e3);
    }
    for (const ShardRun& r : runs) {
      if (r.res.digest != base.res.digest ||
          r.res.events != base.res.events ||
          r.res.windows != base.res.windows ||
          r.res.endTime != base.res.endTime) {
        std::printf("DETERMINISM FAIL: k=%u shards=%u diverged from serial "
                    "(digest %016llx vs %016llx)\n",
                    sz.k, r.shards,
                    static_cast<unsigned long long>(r.res.digest),
                    static_cast<unsigned long long>(base.res.digest));
        deterministic = false;
      }
      const double speedup = base.wallMs / r.wallMs;
      const double xfrac =
          r.res.messages == 0
              ? 0.0
              : static_cast<double>(r.res.crossShard) /
                    static_cast<double>(r.res.messages);
      if (sz.k == 32 && r.shards == 4) {
        speedup4AtScale = speedup;
        xshardFracAtScale = xfrac;
      }
      table.addRow({static_cast<double>(sz.k),
                    static_cast<double>(sz.k * sz.k * sz.k / 4),
                    static_cast<double>(r.res.shardsUsed),
                    static_cast<double>(r.res.events),
                    static_cast<double>(r.res.windows), r.wallMs,
                    static_cast<double>(r.res.events) / (r.wallMs / 1e3),
                    speedup, xfrac});
    }
    if (sz.k == 32) atScale = runs;
  }
  vibe::bench::emit(table);
  std::printf("determinism across shard counts: %s\n",
              deterministic ? "OK (digests byte-identical)" : "FAILED");

  // --- PDES runtime profiler: per-shard breakdown at scale ------------
  // Wall-clock columns (exec_ms, barrier_pct) vary run to run; the event
  // and window counts are deterministic. Totals must reconcile with the
  // engine-wide executedEvents()/windowsExecuted() introspection.
  bool reconciled = true;
  for (const ShardRun& r : atScale) {
    suite::ResultTable prof(
        "PDES shard profile (k=32, shards=" + std::to_string(r.shards) +
            ", imbalance=max/mean events)",
        {"shard", "domains", "events", "ev_per_window", "occupancy",
         "exec_ms", "barrier_pct", "xshard_sent"});
    std::uint64_t evTotal = 0;
    for (const sim::ShardProfile& p : r.res.shardProfiles) {
      evTotal += p.events;
      const double busyNs =
          static_cast<double>(p.execNs + p.barrierWaitNs);
      prof.addRow({static_cast<double>(p.shard),
                   static_cast<double>(p.domains),
                   static_cast<double>(p.events),
                   r.res.windows == 0
                       ? 0.0
                       : static_cast<double>(p.events) /
                             static_cast<double>(r.res.windows),
                   r.res.windows == 0
                       ? 0.0
                       : static_cast<double>(p.windowsActive) /
                             static_cast<double>(r.res.windows),
                   static_cast<double>(p.execNs) / 1e6,
                   busyNs == 0.0
                       ? 0.0
                       : 100.0 * static_cast<double>(p.barrierWaitNs) /
                             busyNs,
                   static_cast<double>(p.crossShardSent)});
    }
    vibe::bench::emit(prof);
    std::printf("shard profile reconciliation (shards=%u): events %llu/%llu "
                "windows %llu, load imbalance %.3f: %s\n",
                r.shards, static_cast<unsigned long long>(evTotal),
                static_cast<unsigned long long>(r.res.events),
                static_cast<unsigned long long>(r.res.windows),
                r.res.loadImbalance,
                evTotal == r.res.events ? "OK" : "FAIL");
    if (evTotal != r.res.events) reconciled = false;
    if (statsAttached()) {
      obs::publishShardProfiles(
          statsRegistry(),
          "pdes.shards" + std::to_string(r.shards), r.res.shardProfiles,
          r.res.loadImbalance);
    }
  }
  std::printf(
      "Each shard owns the hosts under its edge switches; the window\n"
      "width is the derived cross-edge lookahead (header serialization +\n"
      "propagation up and down + core forwarding). Speedup tracks the\n"
      "hardware thread count, not the shard count: with fewer cores than\n"
      "shards the barrier just multiplexes threads (hw=%u here).\n",
      hw);

  if (jsonRequested()) {
    writeBenchJson(
        "pdes", {},
        {{"scaling",
          {{"hw_threads", static_cast<double>(hw)},
           {"hosts_at_scale", 8192.0},
           {"events_at_scale_serial_per_sec", evPerSecSerial},
           {"speedup_shards4_at_scale", speedup4AtScale},
           {"cross_shard_fraction_at_scale", xshardFracAtScale},
           {"deterministic", deterministic ? 1.0 : 0.0},
           {"profile_reconciled", reconciled ? 1.0 : 0.0}}}});
  }
  if (!deterministic || !reconciled) {
    // Bench-abort path: dump whatever the flight recorder can see so the
    // failure leaves a post-mortem artifact (VIBE_FLIGHT_OUT).
    if (auto recorder = obs::FlightRecorder::fromEnv()) {
      recorder->dump(!deterministic
                         ? "bench_ext_pdes: determinism divergence across "
                           "shard counts"
                         : "bench_ext_pdes: shard profile failed to "
                           "reconcile with executedEvents()");
    }
    return 1;
  }
  return 0;
}

}  // namespace

VIBE_BENCH_MAIN(ext_pdes, run)
