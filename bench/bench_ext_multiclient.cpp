// Extension: server scalability with concurrent clients — the scalability
// question the paper says VIBe should inform ("understanding the impact of
// multiple open VIs ... can provide a higher layer developer insight about
// the number of VIs to be used ... and scalability studies", §1).
//
// One server, N clients, each issuing synchronous 16 B -> 256 B
// transactions; the server reaps every client VI through one completion
// queue. Aggregate throughput grows until the server side saturates; on
// the firmware-polling model each additional *VI* also slows every other
// client down (the Fig. 6 effect applied to a real server shape).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "bench_registry.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "simcore/pdes.hpp"
#include "upper/rpc/rpc.hpp"
#include "vibe/cluster.hpp"

namespace {

using namespace vibe;

/// Engine-mode witness of one incast run: the virtual end time plus a fold
/// of every node's NicStats. Identical values across shard counts mean the
/// runs executed the same per-domain schedules, not merely similar ones.
struct IncastWitness {
  sim::SimTime endTime = 0;
  std::uint64_t nicDigest = 0;
  std::uint64_t events = 0;   // sharded mode: ShardedEngine::executedEvents
  std::uint64_t windows = 0;  // sharded mode: lockstep windows executed
};

std::uint64_t foldNicStats(std::uint64_t acc, const nic::NicStats& s) {
  for (std::uint64_t v :
       {s.sendsPosted, s.recvsPosted, s.fragsTx, s.fragsRx, s.bytesTx,
        s.bytesRx, s.acksTx, s.acksRx, s.retransmits, s.rxCorrupted,
        s.rxDroppedNoDescriptor, s.rxDroppedBadEndpoint,
        s.rxOutOfOrderDropped, s.protocolErrors}) {
    acc = sim::Tracer::combineDigest(acc, v);
  }
  return acc;
}

double aggregateTps(const nic::NicProfile& profile, std::uint32_t clients,
                    int callsPerClient, const harness::PointEnv* penv,
                    std::uint32_t fatTreeK = 0,
                    sim::Duration connectStagger = 0,
                    std::uint32_t simShards = 0,
                    IncastWitness* witness = nullptr) {
  suite::ClusterConfig cc = penv
                                ? bench::clusterFor(profile, clients + 1,
                                                    *penv)
                                : bench::clusterFor(profile, clients + 1);
  cc.fatTreeK = fatTreeK;
  cc.simShards = simShards;
  suite::Cluster cluster(cc);
  double elapsedSec = 0;

  std::vector<std::function<void(suite::NodeEnv&)>> programs;
  programs.push_back([&](suite::NodeEnv& env) {
    upper::rpc::RpcConfig scfg;
    scfg.serverCqEntries = std::max(1024u, 4 * clients);
    upper::rpc::RpcServer server(env, scfg);
    server.registerMethod(1, [](std::span<const std::byte>) {
      return std::vector<std::byte>(256, std::byte{0x11});
    });
    server.acceptClients(clients);
    const sim::SimTime t0 = env.now();
    server.serve();
    elapsedSec = sim::toSec(env.now() - t0);
  });
  for (std::uint32_t c = 0; c < clients; ++c) {
    programs.push_back([&, c](suite::NodeEnv& env) {
      // At hundreds of clients, dialing all at once overruns the
      // provider's 500 ms connection-request grace window (the server
      // accepts serially at ~1 ms per dialog): pace the dials to the
      // accept rate. The timed window starts after every session is up,
      // so the stagger never leaks into the throughput number.
      if (connectStagger > 0) {
        env.self.advance(connectStagger * c, sim::CpuUse::Idle);
      }
      upper::rpc::RpcClient client(env, 0);
      std::vector<std::byte> args(16, std::byte{0x22});
      for (int i = 0; i < callsPerClient; ++i) {
        (void)client.call(1, args);
      }
      client.shutdown();
    });
  }
  cluster.run(std::move(programs));
  if (witness) {
    witness->endTime = cluster.now();
    std::uint64_t d = 0xcbf29ce484222325ull;
    for (std::uint32_t n = 0; n < cluster.nodeCount(); ++n) {
      d = foldNicStats(d, cluster.node(n).device().stats());
    }
    witness->nicDigest = d;
    if (cluster.sharded()) {
      witness->events = cluster.shardedEngine().executedEvents();
      witness->windows = cluster.shardedEngine().windowsExecuted();
    }
  }
  return static_cast<double>(clients) * callsPerClient / elapsedSec;
}

/// The 1023-client incast, replayed once with the observability stack
/// attached: every RPC call's latency lands in one cumulative histogram,
/// a TimeSeriesSampler snapshots it at a fixed virtual-time cadence, and
/// an SloMonitor diffs successive snapshots into rolling windows. The
/// emitted table is the p99-over-time series — virtual-time quantiles at
/// bucket resolution, so it is deterministic and part of the golden
/// suite even though it narrates a live SLO breach.
///
/// The timeline has two acts. While the server is still inside
/// acceptClients() (~1.2 s of staggered dialogs) no RPC gets an answer,
/// so the early windows are empty — calls pile up unreaped. Once serve()
/// starts, 1023 clients' queued calls drain in a burst: the first burst
/// window's tail includes the accept-wait itself (client 0 waited over a
/// second), and steady-state burst latency is the full 1023-deep queue
/// round trip — four orders of magnitude over the 200 us SLO.
void sloTimeline() {
  using namespace vibe::bench;
  const std::uint32_t clients = 1023;
  const int callsPerClient = 20;
  const sim::Duration stagger = sim::usec(1200);
  const sim::Duration period = sim::msec(100);
  const std::uint64_t thresholdNs = 200'000;  // SLO: p99 <= 200 us

  obs::Histogram latency;
  obs::TimeSeriesSampler sampler;
  obs::SloMonitor slo("rpc_call", latency);
  slo.setThresholdNs(thresholdNs);

  suite::ClusterConfig cc = clusterFor(nic::clanProfile(), clients + 1);
  cc.fatTreeK = 16;
  cc.sampler = &sampler;
  cc.samplePeriod = period;
  suite::Cluster cluster(cc);
  slo.bindTo(sampler);

  std::vector<std::function<void(suite::NodeEnv&)>> programs;
  programs.push_back([&](suite::NodeEnv& env) {
    upper::rpc::RpcServer server(env);
    server.registerMethod(1, [](std::span<const std::byte>) {
      return std::vector<std::byte>(256, std::byte{0x11});
    });
    server.acceptClients(clients);
    server.serve();
  });
  for (std::uint32_t c = 0; c < clients; ++c) {
    programs.push_back([&, c](suite::NodeEnv& env) {
      env.self.advance(stagger * c, sim::CpuUse::Idle);
      upper::rpc::RpcClient client(env, 0);
      std::vector<std::byte> args(16, std::byte{0x22});
      for (int i = 0; i < callsPerClient; ++i) {
        const sim::SimTime t0 = env.now();
        (void)client.call(1, args);
        latency.add(static_cast<std::int64_t>(env.now() - t0));
      }
      client.shutdown();
    });
  }
  cluster.run(std::move(programs));

  suite::ResultTable t(
      "RPC p99 over time, cLAN fat-tree k=16, 1023 clients "
      "(100 ms windows, SLO p99 <= 200 us)",
      {"t_ms", "calls", "p50_us", "p99_us", "p999_us", "burn"});
  for (const obs::SloMonitor::Window& w : slo.windows()) {
    t.addRow({static_cast<double>(w.t) / 1e6, static_cast<double>(w.count),
              w.p50 / 1e3, w.p99 / 1e3, w.p999 / 1e3, w.burnRate});
  }
  vibe::bench::emit(t);
  std::printf(
      "slo rpc_call: threshold p99 <= %llu us, target %.2f, crossings %llu, "
      "breached at exit: %s\n",
      static_cast<unsigned long long>(thresholdNs / 1000), slo.target(),
      static_cast<unsigned long long>(slo.crossings()),
      slo.breached() ? "yes" : "no");
  std::printf(
      "Each window diffs the cumulative call-latency histogram at a fixed\n"
      "virtual-time cadence. The windows are empty while the server is\n"
      "still accepting dialogs (no call gets an answer); the moment\n"
      "serve() starts, the queued incast drains and the windowed p99\n"
      "lands at the full 1023-deep queue round trip — the first burst\n"
      "window's p999 is the accept-wait itself. burn=100 is the monitor's\n"
      "way of saying the whole window blew the budget.\n");
}

/// The same incast hosted on the sharded PDES engine. Per-domain schedules
/// are shard-count-invariant, so the table is byte-identical at any
/// VIBE_SIM_SHARDS >= 1 and belongs in the golden suite: the shards axis
/// of the golden matrix re-runs it on real worker threads and diffs it
/// against the same bytes. Modest sizes keep the matrix affordable; the
/// 4096-host scale run lives in the standalone binary below.
void shardedIncastTable() {
  using namespace vibe::bench;
  suite::ResultTable t(
      "Aggregate transactions/s hosted on the sharded PDES engine, cLAN "
      "fat-tree k=8 (one domain per switch, any shard count)",
      {"clients", "tps", "serial_tps"});
  const std::vector<std::uint32_t> counts = {63u, 127u};
  struct Pair {
    double hosted = 0;
    double serial = 0;
  };
  const auto points = harness::runSweep(
      counts.size(),
      [&](harness::PointEnv& env) {
        const std::uint32_t clients = counts[env.index];
        return Pair{aggregateTps(nic::clanProfile(), clients, 2, &env, 8,
                                 sim::usec(1200),
                                 std::max(1u, sim::shardCount())),
                    aggregateTps(nic::clanProfile(), clients, 2, &env, 8,
                                 sim::usec(1200))};
      },
      sweepOptions());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    t.addRow({static_cast<double>(counts[i]), points[i].hosted,
              points[i].serial});
  }
  vibe::bench::emit(t, 0);
  std::printf(
      "tps == serial_tps row for row: hosting the stack on the sharded\n"
      "engine changes who executes the events, never what they compute.\n");
}

#ifndef VIBE_BENCH_LIBRARY
/// One run of the fleet incast: `groups` independent servers, each taking
/// a `clientsPerGroup`-client incast, packed into contiguous node ranges
/// on a k=32 fat-tree. A single 4095-client incast serializes the whole
/// simulation through the one server's accept loop (and its edge domain),
/// so sharding cannot help it; a fleet of group incasts is the shape that
/// actually spreads load across the 1280 domains.
double fleetIncast(std::uint32_t groups, std::uint32_t clientsPerGroup,
                   std::uint32_t simShards, IncastWitness* witness) {
  const std::uint32_t groupSize = clientsPerGroup + 1;
  constexpr int kCalls = 2;
  suite::ClusterConfig cc =
      bench::clusterFor(nic::clanProfile(), groups * groupSize);
  cc.fatTreeK = 32;
  cc.simShards = simShards;
  suite::Cluster cluster(cc);

  std::vector<std::function<void(suite::NodeEnv&)>> programs(
      groups * groupSize, [](suite::NodeEnv&) {});
  for (std::uint32_t g = 0; g < groups; ++g) {
    const std::uint32_t base = g * groupSize;
    // Each 64-host group spans four 16-host edge switches. Rotate the
    // server across them: with servers pinned to the group's first node,
    // every hot server domain has index = 0 (mod 4) and round-robin
    // domain placement piles all of them onto one worker shard.
    const std::uint32_t serverNode = base + 16 * (g % 4);
    programs[serverNode] = [&, clientsPerGroup](suite::NodeEnv& env) {
      upper::rpc::RpcServer server(env);
      server.registerMethod(1, [](std::span<const std::byte>) {
        return std::vector<std::byte>(256, std::byte{0x11});
      });
      server.acceptClients(clientsPerGroup);
      server.serve();
    };
    std::uint32_t c = 0;
    for (std::uint32_t n = base; n < base + groupSize; ++n) {
      if (n == serverNode) continue;
      // Phase-shift the dial schedule per group: with every group's
      // c-th client starting together, the active clients of a phase
      // all sit at the same in-group offset — i.e. the same edge-switch
      // residue, i.e. one worker shard — and the fleet serializes.
      const std::uint32_t phase = (c + g * 7) % clientsPerGroup;
      programs[n] = [&, serverNode, phase](suite::NodeEnv& env) {
        env.self.advance(sim::usec(1200) * phase, sim::CpuUse::Idle);
        upper::rpc::RpcClient client(env, serverNode);
        std::vector<std::byte> args(16, std::byte{0x22});
        for (int i = 0; i < kCalls; ++i) (void)client.call(1, args);
        client.shutdown();
      };
      ++c;
    }
  }
  const bool prof =
      cluster.sharded() && std::getenv("VIBE_PDES_PROFILE") != nullptr;
  if (prof) cluster.shardedEngine().setProfiling(true);
  cluster.run(std::move(programs));
  if (prof) {
    for (const sim::ShardProfile& p :
         cluster.shardedEngine().shardProfiles()) {
      std::fprintf(stderr,
                   "  [prof] shard %u: domains=%u events=%llu active=%llu "
                   "exec_ms=%.1f barrier_ms=%.1f\n",
                   p.shard, p.domains,
                   static_cast<unsigned long long>(p.events),
                   static_cast<unsigned long long>(p.windowsActive),
                   p.execNs / 1e6, p.barrierWaitNs / 1e6);
    }
  }
  if (witness) {
    witness->endTime = cluster.now();
    std::uint64_t d = 0xcbf29ce484222325ull;
    for (std::uint32_t n = 0; n < cluster.nodeCount(); ++n) {
      d = foldNicStats(d, cluster.node(n).device().stats());
    }
    witness->nicDigest = d;
    if (cluster.sharded()) {
      witness->events = cluster.shardedEngine().executedEvents();
      witness->windows = cluster.shardedEngine().windowsExecuted();
    }
  }
  return static_cast<double>(groups) * clientsPerGroup * kCalls /
         sim::toSec(cluster.now());
}

/// Standalone-only (wall-clock columns cannot be golden): 64 concurrent
/// 63-client incasts on a k=32 fat-tree — 4096 hosts across 1280 PDES
/// domains — swept over worker shard counts. Every run must reproduce the
/// shards=1 witness bit-for-bit; the speedup column is the point of the
/// exercise.
int shardedScaleDemo() {
  const std::uint32_t groups = 64, clientsPerGroup = 63;
  std::printf(
      "\nScale demo: %u concurrent %u-client incasts, k=32 fat-tree "
      "(4096 hosts, 1280 PDES domains)\n",
      groups, clientsPerGroup);
  struct ShardRun {
    std::uint32_t shards = 0;
    double wallMs = 0;
    double tps = 0;
    IncastWitness w;
  };
  std::vector<std::uint32_t> shardCounts = {1u, 2u, 4u};
  const std::uint32_t hw = std::max(1u, sim::shardCount());
  if (hw > 4) shardCounts.push_back(hw);
  std::vector<ShardRun> runs;
  for (std::uint32_t s : shardCounts) {
    ShardRun r;
    r.shards = s;
    const auto t0 = std::chrono::steady_clock::now();
    r.tps = fleetIncast(groups, clientsPerGroup, s, &r.w);
    r.wallMs = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    runs.push_back(r);
  }
  const ShardRun& base = runs.front();
  bool deterministic = true;
  std::printf("%8s %12s %14s %12s %10s %10s\n", "shards", "wall_ms",
              "events/sec", "tps", "speedup", "witness");
  for (const ShardRun& r : runs) {
    const bool same = r.w.endTime == base.w.endTime &&
                      r.w.nicDigest == base.w.nicDigest &&
                      r.w.events == base.w.events &&
                      r.w.windows == base.w.windows;
    deterministic = deterministic && same;
    std::printf("%8u %12.0f %14.0f %12.0f %9.2fx %10s\n", r.shards, r.wallMs,
                static_cast<double>(r.w.events) / (r.wallMs / 1e3), r.tps,
                base.wallMs / r.wallMs, same ? "match" : "DIVERGED");
    if (!same) {
      std::printf(
          "DETERMINISM FAIL at shards=%u: end %lld vs %lld, digest %016llx "
          "vs %016llx, events %llu vs %llu\n",
          r.shards, static_cast<long long>(r.w.endTime),
          static_cast<long long>(base.w.endTime),
          static_cast<unsigned long long>(r.w.nicDigest),
          static_cast<unsigned long long>(base.w.nicDigest),
          static_cast<unsigned long long>(r.w.events),
          static_cast<unsigned long long>(base.w.events));
    }
  }
  std::printf("determinism across shard counts: %s\n",
              deterministic ? "OK (witnesses byte-identical)" : "FAILED");
  if (std::thread::hardware_concurrency() <= 1) {
    std::printf(
        "note: single-core host; worker threads time-slice one core, so "
        "speedup ~= 1.0 here by necessity (see docs/PDES.md)\n");
  }
  return deterministic ? 0 : 1;
}
#endif  // VIBE_BENCH_LIBRARY

int run(int, char**) {
  using namespace vibe::bench;
  printHeader("Server scalability with concurrent clients",
              "Extension of Fig. 6/Fig. 7: aggregate transactions/s of one "
              "CQ-multiplexed server as clients (and thus server VIs) grow");

  suite::ResultTable t("Aggregate transactions/s (16 B request, 256 B reply)",
                       {"clients", "mvia", "bvia", "clan"});
  const std::vector<std::uint32_t> clientCounts = {1u, 2u, 4u, 6u};
  const auto profiles = paperProfiles();
  const auto points = harness::runSweep(
      clientCounts.size() * profiles.size(),
      [&](harness::PointEnv& env) {
        const std::uint32_t clients =
            clientCounts[env.index / profiles.size()];
        const auto& np = profiles[env.index % profiles.size()];
        return aggregateTps(np.profile, clients, 60, &env);
      },
      sweepOptions());
  for (std::size_t ci = 0; ci < clientCounts.size(); ++ci) {
    std::vector<double> row{static_cast<double>(clientCounts[ci])};
    for (std::size_t pi = 0; pi < profiles.size(); ++pi) {
      row.push_back(points[ci * profiles.size() + pi]);
    }
    t.addRow(row);
  }
  vibe::bench::emit(t, 0);
  std::printf(
      "cLAN scales nearly linearly until the server NIC saturates; the\n"
      "firmware model gains less per client because every added VI taxes\n"
      "each message's doorbell scan; the kernel-emulated model is gated by\n"
      "server-host CPU (every byte crosses it twice).\n");

  // Incast at fabric scale: one server, up to 1023 cLAN clients — a full
  // 1024-node cluster. The server reaps each reply's send completion
  // before taking the next request, and ReliableDelivery completes a send
  // at the remote NIC's receipt ack — so every transaction pays a full
  // fabric round trip. On the flat star that round trip is two host
  // links; on the k=16 fat-tree most clients sit cross-pod, six links and
  // three switch hops away, and the aggregate rate drops accordingly: the
  // Clos geometry taxes even a throughput benchmark once the server
  // synchronizes on delivery.
  suite::ResultTable big(
      "Aggregate transactions/s at scale, cLAN (16 B request, 256 B reply)",
      {"clients", "flat", "fattree_k16"});
  const std::vector<std::uint32_t> bigCounts = {255u, 511u, 1023u};
  struct BigPoint {
    double flat = 0;
    double fatTree = 0;
  };
  const auto bigPoints = harness::runSweep(
      bigCounts.size(),
      [&](harness::PointEnv& env) {
        const std::uint32_t clients = bigCounts[env.index];
        return BigPoint{
            aggregateTps(nic::clanProfile(), clients, 2, &env, 0,
                         sim::usec(1200)),
            aggregateTps(nic::clanProfile(), clients, 2, &env, 16,
                         sim::usec(1200))};
      },
      sweepOptions());
  for (std::size_t i = 0; i < bigCounts.size(); ++i) {
    big.addRow({static_cast<double>(bigCounts[i]), bigPoints[i].flat,
                bigPoints[i].fatTree});
  }
  vibe::bench::emit(big, 0);
  std::printf(
      "At 1023 clients the server holds 1023 open VIs and reaps them all\n"
      "through one CQ; the bench doubles as a stress test of connection\n"
      "setup (1023 dialogs) and of reply-side serialization on the one\n"
      "server downlink shared by every transaction.\n");
  shardedIncastTable();
  sloTimeline();
#ifndef VIBE_BENCH_LIBRARY
  return shardedScaleDemo();
#else
  return 0;
#endif
}

}  // namespace

VIBE_BENCH_MAIN(ext_multiclient, run)
