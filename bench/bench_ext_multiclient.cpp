// Extension: server scalability with concurrent clients — the scalability
// question the paper says VIBe should inform ("understanding the impact of
// multiple open VIs ... can provide a higher layer developer insight about
// the number of VIs to be used ... and scalability studies", §1).
//
// One server, N clients, each issuing synchronous 16 B -> 256 B
// transactions; the server reaps every client VI through one completion
// queue. Aggregate throughput grows until the server side saturates; on
// the firmware-polling model each additional *VI* also slows every other
// client down (the Fig. 6 effect applied to a real server shape).
#include <cstdio>
#include <cstring>
#include <functional>
#include <vector>

#include "bench_common.hpp"
#include "bench_registry.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "upper/rpc/rpc.hpp"
#include "vibe/cluster.hpp"

namespace {

using namespace vibe;

double aggregateTps(const nic::NicProfile& profile, std::uint32_t clients,
                    int callsPerClient, const harness::PointEnv& penv,
                    std::uint32_t fatTreeK = 0,
                    sim::Duration connectStagger = 0) {
  suite::ClusterConfig cc = bench::clusterFor(profile, clients + 1, penv);
  cc.fatTreeK = fatTreeK;
  suite::Cluster cluster(cc);
  double elapsedSec = 0;

  std::vector<std::function<void(suite::NodeEnv&)>> programs;
  programs.push_back([&](suite::NodeEnv& env) {
    upper::rpc::RpcServer server(env);
    server.registerMethod(1, [](std::span<const std::byte>) {
      return std::vector<std::byte>(256, std::byte{0x11});
    });
    server.acceptClients(clients);
    const sim::SimTime t0 = env.now();
    server.serve();
    elapsedSec = sim::toSec(env.now() - t0);
  });
  for (std::uint32_t c = 0; c < clients; ++c) {
    programs.push_back([&, c](suite::NodeEnv& env) {
      // At hundreds of clients, dialing all at once overruns the
      // provider's 500 ms connection-request grace window (the server
      // accepts serially at ~1 ms per dialog): pace the dials to the
      // accept rate. The timed window starts after every session is up,
      // so the stagger never leaks into the throughput number.
      if (connectStagger > 0) {
        env.self.advance(connectStagger * c, sim::CpuUse::Idle);
      }
      upper::rpc::RpcClient client(env, 0);
      std::vector<std::byte> args(16, std::byte{0x22});
      for (int i = 0; i < callsPerClient; ++i) {
        (void)client.call(1, args);
      }
      client.shutdown();
    });
  }
  cluster.run(std::move(programs));
  return static_cast<double>(clients) * callsPerClient / elapsedSec;
}

/// The 1023-client incast, replayed once with the observability stack
/// attached: every RPC call's latency lands in one cumulative histogram,
/// a TimeSeriesSampler snapshots it at a fixed virtual-time cadence, and
/// an SloMonitor diffs successive snapshots into rolling windows. The
/// emitted table is the p99-over-time series — virtual-time quantiles at
/// bucket resolution, so it is deterministic and part of the golden
/// suite even though it narrates a live SLO breach.
///
/// The timeline has two acts. While the server is still inside
/// acceptClients() (~1.2 s of staggered dialogs) no RPC gets an answer,
/// so the early windows are empty — calls pile up unreaped. Once serve()
/// starts, 1023 clients' queued calls drain in a burst: the first burst
/// window's tail includes the accept-wait itself (client 0 waited over a
/// second), and steady-state burst latency is the full 1023-deep queue
/// round trip — four orders of magnitude over the 200 us SLO.
void sloTimeline() {
  using namespace vibe::bench;
  const std::uint32_t clients = 1023;
  const int callsPerClient = 20;
  const sim::Duration stagger = sim::usec(1200);
  const sim::Duration period = sim::msec(100);
  const std::uint64_t thresholdNs = 200'000;  // SLO: p99 <= 200 us

  obs::Histogram latency;
  obs::TimeSeriesSampler sampler;
  obs::SloMonitor slo("rpc_call", latency);
  slo.setThresholdNs(thresholdNs);

  suite::ClusterConfig cc = clusterFor(nic::clanProfile(), clients + 1);
  cc.fatTreeK = 16;
  cc.sampler = &sampler;
  cc.samplePeriod = period;
  suite::Cluster cluster(cc);
  slo.bindTo(sampler);

  std::vector<std::function<void(suite::NodeEnv&)>> programs;
  programs.push_back([&](suite::NodeEnv& env) {
    upper::rpc::RpcServer server(env);
    server.registerMethod(1, [](std::span<const std::byte>) {
      return std::vector<std::byte>(256, std::byte{0x11});
    });
    server.acceptClients(clients);
    server.serve();
  });
  for (std::uint32_t c = 0; c < clients; ++c) {
    programs.push_back([&, c](suite::NodeEnv& env) {
      env.self.advance(stagger * c, sim::CpuUse::Idle);
      upper::rpc::RpcClient client(env, 0);
      std::vector<std::byte> args(16, std::byte{0x22});
      for (int i = 0; i < callsPerClient; ++i) {
        const sim::SimTime t0 = env.now();
        (void)client.call(1, args);
        latency.add(static_cast<std::int64_t>(env.now() - t0));
      }
      client.shutdown();
    });
  }
  cluster.run(std::move(programs));

  suite::ResultTable t(
      "RPC p99 over time, cLAN fat-tree k=16, 1023 clients "
      "(100 ms windows, SLO p99 <= 200 us)",
      {"t_ms", "calls", "p50_us", "p99_us", "p999_us", "burn"});
  for (const obs::SloMonitor::Window& w : slo.windows()) {
    t.addRow({static_cast<double>(w.t) / 1e6, static_cast<double>(w.count),
              w.p50 / 1e3, w.p99 / 1e3, w.p999 / 1e3, w.burnRate});
  }
  vibe::bench::emit(t);
  std::printf(
      "slo rpc_call: threshold p99 <= %llu us, target %.2f, crossings %llu, "
      "breached at exit: %s\n",
      static_cast<unsigned long long>(thresholdNs / 1000), slo.target(),
      static_cast<unsigned long long>(slo.crossings()),
      slo.breached() ? "yes" : "no");
  std::printf(
      "Each window diffs the cumulative call-latency histogram at a fixed\n"
      "virtual-time cadence. The windows are empty while the server is\n"
      "still accepting dialogs (no call gets an answer); the moment\n"
      "serve() starts, the queued incast drains and the windowed p99\n"
      "lands at the full 1023-deep queue round trip — the first burst\n"
      "window's p999 is the accept-wait itself. burn=100 is the monitor's\n"
      "way of saying the whole window blew the budget.\n");
}

int run(int, char**) {
  using namespace vibe::bench;
  printHeader("Server scalability with concurrent clients",
              "Extension of Fig. 6/Fig. 7: aggregate transactions/s of one "
              "CQ-multiplexed server as clients (and thus server VIs) grow");

  suite::ResultTable t("Aggregate transactions/s (16 B request, 256 B reply)",
                       {"clients", "mvia", "bvia", "clan"});
  const std::vector<std::uint32_t> clientCounts = {1u, 2u, 4u, 6u};
  const auto profiles = paperProfiles();
  const auto points = harness::runSweep(
      clientCounts.size() * profiles.size(),
      [&](harness::PointEnv& env) {
        const std::uint32_t clients =
            clientCounts[env.index / profiles.size()];
        const auto& np = profiles[env.index % profiles.size()];
        return aggregateTps(np.profile, clients, 60, env);
      },
      sweepOptions());
  for (std::size_t ci = 0; ci < clientCounts.size(); ++ci) {
    std::vector<double> row{static_cast<double>(clientCounts[ci])};
    for (std::size_t pi = 0; pi < profiles.size(); ++pi) {
      row.push_back(points[ci * profiles.size() + pi]);
    }
    t.addRow(row);
  }
  vibe::bench::emit(t, 0);
  std::printf(
      "cLAN scales nearly linearly until the server NIC saturates; the\n"
      "firmware model gains less per client because every added VI taxes\n"
      "each message's doorbell scan; the kernel-emulated model is gated by\n"
      "server-host CPU (every byte crosses it twice).\n");

  // Incast at fabric scale: one server, up to 1023 cLAN clients — a full
  // 1024-node cluster. The server reaps each reply's send completion
  // before taking the next request, and ReliableDelivery completes a send
  // at the remote NIC's receipt ack — so every transaction pays a full
  // fabric round trip. On the flat star that round trip is two host
  // links; on the k=16 fat-tree most clients sit cross-pod, six links and
  // three switch hops away, and the aggregate rate drops accordingly: the
  // Clos geometry taxes even a throughput benchmark once the server
  // synchronizes on delivery.
  suite::ResultTable big(
      "Aggregate transactions/s at scale, cLAN (16 B request, 256 B reply)",
      {"clients", "flat", "fattree_k16"});
  const std::vector<std::uint32_t> bigCounts = {255u, 511u, 1023u};
  struct BigPoint {
    double flat = 0;
    double fatTree = 0;
  };
  const auto bigPoints = harness::runSweep(
      bigCounts.size(),
      [&](harness::PointEnv& env) {
        const std::uint32_t clients = bigCounts[env.index];
        return BigPoint{
            aggregateTps(nic::clanProfile(), clients, 2, env, 0,
                         sim::usec(1200)),
            aggregateTps(nic::clanProfile(), clients, 2, env, 16,
                         sim::usec(1200))};
      },
      sweepOptions());
  for (std::size_t i = 0; i < bigCounts.size(); ++i) {
    big.addRow({static_cast<double>(bigCounts[i]), bigPoints[i].flat,
                bigPoints[i].fatTree});
  }
  vibe::bench::emit(big, 0);
  std::printf(
      "At 1023 clients the server holds 1023 open VIs and reaps them all\n"
      "through one CQ; the bench doubles as a stress test of connection\n"
      "setup (1023 dialogs) and of reply-side serialization on the one\n"
      "server downlink shared by every transaction.\n");
  sloTimeline();
  return 0;
}

}  // namespace

VIBE_BENCH_MAIN(ext_multiclient, run)
