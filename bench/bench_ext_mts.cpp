// TR §3.2.5 extension: maximum transfer size (B_mts). A fixed amount of
// data is moved in chunks of the negotiated MaxTransferSize: small MTS
// forces many messages (per-message overhead dominates), large MTS
// amortizes it. The per-message overhead ranking (BVIA > M-VIA > cLAN)
// determines how much each implementation suffers at small MTS.
#include <cstdio>

#include "bench_common.hpp"
#include "vibe/datatransfer.hpp"

int main() {
  using namespace vibe;
  using namespace vibe::bench;

  printHeader("Impact of maximum transfer size",
              "TR §3.2.5: small MTS multiplies per-message overhead; "
              "bandwidth approaches the base curve as MTS grows");

  constexpr std::uint64_t kTotalBytes = 512 * 1024;
  const std::uint32_t mtsValues[] = {512, 1024, 2048, 4096, 8192, 16384,
                                     32768, 65536};

  suite::ResultTable t("Effective bandwidth (MB/s) moving 512 KiB",
                       {"mts_bytes", "mvia", "bvia", "clan"});
  for (const std::uint32_t mts : mtsValues) {
    std::vector<double> row{static_cast<double>(mts)};
    for (const auto& np : paperProfiles()) {
      suite::TransferConfig cfg;
      cfg.maxTransferSize = mts;
      cfg.msgBytes = std::min<std::uint64_t>(mts, np.profile.maxTransferSize);
      cfg.burst = static_cast<int>(kTotalBytes / cfg.msgBytes);
      const auto r = suite::runBandwidth(clusterFor(np.profile), cfg);
      row.push_back(r.bandwidthMBps);
    }
    t.addRow(row);
  }
  vibe::bench::emit(t);
  return 0;
}
