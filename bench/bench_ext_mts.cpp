// TR §3.2.5 extension: maximum transfer size (B_mts). A fixed amount of
// data is moved in chunks of the negotiated MaxTransferSize: small MTS
// forces many messages (per-message overhead dominates), large MTS
// amortizes it. The per-message overhead ranking (BVIA > M-VIA > cLAN)
// determines how much each implementation suffers at small MTS.
#include <cstdio>

#include "bench_common.hpp"
#include "bench_registry.hpp"
#include "vibe/datatransfer.hpp"

namespace {

int run(int, char**) {
  using namespace vibe;
  using namespace vibe::bench;

  printHeader("Impact of maximum transfer size",
              "TR §3.2.5: small MTS multiplies per-message overhead; "
              "bandwidth approaches the base curve as MTS grows");

  constexpr std::uint64_t kTotalBytes = 512 * 1024;
  const std::vector<std::uint32_t> mtsValues = {512,  1024,  2048,  4096,
                                                8192, 16384, 32768, 65536};
  const auto profiles = paperProfiles();

  suite::ResultTable t("Effective bandwidth (MB/s) moving 512 KiB",
                       {"mts_bytes", "mvia", "bvia", "clan"});
  const auto points = harness::runSweep(
      mtsValues.size() * profiles.size(),
      [&](harness::PointEnv& env) {
        const std::uint32_t mts = mtsValues[env.index / profiles.size()];
        const auto& np = profiles[env.index % profiles.size()];
        suite::TransferConfig cfg;
        cfg.maxTransferSize = mts;
        cfg.msgBytes =
            std::min<std::uint64_t>(mts, np.profile.maxTransferSize);
        cfg.burst = static_cast<int>(kTotalBytes / cfg.msgBytes);
        return suite::runBandwidth(clusterFor(np.profile, 2, env), cfg)
            .bandwidthMBps;
      },
      sweepOptions());
  for (std::size_t mi = 0; mi < mtsValues.size(); ++mi) {
    std::vector<double> row{static_cast<double>(mtsValues[mi])};
    for (std::size_t pi = 0; pi < profiles.size(); ++pi) {
      row.push_back(points[mi * profiles.size() + pi]);
    }
    t.addRow(row);
  }
  vibe::bench::emit(t);
  return 0;
}

}  // namespace

VIBE_BENCH_MAIN(ext_mts, run)
