// Fig. 3: base latency and bandwidth with polling, for M-VIA / BVIA / cLAN.
// Base configuration: 100% buffer reuse, one data segment, no completion
// queue, one VI connection, no notify mechanism (paper §3.2.1).
#include <cstdio>

#include "bench_common.hpp"
#include "vibe/datatransfer.hpp"

int main(int argc, char** argv) {
  using namespace vibe;
  using namespace vibe::bench;
  parseStatsFlag(argc, argv);

  printHeader("Base latency & bandwidth, polling",
              "Fig. 3: cLAN lowest latency; M-VIA beats BVIA for short "
              "messages, BVIA wins for long (M-VIA's extra copies); cLAN "
              "best bandwidth mid-range, BVIA best for large messages");

  suite::ResultTable lat("Base one-way latency, polling (us)",
                         {"bytes", "mvia", "bvia", "clan"});
  suite::ResultTable bw("Base bandwidth, polling (MB/s)",
                        {"bytes", "mvia", "bvia", "clan"});

  for (const std::uint64_t size : suite::paperMessageSizes()) {
    std::vector<double> latRow{static_cast<double>(size)};
    std::vector<double> bwRow{static_cast<double>(size)};
    for (const auto& np : paperProfiles()) {
      suite::TransferConfig cfg;
      cfg.msgBytes = size;
      cfg.reap = suite::ReapMode::Poll;
      const auto ping = suite::runPingPong(clusterFor(np.profile), cfg);
      latRow.push_back(ping.latencyUsec);
      suite::TransferConfig bcfg = cfg;
      bcfg.burst = size >= 16384 ? 60 : 120;
      const auto stream = suite::runBandwidth(clusterFor(np.profile), bcfg);
      bwRow.push_back(stream.bandwidthMBps);
    }
    lat.addRow(latRow);
    bw.addRow(bwRow);
  }

  vibe::bench::emit(lat);
  vibe::bench::emit(bw);
  std::printf(
      "Paper anchors: 4B latency clan ~10us < mvia ~25us < bvia ~33us;\n"
      "M-VIA/BVIA latency crossover near 1-2 KB; peak bandwidth\n"
      "bvia > clan > mvia for 28 KB messages. CPU utilization is 100%%\n"
      "for every implementation when polling (not shown, as in the paper).\n");
  return 0;
}
