// Fig. 3: base latency and bandwidth with polling, for M-VIA / BVIA / cLAN.
// Base configuration: 100% buffer reuse, one data segment, no completion
// queue, one VI connection, no notify mechanism (paper §3.2.1).
#include <cstdio>

#include "bench_common.hpp"
#include "bench_registry.hpp"
#include "vibe/datatransfer.hpp"

namespace {

int run(int argc, char** argv) {
  using namespace vibe;
  using namespace vibe::bench;
  parseStatsFlag(argc, argv);

  printHeader("Base latency & bandwidth, polling",
              "Fig. 3: cLAN lowest latency; M-VIA beats BVIA for short "
              "messages, BVIA wins for long (M-VIA's extra copies); cLAN "
              "best bandwidth mid-range, BVIA best for large messages");

  suite::ResultTable lat("Base one-way latency, polling (us)",
                         {"bytes", "mvia", "bvia", "clan"});
  suite::ResultTable bw("Base bandwidth, polling (MB/s)",
                        {"bytes", "mvia", "bvia", "clan"});

  const auto sizes = suite::paperMessageSizes();
  const auto profiles = paperProfiles();
  struct Point {
    double lat = 0.0;
    double bw = 0.0;
  };
  const auto points = harness::runSweep(
      sizes.size() * profiles.size(),
      [&](harness::PointEnv& env) {
        const std::uint64_t size = sizes[env.index / profiles.size()];
        const auto& np = profiles[env.index % profiles.size()];
        suite::TransferConfig cfg;
        cfg.msgBytes = size;
        cfg.reap = suite::ReapMode::Poll;
        Point pt;
        pt.lat =
            suite::runPingPong(clusterFor(np.profile, 2, env), cfg).latencyUsec;
        suite::TransferConfig bcfg = cfg;
        bcfg.burst = size >= 16384 ? 60 : 120;
        pt.bw = suite::runBandwidth(clusterFor(np.profile, 2, env), bcfg)
                    .bandwidthMBps;
        return pt;
      },
      sweepOptions());

  for (std::size_t si = 0; si < sizes.size(); ++si) {
    std::vector<double> latRow{static_cast<double>(sizes[si])};
    std::vector<double> bwRow{static_cast<double>(sizes[si])};
    for (std::size_t pi = 0; pi < profiles.size(); ++pi) {
      const Point& pt = points[si * profiles.size() + pi];
      latRow.push_back(pt.lat);
      bwRow.push_back(pt.bw);
    }
    lat.addRow(latRow);
    bw.addRow(bwRow);
  }

  vibe::bench::emit(lat);
  vibe::bench::emit(bw);
  std::printf(
      "Paper anchors: 4B latency clan ~10us < mvia ~25us < bvia ~33us;\n"
      "M-VIA/BVIA latency crossover near 1-2 KB; peak bandwidth\n"
      "bvia > clan > mvia for 28 KB messages. CPU utilization is 100%%\n"
      "for every implementation when polling (not shown, as in the paper).\n");
  return 0;
}

}  // namespace

VIBE_BENCH_MAIN(fig3_base_polling, run)
