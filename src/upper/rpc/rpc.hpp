// Client/server RPC layer over VIPL — the programming model behind the
// paper's §3.3.1 transaction benchmark, built the way VIBe's results
// recommend: the server multiplexes every client VI through one completion
// queue (cheap on hardware/host implementations, a measured 2-5 us tax on
// firmware ones), buffers are registered once, and requests/replies ride
// preposted descriptor rings.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "serve/admission.hpp"
#include "session/session.hpp"
#include "vibe/cluster.hpp"
#include "vipl/provider.hpp"

namespace vibe::upper::rpc {

/// Reply status codes on the wire (RpcHeader::status).
constexpr std::uint32_t kStatusOk = 0;
constexpr std::uint32_t kStatusUnknownMethod = 1;

struct RpcConfig {
  std::uint32_t maxMessageBytes = 32 * 1024;  // header + payload limit
  std::uint32_t recvRingDepth = 8;            // preposted recvs per client
  /// Server completion-queue depth. Completions pile up while the server
  /// is still inside acceptClients() (every connected client's first call
  /// lands unreaped), so incasts beyond ~1k clients must size this past
  /// the client count or the first pollCq() reports an overflow.
  std::uint32_t serverCqEntries = 1024;
  std::uint64_t discriminator = 0x5250'4331;  // "RPC1"
  nic::Reliability reliability = nic::Reliability::ReliableDelivery;
  /// Recovery mode: each client connection rides a session::Session that
  /// reconnects automatically and replays/dedups requests and replies, so
  /// calls survive injected connection breaks exactly once. The server must
  /// use the acceptClients(clientNodes) overload, and each client must set
  /// a unique clientId (sessions reconnect on a per-client discriminator
  /// derived from it). When off, nothing below is read and the wire
  /// behaviour is unchanged.
  bool recovery = false;
  session::ReconnectPolicy reconnect{};
  std::uint32_t clientId = 0;  // recovery only: index in [0, clients)
  obs::MetricsRegistry* metrics = nullptr;  // optional, recovery only
  obs::SpanProfiler* spans = nullptr;       // optional, recovery only
};

/// Knobs for RpcServer::serveOpenLoop.
struct ServeOptions {
  /// The loop returns once it has made no progress (no request enqueued,
  /// served, or shed) for this much virtual time. Guards against clients
  /// that went Down without sending their shutdown message.
  sim::Duration idleTimeout = sim::kSecond;
  /// When > 0, a Down client session gets a Session::reopen() attempt at
  /// most this often, so deliberately departed clients can rejoin. 0
  /// leaves Down clients down (serveSessions behaviour).
  sim::Duration reopenInterval = 0;
};

/// One completed async call, surfaced by RpcClient::pollReply/waitReply.
struct AsyncReply {
  std::uint32_t token = 0;
  std::uint32_t status = 0;  // kStatusOk / kStatusUnknownMethod
  std::vector<std::byte> payload;
};

/// Server: accepts clients, dispatches registered handlers.
class RpcServer {
 public:
  using Handler =
      std::function<std::vector<std::byte>(std::span<const std::byte>)>;

  RpcServer(suite::NodeEnv& env, const RpcConfig& config = {});
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Registers the handler for a method id (before accepting clients).
  void registerMethod(std::uint32_t method, Handler handler);

  /// Blocks until `n` clients have connected. Non-recovery mode only.
  void acceptClients(std::uint32_t n);

  /// Recovery mode: accepts one recoverable session per listed client
  /// node. Client i of clientNodes must construct its RpcClient with
  /// clientId == i.
  void acceptClients(std::span<const fabric::NodeId> clientNodes);

  /// Serves requests until every connected client has sent a shutdown
  /// message (method 0 is reserved for shutdown).
  void serve();

  /// Open-loop serving with admission control (recovery mode only): every
  /// inbound request goes through `queue` (which may reject, evict, or
  /// shed it — those requests are dropped without a reply, so the client
  /// observes a deadline miss, exactly like a real overloaded server);
  /// admitted requests run their registered handler and get a reply.
  /// Returns when every client has sent its shutdown message, or when no
  /// progress was made for `opts.idleTimeout`. Requests still queued at
  /// that point are abandoned (visible as admitted - served in the queue
  /// stats). Arguments are expected to carry the serve::stampArgs prefix
  /// (generation time + deadline); the stamp is stripped before the
  /// handler runs. Unstamped requests shorter than the stamp are passed
  /// through with no deadline.
  void serveOpenLoop(serve::AdmissionQueue& queue,
                     const ServeOptions& opts = {});

  std::uint64_t requestsServed() const { return served_; }

 private:
  struct Client {
    vipl::Vi* vi = nullptr;
    mem::VirtAddr ringVa = 0;     // recv ring buffers
    mem::VirtAddr replyVa = 0;    // reply staging
    mem::MemHandle arenaHandle = 0;
    std::vector<vipl::VipDescriptor> ring;
    bool active = true;
    std::unique_ptr<session::Session> session;  // recovery mode only
  };

  void handleRequest(Client& c, vipl::VipDescriptor* done);
  void handleSessionRequest(Client& c, std::span<const std::byte> request);
  void serveSessions();
  void enqueueOpenLoop(Client& c, std::uint32_t clientIndex,
                       std::span<const std::byte> request,
                       serve::AdmissionQueue& queue);
  void replyTo(std::uint32_t clientIndex, const serve::Request& req);

  suite::NodeEnv& env_;
  vipl::Provider* nic_;
  RpcConfig config_;
  mem::PtagId ptag_ = 0;
  mem::MemHandle arenaHandle_ = 0;
  vipl::Cq* cq_ = nullptr;
  std::vector<std::unique_ptr<Client>> clients_;
  std::unordered_map<vipl::Vi*, Client*> byVi_;
  std::unordered_map<std::uint32_t, Handler> methods_;
  std::uint64_t served_ = 0;
};

/// Client: one connection, synchronous calls.
class RpcClient {
 public:
  RpcClient(suite::NodeEnv& env, fabric::NodeId serverNode,
            const RpcConfig& config = {});
  ~RpcClient();

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Synchronous call; throws on transport errors.
  std::vector<std::byte> call(std::uint32_t method,
                              std::span<const std::byte> args);

  /// Open-loop send (recovery mode only): fires the request and returns
  /// its token (> 0) without waiting for the reply — the session layer
  /// buffers and replays it across reconnects. Returns 0 when the
  /// session's circuit breaker has tripped (the request is not sent).
  std::uint32_t callAsync(std::uint32_t method,
                          std::span<const std::byte> args);

  /// Non-blocking reply pickup for callAsync (recovery mode only).
  /// Replies can complete out of token order when the server sheds, so
  /// match on AsyncReply::token.
  bool pollReply(AsyncReply& out);

  /// Blocking variant: waits up to `timeout` for one reply.
  bool waitReply(AsyncReply& out, sim::Duration timeout);

  /// True when the underlying session's circuit breaker has tripped
  /// (recovery mode only; false otherwise).
  bool down() const;

  /// Revives a Down session via Session::reopen (recovery mode only).
  bool reopen();

  /// Tells the server this client is done (reserved method 0).
  void shutdown();

  double lastRoundTripUsec() const { return lastRttUsec_; }

  /// Recovery-mode session accounting (reconnects, replay, reopens);
  /// null when recovery is off.
  const session::SessionStats* sessionStats() const {
    return session_ ? &session_->stats() : nullptr;
  }

 private:
  suite::NodeEnv& env_;
  vipl::Provider* nic_;
  RpcConfig config_;
  mem::PtagId ptag_ = 0;
  mem::MemHandle arenaHandle_ = 0;
  vipl::Vi* vi_ = nullptr;
  mem::VirtAddr sendVa_ = 0;
  mem::VirtAddr recvVa_ = 0;
  std::uint32_t nextTokenValue_ = 1;
  double lastRttUsec_ = 0;
  std::unique_ptr<session::Session> session_;  // recovery mode only
};

}  // namespace vibe::upper::rpc
