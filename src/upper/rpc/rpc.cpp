#include "upper/rpc/rpc.hpp"

#include <cstring>
#include <stdexcept>

#include "serve/loadgen.hpp"
#include "vipl/vipl.hpp"

namespace vibe::upper::rpc {

namespace {

using vipl::PendingConn;
using vipl::VipDescriptor;
using vipl::VipResult;

constexpr sim::Duration kConnTimeout = sim::kSecond * 5;

// Recovery-mode sessions: sid base keeps rpc session ids out of the range
// a msg::Communicator in the same process would use, and each client gets
// its own discriminator so concurrent reconnects cannot cross-claim.
constexpr std::uint32_t kRpcSidBase = 0x1000;

session::SessionConfig sessionConfigFor(const RpcConfig& cfg,
                                        std::uint32_t clientId,
                                        fabric::NodeId remoteNode,
                                        bool initiator) {
  session::SessionConfig sc;
  sc.sid = kRpcSidBase + clientId;
  sc.remoteNode = remoteNode;
  sc.discriminator = cfg.discriminator + 1 + clientId;
  sc.initiator = initiator;
  sc.maxMessageBytes = cfg.maxMessageBytes;
  sc.policy = cfg.reconnect;
  sc.metrics = cfg.metrics;
  sc.spans = cfg.spans;
  return sc;
}

// Wire header: [method u32][token u32][status u32][size u64] then payload.
constexpr std::uint32_t kHeaderBytes = 20;
constexpr std::uint32_t kShutdownMethod = 0;

struct RpcHeader {
  std::uint32_t method = 0;
  std::uint32_t token = 0;
  std::uint32_t status = 0;  // 0 ok, 1 unknown method
  std::uint64_t size = 0;
};

void packHeader(const RpcHeader& h, std::byte* out) {
  std::memcpy(out + 0, &h.method, 4);
  std::memcpy(out + 4, &h.token, 4);
  std::memcpy(out + 8, &h.status, 4);
  std::memcpy(out + 12, &h.size, 8);
}

RpcHeader unpackHeader(const std::byte* in) {
  RpcHeader h;
  std::memcpy(&h.method, in + 0, 4);
  std::memcpy(&h.token, in + 4, 4);
  std::memcpy(&h.status, in + 8, 4);
  std::memcpy(&h.size, in + 12, 8);
  return h;
}

void require(VipResult r, const char* what) {
  if (r != VipResult::VIP_SUCCESS) {
    throw std::runtime_error(std::string("rpc: ") + what + " -> " +
                             vipl::toString(r));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

RpcServer::RpcServer(suite::NodeEnv& env, const RpcConfig& config)
    : env_(env), nic_(&env.nic), config_(config) {
  ptag_ = nic_->createPtag();
  require(nic_->createCq(config_.serverCqEntries, cq_), "create server CQ");
}

RpcServer::~RpcServer() = default;

void RpcServer::registerMethod(std::uint32_t method, Handler handler) {
  if (method == kShutdownMethod) {
    throw std::invalid_argument("rpc: method 0 is reserved for shutdown");
  }
  methods_[method] = std::move(handler);
}

void RpcServer::acceptClients(std::span<const fabric::NodeId> clientNodes) {
  if (!config_.recovery) {
    throw std::logic_error("rpc: acceptClients(clientNodes) requires recovery");
  }
  for (std::size_t i = 0; i < clientNodes.size(); ++i) {
    auto client = std::make_unique<Client>();
    client->session = std::make_unique<session::Session>(
        *nic_, sessionConfigFor(config_, static_cast<std::uint32_t>(i),
                                clientNodes[i], /*initiator=*/false));
    if (!client->session->establish()) {
      throw std::runtime_error("rpc: server session failed to establish");
    }
    clients_.push_back(std::move(client));
  }
}

void RpcServer::acceptClients(std::uint32_t n) {
  if (config_.recovery) {
    throw std::logic_error(
        "rpc: recovery mode needs acceptClients(clientNodes)");
  }
  vipl::VipViAttributes va;
  va.ptag = ptag_;
  va.reliabilityLevel = config_.reliability;

  for (std::uint32_t i = 0; i < n; ++i) {
    auto client = std::make_unique<Client>();
    // All receive-queue completions of every client funnel into cq_.
    require(nic_->createVi(va, nullptr, cq_, client->vi), "server VI");

    const std::uint64_t ringBytes =
        static_cast<std::uint64_t>(config_.recvRingDepth) *
        config_.maxMessageBytes;
    const std::uint64_t arenaBytes = ringBytes + config_.maxMessageBytes;
    const mem::VirtAddr arena =
        nic_->memory().alloc(arenaBytes, mem::kPageSize);
    vipl::VipMemAttributes ma;
    ma.ptag = ptag_;
    mem::MemHandle handle = 0;
    require(nic_->registerMem(arena, arenaBytes, ma, handle),
            "register server arena");
    if (arenaHandle_ == 0) arenaHandle_ = handle;
    client->ringVa = arena;
    client->replyVa = arena + ringBytes;
    client->ring.resize(config_.recvRingDepth);
    for (std::uint32_t d = 0; d < config_.recvRingDepth; ++d) {
      client->ring[d] = VipDescriptor::recv(
          arena + static_cast<std::uint64_t>(d) * config_.maxMessageBytes,
          handle, config_.maxMessageBytes);
      require(nic_->postRecv(client->vi, &client->ring[d]),
              "prepost server ring");
    }
    // Stash the handle in the client's reply descriptor construction.
    client->arenaHandle = handle;

    PendingConn conn;
    require(nic_->connectWait({env_.nodeId, config_.discriminator},
                              kConnTimeout, conn),
            "server connect wait");
    require(nic_->connectAccept(conn, client->vi), "server accept");
    byVi_[client->vi] = client.get();
    clients_.push_back(std::move(client));
  }
}

void RpcServer::handleRequest(Client& c, VipDescriptor* done) {
  // Which ring slot completed?
  const std::size_t slot = static_cast<std::size_t>(done - c.ring.data());
  const mem::VirtAddr slotVa =
      c.ringVa + static_cast<std::uint64_t>(slot) * config_.maxMessageBytes;
  std::vector<std::byte> request(done->cs.length);
  nic_->memory().read(slotVa, request);

  const RpcHeader h = unpackHeader(request.data());
  if (h.method == kShutdownMethod) {
    c.active = false;
    // Repost so stray traffic cannot strand the connection.
    *done = VipDescriptor::recv(slotVa, c.arenaHandle,
                                config_.maxMessageBytes);
    require(nic_->postRecv(c.vi, done), "repost ring");
    return;
  }

  RpcHeader reply;
  reply.method = h.method;
  reply.token = h.token;
  std::vector<std::byte> replyPayload;
  auto it = methods_.find(h.method);
  if (it == methods_.end()) {
    reply.status = 1;
  } else {
    replyPayload = it->second(
        std::span<const std::byte>(request.data() + kHeaderBytes, h.size));
  }
  reply.size = replyPayload.size();
  if (kHeaderBytes + replyPayload.size() > config_.maxMessageBytes) {
    throw std::length_error("rpc: reply exceeds maxMessageBytes");
  }

  std::vector<std::byte> frame(kHeaderBytes + replyPayload.size());
  packHeader(reply, frame.data());
  if (!replyPayload.empty()) {
    std::memcpy(frame.data() + kHeaderBytes, replyPayload.data(),
                replyPayload.size());
  }
  nic_->memory().write(c.replyVa, frame);

  // Repost the consumed ring slot before replying, so a pipelined client
  // can never catch the ring empty.
  *done = VipDescriptor::recv(slotVa, c.arenaHandle, config_.maxMessageBytes);
  require(nic_->postRecv(c.vi, done), "repost ring");

  VipDescriptor replyDesc = VipDescriptor::send(
      c.replyVa, c.arenaHandle, static_cast<std::uint32_t>(frame.size()));
  require(nic_->postSend(c.vi, &replyDesc), "post reply");
  VipDescriptor* reaped = nullptr;
  require(nic_->pollSend(c.vi, reaped), "reply completion");
  ++served_;
}

void RpcServer::handleSessionRequest(Client& c,
                                     std::span<const std::byte> request) {
  const RpcHeader h = unpackHeader(request.data());
  if (h.method == kShutdownMethod) {
    c.active = false;
    return;
  }
  RpcHeader reply;
  reply.method = h.method;
  reply.token = h.token;
  std::vector<std::byte> replyPayload;
  auto it = methods_.find(h.method);
  if (it == methods_.end()) {
    reply.status = 1;
  } else {
    replyPayload = it->second(request.subspan(kHeaderBytes, h.size));
  }
  reply.size = replyPayload.size();
  if (kHeaderBytes + replyPayload.size() > config_.maxMessageBytes) {
    throw std::length_error("rpc: reply exceeds maxMessageBytes");
  }
  std::vector<std::byte> frame(kHeaderBytes + replyPayload.size());
  packHeader(reply, frame.data());
  if (!replyPayload.empty()) {
    std::memcpy(frame.data() + kHeaderBytes, replyPayload.data(),
                replyPayload.size());
  }
  // The session retains the reply for replay until the client's endpoint
  // confirms placement, so a connection break here cannot lose it.
  if (!c.session->send(frame)) c.active = false;
  ++served_;
}

void RpcServer::serveSessions() {
  auto anyActive = [this] {
    for (const auto& c : clients_) {
      if (c->active) return true;
    }
    return false;
  };
  std::vector<std::byte> msg;
  while (anyActive()) {
    bool made = false;
    for (auto& c : clients_) {
      if (!c->active) continue;
      if (c->session->down()) {
        c->active = false;  // circuit breaker tripped: give up on client
        continue;
      }
      while (c->session->poll(msg)) {
        handleSessionRequest(*c, msg);
        made = true;
      }
    }
    if (made) continue;
    // Nothing pending anywhere: block briefly on one live session. Its
    // recv drives that session's recovery; the other inboxes fill from
    // interrupts regardless and get drained on the next sweep.
    for (auto& c : clients_) {
      if (!c->active || c->session->down()) continue;
      if (c->session->recv(msg, sim::msec(1))) {
        handleSessionRequest(*c, msg);
      }
      break;
    }
  }
}

void RpcServer::enqueueOpenLoop(Client& c, std::uint32_t clientIndex,
                                std::span<const std::byte> request,
                                serve::AdmissionQueue& queue) {
  const RpcHeader h = unpackHeader(request.data());
  if (h.method == kShutdownMethod) {
    c.active = false;
    return;
  }
  serve::Request r;
  r.client = clientIndex;
  r.token = h.token;
  r.method = h.method;
  auto args = request.subspan(kHeaderBytes, h.size);
  serve::Stamp stamp;
  if (serve::readStamp(args, stamp)) {
    r.genTime = stamp.genTime;
    r.deadline = stamp.deadline;
    args = args.subspan(serve::kStampBytes);
  }
  r.payload.assign(args.begin(), args.end());
  // Rejected/evicted requests are dropped without a reply — the client
  // observes a deadline miss, as against a real overloaded server. The
  // queue's serve.* counters carry the accounting.
  std::vector<serve::Request> evicted;
  (void)queue.offer(std::move(r), env_.now(), evicted);
}

void RpcServer::replyTo(std::uint32_t clientIndex, const serve::Request& req) {
  Client& c = *clients_.at(clientIndex);
  RpcHeader reply;
  reply.method = req.method;
  reply.token = req.token;
  std::vector<std::byte> payload;
  auto it = methods_.find(req.method);
  if (it == methods_.end()) {
    reply.status = kStatusUnknownMethod;
  } else {
    payload = it->second(req.payload);
  }
  reply.size = payload.size();
  if (kHeaderBytes + payload.size() > config_.maxMessageBytes) {
    throw std::length_error("rpc: reply exceeds maxMessageBytes");
  }
  std::vector<std::byte> frame(kHeaderBytes + payload.size());
  packHeader(reply, frame.data());
  if (!payload.empty()) {
    std::memcpy(frame.data() + kHeaderBytes, payload.data(), payload.size());
  }
  if (c.active && !c.session->down()) (void)c.session->send(frame);
  ++served_;
}

void RpcServer::serveOpenLoop(serve::AdmissionQueue& queue,
                              const ServeOptions& opts) {
  if (!config_.recovery) {
    throw std::logic_error("rpc: serveOpenLoop requires recovery mode");
  }
  auto anyActive = [this] {
    for (const auto& c : clients_) {
      if (c->active) return true;
    }
    return false;
  };
  std::vector<sim::SimTime> lastReopen(clients_.size(), 0);
  sim::SimTime lastProgress = env_.now();
  std::vector<std::byte> msg;
  serve::Request req;
  while (anyActive()) {
    bool made = false;
    // Sweep every inbox into the admission queue before dispatching, so
    // backlog decisions see the freshest depth.
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      Client& c = *clients_[i];
      if (!c.active) continue;
      if (c.session->down()) {
        if (opts.reopenInterval > 0 &&
            env_.now() - lastReopen[i] >= opts.reopenInterval) {
          lastReopen[i] = env_.now();
          if (c.session->reopen()) made = true;
        }
        continue;
      }
      while (c.session->poll(msg)) {
        enqueueOpenLoop(c, static_cast<std::uint32_t>(i), msg, queue);
        made = true;
      }
    }
    // One dequeue per sweep: serving advances virtual time (the handler's
    // service cost), during which interrupts refill the inboxes above.
    switch (queue.next(env_.now(), req)) {
      case serve::Dequeue::Serve:
        replyTo(req.client, req);
        made = true;
        break;
      case serve::Dequeue::ShedDeadline:
      case serve::Dequeue::ShedCodel:
        made = true;  // dropped without a reply
        break;
      case serve::Dequeue::Empty:
        break;
    }
    if (made) {
      lastProgress = env_.now();
      continue;
    }
    // Nothing pending anywhere: block briefly on one live session (its
    // recv drives that session's recovery), or idle-advance when every
    // remaining client is down.
    bool blocked = false;
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      Client& c = *clients_[i];
      if (!c.active || c.session->down()) continue;
      if (c.session->recv(msg, sim::usec(100))) {
        enqueueOpenLoop(c, static_cast<std::uint32_t>(i), msg, queue);
        lastProgress = env_.now();
      }
      blocked = true;
      break;
    }
    if (!blocked) env_.self.advance(sim::usec(100), sim::CpuUse::Idle);
    if (env_.now() - lastProgress >= opts.idleTimeout) return;
  }
}

void RpcServer::serve() {
  if (config_.recovery) {
    serveSessions();
    return;
  }
  auto anyActive = [this] {
    for (const auto& c : clients_) {
      if (c->active) return true;
    }
    return false;
  };
  while (anyActive()) {
    vipl::Vi* vi = nullptr;
    bool isRecv = false;
    require(nic_->pollCq(cq_, vi, isRecv), "server CQ");
    VipDescriptor* done = nullptr;
    require(nic_->recvDone(vi, done), "server recv");
    Client* c = byVi_.at(vi);
    handleRequest(*c, done);
  }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

RpcClient::RpcClient(suite::NodeEnv& env, fabric::NodeId serverNode,
                     const RpcConfig& config)
    : env_(env), nic_(&env.nic), config_(config) {
  if (config_.recovery) {
    session_ = std::make_unique<session::Session>(
        *nic_, sessionConfigFor(config_, config_.clientId, serverNode,
                                /*initiator=*/true));
    if (!session_->establish()) {
      throw std::runtime_error("rpc: client session failed to establish");
    }
    return;
  }
  ptag_ = nic_->createPtag();
  const std::uint64_t arenaBytes = 2ull * config_.maxMessageBytes;
  const mem::VirtAddr arena = nic_->memory().alloc(arenaBytes, mem::kPageSize);
  vipl::VipMemAttributes ma;
  ma.ptag = ptag_;
  require(nic_->registerMem(arena, arenaBytes, ma, arenaHandle_),
          "register client arena");
  sendVa_ = arena;
  recvVa_ = arena + config_.maxMessageBytes;

  vipl::VipViAttributes va;
  va.ptag = ptag_;
  va.reliabilityLevel = config_.reliability;
  require(nic_->createVi(va, nullptr, nullptr, vi_), "client VI");
  require(nic_->connectRequest(vi_, {serverNode, config_.discriminator},
                               kConnTimeout),
          "client connect");
}

RpcClient::~RpcClient() = default;

std::vector<std::byte> RpcClient::call(std::uint32_t method,
                                       std::span<const std::byte> args) {
  if (kHeaderBytes + args.size() > config_.maxMessageBytes) {
    throw std::length_error("rpc: request exceeds maxMessageBytes");
  }
  const sim::SimTime t0 = env_.now();

  RpcHeader h;
  h.method = method;
  h.token = nextTokenValue_++;
  h.size = args.size();
  std::vector<std::byte> frame(kHeaderBytes + args.size());
  packHeader(h, frame.data());
  if (!args.empty()) {
    std::memcpy(frame.data() + kHeaderBytes, args.data(), args.size());
  }

  if (config_.recovery) {
    // The session replays the request across reconnects and the server's
    // session dedups it, so one call is served exactly once even if the
    // connection flaps mid-dialog.
    if (!session_->send(frame)) {
      throw std::runtime_error("rpc: client session is down");
    }
    std::vector<std::byte> reply;
    while (!session_->recv(reply, sim::msec(100))) {
      if (session_->down()) {
        throw std::runtime_error("rpc: client session is down");
      }
    }
    const RpcHeader rh = unpackHeader(reply.data());
    if (rh.token != h.token) {
      throw std::logic_error("rpc: reply token mismatch");
    }
    if (rh.status != 0) {
      throw std::runtime_error("rpc: server reports unknown method");
    }
    lastRttUsec_ = sim::toUsec(env_.now() - t0);
    return {reply.begin() + kHeaderBytes, reply.end()};
  }

  VipDescriptor recvDesc =
      VipDescriptor::recv(recvVa_, arenaHandle_, config_.maxMessageBytes);
  require(nic_->postRecv(vi_, &recvDesc), "client post recv");
  nic_->memory().write(sendVa_, frame);
  VipDescriptor sendDesc = VipDescriptor::send(
      sendVa_, arenaHandle_, static_cast<std::uint32_t>(frame.size()));
  require(nic_->postSend(vi_, &sendDesc), "client post send");

  VipDescriptor* done = nullptr;
  require(nic_->pollRecv(vi_, done), "client reply");
  require(nic_->pollSend(vi_, done), "client send completion");

  std::vector<std::byte> reply(recvDesc.cs.length);
  nic_->memory().read(recvVa_, reply);
  const RpcHeader rh = unpackHeader(reply.data());
  if (rh.token != h.token) {
    throw std::logic_error("rpc: reply token mismatch");
  }
  if (rh.status != 0) {
    throw std::runtime_error("rpc: server reports unknown method");
  }
  lastRttUsec_ = sim::toUsec(env_.now() - t0);
  return {reply.begin() + kHeaderBytes, reply.end()};
}

std::uint32_t RpcClient::callAsync(std::uint32_t method,
                                   std::span<const std::byte> args) {
  if (!config_.recovery) {
    throw std::logic_error("rpc: callAsync requires recovery mode");
  }
  if (kHeaderBytes + args.size() > config_.maxMessageBytes) {
    throw std::length_error("rpc: request exceeds maxMessageBytes");
  }
  RpcHeader h;
  h.method = method;
  h.token = nextTokenValue_++;
  h.size = args.size();
  std::vector<std::byte> frame(kHeaderBytes + args.size());
  packHeader(h, frame.data());
  if (!args.empty()) {
    std::memcpy(frame.data() + kHeaderBytes, args.data(), args.size());
  }
  if (!session_->send(frame)) return 0;
  return h.token;
}

bool RpcClient::pollReply(AsyncReply& out) {
  if (!config_.recovery) {
    throw std::logic_error("rpc: pollReply requires recovery mode");
  }
  std::vector<std::byte> reply;
  if (!session_->poll(reply)) return false;
  const RpcHeader rh = unpackHeader(reply.data());
  out.token = rh.token;
  out.status = rh.status;
  out.payload.assign(reply.begin() + kHeaderBytes, reply.end());
  return true;
}

bool RpcClient::waitReply(AsyncReply& out, sim::Duration timeout) {
  if (!config_.recovery) {
    throw std::logic_error("rpc: waitReply requires recovery mode");
  }
  std::vector<std::byte> reply;
  if (!session_->recv(reply, timeout)) return false;
  const RpcHeader rh = unpackHeader(reply.data());
  out.token = rh.token;
  out.status = rh.status;
  out.payload.assign(reply.begin() + kHeaderBytes, reply.end());
  return true;
}

bool RpcClient::down() const {
  return session_ != nullptr && session_->down();
}

bool RpcClient::reopen() {
  if (!config_.recovery) {
    throw std::logic_error("rpc: reopen requires recovery mode");
  }
  return session_->reopen();
}

void RpcClient::shutdown() {
  RpcHeader h;
  h.method = kShutdownMethod;
  std::vector<std::byte> frame(kHeaderBytes);
  packHeader(h, frame.data());
  if (config_.recovery) {
    if (!session_->send(frame) || !session_->flush(sim::kSecond)) {
      throw std::runtime_error("rpc: client session is down");
    }
    return;
  }
  nic_->memory().write(sendVa_, frame);
  VipDescriptor d = VipDescriptor::send(sendVa_, arenaHandle_, kHeaderBytes);
  require(nic_->postSend(vi_, &d), "client shutdown send");
  VipDescriptor* done = nullptr;
  require(nic_->pollSend(vi_, done), "client shutdown completion");
}

}  // namespace vibe::upper::rpc
