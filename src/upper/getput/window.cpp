#include "upper/getput/window.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "vipl/vipl.hpp"

namespace vibe::upper::getput {

namespace {

using vipl::VipDescriptor;
using vipl::VipResult;

constexpr int kPutTag = msg::Communicator::kServiceTagBase + 1;
constexpr int kGetReqTag = msg::Communicator::kServiceTagBase + 2;
constexpr int kGetRespTag = msg::Communicator::kServiceTagBase + 3;
constexpr int kHandleTag = msg::Communicator::kServiceTagBase + 4;

void require(VipResult r, const char* what) {
  if (r != VipResult::VIP_SUCCESS) {
    throw std::runtime_error(std::string("getput::Window: ") + what + " -> " +
                             vipl::toString(r));
  }
}

template <typename T>
void append(std::vector<std::byte>& out, const T& value) {
  const auto* p = reinterpret_cast<const std::byte*>(&value);
  out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
T consume(std::span<const std::byte>& in) {
  T value;
  std::memcpy(&value, in.data(), sizeof(T));
  in = in.subspan(sizeof(T));
  return value;
}

}  // namespace

std::unique_ptr<Window> Window::create(msg::Communicator& comm,
                                       const WindowConfig& config) {
  auto w = std::unique_ptr<Window>(new Window(comm, config));
  w->exchangeHandles();
  return w;
}

Window::Window(msg::Communicator& comm, const WindowConfig& config)
    : comm_(comm), config_(config), nic_(&comm.provider()) {
  vipl::VipMemAttributes ma;
  ma.ptag = comm_.ptag();
  ma.enableRdmaWrite = true;
  ma.enableRdmaRead = true;
  localBase_ = nic_->memory().alloc(config_.windowBytes, mem::kPageSize);
  require(nic_->registerMem(localBase_, config_.windowBytes, ma,
                            localHandle_),
          "register window");
  stagingVa_ = nic_->memory().alloc(kStagingBytes, mem::kPageSize);
  mem::MemHandle stagingHandle = 0;
  require(nic_->registerMem(stagingVa_, kStagingBytes, ma, stagingHandle),
          "register staging");
  stagingHandle_ = stagingHandle;
  for (const int tag : {kPutTag, kGetReqTag, kGetRespTag, kHandleTag}) {
    comm_.addServiceHandler(
        tag, [this](std::uint32_t src, int t, std::vector<std::byte> payload) {
          onService(src, t, std::move(payload));
        });
  }
  remoteBase_.assign(comm_.size(), 0);
  remoteHandle_.assign(comm_.size(), 0);
}

Window::~Window() = default;

void Window::exchangeHandles() {
  // Everyone sends (base, handle) to everyone; FIFO channels make this a
  // safe all-to-all without extra synchronization.
  std::vector<std::byte> mine;
  append(mine, localBase_);
  append(mine, localHandle_);
  for (std::uint32_t p = 0; p < comm_.size(); ++p) {
    if (p == comm_.rank()) continue;
    comm_.send(p, kHandleTag, mine);
  }
  remoteBase_[comm_.rank()] = localBase_;
  remoteHandle_[comm_.rank()] = localHandle_;
  std::uint32_t received = 0;
  while (received < comm_.size() - 1) {
    bool progressed = false;
    for (std::uint32_t p = 0; p < comm_.size(); ++p) {
      if (p == comm_.rank() || remoteBase_[p] != 0) continue;
      comm_.progressBlocking(p);
      progressed = true;
      break;
    }
    if (!progressed) break;
    received = 0;
    for (std::uint32_t p = 0; p < comm_.size(); ++p) {
      if (p != comm_.rank() && remoteBase_[p] != 0) ++received;
    }
  }
  comm_.barrier();
}

void Window::onService(std::uint32_t src, int tag,
                       std::vector<std::byte> payload) {
  std::span<const std::byte> in(payload);
  switch (tag) {
    case kHandleTag: {
      remoteBase_[src] = consume<mem::VirtAddr>(in);
      remoteHandle_[src] = consume<mem::MemHandle>(in);
      return;
    }
    case kPutTag: {
      const auto offset = consume<std::uint64_t>(in);
      if (offset + in.size() > config_.windowBytes) {
        throw std::out_of_range("Window: put outside window");
      }
      nic_->memory().write(localBase_ + offset, in);
      return;
    }
    case kGetReqTag: {
      const auto offset = consume<std::uint64_t>(in);
      const auto len = consume<std::uint64_t>(in);
      const auto token = consume<std::uint32_t>(in);
      if (offset + len > config_.windowBytes) {
        throw std::out_of_range("Window: get outside window");
      }
      std::vector<std::byte> reply;
      append(reply, token);
      std::vector<std::byte> data(len);
      nic_->memory().read(localBase_ + offset, data);
      reply.insert(reply.end(), data.begin(), data.end());
      comm_.send(src, kGetRespTag, reply);
      return;
    }
    case kGetRespTag: {
      const auto token = consume<std::uint32_t>(in);
      getReplies_[token].assign(in.begin(), in.end());
      return;
    }
    default:
      throw std::logic_error("Window: unknown service tag");
  }
}

void Window::put(std::uint32_t target, std::uint64_t offset,
                 std::span<const std::byte> data) {
  if (offset + data.size() > config_.windowBytes) {
    throw std::out_of_range("Window: put outside window");
  }
  if (target == comm_.rank()) {
    writeLocal(offset, data);
    return;
  }
  // Recovery-mode communicators expose no raw peer VI (peerVi() is null):
  // a raw RDMA write would bypass the session's replay framing, so the
  // one-sided op rides the exactly-once service-message path instead.
  vipl::Vi* vi =
      nic_->profile().supportsRdmaWrite ? comm_.peerVi(target) : nullptr;
  if (vi == nullptr) {
    // Active-message fallback (BVIA model: no RDMA): the target applies
    // the write in its progress engine.
    std::vector<std::byte> payload;
    append(payload, offset);
    payload.insert(payload.end(), data.begin(), data.end());
    comm_.send(target, kPutTag, payload);
    ++emulatedPuts_;
    return;
  }
  // RDMA write path: truly one-sided. Chunk at the staging size.
  std::uint64_t done = 0;
  while (done < data.size()) {
    const std::uint64_t chunk =
        std::min<std::uint64_t>(kStagingBytes, data.size() - done);
    nic_->memory().write(stagingVa_, data.subspan(done, chunk));
    VipDescriptor d = VipDescriptor::rdmaWrite(
        stagingVa_, stagingHandle_, static_cast<std::uint32_t>(chunk),
        remoteBase_[target] + offset + done, remoteHandle_[target]);
    require(nic_->postSend(vi, &d), "post RDMA put");
    VipDescriptor* reaped = nullptr;
    require(nic_->pollSend(vi, reaped), "RDMA put completion");
    done += chunk;
  }
  ++rdmaPuts_;
}

std::vector<std::byte> Window::get(std::uint32_t target, std::uint64_t offset,
                                   std::uint64_t len) {
  if (offset + len > config_.windowBytes) {
    throw std::out_of_range("Window: get outside window");
  }
  if (target == comm_.rank()) return readLocal(offset, len);

  // As in put(): null peerVi (recovery-mode communicator) forces the
  // request/reply fallback.
  vipl::Vi* vi =
      nic_->profile().supportsRdmaRead ? comm_.peerVi(target) : nullptr;
  if (vi != nullptr) {
    std::vector<std::byte> out(len);
    std::uint64_t done = 0;
    while (done < len) {
      const std::uint64_t chunk =
          std::min<std::uint64_t>(kStagingBytes, len - done);
      VipDescriptor d = VipDescriptor::rdmaRead(
          stagingVa_, stagingHandle_, static_cast<std::uint32_t>(chunk),
          remoteBase_[target] + offset + done, remoteHandle_[target]);
      require(nic_->postSend(vi, &d), "post RDMA get");
      VipDescriptor* reaped = nullptr;
      require(nic_->pollSend(vi, reaped), "RDMA get completion");
      nic_->memory().read(stagingVa_,
                          std::span<std::byte>(out.data() + done, chunk));
      done += chunk;
    }
    ++rdmaGets_;
    return out;
  }

  // Request/reply fallback served by the target's progress engine.
  const std::uint32_t token = nextToken_++;
  std::vector<std::byte> request;
  append(request, offset);
  append(request, len);
  append(request, token);
  comm_.send(target, kGetReqTag, request);
  // Progress-all while waiting: the target may be blocked in a get of its
  // own; serving its requests here breaks request cycles.
  while (getReplies_.find(token) == getReplies_.end()) {
    comm_.progressOrWait();
  }
  std::vector<std::byte> out = std::move(getReplies_[token]);
  getReplies_.erase(token);
  ++emulatedGets_;
  return out;
}

void Window::progress() { comm_.progress(); }

void Window::fence() {
  // All local operations are synchronous. The barrier progresses every
  // channel while waiting, so emulated puts/gets from any rank are served
  // during it; the trailing progress() drains anything that arrived on
  // the barrier's last hop.
  comm_.barrier(/*serveAll=*/true);
  comm_.progress();
}

void Window::writeLocal(std::uint64_t offset,
                        std::span<const std::byte> data) {
  if (offset + data.size() > config_.windowBytes) {
    throw std::out_of_range("Window: local write outside window");
  }
  nic_->memory().write(localBase_ + offset, data);
}

std::vector<std::byte> Window::readLocal(std::uint64_t offset,
                                         std::uint64_t len) const {
  if (offset + len > config_.windowBytes) {
    throw std::out_of_range("Window: local read outside window");
  }
  std::vector<std::byte> out(len);
  nic_->memory().read(localBase_ + offset, out);
  return out;
}

}  // namespace vibe::upper::getput
