// One-sided get/put layer over VIPL — the "get/put programming model"
// layer the paper lists as future work (§5).
//
// Each rank exposes a registered memory window. put() uses RDMA write when
// the NIC implements it (cLAN, M-VIA models) and falls back to an active-
// message PUT served by the target's progress engine otherwise (BVIA model
// has no RDMA — exactly the capability difference VIBe's RDMA benchmark
// surfaces). get() uses RDMA read where available, else a request/reply.
// fence() completes all outstanding operations and synchronizes all ranks.
//
// Target-side progress: like all send/recv-based one-sided emulations, the
// fallback paths require the target to enter the library (progress(),
// fence(), or any Communicator call). RDMA paths are truly passive.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "upper/msg/communicator.hpp"

namespace vibe::upper::getput {

struct WindowConfig {
  std::uint64_t windowBytes = 1 << 20;
};

class Window {
 public:
  /// Collective constructor: every rank calls with its communicator. The
  /// window base addresses and memory handles are exchanged out-of-band
  /// through the message layer.
  static std::unique_ptr<Window> create(msg::Communicator& comm,
                                        const WindowConfig& config = {});
  ~Window();

  Window(const Window&) = delete;
  Window& operator=(const Window&) = delete;

  std::uint64_t size() const { return config_.windowBytes; }
  /// Local window base in the simulated address space.
  mem::VirtAddr base() const { return localBase_; }

  /// Writes `data` into rank `target`'s window at `offset`.
  void put(std::uint32_t target, std::uint64_t offset,
           std::span<const std::byte> data);
  /// Reads `len` bytes from rank `target`'s window at `offset`.
  std::vector<std::byte> get(std::uint32_t target, std::uint64_t offset,
                             std::uint64_t len);

  /// Serves incoming one-sided requests without blocking.
  void progress();
  /// Completes all locally-issued operations and barriers all ranks.
  void fence();

  // Local window access helpers.
  void writeLocal(std::uint64_t offset, std::span<const std::byte> data);
  std::vector<std::byte> readLocal(std::uint64_t offset,
                                   std::uint64_t len) const;

  std::uint64_t rdmaPuts() const { return rdmaPuts_; }
  std::uint64_t emulatedPuts() const { return emulatedPuts_; }
  std::uint64_t rdmaGets() const { return rdmaGets_; }
  std::uint64_t emulatedGets() const { return emulatedGets_; }

 private:
  explicit Window(msg::Communicator& comm, const WindowConfig& config);
  void exchangeHandles();
  void onService(std::uint32_t src, int tag, std::vector<std::byte> payload);

  msg::Communicator& comm_;
  WindowConfig config_;
  vipl::Provider* nic_;
  mem::VirtAddr localBase_ = 0;
  mem::MemHandle localHandle_ = 0;
  std::vector<mem::VirtAddr> remoteBase_;
  std::vector<mem::MemHandle> remoteHandle_;

  // Staging buffer for RDMA data (registered once; puts/gets chunk at its
  // size). Operations are completed synchronously, which keeps this layer's
  // send-completion stream from interleaving with the communicator's.
  mem::VirtAddr stagingVa_ = 0;
  mem::MemHandle stagingHandle_ = 0;
  static constexpr std::uint64_t kStagingBytes = 64 * 1024;

  // get() fallback bookkeeping: replies keyed by request token.
  std::unordered_map<std::uint32_t, std::vector<std::byte>> getReplies_;
  std::uint32_t nextToken_ = 1;

  std::uint64_t rdmaPuts_ = 0;
  std::uint64_t emulatedPuts_ = 0;
  std::uint64_t rdmaGets_ = 0;
  std::uint64_t emulatedGets_ = 0;
};

}  // namespace vibe::upper::getput
