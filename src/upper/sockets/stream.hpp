// Stream sockets over VIPL — the "sockets" programming-model layer from
// the paper's §1 motivation (its ref [17], "High Performance Sockets and
// RPC over Virtual Interface Architecture").
//
// Byte-stream semantics on top of VIA's message transport:
//   * one ReliableDelivery VI per connection;
//   * a preposted receive ring of fixed frames with credit flow control —
//     the sender never overruns the ring, like a TCP window;
//   * incoming DATA is drained into an unbounded user-space receive buffer
//     whenever the socket does any work (including while blocked sending),
//     so two peers writing simultaneously cannot deadlock;
//   * FIN frames give half-close semantics: recv returns 0 at EOF.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "session/session.hpp"
#include "vibe/cluster.hpp"
#include "vipl/provider.hpp"

namespace vibe::upper::sockets {

struct StreamConfig {
  std::uint32_t frameBytes = 8192;  // payload per ring frame
  std::uint32_t ringDepth = 16;     // preposted frames (= send window)
  nic::Reliability reliability = nic::Reliability::ReliableDelivery;
  /// Recovery mode: the byte stream rides a session::Session that
  /// reconnects automatically with exactly-once frame replay, so the
  /// stream survives injected connection breaks. The listener side must
  /// use acceptRecoverable(peerNode); sessionId must be unique per socket
  /// on a node. Credit flow control is not used (the session's receive
  /// ring self-replenishes and its replay buffer absorbs bursts). When
  /// off, nothing below is read and the wire behaviour is unchanged.
  bool recovery = false;
  session::ReconnectPolicy reconnect{};
  std::uint32_t sessionId = 0x2000;
  obs::MetricsRegistry* metrics = nullptr;  // optional, recovery only
  obs::SpanProfiler* spans = nullptr;       // optional, recovery only
};

class StreamSocket {
 public:
  /// Active open: connects to (host, port). Throws on failure/timeout.
  static std::unique_ptr<StreamSocket> connect(suite::NodeEnv& env,
                                               fabric::NodeId host,
                                               std::uint64_t port,
                                               const StreamConfig& config = {});

  ~StreamSocket();
  StreamSocket(const StreamSocket&) = delete;
  StreamSocket& operator=(const StreamSocket&) = delete;

  /// Writes the whole span (blocking; respects the peer's window).
  void sendAll(std::span<const std::byte> data);
  /// Reads at least one byte unless the peer closed (then returns 0).
  std::size_t recvSome(std::span<std::byte> out);
  /// Reads exactly out.size() bytes; throws on premature EOF.
  void recvAll(std::span<std::byte> out);
  /// Bytes currently buffered and readable without blocking.
  std::size_t available() const { return rxBuffer_.size(); }

  /// Sends FIN; further sendAll calls throw. recv keeps draining.
  void close();
  bool peerClosed() const { return peerClosed_; }

  std::uint64_t bytesSent() const { return bytesSent_; }
  std::uint64_t bytesReceived() const { return bytesReceived_; }

 private:
  friend class StreamListener;
  StreamSocket(suite::NodeEnv& env, const StreamConfig& config);
  void setupBuffers();
  void makeSession(fabric::NodeId peer, std::uint64_t port, bool initiator);
  void handleSessionFrame(std::span<const std::byte> frame);
  /// Drains every completed ring frame; returns true if anything arrived.
  bool progressOnce(bool blockUntilSomething);
  void handleFrame(std::size_t slot, std::uint32_t wireBytes);
  void returnCreditsIfDue();
  void sendFrame(std::uint8_t kind, std::span<const std::byte> payload,
                 std::uint32_t creditReturn);
  /// Like sendFrame but reports failure instead of throwing (close path).
  bool trySendFrame(std::uint8_t kind, std::span<const std::byte> payload,
                    std::uint32_t creditReturn);

  suite::NodeEnv& env_;
  vipl::Provider* nic_;
  StreamConfig config_;
  mem::PtagId ptag_ = 0;
  vipl::Vi* vi_ = nullptr;
  mem::MemHandle arenaHandle_ = 0;
  mem::VirtAddr ringVa_ = 0;
  mem::VirtAddr stagingVa_ = 0;
  std::vector<vipl::VipDescriptor> ring_;

  std::deque<std::byte> rxBuffer_;
  std::uint32_t sendCredits_ = 0;
  std::uint32_t pendingCreditReturn_ = 0;
  bool localClosed_ = false;
  bool peerClosed_ = false;
  std::uint64_t bytesSent_ = 0;
  std::uint64_t bytesReceived_ = 0;
  std::unique_ptr<session::Session> session_;  // recovery mode only
};

class StreamListener {
 public:
  /// Passive open on `port` (a VIA discriminator).
  StreamListener(suite::NodeEnv& env, std::uint64_t port,
                 const StreamConfig& config = {});

  /// Blocks for the next incoming connection. Non-recovery mode only.
  std::unique_ptr<StreamSocket> accept(sim::Duration timeout = sim::kSecond *
                                                               10);

  /// Recovery mode: accepts a recoverable session from `peerNode` (the
  /// acceptor must know the peer to reject strays during reconnects).
  std::unique_ptr<StreamSocket> acceptRecoverable(fabric::NodeId peerNode);

 private:
  suite::NodeEnv& env_;
  std::uint64_t port_;
  StreamConfig config_;
};

}  // namespace vibe::upper::sockets
