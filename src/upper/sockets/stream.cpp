#include "upper/sockets/stream.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "vipl/vipl.hpp"

namespace vibe::upper::sockets {

namespace {

using vipl::PendingConn;
using vipl::VipDescriptor;
using vipl::VipResult;

constexpr sim::Duration kConnTimeout = sim::kSecond * 5;

// Frame: [kind u8][pad u8][creditReturn u16][payload...]
constexpr std::uint32_t kHeaderBytes = 4;
constexpr std::uint8_t kData = 1;
constexpr std::uint8_t kCredit = 2;  // pure credit return, no payload
constexpr std::uint8_t kFin = 3;

void require(VipResult r, const char* what) {
  if (r != VipResult::VIP_SUCCESS) {
    throw std::runtime_error(std::string("sockets: ") + what + " -> " +
                             vipl::toString(r));
  }
}

}  // namespace

StreamSocket::StreamSocket(suite::NodeEnv& env, const StreamConfig& config)
    : env_(env), nic_(&env.nic), config_(config) {
  ptag_ = nic_->createPtag();
  sendCredits_ = config_.ringDepth;
}

void StreamSocket::setupBuffers() {
  // Credits regulate DATA/FIN frames only (ringDepth of them in flight).
  // Standalone CREDIT frames ride outside the window, so the physical ring
  // holds extra slots for them: a peer emits at most one CREDIT per
  // ringDepth/2 frames it consumes, which bounds unprocessed control
  // frames well below ringDepth + 4 between two of our processing steps.
  const std::uint32_t slots = config_.ringDepth * 2 + 4;
  const std::uint32_t frame = config_.frameBytes + kHeaderBytes;
  const std::uint64_t ringBytes = static_cast<std::uint64_t>(slots) * frame;
  const std::uint64_t arenaBytes = ringBytes + frame;  // + send staging
  const mem::VirtAddr arena = nic_->memory().alloc(arenaBytes, mem::kPageSize);
  vipl::VipMemAttributes ma;
  ma.ptag = ptag_;
  require(nic_->registerMem(arena, arenaBytes, ma, arenaHandle_),
          "register arena");
  ringVa_ = arena;
  stagingVa_ = arena + ringBytes;
  ring_.resize(slots);
  for (std::uint32_t i = 0; i < slots; ++i) {
    ring_[i] = VipDescriptor::recv(
        ringVa_ + static_cast<std::uint64_t>(i) * frame, arenaHandle_, frame);
    require(nic_->postRecv(vi_, &ring_[i]), "prepost ring");
  }
}

void StreamSocket::makeSession(fabric::NodeId peer, std::uint64_t port,
                               bool initiator) {
  session::SessionConfig sc;
  sc.sid = config_.sessionId;
  sc.remoteNode = peer;
  sc.discriminator = port;
  sc.initiator = initiator;
  sc.maxMessageBytes = config_.frameBytes + kHeaderBytes;
  sc.ringDepth = config_.ringDepth;
  sc.policy = config_.reconnect;
  sc.metrics = config_.metrics;
  sc.spans = config_.spans;
  session_ = std::make_unique<session::Session>(*nic_, sc);
  if (!session_->establish()) {
    throw std::runtime_error("sockets: session failed to establish");
  }
}

std::unique_ptr<StreamSocket> StreamSocket::connect(
    suite::NodeEnv& env, fabric::NodeId host, std::uint64_t port,
    const StreamConfig& config) {
  auto sock = std::unique_ptr<StreamSocket>(new StreamSocket(env, config));
  if (config.recovery) {
    sock->makeSession(host, port, /*initiator=*/true);
    return sock;
  }
  vipl::VipViAttributes va;
  va.ptag = sock->ptag_;
  va.reliabilityLevel = config.reliability;
  require(sock->nic_->createVi(va, nullptr, nullptr, sock->vi_), "create VI");
  sock->setupBuffers();
  require(sock->nic_->connectRequest(sock->vi_, {host, port}, kConnTimeout),
          "connect");
  return sock;
}

StreamListener::StreamListener(suite::NodeEnv& env, std::uint64_t port,
                               const StreamConfig& config)
    : env_(env), port_(port), config_(config) {}

std::unique_ptr<StreamSocket> StreamListener::acceptRecoverable(
    fabric::NodeId peerNode) {
  if (!config_.recovery) {
    throw std::logic_error("sockets: acceptRecoverable requires recovery");
  }
  auto sock = std::unique_ptr<StreamSocket>(new StreamSocket(env_, config_));
  sock->makeSession(peerNode, port_, /*initiator=*/false);
  return sock;
}

std::unique_ptr<StreamSocket> StreamListener::accept(sim::Duration timeout) {
  if (config_.recovery) {
    throw std::logic_error("sockets: recovery mode needs acceptRecoverable");
  }
  auto sock =
      std::unique_ptr<StreamSocket>(new StreamSocket(env_, config_));
  vipl::VipViAttributes va;
  va.ptag = sock->ptag_;
  va.reliabilityLevel = config_.reliability;
  require(sock->nic_->createVi(va, nullptr, nullptr, sock->vi_),
          "accept VI");
  sock->setupBuffers();
  PendingConn conn;
  require(sock->nic_->connectWait({env_.nodeId, port_}, timeout, conn),
          "connect wait");
  require(sock->nic_->connectAccept(conn, sock->vi_), "accept");
  return sock;
}

StreamSocket::~StreamSocket() {
  if (session_) {
    if (!localClosed_ && !session_->down()) {
      try {
        close();
      } catch (...) {
        // Destruction must not throw.
      }
    }
    return;
  }
  if (vi_ == nullptr) return;
  if (!localClosed_ && vi_->state() == vipl::ViState::Connected) {
    try {
      close();
    } catch (...) {
      // Destruction must not throw; the disconnect below still flushes.
    }
  }
  if (vi_->state() == vipl::ViState::Connected) {
    (void)nic_->disconnect(vi_);
  }
  (void)nic_->destroyVi(vi_);
}

bool StreamSocket::trySendFrame(std::uint8_t kind,
                                std::span<const std::byte> payload,
                                std::uint32_t creditReturn) {
  std::vector<std::byte> frame(kHeaderBytes + payload.size());
  frame[0] = std::byte(kind);
  const auto cr = static_cast<std::uint16_t>(creditReturn);
  std::memcpy(frame.data() + 2, &cr, 2);
  if (!payload.empty()) {
    std::memcpy(frame.data() + kHeaderBytes, payload.data(), payload.size());
  }
  if (session_) {
    // The session retains the frame for replay across reconnects; false
    // only when its circuit breaker has tripped.
    return session_->send(frame);
  }
  nic_->memory().write(stagingVa_, frame);
  VipDescriptor d = VipDescriptor::send(
      stagingVa_, arenaHandle_, static_cast<std::uint32_t>(frame.size()));
  if (nic_->postSend(vi_, &d) != VipResult::VIP_SUCCESS) return false;
  VipDescriptor* done = nullptr;
  return nic_->pollSend(vi_, done) == VipResult::VIP_SUCCESS;
}

void StreamSocket::sendFrame(std::uint8_t kind,
                             std::span<const std::byte> payload,
                             std::uint32_t creditReturn) {
  if (!trySendFrame(kind, payload, creditReturn)) {
    // The peer tore the connection down mid-frame: surfaces as EOF on the
    // receive path; for the send path it is an error.
    peerClosed_ = true;
    throw std::runtime_error("sockets: connection lost while sending");
  }
}

bool StreamSocket::progressOnce(bool blockUntilSomething) {
  if (session_) {
    std::vector<std::byte> msg;
    if (session_->poll(msg)) {
      handleSessionFrame(msg);
      return true;
    }
    if (!blockUntilSomething) return false;
    for (;;) {
      if (session_->down()) {
        peerClosed_ = true;  // recovery abandoned: surfaces as EOF
        return true;
      }
      if (session_->recv(msg, sim::msec(50))) {
        handleSessionFrame(msg);
        return true;
      }
    }
  }
  VipDescriptor* done = nullptr;
  VipResult r = nic_->recvDone(vi_, done);
  if (r == VipResult::VIP_NOT_DONE) {
    if (!blockUntilSomething) return false;
    r = nic_->pollRecv(vi_, done);
  }
  if (r == VipResult::VIP_DESCRIPTOR_ERROR) {
    // Flushed by a disconnect: treat as peer close.
    peerClosed_ = true;
    return true;
  }
  require(r, "recv ring");
  const auto slot = static_cast<std::size_t>(done - ring_.data());
  handleFrame(slot, done->cs.length);
  return true;
}

void StreamSocket::handleSessionFrame(std::span<const std::byte> data) {
  switch (static_cast<std::uint8_t>(data[0])) {
    case kData:
      rxBuffer_.insert(rxBuffer_.end(), data.begin() + kHeaderBytes,
                       data.end());
      bytesReceived_ += data.size() - kHeaderBytes;
      break;
    case kFin:
      peerClosed_ = true;
      break;
    default:
      throw std::logic_error("sockets: unknown frame kind");
  }
}

void StreamSocket::handleFrame(std::size_t slot, std::uint32_t wireBytes) {
  const std::uint32_t frame = config_.frameBytes + kHeaderBytes;
  const mem::VirtAddr slotVa =
      ringVa_ + static_cast<std::uint64_t>(slot) * frame;
  std::vector<std::byte> data(wireBytes);
  nic_->memory().read(slotVa, data);

  const auto kind = static_cast<std::uint8_t>(data[0]);
  std::uint16_t creditReturn = 0;
  std::memcpy(&creditReturn, data.data() + 2, 2);
  sendCredits_ += creditReturn;

  switch (kind) {
    case kData:
      rxBuffer_.insert(rxBuffer_.end(), data.begin() + kHeaderBytes,
                       data.end());
      bytesReceived_ += wireBytes - kHeaderBytes;
      ++pendingCreditReturn_;  // a DATA frame consumed a ring slot
      break;
    case kCredit:
      break;  // outside the window: nothing to return for it
    case kFin:
      peerClosed_ = true;
      ++pendingCreditReturn_;
      break;
    default:
      throw std::logic_error("sockets: unknown frame kind");
  }
  // Repost the slot immediately: the ring is the receive window.
  ring_[slot] = VipDescriptor::recv(slotVa, arenaHandle_, frame);
  require(nic_->postRecv(vi_, &ring_[slot]), "repost ring");
  returnCreditsIfDue();
}

void StreamSocket::returnCreditsIfDue() {
  if (pendingCreditReturn_ < config_.ringDepth / 2 || peerClosed_) return;
  const std::uint32_t give = pendingCreditReturn_;
  pendingCreditReturn_ = 0;
  // A peer that already disconnected has no use for credits; note the
  // closure and keep draining what it left behind.
  if (!trySendFrame(kCredit, {}, give)) peerClosed_ = true;
}

void StreamSocket::sendAll(std::span<const std::byte> data) {
  if (localClosed_) throw std::logic_error("sockets: send after close");
  if (session_) {
    std::size_t off = 0;
    while (off < data.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(config_.frameBytes, data.size() - off);
      sendFrame(kData, data.subspan(off, chunk), 0);
      bytesSent_ += chunk;
      off += chunk;
    }
    return;
  }
  std::size_t off = 0;
  while (off < data.size()) {
    while (sendCredits_ == 0) {
      // Blocked on the peer's window: keep draining our own ring so a
      // peer that is also sending gets its credits back (no deadlock when
      // both sides write simultaneously).
      progressOnce(/*blockUntilSomething=*/true);
      if (peerClosed_ && sendCredits_ == 0) {
        throw std::runtime_error("sockets: peer closed during send");
      }
    }
    const std::size_t chunk =
        std::min<std::size_t>(config_.frameBytes, data.size() - off);
    // Piggyback any due credit return on the data frame.
    const std::uint32_t give = pendingCreditReturn_;
    pendingCreditReturn_ = 0;
    --sendCredits_;
    sendFrame(kData, data.subspan(off, chunk), give);
    bytesSent_ += chunk;
    off += chunk;
  }
}

std::size_t StreamSocket::recvSome(std::span<std::byte> out) {
  while (rxBuffer_.empty()) {
    if (peerClosed_) return 0;  // EOF
    progressOnce(/*blockUntilSomething=*/true);
  }
  const std::size_t take = std::min(out.size(), rxBuffer_.size());
  for (std::size_t i = 0; i < take; ++i) {
    out[i] = rxBuffer_.front();
    rxBuffer_.pop_front();
  }
  return take;
}

void StreamSocket::recvAll(std::span<std::byte> out) {
  std::size_t off = 0;
  while (off < out.size()) {
    const std::size_t got = recvSome(out.subspan(off));
    if (got == 0) {
      throw std::runtime_error("sockets: EOF before recvAll completed");
    }
    off += got;
  }
}

void StreamSocket::close() {
  if (localClosed_) return;
  if (session_) {
    if (!trySendFrame(kFin, {}, 0) || !session_->flush(sim::kSecond)) {
      peerClosed_ = true;
    }
    localClosed_ = true;
    return;
  }
  // FIN needs a window slot too.
  while (sendCredits_ == 0 && !peerClosed_) {
    progressOnce(/*blockUntilSomething=*/true);
  }
  if (sendCredits_ > 0) {
    --sendCredits_;
    const std::uint32_t give = pendingCreditReturn_;
    pendingCreditReturn_ = 0;
    // A peer that already disconnected (it read everything and left before
    // our FIN's ack returned) is not an error for close().
    if (!trySendFrame(kFin, {}, give)) peerClosed_ = true;
  }
  localClosed_ = true;
}

}  // namespace vibe::upper::sockets
