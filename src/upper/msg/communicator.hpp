// MPI-like message-passing layer over VIPL — the "distributed memory
// programming model" layer the paper lists as future work (§5).
//
// Design choices follow directly from VIBe findings:
//   * All communication buffers are allocated and registered once at
//     startup (registration is expensive — Fig. 1) and recycled.
//   * Small messages use an eager protocol through preposted, credit-flow-
//     controlled bounce buffers; large messages use a rendezvous (RTS/CTS)
//     so the payload lands in a receive descriptor of exactly the right
//     size with no intermediate copy at the receiver.
//   * One VI per peer pair (the multi-VI latency penalty on firmware
//     implementations — Fig. 6 — argues against per-thread VI fan-out).
//
// Matching model: one channel per source rank; tags match out of order
// within a channel (unexpected messages are queued).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <span>
#include <vector>

#include "session/session.hpp"
#include "vibe/cluster.hpp"
#include "vipl/provider.hpp"

namespace vibe::upper::msg {

struct CommConfig {
  std::uint32_t eagerThreshold = 8192;  // bytes; above this -> rendezvous
  std::uint32_t creditsPerPeer = 16;    // eager-data credits
  std::uint32_t controlReserve = 8;     // extra preposted buffers for control
  nic::Reliability reliability = nic::Reliability::ReliableDelivery;
  std::uint64_t discriminatorBase = 0x4D50'0000;  // 'MP'

  /// Recovery mode: each peer channel runs over a session::Session, which
  /// reconnects automatically after connection breaks and replays/dedups
  /// frames for exactly-once delivery. The raw-VI machinery it replaces is
  /// bypassed: no bulk VI (large messages travel as chunk frames over the
  /// session stream), no credit flow control (the session's interrupt-
  /// driven receive ring cannot starve), and peerVi() returns null — the
  /// get/put RDMA path requires recovery=false. Off by default; when off,
  /// behaviour and simulated timing are bit-identical to before.
  bool recovery = false;
  session::ReconnectPolicy reconnect;            // used when recovery=true
  obs::MetricsRegistry* metrics = nullptr;       // session recovery metrics
  obs::SpanProfiler* spans = nullptr;            // session reconnect spans
};

class Communicator {
 public:
  /// Collective constructor: every rank's node program calls create() with
  /// its own rank; the full VI mesh is wired pairwise (lower rank requests,
  /// higher rank accepts).
  static std::unique_ptr<Communicator> create(suite::NodeEnv& env,
                                              std::uint32_t rank,
                                              std::uint32_t size,
                                              const CommConfig& config = {});
  ~Communicator();

  Communicator(const Communicator&) = delete;
  Communicator& operator=(const Communicator&) = delete;

  std::uint32_t rank() const { return rank_; }
  std::uint32_t size() const { return size_; }

  // --- point to point ---
  /// Blocking send (returns when the payload is out of the caller's hands:
  /// eager-staged or rendezvous-completed).
  void send(std::uint32_t dst, int tag, std::span<const std::byte> data);
  /// Blocking receive of the next message with `tag` from `src`.
  std::vector<std::byte> recv(std::uint32_t src, int tag);

  // --- nonblocking point to point (MPI_Isend/Irecv analogues) ---
  using RequestId = std::uint64_t;
  /// Nonblocking eager send: the payload is staged immediately, the wire
  /// work overlaps with computation, completion is observed via test()/
  /// wait(). Only messages up to the eager threshold are accepted
  /// (rendezvous requires a blocking dialogue; use send()). Outstanding
  /// isends share the control VI's completion stream: layers posting their
  /// own descriptors on peerVi() (the get/put RDMA path) must not overlap
  /// with unwaited isends.
  RequestId isend(std::uint32_t dst, int tag, std::span<const std::byte> data);
  /// Nonblocking receive: matches the next arriving (src, tag) message.
  /// Do not mix blocking recv() and irecv() on the same (src, tag).
  RequestId irecv(std::uint32_t src, int tag);
  /// True once the request completed (never blocks; runs one progress).
  bool test(RequestId request);
  /// Blocks until completion; returns the payload for receives.
  std::vector<std::byte> wait(RequestId request);
  /// Waits for every request in the span (send payloads are discarded).
  void waitAll(std::span<const RequestId> requests);
  std::size_t outstandingRequests() const { return requests_.size(); }

  /// Combined exchange (MPI_Sendrecv): deadlock-safe even when all ranks
  /// call it simultaneously toward each other.
  std::vector<std::byte> sendrecv(std::uint32_t dst, int sendTag,
                                  std::span<const std::byte> data,
                                  std::uint32_t src, int recvTag);
  /// Like recv(), but waits by progressing every peer (service traffic
  /// keeps flowing while blocked).
  std::vector<std::byte> recvServing(std::uint32_t src, int tag);
  /// Non-blocking: drains completions from every peer once; pops the
  /// oldest fully-received user message if any (service traffic is
  /// dispatched to the service handler, see setServiceHandler).
  bool tryRecvAny(std::uint32_t& src, int& tag, std::vector<std::byte>& out);

  // --- collectives (dissemination / binomial-tree algorithms) ---
  /// With serveAll=true the barrier waits by progressing *every* channel,
  /// so service traffic (get/put, DSM) from any rank keeps flowing while
  /// ranks sit in the barrier. Layers whose protocols depend on remote
  /// progress must use it.
  void barrier(bool serveAll = false);
  void broadcast(std::uint32_t root, std::vector<std::byte>& data);
  double allreduceSum(double value);
  void allreduceSum(std::span<double> values);

  // --- service plumbing for layers built on top (get/put windows) ---
  /// Messages with tags >= kServiceTagBase are delivered to this handler
  /// during progress instead of the matching queues.
  using ServiceHandler =
      std::function<void(std::uint32_t src, int tag, std::vector<std::byte>)>;
  /// Catch-all handler for service tags with no exact-tag registration.
  void setServiceHandler(ServiceHandler handler);
  /// Exact-tag handler; lets several layers (get/put windows, DSM) share
  /// one communicator. Registration replaces any previous handler for the
  /// tag.
  void addServiceHandler(int tag, ServiceHandler handler);
  static constexpr int kServiceTagBase = 1 << 24;

  /// Runs one progress step over every peer (reaps completions, returns
  /// credits, dispatches service messages). Returns true if anything
  /// happened.
  bool progress();

  /// Blocks (spinning) until something arrives from `peer` and processes
  /// it. Used by layers waiting for a service reply.
  void progressBlocking(std::uint32_t peer) {
    progressPeer(peer, /*blockUntilSomething=*/true);
  }

  /// One polling step for spin-wait loops: progresses every channel and,
  /// if nothing arrived, burns a small busy quantum so that (a) virtual
  /// time always advances — waits terminate — and (b) the wall-clock cost
  /// of a long wait stays bounded instead of degenerating into millions of
  /// zero-progress passes.
  void progressOrWait();

  /// The VI connected to `peer` (used by the get/put layer for RDMA).
  vipl::Vi* peerVi(std::uint32_t peer) const;
  vipl::Provider& provider() const { return *nic_; }
  mem::PtagId ptag() const { return ptag_; }

  // --- statistics (for tests and tuning) ---
  std::uint64_t eagerSent() const { return eagerSent_; }
  std::uint64_t rendezvousSent() const { return rndvSent_; }
  std::uint64_t creditStalls() const { return creditStalls_; }
  std::uint64_t creditMessages() const { return creditMsgs_; }

 private:
  Communicator(suite::NodeEnv& env, std::uint32_t rank, std::uint32_t size,
               const CommConfig& config);
  void connectMesh();

  struct PoolBuffer {
    mem::VirtAddr va = 0;
    vipl::VipDescriptor desc;
  };
  struct Peer {
    vipl::Vi* vi = nullptr;      // control/eager channel (preposted pool)
    vipl::Vi* bulkVi = nullptr;  // rendezvous payloads only: keeps large
                                 // messages out of the pool's FIFO matching
    vipl::Cq* cq = nullptr;  // merges both VIs' receive completions
    std::vector<PoolBuffer> recvPool;
    std::uint32_t sendCredits = 0;
    std::uint32_t pendingCreditReturn = 0;
    std::uint32_t nextSeq = 1;
    // Matched-but-unconsumed user messages.
    struct Inbound {
      int tag;
      std::vector<std::byte> data;
    };
    std::deque<Inbound> matched;
    // Rendezvous in flight (sender side): seq -> waiting for CTS.
    std::deque<std::uint32_t> ctsReady;
    // Recovery mode: the channel itself, plus the in-progress reassembly
    // of a chunked large message (the session stream is in-order and
    // exactly-once, so chunks of one message arrive contiguously).
    std::unique_ptr<session::Session> session;
    struct ChunkAssembly {
      std::uint32_t seq = 0;
      int tag = 0;
      std::uint64_t total = 0;
      std::vector<std::byte> data;
    };
    std::optional<ChunkAssembly> chunk;
  };

  struct RequestState {
    bool done = false;
    bool isRecv = false;
    std::uint32_t peer = 0;
    int tag = 0;
    std::vector<std::byte> data;                  // recv payload
    std::unique_ptr<vipl::VipDescriptor> desc;    // async send descriptor
    std::uint32_t slot = 0;                       // async staging slot
  };

  std::uint64_t discriminatorFor(std::uint32_t a, std::uint32_t b) const;
  void prepostPool(Peer& peer);
  /// Drains completed async send descriptors on one peer's send queue,
  /// optionally stopping when `target` (a synchronous send) completes.
  void drainSendCompletions(Peer& peer, const vipl::VipDescriptor* target);
  /// Routes an arrived user message: oldest matching irecv, else queue.
  void deliverInbound(std::uint32_t src, int tag, std::vector<std::byte> data);
  void repostPoolBuffer(std::uint32_t peerRank, PoolBuffer& buf);
  /// Sends a framed control/eager message through a staging buffer.
  void sendFrame(std::uint32_t dst, std::uint8_t kind, int tag,
                 std::uint32_t seq, std::span<const std::byte> payload);
  /// Recovery mode: streams a rendezvous-size message as chunk frames.
  void sendChunkFrames(std::uint32_t dst, int tag, std::uint32_t seq,
                       std::span<const std::byte> data);
  /// Drains one peer's receive queue; returns true if progress was made.
  bool progressPeer(std::uint32_t peerRank, bool blockUntilSomething);
  void handleFrame(std::uint32_t src, std::span<const std::byte> frame);
  /// Routes a service-tag message; returns false for user messages.
  bool dispatchService(std::uint32_t src, int tag,
                       std::vector<std::byte>&& data);
  void waitForCts(std::uint32_t dst, std::uint32_t seq);

  suite::NodeEnv& env_;
  vipl::Provider* nic_;
  CommConfig config_;
  std::uint32_t rank_;
  std::uint32_t size_;
  mem::PtagId ptag_ = 0;
  mem::MemHandle poolHandle_ = 0;  // one registration covers all pools
  mem::VirtAddr stagingVa_ = 0;    // sender-side staging ring
  std::vector<std::unique_ptr<Peer>> peers_;  // index = rank (self null)
  std::uint32_t stagingSlot_ = 0;
  std::uint32_t frameBytes_ = 0;  // eagerThreshold + header

  // Rendezvous receiver side: the payload arrives as ceil(size/MTS)
  // chunk messages on the bulk VI, landing in one registered buffer.
  struct RndvRecv {
    std::vector<std::unique_ptr<vipl::VipDescriptor>> descs;
    std::size_t completed = 0;
    int tag = 0;
    mem::VirtAddr va = 0;
    mem::MemHandle handle = 0;
    std::uint64_t bytes = 0;
  };
  std::vector<std::optional<std::pair<std::uint32_t, RndvRecv>>> rndvSlots_;

  ServiceHandler serviceHandler_;
  std::unordered_map<int, ServiceHandler> taggedHandlers_;

  // Nonblocking requests.
  std::unordered_map<RequestId, RequestState> requests_;
  std::vector<RequestId> pendingRecvs_;  // irecvs in post order
  RequestId nextRequest_ = 1;
  mem::VirtAddr asyncStagingVa_ = 0;
  std::vector<bool> asyncSlotBusy_;

  std::uint64_t eagerSent_ = 0;
  std::uint64_t rndvSent_ = 0;
  std::uint64_t creditStalls_ = 0;
  std::uint64_t creditMsgs_ = 0;
};

}  // namespace vibe::upper::msg
