#include "upper/msg/communicator.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "vipl/vipl.hpp"

namespace vibe::upper::msg {

namespace {

using vipl::Cq;
using vipl::PendingConn;
using vipl::Vi;
using vipl::VipDescriptor;
using vipl::VipResult;

constexpr sim::Duration kConnTimeout = sim::kSecond * 5;
constexpr sim::Duration kForever = -1;

// Internal collective tags (above user space, below the service range).
constexpr int kBarrierTag = (1 << 23) + 1;
constexpr int kBcastTag = (1 << 23) + 2;
constexpr int kReduceTag = (1 << 23) + 3;

// Frame kinds.
constexpr std::uint8_t kEager = 1;
constexpr std::uint8_t kRts = 2;
constexpr std::uint8_t kCts = 3;
constexpr std::uint8_t kCredit = 4;
// Recovery mode only: one piece of a chunked large message. `seq` names
// the message, `size` carries the total message bytes; the session stream
// is in-order so pieces concatenate.
constexpr std::uint8_t kChunk = 5;

constexpr std::uint32_t kHeaderBytes = 24;

struct FrameHeader {
  std::uint8_t kind = 0;
  std::int32_t tag = 0;
  std::uint32_t seq = 0;
  std::uint64_t size = 0;      // payload bytes (eager) / message bytes (RTS)
  std::uint32_t credits = 0;   // credit return count
};

void packHeader(const FrameHeader& h, std::byte* out) {
  std::memset(out, 0, kHeaderBytes);
  std::memcpy(out + 0, &h.kind, 1);
  std::memcpy(out + 4, &h.tag, 4);
  std::memcpy(out + 8, &h.seq, 4);
  std::memcpy(out + 12, &h.credits, 4);
  std::memcpy(out + 16, &h.size, 8);
}

FrameHeader unpackHeader(const std::byte* in) {
  FrameHeader h;
  std::memcpy(&h.kind, in + 0, 1);
  std::memcpy(&h.tag, in + 4, 4);
  std::memcpy(&h.seq, in + 8, 4);
  std::memcpy(&h.credits, in + 12, 4);
  std::memcpy(&h.size, in + 16, 8);
  return h;
}

void require(VipResult r, const char* what) {
  if (r != VipResult::VIP_SUCCESS) {
    throw std::runtime_error(std::string("msg::Communicator: ") + what +
                             " -> " + vipl::toString(r));
  }
}

}  // namespace

std::unique_ptr<Communicator> Communicator::create(suite::NodeEnv& env,
                                                   std::uint32_t rank,
                                                   std::uint32_t size,
                                                   const CommConfig& config) {
  auto comm = std::unique_ptr<Communicator>(
      new Communicator(env, rank, size, config));
  comm->connectMesh();
  return comm;
}

Communicator::Communicator(suite::NodeEnv& env, std::uint32_t rank,
                           std::uint32_t size, const CommConfig& config)
    : env_(env), nic_(&env.nic), config_(config), rank_(rank), size_(size) {
  if (rank >= size || size == 0) {
    throw std::invalid_argument("Communicator: bad rank/size");
  }
  ptag_ = nic_->createPtag();
  frameBytes_ = config_.eagerThreshold + kHeaderBytes;

  // One arena, one registration: per-peer receive pools plus the sender
  // staging ring (VIBe Fig. 1: registration is the expensive part, so do
  // it once up front).
  const std::uint32_t poolFrames =
      config_.creditsPerPeer + config_.controlReserve;
  const std::uint64_t perPeerBytes =
      static_cast<std::uint64_t>(poolFrames) * frameBytes_;
  const std::uint32_t stagingFrames = 4;
  const std::uint32_t asyncFrames = 16;
  const std::uint64_t arenaBytes =
      perPeerBytes * size_ +
      static_cast<std::uint64_t>(stagingFrames + asyncFrames) * frameBytes_;
  const mem::VirtAddr arena =
      nic_->memory().alloc(arenaBytes, mem::kPageSize);
  vipl::VipMemAttributes ma;
  ma.ptag = ptag_;
  require(nic_->registerMem(arena, arenaBytes, ma, poolHandle_),
          "register arena");
  stagingVa_ = arena + perPeerBytes * size_;
  asyncStagingVa_ =
      stagingVa_ + static_cast<std::uint64_t>(stagingFrames) * frameBytes_;
  asyncSlotBusy_.assign(asyncFrames, false);

  peers_.resize(size_);
  for (std::uint32_t p = 0; p < size_; ++p) {
    if (p == rank_) continue;
    auto peer = std::make_unique<Peer>();
    peer->sendCredits = config_.creditsPerPeer;
    peer->recvPool.resize(poolFrames);
    for (std::uint32_t f = 0; f < poolFrames; ++f) {
      peer->recvPool[f].va = arena + perPeerBytes * p +
                             static_cast<std::uint64_t>(f) * frameBytes_;
    }
    peers_[p] = std::move(peer);
  }
}

Communicator::~Communicator() {
  // The eager pool and rendezvous descriptors die with this object while
  // the VIs stay connected; completions still in flight must become
  // no-ops rather than write through pointers into the freed pool.
  // (Recovery mode has no raw VIs here; each session flushes its own.)
  for (const auto& p : peers_) {
    if (!p) continue;
    if (p->vi != nullptr) nic_->flushViPending(p->vi);
    if (p->bulkVi != nullptr) nic_->flushViPending(p->bulkVi);
  }
}

std::uint64_t Communicator::discriminatorFor(std::uint32_t a,
                                             std::uint32_t b) const {
  return config_.discriminatorBase +
         (static_cast<std::uint64_t>(a) * size_ + b) * 2;
}

void Communicator::connectMesh() {
  if (config_.recovery) {
    // One session per peer pair; the lower rank initiates, mirroring the
    // raw mesh. Session ids are derived from the pair so trace records and
    // jitter streams are deterministic and collision-free per node.
    for (std::uint32_t p = 0; p < size_; ++p) {
      if (p == rank_) continue;
      Peer& peer = *peers_[p];
      const std::uint32_t lo = std::min(rank_, p);
      const std::uint32_t hi = std::max(rank_, p);
      session::SessionConfig sc;
      sc.sid = lo * size_ + hi;
      sc.remoteNode = p;
      sc.discriminator = discriminatorFor(lo, hi);
      sc.initiator = rank_ == lo;
      sc.maxMessageBytes = frameBytes_;
      sc.policy = config_.reconnect;
      sc.metrics = config_.metrics;
      sc.spans = config_.spans;
      peer.session = std::make_unique<session::Session>(*nic_, sc);
      if (!peer.session->establish()) {
        throw std::runtime_error("Communicator: session establish failed");
      }
    }
    return;
  }

  vipl::VipViAttributes va;
  va.ptag = ptag_;
  va.reliabilityLevel = config_.reliability;
  va.enableRdmaWrite = nic_->profile().supportsRdmaWrite;
  va.enableRdmaRead = nic_->profile().supportsRdmaRead;

  for (std::uint32_t p = 0; p < size_; ++p) {
    if (p == rank_) continue;
    Peer& peer = *peers_[p];
    Cq* cq = nullptr;
    require(nic_->createCq(256, cq), "create peer CQ");
    peer.cq = cq;
    require(nic_->createVi(va, nullptr, cq, peer.vi), "create VI");
    require(nic_->createVi(va, nullptr, cq, peer.bulkVi), "create bulk VI");
    prepostPool(peer);

    const std::uint32_t lo = std::min(rank_, p);
    const std::uint32_t hi = std::max(rank_, p);
    const std::uint64_t disc = discriminatorFor(lo, hi);
    if (rank_ == lo) {
      require(nic_->connectRequest(peer.vi, {p, disc}, kConnTimeout),
              "mesh connect");
      require(nic_->connectRequest(peer.bulkVi, {p, disc + 1}, kConnTimeout),
              "mesh bulk connect");
    } else {
      auto acceptOn = [&](std::uint64_t d, vipl::Vi* vi) {
        PendingConn conn;
        // Loop until the request from exactly this peer shows up.
        for (;;) {
          require(nic_->connectWait({rank_, d}, kConnTimeout, conn),
                  "mesh connect wait");
          if (conn.remoteNode == p) break;
          nic_->connectReject(conn);
        }
        require(nic_->connectAccept(conn, vi), "mesh accept");
      };
      acceptOn(disc, peer.vi);
      acceptOn(disc + 1, peer.bulkVi);
    }
  }
}

void Communicator::prepostPool(Peer& peer) {
  for (PoolBuffer& buf : peer.recvPool) {
    buf.desc = VipDescriptor::recv(buf.va, poolHandle_, frameBytes_);
    require(nic_->postRecv(peer.vi, &buf.desc), "prepost pool buffer");
  }
}

void Communicator::repostPoolBuffer(std::uint32_t peerRank, PoolBuffer& buf) {
  Peer& peer = *peers_[peerRank];
  buf.desc = VipDescriptor::recv(buf.va, poolHandle_, frameBytes_);
  require(nic_->postRecv(peer.vi, &buf.desc), "repost pool buffer");
}

void Communicator::sendFrame(std::uint32_t dst, std::uint8_t kind, int tag,
                             std::uint32_t seq,
                             std::span<const std::byte> payload) {
  if (payload.size() + kHeaderBytes > frameBytes_) {
    throw std::invalid_argument("sendFrame: payload exceeds frame");
  }
  Peer& peer = *peers_[dst];
  if (config_.recovery) {
    std::vector<std::byte> frame(kHeaderBytes + payload.size());
    FrameHeader h;
    h.kind = kind;
    h.tag = tag;
    h.seq = seq;
    h.size = payload.size();
    packHeader(h, frame.data());
    if (!payload.empty()) {
      std::memcpy(frame.data() + kHeaderBytes, payload.data(),
                  payload.size());
    }
    if (!peer.session->send(frame)) {
      throw std::runtime_error("Communicator: peer session is down");
    }
    return;
  }
  const mem::VirtAddr slot =
      stagingVa_ + static_cast<std::uint64_t>(stagingSlot_) * frameBytes_;
  stagingSlot_ = (stagingSlot_ + 1) % 4;

  std::vector<std::byte> frame(kHeaderBytes + payload.size());
  FrameHeader h;
  h.kind = kind;
  h.tag = tag;
  h.seq = seq;
  h.size = payload.size();
  packHeader(h, frame.data());
  if (!payload.empty()) {
    std::memcpy(frame.data() + kHeaderBytes, payload.data(), payload.size());
  }
  nic_->memory().write(slot, frame);

  VipDescriptor d = VipDescriptor::send(
      slot, poolHandle_, static_cast<std::uint32_t>(frame.size()));
  require(nic_->postSend(peer.vi, &d), "post frame");
  // Completions on this VI may include earlier async isend frames; drain
  // them into their requests until our own descriptor surfaces.
  drainSendCompletions(peer, &d);
}

void Communicator::drainSendCompletions(Peer& peer,
                                        const vipl::VipDescriptor* target) {
  if (config_.recovery) return;  // sessions track their own completions
  for (;;) {
    VipDescriptor* done = nullptr;
    VipResult r;
    if (target != nullptr) {
      r = nic_->pollSend(peer.vi, done);  // must eventually see `target`
    } else {
      r = nic_->sendDone(peer.vi, done);
      if (r == VipResult::VIP_NOT_DONE) return;
    }
    require(r, "send completion");
    if (done == target) return;
    // An async isend frame finished: mark its request, free its slot.
    for (auto& [id, req] : requests_) {
      if (!req.isRecv && !req.done && req.desc.get() == done) {
        req.done = true;
        asyncSlotBusy_[req.slot] = false;
        break;
      }
    }
    if (target == nullptr) continue;
  }
}

void Communicator::send(std::uint32_t dst, int tag,
                        std::span<const std::byte> data) {
  if (dst >= size_ || dst == rank_) {
    throw std::invalid_argument("send: bad destination rank");
  }
  Peer& peer = *peers_[dst];
  if (data.size() <= config_.eagerThreshold) {
    if (!config_.recovery) {
      while (peer.sendCredits == 0) {
        // Progress every channel while stalled: the rank that owes us
        // credits may itself be stalled sending to a third rank, and only
        // global progress breaks such cycles.
        ++creditStalls_;
        progressOrWait();
      }
      --peer.sendCredits;
    }
    sendFrame(dst, kEager, tag, 0, data);
    ++eagerSent_;
    return;
  }

  if (config_.recovery) {
    // No rendezvous dialogue over sessions: the stream is in-order and
    // exactly-once, so the payload simply travels as chunk frames.
    sendChunkFrames(dst, tag, peer.nextSeq++, data);
    ++rndvSent_;
    return;
  }

  // Rendezvous: RTS -> CTS -> payload into the receiver's exact-size
  // descriptor. The payload buffer is registered for the duration of the
  // transfer, like a real MPI rendezvous pins the user buffer.
  const std::uint32_t seq = peer.nextSeq++;
  // The RTS carries the full message size as an 8-byte payload.
  std::array<std::byte, 8> sizeBytes;
  const std::uint64_t msgBytes = data.size();
  std::memcpy(sizeBytes.data(), &msgBytes, 8);
  sendFrame(dst, kRts, tag, seq, sizeBytes);
  waitForCts(dst, seq);

  const mem::VirtAddr stage =
      nic_->memory().alloc(msgBytes, mem::kPageSize);
  mem::MemHandle stageH = 0;
  vipl::VipMemAttributes ma;
  ma.ptag = ptag_;
  require(nic_->registerMem(stage, msgBytes, ma, stageH), "register rndv");
  nic_->memory().write(stage, data);
  // Chunk at the connection's negotiated MaxTransferSize; the receiver
  // computed the same chunking from the RTS size.
  const std::uint64_t mts = peer.bulkVi->negotiatedMts();
  std::uint64_t off = 0;
  while (off < msgBytes) {
    const std::uint64_t chunk = std::min(mts, msgBytes - off);
    VipDescriptor d = VipDescriptor::send(stage + off, stageH,
                                          static_cast<std::uint32_t>(chunk));
    require(nic_->postSend(peer.bulkVi, &d), "post rndv payload");
    VipDescriptor* done = nullptr;
    require(nic_->pollSend(peer.bulkVi, done), "rndv send completion");
    off += chunk;
  }
  require(nic_->deregisterMem(stageH), "deregister rndv");
  ++rndvSent_;
}

void Communicator::sendChunkFrames(std::uint32_t dst, int tag,
                                   std::uint32_t seq,
                                   std::span<const std::byte> data) {
  Peer& peer = *peers_[dst];
  const std::uint64_t total = data.size();
  std::uint64_t off = 0;
  do {
    const std::uint64_t n =
        std::min<std::uint64_t>(config_.eagerThreshold, total - off);
    std::vector<std::byte> frame(kHeaderBytes + n);
    FrameHeader h;
    h.kind = kChunk;
    h.tag = tag;
    h.seq = seq;
    h.size = total;  // every piece carries the full message size
    packHeader(h, frame.data());
    std::memcpy(frame.data() + kHeaderBytes, data.data() + off, n);
    if (!peer.session->send(frame)) {
      throw std::runtime_error("Communicator: peer session is down");
    }
    off += n;
  } while (off < total);
}

Communicator::RequestId Communicator::isend(std::uint32_t dst, int tag,
                                            std::span<const std::byte> data) {
  if (dst >= size_ || dst == rank_) {
    throw std::invalid_argument("isend: bad destination rank");
  }
  if (data.size() > config_.eagerThreshold) {
    throw std::invalid_argument(
        "isend: rendezvous-size message; use the blocking send()");
  }
  Peer& peer = *peers_[dst];
  if (config_.recovery) {
    // The session's replay buffer stages the payload immediately, so the
    // request is complete as soon as the frame is queued.
    sendFrame(dst, kEager, tag, 0, data);
    ++eagerSent_;
    const RequestId id = nextRequest_++;
    RequestState req;
    req.isRecv = false;
    req.peer = dst;
    req.tag = tag;
    req.done = true;
    requests_.emplace(id, std::move(req));
    return id;
  }
  while (peer.sendCredits == 0) {
    ++creditStalls_;
    progressOrWait();
  }
  --peer.sendCredits;

  // Acquire an async staging slot (drain completions if all are busy).
  std::size_t slot = asyncSlotBusy_.size();
  for (;;) {
    for (std::size_t i = 0; i < asyncSlotBusy_.size(); ++i) {
      if (!asyncSlotBusy_[i]) {
        slot = i;
        break;
      }
    }
    if (slot != asyncSlotBusy_.size()) break;
    drainSendCompletions(peer, nullptr);
    progressOrWait();
  }
  asyncSlotBusy_[slot] = true;

  const mem::VirtAddr va =
      asyncStagingVa_ + static_cast<std::uint64_t>(slot) * frameBytes_;
  std::vector<std::byte> frame(kHeaderBytes + data.size());
  FrameHeader h;
  h.kind = kEager;
  h.tag = tag;
  h.size = data.size();
  packHeader(h, frame.data());
  if (!data.empty()) {
    std::memcpy(frame.data() + kHeaderBytes, data.data(), data.size());
  }
  nic_->memory().write(va, frame);

  const RequestId id = nextRequest_++;
  RequestState req;
  req.isRecv = false;
  req.peer = dst;
  req.tag = tag;
  req.slot = static_cast<std::uint32_t>(slot);
  req.desc = std::make_unique<VipDescriptor>(VipDescriptor::send(
      va, poolHandle_, static_cast<std::uint32_t>(frame.size())));
  require(nic_->postSend(peer.vi, req.desc.get()), "post isend");
  ++eagerSent_;
  requests_.emplace(id, std::move(req));
  return id;
}

Communicator::RequestId Communicator::irecv(std::uint32_t src, int tag) {
  if (src >= size_ || src == rank_) {
    throw std::invalid_argument("irecv: bad source rank");
  }
  const RequestId id = nextRequest_++;
  RequestState req;
  req.isRecv = true;
  req.peer = src;
  req.tag = tag;
  // An already-queued message matches immediately.
  Peer& peer = *peers_[src];
  for (auto it = peer.matched.begin(); it != peer.matched.end(); ++it) {
    if (it->tag == tag) {
      req.data = std::move(it->data);
      req.done = true;
      peer.matched.erase(it);
      break;
    }
  }
  if (!req.done) pendingRecvs_.push_back(id);
  requests_.emplace(id, std::move(req));
  return id;
}

bool Communicator::test(RequestId request) {
  auto it = requests_.find(request);
  if (it == requests_.end()) {
    throw std::invalid_argument("test: unknown request");
  }
  if (!it->second.done) {
    progress();
    if (!it->second.isRecv) {
      drainSendCompletions(*peers_[it->second.peer], nullptr);
    }
  }
  return it->second.done;
}

std::vector<std::byte> Communicator::wait(RequestId request) {
  for (;;) {
    {
      auto it = requests_.find(request);
      if (it == requests_.end()) {
        throw std::invalid_argument("wait: unknown request");
      }
      if (it->second.done) {
        std::vector<std::byte> data = std::move(it->second.data);
        requests_.erase(it);
        return data;
      }
      if (!it->second.isRecv) {
        drainSendCompletions(*peers_[it->second.peer], nullptr);
        if (it->second.done) continue;
      }
    }
    progressOrWait();
  }
}

void Communicator::waitAll(std::span<const RequestId> requests) {
  for (const RequestId id : requests) (void)wait(id);
}

std::vector<std::byte> Communicator::sendrecv(std::uint32_t dst, int sendTag,
                                              std::span<const std::byte> data,
                                              std::uint32_t src,
                                              int recvTag) {
  // Post the receive first, then send; blocking send() progresses all
  // channels while stalled, so symmetric exchanges cannot deadlock.
  const RequestId rx = irecv(src, recvTag);
  send(dst, sendTag, data);
  return wait(rx);
}

void Communicator::waitForCts(std::uint32_t dst, std::uint32_t seq) {
  Peer& peer = *peers_[dst];
  for (;;) {
    auto it = std::find(peer.ctsReady.begin(), peer.ctsReady.end(), seq);
    if (it != peer.ctsReady.end()) {
      peer.ctsReady.erase(it);
      return;
    }
    // Progress-all: the receiver may be mid-rendezvous toward a third
    // rank; serving its RTS here keeps multi-party rendezvous deadlock
    // free.
    progressOrWait();
  }
}

std::vector<std::byte> Communicator::recvServing(std::uint32_t src, int tag) {
  if (src >= size_ || src == rank_) {
    throw std::invalid_argument("recvServing: bad source rank");
  }
  Peer& peer = *peers_[src];
  for (;;) {
    for (auto it = peer.matched.begin(); it != peer.matched.end(); ++it) {
      if (it->tag == tag) {
        std::vector<std::byte> data = std::move(it->data);
        peer.matched.erase(it);
        return data;
      }
    }
    // A circuit-broken session never delivers again; surface that rather
    // than wait forever (poll() above may have drained its last frames).
    if (config_.recovery && peer.session->down()) {
      throw std::runtime_error("Communicator: peer session is down");
    }
    // Progress every channel; if idle, wait a polling quantum.
    progressOrWait();
  }
}

std::vector<std::byte> Communicator::recv(std::uint32_t src, int tag) {
  if (src >= size_ || src == rank_) {
    throw std::invalid_argument("recv: bad source rank");
  }
  // recv() always progresses every channel while waiting: matching
  // semantics are unaffected (messages land in per-source queues), and a
  // rank blocked in a collective must keep serving page fetches and other
  // service traffic, or layered protocols can starve each other.
  return recvServing(src, tag);
}

bool Communicator::tryRecvAny(std::uint32_t& src, int& tag,
                              std::vector<std::byte>& out) {
  progress();
  for (std::uint32_t p = 0; p < size_; ++p) {
    if (p == rank_) continue;
    Peer& peer = *peers_[p];
    if (!peer.matched.empty()) {
      src = p;
      tag = peer.matched.front().tag;
      out = std::move(peer.matched.front().data);
      peer.matched.pop_front();
      return true;
    }
  }
  return false;
}

void Communicator::progressOrWait() {
  if (progress()) return;
  if (config_.recovery) {
    // Sessions are signal-driven: park on one live session's inbox instead
    // of spin-advancing. The 1 ms cap bounds how long other peers' traffic
    // (and each session's own reconnect machinery) can go unprogressed.
    for (std::uint32_t p = 0; p < size_; ++p) {
      if (p == rank_) continue;
      session::Session& s = *peers_[p]->session;
      if (s.down()) continue;
      std::vector<std::byte> msg;
      if (s.recv(msg, sim::msec(1))) handleFrame(p, msg);
      return;
    }
    throw std::runtime_error("Communicator: all peer sessions are down");
  }
  env_.self.advance(sim::usec(2), sim::CpuUse::Busy);
}

bool Communicator::progress() {
  bool any = false;
  for (std::uint32_t p = 0; p < size_; ++p) {
    if (p == rank_) continue;
    while (progressPeer(p, /*blockUntilSomething=*/false)) any = true;
  }
  return any;
}

bool Communicator::progressPeer(std::uint32_t peerRank,
                                bool blockUntilSomething) {
  Peer& peer = *peers_[peerRank];
  if (config_.recovery) {
    // Drain the session inbox; poll() also runs the session's own
    // progress, including inline recovery when the connection dropped.
    session::Session& s = *peer.session;
    std::vector<std::byte> msg;
    bool made = false;
    while (s.poll(msg)) {
      handleFrame(peerRank, msg);
      made = true;
    }
    while (blockUntilSomething && !made) {
      if (s.down()) {
        throw std::runtime_error("Communicator: peer session is down");
      }
      if (s.recv(msg, sim::msec(50))) {
        handleFrame(peerRank, msg);
        made = true;
      }
    }
    return made;
  }
  // Cheap emptiness peek (a user-space read of the CQ ring head) before
  // paying for a real CQDone: progress() sweeps every peer constantly and
  // must not burn poll cost on idle channels.
  if (!blockUntilSomething && peer.cq->depth() == 0 &&
      !peer.cq->overflowed()) {
    return false;
  }
  Vi* vi = nullptr;
  bool isRecv = false;
  VipResult r = nic_->cqDone(peer.cq, vi, isRecv);
  if (r == VipResult::VIP_NOT_DONE) {
    if (!blockUntilSomething) return false;
    require(nic_->pollCq(peer.cq, vi, isRecv), "poll peer CQ");
  } else {
    require(r, "peer CQ");
  }
  VipDescriptor* done = nullptr;
  require(nic_->recvDone(vi, done), "peer recv done");

  // Rendezvous payload chunk?
  for (auto& slot : rndvSlots_) {
    if (!slot) continue;
    RndvRecv& pending = slot->second;
    const bool mine =
        std::any_of(pending.descs.begin(), pending.descs.end(),
                    [done](const auto& d) { return d.get() == done; });
    if (!mine) continue;
    if (++pending.completed < pending.descs.size()) return true;
    // Final chunk: the whole message is in place.
    const std::uint32_t srcRank = slot->first;
    RndvRecv rr = std::move(slot->second);
    slot.reset();
    std::vector<std::byte> data(rr.bytes);
    nic_->memory().read(rr.va, data);
    require(nic_->deregisterMem(rr.handle), "deregister rndv recv");
    Peer& sp = *peers_[srcRank];
    (void)sp;
    if (!dispatchService(srcRank, rr.tag, std::move(data))) {
      deliverInbound(srcRank, rr.tag, std::move(data));
    }
    return true;
  }

  // Otherwise it is a pool frame.
  PoolBuffer* buf = nullptr;
  for (PoolBuffer& candidate : peer.recvPool) {
    if (&candidate.desc == done) {
      buf = &candidate;
      break;
    }
  }
  if (buf == nullptr) {
    throw std::logic_error("Communicator: unknown receive completion");
  }
  std::vector<std::byte> frame(done->cs.status.ok() ? done->cs.length : 0);
  if (!frame.empty()) nic_->memory().read(buf->va, frame);
  repostPoolBuffer(peerRank, *buf);
  if (!frame.empty()) handleFrame(peerRank, frame);
  return true;
}

void Communicator::handleFrame(std::uint32_t src,
                               std::span<const std::byte> frame) {
  Peer& peer = *peers_[src];
  const FrameHeader h = unpackHeader(frame.data());
  std::span<const std::byte> payload = frame.subspan(kHeaderBytes);

  switch (h.kind) {
    case kEager: {
      std::vector<std::byte> data(payload.begin(), payload.end());
      if (!dispatchService(src, h.tag, std::move(data))) {
        deliverInbound(src, h.tag, std::move(data));
      }
      // Return eager credits in batches; the count rides in the seq field.
      // (Recovery mode has no credits: the session ring self-replenishes.)
      if (!config_.recovery &&
          ++peer.pendingCreditReturn >= config_.creditsPerPeer / 2) {
        const std::uint32_t returned = peer.pendingCreditReturn;
        peer.pendingCreditReturn = 0;
        ++creditMsgs_;
        sendFrame(src, kCredit, 0, returned, {});
      }
      break;
    }
    case kRts: {
      std::uint64_t msgBytes = 0;
      std::memcpy(&msgBytes, payload.data(), 8);
      // Post exact-size receives for every payload chunk, then clear to
      // send. Chunking mirrors the sender's (negotiated MTS).
      RndvRecv rr;
      rr.bytes = msgBytes;
      rr.tag = h.tag;
      rr.va = nic_->memory().alloc(msgBytes, mem::kPageSize);
      vipl::VipMemAttributes ma;
      ma.ptag = ptag_;
      require(nic_->registerMem(rr.va, msgBytes, ma, rr.handle),
              "register rndv recv");
      const std::uint64_t mts = peer.bulkVi->negotiatedMts();
      std::uint64_t off = 0;
      do {
        const std::uint64_t chunk = std::min(mts, msgBytes - off);
        rr.descs.push_back(std::make_unique<VipDescriptor>(
            VipDescriptor::recv(rr.va + off, rr.handle,
                                static_cast<std::uint32_t>(chunk))));
        require(nic_->postRecv(peer.bulkVi, rr.descs.back().get()),
                "post rndv recv");
        off += chunk;
      } while (off < msgBytes);
      auto freeSlot = std::find_if(rndvSlots_.begin(), rndvSlots_.end(),
                                   [](const auto& s) { return !s; });
      if (freeSlot == rndvSlots_.end()) {
        rndvSlots_.emplace_back();
        freeSlot = rndvSlots_.end() - 1;
      }
      freeSlot->emplace(src, std::move(rr));
      sendFrame(src, kCts, h.tag, h.seq, {});
      break;
    }
    case kCts:
      peer.ctsReady.push_back(h.seq);
      break;
    case kCredit:
      peer.sendCredits += h.seq;  // seq field carries the returned count
      break;
    case kChunk: {
      if (!peer.chunk || peer.chunk->seq != h.seq) {
        peer.chunk.emplace();
        peer.chunk->seq = h.seq;
        peer.chunk->tag = h.tag;
        peer.chunk->total = h.size;
      }
      Peer::ChunkAssembly& acc = *peer.chunk;
      acc.data.insert(acc.data.end(), payload.begin(), payload.end());
      if (acc.data.size() >= acc.total) {
        std::vector<std::byte> data = std::move(acc.data);
        const int tag = acc.tag;
        peer.chunk.reset();
        if (!dispatchService(src, tag, std::move(data))) {
          deliverInbound(src, tag, std::move(data));
        }
      }
      break;
    }
    default:
      throw std::logic_error("Communicator: unknown frame kind");
  }
}

void Communicator::deliverInbound(std::uint32_t src, int tag,
                                  std::vector<std::byte> data) {
  for (auto it = pendingRecvs_.begin(); it != pendingRecvs_.end(); ++it) {
    auto reqIt = requests_.find(*it);
    if (reqIt == requests_.end()) continue;
    RequestState& req = reqIt->second;
    if (req.peer == src && req.tag == tag) {
      req.data = std::move(data);
      req.done = true;
      pendingRecvs_.erase(it);
      return;
    }
  }
  peers_[src]->matched.push_back({tag, std::move(data)});
}

void Communicator::setServiceHandler(ServiceHandler handler) {
  serviceHandler_ = std::move(handler);
}

void Communicator::addServiceHandler(int tag, ServiceHandler handler) {
  if (tag < kServiceTagBase) {
    throw std::invalid_argument("service handlers require service tags");
  }
  if (taggedHandlers_.count(tag) != 0) {
    // Two layers claiming one tag would silently steal each other's
    // traffic; make the collision loud (one Window/DsmRegion per
    // communicator, or distinct tag offsets).
    throw std::logic_error("service tag already registered: " +
                           std::to_string(tag));
  }
  taggedHandlers_[tag] = std::move(handler);
}

bool Communicator::dispatchService(std::uint32_t src, int tag,
                                   std::vector<std::byte>&& data) {
  if (tag < kServiceTagBase) return false;
  auto it = taggedHandlers_.find(tag);
  if (it != taggedHandlers_.end()) {
    it->second(src, tag, std::move(data));
    return true;
  }
  if (serviceHandler_) {
    serviceHandler_(src, tag, std::move(data));
    return true;
  }
  return false;
}

vipl::Vi* Communicator::peerVi(std::uint32_t peer) const {
  // Recovery mode deliberately returns null: layers that post their own
  // RDMA descriptors on this VI would bypass the session's replay/dedup
  // framing and lose exactly-once semantics across reconnects.
  return peers_.at(peer) ? peers_[peer]->vi : nullptr;
}

// ---------------------------------------------------------------------------
// Collectives
// ---------------------------------------------------------------------------

void Communicator::barrier(bool serveAll) {
  if (size_ == 1) return;
  // Dissemination barrier: log2(n) rounds of send/recv at doubling hops.
  for (std::uint32_t step = 1; step < size_; step <<= 1) {
    const std::uint32_t dst = (rank_ + step) % size_;
    const std::uint32_t src = (rank_ + size_ - step) % size_;
    send(dst, kBarrierTag, {});
    if (serveAll) {
      (void)recvServing(src, kBarrierTag);
    } else {
      (void)recv(src, kBarrierTag);
    }
  }
}

void Communicator::broadcast(std::uint32_t root,
                             std::vector<std::byte>& data) {
  if (size_ == 1) return;
  const std::uint32_t vrank = (rank_ + size_ - root) % size_;
  std::uint32_t mask = 1;
  // Receive phase: the set bit determines the parent.
  while (mask < size_) {
    if (vrank & mask) {
      const std::uint32_t parent = ((vrank - mask) + root) % size_;
      data = recv(parent, kBcastTag);
      break;
    }
    mask <<= 1;
  }
  // Forward phase: cover children below the set bit.
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < size_) {
      const std::uint32_t child = (vrank + mask + root) % size_;
      send(child, kBcastTag, data);
    }
    mask >>= 1;
  }
}

double Communicator::allreduceSum(double value) {
  std::array<double, 1> v{value};
  allreduceSum(v);
  return v[0];
}

void Communicator::allreduceSum(std::span<double> values) {
  if (size_ == 1) return;
  // Binomial reduce to rank 0, then broadcast.
  const std::uint32_t vrank = rank_;
  std::uint32_t mask = 1;
  while (mask < size_) {
    if (vrank & mask) {
      const std::uint32_t parent = vrank - mask;
      send(parent, kReduceTag,
           std::as_bytes(std::span<const double>(values.data(),
                                                 values.size())));
      break;
    }
    const std::uint32_t child = vrank + mask;
    if (child < size_) {
      const std::vector<std::byte> partial = recv(child, kReduceTag);
      if (partial.size() != values.size() * sizeof(double)) {
        throw std::logic_error("allreduceSum: partial size mismatch");
      }
      const double* p = reinterpret_cast<const double*>(partial.data());
      for (std::size_t i = 0; i < values.size(); ++i) values[i] += p[i];
    }
    mask <<= 1;
  }
  std::vector<std::byte> result;
  if (rank_ == 0) {
    result.assign(reinterpret_cast<const std::byte*>(values.data()),
                  reinterpret_cast<const std::byte*>(values.data()) +
                      values.size() * sizeof(double));
  }
  broadcast(0, result);
  if (rank_ != 0) {
    std::memcpy(values.data(), result.data(), result.size());
  }
}

}  // namespace vibe::upper::msg
