// Software distributed shared memory over VIPL — the DSM programming
// model from the paper's §5 future work, in the style the authors pursued
// in "Implementing TreadMarks over VIA" (paper ref [7]), reduced to a
// home-based release-consistency protocol:
//
//   * the region is split into pages; each page has a fixed home rank;
//   * reads fetch a page from its home on first use and then hit a local
//     cached copy;
//   * writes update the local copy and are written through to the home as
//     (page, offset, bytes) records;
//   * release() flushes: it confirms every home has applied this rank's
//     writes, then barriers; acquire() invalidates cached remote pages so
//     subsequent reads refetch. barrier() = release + acquire.
//
// Sequentially racing writes to the same page between synchronization
// points are the program's bug, exactly as under release consistency.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "upper/msg/communicator.hpp"

namespace vibe::upper::dsm {

struct DsmConfig {
  std::uint32_t pageBytes = 1024;
  /// Offset added to the region's five service tags; give each region on
  /// a shared communicator its own offset (multiples of 8 are safe).
  int serviceTagOffset = 0;
};

class DsmRegion {
 public:
  /// Collective constructor: all ranks create the region together.
  static std::unique_ptr<DsmRegion> create(msg::Communicator& comm,
                                           std::uint64_t bytes,
                                           const DsmConfig& config = {});

  DsmRegion(const DsmRegion&) = delete;
  DsmRegion& operator=(const DsmRegion&) = delete;

  std::uint64_t size() const { return bytes_; }
  std::uint32_t pageBytes() const { return config_.pageBytes; }
  std::uint32_t pageCount() const { return pages_; }
  /// Fixed page-to-home distribution (round robin over ranks).
  std::uint32_t homeOf(std::uint32_t page) const {
    return page % comm_.size();
  }

  // --- data access ---
  std::vector<std::byte> read(std::uint64_t offset, std::uint64_t len);
  void write(std::uint64_t offset, std::span<const std::byte> data);
  double readDouble(std::uint64_t offset);
  void writeDouble(std::uint64_t offset, double value);

  // --- synchronization (release consistency) ---
  /// Invalidate cached remote pages: subsequent reads see released writes.
  void acquire();
  /// Ensure every home has applied this rank's writes; then barrier.
  void release();
  /// release() + acquire() on all ranks.
  void barrier();

  // --- statistics ---
  std::uint64_t remoteReads() const { return remoteReads_; }
  std::uint64_t cacheHits() const { return cacheHits_; }
  std::uint64_t writeThroughs() const { return writeThroughs_; }

 private:
  DsmRegion(msg::Communicator& comm, std::uint64_t bytes,
            const DsmConfig& config);

  struct CachedPage {
    std::vector<std::byte> data;
    bool valid = false;
  };

  void onService(std::uint32_t src, int tag, std::vector<std::byte> payload);
  /// Local backing store of a home page (this rank must be its home).
  std::span<std::byte> homePage(std::uint32_t page);
  /// Cached copy of a remote page, fetched from its home if needed.
  CachedPage& cachedPage(std::uint32_t page);

  msg::Communicator& comm_;
  DsmConfig config_;
  std::uint64_t bytes_ = 0;
  std::uint32_t pages_ = 0;

  std::vector<std::byte> homeStore_;            // this rank's home pages
  std::unordered_map<std::uint32_t, std::uint32_t> homeIndex_;  // page->slot
  std::unordered_map<std::uint32_t, CachedPage> cache_;
  std::unordered_set<std::uint32_t> dirtyHomes_;  // ranks to flush

  // get/flush reply bookkeeping.
  std::unordered_map<std::uint32_t, std::vector<std::byte>> pageReplies_;
  std::unordered_set<std::uint32_t> flushAcks_;
  std::uint32_t nextToken_ = 1;

  int pageReqTag_ = 0;
  int pageRespTag_ = 0;
  int writeTag_ = 0;
  int flushTag_ = 0;
  int flushAckTag_ = 0;

  std::uint64_t remoteReads_ = 0;
  std::uint64_t cacheHits_ = 0;
  std::uint64_t writeThroughs_ = 0;
};

}  // namespace vibe::upper::dsm
