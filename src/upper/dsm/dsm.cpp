#include "upper/dsm/dsm.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace vibe::upper::dsm {

namespace {

constexpr int kPageReqBase = msg::Communicator::kServiceTagBase + 16;

template <typename T>
void append(std::vector<std::byte>& out, const T& value) {
  const auto* p = reinterpret_cast<const std::byte*>(&value);
  out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
T consume(std::span<const std::byte>& in) {
  T value;
  std::memcpy(&value, in.data(), sizeof(T));
  in = in.subspan(sizeof(T));
  return value;
}

}  // namespace

std::unique_ptr<DsmRegion> DsmRegion::create(msg::Communicator& comm,
                                             std::uint64_t bytes,
                                             const DsmConfig& config) {
  auto region =
      std::unique_ptr<DsmRegion>(new DsmRegion(comm, bytes, config));
  comm.barrier();  // everyone's handlers are registered before first use
  return region;
}

DsmRegion::DsmRegion(msg::Communicator& comm, std::uint64_t bytes,
                     const DsmConfig& config)
    : comm_(comm), config_(config), bytes_(bytes) {
  if (bytes == 0 || config_.pageBytes == 0) {
    throw std::invalid_argument("DsmRegion: empty region or page");
  }
  pages_ = static_cast<std::uint32_t>(
      (bytes + config_.pageBytes - 1) / config_.pageBytes);
  // Allocate backing store for the pages homed here (zero-initialized).
  std::uint32_t slot = 0;
  for (std::uint32_t p = 0; p < pages_; ++p) {
    if (homeOf(p) == comm_.rank()) homeIndex_[p] = slot++;
  }
  homeStore_.assign(static_cast<std::size_t>(slot) * config_.pageBytes,
                    std::byte{0});
  pageReqTag_ = kPageReqBase + config_.serviceTagOffset;
  pageRespTag_ = pageReqTag_ + 1;
  writeTag_ = pageReqTag_ + 2;
  flushTag_ = pageReqTag_ + 3;
  flushAckTag_ = pageReqTag_ + 4;
  for (const int tag :
       {pageReqTag_, pageRespTag_, writeTag_, flushTag_, flushAckTag_}) {
    comm_.addServiceHandler(
        tag, [this](std::uint32_t src, int t, std::vector<std::byte> data) {
          onService(src, t, std::move(data));
        });
  }
}

std::span<std::byte> DsmRegion::homePage(std::uint32_t page) {
  auto it = homeIndex_.find(page);
  if (it == homeIndex_.end()) {
    throw std::logic_error("DsmRegion: not the home of this page");
  }
  return std::span<std::byte>(
      homeStore_.data() +
          static_cast<std::size_t>(it->second) * config_.pageBytes,
      config_.pageBytes);
}

void DsmRegion::onService(std::uint32_t src, int tag,
                          std::vector<std::byte> payload) {
  std::span<const std::byte> in(payload);
  if (tag == pageReqTag_) {
    const auto page = consume<std::uint32_t>(in);
    const auto token = consume<std::uint32_t>(in);
    std::vector<std::byte> reply;
    append(reply, token);
    const auto data = homePage(page);
    reply.insert(reply.end(), data.begin(), data.end());
    comm_.send(src, pageRespTag_, reply);
  } else if (tag == pageRespTag_) {
    const auto token = consume<std::uint32_t>(in);
    pageReplies_[token].assign(in.begin(), in.end());
  } else if (tag == writeTag_) {
    const auto page = consume<std::uint32_t>(in);
    const auto off = consume<std::uint32_t>(in);
    auto data = homePage(page);
    if (off + in.size() > data.size()) {
      throw std::out_of_range("DsmRegion: write record escapes page");
    }
    std::copy(in.begin(), in.end(), data.begin() + off);
  } else if (tag == flushTag_) {
    // All prior write records from `src` arrived before this on the same
    // FIFO channel and are already applied: acknowledge.
    const auto token = consume<std::uint32_t>(in);
    std::vector<std::byte> reply;
    append(reply, token);
    comm_.send(src, flushAckTag_, reply);
  } else if (tag == flushAckTag_) {
    flushAcks_.insert(consume<std::uint32_t>(in));
  } else {
    throw std::logic_error("DsmRegion: unknown service tag");
  }
}

DsmRegion::CachedPage& DsmRegion::cachedPage(std::uint32_t page) {
  CachedPage& entry = cache_[page];
  if (entry.valid) {
    ++cacheHits_;
    return entry;
  }
  const std::uint32_t home = homeOf(page);
  const std::uint32_t token = nextToken_++;
  std::vector<std::byte> req;
  append(req, page);
  append(req, token);
  comm_.send(home, pageReqTag_, req);
  // Progress-all while waiting: the home may itself be waiting on a page
  // from us (or from a third rank), so serving incoming requests here is
  // what breaks request cycles.
  while (pageReplies_.find(token) == pageReplies_.end()) {
    comm_.progressOrWait();
  }
  entry.data = std::move(pageReplies_[token]);
  pageReplies_.erase(token);
  entry.valid = true;
  ++remoteReads_;
  return entry;
}

std::vector<std::byte> DsmRegion::read(std::uint64_t offset,
                                       std::uint64_t len) {
  if (offset + len > bytes_) throw std::out_of_range("DsmRegion: read");
  std::vector<std::byte> out(len);
  std::uint64_t done = 0;
  while (done < len) {
    const std::uint64_t pos = offset + done;
    const auto page = static_cast<std::uint32_t>(pos / config_.pageBytes);
    const auto inPage = static_cast<std::uint32_t>(pos % config_.pageBytes);
    const std::uint64_t chunk =
        std::min<std::uint64_t>(config_.pageBytes - inPage, len - done);
    if (homeOf(page) == comm_.rank()) {
      const auto data = homePage(page);
      std::copy_n(data.begin() + inPage, chunk, out.begin() + done);
    } else {
      const CachedPage& entry = cachedPage(page);
      std::copy_n(entry.data.begin() + inPage, chunk, out.begin() + done);
    }
    done += chunk;
  }
  return out;
}

void DsmRegion::write(std::uint64_t offset, std::span<const std::byte> data) {
  if (offset + data.size() > bytes_) throw std::out_of_range("DsmRegion: write");
  std::uint64_t done = 0;
  while (done < data.size()) {
    const std::uint64_t pos = offset + done;
    const auto page = static_cast<std::uint32_t>(pos / config_.pageBytes);
    const auto inPage = static_cast<std::uint32_t>(pos % config_.pageBytes);
    const std::uint64_t chunk = std::min<std::uint64_t>(
        config_.pageBytes - inPage, data.size() - done);
    const auto slice = data.subspan(done, chunk);
    if (homeOf(page) == comm_.rank()) {
      auto store = homePage(page);
      std::copy(slice.begin(), slice.end(), store.begin() + inPage);
    } else {
      // Update the local copy (write-allocate) and write through to home.
      CachedPage& entry = cachedPage(page);
      std::copy(slice.begin(), slice.end(), entry.data.begin() + inPage);
      std::vector<std::byte> record;
      append(record, page);
      append(record, inPage);
      record.insert(record.end(), slice.begin(), slice.end());
      comm_.send(homeOf(page), writeTag_, record);
      dirtyHomes_.insert(homeOf(page));
      ++writeThroughs_;
    }
    done += chunk;
  }
}

double DsmRegion::readDouble(std::uint64_t offset) {
  const auto b = read(offset, sizeof(double));
  double v;
  std::memcpy(&v, b.data(), sizeof(double));
  return v;
}

void DsmRegion::writeDouble(std::uint64_t offset, double value) {
  write(offset, {reinterpret_cast<const std::byte*>(&value), sizeof(double)});
}

void DsmRegion::acquire() {
  for (auto& [page, entry] : cache_) entry.valid = false;
}

void DsmRegion::release() {
  // Confirm that every home this rank wrote to has applied the records
  // (the flush rides behind them on the same FIFO channel), then barrier.
  std::unordered_map<std::uint32_t, std::uint32_t> pendingTokens;
  for (const std::uint32_t home : dirtyHomes_) {
    const std::uint32_t token = nextToken_++;
    std::vector<std::byte> req;
    append(req, token);
    comm_.send(home, flushTag_, req);
    pendingTokens.emplace(home, token);
  }
  dirtyHomes_.clear();
  // Every rank is (eventually) inside release() spinning progress-all, so
  // the flushes and their acks make global progress.
  for (;;) {
    bool allAcked = true;
    for (const auto& [home, token] : pendingTokens) {
      if (flushAcks_.find(token) == flushAcks_.end()) {
        allAcked = false;
        break;
      }
    }
    if (allAcked) break;
    comm_.progressOrWait();
  }
  for (const auto& [home, token] : pendingTokens) flushAcks_.erase(token);
  comm_.barrier(/*serveAll=*/true);
}

void DsmRegion::barrier() {
  release();
  acquire();
}

}  // namespace vibe::upper::dsm
