// Cluster: a ready-to-use simulated testbed — engine + SAN fabric + one
// VIA provider stack per host — assembled from a NicProfile. Micro-
// benchmarks run node programs (lambdas) as cooperative processes on it.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fabric/network.hpp"
#include "nic/profile.hpp"
#include "simcore/engine.hpp"
#include "simcore/pdes.hpp"
#include "simcore/process.hpp"
#include "simcore/trace.hpp"
#include "vipl/provider.hpp"

namespace vibe::fault {
class FaultInjector;
}

namespace vibe::obs {
class MetricsRegistry;
class SpanProfiler;
class TimeSeriesSampler;
}

namespace vibe::suite {

struct ClusterConfig {
  nic::NicProfile profile;
  std::uint32_t nodes = 2;
  std::uint64_t seed = 42;
  double lossRate = 0.0;  // injected Bernoulli frame loss on every link

  // Two-level topology (0 = the paper's single switch): hosts per leaf
  // switch, with leaf<->root trunks of `trunkMBps` (0 = same as the link).
  std::uint32_t nodesPerSwitch = 0;
  double trunkMBps = 0.0;

  // k-ary fat-tree fabric (0 = star/tree above; takes precedence over
  // nodesPerSwitch). k must be even; nodes <= k^3/4. Inter-switch links
  // use trunkMBps when set, the host-link rate otherwise.
  std::uint32_t fatTreeK = 0;
  // Finite per-port switch output buffers, in frames (0 = unbounded).
  std::uint32_t switchBufferFrames = 0;

  // Conservative-PDES sharding: 0 = the classic single serial engine.
  // >= 1 builds the whole stack on a hosted ShardedEngine — one PDES
  // domain per switch, each node's NIC + host program placed in its edge
  // switch's domain, cross-domain frames paying the fabric hop lookahead
  // — with this many worker shards (clamped to the domain count; 1 runs
  // the identical window loop inline). Per-domain event schedules, and
  // therefore every stat, digest, and table, are byte-identical at any
  // value >= 1; benches resolve VIBE_SIM_SHARDS into this field.
  std::uint32_t simShards = 0;

  // Observability attachments (all optional; null = zero-cost disabled).
  // Set before handing the config to a runner that builds its own Cluster
  // (e.g. runPingPong); the Cluster constructor wires them through the
  // stack the same way setTracer/setSpanProfiler do.
  sim::Tracer* tracer = nullptr;
  obs::SpanProfiler* spans = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  // Time-series sampler: when set, the Cluster registers aggregate queue-
  // depth probes (NIC tx/rx backlog, CQ depth, link + switch occupancy)
  // and drives the sampler at `samplePeriod` during run(). Null = no
  // probes registered, no observer attached, zero cost.
  obs::TimeSeriesSampler* sampler = nullptr;
  sim::Duration samplePeriod = 0;  // required > 0 when sampler is set
};

/// Per-node view handed to a node program.
struct NodeEnv {
  std::uint32_t nodeId;
  vipl::Provider& nic;
  sim::Process& self;
  sim::Engine& engine;

  sim::SimTime now() const { return engine.now(); }
  sim::Duration cpuBusy() const { return self.cpuBusy(); }
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);
  ~Cluster();  // out-of-line: shadow profilers are forward-declared here

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// The single serial engine (throws when sharded: there is no single
  /// engine, use now()/shardedEngine()/nodeEngine()).
  sim::Engine& engine();
  /// True when the cluster runs on a hosted ShardedEngine (simShards >=
  /// 1 in the config).
  bool sharded() const { return pdes_ != nullptr; }
  /// The hosted PDES engine (throws when serial).
  sim::ShardedEngine& shardedEngine();
  /// The engine node `i`'s NIC, programs, and timers run on: the serial
  /// engine, or the node's domain engine under sharding.
  sim::Engine& nodeEngine(std::uint32_t i);
  /// Virtual time of the cluster: Engine::now() serially, the max over
  /// domain clocks under sharding. Use instead of engine().now() in
  /// mode-agnostic harness code.
  sim::SimTime now() const;
  fabric::Network& network() { return *net_; }
  vipl::Provider& node(std::uint32_t i) { return *providers_.at(i); }
  std::uint32_t nodeCount() const { return config_.nodes; }
  const ClusterConfig& config() const { return config_; }

  /// Attaches one tracer to every node's NIC device (and detaches with
  /// nullptr). Chaos/invariant harnesses consume the merged stream.
  void setTracer(sim::Tracer* tracer);
  sim::Tracer* tracer() const { return tracer_; }

  /// Attaches one span profiler to every provider (Post spans), NIC device
  /// (Doorbell/NicTx/Rx/Reassembly/Completion/EndToEnd), and the network
  /// (Wire). nullptr detaches everywhere.
  void setSpanProfiler(obs::SpanProfiler* spans);
  obs::SpanProfiler* spanProfiler() const { return spans_; }

  /// Registers a metrics registry; run() publishes per-node NIC and
  /// fabric counters into it (delta-based, so repeated run() calls and
  /// multiple clusters sharing one registry accumulate correctly).
  void setMetricsRegistry(obs::MetricsRegistry* metrics) {
    metrics_ = metrics;
  }
  obs::MetricsRegistry* metricsRegistry() const { return metrics_; }

  /// Publishes NIC/fabric counter deltas since the last publish into the
  /// registry (no-op when none is attached). Called at the end of run();
  /// exposed for programs that inspect metrics mid-simulation.
  void publishStats();

  /// Registers a time-series sampler: aggregate queue-depth probes are
  /// added once (NIC tx/rx backlog summed over nodes, total CQ depth,
  /// host-link occupancy, switch buffer depth/drops) and run() attaches
  /// the sampler to the engine at `period` cadence for its duration.
  /// Call once per sampler; the sampler must outlive the cluster's use.
  void setSampler(obs::TimeSeriesSampler* sampler, sim::Duration period);
  obs::TimeSeriesSampler* sampler() const { return sampler_; }

  /// Records the fault injector driving this cluster (called by
  /// fault::FaultInjector::arm). Purely an attachment registry — the
  /// injector acts on the network links directly.
  void attachFaultInjector(fault::FaultInjector* inj) { injector_ = inj; }
  fault::FaultInjector* faultInjector() const { return injector_; }

  /// Runs one program per entry (program i on node i) to completion.
  /// Throws if the simulation deadlocks or a program throws.
  void run(std::vector<std::function<void(NodeEnv&)>> programs);

 private:
  /// Replays the per-node shadow trace streams into the user tracer in
  /// (time, node, record) order — an interleaving that is a function of
  /// the simulation alone, so it is identical at any shard count.
  void replayShadowTraces();
  /// Folds the per-domain shadow span profilers into the user profiler
  /// in domain order, then clears them for the next run.
  void mergeShadowSpans();

  ClusterConfig config_;
  sim::Engine engine_;
  std::unique_ptr<sim::ShardedEngine> pdes_;  // sharded mode only
  std::shared_ptr<vipl::NameService> ns_;
  std::unique_ptr<fabric::Network> net_;
  std::vector<std::unique_ptr<vipl::Provider>> providers_;
  // Sharded observability shadows: every tracer/span emit must stay
  // domain-local during a window, so devices write into per-node tracers
  // and per-domain span profilers, merged deterministically after run().
  std::vector<std::unique_ptr<sim::Tracer>> shadowTracers_;
  std::vector<std::vector<sim::TraceRecord>> shadowTraceLogs_;
  std::vector<std::unique_ptr<obs::SpanProfiler>> shadowSpans_;
  sim::Tracer* tracer_ = nullptr;
  obs::SpanProfiler* spans_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TimeSeriesSampler* sampler_ = nullptr;
  sim::Duration samplePeriod_ = 0;
  fault::FaultInjector* injector_ = nullptr;
  // Counter snapshots from the last publishStats() (delta publishing).
  std::vector<nic::NicStats> lastPublished_;
  std::uint64_t lastFramesDropped_ = 0;
  std::uint64_t lastFramesCorrupted_ = 0;
  std::uint64_t lastForwarded_ = 0;
  std::uint64_t lastSwitchDrops_ = 0;
};

}  // namespace vibe::suite
