// Cluster: a ready-to-use simulated testbed — engine + SAN fabric + one
// VIA provider stack per host — assembled from a NicProfile. Micro-
// benchmarks run node programs (lambdas) as cooperative processes on it.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fabric/network.hpp"
#include "nic/profile.hpp"
#include "simcore/engine.hpp"
#include "simcore/process.hpp"
#include "simcore/trace.hpp"
#include "vipl/provider.hpp"

namespace vibe::fault {
class FaultInjector;
}

namespace vibe::obs {
class MetricsRegistry;
class SpanProfiler;
class TimeSeriesSampler;
}

namespace vibe::suite {

struct ClusterConfig {
  nic::NicProfile profile;
  std::uint32_t nodes = 2;
  std::uint64_t seed = 42;
  double lossRate = 0.0;  // injected Bernoulli frame loss on every link

  // Two-level topology (0 = the paper's single switch): hosts per leaf
  // switch, with leaf<->root trunks of `trunkMBps` (0 = same as the link).
  std::uint32_t nodesPerSwitch = 0;
  double trunkMBps = 0.0;

  // k-ary fat-tree fabric (0 = star/tree above; takes precedence over
  // nodesPerSwitch). k must be even; nodes <= k^3/4. Inter-switch links
  // use trunkMBps when set, the host-link rate otherwise.
  std::uint32_t fatTreeK = 0;
  // Finite per-port switch output buffers, in frames (0 = unbounded).
  std::uint32_t switchBufferFrames = 0;

  // Observability attachments (all optional; null = zero-cost disabled).
  // Set before handing the config to a runner that builds its own Cluster
  // (e.g. runPingPong); the Cluster constructor wires them through the
  // stack the same way setTracer/setSpanProfiler do.
  sim::Tracer* tracer = nullptr;
  obs::SpanProfiler* spans = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  // Time-series sampler: when set, the Cluster registers aggregate queue-
  // depth probes (NIC tx/rx backlog, CQ depth, link + switch occupancy)
  // and drives the sampler at `samplePeriod` during run(). Null = no
  // probes registered, no observer attached, zero cost.
  obs::TimeSeriesSampler* sampler = nullptr;
  sim::Duration samplePeriod = 0;  // required > 0 when sampler is set
};

/// Per-node view handed to a node program.
struct NodeEnv {
  std::uint32_t nodeId;
  vipl::Provider& nic;
  sim::Process& self;
  sim::Engine& engine;

  sim::SimTime now() const { return engine.now(); }
  sim::Duration cpuBusy() const { return self.cpuBusy(); }
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  sim::Engine& engine() { return engine_; }
  fabric::Network& network() { return *net_; }
  vipl::Provider& node(std::uint32_t i) { return *providers_.at(i); }
  std::uint32_t nodeCount() const { return config_.nodes; }
  const ClusterConfig& config() const { return config_; }

  /// Attaches one tracer to every node's NIC device (and detaches with
  /// nullptr). Chaos/invariant harnesses consume the merged stream.
  void setTracer(sim::Tracer* tracer);
  sim::Tracer* tracer() const { return tracer_; }

  /// Attaches one span profiler to every provider (Post spans), NIC device
  /// (Doorbell/NicTx/Rx/Reassembly/Completion/EndToEnd), and the network
  /// (Wire). nullptr detaches everywhere.
  void setSpanProfiler(obs::SpanProfiler* spans);
  obs::SpanProfiler* spanProfiler() const { return spans_; }

  /// Registers a metrics registry; run() publishes per-node NIC and
  /// fabric counters into it (delta-based, so repeated run() calls and
  /// multiple clusters sharing one registry accumulate correctly).
  void setMetricsRegistry(obs::MetricsRegistry* metrics) {
    metrics_ = metrics;
  }
  obs::MetricsRegistry* metricsRegistry() const { return metrics_; }

  /// Publishes NIC/fabric counter deltas since the last publish into the
  /// registry (no-op when none is attached). Called at the end of run();
  /// exposed for programs that inspect metrics mid-simulation.
  void publishStats();

  /// Registers a time-series sampler: aggregate queue-depth probes are
  /// added once (NIC tx/rx backlog summed over nodes, total CQ depth,
  /// host-link occupancy, switch buffer depth/drops) and run() attaches
  /// the sampler to the engine at `period` cadence for its duration.
  /// Call once per sampler; the sampler must outlive the cluster's use.
  void setSampler(obs::TimeSeriesSampler* sampler, sim::Duration period);
  obs::TimeSeriesSampler* sampler() const { return sampler_; }

  /// Records the fault injector driving this cluster (called by
  /// fault::FaultInjector::arm). Purely an attachment registry — the
  /// injector acts on the network links directly.
  void attachFaultInjector(fault::FaultInjector* inj) { injector_ = inj; }
  fault::FaultInjector* faultInjector() const { return injector_; }

  /// Runs one program per entry (program i on node i) to completion.
  /// Throws if the simulation deadlocks or a program throws.
  void run(std::vector<std::function<void(NodeEnv&)>> programs);

 private:
  ClusterConfig config_;
  sim::Engine engine_;
  std::shared_ptr<vipl::NameService> ns_;
  std::unique_ptr<fabric::Network> net_;
  std::vector<std::unique_ptr<vipl::Provider>> providers_;
  sim::Tracer* tracer_ = nullptr;
  obs::SpanProfiler* spans_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TimeSeriesSampler* sampler_ = nullptr;
  sim::Duration samplePeriod_ = 0;
  fault::FaultInjector* injector_ = nullptr;
  // Counter snapshots from the last publishStats() (delta publishing).
  std::vector<nic::NicStats> lastPublished_;
  std::uint64_t lastFramesDropped_ = 0;
  std::uint64_t lastFramesCorrupted_ = 0;
  std::uint64_t lastForwarded_ = 0;
  std::uint64_t lastSwitchDrops_ = 0;
};

}  // namespace vibe::suite
