// Cluster: a ready-to-use simulated testbed — engine + SAN fabric + one
// VIA provider stack per host — assembled from a NicProfile. Micro-
// benchmarks run node programs (lambdas) as cooperative processes on it.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fabric/network.hpp"
#include "nic/profile.hpp"
#include "simcore/engine.hpp"
#include "simcore/process.hpp"
#include "simcore/trace.hpp"
#include "vipl/provider.hpp"

namespace vibe::fault {
class FaultInjector;
}

namespace vibe::suite {

struct ClusterConfig {
  nic::NicProfile profile;
  std::uint32_t nodes = 2;
  std::uint64_t seed = 42;
  double lossRate = 0.0;  // injected Bernoulli frame loss on every link

  // Two-level topology (0 = the paper's single switch): hosts per leaf
  // switch, with leaf<->root trunks of `trunkMBps` (0 = same as the link).
  std::uint32_t nodesPerSwitch = 0;
  double trunkMBps = 0.0;
};

/// Per-node view handed to a node program.
struct NodeEnv {
  std::uint32_t nodeId;
  vipl::Provider& nic;
  sim::Process& self;
  sim::Engine& engine;

  sim::SimTime now() const { return engine.now(); }
  sim::Duration cpuBusy() const { return self.cpuBusy(); }
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  sim::Engine& engine() { return engine_; }
  fabric::Network& network() { return *net_; }
  vipl::Provider& node(std::uint32_t i) { return *providers_.at(i); }
  std::uint32_t nodeCount() const { return config_.nodes; }
  const ClusterConfig& config() const { return config_; }

  /// Attaches one tracer to every node's NIC device (and detaches with
  /// nullptr). Chaos/invariant harnesses consume the merged stream.
  void setTracer(sim::Tracer* tracer);
  sim::Tracer* tracer() const { return tracer_; }

  /// Records the fault injector driving this cluster (called by
  /// fault::FaultInjector::arm). Purely an attachment registry — the
  /// injector acts on the network links directly.
  void attachFaultInjector(fault::FaultInjector* inj) { injector_ = inj; }
  fault::FaultInjector* faultInjector() const { return injector_; }

  /// Runs one program per entry (program i on node i) to completion.
  /// Throws if the simulation deadlocks or a program throws.
  void run(std::vector<std::function<void(NodeEnv&)>> programs);

 private:
  ClusterConfig config_;
  sim::Engine engine_;
  std::shared_ptr<vipl::NameService> ns_;
  std::unique_ptr<fabric::Network> net_;
  std::vector<std::unique_ptr<vipl::Provider>> providers_;
  sim::Tracer* tracer_ = nullptr;
  fault::FaultInjector* injector_ = nullptr;
};

}  // namespace vibe::suite
