#include "vibe/cluster.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "fabric/domain.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/timeseries.hpp"

namespace vibe::suite {

Cluster::Cluster(const ClusterConfig& config) : config_(config) {
  ns_ = std::make_shared<vipl::NameService>();

  fabric::NetworkParams np;
  np.nodes = config_.nodes;
  np.link.bandwidthMBps = config_.profile.linkMBps;
  np.link.propagation = config_.profile.linkPropagation;
  np.link.headerBytes = config_.profile.linkHeaderBytes;
  np.link.lossRate = config_.lossRate;
  np.switchLatency = config_.profile.switchLatency;
  np.seed = config_.seed;
  if (config_.nodesPerSwitch != 0 || config_.fatTreeK != 0) {
    np.nodesPerSwitch = config_.nodesPerSwitch;
    np.fatTreeK = config_.fatTreeK;
    np.trunk = np.link;
    if (config_.trunkMBps > 0.0) np.trunk.bandwidthMBps = config_.trunkMBps;
    np.rootSwitchLatency = config_.profile.switchLatency;
  }
  np.switchBufferFrames = config_.switchBufferFrames;
  if (config_.simShards > 0) {
    // Hosted PDES: one domain per switch, windows bounded by the minimum
    // inter-switch hop (header serialization + propagation). Every
    // shard-count value runs the same per-domain schedules; simShards
    // only chooses how many worker threads execute them.
    const fabric::TopologySpec spec = fabric::Network::specFor(np);
    sim::EngineConfig ec;
    ec.domains = fabric::stackDomainCount(spec);
    ec.lookahead = fabric::hopLookahead(spec);
    ec.shards = config_.simShards;
    ec.hostEngines = true;
    pdes_ = std::make_unique<sim::ShardedEngine>(ec);
    net_ = std::make_unique<fabric::Network>(*pdes_, np);
  } else {
    net_ = std::make_unique<fabric::Network>(engine_, np);
  }

  providers_.reserve(config_.nodes);
  for (std::uint32_t n = 0; n < config_.nodes; ++n) {
    providers_.push_back(std::make_unique<vipl::Provider>(
        nodeEngine(n), *net_, n, config_.profile, ns_,
        "node" + std::to_string(n)));
  }

  // Config-carried observability attachments (used by runners that build
  // the Cluster internally). All default to null = disabled.
  if (config_.tracer != nullptr) setTracer(config_.tracer);
  if (config_.spans != nullptr) setSpanProfiler(config_.spans);
  if (config_.metrics != nullptr) setMetricsRegistry(config_.metrics);
  if (config_.sampler != nullptr) {
    setSampler(config_.sampler, config_.samplePeriod);
  }
}

Cluster::~Cluster() = default;

sim::Engine& Cluster::engine() {
  if (pdes_ != nullptr) {
    throw sim::SimError(
        "Cluster::engine: sharded cluster has no single engine; use now(), "
        "shardedEngine(), or nodeEngine()");
  }
  return engine_;
}

sim::ShardedEngine& Cluster::shardedEngine() {
  if (pdes_ == nullptr) {
    throw sim::SimError("Cluster::shardedEngine: cluster is not sharded "
                        "(config.simShards == 0)");
  }
  return *pdes_;
}

sim::Engine& Cluster::nodeEngine(std::uint32_t i) {
  if (pdes_ == nullptr) return engine_;
  fabric::Topology& topo = net_->topology();
  return topo.engineForDomain(topo.hostDomain(i));
}

sim::SimTime Cluster::now() const {
  return pdes_ != nullptr ? pdes_->maxNow() : engine_.now();
}

void Cluster::setSampler(obs::TimeSeriesSampler* sampler,
                         sim::Duration period) {
  if (sampler == nullptr) {
    sampler_ = nullptr;
    return;
  }
  if (period <= 0) {
    throw sim::SimError("Cluster::setSampler: samplePeriod must be > 0");
  }
  if (sampler_ != nullptr) {
    throw sim::SimError("Cluster::setSampler: a sampler is already set "
                        "(probes register once)");
  }
  sampler_ = sampler;
  samplePeriod_ = period;
  sampler_->setPeriod(period);
  if (pdes_ != nullptr) {
    // Sharded runs have no engine observer to attach to; instead every
    // window end is clamped to the sample grid and the sampler flushes
    // from the single-threaded barrier step, where probes may safely
    // read any domain's state (exactly what a serial TimeObserver sees).
    pdes_->setBoundaryHook(period, [this](sim::SimTime t) {
      sampler_->flushUntil(t);
    });
  }
  // Aggregate probes: sums over nodes, so the series count stays O(1)
  // whether the cluster has 2 nodes or 1024. Probes only read.
  sampler_->addProbe("nic/tx_backlog", [this](sim::SimTime) {
    std::size_t n = 0;
    for (auto& p : providers_) n += p->device().txBacklog();
    return static_cast<double>(n);
  });
  sampler_->addProbe("nic/rx_backlog", [this](sim::SimTime) {
    std::size_t n = 0;
    for (auto& p : providers_) n += p->device().rxBacklog();
    return static_cast<double>(n);
  });
  sampler_->addProbe("nic/cq_depth", [this](sim::SimTime) {
    std::size_t n = 0;
    for (auto& p : providers_) n += p->cqDepthTotal();
    return static_cast<double>(n);
  });
  sampler_->addProbe("fabric/host_link_frames", [this](sim::SimTime at) {
    std::uint64_t n = 0;
    for (std::uint32_t i = 0; i < config_.nodes; ++i) {
      n += net_->uplink(i).queuedFrames(at);
      n += net_->downlink(i).queuedFrames(at);
    }
    return static_cast<double>(n);
  });
  sampler_->addProbe("fabric/switch_queue_frames", [this](sim::SimTime at) {
    std::uint64_t n = 0;
    for (const auto& sw : net_->topology().switches()) {
      for (std::uint32_t i = 0; i < sw->portCount(); ++i) {
        const fabric::Switch::Port& port = sw->port(i);
        if (port.out != nullptr) n += port.out->queuedFrames(at);
      }
    }
    return static_cast<double>(n);
  });
  sampler_->addProbe("fabric/switch_buffer_drops", [this](sim::SimTime) {
    return static_cast<double>(net_->switchBufferDrops());
  });
}

void Cluster::setSpanProfiler(obs::SpanProfiler* spans) {
  spans_ = spans;
  if (pdes_ == nullptr) {
    for (auto& p : providers_) p->setSpanProfiler(spans);
    net_->setSpanProfiler(spans);
    return;
  }
  if (spans == nullptr) {
    for (auto& p : providers_) p->setSpanProfiler(nullptr);
    net_->setSpanProfiler(nullptr);
    shadowSpans_.clear();
    return;
  }
  // Per-domain shadows: each provider and switch emits into its own
  // domain's profiler (single-writer during a window); run() folds them
  // into the user profiler in domain order, which makes the merged
  // histograms and event buffer shard-count independent.
  fabric::Topology& topo = net_->topology();
  const std::uint32_t doms = topo.domainCount();
  shadowSpans_.clear();
  shadowSpans_.reserve(doms);
  std::vector<obs::SpanProfiler*> byDomain(doms);
  for (std::uint32_t d = 0; d < doms; ++d) {
    auto sp = std::make_unique<obs::SpanProfiler>();
    sp->setKeepEvents(true);  // mergeFrom copies events if the user keeps
    byDomain[d] = sp.get();
    shadowSpans_.push_back(std::move(sp));
  }
  for (std::uint32_t n = 0; n < config_.nodes; ++n) {
    providers_[n]->setSpanProfiler(byDomain[topo.hostDomain(n)]);
  }
  topo.setDomainSpanProfilers(byDomain);
}

void Cluster::mergeShadowSpans() {
  if (spans_ == nullptr || shadowSpans_.empty()) return;
  for (auto& sp : shadowSpans_) {
    spans_->mergeFrom(*sp);
    sp->clear();  // repeated run() calls merge only the new spans
  }
}

void Cluster::publishStats() {
  if (metrics_ == nullptr) return;
  obs::MetricsRegistry& m = *metrics_;
  lastPublished_.resize(providers_.size());
  for (std::uint32_t n = 0; n < providers_.size(); ++n) {
    const nic::NicStats& s = providers_[n]->device().stats();
    nic::NicStats& prev = lastPublished_[n];
    const std::string scope = "node" + std::to_string(n);
    auto pub = [&](const char* name, std::uint64_t cur, std::uint64_t& last) {
      if (cur > last) {
        m.counter(obs::scoped(scope, name)).add(cur - last);
      }
      last = cur;
    };
    pub("nic.sends_posted", s.sendsPosted, prev.sendsPosted);
    pub("nic.recvs_posted", s.recvsPosted, prev.recvsPosted);
    pub("nic.frags_tx", s.fragsTx, prev.fragsTx);
    pub("nic.frags_rx", s.fragsRx, prev.fragsRx);
    pub("nic.bytes_tx", s.bytesTx, prev.bytesTx);
    pub("nic.bytes_rx", s.bytesRx, prev.bytesRx);
    pub("nic.acks_tx", s.acksTx, prev.acksTx);
    pub("nic.acks_rx", s.acksRx, prev.acksRx);
    pub("nic.retransmits", s.retransmits, prev.retransmits);
    pub("nic.rx_corrupted", s.rxCorrupted, prev.rxCorrupted);
    pub("nic.rx_dropped_no_descriptor", s.rxDroppedNoDescriptor,
        prev.rxDroppedNoDescriptor);
    pub("nic.rx_dropped_bad_endpoint", s.rxDroppedBadEndpoint,
        prev.rxDroppedBadEndpoint);
    pub("nic.rx_out_of_order_dropped", s.rxOutOfOrderDropped,
        prev.rxOutOfOrderDropped);
    pub("nic.protocol_errors", s.protocolErrors, prev.protocolErrors);
  }
  auto pubNet = [&](const char* name, std::uint64_t cur,
                    std::uint64_t& last) {
    if (cur > last) m.counter(obs::scoped("fabric", name)).add(cur - last);
    last = cur;
  };
  pubNet("frames_dropped", net_->framesDropped(), lastFramesDropped_);
  pubNet("frames_corrupted", net_->framesCorrupted(), lastFramesCorrupted_);
  pubNet("packets_forwarded", net_->packetsForwarded(), lastForwarded_);
  pubNet("switch_buffer_drops", net_->switchBufferDrops(), lastSwitchDrops_);
  // Per-switch congestion stats appear only when a finite buffer actually
  // queued or dropped something, so metric dumps for the star/tree
  // configurations (which never do) are unchanged.
  if (net_->maxSwitchQueueDepth() > 0) {
    m.gauge(obs::scoped("fabric", "switch_queue_depth_max"))
        .set(net_->maxSwitchQueueDepth());
    for (const auto& sw : net_->topology().switches()) {
      if (sw->bufferDrops() == 0 && sw->maxQueueDepth() == 0) continue;
      const std::string scope = "fabric." + sw->name();
      if (sw->bufferDrops() > 0) {
        // Delta against the counter's own value: switch names are unique
        // within a cluster, so the counter mirrors the lifetime total.
        auto& c = m.counter(obs::scoped(scope, "buffer_drops"));
        if (sw->bufferDrops() > c.value()) c.add(sw->bufferDrops() - c.value());
      }
      m.gauge(obs::scoped(scope, "queue_depth_max")).set(sw->maxQueueDepth());
    }
  }
}

void Cluster::setTracer(sim::Tracer* tracer) {
  tracer_ = tracer;
  if (pdes_ == nullptr) {
    for (auto& p : providers_) p->device().setTracer(tracer);
    return;
  }
  if (tracer == nullptr) {
    for (auto& p : providers_) p->device().setTracer(nullptr);
    shadowTracers_.clear();
    shadowTraceLogs_.clear();
    return;
  }
  // Per-node shadows record everything (the user tracer's enablement is
  // applied at replay, so late enable() calls still work) into per-node
  // logs that stay single-writer inside the node's domain.
  shadowTracers_.clear();
  shadowTraceLogs_.assign(config_.nodes, {});
  shadowTracers_.reserve(config_.nodes);
  for (std::uint32_t n = 0; n < config_.nodes; ++n) {
    auto shadow = std::make_unique<sim::Tracer>(/*capacity=*/1);
    shadow->enableAll();
    auto* log = &shadowTraceLogs_[n];
    shadow->setSink([log](const sim::TraceRecord& r) { log->push_back(r); });
    providers_[n]->device().setTracer(shadow.get());
    shadowTracers_.push_back(std::move(shadow));
  }
}

void Cluster::replayShadowTraces() {
  if (tracer_ == nullptr || shadowTraceLogs_.empty()) return;
  // Node-major concatenation + stable sort by time = (time, node, record
  // index) order: each node's log is already time-ordered, so the merged
  // interleaving depends only on the simulation, never the shard count.
  std::vector<const sim::TraceRecord*> merged;
  std::size_t total = 0;
  for (const auto& log : shadowTraceLogs_) total += log.size();
  merged.reserve(total);
  for (const auto& log : shadowTraceLogs_) {
    for (const sim::TraceRecord& r : log) merged.push_back(&r);
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const sim::TraceRecord* a, const sim::TraceRecord* b) {
                     return a->time < b->time;
                   });
  for (const sim::TraceRecord* r : merged) {
    if (tracer_->enabled(r->category)) {
      tracer_->record(r->time, r->category, r->component, r->message);
    }
  }
  for (auto& log : shadowTraceLogs_) log.clear();
}

void Cluster::run(std::vector<std::function<void(NodeEnv&)>> programs) {
  if (programs.size() > config_.nodes) {
    throw sim::SimError("Cluster::run: more programs than nodes");
  }
  std::vector<std::unique_ptr<sim::Process>> procs;
  procs.reserve(programs.size());
  for (std::uint32_t i = 0; i < programs.size(); ++i) {
    if (!programs[i]) continue;
    procs.push_back(std::make_unique<sim::Process>(
        nodeEngine(i), "node" + std::to_string(i),
        [this, i, fn = std::move(programs[i])] {
          sim::Engine& eng = nodeEngine(i);
          NodeEnv env{i, *providers_[i], *eng.currentProcess(), eng};
          fn(env);
          // The program's stack frames (and any descriptors on them) are
          // dead once fn returns; abandon its pending work so completions
          // still in flight do not write through dangling pointers.
          providers_[i]->quiesce();
        }));
  }
  if (pdes_ != nullptr) {
    try {
      pdes_->run();
    } catch (...) {
      // Deadlock/error dumps still want the trace: replay whatever the
      // shadows captured before rethrowing.
      replayShadowTraces();
      throw;
    }
    if (sampler_ != nullptr) {
      // Tail boundaries past the last window (same contract as serial).
      sampler_->flushUntil(pdes_->maxNow());
    }
    replayShadowTraces();
    mergeShadowSpans();
    publishStats();
    return;
  }
  if (sampler_ != nullptr) sampler_->attach(engine_);
  try {
    engine_.run();
  } catch (...) {
    if (sampler_ != nullptr) sampler_->detach();
    throw;
  }
  if (sampler_ != nullptr) {
    // Capture remaining whole boundaries up to the drain time, so the
    // timeline's tail does not depend on whether a final event happened
    // to land past the last boundary.
    sampler_->flushUntil(engine_.now());
    sampler_->detach();
  }
  publishStats();
}

}  // namespace vibe::suite
