#include "vibe/cluster.hpp"

#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace vibe::suite {

Cluster::Cluster(const ClusterConfig& config) : config_(config) {
  ns_ = std::make_shared<vipl::NameService>();

  fabric::NetworkParams np;
  np.nodes = config_.nodes;
  np.link.bandwidthMBps = config_.profile.linkMBps;
  np.link.propagation = config_.profile.linkPropagation;
  np.link.headerBytes = config_.profile.linkHeaderBytes;
  np.link.lossRate = config_.lossRate;
  np.switchLatency = config_.profile.switchLatency;
  np.seed = config_.seed;
  if (config_.nodesPerSwitch != 0 || config_.fatTreeK != 0) {
    np.nodesPerSwitch = config_.nodesPerSwitch;
    np.fatTreeK = config_.fatTreeK;
    np.trunk = np.link;
    if (config_.trunkMBps > 0.0) np.trunk.bandwidthMBps = config_.trunkMBps;
    np.rootSwitchLatency = config_.profile.switchLatency;
  }
  np.switchBufferFrames = config_.switchBufferFrames;
  net_ = std::make_unique<fabric::Network>(engine_, np);

  providers_.reserve(config_.nodes);
  for (std::uint32_t n = 0; n < config_.nodes; ++n) {
    providers_.push_back(std::make_unique<vipl::Provider>(
        engine_, *net_, n, config_.profile, ns_,
        "node" + std::to_string(n)));
  }

  // Config-carried observability attachments (used by runners that build
  // the Cluster internally). All default to null = disabled.
  if (config_.tracer != nullptr) setTracer(config_.tracer);
  if (config_.spans != nullptr) setSpanProfiler(config_.spans);
  if (config_.metrics != nullptr) setMetricsRegistry(config_.metrics);
}

void Cluster::setSpanProfiler(obs::SpanProfiler* spans) {
  spans_ = spans;
  for (auto& p : providers_) p->setSpanProfiler(spans);
  net_->setSpanProfiler(spans);
}

void Cluster::publishStats() {
  if (metrics_ == nullptr) return;
  obs::MetricsRegistry& m = *metrics_;
  lastPublished_.resize(providers_.size());
  for (std::uint32_t n = 0; n < providers_.size(); ++n) {
    const nic::NicStats& s = providers_[n]->device().stats();
    nic::NicStats& prev = lastPublished_[n];
    const std::string scope = "node" + std::to_string(n);
    auto pub = [&](const char* name, std::uint64_t cur, std::uint64_t& last) {
      if (cur > last) {
        m.counter(obs::scoped(scope, name)).add(cur - last);
      }
      last = cur;
    };
    pub("nic.sends_posted", s.sendsPosted, prev.sendsPosted);
    pub("nic.recvs_posted", s.recvsPosted, prev.recvsPosted);
    pub("nic.frags_tx", s.fragsTx, prev.fragsTx);
    pub("nic.frags_rx", s.fragsRx, prev.fragsRx);
    pub("nic.bytes_tx", s.bytesTx, prev.bytesTx);
    pub("nic.bytes_rx", s.bytesRx, prev.bytesRx);
    pub("nic.acks_tx", s.acksTx, prev.acksTx);
    pub("nic.acks_rx", s.acksRx, prev.acksRx);
    pub("nic.retransmits", s.retransmits, prev.retransmits);
    pub("nic.rx_corrupted", s.rxCorrupted, prev.rxCorrupted);
    pub("nic.rx_dropped_no_descriptor", s.rxDroppedNoDescriptor,
        prev.rxDroppedNoDescriptor);
    pub("nic.rx_dropped_bad_endpoint", s.rxDroppedBadEndpoint,
        prev.rxDroppedBadEndpoint);
    pub("nic.rx_out_of_order_dropped", s.rxOutOfOrderDropped,
        prev.rxOutOfOrderDropped);
    pub("nic.protocol_errors", s.protocolErrors, prev.protocolErrors);
  }
  auto pubNet = [&](const char* name, std::uint64_t cur,
                    std::uint64_t& last) {
    if (cur > last) m.counter(obs::scoped("fabric", name)).add(cur - last);
    last = cur;
  };
  pubNet("frames_dropped", net_->framesDropped(), lastFramesDropped_);
  pubNet("frames_corrupted", net_->framesCorrupted(), lastFramesCorrupted_);
  pubNet("packets_forwarded", net_->packetsForwarded(), lastForwarded_);
  pubNet("switch_buffer_drops", net_->switchBufferDrops(), lastSwitchDrops_);
  // Per-switch congestion stats appear only when a finite buffer actually
  // queued or dropped something, so metric dumps for the star/tree
  // configurations (which never do) are unchanged.
  if (net_->maxSwitchQueueDepth() > 0) {
    m.gauge(obs::scoped("fabric", "switch_queue_depth_max"))
        .set(net_->maxSwitchQueueDepth());
    for (const auto& sw : net_->topology().switches()) {
      if (sw->bufferDrops() == 0 && sw->maxQueueDepth() == 0) continue;
      const std::string scope = "fabric." + sw->name();
      if (sw->bufferDrops() > 0) {
        // Delta against the counter's own value: switch names are unique
        // within a cluster, so the counter mirrors the lifetime total.
        auto& c = m.counter(obs::scoped(scope, "buffer_drops"));
        if (sw->bufferDrops() > c.value()) c.add(sw->bufferDrops() - c.value());
      }
      m.gauge(obs::scoped(scope, "queue_depth_max")).set(sw->maxQueueDepth());
    }
  }
}

void Cluster::setTracer(sim::Tracer* tracer) {
  tracer_ = tracer;
  for (auto& p : providers_) p->device().setTracer(tracer);
}

void Cluster::run(std::vector<std::function<void(NodeEnv&)>> programs) {
  if (programs.size() > config_.nodes) {
    throw sim::SimError("Cluster::run: more programs than nodes");
  }
  std::vector<std::unique_ptr<sim::Process>> procs;
  procs.reserve(programs.size());
  for (std::uint32_t i = 0; i < programs.size(); ++i) {
    if (!programs[i]) continue;
    procs.push_back(std::make_unique<sim::Process>(
        engine_, "node" + std::to_string(i),
        [this, i, fn = std::move(programs[i])] {
          NodeEnv env{i, *providers_[i], *engine_.currentProcess(), engine_};
          fn(env);
          // The program's stack frames (and any descriptors on them) are
          // dead once fn returns; abandon its pending work so completions
          // still in flight do not write through dangling pointers.
          providers_[i]->quiesce();
        }));
  }
  engine_.run();
  publishStats();
}

}  // namespace vibe::suite
