#include "vibe/cluster.hpp"

#include <utility>

namespace vibe::suite {

Cluster::Cluster(const ClusterConfig& config) : config_(config) {
  ns_ = std::make_shared<vipl::NameService>();

  fabric::NetworkParams np;
  np.nodes = config_.nodes;
  np.link.bandwidthMBps = config_.profile.linkMBps;
  np.link.propagation = config_.profile.linkPropagation;
  np.link.headerBytes = config_.profile.linkHeaderBytes;
  np.link.lossRate = config_.lossRate;
  np.switchLatency = config_.profile.switchLatency;
  np.seed = config_.seed;
  if (config_.nodesPerSwitch != 0) {
    np.nodesPerSwitch = config_.nodesPerSwitch;
    np.trunk = np.link;
    if (config_.trunkMBps > 0.0) np.trunk.bandwidthMBps = config_.trunkMBps;
    np.rootSwitchLatency = config_.profile.switchLatency;
  }
  net_ = std::make_unique<fabric::Network>(engine_, np);

  providers_.reserve(config_.nodes);
  for (std::uint32_t n = 0; n < config_.nodes; ++n) {
    providers_.push_back(std::make_unique<vipl::Provider>(
        engine_, *net_, n, config_.profile, ns_,
        "node" + std::to_string(n)));
  }
}

void Cluster::setTracer(sim::Tracer* tracer) {
  tracer_ = tracer;
  for (auto& p : providers_) p->device().setTracer(tracer);
}

void Cluster::run(std::vector<std::function<void(NodeEnv&)>> programs) {
  if (programs.size() > config_.nodes) {
    throw sim::SimError("Cluster::run: more programs than nodes");
  }
  std::vector<std::unique_ptr<sim::Process>> procs;
  procs.reserve(programs.size());
  for (std::uint32_t i = 0; i < programs.size(); ++i) {
    if (!programs[i]) continue;
    procs.push_back(std::make_unique<sim::Process>(
        engine_, "node" + std::to_string(i),
        [this, i, fn = std::move(programs[i])] {
          NodeEnv env{i, *providers_[i], *engine_.currentProcess(), engine_};
          fn(env);
          // The program's stack frames (and any descriptors on them) are
          // dead once fn returns; abandon its pending work so completions
          // still in flight do not write through dangling pointers.
          providers_[i]->quiesce();
        }));
  }
  engine_.run();
}

}  // namespace vibe::suite
