#include "vibe/cluster.hpp"

#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/timeseries.hpp"

namespace vibe::suite {

Cluster::Cluster(const ClusterConfig& config) : config_(config) {
  ns_ = std::make_shared<vipl::NameService>();

  fabric::NetworkParams np;
  np.nodes = config_.nodes;
  np.link.bandwidthMBps = config_.profile.linkMBps;
  np.link.propagation = config_.profile.linkPropagation;
  np.link.headerBytes = config_.profile.linkHeaderBytes;
  np.link.lossRate = config_.lossRate;
  np.switchLatency = config_.profile.switchLatency;
  np.seed = config_.seed;
  if (config_.nodesPerSwitch != 0 || config_.fatTreeK != 0) {
    np.nodesPerSwitch = config_.nodesPerSwitch;
    np.fatTreeK = config_.fatTreeK;
    np.trunk = np.link;
    if (config_.trunkMBps > 0.0) np.trunk.bandwidthMBps = config_.trunkMBps;
    np.rootSwitchLatency = config_.profile.switchLatency;
  }
  np.switchBufferFrames = config_.switchBufferFrames;
  net_ = std::make_unique<fabric::Network>(engine_, np);

  providers_.reserve(config_.nodes);
  for (std::uint32_t n = 0; n < config_.nodes; ++n) {
    providers_.push_back(std::make_unique<vipl::Provider>(
        engine_, *net_, n, config_.profile, ns_,
        "node" + std::to_string(n)));
  }

  // Config-carried observability attachments (used by runners that build
  // the Cluster internally). All default to null = disabled.
  if (config_.tracer != nullptr) setTracer(config_.tracer);
  if (config_.spans != nullptr) setSpanProfiler(config_.spans);
  if (config_.metrics != nullptr) setMetricsRegistry(config_.metrics);
  if (config_.sampler != nullptr) {
    setSampler(config_.sampler, config_.samplePeriod);
  }
}

void Cluster::setSampler(obs::TimeSeriesSampler* sampler,
                         sim::Duration period) {
  if (sampler == nullptr) {
    sampler_ = nullptr;
    return;
  }
  if (period <= 0) {
    throw sim::SimError("Cluster::setSampler: samplePeriod must be > 0");
  }
  if (sampler_ != nullptr) {
    throw sim::SimError("Cluster::setSampler: a sampler is already set "
                        "(probes register once)");
  }
  sampler_ = sampler;
  samplePeriod_ = period;
  sampler_->setPeriod(period);
  // Aggregate probes: sums over nodes, so the series count stays O(1)
  // whether the cluster has 2 nodes or 1024. Probes only read.
  sampler_->addProbe("nic/tx_backlog", [this](sim::SimTime) {
    std::size_t n = 0;
    for (auto& p : providers_) n += p->device().txBacklog();
    return static_cast<double>(n);
  });
  sampler_->addProbe("nic/rx_backlog", [this](sim::SimTime) {
    std::size_t n = 0;
    for (auto& p : providers_) n += p->device().rxBacklog();
    return static_cast<double>(n);
  });
  sampler_->addProbe("nic/cq_depth", [this](sim::SimTime) {
    std::size_t n = 0;
    for (auto& p : providers_) n += p->cqDepthTotal();
    return static_cast<double>(n);
  });
  sampler_->addProbe("fabric/host_link_frames", [this](sim::SimTime at) {
    std::uint64_t n = 0;
    for (std::uint32_t i = 0; i < config_.nodes; ++i) {
      n += net_->uplink(i).queuedFrames(at);
      n += net_->downlink(i).queuedFrames(at);
    }
    return static_cast<double>(n);
  });
  sampler_->addProbe("fabric/switch_queue_frames", [this](sim::SimTime at) {
    std::uint64_t n = 0;
    for (const auto& sw : net_->topology().switches()) {
      for (std::uint32_t i = 0; i < sw->portCount(); ++i) {
        const fabric::Switch::Port& port = sw->port(i);
        if (port.out != nullptr) n += port.out->queuedFrames(at);
      }
    }
    return static_cast<double>(n);
  });
  sampler_->addProbe("fabric/switch_buffer_drops", [this](sim::SimTime) {
    return static_cast<double>(net_->switchBufferDrops());
  });
}

void Cluster::setSpanProfiler(obs::SpanProfiler* spans) {
  spans_ = spans;
  for (auto& p : providers_) p->setSpanProfiler(spans);
  net_->setSpanProfiler(spans);
}

void Cluster::publishStats() {
  if (metrics_ == nullptr) return;
  obs::MetricsRegistry& m = *metrics_;
  lastPublished_.resize(providers_.size());
  for (std::uint32_t n = 0; n < providers_.size(); ++n) {
    const nic::NicStats& s = providers_[n]->device().stats();
    nic::NicStats& prev = lastPublished_[n];
    const std::string scope = "node" + std::to_string(n);
    auto pub = [&](const char* name, std::uint64_t cur, std::uint64_t& last) {
      if (cur > last) {
        m.counter(obs::scoped(scope, name)).add(cur - last);
      }
      last = cur;
    };
    pub("nic.sends_posted", s.sendsPosted, prev.sendsPosted);
    pub("nic.recvs_posted", s.recvsPosted, prev.recvsPosted);
    pub("nic.frags_tx", s.fragsTx, prev.fragsTx);
    pub("nic.frags_rx", s.fragsRx, prev.fragsRx);
    pub("nic.bytes_tx", s.bytesTx, prev.bytesTx);
    pub("nic.bytes_rx", s.bytesRx, prev.bytesRx);
    pub("nic.acks_tx", s.acksTx, prev.acksTx);
    pub("nic.acks_rx", s.acksRx, prev.acksRx);
    pub("nic.retransmits", s.retransmits, prev.retransmits);
    pub("nic.rx_corrupted", s.rxCorrupted, prev.rxCorrupted);
    pub("nic.rx_dropped_no_descriptor", s.rxDroppedNoDescriptor,
        prev.rxDroppedNoDescriptor);
    pub("nic.rx_dropped_bad_endpoint", s.rxDroppedBadEndpoint,
        prev.rxDroppedBadEndpoint);
    pub("nic.rx_out_of_order_dropped", s.rxOutOfOrderDropped,
        prev.rxOutOfOrderDropped);
    pub("nic.protocol_errors", s.protocolErrors, prev.protocolErrors);
  }
  auto pubNet = [&](const char* name, std::uint64_t cur,
                    std::uint64_t& last) {
    if (cur > last) m.counter(obs::scoped("fabric", name)).add(cur - last);
    last = cur;
  };
  pubNet("frames_dropped", net_->framesDropped(), lastFramesDropped_);
  pubNet("frames_corrupted", net_->framesCorrupted(), lastFramesCorrupted_);
  pubNet("packets_forwarded", net_->packetsForwarded(), lastForwarded_);
  pubNet("switch_buffer_drops", net_->switchBufferDrops(), lastSwitchDrops_);
  // Per-switch congestion stats appear only when a finite buffer actually
  // queued or dropped something, so metric dumps for the star/tree
  // configurations (which never do) are unchanged.
  if (net_->maxSwitchQueueDepth() > 0) {
    m.gauge(obs::scoped("fabric", "switch_queue_depth_max"))
        .set(net_->maxSwitchQueueDepth());
    for (const auto& sw : net_->topology().switches()) {
      if (sw->bufferDrops() == 0 && sw->maxQueueDepth() == 0) continue;
      const std::string scope = "fabric." + sw->name();
      if (sw->bufferDrops() > 0) {
        // Delta against the counter's own value: switch names are unique
        // within a cluster, so the counter mirrors the lifetime total.
        auto& c = m.counter(obs::scoped(scope, "buffer_drops"));
        if (sw->bufferDrops() > c.value()) c.add(sw->bufferDrops() - c.value());
      }
      m.gauge(obs::scoped(scope, "queue_depth_max")).set(sw->maxQueueDepth());
    }
  }
}

void Cluster::setTracer(sim::Tracer* tracer) {
  tracer_ = tracer;
  for (auto& p : providers_) p->device().setTracer(tracer);
}

void Cluster::run(std::vector<std::function<void(NodeEnv&)>> programs) {
  if (programs.size() > config_.nodes) {
    throw sim::SimError("Cluster::run: more programs than nodes");
  }
  std::vector<std::unique_ptr<sim::Process>> procs;
  procs.reserve(programs.size());
  for (std::uint32_t i = 0; i < programs.size(); ++i) {
    if (!programs[i]) continue;
    procs.push_back(std::make_unique<sim::Process>(
        engine_, "node" + std::to_string(i),
        [this, i, fn = std::move(programs[i])] {
          NodeEnv env{i, *providers_[i], *engine_.currentProcess(), engine_};
          fn(env);
          // The program's stack frames (and any descriptors on them) are
          // dead once fn returns; abandon its pending work so completions
          // still in flight do not write through dangling pointers.
          providers_[i]->quiesce();
        }));
  }
  if (sampler_ != nullptr) sampler_->attach(engine_);
  try {
    engine_.run();
  } catch (...) {
    if (sampler_ != nullptr) sampler_->detach();
    throw;
  }
  if (sampler_ != nullptr) {
    // Capture remaining whole boundaries up to the drain time, so the
    // timeline's tail does not depend on whether a final event happened
    // to land past the last boundary.
    sampler_->flushUntil(engine_.now());
    sampler_->detach();
  }
  publishStats();
}

}  // namespace vibe::suite
