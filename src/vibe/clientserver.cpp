#include "vibe/clientserver.hpp"

#include <stdexcept>

#include "vipl/vipl.hpp"

namespace vibe::suite {

namespace {

using vipl::PendingConn;
using vipl::Vi;
using vipl::VipDescriptor;
using vipl::VipResult;

constexpr std::uint64_t kDiscriminator = 4242;
constexpr sim::Duration kConnTimeout = sim::msec(500);

void require(VipResult r, const char* what) {
  if (r != VipResult::VIP_SUCCESS) {
    throw std::runtime_error(std::string("client/server benchmark failed: ") +
                             what + " -> " + vipl::toString(r));
  }
}

}  // namespace

ClientServerResult runClientServer(const ClusterConfig& clusterCfg,
                                   const ClientServerConfig& cfg) {
  Cluster cluster(clusterCfg);
  ClientServerResult result;
  const int total = cfg.warmup + cfg.transactions;

  auto client = [&](NodeEnv& env) {
    vipl::Provider& nic = env.nic;
    const mem::PtagId ptag = vipl::VipCreatePtag(nic);
    vipl::VipMemAttributes ma;
    ma.ptag = ptag;
    // Two distinct buffers: one for the request, one for the reply (§3.3.1).
    const mem::VirtAddr reqBuf =
        nic.memory().alloc(cfg.requestBytes, mem::kPageSize);
    const mem::VirtAddr repBuf =
        nic.memory().alloc(cfg.replyBytes, mem::kPageSize);
    mem::MemHandle reqH = 0;
    mem::MemHandle repH = 0;
    require(vipl::VipRegisterMem(nic, reqBuf, cfg.requestBytes, ma, reqH),
            "register request buffer");
    require(vipl::VipRegisterMem(nic, repBuf, cfg.replyBytes, ma, repH),
            "register reply buffer");

    vipl::VipViAttributes va;
    va.ptag = ptag;
    va.reliabilityLevel = nic::Reliability::ReliableDelivery;
    Vi* vi = nullptr;
    require(vipl::VipCreateVi(nic, va, nullptr, nullptr, vi), "create VI");
    require(vipl::VipConnectRequest(nic, vi, {1, kDiscriminator},
                                    kConnTimeout),
            "connect");

    sim::SimTime t0 = 0;
    sim::Duration cpu0 = 0;
    for (int it = 0; it < total; ++it) {
      if (it == cfg.warmup) {
        t0 = env.now();
        cpu0 = env.cpuBusy();
      }
      VipDescriptor recvD = VipDescriptor::recv(repBuf, repH, cfg.replyBytes);
      require(vipl::VipPostRecv(nic, vi, &recvD), "post reply recv");
      VipDescriptor sendD = VipDescriptor::send(reqBuf, reqH,
                                                cfg.requestBytes);
      require(vipl::VipPostSend(nic, vi, &sendD), "post request");
      VipDescriptor* done = nullptr;
      require(nic.pollRecv(vi, done), "poll reply");
      require(nic.pollSend(vi, done), "poll request completion");
    }
    const sim::SimTime t1 = env.now();
    const double elapsedSec = sim::toSec(t1 - t0);
    result.transactionsPerSec = cfg.transactions / elapsedSec;
    result.roundTripUsec = sim::toUsec(t1 - t0) / cfg.transactions;
    result.clientCpuPct = 100.0 *
                          static_cast<double>(env.cpuBusy() - cpu0) /
                          static_cast<double>(t1 - t0);
  };

  auto server = [&](NodeEnv& env) {
    vipl::Provider& nic = env.nic;
    const mem::PtagId ptag = vipl::VipCreatePtag(nic);
    vipl::VipMemAttributes ma;
    ma.ptag = ptag;
    const mem::VirtAddr reqBuf =
        nic.memory().alloc(cfg.requestBytes, mem::kPageSize);
    const mem::VirtAddr repBuf =
        nic.memory().alloc(cfg.replyBytes, mem::kPageSize);
    mem::MemHandle reqH = 0;
    mem::MemHandle repH = 0;
    require(vipl::VipRegisterMem(nic, reqBuf, cfg.requestBytes, ma, reqH),
            "register request buffer");
    require(vipl::VipRegisterMem(nic, repBuf, cfg.replyBytes, ma, repH),
            "register reply buffer");

    vipl::VipViAttributes va;
    va.ptag = ptag;
    va.reliabilityLevel = nic::Reliability::ReliableDelivery;
    Vi* vi = nullptr;
    require(vipl::VipCreateVi(nic, va, nullptr, nullptr, vi), "create VI");
    VipDescriptor first = VipDescriptor::recv(reqBuf, reqH, cfg.requestBytes);
    require(vipl::VipPostRecv(nic, vi, &first), "prepost request recv");

    PendingConn conn;
    require(vipl::VipConnectWait(nic, {1, kDiscriminator}, kConnTimeout,
                                 conn),
            "connect wait");
    require(vipl::VipConnectAccept(nic, conn, vi), "accept");

    sim::SimTime t0 = 0;
    sim::Duration cpu0 = 0;
    // Posted at iteration `it`, reaped by the pollRecv at the top of
    // `it + 1` — must outlive the loop body.
    VipDescriptor recvD;
    for (int it = 0; it < total; ++it) {
      VipDescriptor* done = nullptr;
      require(nic.pollRecv(vi, done), "poll request");
      if (it == cfg.warmup) {
        t0 = env.now();
        cpu0 = env.cpuBusy();
      }
      recvD = VipDescriptor::recv(reqBuf, reqH, cfg.requestBytes);
      if (it + 1 < total) {
        require(vipl::VipPostRecv(nic, vi, &recvD), "repost request recv");
      }
      VipDescriptor sendD = VipDescriptor::send(repBuf, repH, cfg.replyBytes);
      require(vipl::VipPostSend(nic, vi, &sendD), "post reply");
      require(nic.pollSend(vi, done), "poll reply completion");
    }
    const sim::SimTime t1 = env.now();
    result.serverCpuPct = 100.0 *
                          static_cast<double>(env.cpuBusy() - cpu0) /
                          static_cast<double>(t1 - t0);
  };

  cluster.run({client, server});
  return result;
}

}  // namespace vibe::suite
