// Non-data-transfer micro-benchmarks (paper §3.1 / Table 1, Figs. 1-2):
// VI create/destroy, connection establish/teardown, CQ create/destroy, and
// the memory registration/deregistration cost sweeps.
#pragma once

#include <cstdint>
#include <vector>

#include "vibe/cluster.hpp"

namespace vibe::suite {

struct NonDataConfig {
  int iterations = 50;       // create/destroy averaging count
  int connectIterations = 8; // connect/teardown averaging count
};

/// All costs in microseconds (Table 1 layout).
struct NonDataResult {
  double createVi = 0;
  double destroyVi = 0;
  double connect = 0;
  double teardown = 0;
  double createCq = 0;
  double destroyCq = 0;
};

NonDataResult runNonData(const ClusterConfig& cluster,
                         const NonDataConfig& config = {});

/// Memory registration / deregistration cost (µs) for each buffer length.
struct MemCostPoint {
  std::uint64_t bytes = 0;
  double registerUs = 0;
  double deregisterUs = 0;
};

std::vector<MemCostPoint> runMemCostSweep(
    const ClusterConfig& cluster, const std::vector<std::uint64_t>& sizes,
    int repeats = 8);

}  // namespace vibe::suite
