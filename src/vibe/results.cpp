#include "vibe/results.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace vibe::suite {

ResultTable::ResultTable(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void ResultTable::addRow(std::vector<double> values) {
  if (values.size() != columns_.size()) {
    throw std::invalid_argument("ResultTable::addRow: wrong column count");
  }
  rows_.push_back(std::move(values));
}

double ResultTable::at(std::size_t row, std::size_t col) const {
  return rows_.at(row).at(col);
}

std::size_t ResultTable::columnIndex(const std::string& name) const {
  auto it = std::find(columns_.begin(), columns_.end(), name);
  if (it == columns_.end()) {
    throw std::invalid_argument("ResultTable: no column " + name);
  }
  return static_cast<std::size_t>(it - columns_.begin());
}

namespace {
std::string formatCell(double v, int precision) {
  if (std::isnan(v)) return "n/s";
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  std::string s = os.str();
  // Trim trailing zeros but keep at least one decimal for non-integers.
  if (s.find('.') != std::string::npos) {
    while (s.back() == '0') s.pop_back();
    if (s.back() == '.') s.pop_back();
  }
  return s;
}
}  // namespace

std::string ResultTable::renderText(int precision) const {
  std::vector<std::size_t> widths(columns_.size());
  std::vector<std::vector<std::string>> cells(rows_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    cells[r].resize(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      cells[r][c] = formatCell(rows_[r][c], precision);
      widths[c] = std::max(widths[c], cells[r][c].size());
    }
  }
  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << (c ? "  " : "") << std::setw(static_cast<int>(widths[c]))
       << columns_[c];
  }
  os << '\n';
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << (c ? "  " : "") << std::string(widths[c], '-');
  }
  os << '\n';
  for (const auto& row : cells) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      os << (c ? "  " : "") << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << '\n';
  }
  return os.str();
}

std::string ResultTable::renderCsv(int precision) const {
  std::ostringstream os;
  os << std::setprecision(precision);
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << (c ? "," : "") << columns_[c];
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      os << (c ? "," : "");
      if (std::isnan(row[c])) {
        os << "";
      } else {
        os << row[c];
      }
    }
    os << '\n';
  }
  return os.str();
}

namespace {
void appendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

void appendJsonNumber(std::string& out, double v) {
  if (std::isnan(v) || std::isinf(v)) {
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}
}  // namespace

std::string ResultTable::renderJson() const {
  std::string out = "{\"title\":";
  appendJsonString(out, title_);
  out += ",\"columns\":[";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c) out += ',';
    appendJsonString(out, columns_[c]);
  }
  out += "],\"rows\":[";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (r) out += ',';
    out += '[';
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      if (c) out += ',';
      appendJsonNumber(out, rows_[r][c]);
    }
    out += ']';
  }
  out += "]}";
  return out;
}

std::ostream& operator<<(std::ostream& os, const ResultTable& t) {
  return os << t.renderText();
}

std::vector<std::uint64_t> paperMessageSizes() {
  return {4,    16,   64,    256,   1024,  2048,
          4096, 8192, 12288, 20480, 28672};
}

std::vector<std::uint64_t> paperBufferSizes() {
  return {4, 16, 64, 256, 1024, 4096, 12288, 20480, 28672};
}

std::vector<std::uint64_t> extendedBufferSizes() {
  return {4,        1024,      4096,      65536,     262144,
          1048576,  4194304,   16777216,  33554432};
}

}  // namespace vibe::suite
