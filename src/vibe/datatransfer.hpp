// The data-transfer micro-benchmark core (paper §3.2).
//
// One parameterized ping-pong (latency + CPU utilization) and one
// parameterized streaming test (bandwidth) implement the whole family:
// every §3.2 micro-benchmark is the base configuration with exactly one
// knob changed — reap mode (polling/blocking/CQ/notify), buffer reuse
// percentage (address translation), number of active VIs, data-segment
// count, RDMA, reliability level, sender pipeline depth, max transfer size.
#pragma once

#include <cstdint>

#include "nic/work.hpp"
#include "vibe/cluster.hpp"

namespace vibe::suite {

/// How completions are discovered.
enum class ReapMode : std::uint8_t {
  Poll,     // spin on VipRecvDone/VipSendDone
  Block,    // VipRecvWait/VipSendWait
  PollCq,   // spin on VipCQDone, then the work queue Done
  BlockCq,  // VipCQWait
  Notify,   // asynchronous VipRecvNotify handler
};

struct TransferConfig {
  std::uint64_t msgBytes = 4;
  int iterations = 100;  // measured round trips / burst messages
  int warmup = 20;
  ReapMode reap = ReapMode::Poll;

  // Address-translation knobs (Fig. 5): a pool of `bufferPool` distinct
  // page-aligned buffers; (100 - reusePercent)% of iterations rotate to a
  // fresh pool buffer, the rest use buffer 0.
  int bufferPool = 1;
  int reusePercent = 100;

  int extraVis = 0;      // additional VIs created on both sides (Fig. 6)
  int dataSegments = 1;  // gather/scatter segment count per descriptor
  nic::Reliability reliability = nic::Reliability::ReliableDelivery;
  bool useRdmaWrite = false;  // RDMA write + immediate instead of send/recv
  std::uint32_t maxTransferSize = 0;  // 0 = provider default

  // Bandwidth-only knobs.
  int burst = 120;        // messages per streaming burst
  int pipelineDepth = 0;  // max outstanding sends; 0 = post the whole burst

  // Ping-pong only: reap the send completion before waiting for the reply
  // and record its latency. This exposes the reliability-level semantics:
  // Unreliable completes at local transmit, ReliableDelivery at the remote
  // NIC's receipt ack, ReliableReception at the memory-placement ack.
  bool measureSendCompletion = false;

  // Ping-pong only: which node pair talks. Defaults reproduce the classic
  // node0 <-> node1 run; hierarchical topologies use other pairs to
  // measure same-edge vs same-pod vs cross-pod paths.
  std::uint32_t pingSrc = 0;
  std::uint32_t pingDst = 1;
};

struct TransferResult {
  double latencyUsec = 0;    // one-way: round-trip / 2 (ping-pong only)
  double latencyP50Usec = 0;  // per-iteration one-way percentiles
  double latencyP99Usec = 0;
  double latencyMaxUsec = 0;
  double bandwidthMBps = 0;  // streaming only
  double senderCpuPct = 0;
  double receiverCpuPct = 0;
  /// Mean post-to-completion time of the send descriptor, when
  /// measureSendCompletion is set.
  double sendCompletionUsec = 0;
  bool supported = true;  // false if the profile lacks the feature (RDMA)
};

/// Standard ping-pong between node 0 and node 1 of a fresh cluster.
TransferResult runPingPong(const ClusterConfig& cluster,
                           const TransferConfig& config);

/// Streaming bandwidth: node 0 blasts `burst` messages at node 1, then
/// waits for the receiver's acknowledgment message (paper §3.2.1).
TransferResult runBandwidth(const ClusterConfig& cluster,
                            const TransferConfig& config);

}  // namespace vibe::suite
