#include "vibe/nondata.hpp"

#include <stdexcept>

#include "vipl/vipl.hpp"

namespace vibe::suite {

namespace {

using vipl::Cq;
using vipl::PendingConn;
using vipl::Vi;
using vipl::VipResult;

constexpr std::uint64_t kDiscriminator = 99;
constexpr sim::Duration kConnTimeout = sim::msec(500);

void require(VipResult r, const char* what) {
  if (r != VipResult::VIP_SUCCESS) {
    throw std::runtime_error(std::string("non-data benchmark failed: ") +
                             what + " -> " + vipl::toString(r));
  }
}

}  // namespace

NonDataResult runNonData(const ClusterConfig& clusterCfg,
                         const NonDataConfig& cfg) {
  Cluster cluster(clusterCfg);
  NonDataResult result;

  auto client = [&](NodeEnv& env) {
    vipl::Provider& nic = env.nic;
    const mem::PtagId ptag = vipl::VipCreatePtag(nic);
    vipl::VipViAttributes va;
    va.ptag = ptag;
    va.reliabilityLevel = nic::Reliability::ReliableDelivery;

    // --- VI create / destroy ---
    std::vector<Vi*> vis(cfg.iterations, nullptr);
    sim::SimTime t0 = env.now();
    for (int i = 0; i < cfg.iterations; ++i) {
      require(vipl::VipCreateVi(nic, va, nullptr, nullptr, vis[i]),
              "create VI");
    }
    result.createVi = sim::toUsec(env.now() - t0) / cfg.iterations;
    t0 = env.now();
    for (int i = 0; i < cfg.iterations; ++i) {
      require(vipl::VipDestroyVi(nic, vis[i]), "destroy VI");
    }
    result.destroyVi = sim::toUsec(env.now() - t0) / cfg.iterations;

    // --- CQ create / destroy ---
    std::vector<Cq*> cqs(cfg.iterations, nullptr);
    t0 = env.now();
    for (int i = 0; i < cfg.iterations; ++i) {
      require(vipl::VipCreateCQ(nic, 64, cqs[i]), "create CQ");
    }
    result.createCq = sim::toUsec(env.now() - t0) / cfg.iterations;
    t0 = env.now();
    for (int i = 0; i < cfg.iterations; ++i) {
      require(vipl::VipDestroyCQ(nic, cqs[i]), "destroy CQ");
    }
    result.destroyCq = sim::toUsec(env.now() - t0) / cfg.iterations;

    // --- connection establish / teardown ---
    double connectTotal = 0;
    double teardownTotal = 0;
    for (int i = 0; i < cfg.connectIterations; ++i) {
      Vi* vi = nullptr;
      require(vipl::VipCreateVi(nic, va, nullptr, nullptr, vi), "conn VI");
      const sim::SimTime c0 = env.now();
      require(vipl::VipConnectRequest(nic, vi, {1, kDiscriminator},
                                      kConnTimeout),
              "connect");
      connectTotal += sim::toUsec(env.now() - c0);
      const sim::SimTime d0 = env.now();
      require(vipl::VipDisconnect(nic, vi), "disconnect");
      teardownTotal += sim::toUsec(env.now() - d0);
      require(vipl::VipDestroyVi(nic, vi), "destroy conn VI");
    }
    result.connect = connectTotal / cfg.connectIterations;
    result.teardown = teardownTotal / cfg.connectIterations;
  };

  auto server = [&](NodeEnv& env) {
    vipl::Provider& nic = env.nic;
    const mem::PtagId ptag = vipl::VipCreatePtag(nic);
    vipl::VipViAttributes va;
    va.ptag = ptag;
    va.reliabilityLevel = nic::Reliability::ReliableDelivery;
    for (int i = 0; i < cfg.connectIterations; ++i) {
      Vi* vi = nullptr;
      require(vipl::VipCreateVi(nic, va, nullptr, nullptr, vi), "server VI");
      PendingConn conn;
      require(vipl::VipConnectWait(nic, {1, kDiscriminator},
                                   sim::kSecond, conn),
              "connect wait");
      require(vipl::VipConnectAccept(nic, conn, vi), "accept");
      // Wait for the client's disconnect, then recycle the VI.
      while (vi->state() == vipl::ViState::Connected) {
        env.self.advance(sim::usec(50), sim::CpuUse::Idle);
      }
      require(vipl::VipDestroyVi(nic, vi), "server destroy VI");
    }
  };

  cluster.run({client, server});
  return result;
}

std::vector<MemCostPoint> runMemCostSweep(
    const ClusterConfig& clusterCfg, const std::vector<std::uint64_t>& sizes,
    int repeats) {
  ClusterConfig oneNode = clusterCfg;
  oneNode.nodes = std::max(1u, oneNode.nodes);
  Cluster cluster(oneNode);
  std::vector<MemCostPoint> points;

  auto program = [&](NodeEnv& env) {
    vipl::Provider& nic = env.nic;
    const mem::PtagId ptag = vipl::VipCreatePtag(nic);
    vipl::VipMemAttributes ma;
    ma.ptag = ptag;
    for (const std::uint64_t size : sizes) {
      MemCostPoint p;
      p.bytes = size;
      for (int r = 0; r < repeats; ++r) {
        const mem::VirtAddr va = nic.memory().alloc(size, mem::kPageSize);
        mem::MemHandle handle = 0;
        sim::SimTime t0 = env.now();
        require(vipl::VipRegisterMem(nic, va, size, ma, handle),
                "register mem");
        p.registerUs += sim::toUsec(env.now() - t0);
        t0 = env.now();
        require(vipl::VipDeregisterMem(nic, handle), "deregister mem");
        p.deregisterUs += sim::toUsec(env.now() - t0);
      }
      p.registerUs /= repeats;
      p.deregisterUs /= repeats;
      points.push_back(p);
    }
  };

  cluster.run({program});
  return points;
}

}  // namespace vibe::suite
