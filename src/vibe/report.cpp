#include "vibe/report.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace vibe::suite {

SurveyResult runSurvey(const nic::NicProfile& profile,
                       const SurveyOptions& options) {
  SurveyResult result;
  result.implementation = profile.name;
  ClusterConfig cluster;
  cluster.profile = profile;

  // Category 1: non-data-transfer operations.
  result.nonData = runNonData(cluster);
  result.memCosts = runMemCostSweep(cluster, options.regSizes);

  // Category 2: data transfer.
  for (const std::uint64_t size : options.messageSizes) {
    TransferConfig cfg;
    cfg.msgBytes = size;
    cfg.iterations = options.iterations;
    cfg.warmup = options.warmup;
    const auto poll = runPingPong(cluster, cfg);
    TransferConfig blockCfg = cfg;
    blockCfg.reap = ReapMode::Block;
    const auto block = runPingPong(cluster, blockCfg);
    const auto bw = runBandwidth(cluster, cfg);
    result.transfers.push_back({size, poll.latencyUsec, block.latencyUsec,
                                bw.bandwidthMBps, block.receiverCpuPct});
  }

  // One-component probes.
  TransferConfig probe;
  probe.msgBytes = options.probeBytes;
  probe.iterations = options.iterations;
  probe.warmup = options.warmup;
  result.baseLatencyUsec = runPingPong(cluster, probe).latencyUsec;

  TransferConfig viaCq = probe;
  viaCq.reap = ReapMode::PollCq;
  result.cqOverheadUsec =
      runPingPong(cluster, viaCq).latencyUsec - result.baseLatencyUsec;

  TransferConfig noReuse = probe;
  noReuse.reusePercent = 0;
  noReuse.bufferPool = 160;
  result.noReuseOverheadUsec =
      runPingPong(cluster, noReuse).latencyUsec - result.baseLatencyUsec;

  TransferConfig manyVis = probe;
  manyVis.extraVis = 15;
  result.multiViOverheadUsec =
      runPingPong(cluster, manyVis).latencyUsec - result.baseLatencyUsec;

  TransferConfig notify = probe;
  notify.reap = ReapMode::Notify;
  result.notifyOverheadUsec =
      runPingPong(cluster, notify).latencyUsec - result.baseLatencyUsec;

  result.rdmaWriteSupported = profile.supportsRdmaWrite;
  if (result.rdmaWriteSupported) {
    TransferConfig rdma = probe;
    rdma.useRdmaWrite = true;
    result.rdmaLatencyDeltaUsec =
        runPingPong(cluster, rdma).latencyUsec - result.baseLatencyUsec;
  }

  // Category 3: client/server transactions.
  for (const std::uint32_t reply : options.replySizes) {
    ClientServerConfig cs;
    cs.requestBytes = 16;
    cs.replyBytes = reply;
    cs.transactions = options.iterations;
    cs.warmup = options.warmup;
    const auto r = runClientServer(cluster, cs);
    result.transactions.push_back(
        {reply, r.transactionsPerSec, r.roundTripUsec});
  }
  return result;
}

std::string renderSurvey(const SurveyResult& r) {
  std::ostringstream os;
  char line[256];
  os << "VIBe survey of: " << r.implementation << '\n';
  os << "=========================================================\n\n";

  os << "[1] non-data-transfer costs (us)\n";
  std::snprintf(line, sizeof line,
                "    create VI %10.2f   destroy VI %8.2f\n"
                "    connect   %10.2f   teardown   %8.2f\n"
                "    create CQ %10.2f   destroy CQ %8.2f\n",
                r.nonData.createVi, r.nonData.destroyVi, r.nonData.connect,
                r.nonData.teardown, r.nonData.createCq, r.nonData.destroyCq);
  os << line;
  os << "    registration (reg/dereg us):";
  for (const auto& p : r.memCosts) {
    std::snprintf(line, sizeof line, "  %lluB: %.1f/%.1f",
                  static_cast<unsigned long long>(p.bytes), p.registerUs,
                  p.deregisterUs);
    os << line;
  }
  os << "\n\n[2] data transfer (base configuration)\n";
  std::snprintf(line, sizeof line, "    %10s %12s %12s %12s %10s\n", "bytes",
                "lat_poll us", "lat_block us", "bw MB/s", "blk cpu %");
  os << line;
  for (const auto& t : r.transfers) {
    std::snprintf(line, sizeof line,
                  "    %10llu %12.2f %12.2f %12.2f %10.1f\n",
                  static_cast<unsigned long long>(t.bytes), t.latencyPollUsec,
                  t.latencyBlockUsec, t.bandwidthMBps, t.blockRecvCpuPct);
    os << line;
  }
  std::snprintf(line, sizeof line,
                "\n    component probes (us over base %.2f):\n"
                "      completion queue : %+0.2f\n"
                "      0%% buffer reuse  : %+0.2f\n"
                "      16 active VIs    : %+0.2f\n"
                "      notify handler   : %+0.2f\n",
                r.baseLatencyUsec, r.cqOverheadUsec, r.noReuseOverheadUsec,
                r.multiViOverheadUsec, r.notifyOverheadUsec);
  os << line;
  if (r.rdmaWriteSupported) {
    std::snprintf(line, sizeof line, "      RDMA write       : %+0.2f\n",
                  r.rdmaLatencyDeltaUsec);
    os << line;
  } else {
    os << "      RDMA write       : not supported\n";
  }

  os << "\n[3] client/server transactions per second\n";
  for (const auto& t : r.transactions) {
    std::snprintf(line, sizeof line,
                  "    request 16 B, reply %6u B: %8.0f tps (rtt %.2f us)\n",
                  t.replyBytes, t.transactionsPerSec, t.roundTripUsec);
    os << line;
  }
  return os.str();
}

std::string renderStatsAppendix(const obs::MetricsRegistry& metrics) {
  if (metrics.empty()) return {};
  std::ostringstream os;
  os << "\n--- stats appendix ---\n" << metrics.renderText();
  return os.str();
}

std::string renderStageAttribution(const obs::SpanProfiler& spans) {
  std::ostringstream os;
  os << "\n--- stage attribution ---\n" << spans.renderAttribution();
  return os.str();
}

}  // namespace vibe::suite
