// Client/server transaction micro-benchmark (paper §3.3.1 / Fig. 7):
// synchronous request/reply over one VI connection, reported as
// transactions per second for a fixed request size and varying reply size.
#pragma once

#include <cstdint>

#include "vibe/cluster.hpp"

namespace vibe::suite {

struct ClientServerConfig {
  std::uint32_t requestBytes = 16;
  std::uint32_t replyBytes = 64;
  int transactions = 100;
  int warmup = 20;
};

struct ClientServerResult {
  double transactionsPerSec = 0;
  double roundTripUsec = 0;
  double clientCpuPct = 0;
  double serverCpuPct = 0;
};

ClientServerResult runClientServer(const ClusterConfig& cluster,
                                   const ClientServerConfig& config);

}  // namespace vibe::suite
