// Result tables: what every VIBe micro-benchmark produces and what the
// bench binaries print. Supports aligned-text (paper-style) and CSV output.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace vibe::suite {

/// A labelled grid of numbers: one row per parameter point, one column per
/// metric (or per VIA implementation, as in the paper's figures).
class ResultTable {
 public:
  ResultTable(std::string title, std::vector<std::string> columns);

  const std::string& title() const { return title_; }
  const std::vector<std::string>& columns() const { return columns_; }
  std::size_t rowCount() const { return rows_.size(); }

  /// Adds a row; size must equal the column count. Use NaN (via
  /// std::numeric_limits) for "not supported" cells — rendered as "n/s".
  void addRow(std::vector<double> values);

  double at(std::size_t row, std::size_t col) const;
  /// Column index by name; throws if absent.
  std::size_t columnIndex(const std::string& name) const;

  /// Paper-style aligned text table.
  std::string renderText(int precision = 2) const;
  /// Machine-readable CSV (header + rows). "Not supported" (NaN) cells are
  /// emitted as empty cells — never the human-readable "n/s" marker.
  std::string renderCsv(int precision = 6) const;
  /// Machine-readable JSON object: {"title","columns","rows"}; NaN cells
  /// become null (JSON has no NaN literal). Enabled per-bench by VIBE_JSON=1.
  std::string renderJson() const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<double>> rows_;
};

std::ostream& operator<<(std::ostream& os, const ResultTable& t);

/// Message-size sweep used by most figures: 4 B .. 28672 B doubling-ish,
/// matching the x-axis of the paper's plots.
std::vector<std::uint64_t> paperMessageSizes();

/// Registration sweep for Fig. 1/2: 4 B .. 28672 B (and extended variant
/// up to 32 MB for the deregistration claim).
std::vector<std::uint64_t> paperBufferSizes();
std::vector<std::uint64_t> extendedBufferSizes();

}  // namespace vibe::suite
