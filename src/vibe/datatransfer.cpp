#include "vibe/datatransfer.hpp"

#include <algorithm>

#include "simcore/stats.hpp"
#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

#include "vipl/vipl.hpp"

namespace vibe::suite {

namespace {

using vipl::Cq;
using vipl::PendingConn;
using vipl::Provider;
using vipl::Vi;
using vipl::VipDescriptor;
using vipl::VipResult;

constexpr std::uint64_t kDiscriminator = 7;
constexpr sim::Duration kConnTimeout = sim::msec(500);
constexpr sim::Duration kWaitForever = -1;

void require(VipResult r, const char* what) {
  if (r != VipResult::VIP_SUCCESS) {
    throw std::runtime_error(std::string("VIBe setup failed: ") + what +
                             " -> " + vipl::toString(r));
  }
}

/// Everything one side sets up before the measurement loop.
struct Side {
  Provider* nic = nullptr;
  NodeEnv* env = nullptr;
  mem::PtagId ptag = 0;
  Cq* cq = nullptr;
  Vi* vi = nullptr;
  std::vector<Vi*> extras;
  std::vector<mem::VirtAddr> bufs;
  std::vector<mem::MemHandle> handles;
  int poolCursor = 0;
};

/// Cross-node info exchanged out of band by the harness (what a real
/// benchmark would ship in its first message): RDMA target addresses.
struct SharedSetup {
  mem::VirtAddr rdmaTarget[2] = {0, 0};
  mem::MemHandle rdmaHandle[2] = {0, 0};
};

void setupSide(Side& s, NodeEnv& env, const TransferConfig& cfg) {
  s.env = &env;
  s.nic = &env.nic;
  Provider& nic = *s.nic;
  s.ptag = vipl::VipCreatePtag(nic);

  // Buffer pool: page-aligned so translation behaviour is deterministic.
  const int pool = std::max(1, cfg.bufferPool);
  const std::uint64_t len = std::max<std::uint64_t>(cfg.msgBytes, 4);
  s.bufs.resize(pool);
  s.handles.resize(pool);
  vipl::VipMemAttributes ma;
  ma.ptag = s.ptag;
  ma.enableRdmaWrite = cfg.useRdmaWrite;
  for (int i = 0; i < pool; ++i) {
    s.bufs[i] = nic.memory().alloc(len, mem::kPageSize);
    require(vipl::VipRegisterMem(nic, s.bufs[i], len, ma, s.handles[i]),
            "register buffer");
  }

  if (cfg.reap == ReapMode::PollCq || cfg.reap == ReapMode::BlockCq) {
    require(vipl::VipCreateCQ(nic, 512, s.cq), "create CQ");
  }

  vipl::VipViAttributes va;
  va.reliabilityLevel = cfg.reliability;
  va.ptag = s.ptag;
  va.enableRdmaWrite = cfg.useRdmaWrite;
  if (cfg.maxTransferSize != 0) va.maxTransferSize = cfg.maxTransferSize;

  // Extra idle VIs first, so the firmware scans them during the test.
  for (int i = 0; i < cfg.extraVis; ++i) {
    Vi* extra = nullptr;
    require(vipl::VipCreateVi(nic, va, nullptr, nullptr, extra), "extra VI");
    s.extras.push_back(extra);
  }
  require(vipl::VipCreateVi(nic, va, nullptr, s.cq, s.vi), "create VI");
}

/// Deterministic buffer choice implementing the reuse percentage.
int pickBuffer(Side& s, const TransferConfig& cfg, int iteration) {
  if (cfg.bufferPool <= 1 || cfg.reusePercent >= 100) return 0;
  if ((iteration % 100) < cfg.reusePercent) return 0;
  const int rotating = static_cast<int>(s.bufs.size()) - 1;
  const int idx = 1 + (s.poolCursor % std::max(1, rotating));
  ++s.poolCursor;
  return idx;
}

/// Builds the send-side descriptor for iteration buffer `b`.
VipDescriptor makeSendDesc(const Side& s, const TransferConfig& cfg, int b,
                           const SharedSetup& shared, std::uint32_t peer) {
  const auto bytes = static_cast<std::uint32_t>(cfg.msgBytes);
  if (cfg.useRdmaWrite) {
    VipDescriptor d = VipDescriptor::rdmaWrite(
        s.bufs[b], s.handles[b], bytes, shared.rdmaTarget[peer],
        shared.rdmaHandle[peer]);
    d.cs.control |= vipl::VIP_CONTROL_IMMEDIATE;  // consume a recv descriptor
    d.cs.immediateData = 0xC0FFEE;
    return d;
  }
  VipDescriptor d = VipDescriptor::send(s.bufs[b], s.handles[b], bytes);
  if (cfg.dataSegments > 1) {
    d.ds.clear();
    const std::uint32_t segs = cfg.dataSegments;
    std::uint32_t off = 0;
    for (std::uint32_t i = 0; i < segs; ++i) {
      const std::uint32_t chunk =
          (bytes / segs) + (i < bytes % segs ? 1 : 0);
      d.ds.push_back({s.bufs[b] + off, s.handles[b], chunk});
      off += chunk;
    }
    d.cs.segCount = static_cast<std::uint16_t>(d.ds.size());
  }
  return d;
}

VipDescriptor makeRecvDesc(const Side& s, const TransferConfig& cfg, int b) {
  const auto bytes = static_cast<std::uint32_t>(cfg.msgBytes);
  VipDescriptor d = VipDescriptor::recv(s.bufs[b], s.handles[b], bytes);
  if (cfg.dataSegments > 1) {
    d.ds.clear();
    const std::uint32_t segs = cfg.dataSegments;
    std::uint32_t off = 0;
    for (std::uint32_t i = 0; i < segs; ++i) {
      const std::uint32_t chunk = (bytes / segs) + (i < bytes % segs ? 1 : 0);
      d.ds.push_back({s.bufs[b] + off, s.handles[b], chunk});
      off += chunk;
    }
    d.cs.segCount = static_cast<std::uint16_t>(d.ds.size());
  }
  return d;
}

/// Reaps one receive completion according to the configured mode.
void reapRecv(Side& s, const TransferConfig& cfg) {
  Provider& nic = *s.nic;
  VipDescriptor* done = nullptr;
  switch (cfg.reap) {
    case ReapMode::Poll:
      require(nic.pollRecv(s.vi, done), "poll recv");
      return;
    case ReapMode::Block:
      require(nic.recvWait(s.vi, kWaitForever, done), "recv wait");
      return;
    case ReapMode::PollCq: {
      Vi* vi = nullptr;
      bool isRecv = false;
      require(nic.pollCq(s.cq, vi, isRecv), "poll CQ");
      require(nic.recvDone(vi, done), "recv done after CQ");
      return;
    }
    case ReapMode::BlockCq: {
      Vi* vi = nullptr;
      bool isRecv = false;
      require(nic.cqWait(s.cq, kWaitForever, vi, isRecv), "CQ wait");
      require(nic.recvDone(vi, done), "recv done after CQ");
      return;
    }
    case ReapMode::Notify: {
      // One-shot handler fires in interrupt context and wakes us.
      auto signal = std::make_shared<sim::Signal>(s.env->engine);
      require(nic.recvNotify(s.vi,
                             [signal](VipDescriptor*) { signal->notifyAll(); }),
              "recv notify");
      s.env->self.await(*signal);
      return;
    }
  }
}

/// Reaps one send completion (always cheap poll/wait matching the mode).
void reapSend(Side& s, const TransferConfig& cfg) {
  Provider& nic = *s.nic;
  VipDescriptor* done = nullptr;
  if (cfg.reap == ReapMode::Block || cfg.reap == ReapMode::BlockCq) {
    require(nic.sendWait(s.vi, kWaitForever, done), "send wait");
  } else {
    require(nic.pollSend(s.vi, done), "poll send");
  }
}

}  // namespace

TransferResult runPingPong(const ClusterConfig& clusterCfg,
                           const TransferConfig& cfg) {
  if (cfg.useRdmaWrite && !clusterCfg.profile.supportsRdmaWrite) {
    TransferResult r;
    r.supported = false;
    return r;
  }
  if (cfg.pingSrc == cfg.pingDst || cfg.pingSrc >= clusterCfg.nodes ||
      cfg.pingDst >= clusterCfg.nodes) {
    throw sim::SimError("runPingPong: invalid pingSrc/pingDst pair");
  }
  Cluster cluster(clusterCfg);
  TransferResult result;
  SharedSetup shared;
  const int total = cfg.warmup + cfg.iterations;

  auto initiator = [&](NodeEnv& env) {
    Side s;
    setupSide(s, env, cfg);
    shared.rdmaTarget[0] = s.bufs[0];
    shared.rdmaHandle[0] = s.handles[0];

    require(vipl::VipConnectRequest(*s.nic, s.vi,
                                    {cfg.pingDst, kDiscriminator},
                                    kConnTimeout),
            "connect");
    sim::SimTime t0 = 0;
    sim::Duration cpu0 = 0;
    sim::QuantileTracker perIteration(cfg.iterations);
    sim::SimTime iterStart = 0;
    // Persistent descriptors, rebuilt per iteration (buffers may rotate).
    for (int it = 0; it < total; ++it) {
      if (it == cfg.warmup) {
        t0 = env.now();
        cpu0 = env.cpuBusy();
      }
      iterStart = env.now();
      const int b = pickBuffer(s, cfg, it);
      VipDescriptor recvD = makeRecvDesc(s, cfg, b);
      require(vipl::VipPostRecv(*s.nic, s.vi, &recvD), "post recv");
      VipDescriptor sendD = makeSendDesc(s, cfg, b, shared, 1);
      require(vipl::VipPostSend(*s.nic, s.vi, &sendD), "post send");
      if (cfg.measureSendCompletion) {
        const sim::SimTime posted = env.now();
        reapSend(s, cfg);
        if (it >= cfg.warmup) {
          result.sendCompletionUsec += sim::toUsec(env.now() - posted);
        }
        reapRecv(s, cfg);
      } else {
        reapRecv(s, cfg);
        reapSend(s, cfg);
      }
      if (it >= cfg.warmup) {
        perIteration.add(sim::toUsec(env.now() - iterStart) / 2.0);
      }
    }
    result.sendCompletionUsec /= cfg.iterations;
    result.latencyP50Usec = perIteration.median();
    result.latencyP99Usec = perIteration.quantile(0.99);
    result.latencyMaxUsec = perIteration.quantile(1.0);
    const sim::SimTime t1 = env.now();
    const sim::Duration cpu1 = env.cpuBusy();
    const double elapsed = sim::toUsec(t1 - t0);
    result.latencyUsec = elapsed / (2.0 * cfg.iterations);
    result.senderCpuPct =
        100.0 * static_cast<double>(cpu1 - cpu0) / static_cast<double>(t1 - t0);
  };

  auto responder = [&](NodeEnv& env) {
    Side s;
    setupSide(s, env, cfg);
    shared.rdmaTarget[1] = s.bufs[0];
    shared.rdmaHandle[1] = s.handles[0];

    // Prepost the first receive before accepting, so the initiator's first
    // message always finds a descriptor.
    VipDescriptor first = makeRecvDesc(s, cfg, pickBuffer(s, cfg, 0));
    s.poolCursor = 0;  // pickBuffer above was a dry run for iteration 0
    require(vipl::VipPostRecv(*s.nic, s.vi, &first), "prepost recv");

    PendingConn conn;
    require(vipl::VipConnectWait(*s.nic, {cfg.pingDst, kDiscriminator},
                                 kConnTimeout, conn),
            "connect wait");
    require(vipl::VipConnectAccept(*s.nic, conn, s.vi), "accept");

    sim::SimTime t0 = 0;
    sim::Duration cpu0 = 0;
    // Posted at iteration `it` but only reaped at the top of `it + 1`, so
    // this descriptor must outlive the loop body.
    VipDescriptor recvD;
    for (int it = 0; it < total; ++it) {
      reapRecv(s, cfg);
      if (it == cfg.warmup) {
        t0 = env.now();
        cpu0 = env.cpuBusy();
      }
      const int b = pickBuffer(s, cfg, it + 1);
      recvD = makeRecvDesc(s, cfg, b);
      if (it + 1 < total) {
        require(vipl::VipPostRecv(*s.nic, s.vi, &recvD), "repost recv");
      }
      VipDescriptor sendD =
          makeSendDesc(s, cfg, pickBuffer(s, cfg, it), shared, 0);
      require(vipl::VipPostSend(*s.nic, s.vi, &sendD), "post reply");
      reapSend(s, cfg);
    }
    const sim::SimTime t1 = env.now();
    const sim::Duration cpu1 = env.cpuBusy();
    result.receiverCpuPct =
        100.0 * static_cast<double>(env.cpuBusy() - cpu0) /
        static_cast<double>(t1 - t0);
    (void)cpu1;
  };

  // Program i runs on node i; unused nodes get no program. The default
  // pair (0, 1) reduces to the classic {initiator, responder} run.
  std::vector<std::function<void(NodeEnv&)>> programs(
      std::max(cfg.pingSrc, cfg.pingDst) + 1);
  programs[cfg.pingSrc] = initiator;
  programs[cfg.pingDst] = responder;
  cluster.run(std::move(programs));
  return result;
}

TransferResult runBandwidth(const ClusterConfig& clusterCfg,
                            const TransferConfig& cfg) {
  if (cfg.useRdmaWrite && !clusterCfg.profile.supportsRdmaWrite) {
    TransferResult r;
    r.supported = false;
    return r;
  }
  Cluster cluster(clusterCfg);
  TransferResult result;
  SharedSetup shared;
  const int burst = cfg.burst;

  auto sender = [&](NodeEnv& env) {
    Side s;
    setupSide(s, env, cfg);
    shared.rdmaTarget[0] = s.bufs[0];
    shared.rdmaHandle[0] = s.handles[0];
    Provider& nic = *s.nic;

    // Control buffer for the receiver's GO / final ACK messages.
    mem::VirtAddr ctrl = nic.memory().alloc(8, mem::kPageSize);
    mem::MemHandle ctrlH = 0;
    vipl::VipMemAttributes ma;
    ma.ptag = s.ptag;
    require(vipl::VipRegisterMem(nic, ctrl, 8, ma, ctrlH), "register ctrl");
    VipDescriptor goD = VipDescriptor::recv(ctrl, ctrlH, 4);
    VipDescriptor ackD = VipDescriptor::recv(ctrl + 4, ctrlH, 4);
    require(vipl::VipPostRecv(nic, s.vi, &goD), "post go recv");
    require(vipl::VipPostRecv(nic, s.vi, &ackD), "post ack recv");

    require(vipl::VipConnectRequest(nic, s.vi, {1, kDiscriminator},
                                    kConnTimeout),
            "connect");
    reapRecv(s, cfg);  // GO

    const sim::SimTime t0 = env.now();
    const sim::Duration cpu0 = env.cpuBusy();
    std::vector<std::unique_ptr<VipDescriptor>> descs;
    descs.reserve(burst);
    const int depth = cfg.pipelineDepth > 0 ? cfg.pipelineDepth : burst;
    int posted = 0;
    int reaped = 0;
    while (reaped < burst) {
      while (posted < burst && posted - reaped < depth) {
        const int b = pickBuffer(s, cfg, posted);
        descs.push_back(std::make_unique<VipDescriptor>(
            makeSendDesc(s, cfg, b, shared, 1)));
        require(vipl::VipPostSend(nic, s.vi, descs.back().get()),
                "post burst send");
        ++posted;
      }
      reapSend(s, cfg);
      ++reaped;
    }
    reapRecv(s, cfg);  // final ACK
    const sim::SimTime t1 = env.now();
    const double seconds = sim::toSec(t1 - t0);
    result.bandwidthMBps = static_cast<double>(cfg.msgBytes) * burst /
                           (seconds * 1e6);
    result.senderCpuPct = 100.0 *
                          static_cast<double>(env.cpuBusy() - cpu0) /
                          static_cast<double>(t1 - t0);
  };

  auto receiver = [&](NodeEnv& env) {
    Side s;
    setupSide(s, env, cfg);
    shared.rdmaTarget[1] = s.bufs[0];
    shared.rdmaHandle[1] = s.handles[0];
    Provider& nic = *s.nic;

    mem::VirtAddr ctrl = nic.memory().alloc(8, mem::kPageSize);
    mem::MemHandle ctrlH = 0;
    vipl::VipMemAttributes ma;
    ma.ptag = s.ptag;
    require(vipl::VipRegisterMem(nic, ctrl, 8, ma, ctrlH), "register ctrl");

    // Prepost the entire burst before releasing the sender.
    std::vector<std::unique_ptr<VipDescriptor>> recvs;
    recvs.reserve(burst);
    for (int i = 0; i < burst; ++i) {
      const int b = pickBuffer(s, cfg, i);
      recvs.push_back(
          std::make_unique<VipDescriptor>(makeRecvDesc(s, cfg, b)));
      require(vipl::VipPostRecv(nic, s.vi, recvs.back().get()),
              "prepost burst recv");
    }

    PendingConn conn;
    require(vipl::VipConnectWait(nic, {1, kDiscriminator}, kConnTimeout, conn),
            "connect wait");
    require(vipl::VipConnectAccept(nic, conn, s.vi), "accept");

    VipDescriptor goD = VipDescriptor::send(ctrl, ctrlH, 4);
    require(vipl::VipPostSend(nic, s.vi, &goD), "send GO");
    reapSend(s, cfg);
    const sim::SimTime t0 = env.now();
    const sim::Duration cpu0 = env.cpuBusy();
    for (int i = 0; i < burst; ++i) reapRecv(s, cfg);
    VipDescriptor ackD = VipDescriptor::send(ctrl + 4, ctrlH, 4);
    require(vipl::VipPostSend(nic, s.vi, &ackD), "send ACK");
    reapSend(s, cfg);
    const sim::SimTime t1 = env.now();
    result.receiverCpuPct = 100.0 *
                            static_cast<double>(env.cpuBusy() - cpu0) /
                            static_cast<double>(t1 - t0);
  };

  cluster.run({sender, receiver});
  return result;
}

}  // namespace vibe::suite
