// One-call survey of a VIA implementation: runs a condensed pass over all
// three VIBe categories against one NicProfile and renders a report.
// This is the library face of the suite — the per-figure bench binaries
// regenerate the paper's tables, an application calls runSurvey() to grade
// a new implementation model.
#pragma once

#include <string>
#include <vector>

#include "nic/profile.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "vibe/clientserver.hpp"
#include "vibe/datatransfer.hpp"
#include "vibe/nondata.hpp"

namespace vibe::suite {

struct SurveyOptions {
  std::vector<std::uint64_t> messageSizes{4, 1024, 8192, 28672};
  std::vector<std::uint32_t> replySizes{16, 1024, 16384};
  int iterations = 100;
  int warmup = 20;
  /// Sizes for the registration probe.
  std::vector<std::uint64_t> regSizes{4096, 65536, 1 << 20};
  /// Message size at which the one-component probes run.
  std::uint64_t probeBytes = 4096;
};

struct SurveyResult {
  std::string implementation;
  NonDataResult nonData;
  std::vector<MemCostPoint> memCosts;

  struct TransferPoint {
    std::uint64_t bytes = 0;
    double latencyPollUsec = 0;
    double latencyBlockUsec = 0;
    double bandwidthMBps = 0;
    double blockRecvCpuPct = 0;
  };
  std::vector<TransferPoint> transfers;

  /// One-component-at-a-time deltas over the base latency at probeBytes.
  double baseLatencyUsec = 0;
  double cqOverheadUsec = 0;        // completion queue
  double noReuseOverheadUsec = 0;   // 0% buffer reuse
  double multiViOverheadUsec = 0;   // 16 active VIs
  double notifyOverheadUsec = 0;    // async handler vs polling
  bool rdmaWriteSupported = false;
  double rdmaLatencyDeltaUsec = 0;  // RDMA write minus send/recv (if any)

  struct TransactionPoint {
    std::uint32_t replyBytes = 0;
    double transactionsPerSec = 0;
    double roundTripUsec = 0;
  };
  std::vector<TransactionPoint> transactions;
};

/// Runs the condensed suite against one implementation model.
SurveyResult runSurvey(const nic::NicProfile& profile,
                       const SurveyOptions& options = {});

/// Renders a human-readable report.
std::string renderSurvey(const SurveyResult& result);

/// Renders the registry as a stats appendix (the `--stats` / VIBE_STATS=1
/// output appended after a suite run). Empty string when the registry
/// recorded nothing.
std::string renderStatsAppendix(const obs::MetricsRegistry& metrics);

/// Renders the span profiler's per-stage latency attribution table.
std::string renderStageAttribution(const obs::SpanProfiler& spans);

}  // namespace vibe::suite
