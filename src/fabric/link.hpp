// Point-to-point unidirectional link model.
//
// A link serializes frames at its bandwidth (FIFO through a Resource),
// then delivers each frame after a fixed propagation delay. Bernoulli loss
// can be injected for reliability testing; drops are counted. For
// fault-injection scenarios, time-bounded overrides can be scheduled:
// loss-rate windows (bursts, flaps, partitions), corruption windows
// (frames delivered with the corrupted flag set), and latency windows
// (extra propagation delay). All window decisions are evaluated at
// send() entry time, so they compose deterministically with the FIFO
// serialization model.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "fabric/packet.hpp"
#include "obs/span.hpp"
#include "simcore/engine.hpp"
#include "simcore/prng.hpp"
#include "simcore/resource.hpp"
#include "simcore/time.hpp"

namespace vibe::fabric {

struct LinkParams {
  double bandwidthMBps = 125.0;       // 1 Gb/s default
  sim::Duration propagation = 0;      // cable + PHY latency
  std::uint32_t headerBytes = 32;     // per-frame header/CRC on the wire
  double lossRate = 0.0;              // Bernoulli drop probability
  std::uint64_t seed = 1;             // loss PRNG seed
};

class Link {
 public:
  using Deliver = std::function<void(Packet&&)>;

  Link(sim::Engine& engine, std::string name, const LinkParams& params)
      : engine_(engine),
        name_(std::move(name)),
        params_(params),
        tx_(name_ + ".tx"),
        rng_(params.seed, name_),
        corruptRng_(params.seed, name_ + "/corrupt") {}

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Sets the receive-side sink. Must be called before send().
  void connect(Deliver sink) { sink_ = std::move(sink); }

  /// Cross-domain delivery hook (conservative PDES): when set, the final
  /// delivery event is scheduled through `post(arrivalTime, fn)` — the
  /// topology wires this to ShardedEngine::sendAt — instead of the owning
  /// engine. Everything else (serialization FIFO, fault windows, stats)
  /// still runs in the sending domain. Setup-time only; nullptr clears.
  using RemotePost = std::function<void(sim::SimTime, sim::EventFn)>;
  void setRemoteDelivery(RemotePost post) { remote_ = std::move(post); }

  /// Queues a frame for transmission. Delivery happens at
  /// serialization-complete + propagation, unless the frame is dropped.
  void send(Packet&& p);

  /// Attaches a span profiler: every delivered data-path frame emits a
  /// Wire span covering serialization + propagation (acks and connection
  /// management are excluded so stage attribution reflects the message
  /// path). Detach with nullptr; no-cost when detached.
  void setSpanProfiler(obs::SpanProfiler* spans) { spans_ = spans; }

  /// Changes the base loss rate mid-run (failure-injection tests).
  ///
  /// Timing semantics: the loss decision for a frame is made when send()
  /// is called for it, so the new rate applies only to frames sent after
  /// this call. Frames already serializing or propagating are unaffected —
  /// exactly like unplugging a cable cannot retroactively drop a frame
  /// that already left the NIC.
  void setLossRate(double rate) { params_.lossRate = rate; }

  /// Schedules a loss-rate override for virtual times [start, end).
  /// While a window covers the send() entry time, its rate replaces the
  /// base lossRate (rate=1.0 models a link-down flap or partition leg;
  /// rate=0.0 forces a loss-free window over a lossy base). Overlapping
  /// windows: the most recently scheduled one wins. Expired windows are
  /// pruned lazily. Like setLossRate, only frames sent inside the window
  /// are affected.
  void scheduleLossWindow(sim::SimTime start, sim::SimTime end, double rate);

  /// Schedules a corruption window for [start, end): frames sent while it
  /// covers now() are delivered with `Packet::corrupted` set with
  /// probability `rate`. Corruption draws from an independent PRNG stream,
  /// so scheduling it does not perturb the loss sequence. Connection-
  /// management frames are exempt (they ride the reliable dialog channel,
  /// same as the loss exemption).
  void scheduleCorruptWindow(sim::SimTime start, sim::SimTime end,
                             double rate);

  /// Schedules extra one-way latency for frames sent during [start, end)
  /// (a congestion / rerouting spike). Applies to every frame, including
  /// connection management: the extra delay models the wire itself.
  void scheduleLatencyWindow(sim::SimTime start, sim::SimTime end,
                             sim::Duration extra);

  /// Frames accepted but not yet fully serialized at `now` — the output
  /// buffer occupancy a switch consults before enqueueing (tail drop).
  /// Includes the frame currently on the wire.
  std::uint32_t queuedFrames(sim::SimTime now);

  const std::string& name() const { return name_; }
  double bandwidthMBps() const { return params_.bandwidthMBps; }
  std::uint32_t headerBytes() const { return params_.headerBytes; }
  std::uint64_t framesSent() const { return framesSent_; }
  std::uint64_t framesDropped() const { return framesDropped_; }
  /// Frames delivered with the corrupted flag set (the receiver counts
  /// and discards them; see Packet::corrupted).
  std::uint64_t framesCorrupted() const { return framesCorrupted_; }
  std::uint64_t bytesCarried() const { return bytesCarried_; }
  /// Cumulative serialization busy time (wire utilization numerator).
  sim::Duration busyTime() const { return tx_.busyTime(); }

 private:
  struct RateWindow {
    sim::SimTime start = 0;
    sim::SimTime end = 0;
    double rate = 0.0;
  };
  struct LatencyWindow {
    sim::SimTime start = 0;
    sim::SimTime end = 0;
    sim::Duration extra = 0;
  };

  /// Effective rate at `now`: the latest-scheduled window covering `now`,
  /// else `base`. Prunes windows that can no longer apply.
  static double effectiveRate(std::vector<RateWindow>& windows, double base,
                              sim::SimTime now);

  sim::Engine& engine_;
  std::string name_;
  LinkParams params_;
  sim::Resource tx_;
  sim::Xoshiro256 rng_;
  sim::Xoshiro256 corruptRng_;
  Deliver sink_;
  RemotePost remote_;
  obs::SpanProfiler* spans_ = nullptr;
  std::uint64_t framesSent_ = 0;
  std::uint64_t framesDropped_ = 0;
  std::uint64_t framesCorrupted_ = 0;
  std::uint64_t bytesCarried_ = 0;
  // Scheduled in order; later entries override earlier ones on overlap.
  std::vector<RateWindow> lossWindows_;
  std::vector<RateWindow> corruptWindows_;
  std::vector<LatencyWindow> latencyWindows_;
  // Serialization-complete times of in-flight frames, ascending (FIFO
  // wire). Pruned lazily; size after pruning = buffer occupancy.
  std::deque<sim::SimTime> serEnds_;
};

}  // namespace vibe::fabric
