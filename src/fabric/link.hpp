// Point-to-point unidirectional link model.
//
// A link serializes frames at its bandwidth (FIFO through a Resource),
// then delivers each frame after a fixed propagation delay. Bernoulli loss
// can be injected for reliability testing; drops are counted.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "fabric/packet.hpp"
#include "simcore/engine.hpp"
#include "simcore/prng.hpp"
#include "simcore/resource.hpp"
#include "simcore/time.hpp"

namespace vibe::fabric {

struct LinkParams {
  double bandwidthMBps = 125.0;       // 1 Gb/s default
  sim::Duration propagation = 0;      // cable + PHY latency
  std::uint32_t headerBytes = 32;     // per-frame header/CRC on the wire
  double lossRate = 0.0;              // Bernoulli drop probability
  std::uint64_t seed = 1;             // loss PRNG seed
};

class Link {
 public:
  using Deliver = std::function<void(Packet&&)>;

  Link(sim::Engine& engine, std::string name, const LinkParams& params)
      : engine_(engine),
        name_(std::move(name)),
        params_(params),
        tx_(name_ + ".tx"),
        rng_(params.seed, name_) {}

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Sets the receive-side sink. Must be called before send().
  void connect(Deliver sink) { sink_ = std::move(sink); }

  /// Queues a frame for transmission. Delivery happens at
  /// serialization-complete + propagation, unless the frame is dropped.
  void send(Packet&& p);

  /// Changes the loss rate mid-run (failure-injection tests).
  void setLossRate(double rate) { params_.lossRate = rate; }

  const std::string& name() const { return name_; }
  double bandwidthMBps() const { return params_.bandwidthMBps; }
  std::uint64_t framesSent() const { return framesSent_; }
  std::uint64_t framesDropped() const { return framesDropped_; }
  std::uint64_t bytesCarried() const { return bytesCarried_; }
  /// Cumulative serialization busy time (wire utilization numerator).
  sim::Duration busyTime() const { return tx_.busyTime(); }

 private:
  sim::Engine& engine_;
  std::string name_;
  LinkParams params_;
  sim::Resource tx_;
  sim::Xoshiro256 rng_;
  Deliver sink_;
  std::uint64_t framesSent_ = 0;
  std::uint64_t framesDropped_ = 0;
  std::uint64_t bytesCarried_ = 0;
};

}  // namespace vibe::fabric
