#include "fabric/domain.hpp"

#include <string>

namespace vibe::fabric {

namespace {

/// Hosts per edge switch for a spec, after the same validation the
/// Topology builder applies. 0 means "all hosts on one switch" (star).
std::uint32_t hostsPerEdge(const TopologySpec& spec) {
  switch (spec.kind) {
    case TopologyKind::Star:
      return 0;
    case TopologyKind::TwoLevelTree:
      if (spec.nodesPerSwitch == 0) {
        throw sim::SimError(
            "DomainPartition: two-level tree needs nodesPerSwitch > 0");
      }
      return spec.nodesPerSwitch;
    case TopologyKind::FatTree: {
      const std::uint32_t k = spec.fatTreeK;
      if (k < 2 || (k % 2) != 0) {
        throw sim::SimError(
            "DomainPartition: fat-tree arity k must be even and >= 2");
      }
      if (spec.nodes > k * k * k / 4) {
        throw sim::SimError("DomainPartition: " +
                            std::to_string(spec.nodes) +
                            " hosts exceed k^3/4 for fat-tree k=" +
                            std::to_string(k));
      }
      return k / 2;
    }
  }
  throw sim::SimError("DomainPartition: unknown topology kind");
}

}  // namespace

std::uint32_t DomainPartition::domainOf(std::uint32_t host) const {
  if (host >= hostDomain.size()) {
    throw sim::SimError("DomainPartition::domainOf: host " +
                        std::to_string(host) + " out of range [0, " +
                        std::to_string(hostDomain.size()) + ")");
  }
  return hostDomain[host];
}

DomainPartition DomainPartition::fromSpec(const TopologySpec& spec) {
  const std::uint32_t perEdge = hostsPerEdge(spec);
  DomainPartition part;
  part.hostDomain.resize(spec.nodes, 0);
  if (perEdge == 0) {
    part.domains = 1;
    return part;
  }
  for (std::uint32_t n = 0; n < spec.nodes; ++n) {
    part.hostDomain[n] = n / perEdge;
  }
  part.domains = spec.nodes == 0 ? 1 : (spec.nodes - 1) / perEdge + 1;
  return part;
}

PathTier pathTier(const TopologySpec& spec, std::uint32_t src,
                  std::uint32_t dst) {
  if (src >= spec.nodes || dst >= spec.nodes) {
    throw sim::SimError("pathTier: host id out of range [0, " +
                        std::to_string(spec.nodes) + ")");
  }
  const std::uint32_t perEdge = hostsPerEdge(spec);
  if (perEdge == 0 || src / perEdge == dst / perEdge) {
    return PathTier::SameEdge;
  }
  if (spec.kind == TopologyKind::TwoLevelTree) {
    // Any cross-leaf pair goes through the one root: same path length.
    return PathTier::SamePod;
  }
  const std::uint32_t podHosts = (spec.fatTreeK / 2) * (spec.fatTreeK / 2);
  return src / podHosts == dst / podHosts ? PathTier::SamePod
                                          : PathTier::CrossPod;
}

sim::Duration crossDomainLookahead(const TopologySpec& spec) {
  if (hostsPerEdge(spec) == 0) return 0;  // one domain: nothing crosses
  const sim::Duration hop =
      sim::transferTime(spec.fabricLink.headerBytes,
                        spec.fabricLink.bandwidthMBps) +
      spec.fabricLink.propagation;
  return 2 * hop + spec.coreLatency;
}

sim::Duration hopLookahead(const TopologySpec& spec) {
  if (hostsPerEdge(spec) == 0) return 0;  // single switch: nothing crosses
  return sim::transferTime(spec.fabricLink.headerBytes,
                           spec.fabricLink.bandwidthMBps) +
         spec.fabricLink.propagation;
}

std::uint32_t stackDomainCount(const TopologySpec& spec) {
  const std::uint32_t perEdge = hostsPerEdge(spec);  // validates the spec
  switch (spec.kind) {
    case TopologyKind::Star:
      return 1;
    case TopologyKind::TwoLevelTree: {
      const std::uint32_t leaves =
          spec.nodes == 0 ? 1 : (spec.nodes - 1) / perEdge + 1;
      return leaves + 1;  // + root
    }
    case TopologyKind::FatTree: {
      const std::uint32_t half = spec.fatTreeK / 2;
      const std::uint32_t numEdges = spec.fatTreeK * half;
      const std::uint32_t numAggrs = spec.fatTreeK * half;
      const std::uint32_t numCores = half * half;
      return numEdges + numAggrs + numCores;
    }
  }
  throw sim::SimError("stackDomainCount: unknown topology kind");
}

}  // namespace vibe::fabric
