#include "fabric/topology.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/span.hpp"
#include "simcore/pdes.hpp"

namespace vibe::fabric {

namespace {

/// Uniform bounds guard for the index-based accessors: every
/// out-of-range index surfaces as a SimError naming the accessor and
/// the valid range (the Network::leafOf contract), never as a raw
/// std::out_of_range.
void checkIndex(std::size_t i, std::size_t size, const char* what) {
  if (i >= size) {
    throw sim::SimError(std::string(what) + ": index " + std::to_string(i) +
                        " out of range [0, " + std::to_string(size) + ")");
  }
}

/// splitmix64 finalizer: the ECMP flow-hash mixer. Pure function of its
/// input, so path selection is reproducible from (seed, flow) alone.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* toString(SwitchTier t) {
  switch (t) {
    case SwitchTier::Edge: return "edge";
    case SwitchTier::Aggregation: return "aggr";
    case SwitchTier::Core: return "core";
  }
  return "?";
}

// --- Switch ---------------------------------------------------------------

Switch::Switch(Topology& topo, sim::Engine& engine, std::uint32_t domain,
               std::uint32_t id, std::string name, SwitchTier tier,
               sim::Duration latency, std::uint32_t nodes,
               std::uint32_t bufferFrames)
    : topo_(topo),
      engine_(engine),
      domain_(domain),
      id_(id),
      name_(std::move(name)),
      tier_(tier),
      latency_(latency),
      bufferFrames_(bufferFrames),
      route_(nodes, -1) {}

std::uint32_t Switch::addPort(Link* out) {
  ports_.push_back(Port{out});
  return static_cast<std::uint32_t>(ports_.size() - 1);
}

void Switch::setHostRoute(NodeId dst, std::uint32_t port) {
  checkIndex(dst, route_.size(), "Switch::setHostRoute");
  checkIndex(port, ports_.size(), "Switch::setHostRoute(port)");
  route_[dst] = static_cast<std::int32_t>(port);
}

const Switch::Port& Switch::port(std::uint32_t i) const {
  checkIndex(i, ports_.size(), "Switch::port");
  return ports_[i];
}

void Switch::setEcmpUplinks(std::vector<std::uint32_t> ports) {
  ecmp_ = std::move(ports);
}

void Switch::ingress(Packet&& p, std::uint32_t ingressHeaderBytes,
                     bool fromHost) {
  // Switch-hop Wire span: cut-through latency, sized with the bytes the
  // ingress wire actually carried (each hop attributes its own link's
  // header, not a topology-wide constant). spans_ is this switch's own
  // (domain-local under sharding) profiler.
  if (spans_ != nullptr && latency_ > 0 && p.kind != PacketKind::Ack &&
      !isConnectionManagement(p.kind)) {
    const sim::SimTime now = engine_.now();
    spans_->emit(obs::Stage::Wire, p.src, p.srcVi, now, now + latency_,
                 p.wireBytes(ingressHeaderBytes));
  }
  engine_.post(latency_, [this, fromHost, p = std::move(p)]() mutable {
    forward(std::move(p), fromHost);
  });
}

std::uint32_t Switch::selectUplink(const Packet& p) const {
  // Seed-keyed flow hash: constant for one (src, dst, srcVi, dstVi) tuple
  // so a VI's frames stay in order, decorrelated across switches by id.
  std::uint64_t h = topo_.spec().seed ^
                    (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(id_) + 1));
  h = mix(h ^ ((static_cast<std::uint64_t>(p.src) << 32) | p.dst));
  h = mix(h ^ ((static_cast<std::uint64_t>(p.srcVi) << 32) | p.dstVi));
  return ecmp_[h % ecmp_.size()];
}

void Switch::forward(Packet&& p, bool fromHost) {
  ++forwarded_;
  if (fromHost) ++fromHostForwards_;
  std::uint32_t portIdx = 0;
  const std::int32_t rt =
      p.dst < route_.size() ? route_[p.dst] : std::int32_t{-1};
  if (rt >= 0) {
    portIdx = static_cast<std::uint32_t>(rt);
  } else if (!ecmp_.empty()) {
    portIdx = selectUplink(p);
  } else {
    throw sim::SimError("Switch " + name_ + ": no route to node " +
                        std::to_string(p.dst));
  }
  Port& port = ports_.at(portIdx);
  if (bufferFrames_ != 0) {
    const std::uint32_t depth = port.out->queuedFrames(engine_.now());
    if (depth >= bufferFrames_) {
      // Tail drop: the output buffer is full. The frame is gone; higher
      // layers see it exactly like wire loss (timeout + retransmit).
      ++port.drops;
      ++drops_;
      return;
    }
    if (depth > 0) {
      ++port.queued;
      ++queuedTotal_;
    }
    port.maxDepth = std::max(port.maxDepth, depth + 1);
    maxDepth_ = std::max(maxDepth_, depth + 1);
  }
  port.out->send(std::move(p));
}

// --- Topology -------------------------------------------------------------

Topology::Topology(sim::Engine& engine, const TopologySpec& spec,
                   Deliver deliver)
    : engine_(&engine), spec_(spec), deliver_(std::move(deliver)) {
  switch (spec_.kind) {
    case TopologyKind::Star: buildStar(); break;
    case TopologyKind::TwoLevelTree: buildTree(); break;
    case TopologyKind::FatTree: buildFatTree(); break;
  }
  // Serial: everything runs on one engine; the builders' switch-level
  // domain numbering is kept (it costs nothing) but the topology spans a
  // single logical domain.
  domainCount_ = 1;
}

Topology::Topology(sim::ShardedEngine& pdes, const TopologySpec& spec,
                   Deliver deliver)
    : pdes_(&pdes), spec_(spec), deliver_(std::move(deliver)) {
  switch (spec_.kind) {
    case TopologyKind::Star: buildStar(); break;
    case TopologyKind::TwoLevelTree: buildTree(); break;
    case TopologyKind::FatTree: buildFatTree(); break;
  }
  if (pdes.domainCount() != domainCount_) {
    throw sim::SimError("Topology: spec needs " +
                        std::to_string(domainCount_) +
                        " PDES domains (one per switch) but the engine has " +
                        std::to_string(pdes.domainCount()));
  }
}

sim::Engine& Topology::engine() {
  if (pdes_ != nullptr) {
    throw sim::SimError(
        "Topology::engine: topology is sharded across PDES domains; use "
        "engineForDomain");
  }
  return *engine_;
}

sim::Engine& Topology::engineForDomain(std::uint32_t domain) {
  if (pdes_ != nullptr) return pdes_->domainEngine(domain);
  return *engine_;
}

std::uint32_t Topology::hostDomain(NodeId n) const {
  if (pdes_ == nullptr) return 0;
  checkIndex(n, spec_.nodes, "Topology::hostDomain");
  switch (spec_.kind) {
    case TopologyKind::Star: return 0;
    case TopologyKind::TwoLevelTree: return n / spec_.nodesPerSwitch;
    case TopologyKind::FatTree: return n / (spec_.fatTreeK / 2);
  }
  return 0;
}

void Topology::placeLink(Link* l, std::uint32_t srcDomain,
                         std::uint32_t dstDomain) {
  linkDomains_.emplace_back(l, srcDomain);
  if (pdes_ != nullptr && srcDomain != dstDomain) {
    sim::ShardedEngine* pdes = pdes_;
    l->setRemoteDelivery(
        [pdes, srcDomain, dstDomain](sim::SimTime at, sim::EventFn fn) {
          pdes->sendAt(srcDomain, dstDomain, at, std::move(fn));
        });
  }
}

Switch* Topology::addSwitch(std::string name, SwitchTier tier,
                            sim::Duration latency, std::uint32_t domain) {
  switches_.push_back(std::make_unique<Switch>(
      *this, engineForDomain(domain), domain,
      static_cast<std::uint32_t>(switches_.size()), std::move(name), tier,
      latency, spec_.nodes, spec_.portBufferFrames));
  return switches_.back().get();
}

void Topology::connectToSwitch(Link* l, Switch* sw, bool fromHost) {
  const std::uint32_t header = l->headerBytes();
  l->connect([sw, header, fromHost](Packet&& p) {
    sw->ingress(std::move(p), header, fromHost);
  });
}

Link* Topology::addFabricLink(std::string name, std::uint64_t seedSalt,
                              Switch* from, Switch* to) {
  LinkParams lp = spec_.fabricLink;
  lp.seed = spec_.seed ^ seedSalt;
  fabricLinks_.push_back(std::make_unique<Link>(
      engineForDomain(from->domain()), std::move(name), lp));
  Link* l = fabricLinks_.back().get();
  connectToSwitch(l, to, /*fromHost=*/false);
  placeLink(l, from->domain(), to->domain());
  return l;
}

/// Host link pairs, identical names/seeds to the pre-topology Network
/// ("up<n>"/"down<n>", salts 0x1000/0x2000) so star and tree runs draw
/// the same PRNG streams and stay byte-identical.
void Topology::buildHostLinks(const std::function<Switch*(NodeId)>& edgeOf) {
  hostUp_.reserve(spec_.nodes);
  hostDown_.reserve(spec_.nodes);
  for (NodeId n = 0; n < spec_.nodes; ++n) {
    // A host link pair lives entirely inside its edge switch's domain:
    // the host's NIC, the uplink, the switch, and the downlink all run on
    // the same engine, so host traffic only crosses domains on the
    // inter-switch fabric links.
    Switch* edge = edgeOf(n);
    sim::Engine& eng = engineForDomain(edge->domain());
    LinkParams lp = spec_.hostLink;
    lp.seed = spec_.seed ^ (0x1000ULL + n);
    auto up = std::make_unique<Link>(eng, "up" + std::to_string(n), lp);
    lp.seed = spec_.seed ^ (0x2000ULL + n);
    auto down = std::make_unique<Link>(eng, "down" + std::to_string(n), lp);
    connectToSwitch(up.get(), edge, /*fromHost=*/true);
    down->connect([this, n](Packet&& p) { deliver_(n, std::move(p)); });
    const std::uint32_t port = edge->addPort(down.get());
    edge->setHostRoute(n, port);
    placeLink(up.get(), edge->domain(), edge->domain());
    placeLink(down.get(), edge->domain(), edge->domain());
    hostUp_.push_back(std::move(up));
    hostDown_.push_back(std::move(down));
  }
}

void Topology::buildStar() {
  domainCount_ = 1;
  Switch* sw = addSwitch("sw0", SwitchTier::Edge, spec_.edgeLatency, 0);
  buildHostLinks([sw](NodeId) { return sw; });
}

void Topology::buildTree() {
  const std::uint32_t nps = spec_.nodesPerSwitch;
  const std::uint32_t leaves = (spec_.nodes + nps - 1) / nps;
  // Domains: leaf l -> l, root -> leaves.
  domainCount_ = leaves + 1;
  const std::uint32_t rootDom = leaves;
  std::vector<Switch*> leafSw(leaves);
  for (std::uint32_t leaf = 0; leaf < leaves; ++leaf) {
    leafSw[leaf] = addSwitch("leaf" + std::to_string(leaf), SwitchTier::Edge,
                             spec_.edgeLatency, leaf);
  }
  Switch* root =
      addSwitch("root", SwitchTier::Core, spec_.coreLatency, rootDom);

  buildHostLinks([&leafSw, nps](NodeId n) { return leafSw[n / nps]; });

  // Trunks: legacy names/salts ("trunkUp<leaf>" 0x3000, "trunkDown<leaf>"
  // 0x4000), one shared pair per leaf. An up trunk serializes in the leaf
  // domain and delivers into the root domain; a down trunk the reverse.
  for (std::uint32_t leaf = 0; leaf < leaves; ++leaf) {
    LinkParams tp = spec_.fabricLink;
    tp.seed = spec_.seed ^ (0x3000ULL + leaf);
    auto up = std::make_unique<Link>(
        engineForDomain(leaf), "trunkUp" + std::to_string(leaf), tp);
    tp.seed = spec_.seed ^ (0x4000ULL + leaf);
    auto down = std::make_unique<Link>(
        engineForDomain(rootDom), "trunkDown" + std::to_string(leaf), tp);
    connectToSwitch(up.get(), root, /*fromHost=*/false);
    connectToSwitch(down.get(), leafSw[leaf], /*fromHost=*/false);
    placeLink(up.get(), leaf, rootDom);
    placeLink(down.get(), rootDom, leaf);

    // Leaf: non-local hosts go up the (single-member ECMP) trunk.
    leafSw[leaf]->setEcmpUplinks({leafSw[leaf]->addPort(up.get())});
    // Root: this leaf's hosts go down its trunk.
    const std::uint32_t rootPort = root->addPort(down.get());
    const NodeId first = leaf * nps;
    const NodeId last = std::min<NodeId>(first + nps, spec_.nodes);
    for (NodeId n = first; n < last; ++n) root->setHostRoute(n, rootPort);

    trunkUp_.push_back(std::move(up));
    trunkDown_.push_back(std::move(down));
  }
}

void Topology::buildFatTree() {
  const std::uint32_t k = spec_.fatTreeK;
  if (k < 2 || (k % 2) != 0) {
    throw sim::SimError("Topology: fat-tree arity k must be even and >= 2");
  }
  const std::uint32_t half = k / 2;
  const std::uint32_t maxHosts = k * k * k / 4;
  if (spec_.nodes > maxHosts) {
    throw sim::SimError("Topology: " + std::to_string(spec_.nodes) +
                        " hosts exceed k^3/4 = " + std::to_string(maxHosts) +
                        " for fat-tree k=" + std::to_string(k));
  }
  const std::uint32_t pods = k;
  const std::uint32_t numEdges = pods * half;
  const std::uint32_t numAggrs = pods * half;
  const std::uint32_t numCores = half * half;
  const std::uint32_t podHosts = half * half;  // hosts per pod

  // Domains: edge e -> e, aggr a -> numEdges + a, core c -> numEdges +
  // numAggrs + c (one PDES domain per switch).
  domainCount_ = numEdges + numAggrs + numCores;
  std::vector<Switch*> edges(numEdges);
  std::vector<Switch*> aggrs(numAggrs);
  std::vector<Switch*> cores(numCores);
  for (std::uint32_t e = 0; e < numEdges; ++e) {
    edges[e] = addSwitch("edge" + std::to_string(e), SwitchTier::Edge,
                         spec_.edgeLatency, e);
  }
  for (std::uint32_t a = 0; a < numAggrs; ++a) {
    aggrs[a] = addSwitch("aggr" + std::to_string(a), SwitchTier::Aggregation,
                         spec_.coreLatency, numEdges + a);
  }
  for (std::uint32_t c = 0; c < numCores; ++c) {
    cores[c] = addSwitch("core" + std::to_string(c), SwitchTier::Core,
                         spec_.coreLatency, numEdges + numAggrs + c);
  }

  // Host n sits under edge n/(k/2); only the first `nodes` hosts exist.
  buildHostLinks([&edges, half](NodeId n) { return edges[n / half]; });

  // Inter-switch links, salted by running index (disjoint from the host
  // 0x1000/0x2000 and tree 0x3000/0x4000 salt ranges).
  std::uint64_t salt = 0x5000;

  // Edge <-> aggregation, per pod: full bipartite k/2 x k/2 mesh.
  for (std::uint32_t p = 0; p < pods; ++p) {
    for (std::uint32_t i = 0; i < half; ++i) {
      const std::uint32_t e = p * half + i;
      std::vector<std::uint32_t> edgeUp;
      edgeUp.reserve(half);
      for (std::uint32_t j = 0; j < half; ++j) {
        const std::uint32_t a = p * half + j;
        Link* up = addFabricLink(
            "ft.e" + std::to_string(e) + ".up" + std::to_string(j), salt++,
            edges[e], aggrs[a]);
        edgeUp.push_back(edges[e]->addPort(up));
        Link* down = addFabricLink(
            "ft.a" + std::to_string(a) + ".down" + std::to_string(i), salt++,
            aggrs[a], edges[e]);
        const std::uint32_t aPort = aggrs[a]->addPort(down);
        // Aggregation routes this edge's hosts down to it.
        const NodeId first = e * half;
        const NodeId last =
            std::min<NodeId>(first + half, spec_.nodes);
        for (NodeId n = first; n < last; ++n) {
          aggrs[a]->setHostRoute(n, aPort);
        }
      }
      edges[e]->setEcmpUplinks(std::move(edgeUp));
    }
  }

  // Aggregation <-> core: aggregation j of every pod connects to cores
  // [j*k/2, (j+1)*k/2); each core reaches every pod through exactly one
  // aggregation switch.
  for (std::uint32_t p = 0; p < pods; ++p) {
    for (std::uint32_t j = 0; j < half; ++j) {
      const std::uint32_t a = p * half + j;
      std::vector<std::uint32_t> aggrUp;
      aggrUp.reserve(half);
      for (std::uint32_t m = 0; m < half; ++m) {
        const std::uint32_t c = j * half + m;
        Link* up = addFabricLink(
            "ft.a" + std::to_string(a) + ".up" + std::to_string(m), salt++,
            aggrs[a], cores[c]);
        aggrUp.push_back(aggrs[a]->addPort(up));
        Link* down = addFabricLink(
            "ft.c" + std::to_string(c) + ".down" + std::to_string(p), salt++,
            cores[c], aggrs[a]);
        const std::uint32_t cPort = cores[c]->addPort(down);
        // Core routes every host of pod p down through aggregation a.
        const NodeId first = p * podHosts;
        const NodeId last =
            std::min<NodeId>(first + podHosts, spec_.nodes);
        for (NodeId n = first; n < last; ++n) {
          cores[c]->setHostRoute(n, cPort);
        }
      }
      aggrs[a]->setEcmpUplinks(std::move(aggrUp));
    }
  }
}

void Topology::inject(Packet&& p) {
  hostUp_[p.src]->send(std::move(p));
}

Link& Topology::hostUplink(NodeId n) {
  checkIndex(n, hostUp_.size(), "Topology::hostUplink");
  return *hostUp_[n];
}

Link& Topology::hostDownlink(NodeId n) {
  checkIndex(n, hostDown_.size(), "Topology::hostDownlink");
  return *hostDown_[n];
}

Link& Topology::trunkUp(std::uint32_t leaf) {
  checkIndex(leaf, trunkUp_.size(), "Topology::trunkUp");
  return *trunkUp_[leaf];
}

Link& Topology::trunkDown(std::uint32_t leaf) {
  checkIndex(leaf, trunkDown_.size(), "Topology::trunkDown");
  return *trunkDown_[leaf];
}

Link& Topology::fabricLink(std::size_t i) {
  checkIndex(i, fabricLinks_.size(), "Topology::fabricLink");
  return *fabricLinks_[i];
}

void Topology::setSpanProfiler(obs::SpanProfiler* spans) {
  spans_ = spans;
  for (auto& [l, d] : linkDomains_) l->setSpanProfiler(spans);
  for (auto& s : switches_) s->setSpanProfiler(spans);
}

void Topology::setDomainSpanProfilers(
    const std::vector<obs::SpanProfiler*>& byDomain) {
  if (byDomain.size() != domainCount_) {
    throw sim::SimError("Topology::setDomainSpanProfilers: got " +
                        std::to_string(byDomain.size()) + " profilers for " +
                        std::to_string(domainCount_) + " domains");
  }
  spans_ = nullptr;
  for (auto& [l, d] : linkDomains_) l->setSpanProfiler(byDomain[d]);
  for (auto& s : switches_) s->setSpanProfiler(byDomain[s->domain()]);
}

std::uint64_t Topology::hostIngressForwards() const {
  std::uint64_t n = 0;
  for (const auto& s : switches_) n += s->hostIngressForwarded();
  return n;
}

std::uint64_t Topology::coreForwards() const {
  std::uint64_t n = 0;
  for (const auto& s : switches_) {
    if (s->tier() == SwitchTier::Core) n += s->packetsForwarded();
  }
  return n;
}

std::uint64_t Topology::framesDropped() const {
  std::uint64_t n = 0;
  for (const auto& l : hostUp_) n += l->framesDropped();
  for (const auto& l : hostDown_) n += l->framesDropped();
  for (const auto& l : trunkUp_) n += l->framesDropped();
  for (const auto& l : trunkDown_) n += l->framesDropped();
  for (const auto& l : fabricLinks_) n += l->framesDropped();
  return n;
}

std::uint64_t Topology::framesCorrupted() const {
  std::uint64_t n = 0;
  for (const auto& l : hostUp_) n += l->framesCorrupted();
  for (const auto& l : hostDown_) n += l->framesCorrupted();
  for (const auto& l : trunkUp_) n += l->framesCorrupted();
  for (const auto& l : trunkDown_) n += l->framesCorrupted();
  for (const auto& l : fabricLinks_) n += l->framesCorrupted();
  return n;
}

std::uint64_t Topology::switchBufferDrops() const {
  std::uint64_t n = 0;
  for (const auto& s : switches_) n += s->bufferDrops();
  return n;
}

std::uint32_t Topology::maxQueueDepth() const {
  std::uint32_t d = 0;
  for (const auto& s : switches_) d = std::max(d, s->maxQueueDepth());
  return d;
}

}  // namespace vibe::fabric
