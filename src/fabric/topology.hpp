// Switched-fabric topology layer: switches, routing tables, and the
// builders that wire them into a graph of Links.
//
// Three topology families share one Switch model:
//
//   Star          one crossbar switch, every host on a full-duplex link
//                 pair (the paper's single-switch testbeds).
//   TwoLevelTree  hosts on leaf switches, leaves on one root through
//                 shared trunk links (`nodesPerSwitch`).
//   FatTree       k-ary fat-tree / folded Clos (k even): k pods of k/2
//                 edge and k/2 aggregation switches, (k/2)^2 core
//                 switches, up to k^3/4 hosts. Every inter-switch tier is
//                 fully wired, so there are (k/2)^2 equal-cost paths
//                 between hosts in different pods.
//
// A Switch owns output ports (each port drives one Link), a routing table
// mapping destination hosts to ports, and an optional ECMP uplink group
// for destinations that must travel "up" the fabric. Uplink selection is
// a seed-keyed deterministic hash of the flow tuple (src, dst, srcVi,
// dstVi), so one flow always takes one path (per-VI frame order is
// preserved through the fabric) while distinct flows spread across the
// equal-cost uplinks — and the same spec + seed always builds the same
// paths.
//
// Ports may be given a finite output buffer (`portBufferFrames`): a frame
// routed to a port whose link already has that many frames awaiting
// serialization is tail-dropped and counted, per port and per switch,
// with a high-watermark occupancy gauge — the congestion signal incast
// and oversubscription benches measure. 0 keeps the legacy unbounded
// FIFO behavior.
//
// Determinism contract: construction derives every Link's PRNG stream
// from (spec.seed, link name) with the same names and salts the
// pre-topology Network used, so Star and TwoLevelTree specs reproduce the
// original star/tree byte-for-byte — same event sequence, same loss
// draws, same spans, same tables.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fabric/link.hpp"
#include "fabric/packet.hpp"
#include "simcore/engine.hpp"

namespace vibe::sim {
class ShardedEngine;
}

namespace vibe::fabric {

enum class TopologyKind : std::uint8_t { Star, TwoLevelTree, FatTree };

/// Which layer of the fabric a switch sits on. Star and tree-leaf
/// switches are Edge; the tree root and fat-tree cores are Core.
enum class SwitchTier : std::uint8_t { Edge, Aggregation, Core };

const char* toString(SwitchTier t);

struct TopologySpec {
  TopologyKind kind = TopologyKind::Star;
  std::uint32_t nodes = 2;
  LinkParams hostLink;              // every host <-> edge-switch link
  sim::Duration edgeLatency = 0;    // star/leaf/fat-tree-edge forwarding
  std::uint64_t seed = 1;           // link PRNG streams + ECMP hash key

  // TwoLevelTree: hosts [k*nodesPerSwitch, ...) share leaf switch k.
  std::uint32_t nodesPerSwitch = 0;

  // Inter-switch links: tree trunks, fat-tree edge<->aggr and aggr<->core.
  LinkParams fabricLink;
  // Root (tree) and aggregation/core (fat-tree) forwarding latency.
  sim::Duration coreLatency = 0;

  // FatTree: the arity k (even, >= 2); hosts <= k^3/4.
  std::uint32_t fatTreeK = 0;

  // Finite per-port output buffers, in frames. 0 = unbounded (legacy).
  std::uint32_t portBufferFrames = 0;
};

class Topology;

/// One switch: output ports, a per-destination routing table, an ECMP
/// uplink group, cut-through forwarding latency, and finite-buffer
/// tail-drop accounting.
class Switch {
 public:
  struct Port {
    Link* out = nullptr;
    std::uint64_t drops = 0;      // tail drops at this port's buffer
    std::uint64_t queued = 0;     // frames enqueued behind >= 1 other frame
    std::uint32_t maxDepth = 0;   // occupancy high watermark (frames)
  };

  Switch(Topology& topo, sim::Engine& engine, std::uint32_t domain,
         std::uint32_t id, std::string name, SwitchTier tier,
         sim::Duration latency, std::uint32_t nodes,
         std::uint32_t bufferFrames);

  Switch(const Switch&) = delete;
  Switch& operator=(const Switch&) = delete;

  /// Registers `out` as the next output port; returns its index.
  std::uint32_t addPort(Link* out);
  /// Routes frames for host `dst` to `port`.
  void setHostRoute(NodeId dst, std::uint32_t port);
  /// Ports used (via the ECMP flow hash) for destinations with no host
  /// route — the switch's equal-cost uplinks toward the next tier.
  void setEcmpUplinks(std::vector<std::uint32_t> ports);

  /// Terminates an input link: emits the switch-hop Wire span (sized with
  /// the *ingress* link's header, i.e. the bytes that wire carried), then
  /// forwards after the cut-through latency. `fromHost` marks frames
  /// entering the fabric from a host uplink (ingress accounting).
  void ingress(Packet&& p, std::uint32_t ingressHeaderBytes, bool fromHost);

  const std::string& name() const { return name_; }
  std::uint32_t id() const { return id_; }
  SwitchTier tier() const { return tier_; }
  /// PDES domain this switch (and its forwarding events) belongs to.
  std::uint32_t domain() const { return domain_; }
  /// Span profiler for this switch's hop spans (per-domain under
  /// sharding; one shared profiler otherwise). nullptr detaches.
  void setSpanProfiler(obs::SpanProfiler* spans) { spans_ = spans; }
  std::uint32_t portCount() const {
    return static_cast<std::uint32_t>(ports_.size());
  }
  /// Throws SimError naming the switch and index when out of range.
  const Port& port(std::uint32_t i) const;

  std::uint64_t packetsForwarded() const { return forwarded_; }
  /// Frames this switch forwarded that arrived from a host uplink (the
  /// per-switch share of Topology::hostIngressForwards; keeping the
  /// counter on the switch makes it single-writer under sharding).
  std::uint64_t hostIngressForwarded() const { return fromHostForwards_; }
  /// Frames tail-dropped at this switch's finite output buffers.
  std::uint64_t bufferDrops() const { return drops_; }
  /// Frames that found >= 1 frame already queued at their output port
  /// (the backpressure counter: how often the fabric actually queued).
  std::uint64_t framesQueued() const { return queuedTotal_; }
  /// Deepest output-buffer occupancy seen, in frames (includes the frame
  /// being enqueued).
  std::uint32_t maxQueueDepth() const { return maxDepth_; }

 private:
  void forward(Packet&& p, bool fromHost);
  std::uint32_t selectUplink(const Packet& p) const;

  Topology& topo_;
  sim::Engine& engine_;  // the owning domain's engine
  std::uint32_t domain_;
  std::uint32_t id_;
  std::string name_;
  SwitchTier tier_;
  sim::Duration latency_;
  std::uint32_t bufferFrames_;
  obs::SpanProfiler* spans_ = nullptr;
  std::vector<Port> ports_;
  // route_[dst] = port, or -1 = use the ECMP uplink group.
  std::vector<std::int32_t> route_;
  std::vector<std::uint32_t> ecmp_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t fromHostForwards_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t queuedTotal_ = 0;
  std::uint32_t maxDepth_ = 0;
};

/// The wired fabric: owns every switch and link of a spec'd topology and
/// moves packets from host uplinks to host downlinks through them.
class Topology {
 public:
  /// Called when a frame reaches its destination host's downlink.
  using Deliver = std::function<void(NodeId, Packet&&)>;

  Topology(sim::Engine& engine, const TopologySpec& spec, Deliver deliver);

  /// Sharded construction (conservative PDES): `pdes` must be a hosted-
  /// mode ShardedEngine with one domain per switch of this spec (see
  /// stackDomainCount). Every switch and link is built on its domain's
  /// hosted engine — one domain per edge switch covering its hosts and
  /// host links, one per aggregation/core switch — and every inter-switch
  /// link whose endpoints straddle domains routes its delivery through
  /// ShardedEngine::sendAt. The executed event schedule per domain is
  /// byte-identical at any shard count.
  Topology(sim::ShardedEngine& pdes, const TopologySpec& spec,
           Deliver deliver);

  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  /// The serial engine (serial construction only; throws under sharding —
  /// there is no single engine, use engineForDomain).
  sim::Engine& engine();
  bool sharded() const { return pdes_ != nullptr; }
  /// PDES domains this topology spans (1 when serial).
  std::uint32_t domainCount() const { return domainCount_; }
  /// Domain of host `n`'s edge switch (0 when serial or star).
  std::uint32_t hostDomain(NodeId n) const;
  /// The engine owning `domain` (the serial engine when not sharded).
  sim::Engine& engineForDomain(std::uint32_t domain);
  const TopologySpec& spec() const { return spec_; }

  /// Sends a frame down its source host's uplink (no validation; the
  /// Network facade owns the argument checks).
  void inject(Packet&& p);

  /// Attaches a span profiler to every link and switch hop. nullptr
  /// detaches.
  void setSpanProfiler(obs::SpanProfiler* spans);
  obs::SpanProfiler* spanProfiler() const { return spans_; }

  /// Sharded alternative: one profiler per domain (indexed by domain id;
  /// size must equal domainCount()). Each link and switch attaches its
  /// owning domain's profiler, so every emit is domain-local and the
  /// per-domain profilers can be merged deterministically after the run.
  void setDomainSpanProfilers(const std::vector<obs::SpanProfiler*>& byDomain);

  // Link accessors. Every accessor below throws SimError naming the
  // accessor and the offending index on out-of-range arguments — the
  // same contract as Network::leafOf — rather than leaking a raw
  // std::out_of_range from the underlying container.
  Link& hostUplink(NodeId n);
  Link& hostDownlink(NodeId n);

  /// Tree trunks (empty outside TwoLevelTree).
  std::uint32_t trunkCount() const {
    return static_cast<std::uint32_t>(trunkUp_.size());
  }
  Link& trunkUp(std::uint32_t leaf);
  Link& trunkDown(std::uint32_t leaf);

  /// Fat-tree inter-switch links, in construction order (edge<->aggr by
  /// pod, then aggr<->core); exposed for fault injection and stats.
  std::size_t fabricLinkCount() const { return fabricLinks_.size(); }
  Link& fabricLink(std::size_t i);

  const std::vector<std::unique_ptr<Switch>>& switches() const {
    return switches_;
  }

  /// Frames dropped / corrupted by *links* (loss and corruption windows),
  /// summed over every link in the topology.
  std::uint64_t framesDropped() const;
  std::uint64_t framesCorrupted() const;
  /// Frames tail-dropped at finite switch buffers, summed over switches.
  std::uint64_t switchBufferDrops() const;
  /// Deepest output-buffer occupancy seen at any switch port.
  std::uint32_t maxQueueDepth() const;

  /// Packets forwarded by their first (host-ingress) switch — one per
  /// packet that entered the fabric. Summed over per-switch counters so
  /// every counter stays single-writer under sharding.
  std::uint64_t hostIngressForwards() const;
  /// Packets forwarded by a Core-tier switch (tree root / fat-tree core).
  std::uint64_t coreForwards() const;

 private:
  friend class Switch;

  void buildHostLinks(const std::function<Switch*(NodeId)>& edgeOf);
  void buildStar();
  void buildTree();
  void buildFatTree();
  Switch* addSwitch(std::string name, SwitchTier tier, sim::Duration latency,
                    std::uint32_t domain);
  /// Creates one directed inter-switch link (salted off the running
  /// fabric-link index) owned by `from`'s domain and connects it to
  /// `to`'s ingress (via the cross-domain mailbox when they differ).
  Link* addFabricLink(std::string name, std::uint64_t seedSalt, Switch* from,
                      Switch* to);
  void connectToSwitch(Link* l, Switch* sw, bool fromHost);
  /// Registers a newly built link's owning domain and, under sharding,
  /// routes its delivery through sendAt when `dstDomain` differs.
  void placeLink(Link* l, std::uint32_t srcDomain, std::uint32_t dstDomain);

  sim::Engine* engine_ = nullptr;        // serial construction
  sim::ShardedEngine* pdes_ = nullptr;   // sharded construction
  std::uint32_t domainCount_ = 1;
  TopologySpec spec_;
  Deliver deliver_;
  std::vector<std::unique_ptr<Switch>> switches_;
  std::vector<std::unique_ptr<Link>> hostUp_;
  std::vector<std::unique_ptr<Link>> hostDown_;
  std::vector<std::unique_ptr<Link>> trunkUp_;    // TwoLevelTree only
  std::vector<std::unique_ptr<Link>> trunkDown_;  // TwoLevelTree only
  std::vector<std::unique_ptr<Link>> fabricLinks_;  // FatTree only
  // (link, owner domain) in construction order, for per-domain span
  // attachment; owner = the domain whose engine runs the link's events.
  std::vector<std::pair<Link*, std::uint32_t>> linkDomains_;
  obs::SpanProfiler* spans_ = nullptr;
};

}  // namespace vibe::fabric
