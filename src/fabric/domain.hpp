// Fabric domain partitioning for the conservative PDES engine.
//
// A PDES domain is a group of hosts whose state one shard may touch
// without synchronization. The natural cut in every VIBe topology is the
// edge switch: hosts under one edge (star: the single crossbar; tree: a
// leaf; fat-tree: an edge switch) interact at host-link latencies, while
// anything between two edges must cross at least one inter-switch link —
// and that link's latency is exactly the conservative lookahead the
// sharded engine needs (see src/simcore/pdes.hpp and docs/PDES.md).
//
// This header derives both from a TopologySpec: the host -> domain map
// and the minimum virtual time any frame needs to travel from one
// domain's edge switch into another domain. The derivation is a lower
// bound over every cross-domain path — header-only serialization plus
// propagation plus the intervening switch latencies — so a model that
// charges real (>= header-sized) frames along the same hops always
// satisfies the ShardedEngine::send lookahead requirement.
#pragma once

#include <cstdint>
#include <vector>

#include "fabric/topology.hpp"
#include "simcore/time.hpp"

namespace vibe::fabric {

/// Relative position of two hosts in a topology, by path length.
enum class PathTier : std::uint8_t {
  SameEdge,  // same edge switch (star: always)
  SamePod,   // fat-tree: same pod via an aggregation switch;
             // tree: different leaves via the root
  CrossPod,  // fat-tree only: edge -> aggr -> core -> aggr -> edge
};

/// Host -> PDES-domain partition of a topology: one domain per edge
/// switch.
struct DomainPartition {
  std::uint32_t domains = 1;
  std::vector<std::uint32_t> hostDomain;  // size = spec.nodes

  std::uint32_t domainOf(std::uint32_t host) const;

  /// Builds the edge-switch partition for any TopologySpec kind.
  /// Validates the spec the same way the Topology builder does (even
  /// fat-tree arity, host count within k^3/4).
  static DomainPartition fromSpec(const TopologySpec& spec);
};

/// Path tier of a (src, dst) host pair under `spec`. Throws SimError on
/// out-of-range hosts, mirroring the topology accessors.
PathTier pathTier(const TopologySpec& spec, std::uint32_t src,
                  std::uint32_t dst);

/// Conservative lookahead: a lower bound on the virtual time between a
/// frame leaving its source edge switch and any effect inside another
/// domain. Star topologies (one domain) have no cross-domain paths and
/// return 0. For tree and fat-tree the bound is one minimum-size fabric
/// hop up, the intervening switch's forwarding latency, and one hop down:
///
///   lookahead = 2 * (serialize(headerBytes) + propagation) + coreLatency
///
/// computed from spec.fabricLink. Every real cross-domain frame pays at
/// least this (payloads only add serialization time), so models built on
/// this bound always satisfy ShardedEngine::send.
sim::Duration crossDomainLookahead(const TopologySpec& spec);

/// Single-hop lookahead for the switch-per-domain decomposition used by
/// the sharded Topology (one PDES domain per switch, not per edge
/// switch): the minimum virtual time between a frame entering any
/// inter-switch link and its delivery at the far switch,
///
///   hop = serialize(fabricLink.headerBytes) + fabricLink.propagation
///
/// Link::send schedules delivery at serialization-complete + propagation
/// with serialization-complete >= now + serialize(header), and latency
/// windows only add delay, so every cross-domain delivery arrives at
/// least `hop` after the send. Star topologies (one switch) return 0 —
/// there is nothing to cross.
sim::Duration hopLookahead(const TopologySpec& spec);

/// Number of PDES domains the sharded Topology builds for `spec` — one
/// per switch, in the builder's numbering (star: 1; tree: leaves then
/// root; fat-tree: edges, then aggregations, then cores). Use this to
/// size the hosted ShardedEngine before constructing the Topology.
std::uint32_t stackDomainCount(const TopologySpec& spec);

}  // namespace vibe::fabric
