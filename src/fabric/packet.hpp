// Wire-level packet format for the simulated SAN.
//
// The fabric moves real bytes: DATA/RDMA fragments carry their payload so
// end-to-end tests can verify data integrity through fragmentation, loss,
// and retransmission. Control packets (connection management, ACKs) carry
// metadata only and are modelled as small fixed-size frames.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vibe::fabric {

/// Identifies a host on the fabric.
using NodeId = std::uint32_t;

/// Fabric-visible identifier of a VI endpoint on a node.
using ViEndpointId = std::uint32_t;

enum class PacketKind : std::uint8_t {
  Data,          // send/recv model fragment
  RdmaWrite,     // RDMA-write fragment (carries remote address)
  RdmaReadReq,   // RDMA-read request (no payload)
  RdmaReadResp,  // RDMA-read response fragment (carries payload)
  Ack,           // reliability acknowledgment (cumulative, per VI)
  ConnRequest,   // connection management handshake
  ConnAccept,
  ConnReject,
  Disconnect,
};

/// Returns true for packet kinds that carry user payload bytes.
constexpr bool carriesPayload(PacketKind k) {
  return k == PacketKind::Data || k == PacketKind::RdmaWrite ||
         k == PacketKind::RdmaReadResp;
}

/// Connection-management dialog frames. Real VIA implementations run this
/// dialog over a separate reliable channel (M-VIA used kernel sockets, cLAN
/// a managed hardware exchange), so the loss injector leaves them alone;
/// only the data path experiences drops.
constexpr bool isConnectionManagement(PacketKind k) {
  return k == PacketKind::ConnRequest || k == PacketKind::ConnAccept ||
         k == PacketKind::ConnReject || k == PacketKind::Disconnect;
}

/// Connection-management metadata exchanged during the VIA dialog.
struct ConnInfo {
  std::uint64_t discriminator = 0;  // service discriminator (VipConnectWait)
  std::uint8_t reliability = 0;     // vipl reliability level (negotiated)
  std::uint32_t mtu = 0;            // proposed/accepted maximum transfer size
  std::uint32_t token = 0;          // matches request to accept/reject
  std::uint32_t epoch = 0;          // side's connection incarnation counter
                                    // (0 on the first connect; reconnects of
                                    // the same VI bump it — session layers
                                    // use it to fence stale traffic)
};

struct Packet {
  PacketKind kind = PacketKind::Data;
  NodeId src = 0;
  NodeId dst = 0;
  ViEndpointId srcVi = 0;
  ViEndpointId dstVi = 0;

  // Message framing (send/recv and RDMA data path).
  std::uint64_t fragSeq = 0;    // per-VI fragment sequence (reliability)
  std::uint64_t msgSeq = 0;     // message sequence number within the VI
  std::uint32_t fragIndex = 0;  // fragment index within the message
  std::uint32_t fragCount = 1;  // total fragments of the message
  std::uint64_t msgBytes = 0;   // total user bytes in the whole message
  std::uint64_t offset = 0;     // byte offset of this fragment

  // Immediate data travels in the control segment of the send descriptor.
  bool hasImmediate = false;
  std::uint32_t immediate = 0;

  // RDMA addressing (remote virtual address + memory handle).
  std::uint64_t remoteAddr = 0;
  std::uint32_t remoteHandle = 0;

  // Reliability: cumulative acknowledgments (fragment sequences). ackSeq
  // acknowledges NIC receipt; ackPlacedSeq acknowledges placement into
  // target memory (ReliableReception). rxError carries a remote protocol
  // error back to the sender (maps onto nic::WorkStatus).
  std::uint64_t ackSeq = 0;
  std::uint64_t ackPlacedSeq = 0;
  std::uint8_t rxError = 0;

  ConnInfo conn;

  // Observability stamp: virtual time the originating descriptor was
  // posted (copied from the work request into every fragment; pure data,
  // never consulted by the protocol).
  std::int64_t postedAt = 0;

  // Fault injection: the frame was damaged in flight. The payload bytes are
  // left intact (the simulator does not scramble memory); the flag models a
  // CRC failure that the receiving NIC detects and drops, exactly like a
  // loss except that the receiver sees and counts the mangled frame.
  bool corrupted = false;

  std::vector<std::byte> payload;

  /// Bytes occupying the wire: payload plus a fixed per-frame header.
  std::uint64_t wireBytes(std::uint32_t headerBytes) const {
    return payload.size() + headerBytes;
  }
};

}  // namespace vibe::fabric
