#include "fabric/network.hpp"

#include <memory>
#include <utility>

namespace vibe::fabric {

Network::Network(sim::Engine& engine, const NetworkParams& params)
    : engine_(engine), params_(params), receivers_(params.nodes) {
  uplinks_.reserve(params_.nodes);
  downlinks_.reserve(params_.nodes);
  for (NodeId n = 0; n < params_.nodes; ++n) {
    LinkParams lp = params_.link;
    lp.seed = params_.seed ^ (0x1000ULL + n);
    auto up = std::make_unique<Link>(engine_, "up" + std::to_string(n), lp);
    lp.seed = params_.seed ^ (0x2000ULL + n);
    auto down = std::make_unique<Link>(engine_, "down" + std::to_string(n), lp);
    // Uplink terminates at the host's switch: apply forwarding latency,
    // then route (down a local port, or via the root for cross-leaf).
    up->connect([this](Packet&& p) {
      emitSwitchSpan(p, params_.switchLatency);
      engine_.post(params_.switchLatency,
                   [this, p = std::move(p)]() mutable { forward(std::move(p)); });
    });
    down->connect([this, n](Packet&& p) {
      if (!receivers_[n]) {
        throw sim::SimError("Network: no receiver registered for node " +
                            std::to_string(n));
      }
      receivers_[n](std::move(p));
    });
    uplinks_.push_back(std::move(up));
    downlinks_.push_back(std::move(down));
  }

  if (params_.nodesPerSwitch != 0) {
    const std::uint32_t leaves =
        (params_.nodes + params_.nodesPerSwitch - 1) / params_.nodesPerSwitch;
    for (std::uint32_t leaf = 0; leaf < leaves; ++leaf) {
      LinkParams tp = params_.trunk;
      tp.seed = params_.seed ^ (0x3000ULL + leaf);
      auto upTrunk = std::make_unique<Link>(
          engine_, "trunkUp" + std::to_string(leaf), tp);
      tp.seed = params_.seed ^ (0x4000ULL + leaf);
      auto downTrunk = std::make_unique<Link>(
          engine_, "trunkDown" + std::to_string(leaf), tp);
      // Trunk up terminates at the root: root latency, then down the
      // destination leaf's trunk.
      upTrunk->connect([this](Packet&& p) {
        emitSwitchSpan(p, params_.rootSwitchLatency);
        engine_.post(params_.rootSwitchLatency, [this, p = std::move(p)]() mutable {
          forwardFromRoot(std::move(p));
        });
      });
      // Trunk down terminates at the leaf: leaf latency, then the host port.
      downTrunk->connect([this](Packet&& p) {
        emitSwitchSpan(p, params_.switchLatency);
        engine_.post(params_.switchLatency, [this, p = std::move(p)]() mutable {
          downlinks_.at(p.dst)->send(std::move(p));
        });
      });
      trunkUp_.push_back(std::move(upTrunk));
      trunkDown_.push_back(std::move(downTrunk));
    }
  }
}

void Network::setSpanProfiler(obs::SpanProfiler* spans) {
  spans_ = spans;
  for (auto& l : uplinks_) l->setSpanProfiler(spans);
  for (auto& l : downlinks_) l->setSpanProfiler(spans);
  for (auto& l : trunkUp_) l->setSpanProfiler(spans);
  for (auto& l : trunkDown_) l->setSpanProfiler(spans);
}

void Network::emitSwitchSpan(const Packet& p, sim::Duration latency) {
  if (spans_ == nullptr || latency <= 0) return;
  if (p.kind == PacketKind::Ack || isConnectionManagement(p.kind)) return;
  const sim::SimTime now = engine_.now();
  spans_->emit(obs::Stage::Wire, p.src, p.srcVi, now, now + latency,
               p.wireBytes(params_.link.headerBytes));
}

std::uint64_t Network::framesDropped() const {
  std::uint64_t n = 0;
  for (const auto& l : uplinks_) n += l->framesDropped();
  for (const auto& l : downlinks_) n += l->framesDropped();
  for (const auto& l : trunkUp_) n += l->framesDropped();
  for (const auto& l : trunkDown_) n += l->framesDropped();
  return n;
}

std::uint64_t Network::framesCorrupted() const {
  std::uint64_t n = 0;
  for (const auto& l : uplinks_) n += l->framesCorrupted();
  for (const auto& l : downlinks_) n += l->framesCorrupted();
  for (const auto& l : trunkUp_) n += l->framesCorrupted();
  for (const auto& l : trunkDown_) n += l->framesCorrupted();
  return n;
}

void Network::setReceiver(NodeId node, Receiver rx) {
  receivers_.at(node) = std::move(rx);
}

void Network::send(Packet&& p) {
  if (p.src >= params_.nodes || p.dst >= params_.nodes) {
    throw sim::SimError("Network::send: node id out of range");
  }
  if (p.src == p.dst) {
    throw sim::SimError("Network::send: wire loopback not supported");
  }
  uplinks_[p.src]->send(std::move(p));
}

void Network::forward(Packet&& p) {
  ++forwarded_;
  if (hierarchical() && leafOf(p.src) != leafOf(p.dst)) {
    // Cross-leaf: up the source leaf's trunk toward the root.
    trunkUp_.at(leafOf(p.src))->send(std::move(p));
    return;
  }
  downlinks_.at(p.dst)->send(std::move(p));
}

void Network::forwardFromRoot(Packet&& p) {
  ++viaRoot_;
  trunkDown_.at(leafOf(p.dst))->send(std::move(p));
}

}  // namespace vibe::fabric
