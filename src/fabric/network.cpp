#include "fabric/network.hpp"

#include <memory>
#include <utility>

namespace vibe::fabric {

TopologySpec Network::specFor(const NetworkParams& p) {
  TopologySpec spec;
  if (p.fatTreeK != 0) {
    spec.kind = TopologyKind::FatTree;
  } else if (p.nodesPerSwitch != 0) {
    spec.kind = TopologyKind::TwoLevelTree;
  } else {
    spec.kind = TopologyKind::Star;
  }
  spec.nodes = p.nodes;
  spec.hostLink = p.link;
  spec.edgeLatency = p.switchLatency;
  spec.seed = p.seed;
  spec.nodesPerSwitch = p.nodesPerSwitch;
  spec.fabricLink = p.trunk;
  spec.coreLatency = p.rootSwitchLatency;
  spec.fatTreeK = p.fatTreeK;
  spec.portBufferFrames = p.switchBufferFrames;
  return spec;
}

namespace {

/// Both ctors deliver through the same receiver table.
Topology::Deliver deliverInto(std::vector<Network::Receiver>* receivers) {
  return [receivers](NodeId n, Packet&& p) {
    if (!(*receivers)[n]) {
      throw sim::SimError("Network: no receiver registered for node " +
                          std::to_string(n));
    }
    (*receivers)[n](std::move(p));
  };
}

}  // namespace

Network::Network(sim::Engine& engine, const NetworkParams& params)
    : params_(params), receivers_(params.nodes) {
  topo_ = std::make_unique<Topology>(engine, specFor(params_),
                                     deliverInto(&receivers_));
}

Network::Network(sim::ShardedEngine& pdes, const NetworkParams& params)
    : params_(params), receivers_(params.nodes) {
  topo_ = std::make_unique<Topology>(pdes, specFor(params_),
                                     deliverInto(&receivers_));
}

void Network::setSpanProfiler(obs::SpanProfiler* spans) {
  topo_->setSpanProfiler(spans);
}

void Network::setReceiver(NodeId node, Receiver rx) {
  receivers_.at(node) = std::move(rx);
}

void Network::send(Packet&& p) {
  if (p.src >= params_.nodes || p.dst >= params_.nodes) {
    throw sim::SimError("Network::send: node id out of range");
  }
  if (p.src == p.dst) {
    throw sim::SimError("Network::send: wire loopback not supported");
  }
  topo_->inject(std::move(p));
}

Link& Network::trunkUp(std::uint32_t leaf) {
  if (leaf >= topo_->trunkCount()) {
    throw sim::SimError("Network::trunkUp: no trunk for leaf " +
                        std::to_string(leaf));
  }
  return topo_->trunkUp(leaf);
}

Link& Network::trunkDown(std::uint32_t leaf) {
  if (leaf >= topo_->trunkCount()) {
    throw sim::SimError("Network::trunkDown: no trunk for leaf " +
                        std::to_string(leaf));
  }
  return topo_->trunkDown(leaf);
}

std::uint32_t Network::leafOf(NodeId node) const {
  if (node >= params_.nodes) {
    throw sim::SimError("Network::leafOf: node id out of range");
  }
  return hierarchical() ? node / params_.nodesPerSwitch : 0;
}

}  // namespace vibe::fabric
