#include "fabric/pdes_traffic.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "fabric/domain.hpp"
#include "fabric/topology.hpp"
#include "simcore/pdes.hpp"
#include "simcore/prng.hpp"
#include "simcore/trace.hpp"

namespace vibe::fabric {

namespace {

using sim::Duration;
using sim::SimTime;

std::uint64_t mix64(std::uint64_t x) { return sim::splitmix64(x); }

/// Synthetic host compute: a short integer-mix loop whose result feeds
/// the digest, so the optimizer cannot drop it and every shard count
/// burns identical per-event work.
std::uint64_t burn(std::uint64_t x, std::uint32_t iters) {
  for (std::uint32_t i = 0; i < iters; ++i) {
    x ^= x >> 27;
    x *= 0x3c79ac492ba7b653ull;
    x ^= x >> 33;
  }
  return x;
}

/// Per-domain accumulator. Cache-line aligned: adjacent domains may be
/// written by different shards concurrently (each domain has exactly one
/// writer, so this is purely about false sharing).
struct alignas(64) DomainState {
  std::uint64_t digest = sim::Tracer::kDigestSeed;
  std::uint64_t messages = 0;
  std::uint64_t rttSumNs = 0;
  std::uint64_t rttCount = 0;
};

struct Model {
  const PdesTrafficConfig* cfg = nullptr;
  TopologySpec spec;
  DomainPartition part;
  sim::ShardedEngine* eng = nullptr;
  std::vector<SimTime> t0;          // per host: current round's start
  std::vector<DomainState> dom;     // per domain
  Duration oneway[3] = {0, 0, 0};   // indexed by PathTier

  std::uint32_t peerOf(std::uint32_t host, std::uint32_t round) const {
    const std::uint32_t n = static_cast<std::uint32_t>(t0.size());
    const std::uint64_t h = mix64(cfg->seed ^ 0x706472735f6d6278ull ^
                                  (static_cast<std::uint64_t>(host) << 32 |
                                   round));
    std::uint32_t p = static_cast<std::uint32_t>(h % n);
    if (p == host) p = (p + 1) % n;
    return p;
  }

  Duration onewayOf(std::uint32_t src, std::uint32_t dst) const {
    return oneway[static_cast<std::uint8_t>(pathTier(spec, src, dst))];
  }
};

void startRound(Model* m, std::uint32_t h, std::uint32_t r);

/// Runs in the responder's domain: charge think time, send the reply.
void deliverRequest(Model* m, std::uint32_t h, std::uint32_t p,
                    std::uint32_t r) {
  const std::uint32_t srcDom = m->part.hostDomain[h];
  const std::uint32_t dstDom = m->part.hostDomain[p];
  DomainState& ds = m->dom[dstDom];
  const SimTime now = m->eng->now(dstDom);
  ++ds.messages;
  ds.digest = sim::Tracer::combineDigest(
      ds.digest,
      burn(static_cast<std::uint64_t>(now) ^
               (static_cast<std::uint64_t>(h) << 32 | p) ^ (r * 2 + 1),
           m->cfg->computeIters));
  const Duration back = m->cfg->serviceTime + m->onewayOf(p, h);
  auto respond = [m, h, r] {
    const std::uint32_t d = m->part.hostDomain[h];
    DomainState& rs = m->dom[d];
    const SimTime at = m->eng->now(d);
    const std::uint64_t rtt = static_cast<std::uint64_t>(at - m->t0[h]);
    ++rs.messages;
    rs.rttSumNs += rtt;
    ++rs.rttCount;
    rs.digest = sim::Tracer::combineDigest(
        rs.digest, burn(static_cast<std::uint64_t>(at) ^ rtt ^
                            (static_cast<std::uint64_t>(h) << 1),
                        m->cfg->computeIters));
    if (r + 1 < m->cfg->rounds) startRound(m, h, r + 1);
  };
  if (dstDom == srcDom) {
    m->eng->post(dstDom, back, std::move(respond));
  } else {
    m->eng->send(dstDom, srcDom, back, std::move(respond));
  }
}

/// Runs in the requester's domain: pick the round's peer, fire the
/// request along the tiered path.
void startRound(Model* m, std::uint32_t h, std::uint32_t r) {
  const std::uint32_t d = m->part.hostDomain[h];
  DomainState& ds = m->dom[d];
  const SimTime now = m->eng->now(d);
  m->t0[h] = now;
  const std::uint32_t p = m->peerOf(h, r);
  const std::uint32_t dd = m->part.hostDomain[p];
  ds.digest = sim::Tracer::combineDigest(
      ds.digest, mix64(static_cast<std::uint64_t>(now) ^
                       (static_cast<std::uint64_t>(h) << 32 | p) ^ r));
  const Duration fly = m->onewayOf(h, p);
  auto deliver = [m, h, p, r] { deliverRequest(m, h, p, r); };
  if (dd == d) {
    m->eng->post(d, fly, std::move(deliver));
  } else {
    m->eng->send(d, dd, fly, std::move(deliver));
  }
}

}  // namespace

PdesTrafficResult runPdesTraffic(const PdesTrafficConfig& cfg) {
  const std::uint32_t k = cfg.fatTreeK;
  if (k < 2 || (k % 2) != 0) {
    throw sim::SimError("runPdesTraffic: fat-tree arity k must be even "
                        "and >= 2, got " + std::to_string(k));
  }
  const std::uint32_t maxHosts = k * k * k / 4;
  const std::uint32_t hosts = cfg.hosts == 0 ? maxHosts : cfg.hosts;
  if (hosts < 2 || hosts > maxHosts) {
    throw sim::SimError("runPdesTraffic: hosts must be in [2, k^3/4], got " +
                        std::to_string(hosts) + " for k=" +
                        std::to_string(k));
  }

  Model m;
  m.cfg = &cfg;
  m.spec.kind = TopologyKind::FatTree;
  m.spec.nodes = hosts;
  m.spec.fatTreeK = k;
  m.spec.seed = cfg.seed;
  m.spec.hostLink.bandwidthMBps = cfg.linkMBps;
  m.spec.hostLink.propagation = cfg.linkPropagation;
  m.spec.hostLink.headerBytes = cfg.headerBytes;
  m.spec.fabricLink = m.spec.hostLink;
  m.spec.edgeLatency = cfg.edgeLatency;
  m.spec.coreLatency = cfg.coreLatency;
  m.part = DomainPartition::fromSpec(m.spec);

  // Tiered one-way latencies from the same per-hop arithmetic the serial
  // fabric charges: serialization of the full frame on every hop, plus
  // propagation, plus each intervening switch's forwarding latency.
  const Duration hostLeg =
      sim::transferTime(cfg.msgBytes + cfg.headerBytes, cfg.linkMBps) +
      cfg.linkPropagation;
  const Duration hop = hostLeg;  // fabricLink == hostLink here
  using TierIdx = std::uint8_t;
  m.oneway[static_cast<TierIdx>(PathTier::SameEdge)] =
      2 * hostLeg + cfg.edgeLatency;
  m.oneway[static_cast<TierIdx>(PathTier::SamePod)] =
      2 * hostLeg + 2 * cfg.edgeLatency + 2 * hop + cfg.coreLatency;
  m.oneway[static_cast<TierIdx>(PathTier::CrossPod)] =
      2 * hostLeg + 2 * cfg.edgeLatency + 4 * hop + 3 * cfg.coreLatency;

  const Duration lookahead = crossDomainLookahead(m.spec);

  sim::EngineConfig ec;
  ec.domains = m.part.domains;
  ec.lookahead = lookahead;
  ec.shards = cfg.shards;
  sim::ShardedEngine eng(ec);
  eng.setProfiling(cfg.profileShards);
  m.eng = &eng;
  m.t0.assign(hosts, 0);
  m.dom.resize(m.part.domains);

  // Stagger the first round across a few lookahead windows so window one
  // is not a single same-timestamp storm (the storm case is a dedicated
  // test, not the bench workload).
  const Duration spread = 4 * std::max<Duration>(lookahead, 256);
  if (cfg.rounds > 0) {
    for (std::uint32_t h = 0; h < hosts; ++h) {
      const Duration jitter = static_cast<Duration>(
          mix64(cfg.seed ^ 0x7374616767657221ull ^ h) %
          static_cast<std::uint64_t>(spread));
      Model* mp = &m;
      eng.post(m.part.hostDomain[h], jitter,
               [mp, h] { startRound(mp, h, 0); });
    }
  }

  eng.run();

  PdesTrafficResult out;
  out.digest = sim::Tracer::kDigestSeed;
  std::uint64_t rttSum = 0;
  std::uint64_t rttCount = 0;
  for (const DomainState& ds : m.dom) {
    out.digest = sim::Tracer::combineDigest(out.digest, ds.digest);
    out.messages += ds.messages;
    rttSum += ds.rttSumNs;
    rttCount += ds.rttCount;
  }
  out.events = eng.executedEvents();
  out.crossDomain = eng.crossDomainEvents();
  out.crossShard = eng.crossShardEvents();
  out.windows = eng.windowsExecuted();
  for (std::uint32_t d = 0; d < m.part.domains; ++d) {
    out.endTime = std::max(out.endTime, eng.now(d));
  }
  out.meanRttUsec =
      rttCount == 0 ? 0.0
                    : static_cast<double>(rttSum) /
                          static_cast<double>(rttCount) / 1000.0;
  out.domains = m.part.domains;
  out.shardsUsed = eng.shards();
  out.lookahead = lookahead;
  if (cfg.profileShards) {
    out.shardProfiles = eng.shardProfiles();
    out.loadImbalance = eng.loadImbalance();
  }
  return out;
}

}  // namespace vibe::fabric
