// Synthetic fat-tree multiclient workload for the sharded PDES engine.
//
// This is the scaling counterpart of bench_ext_multiclient: every host
// on a k-ary fat-tree runs closed-loop request/response rounds against
// deterministically chosen peers, with per-hop latencies derived from
// the same LinkParams arithmetic the serial fabric uses (serialization
// at link bandwidth + propagation + switch forwarding). Hosts are
// partitioned into PDES domains by edge switch (fabric/domain.hpp); the
// aggregation/core tier is modeled as pure latency, so requests that
// leave an edge switch travel as cross-domain sends whose delay is
// provably >= the derived lookahead.
//
// The model is the determinism proof's workhorse: every domain keeps an
// FNV digest over each delivery/response it executes ((time, src, dst,
// round) tuples plus a synthetic compute kernel), and the per-domain
// digests are folded in domain-index order with Tracer::combineDigest.
// The folded digest, event counts, window counts, and mean RTT must be
// byte-identical for any shard count — test_pdes pins that, and
// bench_ext_pdes reports wall-clock scaling on top of it.
#pragma once

#include <cstdint>
#include <vector>

#include "simcore/pdes.hpp"
#include "simcore/time.hpp"

namespace vibe::fabric {

struct PdesTrafficConfig {
  std::uint32_t fatTreeK = 8;   // even, >= 2
  std::uint32_t hosts = 0;      // 0 = the full k^3/4
  std::uint32_t rounds = 8;     // request/response rounds per host
  std::uint32_t msgBytes = 1024;
  std::uint64_t seed = 1;
  unsigned shards = 0;          // 0 = VIBE_SIM_SHARDS / hardware

  // Link and switch model (cLAN-flavored defaults; propagation and
  // switch latencies must stay > 0 so the derived lookahead is > 0).
  double linkMBps = 156.0;
  sim::Duration linkPropagation = 500;  // ns
  std::uint32_t headerBytes = 32;
  sim::Duration edgeLatency = 300;     // edge-switch forward
  sim::Duration coreLatency = 400;     // aggr/core forward
  sim::Duration serviceTime = 2000;    // server think time per request
  std::uint32_t computeIters = 96;     // synthetic host compute per event

  // Enables the ShardedEngine runtime profiler; per-shard snapshots land
  // in PdesTrafficResult::shardProfiles. Wall-clock only — the digest and
  // every other deterministic output are unaffected (pinned by test_pdes).
  bool profileShards = false;
};

struct PdesTrafficResult {
  std::uint64_t digest = 0;        // per-domain digests, domain order
  std::uint64_t events = 0;        // engine events executed
  std::uint64_t messages = 0;      // request + response deliveries
  std::uint64_t crossDomain = 0;   // messages that left their edge domain
  std::uint64_t crossShard = 0;    // ... and crossed a shard boundary
  std::uint64_t windows = 0;       // conservative windows executed
  sim::SimTime endTime = 0;        // virtual completion time
  double meanRttUsec = 0.0;
  std::uint32_t domains = 0;
  unsigned shardsUsed = 0;
  sim::Duration lookahead = 0;
  // Filled when cfg.profileShards was set (empty otherwise).
  std::vector<sim::ShardProfile> shardProfiles;
  double loadImbalance = 1.0;  // max/mean per-shard events
};

/// Runs the workload to completion and returns its deterministic
/// outcome. Everything except shardsUsed/crossShard is independent of
/// cfg.shards; everything is independent of thread scheduling.
PdesTrafficResult runPdesTraffic(const PdesTrafficConfig& cfg);

}  // namespace vibe::fabric
