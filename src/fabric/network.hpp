// SAN fabric facade.
//
// `Network` is the endpoint-facing surface of the fabric: NICs register
// receivers and inject packets here, and fault/stat consumers reach links
// through it. The actual wiring — switches, routing tables, links — lives
// in the topology layer (fabric/topology.hpp); Network translates its
// params into a TopologySpec and delegates.
//
// Three topologies, selected by NetworkParams:
//
//   Star (default)      every host on one crossbar switch through a
//                       full-duplex link pair — the paper's testbeds
//                       (Myrinet, Gigabit Ethernet, cLAN5000 switches
//                       wiring a handful of PCs).
//   Two-level tree      `nodesPerSwitch > 0`: hosts on leaf switches,
//                       leaves on one root through shared trunk links.
//                       Cross-leaf traffic pays two extra link traversals
//                       plus the root's forwarding latency, and trunks are
//                       shared — the way a real multi-switch SAN
//                       oversubscribes.
//   k-ary fat-tree      `fatTreeK > 0` (even): a folded-Clos fabric with
//                       k pods, (k/2)^2 cores, up to k^3/4 hosts, and
//                       deterministic ECMP across the (k/2)^2 equal-cost
//                       inter-pod paths. `switchBufferFrames` bounds each
//                       switch port's output buffer (tail drop); 0 keeps
//                       the unbounded legacy wire.
//
// Star and tree behavior is byte-identical to the pre-topology Network:
// same link names and seed derivation, same event structure, same span
// and counter semantics. See docs/FABRIC.md for the determinism contract.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fabric/link.hpp"
#include "fabric/packet.hpp"
#include "fabric/topology.hpp"
#include "simcore/engine.hpp"

namespace vibe::fabric {

struct NetworkParams {
  std::uint32_t nodes = 2;
  LinkParams link;                      // applied to every host<->switch link
  sim::Duration switchLatency = 0;      // fixed cut-through forwarding delay
  std::uint64_t seed = 1;               // base seed; links derive from it

  // Two-level tree (0 = flat star). Hosts [k*nodesPerSwitch, ...) share
  // leaf switch k; leaves connect to a root switch via trunk links.
  std::uint32_t nodesPerSwitch = 0;
  LinkParams trunk;                     // inter-switch links (tree/fat-tree)
  sim::Duration rootSwitchLatency = 0;  // root / aggr / core forwarding

  // k-ary fat-tree (0 = star or tree above). Takes precedence over
  // nodesPerSwitch; k must be even and nodes <= k^3/4.
  std::uint32_t fatTreeK = 0;
  // Finite per-port switch output buffers, in frames (0 = unbounded).
  std::uint32_t switchBufferFrames = 0;
};

class Network {
 public:
  using Receiver = std::function<void(Packet&&)>;

  Network(sim::Engine& engine, const NetworkParams& params);

  /// Sharded construction: builds the topology across the hosted
  /// ShardedEngine's domains (one per switch — size the engine with
  /// stackDomainCount(specFor(params))). See the Topology sharded ctor
  /// for the placement and lookahead contract.
  Network(sim::ShardedEngine& pdes, const NetworkParams& params);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// The TopologySpec these params translate to — the single source of
  /// truth shared by both ctors and by callers that need to derive
  /// domain partitions or lookahead bounds before construction.
  static TopologySpec specFor(const NetworkParams& params);

  std::uint32_t nodeCount() const { return params_.nodes; }

  /// Registers the NIC RX handler for a node.
  void setReceiver(NodeId node, Receiver rx);

  /// Injects a packet from its source node's uplink. The destination must
  /// be a valid node other than the source (no loopback on the wire).
  void send(Packet&& p);

  /// Attaches a span profiler to every link in the topology plus the
  /// switch-forwarding hops, so Wire spans tile the whole wire interval
  /// (host link, each switch hop, each inter-switch link). nullptr
  /// detaches.
  void setSpanProfiler(obs::SpanProfiler* spans);

  /// Per-node links, exposed for failure injection and utilization stats.
  Link& uplink(NodeId node) { return topo_->hostUplink(node); }
  Link& downlink(NodeId node) { return topo_->hostDownlink(node); }

  /// Shared leaf<->root trunk links (two-level tree only), exposed for
  /// fault injection — the links most worth failing are the shared ones.
  /// Throws on a flat star or out-of-range leaf index.
  Link& trunkUp(std::uint32_t leaf);
  Link& trunkDown(std::uint32_t leaf);
  std::uint32_t trunkCount() const { return topo_->trunkCount(); }

  /// Frames dropped / corrupted summed across every link in the topology
  /// (host links, trunks, and fat-tree fabric links).
  std::uint64_t framesDropped() const { return topo_->framesDropped(); }
  std::uint64_t framesCorrupted() const { return topo_->framesCorrupted(); }
  /// Frames tail-dropped at finite switch output buffers (fat-tree with
  /// switchBufferFrames > 0; always 0 otherwise).
  std::uint64_t switchBufferDrops() const {
    return topo_->switchBufferDrops();
  }
  /// Deepest switch output-buffer occupancy seen anywhere, in frames.
  std::uint32_t maxSwitchQueueDepth() const { return topo_->maxQueueDepth(); }

  /// Packets forwarded by their host-ingress switch: one count per packet
  /// that entered the fabric.
  std::uint64_t packetsForwarded() const {
    return topo_->hostIngressForwards();
  }
  /// Packets that crossed a Core-tier switch (the tree root, or a
  /// fat-tree core on the inter-pod path).
  std::uint64_t packetsViaRoot() const { return topo_->coreForwards(); }

  bool hierarchical() const { return params_.nodesPerSwitch != 0; }
  bool fatTree() const { return params_.fatTreeK != 0; }

  /// Leaf switch index of a node (two-level tree; 0 on a star). Throws on
  /// out-of-range ids — same guard as send() — instead of silently
  /// computing a bogus leaf.
  std::uint32_t leafOf(NodeId node) const;

  /// The underlying topology graph (switch stats, fabric links).
  Topology& topology() { return *topo_; }
  const Topology& topology() const { return *topo_; }

 private:
  NetworkParams params_;
  std::vector<Receiver> receivers_;
  std::unique_ptr<Topology> topo_;
};

}  // namespace vibe::fabric
