// SAN topologies.
//
// Default: a star — every host connects to one crossbar switch through a
// full-duplex link pair, matching the paper's testbeds (Myrinet, Gigabit
// Ethernet, and cLAN5000 cluster switches wiring a handful of PCs).
//
// Extension: a two-level tree (`nodesPerSwitch > 0`) — hosts attach to
// leaf switches, leaves attach to one root switch through trunk links.
// Cross-leaf traffic pays two extra link traversals and the root's
// forwarding latency; trunks are shared, so they can become the bottleneck
// exactly the way a real multi-switch SAN oversubscribes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fabric/link.hpp"
#include "fabric/packet.hpp"
#include "simcore/engine.hpp"
#include "simcore/resource.hpp"

namespace vibe::fabric {

struct NetworkParams {
  std::uint32_t nodes = 2;
  LinkParams link;                      // applied to every host<->switch link
  sim::Duration switchLatency = 0;      // fixed cut-through forwarding delay
  std::uint64_t seed = 1;               // base seed; links derive from it

  // Two-level tree (0 = flat star). Hosts [k*nodesPerSwitch, ...) share
  // leaf switch k; leaves connect to a root switch via trunk links.
  std::uint32_t nodesPerSwitch = 0;
  LinkParams trunk;                     // leaf<->root links
  sim::Duration rootSwitchLatency = 0;
};

class Network {
 public:
  using Receiver = std::function<void(Packet&&)>;

  Network(sim::Engine& engine, const NetworkParams& params);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  std::uint32_t nodeCount() const { return params_.nodes; }

  /// Registers the NIC RX handler for a node.
  void setReceiver(NodeId node, Receiver rx);

  /// Injects a packet from its source node's uplink. The destination must
  /// be a valid node other than the source (no loopback on the wire).
  void send(Packet&& p);

  /// Attaches a span profiler to every link in the topology plus the
  /// switch-forwarding hops, so Wire spans tile the whole wire interval
  /// (host link, leaf/root forwarding, trunks). nullptr detaches.
  void setSpanProfiler(obs::SpanProfiler* spans);

  /// Per-node links, exposed for failure injection and utilization stats.
  Link& uplink(NodeId node) { return *uplinks_.at(node); }
  Link& downlink(NodeId node) { return *downlinks_.at(node); }

  /// Frames dropped / corrupted summed across every link in the topology
  /// (host links and, in a tree, the trunks).
  std::uint64_t framesDropped() const;
  std::uint64_t framesCorrupted() const;

  std::uint64_t packetsForwarded() const { return forwarded_; }
  /// Packets that crossed the root switch (two-level topology only).
  std::uint64_t packetsViaRoot() const { return viaRoot_; }
  bool hierarchical() const { return params_.nodesPerSwitch != 0; }
  std::uint32_t leafOf(NodeId node) const {
    return hierarchical() ? node / params_.nodesPerSwitch : 0;
  }

 private:
  void forward(Packet&& p);
  void forwardFromRoot(Packet&& p);
  /// Wire span for a switch-forwarding hop (cut-through latency), so the
  /// stage attribution accounts for switch time, not just link time.
  void emitSwitchSpan(const Packet& p, sim::Duration latency);

  sim::Engine& engine_;
  NetworkParams params_;
  std::vector<std::unique_ptr<Link>> uplinks_;    // host -> switch
  std::vector<std::unique_ptr<Link>> downlinks_;  // switch -> host
  std::vector<std::unique_ptr<Link>> trunkUp_;    // leaf -> root
  std::vector<std::unique_ptr<Link>> trunkDown_;  // root -> leaf
  std::vector<Receiver> receivers_;
  obs::SpanProfiler* spans_ = nullptr;
  std::uint64_t forwarded_ = 0;
  std::uint64_t viaRoot_ = 0;
};

}  // namespace vibe::fabric
