#include "fabric/link.hpp"

#include <algorithm>
#include <memory>
#include <utility>

namespace vibe::fabric {

double Link::effectiveRate(std::vector<RateWindow>& windows, double base,
                           sim::SimTime now) {
  if (windows.empty()) return base;
  std::erase_if(windows, [now](const RateWindow& w) { return w.end <= now; });
  double rate = base;
  // Later entries were scheduled later: last covering window wins.
  for (const RateWindow& w : windows) {
    if (w.start <= now && now < w.end) rate = w.rate;
  }
  return rate;
}

void Link::scheduleLossWindow(sim::SimTime start, sim::SimTime end,
                              double rate) {
  if (end <= start) return;
  lossWindows_.push_back({start, end, rate});
}

void Link::scheduleCorruptWindow(sim::SimTime start, sim::SimTime end,
                                 double rate) {
  if (end <= start) return;
  corruptWindows_.push_back({start, end, rate});
}

void Link::scheduleLatencyWindow(sim::SimTime start, sim::SimTime end,
                                 sim::Duration extra) {
  if (end <= start) return;
  latencyWindows_.push_back({start, end, extra});
}

std::uint32_t Link::queuedFrames(sim::SimTime now) {
  while (!serEnds_.empty() && serEnds_.front() <= now) serEnds_.pop_front();
  return static_cast<std::uint32_t>(serEnds_.size());
}

void Link::send(Packet&& p) {
  if (!sink_) throw sim::SimError("Link::send on unconnected link " + name_);
  const sim::SimTime now = engine_.now();
  const std::uint64_t wire = p.wireBytes(params_.headerBytes);
  const sim::Duration ser = sim::transferTime(wire, params_.bandwidthMBps);
  const sim::SimTime done = tx_.acquire(now, ser);
  while (!serEnds_.empty() && serEnds_.front() <= now) serEnds_.pop_front();
  serEnds_.push_back(done);
  ++framesSent_;
  bytesCarried_ += wire;
  // All fault decisions happen at send() entry time: with no windows
  // scheduled this reduces to exactly the base Bernoulli model, drawing
  // the same PRNG sequence (byte-identical runs).
  const double loss = effectiveRate(lossWindows_, params_.lossRate, now);
  if (loss > 0.0 && !isConnectionManagement(p.kind) && rng_.chance(loss)) {
    ++framesDropped_;
    return;  // the wire time is still consumed; the frame just never arrives
  }
  if (!corruptWindows_.empty() && !isConnectionManagement(p.kind)) {
    const double corrupt = effectiveRate(corruptWindows_, 0.0, now);
    if (corrupt > 0.0 && corruptRng_.chance(corrupt)) {
      ++framesCorrupted_;
      p.corrupted = true;  // delivered; the receiving NIC detects and drops
    }
  }
  sim::Duration prop = params_.propagation;
  if (!latencyWindows_.empty()) {
    std::erase_if(latencyWindows_,
                  [now](const LatencyWindow& w) { return w.end <= now; });
    for (const LatencyWindow& w : latencyWindows_) {
      if (w.start <= now && now < w.end) prop = params_.propagation + w.extra;
    }
  }
  if (spans_ != nullptr && p.kind != PacketKind::Ack &&
      !isConnectionManagement(p.kind)) {
    spans_->emit(obs::Stage::Wire, p.src, p.srcVi, now, done + prop, wire);
  }
  // The packet rides inside the event callback itself (EventFn is
  // move-capable), so delivery costs no shared_ptr round-trip. A link
  // whose receive side lives in another PDES domain routes the delivery
  // through the cross-domain mailbox instead of its own engine; the
  // arrival time done + prop >= now + serialize(header) + propagation, so
  // the hop-lookahead bound is always paid.
  if (remote_) {
    remote_(done + prop,
            [this, p = std::move(p)]() mutable { sink_(std::move(p)); });
  } else {
    engine_.postAt(done + prop,
                   [this, p = std::move(p)]() mutable { sink_(std::move(p)); });
  }
}

}  // namespace vibe::fabric
