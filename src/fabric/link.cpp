#include "fabric/link.hpp"

#include <memory>
#include <utility>

namespace vibe::fabric {

void Link::send(Packet&& p) {
  if (!sink_) throw sim::SimError("Link::send on unconnected link " + name_);
  const std::uint64_t wire = p.wireBytes(params_.headerBytes);
  const sim::Duration ser = sim::transferTime(wire, params_.bandwidthMBps);
  const sim::SimTime done = tx_.acquire(engine_.now(), ser);
  ++framesSent_;
  bytesCarried_ += wire;
  if (params_.lossRate > 0.0 && !isConnectionManagement(p.kind) &&
      rng_.chance(params_.lossRate)) {
    ++framesDropped_;
    return;  // the wire time is still consumed; the frame just never arrives
  }
  // Move the packet into a shared holder so the std::function is copyable.
  auto held = std::make_shared<Packet>(std::move(p));
  engine_.postAt(done + params_.propagation,
                 [this, held] { sink_(std::move(*held)); });
}

}  // namespace vibe::fabric
