#include "fabric/link.hpp"

#include <memory>
#include <utility>

namespace vibe::fabric {

void Link::send(Packet&& p) {
  if (!sink_) throw sim::SimError("Link::send on unconnected link " + name_);
  const std::uint64_t wire = p.wireBytes(params_.headerBytes);
  const sim::Duration ser = sim::transferTime(wire, params_.bandwidthMBps);
  const sim::SimTime done = tx_.acquire(engine_.now(), ser);
  ++framesSent_;
  bytesCarried_ += wire;
  if (params_.lossRate > 0.0 && !isConnectionManagement(p.kind) &&
      rng_.chance(params_.lossRate)) {
    ++framesDropped_;
    return;  // the wire time is still consumed; the frame just never arrives
  }
  // The packet rides inside the event callback itself (EventFn is
  // move-capable), so delivery costs no shared_ptr round-trip.
  engine_.postAt(done + params_.propagation,
                 [this, p = std::move(p)]() mutable { sink_(std::move(p)); });
}

}  // namespace vibe::fabric
