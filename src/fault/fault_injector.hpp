// FaultInjector: applies a FaultPlan to a Cluster.
//
// Arming translates each declarative action into scheduled parameter
// windows on the cluster's fabric links (Link::scheduleLossWindow and
// friends). Windows are passive data evaluated inside Link::send, so the
// injector needs no events of its own and arming before Cluster::run is
// sufficient — even for windows that open mid-run. An unarmed injector, or
// a plan with no actions, leaves the simulation byte-identical to a run
// with no injector at all.
#pragma once

#include "fault/fault_plan.hpp"
#include "vibe/cluster.hpp"

namespace vibe::fault {

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultPlan& plan() const { return plan_; }
  bool armed() const { return armed_; }

  /// Schedules every action of the plan onto `cluster`'s links and
  /// registers this injector with the cluster. Call once, before
  /// Cluster::run. If a tracer is attached, each action is recorded as a
  /// User mark (stamped with its window-open time) for log context.
  void arm(suite::Cluster& cluster);

 private:
  void apply(suite::Cluster& cluster, const FaultAction& a);

  FaultPlan plan_;
  bool armed_ = false;
};

}  // namespace vibe::fault
