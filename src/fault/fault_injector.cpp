#include "fault/fault_injector.hpp"

#include <string>

#include "simcore/trace.hpp"

namespace vibe::fault {

void FaultInjector::arm(suite::Cluster& cluster) {
  if (armed_) throw sim::SimError("FaultInjector::arm called twice");
  armed_ = true;
  cluster.attachFaultInjector(this);
  for (const FaultAction& a : plan_.actions) {
    if (a.target == FaultTarget::Trunk) {
      const std::uint32_t trunks = cluster.network().trunkCount();
      if (a.node >= trunks) {
        throw sim::SimError(
            "FaultInjector: trunk action targets leaf " +
            std::to_string(a.node) + " but the topology has " +
            std::to_string(trunks) + " trunk(s)");
      }
    } else if (a.node >= cluster.nodeCount()) {
      throw sim::SimError("FaultInjector: action targets node " +
                          std::to_string(a.node) + " of a " +
                          std::to_string(cluster.nodeCount()) +
                          "-node cluster");
    }
    apply(cluster, a);
    sim::trace(cluster.tracer(), a.start, sim::TraceCategory::User, a.node,
               "fault " + std::string(toString(a.kind)) + " side=" +
                   toString(a.side) + " dur=" + std::to_string(a.duration) +
                   (a.target == FaultTarget::Trunk ? " target=trunk" : ""));
  }
}

void FaultInjector::apply(suite::Cluster& cluster, const FaultAction& a) {
  fabric::Network& net = cluster.network();
  // Trunk actions hit the shared leaf<->root pair ("up" = leaf-to-root);
  // host actions hit the node's own link pair, exactly as before.
  const bool trunk = a.target == FaultTarget::Trunk;
  fabric::Link& up = trunk ? net.trunkUp(a.node) : net.uplink(a.node);
  fabric::Link& down = trunk ? net.trunkDown(a.node) : net.downlink(a.node);
  const bool onUp = a.side != LinkSide::Downlink;
  const bool onDown = a.side != LinkSide::Uplink;
  switch (a.kind) {
    case FaultKind::LossBurst:
      if (onUp) up.scheduleLossWindow(a.start, a.end(), a.rate);
      if (onDown) down.scheduleLossWindow(a.start, a.end(), a.rate);
      break;
    case FaultKind::LinkFlap:
      if (onUp) up.scheduleLossWindow(a.start, a.end(), 1.0);
      if (onDown) down.scheduleLossWindow(a.start, a.end(), 1.0);
      break;
    case FaultKind::LatencySpike:
      if (onUp) up.scheduleLatencyWindow(a.start, a.end(), a.extraLatency);
      if (onDown) down.scheduleLatencyWindow(a.start, a.end(), a.extraLatency);
      break;
    case FaultKind::Corruption:
      if (onUp) up.scheduleCorruptWindow(a.start, a.end(), a.rate);
      if (onDown) down.scheduleCorruptWindow(a.start, a.end(), a.rate);
      break;
    case FaultKind::Partition:
      // Isolate the node entirely: nothing in, nothing out.
      up.scheduleLossWindow(a.start, a.end(), 1.0);
      down.scheduleLossWindow(a.start, a.end(), 1.0);
      break;
  }
}

}  // namespace vibe::fault
