#include "fault/fault_plan.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "simcore/engine.hpp"
#include "simcore/prng.hpp"

namespace vibe::fault {

const char* toString(FaultKind k) {
  switch (k) {
    case FaultKind::LossBurst: return "lossburst";
    case FaultKind::LinkFlap: return "linkflap";
    case FaultKind::LatencySpike: return "latencyspike";
    case FaultKind::Corruption: return "corruption";
    case FaultKind::Partition: return "partition";
  }
  return "?";
}

const char* toString(LinkSide s) {
  switch (s) {
    case LinkSide::Uplink: return "up";
    case LinkSide::Downlink: return "down";
    case LinkSide::Both: return "both";
  }
  return "?";
}

const char* toString(FaultTarget t) {
  switch (t) {
    case FaultTarget::HostLink: return "host";
    case FaultTarget::Trunk: return "trunk";
  }
  return "?";
}

namespace {

FaultKind kindFromString(const std::string& s) {
  if (s == "lossburst") return FaultKind::LossBurst;
  if (s == "linkflap") return FaultKind::LinkFlap;
  if (s == "latencyspike") return FaultKind::LatencySpike;
  if (s == "corruption") return FaultKind::Corruption;
  if (s == "partition") return FaultKind::Partition;
  throw sim::SimError("FaultPlan::parse: unknown kind '" + s + "'");
}

LinkSide sideFromString(const std::string& s) {
  if (s == "up") return LinkSide::Uplink;
  if (s == "down") return LinkSide::Downlink;
  if (s == "both") return LinkSide::Both;
  throw sim::SimError("FaultPlan::parse: unknown side '" + s + "'");
}

FaultTarget targetFromString(const std::string& s) {
  if (s == "host") return FaultTarget::HostLink;
  if (s == "trunk") return FaultTarget::Trunk;
  throw sim::SimError("FaultPlan::parse: unknown target '" + s + "'");
}

/// Rates round-trip through text as micro-units (integer millionths), so
/// toString/parse is exact and locale-independent.
std::uint64_t rateToMicro(double r) {
  return static_cast<std::uint64_t>(r * 1e6 + 0.5);
}

}  // namespace

FaultPlan FaultPlan::generate(std::uint64_t seed, const FaultPlanParams& p) {
  FaultPlan plan;
  plan.seed = seed;
  plan.actions.reserve(p.actions);
  sim::Xoshiro256 rng(seed, "faultplan");
  const std::uint64_t kinds = p.allowPartitions ? 5 : 4;
  for (std::uint32_t i = 0; i < p.actions; ++i) {
    // Every field draws unconditionally, in a fixed order, so the PRNG
    // stream stays aligned no matter which kind is selected.
    const std::uint64_t kindSel = rng.below(kinds);
    const std::uint64_t node = rng.below(p.nodes);
    const std::uint64_t sideSel = rng.below(2);
    const std::uint64_t start =
        rng.below(static_cast<std::uint64_t>(p.horizon));
    const std::uint64_t burst =
        1 + rng.below(static_cast<std::uint64_t>(p.maxBurst));
    const double rateDraw = rng.uniform();
    const std::uint64_t latDraw =
        1 + rng.below(static_cast<std::uint64_t>(p.maxLatencySpike));

    FaultAction a;
    a.kind = static_cast<FaultKind>(kindSel);
    a.node = static_cast<std::uint32_t>(node);
    a.side = sideSel == 0 ? LinkSide::Uplink : LinkSide::Downlink;
    a.start = static_cast<sim::SimTime>(start);
    a.duration = static_cast<sim::Duration>(burst);
    switch (a.kind) {
      case FaultKind::LossBurst:
        a.rate = p.maxLossRate * (0.25 + 0.75 * rateDraw);
        break;
      case FaultKind::LinkFlap:
        a.rate = 1.0;
        break;
      case FaultKind::LatencySpike:
        a.extraLatency = static_cast<sim::Duration>(latDraw);
        break;
      case FaultKind::Corruption:
        a.rate = p.maxCorruptRate * (0.25 + 0.75 * rateDraw);
        break;
      case FaultKind::Partition:
        a.side = LinkSide::Both;
        a.rate = 1.0;
        a.duration = p.partitionLength;
        break;
    }
    // Rates pass through the text round-trip on generation too, so a
    // generated plan and its parsed print are byte-for-byte equivalent.
    a.rate = static_cast<double>(rateToMicro(a.rate)) / 1e6;
    plan.actions.push_back(a);
  }
  return plan;
}

FaultPlan FaultPlan::generateChurn(std::uint64_t seed, const ChurnParams& p) {
  FaultPlan plan;
  plan.seed = seed;
  sim::Xoshiro256 rng(seed, "faultchurn");
  const std::uint64_t span =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(p.horizon));
  auto partition = [](std::uint32_t node, sim::SimTime start,
                      sim::Duration dur) {
    FaultAction a;
    a.kind = FaultKind::Partition;
    a.node = node;
    a.side = LinkSide::Both;
    a.start = start;
    a.duration = dur;
    a.rate = 1.0;
    return a;
  };
  for (std::uint32_t n = 0; n < p.nodes; ++n) {
    // Flap count: integer part plus a Bernoulli draw on the remainder,
    // so fractional flapsPerNode still averages out across nodes.
    const double whole = std::floor(p.flapsPerNode);
    std::uint32_t flaps = static_cast<std::uint32_t>(whole);
    if (rng.uniform() < p.flapsPerNode - whole) ++flaps;
    for (std::uint32_t f = 0; f < flaps; ++f) {
      const sim::SimTime at =
          p.start + static_cast<sim::SimTime>(rng.below(span));
      // Uniform in (0, 2*mean]: mean meanFlapLen, never zero-length.
      const sim::Duration len =
          1 + static_cast<sim::Duration>(rng.below(std::max<std::uint64_t>(
                  1, 2 * static_cast<std::uint64_t>(p.meanFlapLen))));
      plan.actions.push_back(partition(p.firstNode + n, at, len));
    }
  }
  for (std::uint32_t d = 0; d < p.departs && p.nodes > 0; ++d) {
    const std::uint32_t node = p.firstNode + p.nodes - 1 - (d % p.nodes);
    // Departures open in the middle half of the horizon, so the session
    // is established before the break and the revival fits the run.
    const sim::SimTime at =
        p.start + static_cast<sim::SimTime>(span / 4 + rng.below(span / 2));
    plan.actions.push_back(partition(node, at, p.departLen));
  }
  return plan;
}

std::string FaultPlan::toString() const {
  std::ostringstream os;
  os << "seed=" << seed << '\n';
  for (const FaultAction& a : actions) {
    os << "kind=" << fault::toString(a.kind) << " node=" << a.node
       << " side=" << fault::toString(a.side) << " start=" << a.start
       << " dur=" << a.duration << " rate_ppm=" << rateToMicro(a.rate)
       << " lat=" << a.extraLatency;
    // Emitted only when non-default, so pre-trunk plan strings (and any
    // golden that embeds one) stay byte-identical.
    if (a.target != FaultTarget::HostLink) {
      os << " target=" << fault::toString(a.target);
    }
    os << '\n';
  }
  return os.str();
}

FaultPlan FaultPlan::parse(const std::string& text) {
  FaultPlan plan;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    std::istringstream toks(line);
    std::string tok;
    FaultAction a;
    bool isAction = false;
    while (toks >> tok) {
      const std::size_t eq = tok.find('=');
      if (eq == std::string::npos) {
        throw sim::SimError("FaultPlan::parse: bad token '" + tok + "'");
      }
      const std::string key = tok.substr(0, eq);
      const std::string val = tok.substr(eq + 1);
      if (key == "seed") {
        plan.seed = std::stoull(val);
      } else if (key == "kind") {
        a.kind = kindFromString(val);
        isAction = true;
      } else if (key == "node") {
        a.node = static_cast<std::uint32_t>(std::stoul(val));
      } else if (key == "side") {
        a.side = sideFromString(val);
      } else if (key == "start") {
        a.start = std::stoll(val);
      } else if (key == "dur") {
        a.duration = std::stoll(val);
      } else if (key == "rate_ppm") {
        a.rate = static_cast<double>(std::stoull(val)) / 1e6;
      } else if (key == "lat") {
        a.extraLatency = std::stoll(val);
      } else if (key == "target") {
        a.target = targetFromString(val);
      } else {
        throw sim::SimError("FaultPlan::parse: unknown key '" + key + "'");
      }
    }
    if (isAction) plan.actions.push_back(a);
  }
  return plan;
}

}  // namespace vibe::fault
