// InvariantChecker: a Tracer consumer that verifies reliability-protocol
// invariants from the trace stream of a chaos run.
//
// Checked online, per (node, VI), in stream order:
//   1. Exactly-once in-order delivery — on reliable connections, delivered
//      message sequence numbers are strictly consecutive from 0 (reset by
//      each connection configure); a duplicate or a gap is a violation.
//   2. No completion after disconnect — once a VI's connection is torn
//      down, broken, or destroyed, no further Ok-status completion may
//      appear for it (error flushes — Aborted/ConnectionLost — are the
//      expected terminal completions).
//   3. Bounded retry — the engine may fire at most rtoRetryBudget
//      consecutive retransmission timeouts without ack progress; a "retry
//      budget exhausted" mark must be followed by the connection break.
// Per (node, session) from the session layer's records, across epochs:
//   4. Cross-epoch exactly-once — session-delivered sequence numbers are
//      strictly consecutive from 1 regardless of how many reconnects
//      happened in between; a "gap" record or a "dedup" of a sequence the
//      session never delivered is a violation.
//   5. Bounded downtime — when an MTTR bound is configured, any recovery
//      episode ("up" record) that took longer is a violation.
// And at finalize(), against the NIC statistics:
//   6. Retransmission count consistency — the retransmissions recorded in
//      the trace stream sum to exactly NicStats::retransmits per node.
//   7. No session is left mid-outage (Recovering/Down) unless the test
//      opted in with setAllowDownAtExit.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "simcore/trace.hpp"
#include "vibe/cluster.hpp"

namespace vibe::fault {

class InvariantChecker {
 public:
  explicit InvariantChecker(std::uint32_t rtoRetryBudget = 16)
      : budget_(rtoRetryBudget) {}

  /// Registers this checker as `tracer`'s sink and enables the categories
  /// it consumes (Rx, Completion, Reliability, Connection, Session). The
  /// tracer must outlive the checker's use.
  void attach(sim::Tracer& tracer);

  /// Bounded-downtime check: any recovery episode longer than `usec`
  /// microseconds is a violation. 0 (the default) disables the check.
  void setMttrBoundUsec(std::uint64_t usec) { mttrBoundUsec_ = usec; }

  /// By default a session still down at finalize() is a violation; tests
  /// that deliberately end mid-outage (or drive the circuit breaker to
  /// Down on purpose) opt out here.
  void setAllowDownAtExit(bool allow) { allowDownAtExit_ = allow; }

  /// Invoked once, on the FIRST violation, with its description — the
  /// flight-recorder trigger (obs::FlightRecorder::violationHook), so a
  /// failing chaos run dumps its telemetry rings at the moment things
  /// went wrong rather than at teardown. Null by default.
  void setViolationHook(std::function<void(const std::string&)> hook) {
    violationHook_ = std::move(hook);
  }

  /// Consumes one record; normally called through the tracer sink.
  void onRecord(const sim::TraceRecord& rec);

  /// End-of-run checks against per-node NIC statistics.
  void finalize(suite::Cluster& cluster);

  bool ok() const { return violations_.empty(); }
  const std::vector<std::string>& violations() const { return violations_; }
  /// All violations joined into one printable block (empty when ok).
  std::string report() const;

  /// Reliable in-order deliveries observed (test-assertion helper).
  std::uint64_t reliableDeliveries() const { return reliableDeliveries_; }
  /// Retransmissions observed in the trace stream for `node`.
  std::uint64_t tracedRetransmits(std::uint32_t node) const;
  /// Session-layer accounting observed in the trace stream.
  std::uint64_t sessionDeliveries() const { return sessionDeliveries_; }
  std::uint64_t sessionReplays() const { return sessionReplays_; }
  std::uint64_t sessionRecoveries() const { return sessionRecoveries_; }

 private:
  struct ViState {
    bool reliable = false;
    bool closed = false;
    std::uint64_t nextMsgSeq = 0;
    std::uint32_t consecutiveRto = 0;
    bool expectBreak = false;
  };

  struct SessionAcct {
    std::uint64_t delivered = 0;  // receiver watermark: last in-order seq
    bool down = false;            // saw "down"/"halt" without a later "up"
    bool halted = false;          // circuit breaker tripped
  };

  static std::uint64_t key(std::uint32_t node, std::uint64_t vi) {
    return (static_cast<std::uint64_t>(node) << 32) | vi;
  }
  void violation(const sim::TraceRecord& rec, std::string what);
  void onSessionRecord(const sim::TraceRecord& rec);

  std::uint32_t budget_;
  std::unordered_map<std::uint64_t, ViState> vis_;
  std::unordered_map<std::uint64_t, SessionAcct> sessions_;
  std::unordered_map<std::uint32_t, std::uint64_t> retransmitsByNode_;
  std::vector<std::string> violations_;
  std::uint64_t reliableDeliveries_ = 0;
  std::uint64_t sessionDeliveries_ = 0;
  std::uint64_t sessionReplays_ = 0;
  std::uint64_t sessionRecoveries_ = 0;
  std::uint64_t mttrBoundUsec_ = 0;
  bool allowDownAtExit_ = false;
  std::function<void(const std::string&)> violationHook_;
};

}  // namespace vibe::fault
