#include "fault/invariants.hpp"

#include <cstdlib>
#include <sstream>

namespace vibe::fault {

namespace {

constexpr std::size_t kMaxViolations = 64;  // keep pathological runs readable

/// Returns the unsigned integer following `key` in `msg`, or false.
bool findValue(const std::string& msg, const char* keyEq, std::uint64_t& out) {
  const std::size_t pos = msg.find(keyEq);
  if (pos == std::string::npos) return false;
  const char* p = msg.c_str() + pos + std::string_view(keyEq).size();
  char* end = nullptr;
  out = std::strtoull(p, &end, 10);
  return end != p;
}

/// Returns the word following `key` in `msg` (up to the next space).
bool findWord(const std::string& msg, const char* keyEq, std::string& out) {
  const std::size_t pos = msg.find(keyEq);
  if (pos == std::string::npos) return false;
  const std::size_t from = pos + std::string_view(keyEq).size();
  const std::size_t to = msg.find(' ', from);
  out = msg.substr(from, to == std::string::npos ? to : to - from);
  return !out.empty();
}

bool startsWith(const std::string& s, std::string_view prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace

void InvariantChecker::attach(sim::Tracer& tracer) {
  tracer.enable(sim::TraceCategory::Rx);
  tracer.enable(sim::TraceCategory::Completion);
  tracer.enable(sim::TraceCategory::Reliability);
  tracer.enable(sim::TraceCategory::Connection);
  tracer.enable(sim::TraceCategory::Session);
  tracer.setSink([this](const sim::TraceRecord& rec) { onRecord(rec); });
}

void InvariantChecker::violation(const sim::TraceRecord& rec,
                                 std::string what) {
  if (violations_.size() >= kMaxViolations) return;
  std::ostringstream os;
  os << "t=" << rec.time << "ns n" << rec.component << " ["
     << sim::toString(rec.category) << "] " << what << " (record: \""
     << rec.message << "\")";
  violations_.push_back(os.str());
  if (violations_.size() == 1 && violationHook_) {
    violationHook_(violations_.front());
  }
}

void InvariantChecker::onRecord(const sim::TraceRecord& rec) {
  const std::string& m = rec.message;
  std::uint64_t vi = 0;

  switch (rec.category) {
    case sim::TraceCategory::Connection: {
      if (!findValue(m, "vi=", vi)) return;
      ViState& s = vis_[key(rec.component, vi)];
      if (startsWith(m, "configure ")) {
        std::string rel;
        findWord(m, "rel=", rel);
        s.reliable = rel != "Unreliable";
        s.closed = false;
        s.nextMsgSeq = 0;
        s.consecutiveRto = 0;
        s.expectBreak = false;
      } else if (startsWith(m, "teardown ") || startsWith(m, "destroy ")) {
        s.closed = true;
        s.expectBreak = false;  // a clean close supersedes the break path
      } else if (startsWith(m, "break ")) {
        s.closed = true;
        s.expectBreak = false;
      }
      return;
    }

    case sim::TraceCategory::Rx: {
      if (!startsWith(m, "deliver ")) return;
      if (!findValue(m, "vi=", vi)) return;
      ViState& s = vis_[key(rec.component, vi)];
      std::string rel;
      findWord(m, "rel=", rel);
      const bool reliable = rel != "Unreliable";
      s.reliable = reliable;
      if (s.closed) {
        violation(rec, "delivery on a closed connection");
        return;
      }
      if (!reliable) return;
      ++reliableDeliveries_;
      std::uint64_t msg = 0;
      if (!findValue(m, "msg=", msg)) {
        violation(rec, "unparseable deliver record");
        return;
      }
      if (msg != s.nextMsgSeq) {
        violation(rec, "out-of-order or duplicated delivery: expected msg=" +
                           std::to_string(s.nextMsgSeq));
        // Resynchronize so one gap is one violation, not a cascade.
      }
      s.nextMsgSeq = msg + 1;
      return;
    }

    case sim::TraceCategory::Completion: {
      if (!findValue(m, "vi=", vi)) return;
      std::string status;
      if (!findWord(m, "status=", status)) return;
      ViState& s = vis_[key(rec.component, vi)];
      if (s.closed && status == "Ok") {
        violation(rec, "Ok completion after the connection closed");
      }
      return;
    }

    case sim::TraceCategory::Reliability: {
      if (!findValue(m, "vi=", vi)) return;
      ViState& s = vis_[key(rec.component, vi)];
      if (startsWith(m, "ack progress ")) {
        s.consecutiveRto = 0;
      } else if (startsWith(m, "RTO ")) {
        ++s.consecutiveRto;
        if (s.consecutiveRto > budget_) {
          violation(rec, "retry budget " + std::to_string(budget_) +
                             " exceeded without teardown");
        }
        std::uint64_t frags = 1;  // probe retransmits resend one fragment
        const std::size_t pos = m.find(" retransmit ");
        if (pos != std::string::npos) {
          char* end = nullptr;
          const char* p = m.c_str() + pos + 12;
          const std::uint64_t n = std::strtoull(p, &end, 10);
          if (end != p) frags = n;
        }
        retransmitsByNode_[rec.component] += frags;
      } else if (startsWith(m, "retry budget exhausted ")) {
        s.expectBreak = true;
      }
      return;
    }

    case sim::TraceCategory::Session:
      onSessionRecord(rec);
      return;

    default:
      return;
  }
}

void InvariantChecker::onSessionRecord(const sim::TraceRecord& rec) {
  const std::string& m = rec.message;
  std::uint64_t sid = 0;
  if (!findValue(m, "sid=", sid)) return;
  SessionAcct& s = sessions_[key(rec.component, sid)];

  if (startsWith(m, "deliver ")) {
    std::uint64_t seq = 0;
    if (!findValue(m, "seq=", seq)) {
      violation(rec, "unparseable session deliver record");
      return;
    }
    ++sessionDeliveries_;
    if (seq != s.delivered + 1) {
      violation(rec, "session delivery not consecutive: expected seq=" +
                         std::to_string(s.delivered + 1));
      // Resynchronize so one gap is one violation, not a cascade.
    }
    s.delivered = seq;
  } else if (startsWith(m, "dedup ")) {
    // A duplicate can only be a replay of something already delivered; a
    // dedup above the watermark means a message was thrown away unseen.
    std::uint64_t seq = 0;
    if (findValue(m, "seq=", seq) && seq > s.delivered) {
      violation(rec, "session deduped an undelivered seq: watermark=" +
                         std::to_string(s.delivered));
    }
  } else if (startsWith(m, "gap ")) {
    violation(rec, "session delivery gap (lost message)");
  } else if (startsWith(m, "replay ")) {
    std::uint64_t n = 0;
    if (findValue(m, "n=", n)) sessionReplays_ += n;
  } else if (startsWith(m, "down ")) {
    s.down = true;
  } else if (startsWith(m, "up ")) {
    s.down = false;
    ++sessionRecoveries_;
    std::uint64_t mttr = 0;
    if (mttrBoundUsec_ != 0 && findValue(m, "mttr_us=", mttr) &&
        mttr > mttrBoundUsec_) {
      violation(rec, "recovery took " + std::to_string(mttr) +
                         "us, bound is " + std::to_string(mttrBoundUsec_) +
                         "us");
    }
  } else if (startsWith(m, "halt ")) {
    s.down = true;
    s.halted = true;
  }
}

void InvariantChecker::finalize(suite::Cluster& cluster) {
  for (const auto& [k, s] : vis_) {
    if (s.expectBreak) {
      violations_.push_back(
          "n" + std::to_string(k >> 32) + " vi=" +
          std::to_string(k & 0xffffffffu) +
          ": retry budget exhausted but the connection never broke");
    }
  }
  if (!allowDownAtExit_) {
    for (const auto& [k, s] : sessions_) {
      if (!s.down) continue;
      violations_.push_back(
          "n" + std::to_string(k >> 32) + " sid=" +
          std::to_string(k & 0xffffffffu) +
          (s.halted ? ": circuit breaker tripped (session Down) at exit"
                    : ": session still recovering at exit"));
    }
  }
  for (std::uint32_t n = 0; n < cluster.nodeCount(); ++n) {
    const std::uint64_t traced = tracedRetransmits(n);
    const std::uint64_t counted = cluster.node(n).device().stats().retransmits;
    if (traced != counted) {
      violations_.push_back(
          "n" + std::to_string(n) + ": traced retransmissions (" +
          std::to_string(traced) + ") != NicStats::retransmits (" +
          std::to_string(counted) + ")");
    }
  }
}

std::string InvariantChecker::report() const {
  std::ostringstream os;
  for (const std::string& v : violations_) os << v << '\n';
  return os.str();
}

std::uint64_t InvariantChecker::tracedRetransmits(std::uint32_t node) const {
  auto it = retransmitsByNode_.find(node);
  return it == retransmitsByNode_.end() ? 0 : it->second;
}

}  // namespace vibe::fault
