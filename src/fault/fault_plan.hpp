// FaultPlan: a declarative, seed-derived schedule of timed fault actions.
//
// A plan is pure data — absolute virtual-time windows plus parameters —
// so it can be generated from a seed, printed, parsed back, and replayed
// bit-for-bit. The FaultInjector turns a plan into scheduled link-parameter
// overrides on a Cluster before the simulation starts; nothing about a
// plan depends on wall-clock state, which is what makes chaos runs
// reproducible from the seed alone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simcore/time.hpp"

namespace vibe::fault {

enum class FaultKind : std::uint8_t {
  LossBurst,     // loss-rate override on one link for a window
  LinkFlap,      // lossRate=1.0 window: the link is down, then comes back
  LatencySpike,  // extra one-way latency for a window (congestion/reroute)
  Corruption,    // frames delivered with the corrupted flag for a window
  Partition,     // both directions of a node's link pair down: node isolated
};

const char* toString(FaultKind k);

/// Which half of the target's full-duplex link pair the action hits.
enum class LinkSide : std::uint8_t { Uplink, Downlink, Both };

const char* toString(LinkSide s);

/// What `FaultAction::node` names: a host (its uplink/downlink pair) or,
/// on a two-level tree, a leaf switch's shared trunk pair — the links
/// most worth failing, since one trunk fault hits every host on the leaf.
enum class FaultTarget : std::uint8_t { HostLink, Trunk };

const char* toString(FaultTarget t);

struct FaultAction {
  FaultKind kind = FaultKind::LossBurst;
  std::uint32_t node = 0;              // target host (or leaf, for Trunk)
  LinkSide side = LinkSide::Uplink;    // Partition always acts on Both
  FaultTarget target = FaultTarget::HostLink;
  sim::SimTime start = 0;              // window open (absolute virtual time)
  sim::Duration duration = 0;          // window length
  double rate = 0.0;                   // LossBurst / Corruption probability
  sim::Duration extraLatency = 0;      // LatencySpike only

  sim::SimTime end() const { return start + duration; }
};

/// Knobs for FaultPlan::generate. Defaults produce recoverable chaos:
/// bursts and flaps far shorter than the reliability engine's retry
/// budget, so connections always survive. Enable partitions (and stretch
/// partitionLength past the budget) to exercise the teardown path.
struct FaultPlanParams {
  std::uint32_t nodes = 2;
  std::uint32_t actions = 6;
  sim::Duration horizon = sim::msec(20);      // action starts in [0, horizon)
  sim::Duration maxBurst = sim::msec(2);      // max burst/flap/spike length
  double maxLossRate = 1.0;
  double maxCorruptRate = 0.5;
  sim::Duration maxLatencySpike = sim::usec(50);
  bool allowPartitions = false;
  sim::Duration partitionLength = sim::msec(3);
};

/// Knobs for FaultPlan::generateChurn: per-client session churn for the
/// serving benchmarks. Each churning node draws short full-duplex flaps
/// (connection breaks the session layer recovers from within its retry
/// budget); `departs` nodes additionally get one long partition — a
/// deliberate "client left" episode that trips the session circuit
/// breaker, so reviving it exercises Session::reopen.
struct ChurnParams {
  std::uint32_t firstNode = 1;   // first churning node id
  std::uint32_t nodes = 1;       // how many consecutive nodes churn
  sim::SimTime start = 0;        // episode windows open in [start, ...)
  sim::Duration horizon = sim::msec(100);
  double flapsPerNode = 1.0;     // expected short flaps per node
  sim::Duration meanFlapLen = sim::msec(2);
  std::uint32_t departs = 0;     // nodes given one long partition each
  sim::Duration departLen = sim::msec(50);
};

struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<FaultAction> actions;

  /// Derives a plan deterministically from `seed`: same seed and params,
  /// same plan, always.
  static FaultPlan generate(std::uint64_t seed, const FaultPlanParams& p);

  /// Session-churn plan for serving scenarios: short Partition flaps on
  /// each churning node plus `departs` long partitions, all windows drawn
  /// deterministically from `seed`. Departing nodes are taken from the
  /// high end of the node range so low-numbered clients keep flapping.
  static FaultPlan generateChurn(std::uint64_t seed, const ChurnParams& p);

  /// Round-trippable text form (one `key=value ...` line per action);
  /// parse(toString()) reproduces the plan exactly. Durations are integer
  /// nanoseconds, rates fixed-point decimals.
  std::string toString() const;
  static FaultPlan parse(const std::string& text);
};

}  // namespace vibe::fault
