#include "harness/sweep.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <thread>

#include "obs/metrics.hpp"

namespace vibe::harness {

unsigned jobCount() {
  if (const char* env = std::getenv("VIBE_JOBS")) {
    char* end = nullptr;
    const long n = std::strtol(env, &end, 10);
    if (end != env && n > 0) return static_cast<unsigned>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

namespace detail {

void runIndexed(std::size_t n, const std::function<void(PointEnv&)>& body,
                const SweepOptions& opts) {
  if (n == 0) return;
  unsigned jobs = opts.jobs != 0 ? opts.jobs : jobCount();
  if (jobs > n) jobs = static_cast<unsigned>(n);

  // Per-point registries: merged into opts.mergeInto in index order below,
  // so the merged result is independent of scheduling.
  std::vector<obs::MetricsRegistry> pointMetrics;
  if (opts.mergeInto != nullptr) pointMetrics.resize(n);

  std::vector<std::exception_ptr> errors(n);

  auto runPoint = [&](std::size_t i) {
    PointEnv env;
    env.index = i;
    env.metrics = opts.mergeInto != nullptr ? &pointMetrics[i] : nullptr;
    try {
      body(env);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  };

  if (jobs <= 1) {
    // Inline serial path: today's behavior, byte for byte — same thread,
    // same order, no pool.
    for (std::size_t i = 0; i < n; ++i) runPoint(i);
  } else {
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        runPoint(i);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
  }
  if (opts.mergeInto != nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      opts.mergeInto->mergeFrom(pointMetrics[i]);
    }
  }
}

}  // namespace detail
}  // namespace vibe::harness
