// Parallel sharded sweep runner.
//
// Every VIBe measurement is a pure function of its (seed, profile, size,
// config) point: each point builds a private Engine/Cluster/registry, runs
// to completion, and returns a value. A SweepRunner shards those points
// across a std::thread pool and collects the results into index-ordered
// slots, so tables, JSON emission, and trace digests assembled from the
// slots are byte-identical to the serial run regardless of thread count or
// scheduling. VIBE_JOBS=1 (or jobs=1) runs every point inline on the
// calling thread in index order — exactly the pre-harness behavior.
//
// Determinism contract for point bodies:
//  - own everything: build the Cluster/Engine/Tracer/SpanProfiler inside
//    the body; never touch another point's objects;
//  - no process-global mutable state (the simulator itself has none);
//  - publish metrics only into PointEnv::metrics — the runner merges the
//    per-point registries into SweepOptions::mergeInto in index order
//    after the sweep, so the merged appendix is also schedule-independent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <vector>

namespace vibe::obs {
class MetricsRegistry;
}

namespace vibe::harness {

/// Worker count for sweeps: the VIBE_JOBS environment variable when set to
/// a positive integer, otherwise std::thread::hardware_concurrency()
/// (minimum 1). Read on every call so tests can flip the variable.
unsigned jobCount();

/// Per-point view handed to a sweep body.
struct PointEnv {
  /// Index of this point in [0, n); results land in slot `index`.
  std::size_t index = 0;
  /// Private metrics registry for this point (non-null exactly when
  /// SweepOptions::mergeInto is set). Attach it to the point's Cluster;
  /// never attach a shared registry from inside a sweep.
  obs::MetricsRegistry* metrics = nullptr;
};

struct SweepOptions {
  /// Worker threads; 0 means jobCount(). Clamped to the point count.
  unsigned jobs = 0;
  /// When set, each point gets a private MetricsRegistry (PointEnv::
  /// metrics) and the runner merges them into this registry in index
  /// order once every point has finished.
  obs::MetricsRegistry* mergeInto = nullptr;
};

namespace detail {
void runIndexed(std::size_t n, const std::function<void(PointEnv&)>& body,
                const SweepOptions& opts);
}

/// Runs `fn(PointEnv&)` for every index in [0, n) and returns the results
/// in index order (or nothing, for void bodies). Points run concurrently
/// on up to `opts.jobs` threads; with 1 job everything runs inline on the
/// calling thread, in order. If any point throws, the sweep finishes the
/// remaining points, then rethrows the lowest-indexed exception.
template <typename Fn>
auto runSweep(std::size_t n, Fn&& fn, SweepOptions opts = {}) {
  using R = std::invoke_result_t<Fn&, PointEnv&>;
  if constexpr (std::is_void_v<R>) {
    detail::runIndexed(
        n, [&fn](PointEnv& env) { fn(env); }, opts);
  } else {
    static_assert(std::is_default_constructible_v<R>,
                  "sweep results are collected into preallocated slots");
    std::vector<R> out(n);
    detail::runIndexed(
        n, [&fn, &out](PointEnv& env) { out[env.index] = fn(env); }, opts);
    return out;
  }
}

}  // namespace vibe::harness
