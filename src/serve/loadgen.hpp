// Open-loop load generation for the serving layer.
//
// Closed-loop clients (call, wait, call again) can never overload a
// server: when the server slows down, so do they. The serving
// macro-benchmark needs genuinely open-loop arrivals — requests fire at
// times drawn from an arrival process regardless of how the server is
// doing — so overload, queue growth, and shedding become observable.
//
// Two processes are provided, both seed-deterministic (same seed, same
// client id, same config => the same arrival vector, always):
//
//   * Poisson: i.i.d. exponential inter-arrival gaps at `ratePerSec`.
//   * MMPP on/off: a two-state Markov-modulated Poisson process. The
//     client alternates exponential "on" and "off" dwells; while on,
//     arrivals come at ratePerSec scaled by (meanOn+meanOff)/meanOn, so
//     the long-run mean rate is preserved while the short-run load is
//     bursty — the regime that exercises queue-delay shedders.
//
// Every request carries a 16-byte stamp (generation time + absolute
// deadline) prefixed to its RPC arguments; the server's admission queue
// reads it to age requests and shed the expired.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "simcore/time.hpp"

namespace vibe::serve {

/// Arrival-process parameters for one open-loop client.
struct ArrivalConfig {
  double ratePerSec = 1000.0;             // long-run mean arrival rate
  sim::SimTime start = 0;                 // first possible arrival
  sim::Duration horizon = sim::msec(100); // arrivals in [start, start+horizon)
  /// MMPP on/off dwell means. Both > 0 switches from plain Poisson to the
  /// bursty process; the on-phase rate is scaled so the mean rate over
  /// the horizon still converges to ratePerSec.
  sim::Duration meanOn = 0;
  sim::Duration meanOff = 0;
  /// Per-request relative deadline (absolute deadline = arrival + this).
  sim::Duration deadline = sim::msec(10);
};

/// Derives the full arrival schedule deterministically from
/// (seed, clientId). Strictly within [start, start + horizon).
std::vector<sim::SimTime> generateArrivals(const ArrivalConfig& cfg,
                                           std::uint64_t seed,
                                           std::uint32_t clientId);

/// Request stamp, prefixed to the RPC argument bytes at generation time:
/// [genTime i64][deadline i64], little-endian. deadline 0 = none.
struct Stamp {
  sim::SimTime genTime = 0;
  sim::SimTime deadline = 0;
};

constexpr std::size_t kStampBytes = 16;

/// Builds the on-wire argument blob: stamp followed by the payload.
std::vector<std::byte> stampArgs(const Stamp& s,
                                 std::span<const std::byte> payload);

/// Reads the stamp off the front of an argument blob. False when the
/// blob is too short to carry one.
bool readStamp(std::span<const std::byte> args, Stamp& out);

}  // namespace vibe::serve
