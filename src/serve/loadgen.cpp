#include "serve/loadgen.hpp"

#include <cmath>
#include <cstring>

#include "simcore/prng.hpp"

namespace vibe::serve {

namespace {

/// Exponential draw by inverse CDF; the uniform is clamped away from 0 so
/// the log stays finite. Mean is in the caller's units (nanoseconds).
double expDraw(sim::Xoshiro256& rng, double mean) {
  double u = rng.uniform();
  if (u < 1e-12) u = 1e-12;
  return -mean * std::log(u);
}

}  // namespace

std::vector<sim::SimTime> generateArrivals(const ArrivalConfig& cfg,
                                           std::uint64_t seed,
                                           std::uint32_t clientId) {
  std::vector<sim::SimTime> out;
  if (cfg.ratePerSec <= 0.0 || cfg.horizon <= 0) return out;
  sim::Xoshiro256 rng(seed ^ (sim::hashTag("serve.loadgen") + clientId));
  const double begin = static_cast<double>(cfg.start);
  const double end = static_cast<double>(cfg.start + cfg.horizon);
  const double meanGapNs = 1e9 / cfg.ratePerSec;

  if (cfg.meanOn <= 0 || cfg.meanOff <= 0) {
    double t = begin;
    for (;;) {
      t += expDraw(rng, meanGapNs);
      if (t >= end) break;
      out.push_back(static_cast<sim::SimTime>(t));
    }
    return out;
  }

  // MMPP on/off: the on-phase gap shrinks by the duty-cycle factor so the
  // long-run mean rate stays ratePerSec.
  const double onFrac =
      static_cast<double>(cfg.meanOn) /
      static_cast<double>(cfg.meanOn + cfg.meanOff);
  const double onGapNs = meanGapNs * onFrac;
  double t = begin;
  bool on = true;
  double phaseEnd = t + expDraw(rng, static_cast<double>(cfg.meanOn));
  while (t < end) {
    if (!on) {
      if (phaseEnd >= end) break;
      t = phaseEnd;
      on = true;
      phaseEnd = t + expDraw(rng, static_cast<double>(cfg.meanOn));
      continue;
    }
    const double next = t + expDraw(rng, onGapNs);
    if (next >= end) break;
    if (next < phaseEnd) {
      out.push_back(static_cast<sim::SimTime>(next));
      t = next;
    } else {
      if (phaseEnd >= end) break;
      t = phaseEnd;
      on = false;
      phaseEnd = t + expDraw(rng, static_cast<double>(cfg.meanOff));
    }
  }
  return out;
}

std::vector<std::byte> stampArgs(const Stamp& s,
                                 std::span<const std::byte> payload) {
  std::vector<std::byte> out(kStampBytes + payload.size());
  std::memcpy(out.data(), &s.genTime, 8);
  std::memcpy(out.data() + 8, &s.deadline, 8);
  if (!payload.empty()) {
    std::memcpy(out.data() + kStampBytes, payload.data(), payload.size());
  }
  return out;
}

bool readStamp(std::span<const std::byte> args, Stamp& out) {
  if (args.size() < kStampBytes) return false;
  std::memcpy(&out.genTime, args.data(), 8);
  std::memcpy(&out.deadline, args.data() + 8, 8);
  return true;
}

}  // namespace vibe::serve
