// Admission control and load shedding for an overloaded server.
//
// An AdmissionQueue sits between a transport that delivers requests and
// the handler that services them, and decides — deterministically — which
// requests are worth the server's time once the offered load exceeds
// capacity. Policies compose (each can be disabled independently):
//
//   * Token bucket (`bucket`): a rate limiter at the front door. Admits
//     while tokens remain; an empty bucket rejects before the request
//     ever touches the backlog.
//   * Bounded backlog (`backlogLimit` + `admit`): RejectNew turns a full
//     queue into a rejection of the newcomer; DropOldest evicts from the
//     head to make room (newest-is-freshest, the overload-shedding
//     classic for deadline traffic).
//   * Deadline-aware shed (`deadlineShed`): at dequeue time, a request
//     whose absolute deadline has already passed is shed instead of
//     served — no point spending service time on a reply the client will
//     discard.
//   * CoDel (`codel`): queue-delay shedding. When the head-of-line
//     sojourn time has stayed above `target` for a full `interval`, the
//     queue enters a dropping state and sheds heads on the standard
//     interval/sqrt(count) control-law schedule until sojourn falls back
//     under target.
//
// Every decision lands in `serve.*` metrics when a registry is attached
// (offered/admitted/rejected/evicted/shed/served plus the queue-delay
// histogram) and the first shed after a healthy period emits a
// TraceCategory::User "serve shed ..." record; draining back to empty
// emits "serve recover ..." — the flight-recorder breadcrumbs for when
// the server went red and came back.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "simcore/time.hpp"
#include "simcore/trace.hpp"

namespace vibe::serve {

/// What to do with a new request when the backlog is full.
enum class AdmitPolicy : std::uint8_t {
  RejectNew,   // refuse the newcomer
  DropOldest,  // evict the head to make room for the newcomer
};

const char* toString(AdmitPolicy p);

struct TokenBucketConfig {
  double ratePerSec = 0.0;  // refill rate; 0 disables the limiter
  double burst = 0.0;       // bucket capacity, in requests
};

struct CodelConfig {
  sim::Duration target = 0;               // sojourn target; 0 disables
  sim::Duration interval = sim::msec(100);  // sustained-delay window
};

struct PolicyConfig {
  std::uint32_t backlogLimit = 0;  // max queued requests; 0 = unbounded
  AdmitPolicy admit = AdmitPolicy::RejectNew;
  bool deadlineShed = false;  // shed requests already past deadline
  TokenBucketConfig bucket{};
  CodelConfig codel{};
};

/// One queued request. `client`/`token`/`method` identify it for the
/// transport; `genTime`/`deadline` come from the load generator's stamp
/// (deadline 0 = none); `enqueued` is set by offer().
struct Request {
  std::uint32_t client = 0;
  std::uint32_t token = 0;
  std::uint32_t method = 0;
  sim::SimTime genTime = 0;
  sim::SimTime deadline = 0;
  sim::SimTime enqueued = 0;
  std::vector<std::byte> payload;
};

enum class Verdict : std::uint8_t {
  Admitted,
  RejectedBacklog,  // backlog full under RejectNew
  RejectedRate,     // token bucket empty
};

enum class Dequeue : std::uint8_t {
  Serve,         // out = request to run
  ShedDeadline,  // out = request whose deadline already passed
  ShedCodel,     // out = request shed by the CoDel control law
  Empty,
};

struct AdmissionStats {
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejectedBacklog = 0;
  std::uint64_t rejectedRate = 0;
  std::uint64_t evicted = 0;       // DropOldest victims
  std::uint64_t shedDeadline = 0;  // expired at dequeue
  std::uint64_t shedCodel = 0;
  std::uint64_t served = 0;        // handed to the handler
};

class AdmissionQueue {
 public:
  explicit AdmissionQueue(const PolicyConfig& cfg);

  /// Optional observability (both may stay unset; zero-cost then).
  /// Counters land under "<scope>/serve.*".
  void setMetrics(obs::MetricsRegistry* metrics, std::string scope = "serve");
  void setTracer(sim::Tracer* tracer, std::uint32_t component = 0) {
    tracer_ = tracer;
    component_ = component;
  }

  /// Admission decision for one arriving request. DropOldest victims are
  /// appended to `evicted` so the transport can account for them.
  Verdict offer(Request r, sim::SimTime now, std::vector<Request>& evicted);

  /// Pops the next decision: at most one request per call (a served one,
  /// or one shed victim), so callers interleave dequeues with transport
  /// polling. On Serve the head's queue delay lands in the histogram.
  Dequeue next(sim::SimTime now, Request& out);

  std::size_t depth() const { return q_.size(); }
  const AdmissionStats& stats() const { return stats_; }
  const PolicyConfig& config() const { return cfg_; }
  /// True between the first shed/reject of a congestion episode and the
  /// drain back to an empty queue.
  bool shedding() const { return shedding_; }

 private:
  void bump(std::uint64_t AdmissionStats::* field, const char* name);
  void onShed(const char* reason, sim::SimTime now);
  void maybeRecover(sim::SimTime now);
  void refill(sim::SimTime now);
  bool codelDrop(sim::Duration sojourn, sim::SimTime now);
  sim::SimTime controlLaw(sim::SimTime t) const;

  PolicyConfig cfg_;
  std::deque<Request> q_;
  AdmissionStats stats_;

  obs::MetricsRegistry* metrics_ = nullptr;
  std::string scope_ = "serve";
  sim::Tracer* tracer_ = nullptr;
  std::uint32_t component_ = 0;

  // Token bucket.
  double tokens_ = 0.0;
  sim::SimTime lastRefill_ = 0;
  bool primed_ = false;  // bucket starts full on first offer

  // CoDel control-law state.
  sim::SimTime firstAbove_ = 0;
  sim::SimTime dropNext_ = 0;
  std::uint32_t dropCount_ = 0;
  bool dropping_ = false;

  bool shedding_ = false;
};

}  // namespace vibe::serve
