#include "serve/admission.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace vibe::serve {

const char* toString(AdmitPolicy p) {
  switch (p) {
    case AdmitPolicy::RejectNew: return "reject_new";
    case AdmitPolicy::DropOldest: return "drop_oldest";
  }
  return "?";
}

AdmissionQueue::AdmissionQueue(const PolicyConfig& cfg) : cfg_(cfg) {}

void AdmissionQueue::setMetrics(obs::MetricsRegistry* metrics,
                                std::string scope) {
  metrics_ = metrics;
  scope_ = std::move(scope);
}

void AdmissionQueue::bump(std::uint64_t AdmissionStats::* field,
                          const char* name) {
  ++(stats_.*field);
  if (metrics_ != nullptr) {
    metrics_->counter(obs::scoped(scope_, name)).add();
  }
}

void AdmissionQueue::onShed(const char* reason, sim::SimTime now) {
  if (shedding_) return;
  shedding_ = true;
  sim::trace(tracer_, now, sim::TraceCategory::User, component_,
             std::string("serve shed ") + reason +
                 " depth=" + std::to_string(q_.size()));
}

void AdmissionQueue::maybeRecover(sim::SimTime now) {
  if (!shedding_ || !q_.empty()) return;
  shedding_ = false;
  sim::trace(tracer_, now, sim::TraceCategory::User, component_,
             "serve recover");
}

void AdmissionQueue::refill(sim::SimTime now) {
  if (!primed_) {
    // The bucket starts full so a burst at t=0 is honoured up to `burst`.
    tokens_ = cfg_.bucket.burst;
    lastRefill_ = now;
    primed_ = true;
    return;
  }
  const double dt = static_cast<double>(now - lastRefill_);
  lastRefill_ = now;
  tokens_ = std::min(cfg_.bucket.burst,
                     tokens_ + dt * cfg_.bucket.ratePerSec / 1e9);
}

Verdict AdmissionQueue::offer(Request r, sim::SimTime now,
                              std::vector<Request>& evicted) {
  bump(&AdmissionStats::offered, "serve.offered");
  if (cfg_.bucket.ratePerSec > 0.0) {
    refill(now);
    if (tokens_ < 1.0) {
      bump(&AdmissionStats::rejectedRate, "serve.rejected_rate");
      onShed("rate", now);
      return Verdict::RejectedRate;
    }
    tokens_ -= 1.0;
  }
  if (cfg_.backlogLimit > 0 && q_.size() >= cfg_.backlogLimit) {
    if (cfg_.admit == AdmitPolicy::RejectNew) {
      bump(&AdmissionStats::rejectedBacklog, "serve.rejected_backlog");
      onShed("backlog", now);
      return Verdict::RejectedBacklog;
    }
    while (q_.size() >= cfg_.backlogLimit) {
      bump(&AdmissionStats::evicted, "serve.evicted");
      evicted.push_back(std::move(q_.front()));
      q_.pop_front();
    }
    onShed("evict", now);
  }
  r.enqueued = now;
  q_.push_back(std::move(r));
  bump(&AdmissionStats::admitted, "serve.admitted");
  return Verdict::Admitted;
}

sim::SimTime AdmissionQueue::controlLaw(sim::SimTime t) const {
  return t + static_cast<sim::Duration>(
                 static_cast<double>(cfg_.codel.interval) /
                 std::sqrt(static_cast<double>(dropCount_)));
}

bool AdmissionQueue::codelDrop(sim::Duration sojourn, sim::SimTime now) {
  if (cfg_.codel.target <= 0) return false;
  if (sojourn < cfg_.codel.target) {
    firstAbove_ = 0;
    dropping_ = false;
    return false;
  }
  if (firstAbove_ == 0) {
    // Sojourn just crossed target: arm the interval timer; only a
    // sustained excursion triggers drops.
    firstAbove_ = now + cfg_.codel.interval;
    return false;
  }
  if (now < firstAbove_) return false;
  if (!dropping_) {
    dropping_ = true;
    // Resume near the prior drop rate if the last episode was recent
    // (standard CoDel recovery), else restart the control law.
    dropCount_ = dropCount_ > 2 ? dropCount_ - 2 : 1;
    dropNext_ = controlLaw(now);
    return true;
  }
  if (now >= dropNext_) {
    ++dropCount_;
    dropNext_ = controlLaw(dropNext_);
    return true;
  }
  return false;
}

Dequeue AdmissionQueue::next(sim::SimTime now, Request& out) {
  if (q_.empty()) {
    firstAbove_ = 0;
    dropping_ = false;
    maybeRecover(now);
    return Dequeue::Empty;
  }
  Request& head = q_.front();
  if (cfg_.deadlineShed && head.deadline > 0 && now > head.deadline) {
    out = std::move(head);
    q_.pop_front();
    bump(&AdmissionStats::shedDeadline, "serve.shed_deadline");
    onShed("deadline", now);
    return Dequeue::ShedDeadline;
  }
  const sim::Duration sojourn = now - head.enqueued;
  if (codelDrop(sojourn, now)) {
    out = std::move(head);
    q_.pop_front();
    bump(&AdmissionStats::shedCodel, "serve.shed_codel");
    onShed("codel", now);
    return Dequeue::ShedCodel;
  }
  out = std::move(head);
  q_.pop_front();
  bump(&AdmissionStats::served, "serve.served");
  if (metrics_ != nullptr) {
    metrics_->histogram(obs::scoped(scope_, "serve.queue_delay_ns"))
        .add(sojourn);
  }
  maybeRecover(now);
  return Dequeue::Serve;
}

}  // namespace vibe::serve
