#include "session/session.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "simcore/trace.hpp"

namespace vibe::session {

namespace {

// Session frame header, little-endian at the front of every payload:
//   [kind u8][pad u8][sid u16][epoch u32][seq u64]
// For Data frames `seq` is the message sequence number; for Hello frames it
// is the sender's cumulative-delivered watermark.
constexpr std::uint32_t kHeaderBytes = 16;
constexpr std::uint8_t kHello = 1;
constexpr std::uint8_t kData = 2;

struct FrameHeader {
  std::uint8_t kind = 0;
  std::uint16_t sid = 0;
  std::uint32_t epoch = 0;
  std::uint64_t seq = 0;
};

void packHeader(std::byte* p, const FrameHeader& h) {
  std::memset(p, 0, kHeaderBytes);
  std::memcpy(p + 0, &h.kind, 1);
  std::memcpy(p + 2, &h.sid, 2);
  std::memcpy(p + 4, &h.epoch, 4);
  std::memcpy(p + 8, &h.seq, 8);
}

FrameHeader unpackHeader(const std::byte* p) {
  FrameHeader h;
  std::memcpy(&h.kind, p + 0, 1);
  std::memcpy(&h.sid, p + 2, 2);
  std::memcpy(&h.epoch, p + 4, 4);
  std::memcpy(&h.seq, p + 8, 8);
  return h;
}

std::string fmt(const char* f, ...) {
  char buf[192];
  va_list ap;
  va_start(ap, f);
  std::vsnprintf(buf, sizeof buf, f, ap);
  va_end(ap);
  return buf;
}

}  // namespace

const char* toString(SessionState s) {
  switch (s) {
    case SessionState::Idle: return "Idle";
    case SessionState::Connecting: return "Connecting";
    case SessionState::Established: return "Established";
    case SessionState::Recovering: return "Recovering";
    case SessionState::Down: return "Down";
  }
  return "?";
}

Session::Session(vipl::Provider& nic, SessionConfig cfg)
    : nic_(nic),
      cfg_(cfg),
      engine_(nic.engine()),
      recvSignal_(nic.engine()),
      jitter_(cfg.policy.seed ^ (sim::hashTag("session") + cfg.sid)) {
  if (cfg_.ringDepth < 2) throw std::invalid_argument("session: ringDepth < 2");
  slotBytes_ = kHeaderBytes + cfg_.maxMessageBytes;
  const std::size_t sendSlots = std::max<std::size_t>(2, cfg_.ringDepth / 2);
  slots_.resize(sendSlots);
  ring_.resize(cfg_.ringDepth);

  ptag_ = nic_.createPtag();
  const std::uint64_t arenaBytes =
      static_cast<std::uint64_t>(sendSlots + 1 + cfg_.ringDepth) * slotBytes_;
  arena_ = nic_.memory().alloc(arenaBytes, 256);
  vipl::VipMemAttributes mattrs;
  mattrs.ptag = ptag_;
  if (nic_.registerMem(arena_, arenaBytes, mattrs, handle_) !=
      vipl::VipResult::VIP_SUCCESS) {
    throw std::runtime_error("session: arena registration failed");
  }

  vipl::VipViAttributes vattrs;
  // ReliableReception, not ReliableDelivery: an RD send can be acked (and
  // its completion trimmed from the replay buffer) yet lost before
  // placement if the connection breaks in the window between; RR completes
  // only after placement, so an Ok completion proves delivery.
  vattrs.reliabilityLevel = nic::Reliability::ReliableReception;
  vattrs.ptag = ptag_;
  if (nic_.createVi(vattrs, nullptr, nullptr, vi_) !=
      vipl::VipResult::VIP_SUCCESS) {
    throw std::runtime_error("session: VI creation failed");
  }

  scope_ = "node" + std::to_string(nic_.nodeId()) + "/session" +
           std::to_string(cfg_.sid);
  alive_ = std::make_shared<int>(0);
}

Session::~Session() {
  // Pending completions become no-ops (our descriptors are about to die);
  // notify handlers already in flight drop out via the expired alive_ token.
  if (vi_ != nullptr) nic_.flushViPending(vi_);
}

// --- plumbing ---------------------------------------------------------------

sim::Process& Session::self() const {
  sim::Process* p = engine_.currentProcess();
  if (p == nullptr) {
    throw std::logic_error("session: blocking call outside process context");
  }
  return *p;
}

void Session::traceRec(std::string msg) const {
  sim::trace(nic_.device().tracer(), engine_.now(),
             sim::TraceCategory::Session, nic_.nodeId(), std::move(msg));
}

obs::Counter* Session::counter(const char* name) const {
  if (cfg_.metrics == nullptr) return nullptr;
  return &cfg_.metrics->counter(obs::scoped(scope_, name));
}

mem::VirtAddr Session::sendSlotVa(std::size_t i) const {
  return arena_ + i * slotBytes_;
}
mem::VirtAddr Session::helloVa() const {
  return arena_ + slots_.size() * slotBytes_;
}
mem::VirtAddr Session::ringVa(std::size_t i) const {
  return arena_ + (slots_.size() + 1 + i) * slotBytes_;
}

sim::Duration Session::backoffDelay(std::uint32_t attempt) {
  const ReconnectPolicy& pol = cfg_.policy;
  sim::Duration d = pol.backoffBase;
  for (std::uint32_t i = 1; i < attempt && d < pol.backoffCap; ++i) d *= 2;
  d = std::min(d, pol.backoffCap);
  if (pol.jitterFrac > 0.0) {
    // 53-bit mantissa draw in [0, 1) from the session's own stream.
    const double u =
        static_cast<double>(jitter_() >> 11) / 9007199254740992.0;
    const double f = 1.0 + pol.jitterFrac * (2.0 * u - 1.0);
    d = static_cast<sim::Duration>(static_cast<double>(d) * f);
  }
  return std::max<sim::Duration>(d, sim::usec(1));
}

// --- establishment / recovery ------------------------------------------------

bool Session::establish() {
  if (state_ != SessionState::Idle) return state_ == SessionState::Established;
  state_ = SessionState::Connecting;
  return connectLoop();
}

bool Session::reopen() {
  if (state_ == SessionState::Established) return true;
  if (state_ != SessionState::Down) return false;
  if (!cfg_.initiator) {
    // A passive reopen can only succeed while the peer is redialing, so
    // peek with a 1 us wait instead of burning the whole retry schedule.
    const vipl::VipNetAddress local{nic_.nodeId(), cfg_.discriminator};
    vipl::PendingConn conn;
    if (nic_.connectWait(local, sim::usec(1), conn) !=
        vipl::VipResult::VIP_SUCCESS) {
      return false;
    }
    claimed_ = conn;
  }
  ++stats_.reopens;
  if (obs::Counter* c = counter("session.reopened")) c->add();
  traceRec(fmt("reopen sid=%u", cfg_.sid));
  // downAt_ still marks the original break, so a successful revival's
  // MTTR covers the whole outage including the Down dwell.
  state_ = SessionState::Recovering;
  return connectLoop();
}

void Session::markBroken() {
  if (state_ != SessionState::Established) return;
  downAt_ = engine_.now();
  state_ = SessionState::Recovering;
  traceRec(fmt("down sid=%u epoch=%u", cfg_.sid, vi_->epoch()));
}

bool Session::connectLoop() {
  const ReconnectPolicy& pol = cfg_.policy;
  std::uint32_t attempt = 0;
  for (std::uint32_t round = 0; round < pol.maxRounds; ++round) {
    for (std::uint32_t a = 0; a < pol.attemptsPerRound; ++a) {
      if (establishOnce()) {
        onEstablished(attempt + 1);
        return true;
      }
      ++attempt;
      self().advance(backoffDelay(attempt), sim::CpuUse::Idle);
    }
  }
  state_ = SessionState::Down;
  traceRec(fmt("halt sid=%u attempts=%u", cfg_.sid, attempt));
  if (obs::Counter* c = counter("session.halted")) c->add();
  recvSignal_.notifyAll();
  return false;
}

bool Session::establishOnce() {
  ++stats_.connectAttempts;
  const ReconnectPolicy& pol = cfg_.policy;
  if (cfg_.initiator) {
    if (!prepareEndpoint()) return false;
    const vipl::VipNetAddress remote{cfg_.remoteNode, cfg_.discriminator};
    if (nic_.connectRequest(vi_, remote, pol.connectTimeout) !=
        vipl::VipResult::VIP_SUCCESS) {
      return false;
    }
  } else {
    vipl::PendingConn conn;
    if (!claimRequest(pol.connectTimeout, conn)) return false;
    if (!prepareEndpoint()) return false;
    if (nic_.connectAccept(conn, vi_) != vipl::VipResult::VIP_SUCCESS) {
      return false;
    }
  }
  return helloExchange();
}

bool Session::claimRequest(sim::Duration timeout, vipl::PendingConn& out) {
  const vipl::VipNetAddress local{nic_.nodeId(), cfg_.discriminator};
  if (claimed_) {
    out = *claimed_;
    claimed_.reset();
  } else if (nic_.connectWait(local, timeout, out) !=
             vipl::VipResult::VIP_SUCCESS) {
    return false;
  }
  // Repeated reconnect attempts may have queued several requests under the
  // provider's grace window; the newest is the one whose requester is still
  // waiting, so reject the older ones.
  vipl::PendingConn extra;
  while (nic_.connectWait(local, sim::usec(1), extra) ==
         vipl::VipResult::VIP_SUCCESS) {
    nic_.connectReject(out);
    out = extra;
  }
  if (out.remoteNode != cfg_.remoteNode) {
    nic_.connectReject(out);
    return false;
  }
  return true;
}

bool Session::prepareEndpoint() {
  const vipl::ViState st = vi_->state();
  bool reset = false;
  if (st == vipl::ViState::Connected || st == vipl::ViState::Error ||
      st == vipl::ViState::Disconnected) {
    if (nic_.resetVi(vi_) != vipl::VipResult::VIP_SUCCESS) return false;
    reset = true;
  } else if (st != vipl::ViState::Idle) {
    return false;
  }
  helloSeen_ = false;
  probeInFlight_ = false;
  if (reset || epochGen_ == 0) {
    // Fresh incarnation: fence stale notify events, free every send slot,
    // requeue the whole replay window, and rebuild the receive ring.
    ++epochGen_;
    for (SendSlot& s : slots_) s.busy = false;
    postedCount_ = 0;
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      ring_[i] = vipl::VipDescriptor::recv(ringVa(i), handle_, slotBytes_);
      if (nic_.postRecv(vi_, &ring_[i]) != vipl::VipResult::VIP_SUCCESS) {
        return false;
      }
    }
    for (std::size_t i = 0; i < ring_.size(); ++i) armNotify();
  }
  return true;
}

bool Session::helloExchange() {
  const ReconnectPolicy& pol = cfg_.policy;
  // Announce our epoch and cumulative-delivered watermark.
  FrameHeader h;
  h.kind = kHello;
  h.sid = static_cast<std::uint16_t>(cfg_.sid);
  h.epoch = vi_->epoch();
  h.seq = rxDelivered_;
  std::byte buf[kHeaderBytes];
  packHeader(buf, h);
  nic_.memory().write(helloVa(), buf);
  helloDesc_ = vipl::VipDescriptor::send(helloVa(), handle_, kHeaderBytes);
  if (nic_.postSend(vi_, &helloDesc_) != vipl::VipResult::VIP_SUCCESS) {
    return false;
  }
  vipl::VipDescriptor* done = nullptr;
  if (nic_.sendWait(vi_, pol.helloTimeout, done) !=
          vipl::VipResult::VIP_SUCCESS ||
      done != &helloDesc_ || !done->cs.status.ok()) {
    return false;
  }
  // Wait for the peer's Hello (the notify handler records it).
  const sim::SimTime deadline = engine_.now() + pol.helloTimeout;
  while (!helloSeen_) {
    if (vi_->state() != vipl::ViState::Connected) return false;
    const sim::SimTime now = engine_.now();
    if (now >= deadline) return false;
    self().awaitFor(recvSignal_,
                    std::min<sim::Duration>(deadline - now, sim::msec(1)));
  }
  // The peer has everything at or below its watermark; trim, then requeue
  // the remainder for this epoch.
  while (!replay_.empty() && replay_.front().seq <= peerDelivered_) {
    replay_.pop_front();
  }
  postedCount_ = 0;
  std::uint64_t replayed = 0;
  for (const Outbound& o : replay_) {
    if (o.everPosted) ++replayed;
  }
  if (replayed > 0) {
    stats_.replayed += replayed;
    if (obs::Counter* c = counter("session.replayed")) c->add(replayed);
    traceRec(fmt("replay sid=%u epoch=%u n=%llu", cfg_.sid, vi_->epoch(),
                 static_cast<unsigned long long>(replayed)));
  }
  return true;
}

void Session::onEstablished(std::uint32_t attempts) {
  state_ = SessionState::Established;
  lastAcceptPoll_ = engine_.now();
  if (wasEstablished_) {
    const sim::Duration mttr = engine_.now() - downAt_;
    ++stats_.reconnects;
    stats_.lastMttr = mttr;
    stats_.totalDowntime += mttr;
    if (obs::Counter* c = counter("session.reconnects")) c->add();
    if (cfg_.metrics != nullptr) {
      cfg_.metrics->histogram(obs::scoped(scope_, "session.mttr_ns"))
          .add(mttr);
    }
    if (cfg_.spans != nullptr) {
      cfg_.spans->emit(obs::Stage::Reconnect, nic_.nodeId(),
                       static_cast<std::uint32_t>(vi_->endpointId()), downAt_,
                       engine_.now());
    }
    traceRec(fmt("up sid=%u epoch=%u mttr_us=%llu attempts=%u", cfg_.sid,
                 vi_->epoch(),
                 static_cast<unsigned long long>(
                     mttr / sim::kMicrosecond),
                 attempts));
  } else {
    wasEstablished_ = true;
    traceRec(fmt("open sid=%u epoch=%u attempts=%u", cfg_.sid, vi_->epoch(),
                 attempts));
  }
  pump();
}

void Session::maybeAcceptPoll() {
  if (cfg_.initiator || state_ != SessionState::Established) return;
  const sim::SimTime now = engine_.now();
  if (now - lastAcceptPoll_ < cfg_.policy.acceptPollInterval) return;
  lastAcceptPoll_ = now;
  const vipl::VipNetAddress local{nic_.nodeId(), cfg_.discriminator};
  vipl::PendingConn conn;
  if (nic_.connectWait(local, sim::usec(1), conn) !=
      vipl::VipResult::VIP_SUCCESS) {
    return;
  }
  // A connect request while we believe the connection is up means the peer
  // lost its side and is reconnecting: treat our half-open side as down.
  claimed_ = conn;
  markBroken();
  connectLoop();
}

// --- datapath ---------------------------------------------------------------

bool Session::send(std::span<const std::byte> msg) {
  if (state_ == SessionState::Idle || state_ == SessionState::Down) {
    return false;
  }
  if (msg.size() > cfg_.maxMessageBytes) return false;
  Outbound o;
  o.seq = nextSeq_++;
  o.payload.assign(msg.begin(), msg.end());
  replay_.push_back(std::move(o));
  ++stats_.sent;
  if (obs::Counter* c = counter("session.sent")) c->add();
  traceRec(fmt("send sid=%u dst=%u seq=%llu", cfg_.sid, cfg_.remoteNode,
               static_cast<unsigned long long>(nextSeq_ - 1)));
  if (state_ == SessionState::Established) {
    drainSendCompletions();
    pump();
  }
  return true;
}

void Session::pump() {
  if (state_ != SessionState::Established) return;
  while (postedCount_ < replay_.size()) {
    SendSlot* slot = nullptr;
    for (SendSlot& s : slots_) {
      if (!s.busy) {
        slot = &s;
        break;
      }
    }
    if (slot == nullptr) return;
    Outbound& o = replay_[postedCount_];
    const std::size_t idx = static_cast<std::size_t>(slot - slots_.data());
    std::vector<std::byte> frame(kHeaderBytes + o.payload.size());
    FrameHeader h;
    h.kind = kData;
    h.sid = static_cast<std::uint16_t>(cfg_.sid);
    h.epoch = vi_->epoch();
    h.seq = o.seq;
    packHeader(frame.data(), h);
    std::copy(o.payload.begin(), o.payload.end(),
              frame.begin() + kHeaderBytes);
    nic_.memory().write(sendSlotVa(idx), frame);
    slot->desc = vipl::VipDescriptor::send(
        sendSlotVa(idx), handle_,
        static_cast<std::uint32_t>(frame.size()));
    if (nic_.postSend(vi_, &slot->desc) != vipl::VipResult::VIP_SUCCESS) {
      return;  // connection just dropped; recovery requeues everything
    }
    slot->busy = true;
    slot->seq = o.seq;
    o.everPosted = true;
    ++postedCount_;
  }
}

void Session::drainSendCompletions() {
  vipl::VipDescriptor* d = nullptr;
  while (nic_.sendDone(vi_, d) == vipl::VipResult::VIP_SUCCESS) {
    handleSendCompletion(d);
  }
}

void Session::handleSendCompletion(vipl::VipDescriptor* d) {
  if (d == &helloDesc_) {  // liveness probe / late hello: no payload
    probeInFlight_ = false;
    return;
  }
  SendSlot* slot = nullptr;
  for (SendSlot& s : slots_) {
    if (d == &s.desc) {
      slot = &s;
      break;
    }
  }
  if (slot == nullptr || !slot->busy) return;
  slot->busy = false;
  if (!d->cs.status.ok()) return;  // flushed by a break; replay covers it
  // ReliableReception: an Ok completion proves placement at the peer.
  // Completions confirm in post order, i.e. the replay front.
  if (!replay_.empty() && replay_.front().seq == slot->seq) {
    replay_.pop_front();
    if (postedCount_ > 0) --postedCount_;
  }
}

void Session::armNotify() {
  std::weak_ptr<int> alive = alive_;
  const std::uint64_t gen = epochGen_;
  nic_.recvNotify(vi_, [this, gen, alive](vipl::VipDescriptor* d) {
    if (alive.expired()) return;
    onRecvInterrupt(d, gen);
  });
}

void Session::onRecvInterrupt(vipl::VipDescriptor* d, std::uint64_t gen) {
  if (gen != epochGen_) return;  // stale incarnation: descriptor re-posted
                                 // (or torn down) by prepareEndpoint already
  if (!d->cs.status.ok()) {
    // Break flush: wake any blocked reader so it runs recovery. The ring
    // slot is rebuilt by prepareEndpoint; do not repost or re-arm here.
    recvSignal_.notifyAll();
    return;
  }
  const std::size_t idx = static_cast<std::size_t>(d - ring_.data());
  const std::uint32_t got = d->cs.length;
  if (got >= kHeaderBytes) {
    std::vector<std::byte> frame(got);
    nic_.memory().read(ringVa(idx), frame);
    const FrameHeader h = unpackHeader(frame.data());
    if (h.kind == kHello) {
      peerEpoch_ = h.epoch;
      peerDelivered_ = h.seq;
      helloSeen_ = true;
    } else if (h.kind == kData) {
      if (h.epoch != vi_->remoteEpoch()) {
        ++stats_.staleDropped;
        if (obs::Counter* c = counter("session.stale")) c->add();
        traceRec(fmt("stale sid=%u src=%u epoch=%u seq=%llu", cfg_.sid,
                     cfg_.remoteNode, h.epoch,
                     static_cast<unsigned long long>(h.seq)));
      } else if (h.seq <= rxDelivered_) {
        ++stats_.deduped;
        if (obs::Counter* c = counter("session.deduped")) c->add();
        traceRec(fmt("dedup sid=%u src=%u seq=%llu", cfg_.sid,
                     cfg_.remoteNode,
                     static_cast<unsigned long long>(h.seq)));
      } else if (h.seq == rxDelivered_ + 1) {
        rxDelivered_ = h.seq;
        ++stats_.delivered;
        if (obs::Counter* c = counter("session.delivered")) c->add();
        inbox_.emplace_back(frame.begin() + kHeaderBytes, frame.end());
        traceRec(fmt("deliver sid=%u src=%u seq=%llu", cfg_.sid,
                     cfg_.remoteNode,
                     static_cast<unsigned long long>(h.seq)));
      } else {
        // Impossible under in-order reliable reception; surfaced so the
        // invariant checker fails the run instead of silently losing data.
        traceRec(fmt("gap sid=%u src=%u seq=%llu expected=%llu", cfg_.sid,
                     cfg_.remoteNode,
                     static_cast<unsigned long long>(h.seq),
                     static_cast<unsigned long long>(rxDelivered_ + 1)));
      }
    }
  }
  *d = vipl::VipDescriptor::recv(ringVa(idx), handle_, slotBytes_);
  if (nic_.postRecv(vi_, d) == vipl::VipResult::VIP_SUCCESS) armNotify();
  recvSignal_.notifyAll();
}

// --- progress / blocking surface ---------------------------------------------

void Session::progress() {
  if (state_ == SessionState::Idle || state_ == SessionState::Down) return;
  drainSendCompletions();
  if (vi_->state() != vipl::ViState::Connected) {
    markBroken();
    connectLoop();
    return;
  }
  maybeAcceptPoll();
  if (state_ != SessionState::Established) return;
  pump();
  if (cfg_.initiator && cfg_.policy.probeInterval > 0 && replay_.empty() &&
      !probeInFlight_ &&
      engine_.now() - lastProbe_ >= cfg_.policy.probeInterval) {
    // Idle liveness probe: a Hello re-announcing our watermark. If the
    // passive side silently lost its endpoint, this send trips the RTO
    // budget and converts the half-open link into a detected break.
    lastProbe_ = engine_.now();
    FrameHeader h;
    h.kind = kHello;
    h.sid = static_cast<std::uint16_t>(cfg_.sid);
    h.epoch = vi_->epoch();
    h.seq = rxDelivered_;
    std::byte buf[kHeaderBytes];
    packHeader(buf, h);
    nic_.memory().write(helloVa(), buf);
    helloDesc_ = vipl::VipDescriptor::send(helloVa(), handle_, kHeaderBytes);
    if (nic_.postSend(vi_, &helloDesc_) == vipl::VipResult::VIP_SUCCESS) {
      probeInFlight_ = true;
    }
  }
}

bool Session::recv(std::vector<std::byte>& out, sim::Duration timeout) {
  const sim::SimTime deadline = engine_.now() + timeout;
  for (;;) {
    progress();
    if (!inbox_.empty()) {
      out = std::move(inbox_.front());
      inbox_.pop_front();
      return true;
    }
    if (state_ == SessionState::Down) return false;
    const sim::SimTime now = engine_.now();
    if (now >= deadline) return false;
    // Chunked waits keep the passive side's half-open detection live. The
    // chunk is deliberately coarser than acceptPollInterval: recvSignal_
    // already wakes us the moment a message or state change lands, so the
    // timer only bounds how stale half-open detection can get while idle,
    // and a 1 ms bound is far below the initiator's ~20 ms connect retry.
    self().awaitFor(recvSignal_,
                    std::min<sim::Duration>(deadline - now, sim::msec(1)));
  }
}

bool Session::poll(std::vector<std::byte>& out) {
  progress();
  if (inbox_.empty()) return false;
  out = std::move(inbox_.front());
  inbox_.pop_front();
  return true;
}

bool Session::flush(sim::Duration timeout) {
  const sim::SimTime deadline = engine_.now() + timeout;
  for (;;) {
    progress();
    if (replay_.empty()) return true;
    if (state_ == SessionState::Down) return false;
    const sim::SimTime now = engine_.now();
    if (now >= deadline) return false;
    vipl::VipDescriptor* d = nullptr;
    if (nic_.sendWait(vi_, std::min<sim::Duration>(deadline - now,
                                                   sim::msec(1)),
                      d) == vipl::VipResult::VIP_SUCCESS) {
      handleSendCompletion(d);
    }
  }
}

}  // namespace vibe::session
