// Session recovery layer: automatic reconnect with exactly-once replay.
//
// VIA connections are fail-fast by design: a retry-budget exhaustion or an
// injected fault breaks the connection, flushes every posted descriptor
// with Aborted/ConnectionLost, and leaves the VI in Error. A Session wraps
// one VI pair endpoint and turns that into a recoverable stream:
//
//   * Every application message carries a session header (sid, connection
//     epoch, message sequence number). Sent payloads are retained in a
//     replay buffer until the peer has provably placed them.
//   * When the connection breaks, the session re-establishes it under a
//     ReconnectPolicy — exponential backoff with deterministic seed-derived
//     jitter, a per-round attempt budget, and a circuit breaker that
//     degrades the session to Down after maxRounds failed rounds.
//   * After every (re)connect the two sides exchange Hello frames carrying
//     their connection epoch and cumulative-delivered watermark. The sender
//     trims its replay buffer to the watermark and resubmits the rest; the
//     receiver drops anything at or below its watermark (duplicates) and
//     anything from a stale epoch. Net effect: exactly-once, in-order
//     delivery across any number of reconnects.
//
// Sessions force ReliableReception: under ReliableDelivery a message can be
// acknowledged at NIC receipt yet lost before placement when the connection
// breaks in between, so an Ok send completion would not imply delivery and
// the replay trim would drop a message forever. With RR, Ok == placed.
//
// The receive path is an interrupt-driven ring: ringDepth descriptors are
// preposted and re-armed from a VipRecvNotify handler that copies the
// payload out, reposts the descriptor, and wakes any blocked reader — the
// ring can never starve because the application was slow to repost.
//
// Everything here is zero-cost when unused: no Session, no extra events,
// no extra trace records, and all benchmark output stays byte-identical.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "simcore/prng.hpp"
#include "vipl/vipl.hpp"

namespace vibe::session {

/// Backoff/retry schedule for re-establishing a broken connection.
struct ReconnectPolicy {
  sim::Duration backoffBase = sim::msec(1);   // first retry delay
  sim::Duration backoffCap = sim::msec(32);   // exponential growth ceiling
  double jitterFrac = 0.2;                    // +/- fraction of each delay
  std::uint32_t attemptsPerRound = 4;         // connect tries per round
  std::uint32_t maxRounds = 8;                // circuit breaker: then Down
  sim::Duration connectTimeout = sim::msec(20);   // per connect dialog
  sim::Duration helloTimeout = sim::msec(50);     // per watermark exchange
  /// While Established, the passive side polls for a peer-initiated
  /// reconnect (half-open detection) at most this often.
  sim::Duration acceptPollInterval = sim::usec(200);
  /// While Established and otherwise idle, the initiator re-sends its Hello
  /// watermark at most this often; if the passive side silently lost its
  /// endpoint, the probe trips the RTO budget and surfaces the break. 0
  /// disables probing.
  sim::Duration probeInterval = sim::msec(5);
  /// Run seed; jitter derives from (seed, sid) so runs are reproducible.
  std::uint64_t seed = 0;
};

enum class SessionState : std::uint8_t {
  Idle,         // constructed, establish() not yet called
  Connecting,   // first establishment in progress
  Established,  // connected, stream flowing
  Recovering,   // connection lost, reconnect loop running
  Down,         // circuit breaker tripped: recovery abandoned
};

const char* toString(SessionState s);

/// Recovery and stream accounting, exposed for benchmarks and tests.
struct SessionStats {
  std::uint64_t reconnects = 0;       // successful re-establishments
  std::uint64_t connectAttempts = 0;  // connect dialogs tried (incl. failed)
  std::uint64_t replayed = 0;         // messages resubmitted after reconnect
  std::uint64_t deduped = 0;          // duplicate deliveries suppressed
  std::uint64_t staleDropped = 0;     // frames from a previous epoch dropped
  std::uint64_t sent = 0;             // messages accepted by send()
  std::uint64_t delivered = 0;        // messages handed to the application
  sim::Duration totalDowntime = 0;    // sum of all recovery episodes
  sim::Duration lastMttr = 0;         // most recent recovery episode
  std::uint64_t reopens = 0;          // deliberate reopen() revivals tried
};

struct SessionConfig {
  /// Caller-assigned session id; must be deterministic (it seeds the
  /// jitter PRNG and keys trace records) and unique per stream direction
  /// pair on a node.
  std::uint32_t sid = 0;
  fabric::NodeId remoteNode = 0;
  std::uint64_t discriminator = 0;
  /// Exactly one side of a session pair is the initiator (issues
  /// connectRequest); the other accepts.
  bool initiator = true;
  std::uint32_t maxMessageBytes = 16u << 10;
  std::uint32_t ringDepth = 16;  // preposted receive descriptors
  ReconnectPolicy policy;
  /// Optional observability hooks (both may be null).
  obs::MetricsRegistry* metrics = nullptr;
  obs::SpanProfiler* spans = nullptr;
};

class Session {
 public:
  Session(vipl::Provider& nic, SessionConfig cfg);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Connects (blocking, with the full retry schedule). False => Down.
  bool establish();

  /// Deliberate revival of a Down session: resets the tripped circuit
  /// breaker and re-runs the full connect schedule. On the passive side
  /// this first peeks (non-blocking) for a pending connect request and
  /// returns false immediately when the peer is not redialing, so a
  /// server loop can call it periodically without stalling. Returns true
  /// when the session is Established again (trivially so if it already
  /// is); false when it was never Down, the peer is not dialing, or the
  /// retry schedule failed again (back to Down). The replay buffer and
  /// watermarks survive, so the revived stream stays exactly-once.
  bool reopen();

  /// Queues one message for exactly-once delivery. Never blocks: during an
  /// outage messages accumulate in the replay buffer and flow after
  /// recovery. False when the session is Down/Idle or the message exceeds
  /// maxMessageBytes.
  bool send(std::span<const std::byte> msg);
  bool send(const void* data, std::size_t len) {
    return send({static_cast<const std::byte*>(data), len});
  }

  /// Blocking receive of the next in-order message. Runs recovery inline
  /// if the connection drops while waiting. False on timeout or Down.
  bool recv(std::vector<std::byte>& out, sim::Duration timeout);

  /// Non-blocking: makes progress (including inline recovery if the
  /// connection is found broken) and pops one delivered message if any.
  bool poll(std::vector<std::byte>& out);

  /// Blocks until every sent message is confirmed placed at the peer.
  /// False on timeout or Down.
  bool flush(sim::Duration timeout);

  /// Drives completions, half-open detection, replay posting, and — when
  /// the connection is found broken — the blocking recovery loop.
  void progress();

  SessionState state() const { return state_; }
  const SessionStats& stats() const { return stats_; }
  std::uint32_t sid() const { return cfg_.sid; }
  /// Current connection incarnation (the wrapped VI's epoch).
  std::uint32_t epoch() const { return vi_->epoch(); }
  bool down() const { return state_ == SessionState::Down; }
  vipl::Vi* vi() const { return vi_; }
  std::size_t inboxDepth() const { return inbox_.size(); }
  std::size_t unconfirmed() const { return replay_.size(); }

 private:
  struct Outbound {
    std::uint64_t seq = 0;
    std::vector<std::byte> payload;
    bool everPosted = false;  // replays count only messages already tried
  };
  struct SendSlot {
    bool busy = false;
    std::uint64_t seq = 0;
    vipl::VipDescriptor desc;
  };

  // -- establishment / recovery --
  bool connectLoop();       // full backoff schedule; trips breaker on fail
  bool establishOnce();     // one connect dialog + hello exchange
  bool prepareEndpoint();   // reset VI if needed, prepost + arm the ring
  bool helloExchange();     // swap epoch/watermark, trim + requeue replay
  bool claimRequest(sim::Duration timeout, vipl::PendingConn& out);
  void markBroken();        // Established -> Recovering bookkeeping
  void onEstablished(std::uint32_t attempts);
  void maybeAcceptPoll();   // passive side: detect peer-initiated reconnect
  sim::Duration backoffDelay(std::uint32_t attempt);

  // -- datapath --
  void pump();                     // post queued outbound into free slots
  void drainSendCompletions();
  void handleSendCompletion(vipl::VipDescriptor* d);
  void onRecvInterrupt(vipl::VipDescriptor* d, std::uint64_t gen);
  void armNotify();

  // -- plumbing --
  sim::Process& self() const;
  void traceRec(std::string msg) const;
  mem::VirtAddr sendSlotVa(std::size_t i) const;
  mem::VirtAddr helloVa() const;
  mem::VirtAddr ringVa(std::size_t i) const;
  obs::Counter* counter(const char* name) const;

  vipl::Provider& nic_;
  SessionConfig cfg_;
  sim::Engine& engine_;
  mem::PtagId ptag_ = 0;
  mem::VirtAddr arena_ = 0;
  mem::MemHandle handle_ = 0;
  std::uint32_t slotBytes_ = 0;
  vipl::Vi* vi_ = nullptr;
  sim::Signal recvSignal_;
  sim::Xoshiro256 jitter_;

  SessionState state_ = SessionState::Idle;
  SessionStats stats_;
  std::string scope_;  // metrics prefix, "node<N>/session<sid>"

  // Sender side: unconfirmed messages, oldest first. The first
  // postedCount_ entries are in flight in send slots.
  std::deque<Outbound> replay_;
  std::size_t postedCount_ = 0;
  std::uint64_t nextSeq_ = 1;
  std::vector<SendSlot> slots_;
  vipl::VipDescriptor helloDesc_;

  // Receiver side.
  std::vector<vipl::VipDescriptor> ring_;
  std::deque<std::vector<std::byte>> inbox_;
  std::uint64_t rxDelivered_ = 0;   // highest in-order seq delivered
  std::uint32_t peerEpoch_ = 0;     // from the latest Hello
  std::uint64_t peerDelivered_ = 0; // peer's watermark from latest Hello
  bool helloSeen_ = false;

  // Recovery bookkeeping.
  sim::SimTime downAt_ = 0;
  bool wasEstablished_ = false;
  std::uint64_t epochGen_ = 0;  // bumped per prepareEndpoint; fences stale
                                // notify-handler events across resets
  sim::SimTime lastAcceptPoll_ = 0;
  sim::SimTime lastProbe_ = 0;
  bool probeInFlight_ = false;
  std::optional<vipl::PendingConn> claimed_;  // from maybeAcceptPoll
  std::shared_ptr<int> alive_;  // notify handlers hold a weak_ptr to this
};

}  // namespace vibe::session
