#include "nic/profiles.hpp"

#include <stdexcept>

namespace vibe::nic {

using sim::msec;
using sim::usec;

NicProfile mviaProfile() {
  NicProfile p;
  p.name = "M-VIA (GigE)";

  // Host library + kernel-trap doorbell.
  p.viplCallOverhead = usec(0.25);
  p.postSendBase = usec(0.6);
  p.postSendPerSeg = usec(0.15);
  p.postRecvBase = usec(0.5);
  p.postRecvPerSeg = usec(0.15);
  p.doorbellCost = usec(2.5);  // int 0x80 + kernel entry
  p.pollCost = usec(0.08);
  p.blockingWakeupCost = usec(6);

  // Kernel-emulated data path: copy + per-frame protocol work on the host.
  p.hostInlineSendProcessing = true;
  p.hostCopyMBps = 230.0;  // PII-300 SDRAM memcpy
  p.hostPerFragCost = usec(5.5);
  p.hostRxProcessing = true;
  p.hostRxPerFragCost = usec(14.0);  // per-frame interrupt + driver + enqueue
  p.hostRxPerMsgCost = usec(1.0);

  p.pickup = DescriptorPickup::HostInline;
  p.nicPerMsgCost = usec(0.3);  // dumb Ethernet NIC: DMA descriptor only
  p.nicPerFragCost = usec(0.4);
  p.nicPerSegCost = 0;  // gather flattened by the kernel copy
  p.rxMatchCost = usec(0.3);
  p.completionWriteCost = usec(0.3);
  p.interruptCost = usec(9);

  p.translation = TranslationMode::HostCopy;
  p.translationPerPage = 0;  // bounce buffers are pre-translated

  p.dmaMBps = 110.0;
  p.dmaStartupCost = usec(0.6);
  p.mtu = 1500;  // Ethernet frame
  p.maxTransferSize = 65535;
  p.linkMBps = 125.0;  // 1 Gb/s
  p.linkPropagation = usec(0.6);
  p.linkHeaderBytes = 38;  // Ethernet + VIA encapsulation
  p.switchLatency = usec(2.0);  // store-and-forward GigE switch floor

  p.ackProcessingCost = usec(1.0);
  p.rtoBase = msec(2);
  p.sendWindowFrags = 32;
  p.supportsRdmaWrite = true;
  p.supportsRdmaRead = false;

  // Table 1 anchors.
  p.createViCost = usec(92);   // kernel object + queue allocation
  p.destroyViCost = usec(0.19);
  p.connectLocalCost = usec(4000);  // socket-based connection dialog
  p.connectRemoteCost = usec(2400);
  p.teardownCost = usec(3);
  p.createCqCost = usec(16);
  p.destroyCqCost = usec(8.4);
  p.cqCheckCost = usec(0.1);
  p.cqPostCost = 0;  // negligible (paper 4.3.3)

  // Fig. 1 / Fig. 2 anchors: cheap call, pinning cost per page.
  p.memRegBase = usec(4);
  p.memRegPerPage = usec(2.6);
  p.memDeregBase = usec(6);
  p.memDeregPerPage = usec(0.0006);

  return p;
}

NicProfile bviaProfile() {
  NicProfile p;
  p.name = "Berkeley VIA (Myrinet)";

  p.viplCallOverhead = usec(0.2);
  p.postSendBase = usec(0.5);
  p.postSendPerSeg = usec(0.1);
  p.postRecvBase = usec(0.4);
  p.postRecvPerSeg = usec(0.1);
  p.doorbellCost = usec(0.3);  // MMIO write into LANai memory
  p.pollCost = usec(0.08);
  p.blockingWakeupCost = usec(8);

  p.hostInlineSendProcessing = false;
  p.hostCopyMBps = 0;
  p.hostRxProcessing = false;

  // 37 MHz LANai firmware: slow per-message work, doorbell discovery scans
  // every active VI (Fig. 6 mechanism).
  p.pickup = DescriptorPickup::FirmwarePoll;
  p.firmwareBasePoll = usec(4.0);
  p.firmwarePollPerVi = usec(2.5);
  p.nicPerMsgCost = usec(13.0);
  p.nicPerFragCost = usec(4.5);
  p.nicPerSegCost = usec(1.2);
  p.rxMatchCost = usec(7.0);
  p.completionWriteCost = usec(4.0);
  p.interruptCost = usec(11);

  // Translation tables in host memory, NIC-side software cache (Fig. 5).
  p.translation = TranslationMode::NicTlbHostTable;
  p.tlbHitCost = usec(0.15);
  p.tlbMissCost = usec(22);  // miss interrupts the host: kernel walks the
                              // page table and installs the entry in NIC
                              // memory (BVIA software-managed cache)
  p.tlbEntries = 64;

  p.dmaMBps = 122.0;
  p.dmaStartupCost = usec(1.0);
  p.mtu = 2048;  // firmware staging buffers: DMA/wire pipeline per 2 KiB
  p.maxTransferSize = 32u << 20;
  p.linkMBps = 160.0;  // Myrinet 1.28 Gb/s
  p.linkPropagation = usec(0.4);
  p.linkHeaderBytes = 16;
  p.switchLatency = usec(0.5);  // cut-through Myrinet crossbar

  p.ackProcessingCost = usec(1.5);
  p.rtoBase = msec(2);
  p.sendWindowFrags = 32;
  p.supportsRdmaWrite = false;  // BVIA 2.2 implements send/recv only
  p.supportsRdmaRead = false;

  p.createViCost = usec(27);
  p.destroyViCost = usec(0.19);
  p.connectLocalCost = usec(260);
  p.connectRemoteCost = usec(210);
  p.teardownCost = usec(9);
  p.createCqCost = usec(205);  // CQ allocated in NIC memory
  p.destroyCqCost = usec(35);
  p.cqCheckCost = usec(0.12);
  p.cqPostCost = usec(2.5);  // firmware writes a second completion record

  p.memRegBase = usec(15);   // host<->firmware dialog to install the pages
  p.memRegPerPage = usec(0.9);
  p.memDeregBase = usec(14);
  p.memDeregPerPage = usec(0.0004);

  return p;
}

NicProfile clanProfile() {
  NicProfile p;
  p.name = "cLAN VIA (Giganet)";

  p.viplCallOverhead = usec(0.15);
  p.postSendBase = usec(0.35);
  p.postSendPerSeg = usec(0.08);
  p.postRecvBase = usec(0.3);
  p.postRecvPerSeg = usec(0.08);
  p.doorbellCost = usec(0.15);
  p.pollCost = usec(0.08);
  p.blockingWakeupCost = usec(6);

  p.hostInlineSendProcessing = false;
  p.hostCopyMBps = 0;
  p.hostRxProcessing = false;

  // Hardware VIA: immediate doorbells, fast fixed-function engine.
  p.pickup = DescriptorPickup::Immediate;
  p.nicPickupLatency = usec(0.6);
  p.nicPerMsgCost = usec(0.9);
  p.nicPerFragCost = usec(0.5);
  p.nicPerSegCost = usec(0.3);
  p.rxMatchCost = usec(0.6);
  p.completionWriteCost = usec(0.5);
  p.interruptCost = usec(7);

  p.translation = TranslationMode::NicSram;
  p.translationPerPage = usec(0.06);

  p.dmaMBps = 112.0;
  p.dmaStartupCost = usec(0.5);
  p.mtu = 2048;  // hardware-internal framing: DMA and wire pipeline per 2 KiB
  p.maxTransferSize = 65536;
  p.linkMBps = 156.0;  // 1.25 Gb/s cLAN link
  p.linkPropagation = usec(0.3);
  p.linkHeaderBytes = 8;
  p.switchLatency = usec(0.7);

  p.ackProcessingCost = usec(0.6);
  p.rtoBase = msec(1);
  p.sendWindowFrags = 64;
  p.supportsRdmaWrite = true;
  p.supportsRdmaRead = false;  // cLAN implements RDMA write only

  p.createViCost = usec(2.8);
  p.destroyViCost = usec(0.11);
  p.connectLocalCost = usec(1450);  // hardware connection state install
  p.connectRemoteCost = usec(990);
  p.teardownCost = usec(154);
  p.createCqCost = usec(53);
  p.destroyCqCost = usec(15);
  p.cqCheckCost = usec(0.1);
  p.cqPostCost = 0;

  p.memRegBase = usec(6);
  p.memRegPerPage = usec(1.5);
  p.memDeregBase = usec(7);
  p.memDeregPerPage = usec(0.0005);

  return p;
}

NicProfile firmviaProfile() {
  NicProfile p;
  p.name = "FirmVIA (IBM SP)";

  p.viplCallOverhead = usec(0.2);
  p.postSendBase = usec(0.4);
  p.postSendPerSeg = usec(0.1);
  p.postRecvBase = usec(0.35);
  p.postRecvPerSeg = usec(0.1);
  p.doorbellCost = usec(0.25);  // MMIO into adapter memory
  p.pollCost = usec(0.08);
  p.blockingWakeupCost = usec(7);

  p.hostInlineSendProcessing = false;
  p.hostCopyMBps = 0;
  p.hostRxProcessing = false;

  // Adapter firmware on a much faster microprocessor than LANai 4: polls
  // per-VI doorbells like BVIA but with far cheaper scans.
  p.pickup = DescriptorPickup::FirmwarePoll;
  p.firmwareBasePoll = usec(1.0);
  p.firmwarePollPerVi = usec(0.35);
  p.nicPerMsgCost = usec(3.5);
  p.nicPerFragCost = usec(1.2);
  p.nicPerSegCost = usec(0.5);
  p.rxMatchCost = usec(2.0);
  p.completionWriteCost = usec(1.0);
  p.interruptCost = usec(9);

  // Translation tables pinned in adapter memory: reuse-insensitive.
  p.translation = TranslationMode::NicSram;
  p.translationPerPage = usec(0.08);

  p.dmaMBps = 115.0;
  p.dmaStartupCost = usec(0.6);
  p.mtu = 2048;
  p.maxTransferSize = 65536;
  p.linkMBps = 150.0;  // SP switch link
  p.linkPropagation = usec(0.5);
  p.linkHeaderBytes = 16;
  p.switchLatency = usec(0.6);

  p.ackProcessingCost = usec(0.8);
  p.rtoBase = msec(1);
  p.sendWindowFrags = 64;
  p.supportsRdmaWrite = false;  // send/recv model only
  p.supportsRdmaRead = false;

  p.createViCost = usec(15);
  p.destroyViCost = usec(0.2);
  p.connectLocalCost = usec(380);
  p.connectRemoteCost = usec(300);
  p.teardownCost = usec(12);
  p.createCqCost = usec(60);
  p.destroyCqCost = usec(18);
  p.cqCheckCost = usec(0.1);
  p.cqPostCost = usec(0.8);

  p.memRegBase = usec(10);
  p.memRegPerPage = usec(1.1);
  p.memDeregBase = usec(9);
  p.memDeregPerPage = usec(0.0005);

  return p;
}

NicProfile ibaProfile() {
  NicProfile p;
  p.name = "InfiniBand HCA (4X)";

  p.viplCallOverhead = usec(0.08);
  p.postSendBase = usec(0.15);
  p.postSendPerSeg = usec(0.03);
  p.postRecvBase = usec(0.12);
  p.postRecvPerSeg = usec(0.03);
  p.doorbellCost = usec(0.08);
  p.pollCost = usec(0.04);
  p.blockingWakeupCost = usec(4);

  p.pickup = DescriptorPickup::Immediate;
  p.nicPickupLatency = usec(0.25);
  p.nicPerMsgCost = usec(0.35);
  p.nicPerFragCost = usec(0.15);
  p.nicPerSegCost = usec(0.1);
  p.rxMatchCost = usec(0.25);
  p.completionWriteCost = usec(0.2);
  p.interruptCost = usec(5);

  p.translation = TranslationMode::NicSram;
  p.translationPerPage = usec(0.02);

  // PCI-X 64-bit/133 MHz: ~1 GB/s; keep DMA just above the wire.
  p.dmaMBps = 900.0;
  p.dmaStartupCost = usec(0.2);
  p.mtu = 2048;  // IBA MTU
  p.maxTransferSize = 1u << 31;
  p.linkMBps = 1000.0;  // 4X SDR data rate (8 Gb/s signalling, 8b/10b)
  p.linkPropagation = usec(0.15);
  p.linkHeaderBytes = 30;  // LRH+BTH+ICRC/VCRC
  p.switchLatency = usec(0.2);

  p.ackProcessingCost = usec(0.2);
  p.rtoBase = msec(1);
  p.sendWindowFrags = 128;
  p.supportsRdmaWrite = true;
  p.supportsRdmaRead = true;  // IBA requires RDMA read on RC

  p.createViCost = usec(5);   // QP allocation through the kernel, cheap HCA
  p.destroyViCost = usec(0.3);
  p.connectLocalCost = usec(220);  // CM MAD dialogue
  p.connectRemoteCost = usec(180);
  p.teardownCost = usec(25);
  p.createCqCost = usec(12);
  p.destroyCqCost = usec(6);
  p.cqCheckCost = usec(0.04);
  p.cqPostCost = 0;

  p.memRegBase = usec(12);    // kernel pinning path
  p.memRegPerPage = usec(0.35);
  p.memDeregBase = usec(8);
  p.memDeregPerPage = usec(0.0005);

  return p;
}

void validateProfile(const NicProfile& p) {
  auto fail = [&](const std::string& what) {
    throw std::invalid_argument("profile '" + p.name + "': " + what);
  };
  if (p.rtoBackoffCap < 1) fail("rtoBackoffCap must be >= 1");
  if (p.rtoRetryBudget < 1) fail("rtoRetryBudget must be >= 1");
  if (p.rtoBase <= 0) fail("rtoBase must be positive");
  if (p.sendWindowFrags < 1) fail("sendWindowFrags must be >= 1");
  if (p.mtu < 1) fail("mtu must be >= 1");
  if (p.maxTransferSize < p.mtu) fail("maxTransferSize must be >= mtu");
  if (p.linkMBps <= 0.0) fail("linkMBps must be positive");
  if (p.dmaMBps <= 0.0) fail("dmaMBps must be positive");
}

NicProfile profileByName(const std::string& name) {
  NicProfile p;
  if (name == "mvia") p = mviaProfile();
  else if (name == "bvia") p = bviaProfile();
  else if (name == "clan") p = clanProfile();
  else if (name == "firmvia") p = firmviaProfile();
  else if (name == "iba") p = ibaProfile();
  else throw std::invalid_argument("unknown NIC profile: " + name);
  validateProfile(p);
  return p;
}

}  // namespace vibe::nic
