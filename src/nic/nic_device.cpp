#include "nic/nic_device.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <utility>

namespace vibe::nic {

namespace {

std::uint32_t fragCountFor(std::uint64_t bytes, std::uint32_t mtu) {
  if (bytes == 0) return 1;  // immediate-only / zero-byte messages
  return static_cast<std::uint32_t>((bytes + mtu - 1) / mtu);
}

/// Scatters `data` (which starts at message offset `offset`) into the
/// descriptor's segments.
void scatterWrite(mem::HostMemory& memory,
                  const std::vector<SegmentView>& segments,
                  std::uint64_t offset, std::span<const std::byte> data) {
  std::uint64_t segStart = 0;
  std::uint64_t dataPos = 0;
  for (const auto& seg : segments) {
    const std::uint64_t segEnd = segStart + seg.length;
    if (offset < segEnd && dataPos < data.size()) {
      const std::uint64_t inSeg = offset - segStart;
      const std::uint64_t room = seg.length - inSeg;
      const std::uint64_t chunk =
          std::min<std::uint64_t>(room, data.size() - dataPos);
      memory.write(seg.addr + inSeg, data.subspan(dataPos, chunk));
      dataPos += chunk;
      offset += chunk;
    }
    segStart = segEnd;
    if (dataPos >= data.size()) break;
  }
}

}  // namespace

const char* toString(Reliability r) {
  switch (r) {
    case Reliability::Unreliable: return "Unreliable";
    case Reliability::ReliableDelivery: return "ReliableDelivery";
    case Reliability::ReliableReception: return "ReliableReception";
  }
  return "Unknown";
}

const char* toString(WorkStatus s) {
  switch (s) {
    case WorkStatus::Ok: return "Ok";
    case WorkStatus::LengthError: return "LengthError";
    case WorkStatus::ProtectionError: return "ProtectionError";
    case WorkStatus::PartialMessage: return "PartialMessage";
    case WorkStatus::ConnectionLost: return "ConnectionLost";
    case WorkStatus::Aborted: return "Aborted";
    case WorkStatus::NoDescriptor: return "NoDescriptor";
  }
  return "Unknown";
}

NicDevice::NicDevice(sim::Engine& engine, fabric::Network& net, NodeId node,
                     const NicProfile& profile, mem::MemoryRegistry& registry,
                     mem::HostMemory& memory)
    : engine_(engine),
      net_(net),
      node_(node),
      profile_(profile),
      registry_(registry),
      memory_(memory),
      tlb_(profile.tlbEntries),
      nicProc_("nic" + std::to_string(node) + ".proc"),
      dma_("nic" + std::to_string(node) + ".dma"),
      hostKernel_("nic" + std::to_string(node) + ".kernel") {
  net_.setReceiver(node_, [this](Packet&& p) { handleRx(std::move(p)); });
}

NicDevice::Endpoint& NicDevice::ep(ViEndpointId id) {
  auto it = endpoints_.find(id);
  if (it == endpoints_.end() || !it->second->active) {
    throw sim::SimError("NicDevice: unknown endpoint " + std::to_string(id));
  }
  return *it->second;
}

NicDevice::Endpoint* NicDevice::epIfActive(ViEndpointId id) {
  auto it = endpoints_.find(id);
  return (it != endpoints_.end() && it->second->active) ? it->second.get()
                                                        : nullptr;
}

void NicDevice::chargeCaller(sim::Duration d) {
  if (d <= 0) return;
  if (sim::Process* p = engine_.currentProcess()) {
    p->advance(d);
  } else {
    // No process context (resumed from an event, e.g. window reopened by an
    // ack): the work still serializes on the host kernel.
    hostKernel_.acquire(engine_.now(), d);
  }
}

void NicDevice::postCompletion(ViEndpointId id, Completion c, sim::SimTime at) {
  sim::trace(tracer_, at, sim::TraceCategory::Completion, node_,
             std::string(c.isSend ? "send" : "recv") + " completion vi=" +
                 std::to_string(id) + " status=" + toString(c.status));
  engine_.postAt(at, [this, id, c = std::move(c)]() mutable {
    if (handlers_.completion) handlers_.completion(id, std::move(c));
  });
}

std::size_t NicDevice::txBacklog() const {
  std::size_t n = 0;
  for (const auto& [id, e] : endpoints_) {
    if (e->active) n += e->sendQ.size() + e->unacked.size();
  }
  return n;
}

std::size_t NicDevice::rxBacklog() const {
  std::size_t n = 0;
  for (const auto& [id, e] : endpoints_) {
    if (e->active) n += e->recvQ.size();
  }
  return n;
}

ViEndpointId NicDevice::createEndpoint(mem::PtagId ptag) {
  const ViEndpointId id = nextEndpoint_++;
  auto e = std::make_unique<Endpoint>();
  e->active = true;
  e->ptag = ptag;
  endpoints_.emplace(id, std::move(e));
  ++activeEndpoints_;
  return id;
}

void NicDevice::destroyEndpoint(ViEndpointId id) {
  Endpoint& e = ep(id);
  sim::trace(tracer_, engine_.now(), sim::TraceCategory::Connection, node_,
             "destroy vi=" + std::to_string(id));
  flushEndpoint(id, e, WorkStatus::Aborted);
  e.active = false;
  e.connected = false;
  --activeEndpoints_;
}

void NicDevice::configureConnection(ViEndpointId id, NodeId remoteNode,
                                    ViEndpointId remoteVi, Reliability rel,
                                    std::uint32_t mtu, std::uint32_t epoch) {
  Endpoint& e = ep(id);
  e.connected = true;
  e.broken = false;
  e.remoteNode = remoteNode;
  e.remoteVi = remoteVi;
  e.rel = rel;
  e.mtu = std::min(mtu, profile_.mtu);
  e.txMsgSeq = 0;
  e.txFragSeq = 0;
  e.ackedFragSeq = 0;
  e.placedFragSeq = 0;
  e.rxNextFragSeq = 1;
  e.rxPlacedFragSeq = 0;
  e.rtoBackoff = 1;
  e.rtoStrikes = 0;
  sim::trace(tracer_, engine_.now(), sim::TraceCategory::Connection, node_,
             "configure vi=" + std::to_string(id) + " remote=" +
                 std::to_string(remoteNode) + "/" + std::to_string(remoteVi) +
                 " rel=" + toString(rel) + " epoch=" + std::to_string(epoch));
}

void NicDevice::teardownConnection(ViEndpointId id) {
  Endpoint& e = ep(id);
  // Trace before the flush so the Aborted completions it generates appear
  // after the teardown mark in the stream (invariant checkers rely on it).
  sim::trace(tracer_, engine_.now(), sim::TraceCategory::Connection, node_,
             "teardown vi=" + std::to_string(id));
  flushEndpoint(id, e, WorkStatus::Aborted);
  e.connected = false;
}

void NicDevice::flushEndpoint(ViEndpointId id, Endpoint& e,
                              WorkStatus status) {
  cancelRto(e);
  const sim::SimTime now = engine_.now();
  auto flushOne = [&](std::uint64_t cookie, bool isSend) {
    Completion c;
    c.cookie = cookie;
    c.isSend = isSend;
    c.status = status;
    postCompletion(id, std::move(c), now);
  };
  for (const auto& wr : e.sendQ) flushOne(wr.cookie, true);
  e.sendQ.clear();
  for (const auto& pc : e.awaitingAck) flushOne(pc.cookie, true);
  e.awaitingAck.clear();
  e.unacked.clear();
  for (const auto& wr : e.recvQ) flushOne(wr.cookie, false);
  e.recvQ.clear();
  for (const auto& [token, wr] : e.pendingReads) flushOne(wr.cookie, true);
  e.pendingReads.clear();
  if (e.reasm) e.reasm->discard = true;
  e.reasm.reset();
}

void NicDevice::breakConnection(ViEndpointId id, Endpoint& e, WorkStatus why) {
  if (e.broken) return;
  e.broken = true;
  ++stats_.protocolErrors;
  sim::trace(tracer_, engine_.now(), sim::TraceCategory::Connection, node_,
             "break vi=" + std::to_string(id) + " why=" + toString(why));
  flushEndpoint(id, e, why);
  if (handlers_.connectionError) {
    engine_.post(0, [this, id, why] { handlers_.connectionError(id, why); });
  }
}

// ---------------------------------------------------------------------------
// Send path
// ---------------------------------------------------------------------------

std::vector<std::byte> NicDevice::gather(const WorkRequest& wr) {
  std::vector<std::byte> msg(wr.totalBytes());
  std::uint64_t pos = 0;
  for (const auto& seg : wr.segments) {
    memory_.read(seg.addr, std::span<std::byte>(msg.data() + pos, seg.length));
    pos += seg.length;
  }
  return msg;
}

sim::Duration NicDevice::translationCost(const std::vector<SegmentView>& segs) {
  sim::Duration total = 0;
  for (const auto& seg : segs) total += translationCostRange(seg.addr, seg.length);
  return total;
}

sim::Duration NicDevice::translationCostRange(mem::VirtAddr va,
                                              std::uint64_t len) {
  const std::uint32_t pages = mem::pagesSpanned(va, len);
  switch (profile_.translation) {
    case TranslationMode::HostCopy:
      return 0;  // bounce buffers are pre-translated
    case TranslationMode::NicSram:
      return profile_.translationPerPage * pages;
    case TranslationMode::NicTlbHostTable: {
      sim::Duration total = 0;
      const std::uint64_t first = mem::pageOf(va);
      for (std::uint32_t i = 0; i < pages; ++i) {
        if (tlb_.lookup(first + i)) {
          total += profile_.tlbHitCost;
        } else {
          total += profile_.tlbMissCost;
          // Servicing the miss fetches the entry across the PCI bus, so it
          // also occupies the DMA engine — at low buffer reuse this is what
          // collapses streaming bandwidth, not just latency (Fig. 5).
          dma_.acquire(engine_.now(), profile_.tlbMissCost);
          tlb_.insert(first + i);
          sim::trace(tracer_, engine_.now(), sim::TraceCategory::Translation,
                     node_, "tlb miss page=" + std::to_string(first + i));
        }
      }
      return total;
    }
  }
  return 0;
}

void NicDevice::postSend(ViEndpointId id, WorkRequest&& wr) {
  Endpoint& e = ep(id);
  if (!e.connected || e.broken) {
    Completion c;
    c.cookie = wr.cookie;
    c.isSend = true;
    c.status = e.broken ? WorkStatus::ConnectionLost : WorkStatus::Aborted;
    postCompletion(id, std::move(c), engine_.now());
    return;
  }
  ++stats_.sendsPosted;
  sim::trace(tracer_, engine_.now(), sim::TraceCategory::Doorbell, node_,
             "post send vi=" + std::to_string(id) + " bytes=" +
                 std::to_string(wr.totalBytes()));
  e.sendQ.push_back(std::move(wr));
  tryProcessSendQueue(id);
}

void NicDevice::postRecv(ViEndpointId id, WorkRequest&& wr) {
  Endpoint& e = ep(id);
  ++stats_.recvsPosted;
  e.recvQ.push_back(std::move(wr));
}

void NicDevice::tryProcessSendQueue(ViEndpointId id) {
  Endpoint* e = epIfActive(id);
  if (e == nullptr || e->txBusy) return;
  while (!e->sendQ.empty() && !e->broken && e->connected) {
    const bool reliable = e->rel != Reliability::Unreliable;
    if (reliable && e->unacked.size() >= profile_.sendWindowFrags) {
      break;  // window closed; acks reopen the queue via drainAcked()
    }
    WorkRequest wr = std::move(e->sendQ.front());
    e->sendQ.pop_front();
    if (wr.op == WorkOp::RdmaRead) {
      const std::uint32_t token = e->nextReadToken++;
      Packet req;
      req.kind = fabric::PacketKind::RdmaReadReq;
      req.src = node_;
      req.dst = e->remoteNode;
      req.srcVi = id;
      req.dstVi = e->remoteVi;
      req.remoteAddr = wr.remoteAddr;
      req.remoteHandle = wr.remoteHandle;
      req.msgBytes = wr.totalBytes();
      req.conn.token = token;
      req.fragSeq = ++e->txFragSeq;
      req.fragCount = 1;
      req.postedAt = wr.postedAt;
      e->pendingReads.emplace(token, std::move(wr));
      const sim::SimTime tProc = nicProc_.acquire(
          engine_.now(), profile_.nicPerMsgCost + profile_.nicPerFragCost);
      if (reliable) e->unacked.push_back(req);
      engine_.postAt(tProc, [this, p = std::move(req)]() mutable {
        net_.send(std::move(p));
      });
      ++stats_.fragsTx;
      if (reliable) armRto(id, *e);
      continue;
    }
    if (profile_.hostInlineSendProcessing) {
      processSendWrHostInline(id, *e, std::move(wr));
      // advance() may have run events that mutated the endpoint table.
      e = epIfActive(id);
      if (e == nullptr) return;
    } else {
      processSendWr(id, *e, std::move(wr));
    }
  }
}

void NicDevice::processSendWr(ViEndpointId id, Endpoint& e, WorkRequest wr) {
  // Discovery latency: how the NIC learns about the rung doorbell.
  sim::Duration discovery = 0;
  switch (profile_.pickup) {
    case DescriptorPickup::Immediate:
      discovery = profile_.nicPickupLatency;
      break;
    case DescriptorPickup::FirmwarePoll:
      // One firmware scan over every active VI finds the doorbell; this is
      // the Fig. 6 mechanism (latency grows with the number of VIs).
      discovery = profile_.firmwareBasePoll +
                  profile_.firmwarePollPerVi *
                      static_cast<sim::Duration>(activeEndpoints_);
      break;
    case DescriptorPickup::HostInline:
      break;  // handled in processSendWrHostInline
  }
  if (spans_ != nullptr && discovery > 0) {
    // Doorbell discovery occupies the head of the first fragment's NIC
    // service; it is attributed here and excluded from that fragment's
    // NicTx span (the `doorbell` shift below), so the stages tile.
    spans_->emit(obs::Stage::Doorbell, node_, id, engine_.now(),
                 engine_.now() + discovery, wr.totalBytes());
  }
  const sim::Duration firstExtra =
      discovery + profile_.nicPerMsgCost +
      profile_.nicPerSegCost * static_cast<sim::Duration>(wr.segments.size()) +
      translationCost(wr.segments);
  launchFragments(id, e, wr, gather(wr), engine_.now(), firstExtra,
                  /*viaNicPipeline=*/true, discovery);
}

void NicDevice::processSendWrHostInline(ViEndpointId id, Endpoint& e,
                                        WorkRequest wr) {
  // M-VIA: the doorbell trap runs the whole send path in the kernel —
  // fragment, copy into pre-pinned kernel buffers, hand frames to a dumb
  // Ethernet NIC. The caller is blocked (and its CPU busy) throughout.
  e.txBusy = true;
  const std::vector<std::byte> msg = gather(wr);
  const std::uint64_t bytes = msg.size();
  const std::uint32_t frags = fragCountFor(bytes, e.mtu);
  const bool reliable = e.rel != Reliability::Unreliable;
  const std::uint64_t msgSeq = e.txMsgSeq++;
  std::uint64_t lastFragSeq = 0;

  for (std::uint32_t i = 0; i < frags; ++i) {
    const std::uint64_t off = std::uint64_t{i} * e.mtu;
    const std::uint64_t fragBytes = std::min<std::uint64_t>(e.mtu, bytes - off);
    const sim::SimTime tKernelStart = engine_.now();
    chargeCaller(profile_.hostPerFragCost + profile_.hostCopyTime(fragBytes));

    Packet p;
    p.kind = wr.op == WorkOp::RdmaWrite ? fabric::PacketKind::RdmaWrite
                                        : fabric::PacketKind::Data;
    p.src = node_;
    p.dst = e.remoteNode;
    p.srcVi = id;
    p.dstVi = e.remoteVi;
    p.msgSeq = msgSeq;
    p.fragIndex = i;
    p.fragCount = frags;
    p.msgBytes = bytes;
    p.offset = off;
    p.hasImmediate = wr.hasImmediate;
    p.immediate = wr.immediate;
    p.remoteAddr = wr.remoteAddr;
    p.remoteHandle = wr.remoteHandle;
    p.fragSeq = ++e.txFragSeq;
    p.postedAt = wr.postedAt;
    lastFragSeq = p.fragSeq;
    if (fragBytes > 0) {
      p.payload.assign(
          msg.begin() + static_cast<std::ptrdiff_t>(off),
          msg.begin() + static_cast<std::ptrdiff_t>(off + fragBytes));
    }
    const sim::SimTime tNic = nicProc_.acquire(
        engine_.now(),
        profile_.nicPerFragCost + (i == 0 ? profile_.nicPerMsgCost : 0));
    const sim::SimTime tDma = dma_.acquire(tNic, profile_.dmaTime(fragBytes));
    if (spans_ != nullptr) {
      // Host-inline tx: kernel copy + NIC handoff + DMA, one span per frag.
      spans_->emit(obs::Stage::NicTx, node_, id, tKernelStart, tDma, fragBytes);
    }
    if (reliable) {
      e.unacked.push_back(p);
      e.lastFrag = p;
    }
    engine_.postAt(tDma,
                   [this, p = std::move(p)]() mutable { net_.send(std::move(p)); });
    ++stats_.fragsTx;
    stats_.bytesTx += fragBytes;
  }
  e.txBusy = false;

  if (reliable) {
    e.awaitingAck.push_back(
        {lastFragSeq, wr.cookie, e.rel == Reliability::ReliableReception});
    armRto(id, e);
  } else {
    // Unreliable: the send is complete once the kernel owns the data.
    Completion c;
    c.cookie = wr.cookie;
    c.isSend = true;
    c.status = WorkStatus::Ok;
    postCompletion(id, std::move(c),
                   engine_.now() + profile_.completionWriteCost);
  }
}

void NicDevice::launchFragments(ViEndpointId id, Endpoint& e,
                                const WorkRequest& wr,
                                std::vector<std::byte> message,
                                sim::SimTime nicReady,
                                sim::Duration firstFragExtra,
                                bool /*viaNicPipeline*/,
                                sim::Duration doorbell) {
  const std::uint64_t bytes = message.size();
  const std::uint32_t frags = fragCountFor(bytes, e.mtu);
  const bool reliable = e.rel != Reliability::Unreliable;
  const std::uint64_t msgSeq = e.txMsgSeq++;
  sim::SimTime ready = nicReady;
  sim::SimTime lastDma = nicReady;
  std::uint64_t lastFragSeq = 0;

  for (std::uint32_t i = 0; i < frags; ++i) {
    const std::uint64_t off = std::uint64_t{i} * e.mtu;
    const std::uint64_t fragBytes = std::min<std::uint64_t>(e.mtu, bytes - off);
    const sim::Duration service =
        profile_.nicPerFragCost + (i == 0 ? firstFragExtra : 0);
    const sim::SimTime tProc = nicProc_.acquire(ready, service);
    ready = tProc;
    const sim::SimTime tDma = dma_.acquire(tProc, profile_.dmaTime(fragBytes));
    lastDma = tDma;
    if (spans_ != nullptr) {
      // The NIC service interval starts at tProc - service; the first
      // fragment's head is doorbell discovery, already attributed to the
      // Doorbell stage, so the NicTx span starts after it.
      const sim::SimTime segStart = tProc - service + (i == 0 ? doorbell : 0);
      spans_->emit(obs::Stage::NicTx, node_, id, segStart, tDma, fragBytes);
    }

    Packet p;
    p.kind = wr.op == WorkOp::RdmaWrite ? fabric::PacketKind::RdmaWrite
                                        : fabric::PacketKind::Data;
    p.src = node_;
    p.dst = e.remoteNode;
    p.srcVi = id;
    p.dstVi = e.remoteVi;
    p.msgSeq = msgSeq;
    p.fragIndex = i;
    p.fragCount = frags;
    p.msgBytes = bytes;
    p.offset = off;
    p.hasImmediate = wr.hasImmediate;
    p.immediate = wr.immediate;
    p.remoteAddr = wr.remoteAddr;
    p.remoteHandle = wr.remoteHandle;
    p.fragSeq = ++e.txFragSeq;
    p.postedAt = wr.postedAt;
    lastFragSeq = p.fragSeq;
    if (fragBytes > 0) {
      p.payload.assign(
          message.begin() + static_cast<std::ptrdiff_t>(off),
          message.begin() + static_cast<std::ptrdiff_t>(off + fragBytes));
    }
    if (reliable) {
      e.unacked.push_back(p);
      e.lastFrag = p;
    }
    sim::trace(tracer_, tDma, sim::TraceCategory::Wire, node_,
               "frag " + std::to_string(i + 1) + "/" + std::to_string(frags) +
                   " seq=" + std::to_string(p.fragSeq) + " vi=" +
                   std::to_string(id));
    engine_.postAt(tDma,
                   [this, p = std::move(p)]() mutable { net_.send(std::move(p)); });
    ++stats_.fragsTx;
    stats_.bytesTx += fragBytes;
  }

  if (wr.cookie == 0) return;  // internal message (no local completion)

  if (reliable) {
    e.awaitingAck.push_back(
        {lastFragSeq, wr.cookie, e.rel == Reliability::ReliableReception});
    armRto(id, e);
  } else {
    // Unreliable: complete when the last fragment leaves host memory.
    Completion c;
    c.cookie = wr.cookie;
    c.isSend = true;
    c.status = WorkStatus::Ok;
    postCompletion(id, std::move(c), lastDma + profile_.completionWriteCost);
  }
}

// ---------------------------------------------------------------------------
// Receive path
// ---------------------------------------------------------------------------

void NicDevice::handleRx(Packet&& p) {
  if (p.corrupted) {
    // CRC failure: the frame is discarded before any protocol processing,
    // exactly like a wire loss except that the receiving NIC observed it.
    // The reliability layer recovers through the normal RTO path.
    ++stats_.rxCorrupted;
    sim::trace(tracer_, engine_.now(), sim::TraceCategory::Rx, node_,
               "corrupt frame dropped seq=" + std::to_string(p.fragSeq) +
                   " vi=" + std::to_string(p.dstVi));
    return;
  }
  switch (p.kind) {
    case fabric::PacketKind::ConnRequest:
    case fabric::PacketKind::ConnAccept:
    case fabric::PacketKind::ConnReject:
    case fabric::PacketKind::Disconnect:
      if (handlers_.control) handlers_.control(std::move(p));
      return;
    case fabric::PacketKind::Ack:
      handleAck(p);
      return;
    case fabric::PacketKind::RdmaReadReq:
    case fabric::PacketKind::Data:
    case fabric::PacketKind::RdmaWrite:
    case fabric::PacketKind::RdmaReadResp:
      handleData(std::move(p));
      return;
  }
}

void NicDevice::handleData(Packet&& p) {
  Endpoint* eptr = epIfActive(p.dstVi);
  if (eptr == nullptr || !eptr->connected || eptr->broken) {
    ++stats_.rxDroppedBadEndpoint;
    return;
  }
  Endpoint& e = *eptr;
  const ViEndpointId id = p.dstVi;
  ++stats_.fragsRx;
  stats_.bytesRx += p.payload.size();
  sim::trace(tracer_, engine_.now(), sim::TraceCategory::Rx, node_,
             "frag seq=" + std::to_string(p.fragSeq) + " msg=" +
                 std::to_string(p.msgSeq) + " vi=" + std::to_string(id));

  if (e.rel != Reliability::Unreliable) {
    if (p.fragSeq < e.rxNextFragSeq) {
      sendAck(id, e);  // duplicate from a retransmission burst
      return;
    }
    if (p.fragSeq > e.rxNextFragSeq) {
      ++stats_.rxOutOfOrderDropped;  // gap: go-back-N, dup-ack
      sendAck(id, e);
      return;
    }
    ++e.rxNextFragSeq;
  }

  if (p.kind == fabric::PacketKind::RdmaReadReq) {
    handleRdmaRead(std::move(p));
    return;
  }
  acceptFragment(id, e, std::move(p));
}

void NicDevice::acceptFragment(ViEndpointId id, Endpoint& e, Packet&& p) {
  if (e.reasm && (p.msgSeq != e.reasm->msgSeq || p.kind != e.reasm->kind)) {
    // A new message started while the previous was incomplete: the old one
    // lost its tail (only possible on unreliable connections).
    Reassembly& old = *e.reasm;
    if (old.haveDescriptor && !old.discard &&
        old.kind == fabric::PacketKind::Data) {
      Completion c;
      c.cookie = old.desc.cookie;
      c.isSend = false;
      c.status = WorkStatus::PartialMessage;
      postCompletion(id, std::move(c), engine_.now());
    }
    old.discard = true;  // pending placement events become no-ops
    e.reasm.reset();
  }

  if (!e.reasm) {
    if (p.fragIndex != 0) {
      // Tail of a message whose head was lost; swallow silently.
      ++stats_.rxOutOfOrderDropped;
      return;
    }
    e.reasm = beginMessage(id, e, p);
    if (!e.reasm) return;  // connection broke (reliable NoDescriptor)
  } else if (p.fragIndex != e.reasm->fragsSeen) {
    // Mid-message loss on an unreliable connection: poison the assembly.
    e.reasm->discard = true;
    e.reasm->errorStatus = WorkStatus::PartialMessage;
  }

  std::shared_ptr<Reassembly> r = e.reasm;
  r->fragsSeen = std::max(r->fragsSeen, p.fragIndex + 1);
  r->lastFragSeq = p.fragSeq;
  const bool last = r->fragsSeen == r->fragCount;
  if (last) {
    e.reasm.reset();  // arrival side done; placements continue
    if (e.rel != Reliability::Unreliable && !r->discard) {
      // Receipt acknowledgment at NIC arrival: this is what completes
      // ReliableDelivery sends. ReliableReception additionally waits for
      // the placement ack issued in finishMessage().
      sendAck(id, e);
    }
  }

  if (r->discard) {
    if (last) finishMessage(id, std::move(r), engine_.now());
    return;
  }

  // Schedule placement through the RX pipeline.
  const bool first = p.fragIndex == 0;
  const std::uint64_t fragBytes = p.payload.size();
  const sim::SimTime rxStart = engine_.now();
  sim::SimTime placeTime;
  if (profile_.hostRxProcessing) {
    // M-VIA: DMA into the kernel ring, then ISR + copy on the host CPU.
    const sim::SimTime tDma =
        dma_.acquire(engine_.now(), profile_.dmaTime(fragBytes));
    const sim::Duration service = profile_.hostRxPerFragCost +
                                  profile_.hostCopyTime(fragBytes) +
                                  (first ? profile_.hostRxPerMsgCost : 0);
    placeTime = hostKernel_.acquire(tDma, service);
    r->hostCpu += service;
    if (spans_ != nullptr) {
      spans_->emit(obs::Stage::Rx, node_, id, rxStart, tDma, fragBytes);
      spans_->emit(obs::Stage::Reassembly, node_, id, tDma, placeTime,
                   fragBytes);
    }
  } else {
    sim::Duration firstExtra = 0;
    if (first) {
      if (p.kind == fabric::PacketKind::RdmaWrite) {
        // RDMA writes carry their target address: no descriptor matching.
        firstExtra += translationCostRange(p.remoteAddr, p.msgBytes);
      } else {
        firstExtra += profile_.rxMatchCost + translationCost(r->desc.segments);
      }
    }
    const sim::SimTime tProc =
        nicProc_.acquire(engine_.now(), profile_.nicPerFragCost + firstExtra);
    placeTime = dma_.acquire(tProc, profile_.dmaTime(fragBytes));
    if (spans_ != nullptr) {
      spans_->emit(obs::Stage::Rx, node_, id, rxStart, tProc, fragBytes);
      spans_->emit(obs::Stage::Reassembly, node_, id, tProc, placeTime,
                   fragBytes);
    }
  }

  engine_.postAt(placeTime,
                 [this, id, p = std::move(p), r, last, placeTime]() mutable {
                   if (r->discard) return;
                   placeFragment(id, *r, p);
                   if (last) finishMessage(id, r, placeTime);
                 });
}

std::shared_ptr<NicDevice::Reassembly> NicDevice::beginMessage(
    ViEndpointId id, Endpoint& e, const Packet& first) {
  auto r = std::make_shared<Reassembly>();
  r->kind = first.kind;
  r->msgSeq = first.msgSeq;
  r->fragCount = first.fragCount;
  r->msgBytes = first.msgBytes;
  r->hasImmediate = first.hasImmediate;
  r->immediate = first.immediate;
  r->postedAt = first.postedAt;

  switch (first.kind) {
    case fabric::PacketKind::Data: {
      if (e.recvQ.empty()) {
        ++stats_.rxDroppedNoDescriptor;
        r->discard = true;
        r->errorStatus = WorkStatus::NoDescriptor;
        if (e.rel != Reliability::Unreliable) {
          // Reliable connections treat a missing descriptor as fatal.
          sendAck(id, e, WorkStatus::NoDescriptor);
          breakConnection(id, e, WorkStatus::NoDescriptor);
          return nullptr;
        }
        break;
      }
      r->desc = std::move(e.recvQ.front());
      e.recvQ.pop_front();
      r->haveDescriptor = true;
      if (first.msgBytes > r->desc.totalBytes()) {
        r->discard = true;
        r->errorStatus = WorkStatus::LengthError;
      }
      break;
    }
    case fabric::PacketKind::RdmaWrite: {
      const mem::MemStatus ok = registry_.validate(
          first.remoteHandle, first.remoteAddr, first.msgBytes, e.ptag,
          mem::Access::RdmaWriteTarget);
      if (ok != mem::MemStatus::Ok) {
        r->discard = true;
        r->errorStatus = WorkStatus::ProtectionError;
      }
      break;
    }
    case fabric::PacketKind::RdmaReadResp: {
      auto it = e.pendingReads.find(first.conn.token);
      if (it == e.pendingReads.end()) {
        r->discard = true;
        r->errorStatus = WorkStatus::ProtectionError;
        break;
      }
      r->desc = std::move(it->second);
      e.pendingReads.erase(it);
      r->haveDescriptor = true;
      // End-to-end attribution for reads starts at the read request's
      // post, not the (internal) response work request's.
      r->postedAt = r->desc.postedAt;
      break;
    }
    default:
      r->discard = true;
      break;
  }
  return r;
}

void NicDevice::placeFragment(ViEndpointId id, Reassembly& r,
                              const Packet& p) {
  if (p.kind == fabric::PacketKind::RdmaWrite) {
    memory_.write(p.remoteAddr + p.offset, p.payload);
  } else {
    scatterWrite(memory_, r.desc.segments, p.offset, p.payload);
  }
  if (Endpoint* e = epIfActive(id)) {
    e->rxPlacedFragSeq = std::max(e->rxPlacedFragSeq, p.fragSeq);
  }
}

void NicDevice::finishMessage(ViEndpointId id,
                              std::shared_ptr<Reassembly> rp,
                              sim::SimTime at) {
  Endpoint* eptr = epIfActive(id);
  Reassembly& r = *rp;
  const bool isReadResp = r.kind == fabric::PacketKind::RdmaReadResp;
  if (eptr != nullptr && (!eptr->connected || eptr->broken) && !r.discard) {
    // The connection went away while this message's tail was still in the
    // placement pipeline (its Reassembly had already left the endpoint, so
    // the flush could not poison it). Completing Ok through a dead
    // connection would violate the no-completion-after-disconnect
    // invariant; surface the descriptor as Aborted like the flush did for
    // its queued siblings.
    r.discard = true;
    r.errorStatus = WorkStatus::Aborted;
  }

  // RDMA write with immediate data consumes a receive descriptor.
  bool consumeRecv = r.kind == fabric::PacketKind::Data;
  if (r.kind == fabric::PacketKind::RdmaWrite && r.hasImmediate &&
      eptr != nullptr) {
    if (!eptr->recvQ.empty()) {
      r.desc = std::move(eptr->recvQ.front());
      eptr->recvQ.pop_front();
      r.haveDescriptor = true;
      consumeRecv = true;
    } else if (!r.discard) {
      r.discard = true;
      r.errorStatus = WorkStatus::NoDescriptor;
      ++stats_.rxDroppedNoDescriptor;
    }
  }

  if (eptr != nullptr && !r.discard) {
    // Delivery mark: on a reliable connection msgSeq is consecutive per VI
    // (the invariant checker verifies exactly-once in-order delivery).
    sim::trace(tracer_, at, sim::TraceCategory::Rx, node_,
               "deliver vi=" + std::to_string(id) + " msg=" +
                   std::to_string(r.msgSeq) + " rel=" + toString(eptr->rel));
  }

  if ((consumeRecv && r.haveDescriptor) || isReadResp) {
    if (spans_ != nullptr) {
      spans_->emit(obs::Stage::Completion, node_, id, at,
                   at + profile_.completionWriteCost, r.msgBytes);
      if (!r.discard && r.postedAt > 0) {
        // Full message path: sender's descriptor post to receiver-side
        // completion writeback (the quantity stage spans should sum to).
        spans_->emit(obs::Stage::EndToEnd, node_, id, r.postedAt,
                     at + profile_.completionWriteCost, r.msgBytes);
      }
    }
    Completion c;
    c.cookie = r.desc.cookie;
    c.isSend = isReadResp;
    c.status = r.discard ? r.errorStatus : WorkStatus::Ok;
    c.bytes = r.msgBytes;
    c.hasImmediate = r.hasImmediate;
    c.immediate = r.immediate;
    c.hostCpuCost = r.hostCpu;
    postCompletion(id, std::move(c), at + profile_.completionWriteCost);
  }

  if (eptr == nullptr || !eptr->connected || eptr->broken ||
      eptr->rel == Reliability::Unreliable) {
    return;  // no reliability dialog on a dead or unreliable connection
  }
  if (!isReadResp) {
    const WorkStatus err = r.discard ? r.errorStatus : WorkStatus::Ok;
    if (err != WorkStatus::Ok && err != WorkStatus::Aborted) {
      sendAck(id, *eptr, err);
      breakConnection(id, *eptr, err);
    } else if (err == WorkStatus::Ok &&
               eptr->rel == Reliability::ReliableReception) {
      // Placement acknowledgment: completes ReliableReception sends.
      sendAck(id, *eptr);
    }
  } else {
    sendAck(id, *eptr);  // acknowledge the read-response stream
  }
}

void NicDevice::sendAck(ViEndpointId id, Endpoint& e, WorkStatus error) {
  Packet ack;
  ack.kind = fabric::PacketKind::Ack;
  ack.src = node_;
  ack.dst = e.remoteNode;
  ack.srcVi = id;
  ack.dstVi = e.remoteVi;
  ack.ackSeq = e.rxNextFragSeq - 1;
  ack.ackPlacedSeq = e.rxPlacedFragSeq;
  ack.rxError = static_cast<std::uint8_t>(error);
  const sim::SimTime t =
      nicProc_.acquire(engine_.now(), profile_.ackProcessingCost);
  engine_.postAt(
      t, [this, p = std::move(ack)]() mutable { net_.send(std::move(p)); });
  ++stats_.acksTx;
}

void NicDevice::handleAck(const Packet& p) {
  Endpoint* eptr = epIfActive(p.dstVi);
  if (eptr == nullptr || !eptr->connected) {
    ++stats_.rxDroppedBadEndpoint;
    return;
  }
  Endpoint& e = *eptr;
  ++stats_.acksRx;
  if (p.rxError != 0) {
    breakConnection(p.dstVi, e, static_cast<WorkStatus>(p.rxError));
    return;
  }
  const bool progressed =
      p.ackSeq > e.ackedFragSeq || p.ackPlacedSeq > e.placedFragSeq;
  e.ackedFragSeq = std::max(e.ackedFragSeq, p.ackSeq);
  e.placedFragSeq = std::max(e.placedFragSeq, p.ackPlacedSeq);
  if (progressed) {
    e.rtoBackoff = 1;
    e.rtoStrikes = 0;
    sim::trace(tracer_, engine_.now(), sim::TraceCategory::Reliability, node_,
               "ack progress vi=" + std::to_string(p.dstVi) + " acked=" +
                   std::to_string(e.ackedFragSeq) + " placed=" +
                   std::to_string(e.placedFragSeq));
    drainAcked(p.dstVi, e);
  }
}

void NicDevice::drainAcked(ViEndpointId id, Endpoint& e) {
  while (!e.unacked.empty() && e.unacked.front().fragSeq <= e.ackedFragSeq) {
    e.unacked.pop_front();
  }
  while (!e.awaitingAck.empty()) {
    const PendingSendCompletion& pc = e.awaitingAck.front();
    const std::uint64_t reached =
        pc.needsPlacedAck ? e.placedFragSeq : e.ackedFragSeq;
    if (reached < pc.lastFragSeq) break;
    Completion c;
    c.cookie = pc.cookie;
    c.isSend = true;
    c.status = WorkStatus::Ok;
    postCompletion(id, std::move(c),
                   engine_.now() + profile_.ackProcessingCost +
                       profile_.completionWriteCost);
    e.awaitingAck.pop_front();
  }
  if (e.unacked.empty() && e.awaitingAck.empty()) {
    cancelRto(e);
  } else {
    armRto(id, e);
  }
  tryProcessSendQueue(id);
}

// ---------------------------------------------------------------------------
// RDMA read target side
// ---------------------------------------------------------------------------

void NicDevice::handleRdmaRead(Packet&& p) {
  Endpoint* eptr = epIfActive(p.dstVi);
  if (eptr == nullptr) return;
  Endpoint& e = *eptr;
  if (e.rel != Reliability::Unreliable) {
    sendAck(p.dstVi, e);  // acknowledge receipt of the request itself
  }
  const mem::MemStatus ok =
      registry_.validate(p.remoteHandle, p.remoteAddr, p.msgBytes, e.ptag,
                         mem::Access::RdmaReadSource);
  if (ok != mem::MemStatus::Ok) {
    sendAck(p.dstVi, e, WorkStatus::ProtectionError);
    breakConnection(p.dstVi, e, WorkStatus::ProtectionError);
    return;
  }
  // Stream the response through the send pipeline. cookie==0 marks it as
  // internal: launchFragments generates no local completion.
  std::vector<std::byte> data(p.msgBytes);
  memory_.read(p.remoteAddr, data);
  WorkRequest resp;
  resp.cookie = 0;

  const std::uint64_t bytes = data.size();
  const std::uint32_t frags = fragCountFor(bytes, e.mtu);
  const bool reliable = e.rel != Reliability::Unreliable;
  const std::uint64_t msgSeq = e.txMsgSeq++;
  const sim::Duration firstExtra =
      profile_.nicPerMsgCost + translationCostRange(p.remoteAddr, bytes);
  sim::SimTime ready = engine_.now();
  for (std::uint32_t i = 0; i < frags; ++i) {
    const std::uint64_t off = std::uint64_t{i} * e.mtu;
    const std::uint64_t fragBytes = std::min<std::uint64_t>(e.mtu, bytes - off);
    const sim::SimTime tProc = nicProc_.acquire(
        ready, profile_.nicPerFragCost + (i == 0 ? firstExtra : 0));
    ready = tProc;
    const sim::SimTime tDma = dma_.acquire(tProc, profile_.dmaTime(fragBytes));
    Packet out;
    out.kind = fabric::PacketKind::RdmaReadResp;
    out.src = node_;
    out.dst = e.remoteNode;
    out.srcVi = p.dstVi;
    out.dstVi = e.remoteVi;
    out.msgSeq = msgSeq;
    out.fragIndex = i;
    out.fragCount = frags;
    out.msgBytes = bytes;
    out.offset = off;
    out.conn.token = p.conn.token;
    out.fragSeq = ++e.txFragSeq;
    if (fragBytes > 0) {
      out.payload.assign(
          data.begin() + static_cast<std::ptrdiff_t>(off),
          data.begin() + static_cast<std::ptrdiff_t>(off + fragBytes));
    }
    if (reliable) {
      e.unacked.push_back(out);
      e.lastFrag = out;
    }
    engine_.postAt(tDma, [this, p = std::move(out)]() mutable {
      net_.send(std::move(p));
    });
    ++stats_.fragsTx;
    stats_.bytesTx += fragBytes;
  }
  if (reliable) armRto(p.dstVi, e);
}

// ---------------------------------------------------------------------------
// Reliability timers
// ---------------------------------------------------------------------------

void NicDevice::armRto(ViEndpointId id, Endpoint& e) {
  cancelRto(e);
  const sim::Duration delay = profile_.rtoBase * e.rtoBackoff;
  e.rtoEvent = engine_.post(delay, [this, id] { onRto(id); });
}

void NicDevice::cancelRto(Endpoint& e) {
  if (e.rtoEvent != 0) {
    engine_.cancel(e.rtoEvent);
    e.rtoEvent = 0;
  }
}

void NicDevice::onRto(ViEndpointId id) {
  Endpoint* eptr = epIfActive(id);
  if (eptr == nullptr) return;
  Endpoint& e = *eptr;
  e.rtoEvent = 0;
  if (e.broken) return;
  const bool hasWork = !e.unacked.empty() || !e.awaitingAck.empty();
  if (hasWork && ++e.rtoStrikes > profile_.rtoRetryBudget) {
    // Retry budget exhausted: the peer has been silent through every
    // backoff level. Declare the connection dead instead of retrying
    // forever — outstanding work completes with ConnectionLost and the
    // provider's error callback fires, so callers never hang on a
    // partition that outlasts the budget.
    sim::trace(tracer_, engine_.now(), sim::TraceCategory::Reliability, node_,
               "retry budget exhausted vi=" + std::to_string(id) +
                   " strikes=" + std::to_string(e.rtoStrikes - 1));
    breakConnection(id, e, WorkStatus::ConnectionLost);
    return;
  }
  if (e.unacked.empty()) {
    if (!e.awaitingAck.empty() && e.lastFrag) {
      // Everything was receipt-acked but a placement ack went missing:
      // probe by resending the last fragment; the duplicate triggers a
      // dup-ack carrying the receiver's current placement sequence.
      sim::trace(tracer_, engine_.now(), sim::TraceCategory::Reliability,
                 node_, "RTO vi=" + std::to_string(id) + " probe retransmit");
      const sim::SimTime tDma = dma_.acquire(
          engine_.now(), profile_.dmaTime(e.lastFrag->payload.size()));
      engine_.postAt(tDma, [this, p = Packet(*e.lastFrag)]() mutable {
        net_.send(std::move(p));
      });
      ++stats_.retransmits;
      armRto(id, e);
    }
    return;
  }
  // Go-back-N: replay the whole unacked window through the tx pipeline.
  sim::trace(tracer_, engine_.now(), sim::TraceCategory::Reliability, node_,
             "RTO vi=" + std::to_string(id) + " retransmit " +
                 std::to_string(e.unacked.size()) + " frags");
  sim::SimTime ready = engine_.now();
  for (const Packet& stored : e.unacked) {
    const sim::SimTime tProc = nicProc_.acquire(ready, profile_.nicPerFragCost);
    ready = tProc;
    const sim::SimTime tDma =
        dma_.acquire(tProc, profile_.dmaTime(stored.payload.size()));
    engine_.postAt(tDma, [this, p = Packet(stored)]() mutable {
      net_.send(std::move(p));
    });
    ++stats_.retransmits;
  }
  e.rtoBackoff = std::min<std::uint32_t>(e.rtoBackoff * 2, profile_.rtoBackoffCap);
  armRto(id, e);
}

// ---------------------------------------------------------------------------
// Control path
// ---------------------------------------------------------------------------

void NicDevice::sendControl(Packet&& p) {
  p.src = node_;
  net_.send(std::move(p));
}

}  // namespace vibe::nic
