// NicProfile: the complete cost/feature model of one VIA implementation.
//
// Every mechanism the VIBe suite probes is an explicit knob here. The three
// shipped profiles (profiles.hpp) model the paper's systems:
//   - M-VIA 1.0 on Gigabit Ethernet  (host-kernel emulation, copies)
//   - Berkeley VIA 2.2 on Myrinet    (NIC firmware, host-resident tables)
//   - cLAN VIA 1.3 on Giganet        (hardware VIA)
// Costs are virtual-time durations; bandwidths in MB/s (10^6 bytes/s).
#pragma once

#include <cstdint>
#include <string>

#include "simcore/time.hpp"

namespace vibe::nic {

/// How posted send descriptors reach the NIC's processing engine.
enum class DescriptorPickup : std::uint8_t {
  Immediate,      // hardware doorbell (cLAN): fixed pickup latency
  FirmwarePoll,   // firmware scans per-VI doorbells (BVIA): latency grows
                  // with the number of active VIs
  HostInline,     // the doorbell is a kernel trap that performs the send
                  // processing on the host CPU (M-VIA)
};

/// Where virtual-to-physical translation happens (CANPC'00 taxonomy).
enum class TranslationMode : std::uint8_t {
  NicSram,          // tables in NIC memory, NIC translates (cLAN)
  NicTlbHostTable,  // tables in host memory, NIC translates through a
                    // software-managed translation cache (BVIA)
  HostCopy,         // kernel copies through pre-pinned bounce buffers; user
                    // page translation is off the fast path (M-VIA)
};

struct NicProfile {
  std::string name = "generic";

  // --- host-side library costs (charged to the calling process) ---
  sim::Duration viplCallOverhead = sim::usec(0.2);  // user-library entry
  sim::Duration postSendBase = sim::usec(0.3);      // build + queue descriptor
  sim::Duration postSendPerSeg = sim::usec(0.05);
  sim::Duration postRecvBase = sim::usec(0.25);
  sim::Duration postRecvPerSeg = sim::usec(0.05);
  sim::Duration doorbellCost = sim::usec(0.2);      // MMIO store / kernel trap
  sim::Duration pollCost = sim::usec(0.1);          // one Done() check
  sim::Duration blockingWakeupCost = sim::usec(4);  // schedule-in after wait

  // --- host kernel data path (M-VIA style; 0/false elsewhere) ---
  bool hostInlineSendProcessing = false;  // send processed in doorbell trap
  double hostCopyMBps = 0.0;              // user<->kernel copy bandwidth
  sim::Duration hostPerFragCost = 0;      // kernel per-fragment overhead (tx)
  bool hostRxProcessing = false;          // RX needs kernel ISR + copy
  sim::Duration hostRxPerFragCost = 0;    // ISR work per fragment
  sim::Duration hostRxPerMsgCost = 0;     // per-message kernel RX overhead

  // --- NIC processing engine ---
  DescriptorPickup pickup = DescriptorPickup::Immediate;
  sim::Duration nicPickupLatency = sim::usec(1);  // Immediate mode
  sim::Duration firmwareBasePoll = sim::usec(1);  // FirmwarePoll loop overhead
  sim::Duration firmwarePollPerVi = sim::usec(1); // ... per active VI scanned
  sim::Duration nicPerMsgCost = sim::usec(1);     // per message on the NIC
  sim::Duration nicPerFragCost = sim::usec(0.5);  // per fragment on the NIC
  sim::Duration nicPerSegCost = sim::usec(0.3);   // per gather/scatter segment
  sim::Duration rxMatchCost = sim::usec(0.5);     // match msg to posted recv
  sim::Duration completionWriteCost = sim::usec(0.5);  // status writeback
  sim::Duration interruptCost = sim::usec(7);     // IRQ + ISR + wakeup path

  // --- address translation ---
  TranslationMode translation = TranslationMode::NicSram;
  /// Host-side translation performed by the library at post time (the
  /// "host translates" quadrant of the CANPC'00 design-choice taxonomy);
  /// charged per page of every posted segment. 0 for NIC-side schemes.
  sim::Duration hostTranslationPerPage = 0;
  sim::Duration translationPerPage = sim::usec(0.05);  // NicSram table walk
  sim::Duration tlbHitCost = sim::usec(0.05);
  sim::Duration tlbMissCost = sim::usec(2.0);  // PTE fetch across PCI
  std::size_t tlbEntries = 64;

  // --- DMA engine (PCI bus, shared between directions) ---
  double dmaMBps = 110.0;                    // 32-bit/33 MHz PCI realistic
  sim::Duration dmaStartupCost = sim::usec(0.5);

  // --- wire ---
  std::uint32_t mtu = 4096;           // fragment payload limit
  std::uint32_t maxTransferSize = 32u << 20;  // VI MaxTransferSize attribute
  double linkMBps = 125.0;
  sim::Duration linkPropagation = sim::usec(0.5);
  std::uint32_t linkHeaderBytes = 32;
  sim::Duration switchLatency = sim::usec(0.5);

  // --- reliability engine ---
  sim::Duration ackProcessingCost = sim::usec(0.5);
  sim::Duration rtoBase = sim::msec(1);  // go-back-N retransmit timeout
  std::uint32_t sendWindowFrags = 64;    // in-flight fragments (RD/RR)
  /// Consecutive no-progress retransmission timeouts tolerated before the
  /// connection is declared dead and torn down with ConnectionLost. With
  /// rtoBase=1ms, rtoBackoffCap=8 and the 2x backoff this is ~119ms of
  /// total silence — far beyond anything Bernoulli loss produces, so only
  /// a genuine partition (or an injected one) trips it.
  std::uint32_t rtoRetryBudget = 16;
  /// Ceiling on the exponential RTO backoff multiplier: successive
  /// no-progress timeouts double the multiplier (1, 2, 4, ...) up to this
  /// cap, so worst-case silence before ConnectionLost is roughly
  /// rtoBase * (sum of the doubling ramp + (budget - ramp) * cap).
  /// Recovery benches sweep this; must be >= 1 (validateProfile).
  std::uint32_t rtoBackoffCap = 8;
  bool supportsRdmaWrite = true;
  bool supportsRdmaRead = false;

  // --- non-data-transfer operation costs (Table 1) ---
  sim::Duration createViCost = sim::usec(10);
  sim::Duration destroyViCost = sim::usec(0.2);
  sim::Duration connectLocalCost = sim::usec(100);   // requester-side setup
  sim::Duration connectRemoteCost = sim::usec(100);  // acceptor-side setup
  sim::Duration teardownCost = sim::usec(5);
  sim::Duration createCqCost = sim::usec(20);
  sim::Duration destroyCqCost = sim::usec(10);
  sim::Duration cqCheckCost = sim::usec(0.1);   // one CQDone() check
  sim::Duration cqPostCost = 0;                 // extra latency adding to a CQ

  // --- memory registration cost model (Fig. 1 / Fig. 2) ---
  sim::Duration memRegBase = sim::usec(5);
  sim::Duration memRegPerPage = sim::usec(0.3);
  sim::Duration memDeregBase = sim::usec(2);
  sim::Duration memDeregPerPage = sim::usec(0.05);

  /// Kernel copy time for `bytes` at hostCopyMBps (0 when no copy path).
  sim::Duration hostCopyTime(std::uint64_t bytes) const {
    if (hostCopyMBps <= 0.0) return 0;
    return sim::transferTime(bytes, hostCopyMBps);
  }
  sim::Duration dmaTime(std::uint64_t bytes) const {
    return dmaStartupCost + sim::transferTime(bytes, dmaMBps);
  }
};

}  // namespace vibe::nic
