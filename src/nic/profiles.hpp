// Factory functions for the three VIA implementation models evaluated in
// the paper. Constants are calibrated so the VIBe results land near the
// paper's Table 1 / Figs. 1-7 anchors; the curve *shapes* come from the
// mechanisms in NicDevice, not from these numbers alone.
#pragma once

#include "nic/profile.hpp"

namespace vibe::nic {

/// M-VIA 1.0 on Packet Engines GNIC-II Gigabit Ethernet: VIA emulated in
/// the Linux 2.2 kernel. Doorbell is a trap; send processing and a
/// user->kernel copy run inline on the host CPU; RX takes an interrupt per
/// frame plus a kernel->user copy. Insensitive to buffer reuse (bounce
/// buffers) and to the number of VIs (no firmware to scan them).
NicProfile mviaProfile();

/// Berkeley VIA 2.2 on Myrinet (LANai 4.3, 37 MHz): VIA in NIC firmware.
/// The firmware polls every active VI's doorbell (latency grows with VI
/// count), translates through a NIC-resident software TLB backed by host
/// memory tables (latency grows as buffer reuse drops), and is generally
/// slow per message — but moves large messages fast (no copies, fast link).
NicProfile bviaProfile();

/// cLAN VIA 1.3 on Giganet cLAN1000: native hardware VIA. Hardware
/// doorbells, translation tables in NIC SRAM, lowest latency; connection
/// setup and teardown are comparatively expensive control operations.
NicProfile clanProfile();

/// FirmVIA on IBM SP Switch (paper ref [8], same research group) — an
/// *extension* profile beyond the paper's three testbeds: VIA in adapter
/// firmware like BVIA, but with a faster microprocessor, adapter-resident
/// translation tables (reuse-insensitive), and SP switch links. Calibrated
/// to the published FirmVIA anchors (~18 us short-message latency,
/// ~101 MB/s peak bandwidth).
NicProfile firmviaProfile();

/// A forward-looking InfiniBand-class profile — the paper's §5 closes
/// with "we also plan to develop a similar micro-benchmark suite for the
/// upcoming InfiniBand Architecture". IBA inherits VIA's verbs (QPs ~ VIs,
/// CQs, memory registration, send/recv + RDMA read AND write), so the
/// whole VIBe suite runs unchanged against this model: a first-generation
/// HCA on PCI-X with a 4X (8 Gb/s) link, hardware doorbells, on-adapter
/// translation, and both RDMA directions.
NicProfile ibaProfile();

/// Looks a profile up by short name
/// ("mvia", "bvia", "clan", "firmvia", "iba"). The result is validated.
NicProfile profileByName(const std::string& name);

/// Sanity-checks a profile's reliability/link knobs (throws
/// std::invalid_argument). Call after hand-editing a profile, e.g. before
/// sweeping rtoBackoffCap in a recovery bench.
void validateProfile(const NicProfile& p);

}  // namespace vibe::nic
