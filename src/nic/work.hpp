// Work requests and completions exchanged between the VIPL provider layer
// and the NIC device models. These mirror what a VIA descriptor describes,
// stripped of its in-memory layout: the NIC doesn't care where the
// descriptor lives, only what data movement it requests.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "mem/memory_registry.hpp"
#include "simcore/time.hpp"

namespace vibe::nic {

/// VIA reliability levels (spec section 2).
enum class Reliability : std::uint8_t {
  Unreliable = 0,
  ReliableDelivery = 1,
  ReliableReception = 2,
};

const char* toString(Reliability r);

enum class WorkOp : std::uint8_t { Send, RdmaWrite, RdmaRead };

/// One data segment of a descriptor: a range in registered memory.
struct SegmentView {
  mem::VirtAddr addr = 0;
  mem::MemHandle handle = 0;
  std::uint32_t length = 0;
};

/// Flattened descriptor handed to the NIC.
struct WorkRequest {
  WorkOp op = WorkOp::Send;
  std::vector<SegmentView> segments;  // gather (send/RDMA-src) or scatter (recv)
  bool hasImmediate = false;
  std::uint32_t immediate = 0;
  // RDMA addressing (address segment of the descriptor).
  mem::VirtAddr remoteAddr = 0;
  mem::MemHandle remoteHandle = 0;
  /// Provider cookie identifying the originating VIPL descriptor.
  std::uint64_t cookie = 0;
  /// Virtual time the application posted the descriptor (observability
  /// stamp: carried through fragments to the receiver so end-to-end spans
  /// can be attributed; has no effect on timing).
  sim::SimTime postedAt = 0;

  std::uint64_t totalBytes() const {
    std::uint64_t total = 0;
    for (const auto& s : segments) total += s.length;
    return total;
  }
};

/// Final status of a work request (maps onto VIP_STATUS_* in vipl).
enum class WorkStatus : std::uint8_t {
  Ok,
  LengthError,      // arriving message larger than the posted recv buffers
  ProtectionError,  // memory validation failed at the remote side
  PartialMessage,   // unreliable message lost fragments; descriptor flushed
  ConnectionLost,   // reliability error or peer reset mid-operation
  Aborted,          // flushed by disconnect / VI destruction
  NoDescriptor,     // reliable message arrived with no posted receive
};

const char* toString(WorkStatus s);

struct Completion {
  std::uint64_t cookie = 0;
  bool isSend = true;  // send/RDMA queue vs receive queue
  WorkStatus status = WorkStatus::Ok;
  /// For receives: total bytes of the arrived message.
  std::uint64_t bytes = 0;
  bool hasImmediate = false;
  std::uint32_t immediate = 0;
  /// Host-CPU time the kernel spent on this completion (M-VIA RX path);
  /// charged to the reaping process by the provider on blocking reaps.
  std::int64_t hostCpuCost = 0;
};

}  // namespace vibe::nic
