// NicDevice: the common VIA NIC datapath, specialized by NicProfile into
// the three implementation models (M-VIA / Berkeley VIA / cLAN).
//
// The datapath is event-driven over the shared engine. FIFO Resources model
// the NIC processing engine, the PCI DMA bus, and (inside fabric) the wire,
// so fragment streams pipeline exactly as on real hardware: latency is the
// sum of stage traversals, streaming bandwidth the bottleneck stage rate.
//
// Send path    : post -> doorbell -> pickup (immediate / firmware scan /
//                host-kernel inline) -> translate -> fragment -> DMA -> wire
// Receive path : wire -> NIC processing -> descriptor match -> translate ->
//                DMA -> completion write (-> interrupt if a waiter sleeps)
// Reliability  : per-VI go-back-N at fragment granularity with cumulative
//                ACKs; ReliableReception acks only after memory placement.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "fabric/network.hpp"
#include "fabric/packet.hpp"
#include "mem/host_memory.hpp"
#include "mem/memory_registry.hpp"
#include "mem/tlb.hpp"
#include "nic/profile.hpp"
#include "nic/work.hpp"
#include "obs/span.hpp"
#include "simcore/engine.hpp"
#include "simcore/process.hpp"
#include "simcore/resource.hpp"
#include "simcore/trace.hpp"

namespace vibe::nic {

using fabric::NodeId;
using fabric::Packet;
using fabric::ViEndpointId;

struct NicStats {
  std::uint64_t sendsPosted = 0;
  std::uint64_t recvsPosted = 0;
  std::uint64_t fragsTx = 0;
  std::uint64_t fragsRx = 0;
  std::uint64_t bytesTx = 0;
  std::uint64_t bytesRx = 0;
  std::uint64_t acksTx = 0;
  std::uint64_t acksRx = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t rxCorrupted = 0;  // frames failing the CRC check, dropped
  std::uint64_t rxDroppedNoDescriptor = 0;
  std::uint64_t rxDroppedBadEndpoint = 0;
  std::uint64_t rxOutOfOrderDropped = 0;
  std::uint64_t protocolErrors = 0;
};

class NicDevice {
 public:
  struct Handlers {
    /// A work request finished; called in engine-event context.
    std::function<void(ViEndpointId, Completion&&)> completion;
    /// Connection-management packet arrived for the provider to interpret.
    std::function<void(Packet&&)> control;
    /// The connection on this endpoint entered an error state.
    std::function<void(ViEndpointId, WorkStatus)> connectionError;
  };

  NicDevice(sim::Engine& engine, fabric::Network& net, NodeId node,
            const NicProfile& profile, mem::MemoryRegistry& registry,
            mem::HostMemory& memory);

  NicDevice(const NicDevice&) = delete;
  NicDevice& operator=(const NicDevice&) = delete;

  void setHandlers(Handlers h) { handlers_ = std::move(h); }

  /// Attaches a tracer; the datapath emits Doorbell/Wire/Rx/Completion/
  /// Reliability/Translation records while one is attached.
  void setTracer(sim::Tracer* tracer) { tracer_ = tracer; }
  /// The attached tracer (nullptr when none); layers built on top of the
  /// provider emit into the same stream so one digest covers the whole run.
  sim::Tracer* tracer() const { return tracer_; }

  /// Attaches a span profiler: the datapath emits stage-attributed spans
  /// (Doorbell, NicTx, Rx, Reassembly, Completion, EndToEnd) while one is
  /// attached. nullptr detaches; emission is fully skipped when detached.
  void setSpanProfiler(obs::SpanProfiler* spans) { spans_ = spans; }

  NodeId nodeId() const { return node_; }
  const NicProfile& profile() const { return profile_; }
  mem::MemoryRegistry& registry() { return registry_; }
  mem::HostMemory& memory() { return memory_; }
  mem::Tlb& tlb() { return tlb_; }
  const NicStats& stats() const { return stats_; }

  // --- endpoint lifecycle ---
  ViEndpointId createEndpoint(mem::PtagId ptag);
  void destroyEndpoint(ViEndpointId id);
  /// VIs the firmware must scan (drives FirmwarePoll discovery cost).
  std::size_t activeEndpoints() const { return activeEndpoints_; }

  /// Send-side backlog across all endpoints: descriptors awaiting pickup
  /// or window space plus unacked frames in the retransmit buffers. A
  /// time-series sampler probes this as the NIC's doorbell/queue depth.
  std::size_t txBacklog() const;
  /// Receive descriptors posted and not yet consumed, across endpoints.
  std::size_t rxBacklog() const;

  /// `epoch` is the connection incarnation negotiated in the connect
  /// handshake; it only tags the trace stream (cross-epoch invariant
  /// checks), the data path never consults it.
  void configureConnection(ViEndpointId id, NodeId remoteNode,
                           ViEndpointId remoteVi, Reliability rel,
                           std::uint32_t mtu, std::uint32_t epoch = 0);
  /// Flushes outstanding work with Aborted and forgets the connection.
  void teardownConnection(ViEndpointId id);

  // --- data path (called from a Process context by the provider) ---
  void postSend(ViEndpointId id, WorkRequest&& wr);
  void postRecv(ViEndpointId id, WorkRequest&& wr);

  // --- control path ---
  /// Ships a connection-management packet (small fixed wire cost).
  void sendControl(Packet&& p);

 private:
  struct PendingSendCompletion {
    std::uint64_t lastFragSeq = 0;  // completes when acked past this
    std::uint64_t cookie = 0;
    bool needsPlacedAck = false;  // ReliableReception
  };

  struct Reassembly {
    fabric::PacketKind kind = fabric::PacketKind::Data;
    std::uint64_t msgSeq = 0;
    std::uint32_t fragsSeen = 0;
    std::uint32_t fragCount = 0;
    std::uint64_t msgBytes = 0;
    bool discard = false;       // error or no descriptor: swallow fragments
    WorkStatus errorStatus = WorkStatus::Ok;
    bool haveDescriptor = false;
    WorkRequest desc;           // the matched receive descriptor
    bool hasImmediate = false;
    std::uint32_t immediate = 0;
    sim::Duration hostCpu = 0;  // accumulated kernel RX time (M-VIA)
    std::uint64_t lastFragSeq = 0;
    sim::SimTime postedAt = 0;  // sender-side post time (observability)
  };

  struct Endpoint {
    bool active = false;
    bool connected = false;
    bool broken = false;
    bool txBusy = false;  // host-inline send in progress (guards reentry)
    NodeId remoteNode = 0;
    ViEndpointId remoteVi = 0;
    Reliability rel = Reliability::Unreliable;
    std::uint32_t mtu = 0;
    mem::PtagId ptag = 0;

    std::deque<WorkRequest> sendQ;  // awaiting pickup / window space
    std::deque<WorkRequest> recvQ;

    std::uint64_t txMsgSeq = 0;
    std::uint64_t txFragSeq = 0;  // next fragment sequence to assign

    // Reliability sender state (go-back-N).
    std::optional<Packet> lastFrag;      // probe when only acks are missing
    std::deque<Packet> unacked;          // retransmit buffer, seq order
    std::uint64_t ackedFragSeq = 0;      // cumulative receipt ack
    std::uint64_t placedFragSeq = 0;     // cumulative placement ack
    std::deque<PendingSendCompletion> awaitingAck;
    sim::EventId rtoEvent = 0;
    std::uint32_t rtoBackoff = 1;
    std::uint32_t rtoStrikes = 0;  // consecutive RTOs without ack progress

    // Receiver state.
    std::uint64_t rxNextFragSeq = 1;   // next in-order fragment expected
    std::uint64_t rxPlacedFragSeq = 0; // highest fragment placed in memory
    // Arrival-side assembly of the message currently streaming in. The
    // placement pipeline may still be draining older messages; each one
    // owns its Reassembly via shared_ptr captured in placement events.
    std::shared_ptr<Reassembly> reasm;

    // RDMA reads this endpoint initiated, keyed by request token.
    std::unordered_map<std::uint32_t, WorkRequest> pendingReads;
    std::uint32_t nextReadToken = 1;
  };

  Endpoint& ep(ViEndpointId id);
  Endpoint* epIfActive(ViEndpointId id);

  /// Charges the calling process `d` of busy host time (VIPL-context ops).
  void chargeCaller(sim::Duration d);

  // Send machinery.
  void tryProcessSendQueue(ViEndpointId id);
  void processSendWr(ViEndpointId id, Endpoint& e, WorkRequest wr);
  void processSendWrHostInline(ViEndpointId id, Endpoint& e, WorkRequest wr);
  sim::Duration translationCost(const std::vector<SegmentView>& segs);
  sim::Duration translationCostRange(mem::VirtAddr va, std::uint64_t len);
  std::vector<std::byte> gather(const WorkRequest& wr);
  void launchFragments(ViEndpointId id, Endpoint& e, const WorkRequest& wr,
                       std::vector<std::byte> message, sim::SimTime nicReady,
                       sim::Duration firstFragExtra, bool viaNicPipeline,
                       sim::Duration doorbell = 0);

  // Receive machinery.
  void handleRx(Packet&& p);
  void handleData(Packet&& p);
  void handleAck(const Packet& p);
  void handleRdmaRead(Packet&& p);
  void acceptFragment(ViEndpointId id, Endpoint& e, Packet&& p);
  std::shared_ptr<Reassembly> beginMessage(ViEndpointId id, Endpoint& e,
                                           const Packet& first);
  void placeFragment(ViEndpointId id, Reassembly& r, const Packet& p);
  void finishMessage(ViEndpointId id, std::shared_ptr<Reassembly> r,
                     sim::SimTime at);
  void postCompletion(ViEndpointId id, Completion c, sim::SimTime at);
  void sendAck(ViEndpointId id, Endpoint& e, WorkStatus error = WorkStatus::Ok);

  // Reliability.
  void armRto(ViEndpointId id, Endpoint& e);
  void cancelRto(Endpoint& e);
  void onRto(ViEndpointId id);
  void drainAcked(ViEndpointId id, Endpoint& e);
  void breakConnection(ViEndpointId id, Endpoint& e, WorkStatus why);
  void flushEndpoint(ViEndpointId id, Endpoint& e, WorkStatus status);

  sim::Engine& engine_;
  fabric::Network& net_;
  NodeId node_;
  NicProfile profile_;
  mem::MemoryRegistry& registry_;
  mem::HostMemory& memory_;
  mem::Tlb tlb_;

  sim::Resource nicProc_;    // NIC processing engine / firmware
  sim::Resource dma_;        // PCI bus (shared by both directions)
  sim::Resource hostKernel_; // kernel RX path (M-VIA ISR + copies)

  Handlers handlers_;
  sim::Tracer* tracer_ = nullptr;
  obs::SpanProfiler* spans_ = nullptr;
  // unique_ptr values: Endpoint addresses stay stable across map growth,
  // so references held across process yields (host-inline sends advance
  // the caller mid-processing) cannot dangle on a rehash.
  std::unordered_map<ViEndpointId, std::unique_ptr<Endpoint>> endpoints_;
  ViEndpointId nextEndpoint_ = 1;
  std::size_t activeEndpoints_ = 0;
  NicStats stats_;
};

}  // namespace vibe::nic
