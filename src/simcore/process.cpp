#include "simcore/process.hpp"

#include <cassert>

namespace vibe::sim {

Process::Process(Engine& engine, std::string name, std::function<void()> body)
    : engine_(engine), name_(std::move(name)) {
  engine_.registerProcess(this);
  thread_ = std::thread(&Process::threadMain, this, std::move(body));
  state_ = State::Ready;
  engine_.post(0, [this] { resume(); });
}

Process::~Process() {
  if (state_ != State::Finished) {
    // Forced shutdown (e.g. a failed run): unwind the body via Killed.
    std::unique_lock lk(mutex_);
    killed_ = true;
    turn_ = Turn::Proc;
    cv_.notify_all();
    cv_.wait(lk, [&] { return turn_ == Turn::Engine; });
  }
  if (thread_.joinable()) thread_.join();
  engine_.unregisterProcess(this);
}

void Process::threadMain(std::function<void()> body) {
  {
    std::unique_lock lk(mutex_);
    cv_.wait(lk, [&] { return turn_ == Turn::Proc; });
  }
  try {
    if (killed_) throw Killed{};
    state_ = State::Running;
    body();
  } catch (Killed&) {
    // forced shutdown — unwound cleanly
  } catch (...) {
    failure_ = std::current_exception();
  }
  std::unique_lock lk(mutex_);
  state_ = State::Finished;
  turn_ = Turn::Engine;
  cv_.notify_all();
}

void Process::resume() {
  assert(state_ == State::Ready || state_ == State::Blocked);
  Process* prev = engine_.current_;
  engine_.current_ = this;
  {
    std::unique_lock lk(mutex_);
    turn_ = Turn::Proc;
    cv_.notify_all();
    cv_.wait(lk, [&] { return turn_ == Turn::Engine; });
  }
  engine_.current_ = prev;
  if (failure_) {
    auto f = failure_;
    failure_ = nullptr;
    std::rethrow_exception(f);
  }
}

void Process::yieldToEngine() {
  std::unique_lock lk(mutex_);
  turn_ = Turn::Engine;
  cv_.notify_all();
  cv_.wait(lk, [&] { return turn_ == Turn::Proc; });
  if (killed_) throw Killed{};
  state_ = State::Running;
}

void Process::assertOnProcessThread() const {
  assert(std::this_thread::get_id() == thread_.get_id() &&
         "Process API called from outside the process body");
}

void Process::advance(Duration d, CpuUse use) {
  assertOnProcessThread();
  if (d < 0) throw SimError("Process::advance: negative duration");
  if (use == CpuUse::Busy) cpuBusy_ += d;
  if (d == 0) return;  // nothing can interleave at zero cost; skip the yield
  state_ = State::Ready;
  engine_.post(d, [this] { resume(); });
  yieldToEngine();
}

bool Process::awaitFor(Signal& s, Duration timeout) {
  assertOnProcessThread();
  const std::uint64_t epoch = ++waitEpoch_;
  waitSignalled_ = false;
  s.addWaiter(this, epoch);
  timeoutEvent_ = 0;
  if (timeout >= 0) {
    timeoutEvent_ =
        engine_.post(timeout, [this, epoch] { wakeFromWait(epoch, false); });
  }
  state_ = State::Blocked;
  yieldToEngine();
  return waitSignalled_;
}

void Process::await(Signal& s) { awaitFor(s, -1); }

void Process::awaitBusy(Signal& s) {
  const SimTime t0 = now();
  await(s);
  cpuBusy_ += now() - t0;  // a polling wait spins the host CPU
}

bool Process::awaitBusyFor(Signal& s, Duration timeout) {
  const SimTime t0 = now();
  const bool fired = awaitFor(s, timeout);
  cpuBusy_ += now() - t0;
  return fired;
}

void Process::wakeFromWait(std::uint64_t epoch, bool signalled) {
  if (epoch != waitEpoch_ || state_ != State::Blocked) return;  // stale waker
  ++waitEpoch_;  // invalidate the competing signal/timeout source
  waitSignalled_ = signalled;
  if (signalled && timeoutEvent_ != 0) engine_.cancel(timeoutEvent_);
  timeoutEvent_ = 0;
  resume();
}

void Signal::post(const Waiter& w) {
  Process* proc = w.proc;
  const std::uint64_t epoch = w.epoch;
  engine_.post(0, [proc, epoch] { proc->wakeFromWait(epoch, true); });
}

void Signal::notifyAll() {
  for (const Waiter& w : waiters_) post(w);
  waiters_.clear();
}

void Signal::notifyOne() {
  // Skip entries whose wait epoch is stale (e.g. the waiter timed out).
  while (!waiters_.empty()) {
    Waiter w = waiters_.front();
    waiters_.erase(waiters_.begin());
    if (w.epoch == w.proc->waitEpoch_ && w.proc->blocked()) {
      post(w);
      return;
    }
  }
}

void Signal::dropWaiter(const Process* p) {
  std::erase_if(waiters_, [p](const Waiter& w) { return w.proc == p; });
}

}  // namespace vibe::sim
