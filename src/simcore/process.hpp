// Cooperative simulated processes.
//
// A Process runs user code (a benchmark node program) on a dedicated OS
// thread, but execution interleaves cooperatively with the Engine: control
// is handed back and forth through a mutex/condvar pair so exactly one of
// {engine, some process} runs at any instant. User code experiences a
// synchronous, blocking API (advance / await) while the engine stays a pure
// discrete-event core underneath.
//
// CPU accounting: advance(d, CpuUse::Busy) accrues the process's busy
// counter — the simulated getrusage() that the paper's CPU-utilization
// micro-benchmarks read. Blocking in await() is idle time.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "simcore/engine.hpp"
#include "simcore/time.hpp"

namespace vibe::sim {

class Signal;

/// Whether a span of process time occupies the (simulated) host CPU.
enum class CpuUse : std::uint8_t { Busy, Idle };

class Process {
 public:
  /// Creates the process and schedules its body to start at engine.now().
  /// Lifetime contract: the Process must be destroyed before the Engine.
  Process(Engine& engine, std::string name, std::function<void()> body);
  ~Process();

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  /// --- API callable only from inside the process body ---

  /// Lets `d` of virtual time pass. Busy time counts toward cpuBusy().
  void advance(Duration d, CpuUse use = CpuUse::Busy);

  /// Blocks (idle) until the signal fires.
  void await(Signal& s);

  /// Blocks until the signal fires or `timeout` elapses. A negative
  /// timeout means wait forever. Returns true if the signal fired.
  bool awaitFor(Signal& s, Duration timeout);

  /// Like await(), but the elapsed wall time is charged as CPU-busy: the
  /// efficient simulation of a host spinning in a poll loop. VIPL's
  /// poll-until-done helpers use this so polling completes in one event
  /// instead of millions of spin iterations, while getrusage-style
  /// accounting still reports 100% utilization.
  void awaitBusy(Signal& s);

  /// Busy-accounted variant of awaitFor().
  bool awaitBusyFor(Signal& s, Duration timeout);

  /// Adds busy time without advancing the clock: work (e.g. a kernel ISR)
  /// that ran on this process's host CPU concurrently while it was blocked,
  /// and that getrusage() would attribute to the process as system time.
  void chargeCpu(Duration d) { cpuBusy_ += d; }

  /// --- Observers (valid from anywhere while the engine is quiescent) ---

  const std::string& name() const { return name_; }
  Engine& engine() const { return engine_; }
  SimTime now() const { return engine_.now(); }
  /// Accumulated simulated CPU-busy time (the getrusage analogue).
  Duration cpuBusy() const { return cpuBusy_; }
  bool finished() const { return state_ == State::Finished; }
  bool blocked() const { return state_ == State::Blocked; }

 private:
  friend class Engine;
  friend class Signal;

  enum class State : std::uint8_t {
    Created,   // thread exists, body not yet started
    Ready,     // a resume event is queued
    Running,   // body is executing right now
    Blocked,   // waiting on a Signal (and possibly a timeout)
    Finished,  // body returned or was killed
  };

  enum class Turn : std::uint8_t { Engine, Proc };

  struct Killed {};  // thrown into the body to unwind on forced shutdown

  void threadMain(std::function<void()> body);
  /// Engine side: transfer control to the process until it yields.
  void resume();
  /// Process side: return control to the engine; blocks until resumed.
  void yieldToEngine();
  /// Wake path shared by Signal delivery and await timeouts.
  void wakeFromWait(std::uint64_t epoch, bool signalled);
  void assertOnProcessThread() const;

  Engine& engine_;
  std::string name_;
  Duration cpuBusy_ = 0;

  State state_ = State::Created;
  std::mutex mutex_;
  std::condition_variable cv_;
  Turn turn_ = Turn::Engine;
  bool killed_ = false;
  std::exception_ptr failure_;

  // Wait bookkeeping: the epoch invalidates stale signal/timeout wakeups.
  std::uint64_t waitEpoch_ = 0;
  bool waitSignalled_ = false;
  EventId timeoutEvent_ = 0;

  std::thread thread_;
};

/// A broadcast wakeup primitive in virtual time. notifyAll() releases every
/// process currently waiting; wakeups are delivered as engine events at the
/// current time, preserving deterministic ordering.
class Signal {
 public:
  explicit Signal(Engine& engine) : engine_(engine) {}
  Signal(const Signal&) = delete;
  Signal& operator=(const Signal&) = delete;

  /// Wakes all current waiters.
  void notifyAll();
  /// Wakes the longest-waiting current waiter, if any.
  void notifyOne();
  std::size_t waiterCount() const { return waiters_.size(); }

 private:
  friend class Process;
  struct Waiter {
    Process* proc;
    std::uint64_t epoch;
  };
  void addWaiter(Process* p, std::uint64_t epoch) {
    waiters_.push_back({p, epoch});
  }
  void dropWaiter(const Process* p);
  void post(const Waiter& w);

  Engine& engine_;
  std::vector<Waiter> waiters_;
};

}  // namespace vibe::sim
