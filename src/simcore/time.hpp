// Virtual-time primitives for the VIBe discrete-event simulator.
//
// All simulated time is kept in integer nanoseconds. Micro-benchmark costs
// in the VIA literature are quoted in microseconds with two decimals
// (e.g. 0.19 us for VipDestroyVi), and per-byte wire costs at Gb/s rates are
// ~1 ns/byte, so nanoseconds give exact arithmetic with no drift across the
// billions of events in a long benchmark run.
#pragma once

#include <cstdint>

namespace vibe::sim {

/// Absolute simulated time in nanoseconds since the start of the run.
using SimTime = std::int64_t;

/// A span of simulated time in nanoseconds.
using Duration = std::int64_t;

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1000;
inline constexpr Duration kMillisecond = 1000 * kMicrosecond;
inline constexpr Duration kSecond = 1000 * kMillisecond;

/// Converts a (possibly fractional) count of microseconds to a Duration,
/// rounding to the nearest nanosecond.
constexpr Duration usec(double us) {
  const double ns = us * 1e3;
  return static_cast<Duration>(ns >= 0 ? ns + 0.5 : ns - 0.5);
}

/// Converts a (possibly fractional) count of nanoseconds to a Duration.
constexpr Duration nsec(double ns) {
  return static_cast<Duration>(ns >= 0 ? ns + 0.5 : ns - 0.5);
}

/// Converts milliseconds to a Duration.
constexpr Duration msec(double ms) { return usec(ms * 1e3); }

/// Converts a Duration back to fractional microseconds (for reporting).
constexpr double toUsec(Duration d) { return static_cast<double>(d) / 1e3; }

/// Converts a Duration back to fractional seconds (for reporting).
constexpr double toSec(Duration d) { return static_cast<double>(d) / 1e9; }

/// Time to move `bytes` bytes at `megabytesPerSec` (10^6 bytes/s), rounded
/// to nanoseconds. Returns 0 for zero bytes; rates must be positive.
constexpr Duration transferTime(std::uint64_t bytes, double megabytesPerSec) {
  if (bytes == 0) return 0;
  const double ns = static_cast<double>(bytes) * 1e3 / megabytesPerSec;
  return static_cast<Duration>(ns + 0.5);
}

}  // namespace vibe::sim
