// Conservative parallel discrete-event engine (PDES).
//
// A ShardedEngine partitions simulation state into `domains` — logical
// groups (e.g. the hosts under one edge switch) whose events never touch
// another domain's state directly. Domains are packed onto `shards`
// worker threads (domain d runs on shard d % shards) and advance in
// lockstep windows of virtual time:
//
//   window = [T, T + lookahead)  where T is the global minimum pending
//   event time and `lookahead` is the minimum latency any cross-domain
//   interaction must pay (the smallest cross-shard link latency in the
//   fabric being modeled).
//
// Within one window every shard executes its domains' events with no
// locks and no communication: a cross-domain message sent at time
// t >= T arrives at t + delay >= T + lookahead, i.e. at or after the
// window's end, so nothing a peer does during the window can affect
// events inside it. Cross-domain sends are buffered in per-shard
// outboxes (the "mailbox") and merged into the destination domains at
// the window barrier.
//
// Determinism contract (see docs/PDES.md):
//   Every event carries the key (time, srcDomain, srcSeq), where srcSeq
//   is a per-domain counter stamped when the event is posted or sent.
//   Each domain executes its events in ascending key order, and the
//   conservative window guarantees a key can never arrive after a larger
//   key has executed. Because the key is stamped by the *posting* domain
//   — never by a shard or thread — the per-domain execution order, and
//   therefore every per-domain output, is byte-identical for any shard
//   count and any thread schedule. shards=1 runs the same window loop
//   inline on the calling thread: no pool, no barrier, no atomics — the
//   exact serial path, mirroring the harness's VIBE_JOBS=1 contract.
//
// Two modes share the window machinery:
//
//   Synthetic (default)  the engine owns per-domain keyed heaps and the
//                        callback-only post()/send() API — no cancel, no
//                        processes. The traffic models built before the
//                        stack port use this.
//   Hosted               `EngineConfig::hostEngines`: every domain hosts
//                        a full serial sim::Engine (cancellable timers,
//                        cooperative Processes), driven window-by-window
//                        via Engine::runWindow. Within a domain the full
//                        serial feature set — including O(1) timer
//                        cancel — is legal; *cross-domain* interaction is
//                        restricted to sendAt(), and a parked foreign
//                        engine rejects postAt/cancel outright (the
//                        windowed-mode guard). This is what the VIA
//                        NIC/VIPL/Cluster stack runs on.
//
// In hosted mode every cross-domain send goes through the per-domain
// outbox even when source and destination share a shard: a hosted
// engine's tie order is insertion order, so delivery must always happen
// at the barrier, in domain order, for the executed schedule to be
// byte-identical at any shard count.
//
// Use this substrate for domain-partitioned models that must scale a
// *single* simulation across cores (VIBE_SIM_SHARDS), orthogonal to the
// sweep harness that runs independent simulations in parallel
// (VIBE_JOBS).
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "simcore/engine.hpp"
#include "simcore/event_fn.hpp"
#include "simcore/time.hpp"

namespace vibe::sim {

/// Shard count for sharded engines: the VIBE_SIM_SHARDS environment
/// variable when set to a positive integer, otherwise
/// std::thread::hardware_concurrency() (minimum 1). Read on every call
/// so tests can flip the variable. Mirrors harness::jobCount().
unsigned shardCount();

/// Runtime-profiler snapshot for one shard of a ShardedEngine (see
/// shardProfiles()). Event/domain counts are deterministic; the *Ns
/// fields are host wall-clock and vary run to run — keep them out of
/// golden output.
struct ShardProfile {
  unsigned shard = 0;
  std::uint32_t domains = 0;        // domains packed onto this shard
  std::uint64_t events = 0;         // events executed by those domains
  std::uint64_t crossShardSent = 0; // sends that left this shard
  std::uint64_t windowsActive = 0;  // windows with >= 1 event here
  std::uint64_t execNs = 0;         // wall time executing events
  std::uint64_t barrierWaitNs = 0;  // wall time blocked at the barrier
};

/// Construction parameters for a ShardedEngine.
struct EngineConfig {
  /// Number of state-disjoint domains the model is partitioned into.
  std::uint32_t domains = 1;
  /// Minimum virtual-time latency of any cross-domain interaction; the
  /// conservative window width. Must be > 0 when more than one shard
  /// actually runs (with a single shard 0 is allowed: the window
  /// degenerates to one timestamp at a time).
  Duration lookahead = 0;
  /// Worker threads; 0 = shardCount() (VIBE_SIM_SHARDS / hardware).
  /// Clamped to `domains`. 1 runs inline with no threads.
  unsigned shards = 0;
  /// Hosted mode: each domain owns a full serial sim::Engine reachable
  /// via domainEngine(). post()/send() are disabled in favor of the
  /// hosted engines' own API plus sendAt() for cross-domain delivery.
  bool hostEngines = false;
};

class ShardedEngine {
 public:
  explicit ShardedEngine(const EngineConfig& cfg);
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;
  ~ShardedEngine();

  std::uint32_t domainCount() const { return domainCountU32_; }
  /// Shards actually used (after the env default and the domain clamp).
  unsigned shards() const { return shards_; }
  Duration lookahead() const { return lookahead_; }
  /// Shard that owns a domain (round-robin packing).
  std::uint32_t shardOf(std::uint32_t domain) const {
    return domain % shards_;
  }

  /// Virtual time of `domain`: the time of its currently executing event
  /// during run(), its last executed event (or the horizon) otherwise.
  /// During a parallel run, call only from `domain`'s own context.
  SimTime now(std::uint32_t domain) const;

  /// Schedules `fn` in `domain`, `delay` >= 0 from the domain's now().
  /// During run() this may only be called from an event executing in the
  /// same domain — cross-domain scheduling must go through send(), which
  /// is what keeps the execution order independent of the shard count.
  /// Before run() (setup) any domain may be targeted from the driving
  /// thread.
  void post(std::uint32_t domain, Duration delay, EventFn fn);

  /// Sends a cross-domain event: `fn` runs in `dst` at src.now() + delay.
  /// When src != dst, `delay` must be >= lookahead() — the conservative
  /// guarantee that makes the window safe; a smaller delay throws
  /// SimError. src == dst degenerates to post(). During run() this may
  /// only be called from an event executing in `src`.
  void send(std::uint32_t src, std::uint32_t dst, Duration delay,
            EventFn fn);

  /// --- Hosted mode (EngineConfig::hostEngines) ---

  bool hosted() const { return hosted_; }

  /// The serial engine hosted by `domain`. Build the domain's simulation
  /// state (NICs, processes, timers) directly on it; during run() it is
  /// driven in lockstep windows. Hosted mode only.
  Engine& domainEngine(std::uint32_t domain);

  /// Cross-domain delivery for hosted mode: `fn` runs in `dst`'s engine
  /// at absolute time `at`. During run() `at` must lie at or past the
  /// open window's end (i.e. the caller must have paid the lookahead —
  /// link serialization + propagation guarantees this for fabric
  /// traffic); violations throw SimError. src == dst posts directly.
  /// Setup-time calls (before run()) schedule directly too.
  void sendAt(std::uint32_t src, std::uint32_t dst, SimTime at, EventFn fn);

  /// Hosted-mode sampling support: clamps every window end to the next
  /// multiple of `period` and invokes `flush(T)` at each window start T
  /// from the single-threaded completion step — every event strictly
  /// before T has executed, none at or after T has, so `flush` may read
  /// any domain's state and sees exactly what a serial TimeObserver
  /// would at boundaries <= T. Pass (0, nullptr) to clear.
  void setBoundaryHook(Duration period, std::function<void(SimTime)> flush);

  /// Max over domain clocks — the hosted equivalent of Engine::now()
  /// after a run (the time of the last executed event, or the horizon).
  SimTime maxNow() const;

  /// Runs windows until every domain queue and mailbox drains. Rethrows
  /// the first (lowest-shard) exception raised by an event callback. In
  /// hosted mode, throws DeadlockError after the drain if any hosted
  /// process is still blocked on a signal (the global analogue of the
  /// serial engine's drain-time deadlock check).
  void run();

  /// Runs events with time <= `until` (absolute). Returns true if the
  /// queues drained completely. Domain clocks never move backwards.
  bool runUntil(SimTime until);

  /// --- Introspection (sum over domains; call when not running) ---

  /// Total events executed.
  std::uint64_t executedEvents() const;
  /// Events scheduled and not yet fired (pending in heaps + mailboxes).
  std::uint64_t pendingEvents() const;
  /// send() calls with src != dst (independent of the shard count).
  std::uint64_t crossDomainEvents() const;
  /// send() calls whose source and destination domains live on different
  /// shards — the events that actually paid the mailbox.
  std::uint64_t crossShardEvents() const;
  /// Conservative windows executed (barrier count in a parallel run).
  std::uint64_t windowsExecuted() const { return windows_; }

  /// --- Runtime profiler (opt-in; see docs/PDES.md) ---

  /// Enables per-shard wall-clock profiling for subsequent run()s. The
  /// timers feed diagnostics only — nothing they measure flows back into
  /// the simulation, so the determinism contract is unaffected (pinned
  /// by test_pdes). Call between runs, not during one.
  void setProfiling(bool on);
  bool profiling() const { return profiling_; }

  /// One snapshot per shard: deterministic event/window counts summed
  /// from the shard's domains plus wall-clock exec and barrier-wait time
  /// accumulated while profiling was enabled. Call when not running.
  std::vector<ShardProfile> shardProfiles() const;

  /// max/mean of per-shard executed events: 1.0 = perfectly balanced.
  /// Returns 1.0 when nothing executed.
  double loadImbalance() const;

 private:
  struct Domain;
  struct CrossMsg;

  // Strict weak order "a fires after b" over the (time, src, seq) key.
  struct ItemAfter;

  // Per-shard wall-clock accumulators; cache-line aligned because every
  // shard writes its own entry concurrently during a parallel run.
  struct alignas(64) ShardTiming {
    std::uint64_t execNs = 0;
    std::uint64_t barrierWaitNs = 0;
    std::uint64_t windowsActive = 0;
  };

  SimTime nextEventTime() const;
  SimTime hostedNextEventTime();
  std::uint64_t runDomainWindow(std::uint32_t d, SimTime windowEnd);
  std::uint64_t execDomainWindow(std::uint32_t d, SimTime windowEnd);
  void deliverOutboxes();
  void pushEvent(Domain& dom, SimTime t, std::uint32_t srcDomain,
                 std::uint64_t seq, EventFn fn);
  bool runWindows(SimTime horizon);          // serial (shards_ == 1)
  bool runWindowsParallel(SimTime horizon);  // thread pool + barrier
  void checkContext(std::uint32_t domain, const char* what) const;
  SimTime clampToBoundary(SimTime t, SimTime windowEnd) const;
  void setHostedWindowedMode(bool on);
  void checkHostedDeadlock() const;
  bool runDispatch(SimTime horizon);
  SimTime domainNextTime(std::uint32_t d);
  void markOutboxDirty(std::uint32_t src);
  void initRunnable();
  void pushRunnable(std::uint32_t d, SimTime t);
  SimTime runnableTop(unsigned shard) const;
  std::uint64_t execShardWindow(unsigned shard, SimTime windowEnd);

  std::vector<Domain> domains_;
  std::vector<std::unique_ptr<Engine>> engines_;  // hosted mode only
  bool hosted_ = false;
  Duration boundaryPeriod_ = 0;
  std::function<void(SimTime)> boundaryFlush_;
  std::uint32_t domainCountU32_ = 0;
  unsigned shards_ = 1;
  Duration lookahead_ = 0;
  std::uint64_t windows_ = 0;
  bool profiling_ = false;
  std::vector<ShardTiming> timing_;  // sized to shards_ when profiling

  // Parallel-run shared state. Written only by the barrier completion
  // step (or before the pool starts) and read by workers after the
  // barrier releases them, so the barrier's happens-before edges are the
  // only synchronization needed.
  SimTime windowEnd_ = 0;
  SimTime horizon_ = 0;
  bool drained_ = false;
  bool done_ = false;
  std::atomic<bool> abort_{false};
  std::vector<std::exception_ptr> shardErrors_;

  // Runnable-domain heaps: at thousands of mostly-idle domains, touching
  // every domain every window — the completion step's O(domains) next-
  // event scan plus each worker's O(domains/shards) execute pass — is
  // the Amdahl floor of thin-window runs. Instead each shard keeps a
  // lazy min-heap of (next event time, domain) over the domains it owns,
  // so a window costs O(active domains · log). domKey_[d] is the key the
  // owner's heap currently holds for d (kNoEvent when absent): pushes
  // that don't beat it are skipped, pops that don't match it are stale
  // duplicates. Keys may run stale-low (a superseded entry surfaces
  // first); the pop re-checks the real next time and re-files, costing
  // at worst an empty window round. Rebuilt at every run entry; disabled
  // while a boundary hook is set (the hook may schedule new work behind
  // the heaps' backs).
  std::vector<std::vector<std::pair<SimTime, std::uint32_t>>> runnable_;
  std::vector<SimTime> domKey_;
  bool runnableActive_ = false;
  // Outbox dirty lists, per owning shard: domains that parked >= 1
  // cross-domain message this window. Single-writer (each shard appends
  // only its own list, in ascending domain order); the merge gathers and
  // sorts them so the drain order stays the full scan's domain order.
  std::vector<std::vector<std::uint32_t>> dirtyByShard_;
  std::vector<std::uint32_t> dirtyScratch_;

  bool running_ = false;
};

}  // namespace vibe::sim
