// Lightweight event tracing for the simulator.
//
// A Tracer records (time, category, component, message) tuples into a
// bounded ring buffer; recording is O(1) and allocation-free on the hot
// path once the ring is warm. Categories can be enabled per-run to debug
// a single subsystem (e.g. only reliability retransmissions) without
// drowning in doorbell noise. The NIC models and the provider emit trace
// points when a Tracer is attached; by default nothing is recorded.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "simcore/time.hpp"

namespace vibe::sim {

enum class TraceCategory : std::uint8_t {
  Engine,       // event dispatch milestones
  Process,      // process lifecycle
  Doorbell,     // descriptor posting / pickup
  Dma,          // DMA transactions
  Wire,         // frames entering the fabric
  Rx,           // receive-path processing
  Completion,   // completions delivered to the provider
  Reliability,  // acks, retransmissions, window stalls
  Connection,   // connect/accept/disconnect dialogs
  Translation,  // address-translation hits/misses
  Session,      // session layer: epochs, replay, dedup, recovery phases
  User,         // application-level marks
  kCount,
};

const char* toString(TraceCategory c);

struct TraceRecord {
  SimTime time = 0;
  TraceCategory category = TraceCategory::User;
  std::uint32_t component = 0;  // e.g. node id
  std::string message;
};

class Tracer {
 public:
  /// Observes every record accepted by `record` (enabled categories only),
  /// in record order, including records later overwritten by the ring.
  using Sink = std::function<void(const TraceRecord&)>;

  /// `capacity`: ring size; the newest records win.
  explicit Tracer(std::size_t capacity = 4096);

  /// Enables one category (all start disabled).
  void enable(TraceCategory c) { enabled_[idx(c)] = true; }
  void enableAll();
  void disable(TraceCategory c) { enabled_[idx(c)] = false; }
  bool enabled(TraceCategory c) const { return enabled_[idx(c)]; }

  /// Records if the category is enabled. `message` is copied.
  void record(SimTime time, TraceCategory c, std::uint32_t component,
              std::string message);

  /// Streams accepted records to `sink` as they are recorded. The sink
  /// sees the full stream regardless of ring capacity; invariant checkers
  /// consume this. Pass nullptr to detach.
  void setSink(Sink sink) { sink_ = std::move(sink); }

  /// Records seen (including overwritten ones).
  std::uint64_t totalRecorded() const { return total_; }
  /// Running FNV-1a hash over every accepted record — time, category,
  /// component, and message bytes — independent of ring capacity. Two runs
  /// of a deterministic simulation with identical category enablement
  /// produce identical digests; use it to compare runs byte-for-byte
  /// without retaining the full stream.
  std::uint64_t digest() const { return digest_; }
  /// Folds a per-shard digest into a sweep-level digest: FNV-1a over the
  /// shard digest's bytes. Fold shard digests in shard index order (seeded
  /// with kDigestSeed) and the result is independent of which threads
  /// produced them — the composition rule the parallel sweep harness uses.
  static constexpr std::uint64_t kDigestSeed = 0xcbf29ce484222325ull;
  static constexpr std::uint64_t combineDigest(std::uint64_t acc,
                                               std::uint64_t shardDigest) {
    for (int i = 0; i < 8; ++i) {
      acc ^= (shardDigest >> (8 * i)) & 0xffu;
      acc *= 0x100000001b3ull;
    }
    return acc;
  }
  /// Records currently retained, oldest first.
  std::vector<TraceRecord> snapshot() const;
  /// Renders the retained records as aligned text.
  std::string dump() const;
  void clear();

 private:
  static std::size_t idx(TraceCategory c) {
    return static_cast<std::size_t>(c);
  }

  std::array<bool, static_cast<std::size_t>(TraceCategory::kCount)> enabled_{};
  std::vector<TraceRecord> ring_;
  std::size_t capacity_;
  std::size_t next_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t digest_ = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  Sink sink_;
};

/// Convenience: record into an optional tracer (no-op when null).
inline void trace(Tracer* t, SimTime time, TraceCategory c,
                  std::uint32_t component, std::string message) {
  if (t != nullptr && t->enabled(c)) {
    t->record(time, c, component, std::move(message));
  }
}

}  // namespace vibe::sim
