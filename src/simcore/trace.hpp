// Lightweight event tracing for the simulator.
//
// A Tracer records (time, category, component, message) tuples into a
// bounded ring buffer; recording is O(1) and allocation-free on the hot
// path once the ring is warm. Categories can be enabled per-run to debug
// a single subsystem (e.g. only reliability retransmissions) without
// drowning in doorbell noise. The NIC models and the provider emit trace
// points when a Tracer is attached; by default nothing is recorded.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "simcore/time.hpp"

namespace vibe::sim {

enum class TraceCategory : std::uint8_t {
  Engine,       // event dispatch milestones
  Process,      // process lifecycle
  Doorbell,     // descriptor posting / pickup
  Dma,          // DMA transactions
  Wire,         // frames entering the fabric
  Rx,           // receive-path processing
  Completion,   // completions delivered to the provider
  Reliability,  // acks, retransmissions, window stalls
  Connection,   // connect/accept/disconnect dialogs
  Translation,  // address-translation hits/misses
  User,         // application-level marks
  kCount,
};

const char* toString(TraceCategory c);

struct TraceRecord {
  SimTime time = 0;
  TraceCategory category = TraceCategory::User;
  std::uint32_t component = 0;  // e.g. node id
  std::string message;
};

class Tracer {
 public:
  /// `capacity`: ring size; the newest records win.
  explicit Tracer(std::size_t capacity = 4096);

  /// Enables one category (all start disabled).
  void enable(TraceCategory c) { enabled_[idx(c)] = true; }
  void enableAll();
  void disable(TraceCategory c) { enabled_[idx(c)] = false; }
  bool enabled(TraceCategory c) const { return enabled_[idx(c)]; }

  /// Records if the category is enabled. `message` is copied.
  void record(SimTime time, TraceCategory c, std::uint32_t component,
              std::string message);

  /// Records seen (including overwritten ones).
  std::uint64_t totalRecorded() const { return total_; }
  /// Records currently retained, oldest first.
  std::vector<TraceRecord> snapshot() const;
  /// Renders the retained records as aligned text.
  std::string dump() const;
  void clear();

 private:
  static std::size_t idx(TraceCategory c) {
    return static_cast<std::size_t>(c);
  }

  std::array<bool, static_cast<std::size_t>(TraceCategory::kCount)> enabled_{};
  std::vector<TraceRecord> ring_;
  std::size_t capacity_;
  std::size_t next_ = 0;
  std::uint64_t total_ = 0;
};

/// Convenience: record into an optional tracer (no-op when null).
inline void trace(Tracer* t, SimTime time, TraceCategory c,
                  std::uint32_t component, std::string message) {
  if (t != nullptr && t->enabled(c)) {
    t->record(time, c, component, std::move(message));
  }
}

}  // namespace vibe::sim
