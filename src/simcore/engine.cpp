#include "simcore/engine.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "simcore/process.hpp"

namespace vibe::sim {

std::uint32_t Engine::allocSlot() {
  if (freeHead_ != kNoSlot) {
    const std::uint32_t s = freeHead_;
    freeHead_ = slotAt(s).nextFree;
    return s;
  }
  if ((slotCount_ & (kSlabSize - 1)) == 0) {
    slabs_.push_back(std::make_unique<Slot[]>(kSlabSize));
  }
  return slotCount_++;
}

EventId Engine::postAt(SimTime t, EventFn fn) {
  if (windowed_ && !inWindow_) {
    throw SimError(
        "Engine::postAt: engine is parked between PDES windows; schedule "
        "into a foreign domain via ShardedEngine::sendAt instead");
  }
  return postAtImpl(t, std::move(fn));
}

EventId Engine::postAtImpl(SimTime t, EventFn fn) {
  if (!fn) {
    throw SimError("Engine::postAt: null callable");
  }
  if (t < now_) {
    throw SimError("Engine::postAt: scheduling into the past");
  }
  const std::uint32_t slot = allocSlot();
  Slot& s = slotAt(slot);
  s.fn = std::move(fn);
  heap_.push_back(Handle{t, nextSeq_++, slot, s.gen});
  std::push_heap(heap_.begin(), heap_.end(), HandleAfter{});
  ++live_;
  return (static_cast<EventId>(s.gen) << 32) | (slot + 1);
}

bool Engine::cancel(EventId id) {
  if (windowed_ && !inWindow_) {
    throw SimError(
        "Engine::cancel: engine is parked between PDES windows; "
        "cross-domain timer cancel is forbidden under sharding");
  }
  const std::uint32_t slotPlus1 = static_cast<std::uint32_t>(id);
  const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  if (slotPlus1 == 0 || slotPlus1 > slotCount_) return false;
  const std::uint32_t slot = slotPlus1 - 1;
  Slot& s = slotAt(slot);
  if (s.gen != gen || !s.fn) return false;
  s.fn.reset();  // destroy the callback now, not at fire time
  ++s.gen;       // invalidates the id and the heap handle
  freeSlot(slot);
  --live_;
  ++staleInHeap_;
  compactIfStale();
  return true;
}

void Engine::compactIfStale() {
  if (staleInHeap_ <= 64 || staleInHeap_ <= live_) return;
  std::erase_if(heap_, [this](const Handle& h) {
    return slotAt(h.slot).gen != h.gen;
  });
  std::make_heap(heap_.begin(), heap_.end(), HandleAfter{});
  staleInHeap_ = 0;
}

void Engine::run() {
  DriveGuard guard(*this);
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), HandleAfter{});
    const Handle h = heap_.back();
    heap_.pop_back();
    Slot& s = slotAt(h.slot);
    if (s.gen != h.gen) {  // cancelled; handle predates compaction
      --staleInHeap_;
      continue;
    }
    if (h.time != now_) {
      now_ = h.time;
      if (observer_ != nullptr) observer_->onTimeAdvance(now_);
    }
    ++executed_;
    --live_;
    EventFn fn = std::move(s.fn);
    ++s.gen;
    freeSlot(h.slot);
    fn();
  }
  checkDeadlock();
}

bool Engine::runUntil(SimTime until) {
  DriveGuard guard(*this);
  while (!heap_.empty()) {
    const Handle top = heap_.front();
    if (slotAt(top.slot).gen != top.gen) {  // stale handle at the top
      std::pop_heap(heap_.begin(), heap_.end(), HandleAfter{});
      heap_.pop_back();
      --staleInHeap_;
      continue;
    }
    if (top.time > until) {
      if (until > now_) {
        now_ = until;
        if (observer_ != nullptr) observer_->onTimeAdvance(now_);
      }
      return false;
    }
    std::pop_heap(heap_.begin(), heap_.end(), HandleAfter{});
    heap_.pop_back();
    Slot& s = slotAt(top.slot);
    if (top.time != now_) {
      now_ = top.time;
      if (observer_ != nullptr) observer_->onTimeAdvance(now_);
    }
    ++executed_;
    --live_;
    EventFn fn = std::move(s.fn);
    ++s.gen;
    freeSlot(top.slot);
    fn();
  }
  if (until > now_) {
    now_ = until;
    if (observer_ != nullptr) observer_->onTimeAdvance(now_);
  }
  checkDeadlock();
  return true;
}

std::uint64_t Engine::runWindow(SimTime windowEnd) {
  DriveGuard guard(*this);
  WindowScope scope(*this);
  std::uint64_t n = 0;
  while (!heap_.empty()) {
    const Handle top = heap_.front();
    if (slotAt(top.slot).gen != top.gen) {  // stale handle at the top
      std::pop_heap(heap_.begin(), heap_.end(), HandleAfter{});
      heap_.pop_back();
      --staleInHeap_;
      continue;
    }
    if (top.time >= windowEnd) break;
    std::pop_heap(heap_.begin(), heap_.end(), HandleAfter{});
    heap_.pop_back();
    Slot& s = slotAt(top.slot);
    if (top.time != now_) {
      now_ = top.time;
      if (observer_ != nullptr) observer_->onTimeAdvance(now_);
    }
    ++executed_;
    --live_;
    EventFn fn = std::move(s.fn);
    ++s.gen;
    freeSlot(top.slot);
    fn();
    ++n;
  }
  return n;
}

SimTime Engine::nextEventTime() {
  while (!heap_.empty()) {
    const Handle top = heap_.front();
    if (slotAt(top.slot).gen == top.gen) return top.time;
    std::pop_heap(heap_.begin(), heap_.end(), HandleAfter{});
    heap_.pop_back();
    --staleInHeap_;
  }
  return kNoEventTime;
}

void Engine::advanceTo(SimTime t) {
  if (t <= now_) return;
  now_ = t;
  if (observer_ != nullptr) observer_->onTimeAdvance(now_);
}

bool Engine::hasBlockedProcesses() const {
  for (const Process* p : processes_) {
    if (p->blocked()) return true;
  }
  return false;
}

std::string Engine::blockedProcessNames() const {
  std::string out;
  for (const Process* p : processes_) {
    if (!p->blocked()) continue;
    if (!out.empty()) out += ", ";
    out += p->name();
  }
  return out;
}

void Engine::checkDeadlock() const {
  std::ostringstream stuck;
  bool any = false;
  for (const Process* p : processes_) {
    if (p->blocked()) {
      stuck << (any ? ", " : "") << p->name();
      any = true;
    }
  }
  if (any) {
    throw DeadlockError(
        "simulation deadlock: event queue empty but processes blocked: " +
        stuck.str());
  }
}

void Engine::unregisterProcess(Process* p) {
  processes_.erase(std::remove(processes_.begin(), processes_.end(), p),
                   processes_.end());
}

}  // namespace vibe::sim
