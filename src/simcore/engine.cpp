#include "simcore/engine.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <utility>

#include "simcore/process.hpp"

namespace vibe::sim {

EventId Engine::postAt(SimTime t, std::function<void()> fn) {
  if (t < now_) {
    throw SimError("Engine::postAt: scheduling into the past");
  }
  auto ev = std::make_shared<Event>();
  ev->time = t;
  ev->id = nextId_++;
  ev->fn = std::move(fn);
  pending_.emplace(ev->id, ev);
  queue_.push(ev);
  return ev->id;
}

bool Engine::cancel(EventId id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return false;
  it->second->fn = nullptr;  // tombstone; the queue entry is skipped later
  pending_.erase(it);
  return true;
}

void Engine::dispatch(const std::shared_ptr<Event>& ev) {
  now_ = ev->time;
  pending_.erase(ev->id);
  ++executed_;
  ev->fn();
}

void Engine::run() {
  while (!queue_.empty()) {
    auto ev = queue_.top();
    queue_.pop();
    if (!ev->fn) continue;  // cancelled
    dispatch(ev);
  }
  checkDeadlock();
}

bool Engine::runUntil(SimTime until) {
  while (!queue_.empty()) {
    auto ev = queue_.top();
    if (!ev->fn) {
      queue_.pop();
      continue;
    }
    if (ev->time > until) {
      now_ = std::max(now_, until);
      return false;
    }
    queue_.pop();
    dispatch(ev);
  }
  now_ = std::max(now_, until);
  checkDeadlock();
  return true;
}

void Engine::checkDeadlock() const {
  std::ostringstream stuck;
  bool any = false;
  for (const Process* p : processes_) {
    if (p->blocked()) {
      stuck << (any ? ", " : "") << p->name();
      any = true;
    }
  }
  if (any) {
    throw DeadlockError(
        "simulation deadlock: event queue empty but processes blocked: " +
        stuck.str());
  }
}

void Engine::unregisterProcess(Process* p) {
  processes_.erase(std::remove(processes_.begin(), processes_.end(), p),
                   processes_.end());
}

}  // namespace vibe::sim
