// Deterministic discrete-event engine.
//
// The engine owns a single event queue ordered by (time, insertion sequence)
// so ties break deterministically. Exactly one logical thread of control is
// ever executing simulation code: either the engine's run loop or one
// cooperative Process (see process.hpp) that the run loop has handed control
// to. All simulation state can therefore be touched without locks.
//
// Storage layout: event callbacks live in a slab/free-list pool and the
// queue is a binary heap of small POD handles {time, seq, slot, gen}. An
// EventId encodes (generation << 32 | slot + 1); cancel() bumps the slot's
// generation and returns the slot to the free list in O(1) — the callback
// is destroyed immediately, so a cancelled event never pins memory until
// its fire time. Stale heap handles (generation mismatch) are skipped on
// pop and compacted away once they outnumber live events, keeping the heap
// within a constant factor of the live event count under post+cancel-heavy
// workloads (e.g. retransmission timers).
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "simcore/event_fn.hpp"
#include "simcore/time.hpp"

namespace vibe::sim {

class Process;

/// Identifier for a scheduled event; usable with Engine::cancel. The value
/// 0 is never issued and is safe to use as a "no event" sentinel.
using EventId = std::uint64_t;

/// Base class for simulator errors.
class SimError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown by Engine::run when the event queue drains while processes are
/// still blocked on signals — the simulated program can never finish.
class DeadlockError : public SimError {
 public:
  using SimError::SimError;
};

/// Observer of virtual-time advancement. The run loop invokes
/// onTimeAdvance(now) whenever now() moves to a new timestamp, BEFORE the
/// first event at that timestamp executes — so the observer sees the
/// simulation state with every event strictly before `now` applied,
/// which is what makes sampling at window boundaries deterministic.
/// Observers must not post events or otherwise mutate simulation state;
/// they read (counters, queue depths) and record.
class TimeObserver {
 public:
  virtual ~TimeObserver() = default;
  virtual void onTimeAdvance(SimTime now) = 0;
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Schedules `fn` to run `delay` from now. `delay` must be >= 0 and `fn`
  /// must be a non-null callable (a null std::function throws SimError).
  EventId post(Duration delay, EventFn fn) {
    return postAt(now_ + delay, std::move(fn));
  }

  /// Schedules `fn` at absolute time `t`. `t` must be >= now().
  EventId postAt(SimTime t, EventFn fn);

  /// Cancels a pending event in O(1). Returns true if the event had not yet
  /// fired (nor been cancelled). The callback is destroyed immediately and
  /// its pool slot recycled; a later cancel of the same id returns false.
  bool cancel(EventId id);

  /// Runs events until the queue drains. Throws DeadlockError if blocked
  /// processes remain, and rethrows the first exception raised inside a
  /// process body or event callback.
  void run();

  /// Runs events with time <= `until` (absolute). Used by tests and by
  /// open-ended workloads that want a horizon. Returns true if the queue
  /// drained completely. now() never moves backwards: a horizon earlier
  /// than the current time leaves the clock where it is.
  bool runUntil(SimTime until);

  /// --- Windowed driving (conservative-PDES hosted mode) ---
  ///
  /// A ShardedEngine in hosted mode owns one Engine per domain and drives
  /// them in lockstep lookahead windows: runWindow executes one window,
  /// cross-domain arrivals merge between windows via postAtMerge, and
  /// setWindowedMode brackets the whole run. While windowed mode is on and
  /// no window is open on this engine, postAt/cancel throw — posting into
  /// or cancelling on a parked foreign engine is exactly the cross-domain
  /// mutation the PDES contract forbids (use ShardedEngine::sendAt).

  /// Sentinel for nextEventTime(): no pending events.
  static constexpr SimTime kNoEventTime = std::numeric_limits<SimTime>::max();

  /// Executes every pending event with time strictly before `windowEnd`,
  /// in (time, insertion seq) order. Unlike run()/runUntil() this performs
  /// no deadlock check (the queue legitimately drains while other domains
  /// still hold events) and never advances now() past the last executed
  /// event. Returns the number of events executed.
  std::uint64_t runWindow(SimTime windowEnd);

  /// Time of the earliest pending event, or kNoEventTime when none. Prunes
  /// stale (cancelled) handles off the top of the heap as it looks.
  SimTime nextEventTime();

  /// Advances now() to `t`, firing the time observer; no-op when t <=
  /// now(). Hosted runUntil uses this to land the clock on the horizon.
  void advanceTo(SimTime t);

  /// Hosted-mode guard (see block comment above). Toggling it changes
  /// nothing until postAt/cancel are called outside an open window.
  void setWindowedMode(bool on) { windowed_ = on; }
  bool windowedMode() const { return windowed_; }

  /// postAt bypassing the windowed guard: the ShardedEngine outbox merge
  /// runs between windows (single-threaded, at the barrier) and is the one
  /// sanctioned writer into parked engines.
  EventId postAtMerge(SimTime t, EventFn fn) {
    return postAtImpl(t, std::move(fn));
  }

  /// True when any registered process is blocked on a signal. The hosted
  /// run uses these for the global drain-time deadlock check; `Names`
  /// joins the blocked names with ", " for the error message.
  bool hasBlockedProcesses() const;
  std::string blockedProcessNames() const;

  /// The process currently executing, or nullptr when the engine itself
  /// (an event callback) is running. VIPL uses this to charge host CPU
  /// cost to the calling application thread.
  Process* currentProcess() const { return current_; }

  /// Total events executed so far (diagnostics / gbench).
  std::uint64_t executedEvents() const { return executed_; }

  /// Attaches a time observer (nullptr detaches). Null by default and the
  /// only cost when detached is one pointer test per executed event, so
  /// the data path stays byte-identical with observability off.
  void setTimeObserver(TimeObserver* observer) { observer_ = observer; }
  TimeObserver* timeObserver() const { return observer_; }

  /// --- Introspection for tests and diagnostics ---

  /// Events scheduled and not yet fired or cancelled.
  std::size_t pendingEvents() const { return live_; }
  /// Heap entries, including stale handles awaiting compaction. Bounded by
  /// 2 * pendingEvents() + a small constant.
  std::size_t queuedHandles() const { return heap_.size(); }
  /// Pool slots ever allocated (high-water mark of concurrently pending
  /// events, rounded up to the slab size). Freed slots are recycled.
  std::size_t poolSlots() const { return slotCount_; }

 private:
  friend class Process;

  // 24-byte POD heap entry; the callback lives in the pool.
  struct Handle {
    SimTime time;
    std::uint64_t seq;   // insertion order; total tie-break
    std::uint32_t slot;  // pool index
    std::uint32_t gen;   // matches Slot::gen while the event is live
  };
  struct HandleAfter {
    // std::*_heap build a max-heap; invert for earliest-(time, seq)-first.
    bool operator()(const Handle& a, const Handle& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  struct Slot {
    EventFn fn;
    std::uint32_t gen = 1;
    std::uint32_t nextFree = kNoSlot;
  };

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  static constexpr std::uint32_t kSlabBits = 8;
  static constexpr std::uint32_t kSlabSize = 1u << kSlabBits;

  Slot& slotAt(std::uint32_t s) {
    return slabs_[s >> kSlabBits][s & (kSlabSize - 1)];
  }
  std::uint32_t allocSlot();
  void freeSlot(std::uint32_t s) {
    Slot& sl = slotAt(s);
    sl.nextFree = freeHead_;
    freeHead_ = s;
  }
  /// Rebuilds the heap without stale handles once they dominate. O(n),
  /// amortized O(1) per cancel; ordering is unaffected because
  /// (time, seq) is a total order.
  void compactIfStale();
  // Debug guard against two sweep shards driving one Engine at once. It is
  // deliberately not a thread-id check: cooperative Process handoff means
  // several OS threads legitimately touch the Engine one at a time, and the
  // flag stays set across a handoff (the run loop is blocked inside fn()),
  // so only genuinely concurrent run()/runUntil() entry trips it.
  struct DriveGuard {
#ifndef NDEBUG
    explicit DriveGuard(Engine& e) : engine(e) {
      if (engine.driving_.exchange(true, std::memory_order_acquire)) {
        throw SimError(
            "Engine::run entered concurrently: each Engine must be driven "
            "by exactly one sweep point at a time");
      }
    }
    ~DriveGuard() { engine.driving_.store(false, std::memory_order_release); }
    Engine& engine;
#else
    explicit DriveGuard(Engine&) {}
#endif
    DriveGuard(const DriveGuard&) = delete;
    DriveGuard& operator=(const DriveGuard&) = delete;
  };
  // Marks a window open for the windowed-mode guard; exception-safe.
  struct WindowScope {
    explicit WindowScope(Engine& e) : engine(e) { engine.inWindow_ = true; }
    ~WindowScope() { engine.inWindow_ = false; }
    WindowScope(const WindowScope&) = delete;
    WindowScope& operator=(const WindowScope&) = delete;
    Engine& engine;
  };
  EventId postAtImpl(SimTime t, EventFn fn);
  void checkDeadlock() const;
  void registerProcess(Process* p) { processes_.push_back(p); }
  void unregisterProcess(Process* p);

  SimTime now_ = 0;
  std::uint64_t nextSeq_ = 1;
  std::uint64_t executed_ = 0;
  TimeObserver* observer_ = nullptr;

  std::vector<Handle> heap_;
  std::vector<std::unique_ptr<Slot[]>> slabs_;
  std::uint32_t freeHead_ = kNoSlot;
  std::uint32_t slotCount_ = 0;
  std::size_t live_ = 0;
  std::size_t staleInHeap_ = 0;

  std::vector<Process*> processes_;
  Process* current_ = nullptr;
  bool windowed_ = false;
  bool inWindow_ = false;
#ifndef NDEBUG
  std::atomic<bool> driving_{false};
#endif
};

}  // namespace vibe::sim
