// Deterministic discrete-event engine.
//
// The engine owns a single event queue ordered by (time, insertion sequence)
// so ties break deterministically. Exactly one logical thread of control is
// ever executing simulation code: either the engine's run loop or one
// cooperative Process (see process.hpp) that the run loop has handed control
// to. All simulation state can therefore be touched without locks.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "simcore/time.hpp"

namespace vibe::sim {

class Process;

/// Identifier for a scheduled event; usable with Engine::cancel.
using EventId = std::uint64_t;

/// Base class for simulator errors.
class SimError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown by Engine::run when the event queue drains while processes are
/// still blocked on signals — the simulated program can never finish.
class DeadlockError : public SimError {
 public:
  using SimError::SimError;
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Schedules `fn` to run `delay` from now. `delay` must be >= 0.
  EventId post(Duration delay, std::function<void()> fn) {
    return postAt(now_ + delay, std::move(fn));
  }

  /// Schedules `fn` at absolute time `t`. `t` must be >= now().
  EventId postAt(SimTime t, std::function<void()> fn);

  /// Cancels a pending event. Returns true if the event had not yet fired.
  bool cancel(EventId id);

  /// Runs events until the queue drains. Throws DeadlockError if blocked
  /// processes remain, and rethrows the first exception raised inside a
  /// process body or event callback.
  void run();

  /// Runs events with time <= `until` (absolute). Used by tests and by
  /// open-ended workloads that want a horizon. Returns true if the queue
  /// drained completely.
  bool runUntil(SimTime until);

  /// The process currently executing, or nullptr when the engine itself
  /// (an event callback) is running. VIPL uses this to charge host CPU
  /// cost to the calling application thread.
  Process* currentProcess() const { return current_; }

  /// Total events executed so far (diagnostics / gbench).
  std::uint64_t executedEvents() const { return executed_; }

 private:
  friend class Process;

  struct Event {
    SimTime time = 0;
    EventId id = 0;
    std::function<void()> fn;
  };
  struct EventOrder {
    // std::priority_queue is a max-heap; invert for earliest-first.
    bool operator()(const std::shared_ptr<Event>& a,
                    const std::shared_ptr<Event>& b) const {
      if (a->time != b->time) return a->time > b->time;
      return a->id > b->id;
    }
  };

  void dispatch(const std::shared_ptr<Event>& ev);
  void checkDeadlock() const;
  void registerProcess(Process* p) { processes_.push_back(p); }
  void unregisterProcess(Process* p);

  SimTime now_ = 0;
  EventId nextId_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<std::shared_ptr<Event>, std::vector<std::shared_ptr<Event>>,
                      EventOrder>
      queue_;
  std::unordered_map<EventId, std::shared_ptr<Event>> pending_;
  std::vector<Process*> processes_;
  Process* current_ = nullptr;
};

}  // namespace vibe::sim
