// Deterministic pseudo-random number generation for the simulator.
//
// Every stochastic component (loss injection, benchmark buffer-pool
// shuffling, payload fills) owns its own generator seeded from a run seed
// plus a component tag, so runs are reproducible bit-for-bit regardless of
// how many components exist or in which order they draw.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <string_view>

namespace vibe::sim {

/// SplitMix64: used to expand seeds into well-mixed state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// FNV-1a hash of a string tag, for deriving per-component seeds.
constexpr std::uint64_t hashTag(std::string_view tag) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : tag) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// xoshiro256** 1.0 — fast, high-quality, 2^256-1 period.
/// Satisfies UniformRandomBitGenerator so it composes with <random>.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x2545f4914f6cdd1dULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derives a generator for a named component from a run-wide seed.
  Xoshiro256(std::uint64_t runSeed, std::string_view componentTag)
      : Xoshiro256(runSeed ^ hashTag(componentTag)) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) with rejection to avoid modulo bias.
  std::uint64_t below(std::uint64_t bound) {
    if (bound == 0) return 0;
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Bernoulli trial with probability `p` of returning true.
  bool chance(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace vibe::sim
