#include "simcore/trace.hpp"

#include <iomanip>
#include <sstream>

namespace vibe::sim {

const char* toString(TraceCategory c) {
  switch (c) {
    case TraceCategory::Engine: return "engine";
    case TraceCategory::Process: return "process";
    case TraceCategory::Doorbell: return "doorbell";
    case TraceCategory::Dma: return "dma";
    case TraceCategory::Wire: return "wire";
    case TraceCategory::Rx: return "rx";
    case TraceCategory::Completion: return "completion";
    case TraceCategory::Reliability: return "reliability";
    case TraceCategory::Connection: return "connection";
    case TraceCategory::Translation: return "translation";
    case TraceCategory::Session: return "session";
    case TraceCategory::User: return "user";
    case TraceCategory::kCount: break;
  }
  return "?";
}

Tracer::Tracer(std::size_t capacity) : capacity_(capacity) {
  ring_.reserve(capacity_);
}

void Tracer::enableAll() {
  for (auto& e : enabled_) e = true;
}

namespace {
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

inline std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

template <typename T>
inline std::uint64_t fnv1aValue(std::uint64_t h, T v) {
  return fnv1a(h, &v, sizeof(v));
}
}  // namespace

void Tracer::record(SimTime time, TraceCategory c, std::uint32_t component,
                    std::string message) {
  if (!enabled(c)) return;
  ++total_;
  digest_ = fnv1aValue(digest_, time);
  digest_ = fnv1aValue(digest_, static_cast<std::uint8_t>(c));
  digest_ = fnv1aValue(digest_, component);
  digest_ = fnv1a(digest_, message.data(), message.size());
  digest_ = fnv1aValue(digest_, static_cast<std::uint32_t>(message.size()));
  TraceRecord rec{time, c, component, std::move(message)};
  if (sink_) sink_(rec);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(rec));
  } else {
    ring_[next_] = std::move(rec);
  }
  next_ = (next_ + 1) % capacity_;
}

std::vector<TraceRecord> Tracer::snapshot() const {
  std::vector<TraceRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // Ring full: oldest record is at next_.
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(next_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(next_));
  }
  return out;
}

std::string Tracer::dump() const {
  std::ostringstream os;
  for (const TraceRecord& r : snapshot()) {
    os << std::fixed << std::setprecision(3) << std::setw(12)
       << toUsec(r.time) << "us  [" << std::setw(11) << toString(r.category)
       << "] n" << r.component << "  " << r.message << '\n';
  }
  return os.str();
}

void Tracer::clear() {
  ring_.clear();
  next_ = 0;
  total_ = 0;
  digest_ = 0xcbf29ce484222325ull;
}

}  // namespace vibe::sim
