#include "simcore/trace.hpp"

#include <iomanip>
#include <sstream>

namespace vibe::sim {

const char* toString(TraceCategory c) {
  switch (c) {
    case TraceCategory::Engine: return "engine";
    case TraceCategory::Process: return "process";
    case TraceCategory::Doorbell: return "doorbell";
    case TraceCategory::Dma: return "dma";
    case TraceCategory::Wire: return "wire";
    case TraceCategory::Rx: return "rx";
    case TraceCategory::Completion: return "completion";
    case TraceCategory::Reliability: return "reliability";
    case TraceCategory::Connection: return "connection";
    case TraceCategory::Translation: return "translation";
    case TraceCategory::User: return "user";
    case TraceCategory::kCount: break;
  }
  return "?";
}

Tracer::Tracer(std::size_t capacity) : capacity_(capacity) {
  ring_.reserve(capacity_);
}

void Tracer::enableAll() {
  for (auto& e : enabled_) e = true;
}

void Tracer::record(SimTime time, TraceCategory c, std::uint32_t component,
                    std::string message) {
  if (!enabled(c)) return;
  ++total_;
  TraceRecord rec{time, c, component, std::move(message)};
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(rec));
  } else {
    ring_[next_] = std::move(rec);
  }
  next_ = (next_ + 1) % capacity_;
}

std::vector<TraceRecord> Tracer::snapshot() const {
  std::vector<TraceRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // Ring full: oldest record is at next_.
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(next_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(next_));
  }
  return out;
}

std::string Tracer::dump() const {
  std::ostringstream os;
  for (const TraceRecord& r : snapshot()) {
    os << std::fixed << std::setprecision(3) << std::setw(12)
       << toUsec(r.time) << "us  [" << std::setw(11) << toString(r.category)
       << "] n" << r.component << "  " << r.message << '\n';
  }
  return os.str();
}

void Tracer::clear() {
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

}  // namespace vibe::sim
