#include "simcore/stats.hpp"

#include <algorithm>
#include <cmath>

namespace vibe::sim {

void Accumulator::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

void Accumulator::merge(const Accumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

QuantileTracker::QuantileTracker(std::size_t expected) {
  samples_.reserve(expected);
}

void QuantileTracker::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

double QuantileTracker::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

}  // namespace vibe::sim
