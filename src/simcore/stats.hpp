// Streaming statistics used by micro-benchmarks and device models.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vibe::sim {

/// Welford-style streaming accumulator: count / min / max / mean / stddev.
/// Numerically stable for the long sample streams the bandwidth tests emit.
class Accumulator {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;

  /// Merges another accumulator into this one (parallel-combine form).
  void merge(const Accumulator& other);

 private:
  std::size_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Reservoir of samples with exact quantiles. Micro-benchmark iteration
/// counts are bounded (<= a few hundred thousand), so storing samples and
/// sorting on demand is simpler and exact compared to a sketch.
class QuantileTracker {
 public:
  explicit QuantileTracker(std::size_t expected = 0);

  void add(double x);
  std::size_t count() const { return samples_.size(); }

  /// Exact q-quantile (q in [0,1]) by linear interpolation; 0 when empty.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Combined accumulator + quantiles, the standard per-metric recorder.
class MetricSeries {
 public:
  void add(double x) {
    acc_.add(x);
    quants_.add(x);
  }
  const Accumulator& summary() const { return acc_; }
  const QuantileTracker& quantiles() const { return quants_; }

 private:
  Accumulator acc_;
  QuantileTracker quants_;
};

}  // namespace vibe::sim
