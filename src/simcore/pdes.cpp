#include "simcore/pdes.hpp"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <string>
#include <thread>
#include <utility>

namespace vibe::sim {

namespace {

constexpr SimTime kNoEvent = std::numeric_limits<SimTime>::max();
constexpr SimTime kMaxTime = std::numeric_limits<SimTime>::max();

constexpr SimTime satAdd(SimTime t, Duration d) {
  return t > kMaxTime - d ? kMaxTime : t + d;
}

std::uint64_t wallNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Execution context of the current thread: which engine/domain the event
// being executed belongs to. post()/send() use it to reject cross-domain
// scheduling that would make execution order depend on the shard packing.
thread_local const ShardedEngine* tlEngine = nullptr;
thread_local std::uint32_t tlDomain = 0;

}  // namespace

unsigned shardCount() {
  if (const char* env = std::getenv("VIBE_SIM_SHARDS")) {
    char* end = nullptr;
    const long n = std::strtol(env, &end, 10);
    if (end != env && n > 0) return static_cast<unsigned>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

/// One heap entry: the deterministic (time, srcDomain, seq) key plus the
/// slot its callback lives in. 24 bytes of POD; callbacks stay put in the
/// domain's pool while the heap shuffles keys.
struct Item {
  SimTime time;
  std::uint64_t seq;
  std::uint32_t srcDomain;
  std::uint32_t slot;
};

struct ShardedEngine::ItemAfter {
  // std::*_heap build a max-heap; invert for earliest-key-first.
  bool operator()(const Item& a, const Item& b) const {
    if (a.time != b.time) return a.time > b.time;
    if (a.srcDomain != b.srcDomain) return a.srcDomain > b.srcDomain;
    return a.seq > b.seq;
  }
};

/// A cross-domain event parked in its source shard's outbox until the
/// window barrier merges it into the destination heap.
struct ShardedEngine::CrossMsg {
  SimTime time;
  std::uint64_t seq;
  std::uint32_t srcDomain;
  std::uint32_t dstDomain;
  EventFn fn;
};

namespace {

/// Hosted-mode outbox entry: an absolute-time arrival bound for a foreign
/// hosted engine. No (srcDomain, seq) key — a hosted engine orders ties by
/// its own insertion sequence, which is why the merge must always run in
/// domain order at the barrier (see deliverOutboxes).
struct HostedMsg {
  SimTime time;
  std::uint32_t dstDomain;
  EventFn fn;
};

}  // namespace

/// Per-domain state. Cache-line aligned: during a parallel window each
/// shard hammers only its own domains' counters and heaps.
struct alignas(64) ShardedEngine::Domain {
  std::vector<Item> heap;
  std::vector<EventFn> pool;
  std::vector<std::uint32_t> freeSlots;
  // Outbox for cross-shard sends originating here; drained at the window
  // barrier by the completion step. Per-domain (not per-shard) so two
  // domains on one shard never interleave their messages — the merge
  // order is irrelevant to the key-ordered heaps, but keeping ownership
  // strictly per-domain keeps every write single-writer.
  std::vector<CrossMsg> outbox;
  std::vector<HostedMsg> hostedOutbox;
  std::uint64_t nextSeq = 1;
  SimTime now = 0;
  std::uint64_t executed = 0;
  std::uint64_t crossDomain = 0;
  std::uint64_t crossShard = 0;
  // Key of the last executed event: the engine's own window-safety net.
  SimTime lastTime = -1;
  std::uint64_t lastSeq = 0;
  std::uint32_t lastSrc = 0;

  std::uint32_t allocSlot(EventFn fn) {
    if (!freeSlots.empty()) {
      const std::uint32_t s = freeSlots.back();
      freeSlots.pop_back();
      pool[s] = std::move(fn);
      return s;
    }
    pool.push_back(std::move(fn));
    return static_cast<std::uint32_t>(pool.size() - 1);
  }
};

ShardedEngine::ShardedEngine(const EngineConfig& cfg)
    : domainCountU32_(cfg.domains), lookahead_(cfg.lookahead) {
  if (cfg.domains == 0) {
    throw SimError("ShardedEngine: at least one domain is required");
  }
  if (cfg.lookahead < 0) {
    throw SimError("ShardedEngine: lookahead must be >= 0");
  }
  unsigned shards = cfg.shards != 0 ? cfg.shards : shardCount();
  if (shards > cfg.domains) shards = cfg.domains;
  shards_ = shards;
  if (shards_ > 1 && lookahead_ <= 0) {
    throw SimError(
        "ShardedEngine: conservative PDES needs lookahead > 0 to run more "
        "than one shard (no cross-shard latency means no safe window)");
  }
  domains_.resize(cfg.domains);
  runnable_.resize(shards_);
  dirtyByShard_.resize(shards_);
  hosted_ = cfg.hostEngines;
  if (hosted_) {
    engines_.reserve(cfg.domains);
    for (std::uint32_t d = 0; d < cfg.domains; ++d) {
      engines_.push_back(std::make_unique<Engine>());
    }
  }
}

ShardedEngine::~ShardedEngine() = default;

SimTime ShardedEngine::now(std::uint32_t domain) const {
  if (domain >= domainCountU32_) {
    throw SimError("ShardedEngine::now: domain " + std::to_string(domain) +
                   " out of range [0, " + std::to_string(domainCountU32_) +
                   ")");
  }
  return hosted_ ? engines_[domain]->now() : domains_[domain].now;
}

Engine& ShardedEngine::domainEngine(std::uint32_t domain) {
  if (!hosted_) {
    throw SimError(
        "ShardedEngine::domainEngine: engine was not constructed with "
        "EngineConfig::hostEngines");
  }
  if (domain >= domainCountU32_) {
    throw SimError("ShardedEngine::domainEngine: domain " +
                   std::to_string(domain) + " out of range [0, " +
                   std::to_string(domainCountU32_) + ")");
  }
  return *engines_[domain];
}

void ShardedEngine::sendAt(std::uint32_t src, std::uint32_t dst, SimTime at,
                           EventFn fn) {
  if (!hosted_) {
    throw SimError(
        "ShardedEngine::sendAt: hosted mode only; synthetic models use "
        "send()");
  }
  if (!fn) throw SimError("ShardedEngine::sendAt: null callable");
  if (src >= domainCountU32_ || dst >= domainCountU32_) {
    throw SimError("ShardedEngine::sendAt: domain out of range [0, " +
                   std::to_string(domainCountU32_) + ")");
  }
  if (src == dst) {
    engines_[src]->postAt(at, std::move(fn));
    return;
  }
  Domain& from = domains_[src];
  ++from.crossDomain;
  if (shardOf(src) != shardOf(dst)) ++from.crossShard;
  if (!running_) {
    // Setup phase, single driving thread: schedule directly.
    engines_[dst]->postAt(at, std::move(fn));
    return;
  }
  if (at < windowEnd_) {
    throw SimError(
        "ShardedEngine::sendAt: cross-domain arrival at t=" +
        std::to_string(at) + " ns lands inside the open window ending at " +
        std::to_string(windowEnd_) +
        " ns; the sender must pay the conservative lookahead");
  }
  // Always the outbox during a run — even same-shard — so the merge order
  // (and with it the destination engine's insertion-sequence tie order)
  // is a pure function of domain numbering, not of shard packing.
  if (from.hostedOutbox.empty()) markOutboxDirty(src);
  from.hostedOutbox.push_back(HostedMsg{at, dst, std::move(fn)});
}

void ShardedEngine::setBoundaryHook(Duration period,
                                    std::function<void(SimTime)> flush) {
  if (running_) {
    throw SimError("ShardedEngine::setBoundaryHook: engine is running");
  }
  if (!hosted_) {
    throw SimError("ShardedEngine::setBoundaryHook: hosted mode only");
  }
  if (flush && period <= 0) {
    throw SimError("ShardedEngine::setBoundaryHook: period must be > 0");
  }
  boundaryPeriod_ = flush ? period : 0;
  boundaryFlush_ = std::move(flush);
}

SimTime ShardedEngine::maxNow() const {
  SimTime t = 0;
  if (hosted_) {
    for (const auto& e : engines_) t = std::max(t, e->now());
  } else {
    for (const Domain& dom : domains_) t = std::max(t, dom.now);
  }
  return t;
}

void ShardedEngine::checkContext(std::uint32_t domain,
                                 const char* what) const {
  if (!running_) return;  // setup/teardown from the driving thread
  if (tlEngine != this || tlDomain != domain) {
    throw SimError(std::string(what) +
                   ": called for domain " + std::to_string(domain) +
                   " from outside that domain's execution context; "
                   "cross-domain scheduling must use send() so ordering "
                   "stays independent of the shard count");
  }
}

void ShardedEngine::pushEvent(Domain& dom, SimTime t, std::uint32_t srcDomain,
                              std::uint64_t seq, EventFn fn) {
  const std::uint32_t slot = dom.allocSlot(std::move(fn));
  dom.heap.push_back(Item{t, seq, srcDomain, slot});
  std::push_heap(dom.heap.begin(), dom.heap.end(), ItemAfter{});
}

void ShardedEngine::post(std::uint32_t domain, Duration delay, EventFn fn) {
  if (hosted_) {
    throw SimError(
        "ShardedEngine::post: hosted mode schedules on domainEngine() "
        "directly (sendAt() for cross-domain)");
  }
  if (!fn) throw SimError("ShardedEngine::post: null callable");
  if (delay < 0) throw SimError("ShardedEngine::post: negative delay");
  if (domain >= domainCountU32_) {
    throw SimError("ShardedEngine::post: domain " + std::to_string(domain) +
                   " out of range [0, " + std::to_string(domainCountU32_) +
                   ")");
  }
  checkContext(domain, "ShardedEngine::post");
  Domain& dom = domains_[domain];
  pushEvent(dom, satAdd(dom.now, delay), domain, dom.nextSeq++,
            std::move(fn));
}

void ShardedEngine::send(std::uint32_t src, std::uint32_t dst, Duration delay,
                         EventFn fn) {
  if (hosted_) {
    throw SimError(
        "ShardedEngine::send: hosted mode uses sendAt() with an absolute "
        "arrival time");
  }
  if (src == dst) {
    post(src, delay, std::move(fn));
    return;
  }
  if (!fn) throw SimError("ShardedEngine::send: null callable");
  if (src >= domainCountU32_ || dst >= domainCountU32_) {
    throw SimError("ShardedEngine::send: domain out of range [0, " +
                   std::to_string(domainCountU32_) + ")");
  }
  if (delay < lookahead_) {
    throw SimError(
        "ShardedEngine::send: cross-domain delay " + std::to_string(delay) +
        " ns is below the lookahead window of " +
        std::to_string(lookahead_) +
        " ns; a conservative shard may already have executed past it");
  }
  checkContext(src, "ShardedEngine::send");
  Domain& from = domains_[src];
  const SimTime t = satAdd(from.now, delay);
  const std::uint64_t seq = from.nextSeq++;
  ++from.crossDomain;
  if (shardOf(src) != shardOf(dst)) {
    ++from.crossShard;
    if (running_) {
      // Parked until the window barrier: the destination heap belongs to
      // another shard mid-window.
      if (from.outbox.empty()) markOutboxDirty(src);
      from.outbox.push_back(CrossMsg{t, seq, src, dst, std::move(fn)});
      return;
    }
  }
  // Same shard (the owner may touch both heaps) or setup phase (single
  // driving thread): deliver immediately. The heap's total key order
  // makes immediate and barrier-time insertion indistinguishable.
  pushEvent(domains_[dst], t, src, seq, std::move(fn));
  pushRunnable(dst, t);
}

SimTime ShardedEngine::nextEventTime() const {
  SimTime t = kNoEvent;
  for (const Domain& dom : domains_) {
    if (!dom.heap.empty()) t = std::min(t, dom.heap.front().time);
  }
  return t;
}

SimTime ShardedEngine::hostedNextEventTime() {
  SimTime t = kNoEvent;
  for (const auto& e : engines_) t = std::min(t, e->nextEventTime());
  return t;
}

SimTime ShardedEngine::clampToBoundary(SimTime t, SimTime windowEnd) const {
  if (boundaryPeriod_ <= 0) return windowEnd;
  // The smallest grid multiple strictly greater than t: the window may
  // touch a sampling boundary only at its end, so the boundary flush at
  // the next window start sees every event before it and none at/after.
  const SimTime next =
      satAdd((t / boundaryPeriod_) * boundaryPeriod_, boundaryPeriod_);
  return std::min(windowEnd, next);
}

std::uint64_t ShardedEngine::execDomainWindow(std::uint32_t d,
                                              SimTime windowEnd) {
  if (!hosted_) return runDomainWindow(d, windowEnd);
  Domain& dom = domains_[d];
  const std::uint64_t n = engines_[d]->runWindow(windowEnd);
  // Mirror the hosted engine's progress into the domain bookkeeping so
  // profiling/introspection (shardProfiles, loadImbalance) keep working.
  dom.executed += n;
  dom.now = engines_[d]->now();
  return n;
}

void ShardedEngine::setHostedWindowedMode(bool on) {
  for (const auto& e : engines_) e->setWindowedMode(on);
}

void ShardedEngine::checkHostedDeadlock() const {
  std::string stuck;
  for (const auto& e : engines_) {
    const std::string names = e->blockedProcessNames();
    if (names.empty()) continue;
    if (!stuck.empty()) stuck += ", ";
    stuck += names;
  }
  if (!stuck.empty()) {
    throw DeadlockError(
        "simulation deadlock: event queues empty but processes blocked: " +
        stuck);
  }
}

std::uint64_t ShardedEngine::runDomainWindow(std::uint32_t d,
                                             SimTime windowEnd) {
  Domain& dom = domains_[d];
  if (dom.heap.empty() || dom.heap.front().time >= windowEnd) return 0;
  const std::uint64_t executedBefore = dom.executed;
  const ShardedEngine* prevEngine = tlEngine;
  const std::uint32_t prevDomain = tlDomain;
  tlEngine = this;
  tlDomain = d;
  while (!dom.heap.empty() && dom.heap.front().time < windowEnd) {
    std::pop_heap(dom.heap.begin(), dom.heap.end(), ItemAfter{});
    const Item it = dom.heap.back();
    dom.heap.pop_back();
    // Window-safety net: keys must execute in strictly ascending order.
    // A violation means a cross-domain event arrived behind the window —
    // impossible while send() enforces the lookahead, but cheap to keep
    // armed.
    if (it.time < dom.lastTime ||
        (it.time == dom.lastTime &&
         (it.srcDomain < dom.lastSrc ||
          (it.srcDomain == dom.lastSrc && it.seq <= dom.lastSeq)))) {
      tlEngine = prevEngine;
      tlDomain = prevDomain;
      throw SimError("ShardedEngine: window safety violated in domain " +
                     std::to_string(d) + " at t=" + std::to_string(it.time));
    }
    dom.lastTime = it.time;
    dom.lastSrc = it.srcDomain;
    dom.lastSeq = it.seq;
    dom.now = it.time;
    ++dom.executed;
    EventFn fn = std::move(dom.pool[it.slot]);
    dom.freeSlots.push_back(it.slot);
    try {
      fn();
    } catch (...) {
      tlEngine = prevEngine;
      tlDomain = prevDomain;
      throw;
    }
  }
  tlEngine = prevEngine;
  tlDomain = prevDomain;
  return dom.executed - executedBefore;
}

void ShardedEngine::markOutboxDirty(std::uint32_t src) {
  dirtyByShard_[shardOf(src)].push_back(src);
}

/// Earliest pending event time of one domain. Called only by the owning
/// shard (its runnable pass) or the single driving thread.
SimTime ShardedEngine::domainNextTime(std::uint32_t d) {
  if (hosted_) return engines_[d]->nextEventTime();
  const Domain& dom = domains_[d];
  return dom.heap.empty() ? kNoEvent : dom.heap.front().time;
}

void ShardedEngine::initRunnable() {
  for (auto& h : runnable_) h.clear();
  domKey_.assign(domainCountU32_, kNoEvent);
  runnableActive_ = true;
  for (std::uint32_t d = 0; d < domainCountU32_; ++d) {
    const SimTime t = domainNextTime(d);
    if (t != kNoEvent) pushRunnable(d, t);
  }
}

/// File domain d under key t in its owner's heap. Only the owning worker
/// (same-shard deliveries, post-run re-file) or the single-threaded
/// merge step may call this for a given d.
void ShardedEngine::pushRunnable(std::uint32_t d, SimTime t) {
  if (!runnableActive_) return;
  if (t >= domKey_[d]) return;  // an entry at or below t is already filed
  domKey_[d] = t;
  auto& h = runnable_[shardOf(d)];
  h.emplace_back(t, d);
  std::push_heap(h.begin(), h.end(), std::greater<>{});
}

SimTime ShardedEngine::runnableTop(unsigned shard) const {
  const auto& h = runnable_[shard];
  return h.empty() ? kNoEvent : h.front().first;
}

/// One shard's window, heap-driven: pop every owned domain filed below
/// windowEnd, re-check its real next-event time (entries may be stale),
/// run the live ones, and re-file. Mid-window arrivals land at or past
/// windowEnd (the lookahead contract), so each domain runs its whole
/// window on the first live pop.
std::uint64_t ShardedEngine::execShardWindow(unsigned shard,
                                             SimTime windowEnd) {
  std::uint64_t executed = 0;
  auto& h = runnable_[shard];
  while (!h.empty() && h.front().first < windowEnd) {
    std::pop_heap(h.begin(), h.end(), std::greater<>{});
    const auto [t, d] = h.back();
    h.pop_back();
    if (t != domKey_[d]) continue;  // superseded duplicate
    domKey_[d] = kNoEvent;
    const SimTime actual = domainNextTime(d);
    if (actual == kNoEvent) continue;
    if (actual >= windowEnd) {  // stale-low (e.g. a cancelled timer)
      pushRunnable(d, actual);
      continue;
    }
    executed += execDomainWindow(d, windowEnd);
    const SimTime after = domainNextTime(d);
    if (after != kNoEvent) pushRunnable(d, after);
  }
  return executed;
}

void ShardedEngine::deliverOutboxes() {
  // Gather the domains that actually parked messages (the sort restores
  // the global domain order) instead of scanning every outbox — at
  // thousands of mostly-idle domains per window the full scan is pure
  // serial overhead.
  dirtyScratch_.clear();
  for (std::vector<std::uint32_t>& v : dirtyByShard_) {
    dirtyScratch_.insert(dirtyScratch_.end(), v.begin(), v.end());
    v.clear();
  }
  std::sort(dirtyScratch_.begin(), dirtyScratch_.end());
  if (hosted_) {
    // Drain in domain order, entries in send order: the destination
    // engines' insertion sequences — their tie order — become a pure
    // function of the simulation, independent of shard count.
    for (std::uint32_t d : dirtyScratch_) {
      Domain& src = domains_[d];
      for (HostedMsg& m : src.hostedOutbox) {
        engines_[m.dstDomain]->postAtMerge(m.time, std::move(m.fn));
        pushRunnable(m.dstDomain, m.time);
      }
      src.hostedOutbox.clear();
    }
    return;
  }
  for (std::uint32_t d : dirtyScratch_) {
    Domain& src = domains_[d];
    for (CrossMsg& m : src.outbox) {
      pushEvent(domains_[m.dstDomain], m.time, m.srcDomain, m.seq,
                std::move(m.fn));
      pushRunnable(m.dstDomain, m.time);
    }
    src.outbox.clear();
  }
}

bool ShardedEngine::runWindows(SimTime horizon) {
  // The boundary-flush hook may post events between windows, behind the
  // runnable heaps — fall back to full scans while one is installed.
  const bool lazy = !(hosted_ && boundaryFlush_);
  if (lazy) initRunnable();
  for (;;) {
    const SimTime t = lazy ? runnableTop(0)
                           : (hosted_ ? hostedNextEventTime()
                                      : nextEventTime());
    if (t == kNoEvent) return true;
    if (t > horizon) return false;
    Duration eff = lookahead_ > 0 ? lookahead_ : 1;
    // A single hosted domain has no cross-domain constraint: one window
    // runs the whole horizon, degenerating to the serial engine.
    if (hosted_ && domainCountU32_ == 1) eff = kMaxTime;
    SimTime windowEnd = std::min(satAdd(t, eff), satAdd(horizon, 1));
    windowEnd = clampToBoundary(t, windowEnd);
    if (hosted_ && boundaryFlush_) boundaryFlush_(t);
    windowEnd_ = windowEnd;  // sendAt's conservative check reads this
    const std::uint64_t w0 = profiling_ ? wallNowNs() : 0;
    std::uint64_t executed = 0;
    if (lazy) {
      executed = execShardWindow(0, windowEnd);
    } else {
      for (std::uint32_t d = 0; d < domainCountU32_; ++d) {
        executed += execDomainWindow(d, windowEnd);
      }
    }
    if (profiling_) {
      timing_[0].execNs += wallNowNs() - w0;
      if (executed > 0) ++timing_[0].windowsActive;
    }
    deliverOutboxes();
    ++windows_;
  }
}

bool ShardedEngine::runWindowsParallel(SimTime horizon) {
  horizon_ = horizon;
  drained_ = false;
  done_ = false;
  abort_.store(false, std::memory_order_relaxed);
  shardErrors_.assign(shards_, nullptr);

  // See runWindows: a boundary-flush hook posts behind the heaps.
  const bool lazy = !(hosted_ && boundaryFlush_);
  if (lazy) initRunnable();

  auto prepareWindow = [this, lazy]() {
    if (abort_.load(std::memory_order_relaxed)) {
      done_ = true;
      return;
    }
    SimTime t;
    if (lazy) {
      // O(shards) reduce over the heap tops — replaces the serial
      // O(domains) rescan that dominated thin windows.
      t = kNoEvent;
      for (unsigned s = 0; s < shards_; ++s) {
        t = std::min(t, runnableTop(s));
      }
    } else {
      t = hosted_ ? hostedNextEventTime() : nextEventTime();
    }
    if (t == kNoEvent) {
      drained_ = true;
      done_ = true;
      return;
    }
    if (t > horizon_) {
      done_ = true;
      return;
    }
    SimTime windowEnd = std::min(satAdd(t, lookahead_), satAdd(horizon_, 1));
    windowEnd = clampToBoundary(t, windowEnd);
    // Boundary flush runs here, in the single-threaded completion step:
    // every worker is parked at the barrier, so the hook may read any
    // domain's state race-free.
    if (hosted_ && boundaryFlush_) boundaryFlush_(t);
    windowEnd_ = windowEnd;
  };

  prepareWindow();
  if (!done_) {
    // Completion step: runs on exactly one thread between a window's last
    // arrival and anyone's release, so the merge and the next window
    // bounds need no locks — the barrier's happens-before edges carry
    // them to every worker.
    auto onWindowDone = [this, &prepareWindow]() noexcept {
      ++windows_;
      try {
        deliverOutboxes();
        prepareWindow();
      } catch (...) {
        // Merge/hook failure (e.g. a throwing boundary flush): surface it
        // like a shard-0 event failure and wind the pool down.
        if (!shardErrors_[0]) shardErrors_[0] = std::current_exception();
        abort_.store(true, std::memory_order_relaxed);
        done_ = true;
      }
    };
    std::barrier sync(static_cast<std::ptrdiff_t>(shards_),
                      std::move(onWindowDone));
    auto worker = [this, &sync, lazy](unsigned shard) {
      while (!done_) {
        if (!abort_.load(std::memory_order_relaxed)) {
          try {
            const std::uint64_t w0 = profiling_ ? wallNowNs() : 0;
            std::uint64_t executed = 0;
            if (lazy) {
              executed = execShardWindow(shard, windowEnd_);
            } else {
              for (std::uint32_t d = shard; d < domainCountU32_;
                   d += shards_) {
                executed += execDomainWindow(d, windowEnd_);
              }
            }
            if (profiling_) {
              timing_[shard].execNs += wallNowNs() - w0;
              if (executed > 0) ++timing_[shard].windowsActive;
            }
          } catch (...) {
            shardErrors_[shard] = std::current_exception();
            abort_.store(true, std::memory_order_relaxed);
          }
        }
        const std::uint64_t b0 = profiling_ ? wallNowNs() : 0;
        sync.arrive_and_wait();
        if (profiling_) timing_[shard].barrierWaitNs += wallNowNs() - b0;
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(shards_);
    for (unsigned s = 0; s < shards_; ++s) pool.emplace_back(worker, s);
    for (std::thread& th : pool) th.join();
  }

  // Failure reports are schedule-independent: the lowest shard's
  // exception wins, like the sweep harness's lowest-index rule.
  for (unsigned s = 0; s < shards_; ++s) {
    if (shardErrors_[s]) std::rethrow_exception(shardErrors_[s]);
  }
  return drained_;
}

bool ShardedEngine::runDispatch(SimTime horizon) {
  setHostedWindowedMode(true);
  bool drained = false;
  try {
    drained =
        shards_ <= 1 ? runWindows(horizon) : runWindowsParallel(horizon);
  } catch (...) {
    runnableActive_ = false;  // setup-phase sends bypass the heaps
    setHostedWindowedMode(false);
    throw;
  }
  runnableActive_ = false;
  setHostedWindowedMode(false);
  return drained;
}

void ShardedEngine::run() {
  if (running_) throw SimError("ShardedEngine::run entered recursively");
  running_ = true;
  try {
    runDispatch(kMaxTime);
  } catch (...) {
    running_ = false;
    throw;
  }
  running_ = false;
  // Global drain-time deadlock check: every hosted queue and outbox is
  // empty, so a blocked process can never be signalled again.
  if (hosted_) checkHostedDeadlock();
}

bool ShardedEngine::runUntil(SimTime until) {
  if (running_) throw SimError("ShardedEngine::runUntil entered recursively");
  running_ = true;
  bool drained = false;
  try {
    drained = runDispatch(until);
  } catch (...) {
    running_ = false;
    throw;
  }
  running_ = false;
  for (Domain& dom : domains_) dom.now = std::max(dom.now, until);
  if (hosted_) {
    for (const auto& e : engines_) e->advanceTo(until);
    if (drained) checkHostedDeadlock();
  }
  return drained;
}

std::uint64_t ShardedEngine::executedEvents() const {
  std::uint64_t n = 0;
  if (hosted_) {
    for (const auto& e : engines_) n += e->executedEvents();
    return n;
  }
  for (const Domain& dom : domains_) n += dom.executed;
  return n;
}

std::uint64_t ShardedEngine::pendingEvents() const {
  std::uint64_t n = 0;
  if (hosted_) {
    for (const auto& e : engines_) n += e->pendingEvents();
    for (const Domain& dom : domains_) n += dom.hostedOutbox.size();
    return n;
  }
  for (const Domain& dom : domains_) {
    n += dom.heap.size() + dom.outbox.size();
  }
  return n;
}

std::uint64_t ShardedEngine::crossDomainEvents() const {
  std::uint64_t n = 0;
  for (const Domain& dom : domains_) n += dom.crossDomain;
  return n;
}

std::uint64_t ShardedEngine::crossShardEvents() const {
  std::uint64_t n = 0;
  for (const Domain& dom : domains_) n += dom.crossShard;
  return n;
}

void ShardedEngine::setProfiling(bool on) {
  if (running_) {
    throw SimError("ShardedEngine::setProfiling: engine is running");
  }
  profiling_ = on;
  if (on && timing_.size() != shards_) {
    timing_.assign(shards_, ShardTiming{});
  }
}

std::vector<ShardProfile> ShardedEngine::shardProfiles() const {
  std::vector<ShardProfile> out(shards_);
  for (unsigned s = 0; s < shards_; ++s) {
    out[s].shard = s;
    if (s < timing_.size()) {
      out[s].execNs = timing_[s].execNs;
      out[s].barrierWaitNs = timing_[s].barrierWaitNs;
      out[s].windowsActive = timing_[s].windowsActive;
    }
  }
  for (std::uint32_t d = 0; d < domainCountU32_; ++d) {
    ShardProfile& p = out[shardOf(d)];
    ++p.domains;
    p.events += domains_[d].executed;
    p.crossShardSent += domains_[d].crossShard;
  }
  return out;
}

double ShardedEngine::loadImbalance() const {
  std::uint64_t maxEv = 0;
  std::uint64_t total = 0;
  std::vector<std::uint64_t> perShard(shards_, 0);
  for (std::uint32_t d = 0; d < domainCountU32_; ++d) {
    perShard[shardOf(d)] += domains_[d].executed;
  }
  for (const std::uint64_t ev : perShard) {
    maxEv = std::max(maxEv, ev);
    total += ev;
  }
  if (total == 0) return 1.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(shards_);
  return static_cast<double>(maxEv) / mean;
}

}  // namespace vibe::sim
