// FIFO service resources for pipeline modelling.
//
// NIC processors, DMA engines, and link transmitters serve work items one
// at a time in arrival order. Instead of simulating each service slot as an
// event, a Resource tracks when it next becomes free: a work item that is
// ready at time R and needs service S completes at max(free, R) + S. This
// gives exact FIFO queueing/pipelining semantics — streaming bandwidth
// emerges from the bottleneck stage — with O(1) work per item.
#pragma once

#include <algorithm>
#include <string>

#include "simcore/time.hpp"

namespace vibe::sim {

class Resource {
 public:
  explicit Resource(std::string name) : name_(std::move(name)) {}

  /// Serves one item that becomes ready at `ready` and needs `service`
  /// time. Returns the completion time.
  SimTime acquire(SimTime ready, Duration service) {
    const SimTime start = std::max(freeAt_, ready);
    freeAt_ = start + service;
    busy_ += service;
    ++served_;
    return freeAt_;
  }

  /// When the resource next becomes idle.
  SimTime freeAt() const { return freeAt_; }

  /// Total service time delivered (for utilization reporting).
  Duration busyTime() const { return busy_; }
  std::uint64_t itemsServed() const { return served_; }
  const std::string& name() const { return name_; }

  /// Forgets queued work; used when a benchmark phase resets the cluster.
  void reset(SimTime at = 0) {
    freeAt_ = at;
    busy_ = 0;
    served_ = 0;
  }

 private:
  std::string name_;
  SimTime freeAt_ = 0;
  Duration busy_ = 0;
  std::uint64_t served_ = 0;
};

}  // namespace vibe::sim
