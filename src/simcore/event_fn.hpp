// Move-only callable holder for engine events.
//
// std::function requires copyability, which forced every payload-carrying
// callback (e.g. a fabric::Packet in flight between switch hops) through a
// shared_ptr indirection just to satisfy the type system. EventFn accepts
// move-only lambdas directly: small captures (<= kInlineBytes) live inline
// with zero heap traffic, larger ones cost exactly one allocation.
#pragma once

#include <cstddef>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>

namespace vibe::sim {

class EventFn {
 public:
  /// Captures up to this many bytes are stored inline (no allocation).
  static constexpr std::size_t kInlineBytes = 56;

  EventFn() noexcept = default;
  EventFn(std::nullptr_t) noexcept {}

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (std::is_same_v<D, std::function<void()>>) {
      // A null std::function must convert to an *empty* EventFn so the
      // engine can reject it at post time instead of exploding at fire time.
      if (!f) return;
    }
    if constexpr (sizeof(D) <= kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &InlineOps<D>::ops;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &HeapOps<D>::ops;
    }
  }

  EventFn(EventFn&& other) noexcept { moveFrom(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      moveFrom(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->call(storage_); }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*call)(void*);
    void (*destroy)(void*) noexcept;
    // Move-construct into dst from src, then destroy src.
    void (*relocate)(void* src, void* dst) noexcept;
  };

  template <typename D>
  struct InlineOps {
    static void call(void* s) { (*static_cast<D*>(s))(); }
    static void destroy(void* s) noexcept { static_cast<D*>(s)->~D(); }
    static void relocate(void* src, void* dst) noexcept {
      ::new (dst) D(std::move(*static_cast<D*>(src)));
      static_cast<D*>(src)->~D();
    }
    static constexpr Ops ops{&call, &destroy, &relocate};
  };

  template <typename D>
  struct HeapOps {
    static D* ptr(void* s) noexcept { return *static_cast<D**>(s); }
    static void call(void* s) { (*ptr(s))(); }
    static void destroy(void* s) noexcept { delete ptr(s); }
    static void relocate(void* src, void* dst) noexcept {
      ::new (dst) D*(ptr(src));
    }
    static constexpr Ops ops{&call, &destroy, &relocate};
  };

  void moveFrom(EventFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace vibe::sim
