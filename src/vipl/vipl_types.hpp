// VIPL type definitions, following the VIA 1.0 Provider Library spec
// (return codes, descriptor layout with Control/Data/Address segments, VI
// attributes, network addresses).
//
// Deviation from the spec, by design: descriptors are host C++ objects
// rather than structures living in registered memory — the registration
// requirement is enforced for data buffers, which is what the simulated
// NICs actually touch. See DESIGN.md §"Substitutions".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fabric/packet.hpp"
#include "mem/memory_registry.hpp"
#include "nic/work.hpp"

namespace vibe::vipl {

/// VIPL return codes (subset of the spec's VIP_RETURN values that have
/// observable behaviour in this implementation).
enum class VipResult : std::uint8_t {
  VIP_SUCCESS,
  VIP_NOT_DONE,
  VIP_INVALID_PARAMETER,
  VIP_ERROR_RESOURCE,
  VIP_TIMEOUT,
  VIP_REJECT,
  VIP_INVALID_RELIABILITY_LEVEL,
  VIP_INVALID_MTU,
  VIP_INVALID_PTAG,
  VIP_INVALID_RDMAREAD,
  VIP_DESCRIPTOR_ERROR,
  VIP_INVALID_STATE,
  VIP_NO_MATCH,
  VIP_NOT_REACHABLE,
  VIP_ERROR_NOT_SUPPORTED,
  VIP_PROTECTION_ERROR,
  VIP_ERROR_NAMESERVICE,
};

const char* toString(VipResult r);

/// VI endpoint states (spec §2.3).
enum class ViState : std::uint8_t {
  Idle,
  PendingConnect,
  Connected,
  Disconnected,
  Error,
};

const char* toString(ViState s);

/// Control-segment operation/flag bits.
inline constexpr std::uint16_t VIP_CONTROL_OP_SENDRECV = 0x0;
inline constexpr std::uint16_t VIP_CONTROL_OP_RDMAWRITE = 0x1;
inline constexpr std::uint16_t VIP_CONTROL_OP_RDMAREAD = 0x2;
inline constexpr std::uint16_t VIP_CONTROL_OP_MASK = 0x3;
inline constexpr std::uint16_t VIP_CONTROL_IMMEDIATE = 0x4;

/// Completion status written back into the control segment.
struct VipDescStatus {
  bool done = false;
  nic::WorkStatus error = nic::WorkStatus::Ok;
  bool ok() const { return done && error == nic::WorkStatus::Ok; }
};

/// Control Segment: one per descriptor (spec §3.2).
struct VipControlSegment {
  std::uint16_t control = VIP_CONTROL_OP_SENDRECV;
  std::uint16_t segCount = 0;
  std::uint32_t length = 0;         // on completion: bytes transferred
  std::uint32_t immediateData = 0;  // valid when VIP_CONTROL_IMMEDIATE set
  VipDescStatus status;
};

/// Data Segment: one registered-buffer range (spec §3.2).
struct VipDataSegment {
  mem::VirtAddr data = 0;
  mem::MemHandle handle = 0;
  std::uint32_t length = 0;
};

/// Address Segment: remote buffer for RDMA operations.
struct VipAddressSegment {
  mem::VirtAddr data = 0;
  mem::MemHandle handle = 0;
};

/// A VIA descriptor: control segment, optional address segment, and zero
/// or more data segments.
struct VipDescriptor {
  VipControlSegment cs;
  VipAddressSegment as;
  std::vector<VipDataSegment> ds;

  /// Provider diagnostic: host-kernel nanoseconds spent completing this
  /// descriptor (M-VIA RX path); charged to the reaping process's CPU
  /// counter on blocking reaps.
  std::int64_t kernelCpuTime = 0;

  std::uint16_t op() const { return cs.control & VIP_CONTROL_OP_MASK; }
  bool hasImmediate() const { return (cs.control & VIP_CONTROL_IMMEDIATE) != 0; }
  std::uint64_t totalBytes() const {
    std::uint64_t total = 0;
    for (const auto& s : ds) total += s.length;
    return total;
  }

  /// Convenience builders used throughout tests/examples/benchmarks.
  static VipDescriptor send(mem::VirtAddr addr, mem::MemHandle handle,
                            std::uint32_t length);
  static VipDescriptor recv(mem::VirtAddr addr, mem::MemHandle handle,
                            std::uint32_t length);
  static VipDescriptor sendImmediate(std::uint32_t immediate);
  static VipDescriptor rdmaWrite(mem::VirtAddr localAddr,
                                 mem::MemHandle localHandle,
                                 std::uint32_t length,
                                 mem::VirtAddr remoteAddr,
                                 mem::MemHandle remoteHandle);
  static VipDescriptor rdmaRead(mem::VirtAddr localAddr,
                                mem::MemHandle localHandle,
                                std::uint32_t length,
                                mem::VirtAddr remoteAddr,
                                mem::MemHandle remoteHandle);
};

/// VI attributes (spec §3.4.1), negotiated at connection time.
struct VipViAttributes {
  nic::Reliability reliabilityLevel = nic::Reliability::Unreliable;
  std::uint32_t maxTransferSize = 32u << 20;
  mem::PtagId ptag = 0;
  bool enableRdmaWrite = false;
  bool enableRdmaRead = false;
};

/// Network address: host + connection discriminator.
struct VipNetAddress {
  fabric::NodeId host = 0;
  std::uint64_t discriminator = 0;
};

/// NIC attributes returned by VipQueryNic (spec §3.1.2).
struct VipNicAttributes {
  std::string name;
  std::uint16_t maxSegmentsPerDesc = 252;
  std::uint32_t maxTransferSize = 0;
  std::uint32_t mtu = 0;
  bool reliableDeliverySupport = true;
  bool reliableReceptionSupport = true;
  bool rdmaWriteSupport = false;
  bool rdmaReadSupport = false;
  std::size_t translationCacheEntries = 0;
};

/// Memory registration attributes (spec §3.3.1).
struct VipMemAttributes {
  mem::PtagId ptag = 0;
  bool enableRdmaWrite = false;
  bool enableRdmaRead = false;
};

}  // namespace vibe::vipl
