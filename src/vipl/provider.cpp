#include "vipl/provider.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace vibe::vipl {

namespace {

// Reject reasons carried in ConnReject packets (Packet::rxError).
constexpr std::uint8_t kRejectNoMatch = 1;
constexpr std::uint8_t kRejectReliability = 2;
constexpr std::uint8_t kRejectByApplication = 3;

// How long an unclaimed connection request waits for a connectWait before
// being rejected with "no match" (the server may still be setting up).
constexpr sim::Duration kConnRequestGrace = sim::msec(500);

VipResult fromMemStatus(mem::MemStatus s) {
  switch (s) {
    case mem::MemStatus::Ok: return VipResult::VIP_SUCCESS;
    case mem::MemStatus::InvalidPtag: return VipResult::VIP_INVALID_PTAG;
    case mem::MemStatus::PtagInUse: return VipResult::VIP_ERROR_RESOURCE;
    case mem::MemStatus::ZeroLength: return VipResult::VIP_INVALID_PARAMETER;
    case mem::MemStatus::InvalidHandle:
    case mem::MemStatus::ProtectionMismatch:
    case mem::MemStatus::OutOfRange:
    case mem::MemStatus::AccessDenied:
      return VipResult::VIP_PROTECTION_ERROR;
  }
  return VipResult::VIP_INVALID_PARAMETER;
}

}  // namespace

const char* toString(VipResult r) {
  switch (r) {
    case VipResult::VIP_SUCCESS: return "VIP_SUCCESS";
    case VipResult::VIP_NOT_DONE: return "VIP_NOT_DONE";
    case VipResult::VIP_INVALID_PARAMETER: return "VIP_INVALID_PARAMETER";
    case VipResult::VIP_ERROR_RESOURCE: return "VIP_ERROR_RESOURCE";
    case VipResult::VIP_TIMEOUT: return "VIP_TIMEOUT";
    case VipResult::VIP_REJECT: return "VIP_REJECT";
    case VipResult::VIP_INVALID_RELIABILITY_LEVEL:
      return "VIP_INVALID_RELIABILITY_LEVEL";
    case VipResult::VIP_INVALID_MTU: return "VIP_INVALID_MTU";
    case VipResult::VIP_INVALID_PTAG: return "VIP_INVALID_PTAG";
    case VipResult::VIP_INVALID_RDMAREAD: return "VIP_INVALID_RDMAREAD";
    case VipResult::VIP_DESCRIPTOR_ERROR: return "VIP_DESCRIPTOR_ERROR";
    case VipResult::VIP_INVALID_STATE: return "VIP_INVALID_STATE";
    case VipResult::VIP_NO_MATCH: return "VIP_NO_MATCH";
    case VipResult::VIP_NOT_REACHABLE: return "VIP_NOT_REACHABLE";
    case VipResult::VIP_ERROR_NOT_SUPPORTED: return "VIP_ERROR_NOT_SUPPORTED";
    case VipResult::VIP_PROTECTION_ERROR: return "VIP_PROTECTION_ERROR";
    case VipResult::VIP_ERROR_NAMESERVICE: return "VIP_ERROR_NAMESERVICE";
  }
  return "VIP_UNKNOWN";
}

const char* toString(ViState s) {
  switch (s) {
    case ViState::Idle: return "Idle";
    case ViState::PendingConnect: return "PendingConnect";
    case ViState::Connected: return "Connected";
    case ViState::Disconnected: return "Disconnected";
    case ViState::Error: return "Error";
  }
  return "Unknown";
}

VipDescriptor VipDescriptor::send(mem::VirtAddr addr, mem::MemHandle handle,
                                  std::uint32_t length) {
  VipDescriptor d;
  d.cs.control = VIP_CONTROL_OP_SENDRECV;
  d.ds.push_back({addr, handle, length});
  d.cs.segCount = 1;
  d.cs.length = length;
  return d;
}

VipDescriptor VipDescriptor::recv(mem::VirtAddr addr, mem::MemHandle handle,
                                  std::uint32_t length) {
  return send(addr, handle, length);  // same layout; queue determines role
}

VipDescriptor VipDescriptor::sendImmediate(std::uint32_t immediate) {
  VipDescriptor d;
  d.cs.control = VIP_CONTROL_OP_SENDRECV | VIP_CONTROL_IMMEDIATE;
  d.cs.immediateData = immediate;
  d.cs.segCount = 0;
  return d;
}

VipDescriptor VipDescriptor::rdmaWrite(mem::VirtAddr localAddr,
                                       mem::MemHandle localHandle,
                                       std::uint32_t length,
                                       mem::VirtAddr remoteAddr,
                                       mem::MemHandle remoteHandle) {
  VipDescriptor d;
  d.cs.control = VIP_CONTROL_OP_RDMAWRITE;
  d.ds.push_back({localAddr, localHandle, length});
  d.cs.segCount = 1;
  d.cs.length = length;
  d.as = {remoteAddr, remoteHandle};
  return d;
}

VipDescriptor VipDescriptor::rdmaRead(mem::VirtAddr localAddr,
                                      mem::MemHandle localHandle,
                                      std::uint32_t length,
                                      mem::VirtAddr remoteAddr,
                                      mem::MemHandle remoteHandle) {
  VipDescriptor d = rdmaWrite(localAddr, localHandle, length, remoteAddr,
                              remoteHandle);
  d.cs.control = VIP_CONTROL_OP_RDMAREAD;
  return d;
}

Provider::Provider(sim::Engine& engine, fabric::Network& net,
                   fabric::NodeId node, const nic::NicProfile& profile,
                   std::shared_ptr<NameService> ns, std::string hostName)
    : engine_(engine),
      node_(node),
      profile_(profile),
      ns_(std::move(ns)),
      hostName_(std::move(hostName)),
      device_(engine, net, node, profile, registry_, memory_) {
  if (ns_) ns_->registerHost(hostName_, node_);
  nic::NicDevice::Handlers h;
  h.completion = [this](nic::ViEndpointId ep, nic::Completion&& c) {
    onCompletion(ep, std::move(c));
  };
  h.control = [this](fabric::Packet&& p) { onControl(std::move(p)); };
  h.connectionError = [this](nic::ViEndpointId ep, nic::WorkStatus why) {
    onConnectionError(ep, why);
  };
  device_.setHandlers(std::move(h));
}

Provider::~Provider() = default;

void Provider::charge(sim::Duration d) {
  if (d <= 0) return;
  if (sim::Process* p = engine_.currentProcess()) p->advance(d);
}

void Provider::chargeKernelCpu(sim::Duration d) {
  if (d <= 0) return;
  if (sim::Process* p = engine_.currentProcess()) p->chargeCpu(d);
}

void Provider::blockingWakeup() {
  // The interrupt/dispatch delay passes while the process still sleeps
  // (idle); only the scheduler wake-up and syscall return burn its CPU.
  if (sim::Process* p = engine_.currentProcess()) {
    p->advance(profile_.interruptCost, sim::CpuUse::Idle);
    p->advance(profile_.blockingWakeupCost, sim::CpuUse::Busy);
  }
}

// ---------------------------------------------------------------------------
// NIC / ptag / memory
// ---------------------------------------------------------------------------

VipResult Provider::queryNic(VipNicAttributes& out) {
  charge(profile_.viplCallOverhead);
  out.name = profile_.name;
  out.maxSegmentsPerDesc = 252;
  out.maxTransferSize = profile_.maxTransferSize;
  out.mtu = profile_.mtu;
  out.reliableDeliverySupport = true;
  out.reliableReceptionSupport = true;
  out.rdmaWriteSupport = profile_.supportsRdmaWrite;
  out.rdmaReadSupport = profile_.supportsRdmaRead;
  out.translationCacheEntries = profile_.tlbEntries;
  return VipResult::VIP_SUCCESS;
}

mem::PtagId Provider::createPtag() {
  charge(profile_.viplCallOverhead);
  return registry_.createPtag();
}

VipResult Provider::destroyPtag(mem::PtagId ptag) {
  charge(profile_.viplCallOverhead);
  return fromMemStatus(registry_.destroyPtag(ptag));
}

VipResult Provider::registerMem(mem::VirtAddr va, std::uint64_t len,
                                const VipMemAttributes& attrs,
                                mem::MemHandle& out) {
  const std::uint32_t pages = mem::pagesSpanned(va, len);
  charge(profile_.viplCallOverhead + profile_.memRegBase +
         profile_.memRegPerPage * pages);
  mem::MemAttrs ma;
  ma.ptag = attrs.ptag;
  ma.enableRdmaWrite = attrs.enableRdmaWrite;
  ma.enableRdmaRead = attrs.enableRdmaRead;
  return fromMemStatus(registry_.registerMem(va, len, ma, out));
}

VipResult Provider::deregisterMem(mem::MemHandle handle) {
  const mem::MemRegion* region = registry_.find(handle);
  if (region == nullptr) return VipResult::VIP_PROTECTION_ERROR;
  const std::uint32_t pages = mem::pagesSpanned(region->start, region->length);
  charge(profile_.viplCallOverhead + profile_.memDeregBase +
         profile_.memDeregPerPage * pages);
  // The NIC's translation cache must forget these pages.
  device_.tlb().invalidateRange(mem::pageOf(region->start),
                                mem::pageOf(region->start + region->length - 1));
  return fromMemStatus(registry_.deregisterMem(handle));
}

// ---------------------------------------------------------------------------
// VI / CQ lifecycle
// ---------------------------------------------------------------------------

VipResult Provider::createVi(const VipViAttributes& attrs, Cq* sendCq,
                             Cq* recvCq, Vi*& out) {
  out = nullptr;
  charge(profile_.viplCallOverhead + profile_.createViCost);
  if (!registry_.ptagValid(attrs.ptag)) return VipResult::VIP_INVALID_PTAG;
  if (attrs.enableRdmaRead && !profile_.supportsRdmaRead) {
    return VipResult::VIP_INVALID_RDMAREAD;
  }
  VipViAttributes clamped = attrs;
  clamped.maxTransferSize =
      std::min(clamped.maxTransferSize, profile_.maxTransferSize);
  const nic::ViEndpointId ep = device_.createEndpoint(attrs.ptag);
  auto vi = std::unique_ptr<Vi>(
      new Vi(*this, engine_, ep, clamped, sendCq, recvCq));
  out = vi.get();
  byEndpoint_[ep] = out;
  vis_.push_back(std::move(vi));
  return VipResult::VIP_SUCCESS;
}

VipResult Provider::destroyVi(Vi* vi) {
  charge(profile_.viplCallOverhead + profile_.destroyViCost);
  if (vi == nullptr) return VipResult::VIP_INVALID_PARAMETER;
  if (vi->state_ == ViState::Connected) return VipResult::VIP_INVALID_STATE;
  device_.destroyEndpoint(vi->ep_);
  byEndpoint_.erase(vi->ep_);
  // Descriptors still in flight must not dangle into the destroyed VI.
  std::erase_if(pending_, [vi](const auto& kv) { return kv.second.vi == vi; });
  std::erase_if(vis_, [vi](const auto& p) { return p.get() == vi; });
  return VipResult::VIP_SUCCESS;
}

void Provider::flushViPending(Vi* vi) noexcept {
  if (vi == nullptr) return;
  std::erase_if(pending_, [vi](const auto& kv) { return kv.second.vi == vi; });
}

void Provider::quiesce() noexcept { pending_.clear(); }

VipResult Provider::queryVi(Vi* vi, ViState& state, VipViAttributes& attrs,
                            bool& sendQueueEmpty, bool& recvQueueEmpty) {
  charge(profile_.viplCallOverhead);
  if (vi == nullptr) return VipResult::VIP_INVALID_PARAMETER;
  state = vi->state_;
  attrs = vi->attrs_;
  sendQueueEmpty = vi->sendDone_.empty();
  recvQueueEmpty = vi->recvDone_.empty();
  return VipResult::VIP_SUCCESS;
}

VipResult Provider::setViAttributes(Vi* vi, const VipViAttributes& attrs) {
  charge(profile_.viplCallOverhead);
  if (vi == nullptr) return VipResult::VIP_INVALID_PARAMETER;
  if (vi->state_ == ViState::Connected ||
      vi->state_ == ViState::PendingConnect) {
    return VipResult::VIP_INVALID_STATE;
  }
  if (!registry_.ptagValid(attrs.ptag)) return VipResult::VIP_INVALID_PTAG;
  if (attrs.enableRdmaRead && !profile_.supportsRdmaRead) {
    return VipResult::VIP_INVALID_RDMAREAD;
  }
  VipViAttributes clamped = attrs;
  clamped.maxTransferSize =
      std::min(clamped.maxTransferSize, profile_.maxTransferSize);
  vi->attrs_ = clamped;
  return VipResult::VIP_SUCCESS;
}

VipResult Provider::createCq(std::size_t entries, Cq*& out) {
  out = nullptr;
  charge(profile_.viplCallOverhead + profile_.createCqCost);
  if (entries == 0) return VipResult::VIP_INVALID_PARAMETER;
  auto cq = std::unique_ptr<Cq>(new Cq(engine_, entries));
  out = cq.get();
  cqs_.push_back(std::move(cq));
  return VipResult::VIP_SUCCESS;
}

VipResult Provider::destroyCq(Cq* cq) {
  charge(profile_.viplCallOverhead + profile_.destroyCqCost);
  if (cq == nullptr) return VipResult::VIP_INVALID_PARAMETER;
  for (const auto& vi : vis_) {
    if (vi->sendCq_ == cq || vi->recvCq_ == cq) {
      return VipResult::VIP_ERROR_RESOURCE;
    }
  }
  std::erase_if(cqs_, [cq](const auto& p) { return p.get() == cq; });
  return VipResult::VIP_SUCCESS;
}

VipResult Provider::resizeCq(Cq* cq, std::size_t entries) {
  charge(profile_.viplCallOverhead + profile_.createCqCost / 2);
  if (cq == nullptr || entries == 0) return VipResult::VIP_INVALID_PARAMETER;
  if (entries < cq->entries_.size()) return VipResult::VIP_ERROR_RESOURCE;
  cq->capacity_ = entries;
  return VipResult::VIP_SUCCESS;
}

// ---------------------------------------------------------------------------
// Connection management
// ---------------------------------------------------------------------------

VipResult Provider::connectWait(const VipNetAddress& local,
                                sim::Duration timeout, PendingConn& out) {
  charge(profile_.viplCallOverhead);
  sim::Process* proc = engine_.currentProcess();
  if (proc == nullptr) return VipResult::VIP_INVALID_STATE;
  Listener& listener = listeners_[local.discriminator];
  if (!listener.signal) {
    listener.signal = std::make_unique<sim::Signal>(engine_);
  }
  ++listener.waiters;
  while (listener.queue.empty()) {
    if (!proc->awaitFor(*listener.signal, timeout)) {
      --listener.waiters;
      return VipResult::VIP_TIMEOUT;
    }
  }
  --listener.waiters;
  out = listener.queue.front().first;
  engine_.cancel(listener.queue.front().second);  // claimed: no grace reject
  listener.queue.pop_front();
  return VipResult::VIP_SUCCESS;
}

VipResult Provider::connectAccept(const PendingConn& conn, Vi* vi) {
  charge(profile_.viplCallOverhead + profile_.connectRemoteCost);
  if (vi == nullptr) return VipResult::VIP_INVALID_PARAMETER;

  auto reject = [&](std::uint8_t reason) {
    fabric::Packet p;
    p.kind = fabric::PacketKind::ConnReject;
    p.dst = conn.remoteNode;
    p.dstVi = conn.remoteVi;
    p.conn.token = conn.token;
    p.rxError = reason;
    device_.sendControl(std::move(p));
  };

  if (vi->state_ != ViState::Idle) {
    reject(kRejectByApplication);
    return VipResult::VIP_INVALID_STATE;
  }
  if (vi->attrs_.reliabilityLevel != conn.remoteAttrs.reliabilityLevel) {
    reject(kRejectReliability);
    return VipResult::VIP_INVALID_RELIABILITY_LEVEL;
  }
  const std::uint32_t mts = std::min(vi->attrs_.maxTransferSize,
                                     conn.remoteAttrs.maxTransferSize);
  ++vi->epoch_;
  device_.configureConnection(vi->ep_, conn.remoteNode, conn.remoteVi,
                              vi->attrs_.reliabilityLevel, profile_.mtu,
                              vi->epoch_);
  vi->negotiatedMts_ = mts;
  vi->remoteNode_ = conn.remoteNode;
  vi->remoteVi_ = conn.remoteVi;
  vi->remoteEpoch_ = conn.epoch;
  vi->state_ = ViState::Connected;

  fabric::Packet p;
  p.kind = fabric::PacketKind::ConnAccept;
  p.dst = conn.remoteNode;
  p.dstVi = conn.remoteVi;
  p.srcVi = vi->ep_;
  p.conn.token = conn.token;
  p.conn.mtu = mts;
  p.conn.reliability =
      static_cast<std::uint8_t>(vi->attrs_.reliabilityLevel);
  p.conn.epoch = vi->epoch_;
  device_.sendControl(std::move(p));
  return VipResult::VIP_SUCCESS;
}

VipResult Provider::connectReject(const PendingConn& conn) {
  charge(profile_.viplCallOverhead);
  fabric::Packet p;
  p.kind = fabric::PacketKind::ConnReject;
  p.dst = conn.remoteNode;
  p.dstVi = conn.remoteVi;
  p.conn.token = conn.token;
  p.rxError = kRejectByApplication;
  device_.sendControl(std::move(p));
  return VipResult::VIP_SUCCESS;
}

VipResult Provider::connectRequest(Vi* vi, const VipNetAddress& remote,
                                   sim::Duration timeout,
                                   VipViAttributes* remoteAttrs) {
  charge(profile_.viplCallOverhead + profile_.connectLocalCost);
  sim::Process* proc = engine_.currentProcess();
  if (vi == nullptr || proc == nullptr) return VipResult::VIP_INVALID_PARAMETER;
  if (vi->state_ != ViState::Idle) return VipResult::VIP_INVALID_STATE;
  if (remote.host == node_) return VipResult::VIP_NOT_REACHABLE;

  const std::uint32_t token = nextConnToken_++;
  PendingConnect st;
  st.signal = std::make_unique<sim::Signal>(engine_);
  sim::Signal& signal = *st.signal;
  pendingConnects_.emplace(token, std::move(st));
  vi->state_ = ViState::PendingConnect;

  fabric::Packet p;
  p.kind = fabric::PacketKind::ConnRequest;
  p.dst = remote.host;
  p.srcVi = vi->ep_;
  p.conn.discriminator = remote.discriminator;
  p.conn.token = token;
  p.conn.mtu = vi->attrs_.maxTransferSize;
  p.conn.reliability = static_cast<std::uint8_t>(vi->attrs_.reliabilityLevel);
  p.conn.epoch = vi->epoch_ + 1;  // the incarnation this connect would start
  device_.sendControl(std::move(p));

  const bool fired = proc->awaitFor(signal, timeout);
  auto it = pendingConnects_.find(token);
  assert(it != pendingConnects_.end());
  PendingConnect result = std::move(it->second);
  pendingConnects_.erase(it);

  if (!fired || !result.responded) {
    vi->state_ = ViState::Idle;
    return VipResult::VIP_TIMEOUT;
  }
  if (!result.accepted) {
    vi->state_ = ViState::Idle;
    switch (result.rejectReason) {
      case kRejectNoMatch: return VipResult::VIP_NO_MATCH;
      case kRejectReliability: return VipResult::VIP_INVALID_RELIABILITY_LEVEL;
      default: return VipResult::VIP_REJECT;
    }
  }
  ++vi->epoch_;
  device_.configureConnection(vi->ep_, result.remoteNode, result.remoteVi,
                              vi->attrs_.reliabilityLevel, profile_.mtu,
                              vi->epoch_);
  vi->negotiatedMts_ = result.mts;
  vi->remoteNode_ = result.remoteNode;
  vi->remoteVi_ = result.remoteVi;
  vi->remoteEpoch_ = result.epoch;
  vi->state_ = ViState::Connected;
  if (remoteAttrs != nullptr) *remoteAttrs = result.remoteAttrs;
  return VipResult::VIP_SUCCESS;
}

VipResult Provider::disconnect(Vi* vi) {
  charge(profile_.viplCallOverhead + profile_.teardownCost);
  if (vi == nullptr) return VipResult::VIP_INVALID_PARAMETER;
  if (vi->state_ != ViState::Connected) return VipResult::VIP_INVALID_STATE;
  fabric::Packet p;
  p.kind = fabric::PacketKind::Disconnect;
  p.dst = vi->remoteNode_;
  p.dstVi = vi->remoteVi_;
  p.srcVi = vi->ep_;
  device_.sendControl(std::move(p));
  device_.teardownConnection(vi->ep_);
  vi->state_ = ViState::Idle;  // a disconnected VI may reconnect
  return VipResult::VIP_SUCCESS;
}

VipResult Provider::resetVi(Vi* vi) {
  charge(profile_.viplCallOverhead + profile_.teardownCost);
  if (vi == nullptr) return VipResult::VIP_INVALID_PARAMETER;
  if (vi->state_ != ViState::Error && vi->state_ != ViState::Disconnected &&
      vi->state_ != ViState::Connected) {
    return VipResult::VIP_INVALID_STATE;
  }
  // Abandon in-flight descriptors first so the Aborted completions the
  // teardown flush generates find no pending entry and become no-ops.
  flushViPending(vi);
  device_.teardownConnection(vi->ep_);
  vi->sendDone_.clear();
  vi->recvDone_.clear();
  vi->recvNotify_.clear();
  vi->negotiatedMts_ = 0;
  vi->remoteNode_ = 0;
  vi->remoteVi_ = 0;
  vi->state_ = ViState::Idle;
  return VipResult::VIP_SUCCESS;
}

// ---------------------------------------------------------------------------
// Data transfer
// ---------------------------------------------------------------------------

VipResult Provider::validateSegments(
    const Vi& vi, const std::vector<VipDataSegment>& ds) const {
  for (const auto& seg : ds) {
    const mem::MemStatus s = registry_.validate(seg.handle, seg.data,
                                                seg.length, vi.attrs_.ptag,
                                                mem::Access::Local);
    if (s != mem::MemStatus::Ok) return VipResult::VIP_PROTECTION_ERROR;
  }
  return VipResult::VIP_SUCCESS;
}

nic::WorkRequest Provider::buildWorkRequest(const VipDescriptor& desc,
                                            std::uint64_t cookie) const {
  nic::WorkRequest wr;
  switch (desc.op()) {
    case VIP_CONTROL_OP_RDMAWRITE: wr.op = nic::WorkOp::RdmaWrite; break;
    case VIP_CONTROL_OP_RDMAREAD: wr.op = nic::WorkOp::RdmaRead; break;
    default: wr.op = nic::WorkOp::Send; break;
  }
  wr.segments.reserve(desc.ds.size());
  for (const auto& seg : desc.ds) {
    wr.segments.push_back({seg.data, seg.handle, seg.length});
  }
  wr.hasImmediate = desc.hasImmediate();
  wr.immediate = desc.cs.immediateData;
  wr.remoteAddr = desc.as.data;
  wr.remoteHandle = desc.as.handle;
  wr.cookie = cookie;
  return wr;
}

namespace {
std::uint32_t pagesOfSegments(const std::vector<VipDataSegment>& ds) {
  std::uint32_t pages = 0;
  for (const auto& seg : ds) pages += mem::pagesSpanned(seg.data, seg.length);
  return pages;
}
}  // namespace

VipResult Provider::postSend(Vi* vi, VipDescriptor* desc) {
  if (vi == nullptr || desc == nullptr) return VipResult::VIP_INVALID_PARAMETER;
  const sim::SimTime postStart = engine_.now();
  charge(profile_.viplCallOverhead + profile_.postSendBase +
         profile_.postSendPerSeg * static_cast<sim::Duration>(desc->ds.size()) +
         profile_.hostTranslationPerPage * pagesOfSegments(desc->ds));
  if (vi->state_ != ViState::Connected) return VipResult::VIP_INVALID_STATE;
  if (desc->ds.size() > 252) return VipResult::VIP_INVALID_PARAMETER;
  const std::uint16_t op = desc->op();
  if (op == VIP_CONTROL_OP_RDMAWRITE && !profile_.supportsRdmaWrite) {
    return VipResult::VIP_ERROR_NOT_SUPPORTED;
  }
  if (op == VIP_CONTROL_OP_RDMAREAD) {
    if (!profile_.supportsRdmaRead || !vi->attrs_.enableRdmaRead) {
      return VipResult::VIP_ERROR_NOT_SUPPORTED;
    }
    if (vi->attrs_.reliabilityLevel == nic::Reliability::Unreliable) {
      // Spec: RDMA read requires a reliable connection.
      return VipResult::VIP_INVALID_RDMAREAD;
    }
  }
  if (desc->totalBytes() > vi->negotiatedMts_) {
    return VipResult::VIP_INVALID_MTU;
  }
  if (const VipResult vr = validateSegments(*vi, desc->ds);
      vr != VipResult::VIP_SUCCESS) {
    return vr;
  }
  desc->cs.status = VipDescStatus{};
  desc->kernelCpuTime = 0;
  const std::uint64_t cookie = nextCookie_++;
  pending_.emplace(cookie, PendingWr{desc, vi, /*isSend=*/true});
  charge(profile_.doorbellCost);
  nic::WorkRequest wr = buildWorkRequest(*desc, cookie);
  wr.postedAt = postStart;
  if (spans_ != nullptr) {
    // Post stage: VIPL call overhead + descriptor build + doorbell write.
    spans_->emit(obs::Stage::Post, node_, vi->ep_, postStart, engine_.now(),
                 wr.totalBytes());
  }
  device_.postSend(vi->ep_, std::move(wr));
  return VipResult::VIP_SUCCESS;
}

VipResult Provider::postRecv(Vi* vi, VipDescriptor* desc) {
  if (vi == nullptr || desc == nullptr) return VipResult::VIP_INVALID_PARAMETER;
  charge(profile_.viplCallOverhead + profile_.postRecvBase +
         profile_.postRecvPerSeg * static_cast<sim::Duration>(desc->ds.size()) +
         profile_.hostTranslationPerPage * pagesOfSegments(desc->ds));
  if (vi->state_ == ViState::Error) return VipResult::VIP_INVALID_STATE;
  if (desc->ds.size() > 252) return VipResult::VIP_INVALID_PARAMETER;
  if (const VipResult vr = validateSegments(*vi, desc->ds);
      vr != VipResult::VIP_SUCCESS) {
    return vr;
  }
  desc->cs.status = VipDescStatus{};
  desc->kernelCpuTime = 0;
  const std::uint64_t cookie = nextCookie_++;
  pending_.emplace(cookie, PendingWr{desc, vi, /*isSend=*/false});
  charge(profile_.doorbellCost);
  device_.postRecv(vi->ep_, buildWorkRequest(*desc, cookie));
  return VipResult::VIP_SUCCESS;
}

VipResult Provider::sendDone(Vi* vi, VipDescriptor*& out) {
  out = nullptr;
  charge(profile_.pollCost);
  if (vi == nullptr) return VipResult::VIP_INVALID_PARAMETER;
  if (vi->sendDone_.empty()) return VipResult::VIP_NOT_DONE;
  out = vi->sendDone_.front();
  vi->sendDone_.pop_front();
  return out->cs.status.ok() ? VipResult::VIP_SUCCESS
                             : VipResult::VIP_DESCRIPTOR_ERROR;
}

VipResult Provider::recvDone(Vi* vi, VipDescriptor*& out) {
  out = nullptr;
  charge(profile_.pollCost);
  if (vi == nullptr) return VipResult::VIP_INVALID_PARAMETER;
  if (vi->recvDone_.empty()) return VipResult::VIP_NOT_DONE;
  out = vi->recvDone_.front();
  vi->recvDone_.pop_front();
  return out->cs.status.ok() ? VipResult::VIP_SUCCESS
                             : VipResult::VIP_DESCRIPTOR_ERROR;
}

VipResult Provider::sendWait(Vi* vi, sim::Duration timeout,
                             VipDescriptor*& out) {
  out = nullptr;
  charge(profile_.viplCallOverhead);
  if (vi == nullptr) return VipResult::VIP_INVALID_PARAMETER;
  sim::Process* proc = engine_.currentProcess();
  bool blocked = false;
  while (vi->sendDone_.empty()) {
    if (proc == nullptr) return VipResult::VIP_NOT_DONE;
    if (!proc->awaitFor(vi->sendSignal_, timeout)) return VipResult::VIP_TIMEOUT;
    blocked = true;
  }
  out = vi->sendDone_.front();
  vi->sendDone_.pop_front();
  if (blocked) {
    blockingWakeup();
    chargeKernelCpu(out->kernelCpuTime);
  }
  return out->cs.status.ok() ? VipResult::VIP_SUCCESS
                             : VipResult::VIP_DESCRIPTOR_ERROR;
}

VipResult Provider::recvWait(Vi* vi, sim::Duration timeout,
                             VipDescriptor*& out) {
  out = nullptr;
  charge(profile_.viplCallOverhead);
  if (vi == nullptr) return VipResult::VIP_INVALID_PARAMETER;
  sim::Process* proc = engine_.currentProcess();
  bool blocked = false;
  while (vi->recvDone_.empty()) {
    if (proc == nullptr) return VipResult::VIP_NOT_DONE;
    if (!proc->awaitFor(vi->recvSignal_, timeout)) return VipResult::VIP_TIMEOUT;
    blocked = true;
  }
  out = vi->recvDone_.front();
  vi->recvDone_.pop_front();
  if (blocked) {
    blockingWakeup();
    chargeKernelCpu(out->kernelCpuTime);
  }
  return out->cs.status.ok() ? VipResult::VIP_SUCCESS
                             : VipResult::VIP_DESCRIPTOR_ERROR;
}

VipResult Provider::recvNotify(Vi* vi,
                               std::function<void(VipDescriptor*)> handler) {
  charge(profile_.viplCallOverhead);
  if (vi == nullptr || !handler) return VipResult::VIP_INVALID_PARAMETER;
  vi->recvNotify_.push_back(std::move(handler));
  return VipResult::VIP_SUCCESS;
}

VipResult Provider::cqDone(Cq* cq, Vi*& vi, bool& isRecv) {
  vi = nullptr;
  charge(profile_.cqCheckCost);
  if (cq == nullptr) return VipResult::VIP_INVALID_PARAMETER;
  if (cq->overflowed_) {
    cq->overflowed_ = false;
    return VipResult::VIP_ERROR_RESOURCE;
  }
  if (cq->entries_.empty()) return VipResult::VIP_NOT_DONE;
  vi = cq->entries_.front().vi;
  isRecv = cq->entries_.front().isRecv;
  cq->entries_.pop_front();
  return VipResult::VIP_SUCCESS;
}

VipResult Provider::cqWait(Cq* cq, sim::Duration timeout, Vi*& vi,
                           bool& isRecv) {
  vi = nullptr;
  charge(profile_.viplCallOverhead);
  if (cq == nullptr) return VipResult::VIP_INVALID_PARAMETER;
  sim::Process* proc = engine_.currentProcess();
  bool blocked = false;
  while (cq->entries_.empty() && !cq->overflowed_) {
    if (proc == nullptr) return VipResult::VIP_NOT_DONE;
    if (!proc->awaitFor(cq->signal_, timeout)) return VipResult::VIP_TIMEOUT;
    blocked = true;
  }
  if (blocked) blockingWakeup();
  return cqDone(cq, vi, isRecv);
}

VipResult Provider::pollSend(Vi* vi, VipDescriptor*& out) {
  out = nullptr;
  charge(profile_.pollCost);
  if (vi == nullptr) return VipResult::VIP_INVALID_PARAMETER;
  sim::Process* proc = engine_.currentProcess();
  while (vi->sendDone_.empty()) {
    if (proc == nullptr) return VipResult::VIP_NOT_DONE;
    proc->awaitBusy(vi->sendSignal_);
    charge(profile_.pollCost);
  }
  out = vi->sendDone_.front();
  vi->sendDone_.pop_front();
  return out->cs.status.ok() ? VipResult::VIP_SUCCESS
                             : VipResult::VIP_DESCRIPTOR_ERROR;
}

VipResult Provider::pollRecv(Vi* vi, VipDescriptor*& out) {
  out = nullptr;
  charge(profile_.pollCost);
  if (vi == nullptr) return VipResult::VIP_INVALID_PARAMETER;
  sim::Process* proc = engine_.currentProcess();
  while (vi->recvDone_.empty()) {
    if (proc == nullptr) return VipResult::VIP_NOT_DONE;
    proc->awaitBusy(vi->recvSignal_);
    charge(profile_.pollCost);
  }
  out = vi->recvDone_.front();
  vi->recvDone_.pop_front();
  return out->cs.status.ok() ? VipResult::VIP_SUCCESS
                             : VipResult::VIP_DESCRIPTOR_ERROR;
}

VipResult Provider::pollCq(Cq* cq, Vi*& vi, bool& isRecv) {
  vi = nullptr;
  charge(profile_.cqCheckCost);
  if (cq == nullptr) return VipResult::VIP_INVALID_PARAMETER;
  sim::Process* proc = engine_.currentProcess();
  while (cq->entries_.empty() && !cq->overflowed_) {
    if (proc == nullptr) return VipResult::VIP_NOT_DONE;
    proc->awaitBusy(cq->signal_);
    charge(profile_.cqCheckCost);
  }
  return cqDone(cq, vi, isRecv);
}

VipResult Provider::nsGetHostByName(const std::string& name,
                                    fabric::NodeId& out) {
  charge(profile_.viplCallOverhead);
  if (!ns_) return VipResult::VIP_ERROR_NAMESERVICE;
  const auto node = ns_->lookup(name);
  if (!node) return VipResult::VIP_ERROR_NAMESERVICE;
  out = *node;
  return VipResult::VIP_SUCCESS;
}

// ---------------------------------------------------------------------------
// Completion / control plumbing (engine-event context)
// ---------------------------------------------------------------------------

void Provider::onCompletion(nic::ViEndpointId ep, nic::Completion&& c) {
  auto epIt = byEndpoint_.find(ep);
  if (epIt == byEndpoint_.end()) return;  // VI destroyed while in flight
  auto it = pending_.find(c.cookie);
  if (it == pending_.end()) return;  // already flushed/reaped
  const PendingWr pw = it->second;
  pending_.erase(it);

  VipDescriptor* desc = pw.desc;
  desc->cs.status.done = true;
  desc->cs.status.error = c.status;
  desc->kernelCpuTime = c.hostCpuCost;
  if (pw.isSend) {
    desc->cs.length = static_cast<std::uint32_t>(desc->totalBytes());
  } else {
    desc->cs.length = static_cast<std::uint32_t>(c.bytes);
    if (c.hasImmediate) {
      desc->cs.immediateData = c.immediate;
      desc->cs.control |= VIP_CONTROL_IMMEDIATE;
    }
  }

  Vi* vi = pw.vi;
  Cq* cq = pw.isSend ? vi->sendCq_ : vi->recvCq_;
  const sim::Duration delay = cq != nullptr ? profile_.cqPostCost : 0;
  if (delay > 0) {
    const bool isSend = pw.isSend;
    engine_.post(delay,
                 [this, vi, desc, isSend] { deliverCompletion(vi, desc, isSend); });
  } else {
    deliverCompletion(vi, desc, pw.isSend);
  }
}

void Provider::deliverCompletion(Vi* vi, VipDescriptor* desc, bool isSend) {
  if (!isSend && !vi->recvNotify_.empty()) {
    // VipRecvNotify: the completion is consumed by the async handler.
    auto handler = std::move(vi->recvNotify_.front());
    vi->recvNotify_.pop_front();
    engine_.post(profile_.interruptCost,
                 [handler = std::move(handler), desc] { handler(desc); });
    return;
  }
  if (isSend) {
    vi->sendDone_.push_back(desc);
  } else {
    vi->recvDone_.push_back(desc);
  }
  Cq* cq = isSend ? vi->sendCq_ : vi->recvCq_;
  if (cq != nullptr) {
    if (cq->entries_.size() >= cq->capacity_) {
      cq->overflowed_ = true;
    } else {
      cq->entries_.push_back({vi, !isSend});
    }
    cq->signal_.notifyAll();
  }
  (isSend ? vi->sendSignal_ : vi->recvSignal_).notifyAll();
}

void Provider::onControl(fabric::Packet&& p) {
  switch (p.kind) {
    case fabric::PacketKind::ConnRequest:
      onConnRequest(std::move(p));
      return;
    case fabric::PacketKind::ConnAccept:
    case fabric::PacketKind::ConnReject:
      onConnResponse(std::move(p));
      return;
    case fabric::PacketKind::Disconnect:
      onDisconnect(std::move(p));
      return;
    default:
      return;
  }
}

void Provider::onConnRequest(fabric::Packet&& p) {
  PendingConn pc;
  pc.remoteNode = p.src;
  pc.remoteVi = p.srcVi;
  pc.remoteAttrs.reliabilityLevel =
      static_cast<nic::Reliability>(p.conn.reliability);
  pc.remoteAttrs.maxTransferSize = p.conn.mtu;
  pc.discriminator = p.conn.discriminator;
  pc.token = p.conn.token;
  pc.epoch = p.conn.epoch;

  // A request may arrive before the application reaches connectWait (e.g.
  // the server is still preposting buffers): queue it for a grace period
  // and reject with "no match" only if nobody claims it in time.
  Listener& listener = listeners_[p.conn.discriminator];
  if (!listener.signal) listener.signal = std::make_unique<sim::Signal>(engine_);

  const std::uint64_t disc = p.conn.discriminator;
  const std::uint32_t token = p.conn.token;
  const fabric::NodeId fromNode = p.src;
  const sim::EventId grace =
      engine_.post(kConnRequestGrace, [this, disc, token, fromNode] {
        auto lit = listeners_.find(disc);
        if (lit == listeners_.end()) return;
        auto& queue = lit->second.queue;
        for (auto qit = queue.begin(); qit != queue.end(); ++qit) {
          if (qit->first.token != token || qit->first.remoteNode != fromNode) {
            continue;
          }
          fabric::Packet r;
          r.kind = fabric::PacketKind::ConnReject;
          r.dst = qit->first.remoteNode;
          r.dstVi = qit->first.remoteVi;
          r.conn.token = token;
          r.rxError = kRejectNoMatch;
          device_.sendControl(std::move(r));
          queue.erase(qit);
          return;
        }
      });
  listener.queue.emplace_back(pc, grace);
  listener.signal->notifyAll();
}

void Provider::onConnResponse(fabric::Packet&& p) {
  auto it = pendingConnects_.find(p.conn.token);
  if (it == pendingConnects_.end()) {
    // The requester timed out before the answer arrived; if the remote
    // accepted, tell it the connection is dead.
    if (p.kind == fabric::PacketKind::ConnAccept) {
      fabric::Packet d;
      d.kind = fabric::PacketKind::Disconnect;
      d.dst = p.src;
      d.dstVi = p.srcVi;
      device_.sendControl(std::move(d));
    }
    return;
  }
  PendingConnect& st = it->second;
  st.responded = true;
  st.accepted = p.kind == fabric::PacketKind::ConnAccept;
  st.rejectReason = p.rxError;
  st.remoteNode = p.src;
  st.remoteVi = p.srcVi;
  st.mts = p.conn.mtu;
  st.epoch = p.conn.epoch;
  st.remoteAttrs.reliabilityLevel =
      static_cast<nic::Reliability>(p.conn.reliability);
  st.remoteAttrs.maxTransferSize = p.conn.mtu;
  st.signal->notifyAll();
}

void Provider::onDisconnect(fabric::Packet&& p) {
  auto it = byEndpoint_.find(p.dstVi);
  if (it == byEndpoint_.end()) return;
  Vi* vi = it->second;
  if (vi->state_ != ViState::Connected &&
      vi->state_ != ViState::PendingConnect) {
    return;
  }
  device_.teardownConnection(vi->ep_);
  vi->state_ = ViState::Disconnected;
  scheduleErrorCallback(vi->ep_, nic::WorkStatus::ConnectionLost);
}

void Provider::onConnectionError(nic::ViEndpointId ep, nic::WorkStatus why) {
  auto it = byEndpoint_.find(ep);
  if (it == byEndpoint_.end()) return;
  Vi* vi = it->second;
  vi->state_ = ViState::Error;
  scheduleErrorCallback(ep, why);
}

void Provider::scheduleErrorCallback(nic::ViEndpointId ep,
                                     nic::WorkStatus why) {
  if (!errorCallback_) return;  // no observer: post nothing, stay byte-equal
  engine_.post(0, [this, ep, why] {
    auto it = byEndpoint_.find(ep);
    if (it == byEndpoint_.end()) return;  // VI destroyed before delivery
    if (errorCallback_) errorCallback_(it->second, why);
  });
}

}  // namespace vibe::vipl
