// RAII conveniences over the VIPL surface.
//
// The flat Vip* API mirrors the spec and leaves every release to the
// caller; these wrappers give C++ applications scope-bound lifetimes:
// ptags destroy after their registrations, registrations deregister (and
// flush the NIC translation cache), VIs disconnect before destruction,
// CQs refuse to outlive attached VIs (enforced by the provider).
#pragma once

#include <utility>

#include "vipl/provider.hpp"

namespace vibe::vipl {

/// Scope-bound protection tag.
class ScopedPtag {
 public:
  explicit ScopedPtag(Provider& nic) : nic_(&nic), ptag_(nic.createPtag()) {}
  ~ScopedPtag() {
    if (nic_ != nullptr && ptag_ != 0) (void)nic_->destroyPtag(ptag_);
  }
  ScopedPtag(ScopedPtag&& other) noexcept
      : nic_(std::exchange(other.nic_, nullptr)),
        ptag_(std::exchange(other.ptag_, 0)) {}
  ScopedPtag& operator=(ScopedPtag&&) = delete;
  ScopedPtag(const ScopedPtag&) = delete;
  ScopedPtag& operator=(const ScopedPtag&) = delete;

  mem::PtagId get() const { return ptag_; }

 private:
  Provider* nic_;
  mem::PtagId ptag_;
};

/// A freshly allocated, registered buffer; deregisters on destruction.
class RegisteredBuffer {
 public:
  RegisteredBuffer(Provider& nic, std::uint64_t bytes, mem::PtagId ptag,
                   bool rdmaWrite = false, bool rdmaRead = false)
      : nic_(&nic), bytes_(bytes) {
    va_ = nic.memory().alloc(bytes, mem::kPageSize);
    VipMemAttributes attrs;
    attrs.ptag = ptag;
    attrs.enableRdmaWrite = rdmaWrite;
    attrs.enableRdmaRead = rdmaRead;
    result_ = nic.registerMem(va_, bytes, attrs, handle_);
  }
  ~RegisteredBuffer() {
    if (nic_ != nullptr && handle_ != 0) (void)nic_->deregisterMem(handle_);
  }
  RegisteredBuffer(RegisteredBuffer&& other) noexcept
      : nic_(std::exchange(other.nic_, nullptr)),
        va_(other.va_),
        bytes_(other.bytes_),
        handle_(std::exchange(other.handle_, 0)),
        result_(other.result_) {}
  RegisteredBuffer& operator=(RegisteredBuffer&&) = delete;
  RegisteredBuffer(const RegisteredBuffer&) = delete;
  RegisteredBuffer& operator=(const RegisteredBuffer&) = delete;

  bool ok() const { return result_ == VipResult::VIP_SUCCESS; }
  VipResult status() const { return result_; }
  mem::VirtAddr addr() const { return va_; }
  mem::MemHandle handle() const { return handle_; }
  std::uint64_t size() const { return bytes_; }

  /// Ready-made descriptors over the whole buffer (or a prefix).
  VipDescriptor sendDesc(std::uint32_t bytes) const {
    return VipDescriptor::send(va_, handle_, bytes);
  }
  VipDescriptor recvDesc(std::uint32_t bytes = 0) const {
    return VipDescriptor::recv(
        va_, handle_, bytes ? bytes : static_cast<std::uint32_t>(bytes_));
  }

  /// Payload helpers through the simulated address space.
  void write(std::uint64_t offset, std::span<const std::byte> data) {
    nic_->memory().write(va_ + offset, data);
  }
  std::vector<std::byte> read(std::uint64_t offset, std::uint64_t len) const {
    std::vector<std::byte> out(len);
    nic_->memory().read(va_ + offset, out);
    return out;
  }

 private:
  Provider* nic_;
  mem::VirtAddr va_ = 0;
  std::uint64_t bytes_ = 0;
  mem::MemHandle handle_ = 0;
  VipResult result_ = VipResult::VIP_ERROR_RESOURCE;
};

/// Scope-bound VI: disconnects (if connected) and destroys on destruction.
class ScopedVi {
 public:
  ScopedVi(Provider& nic, const VipViAttributes& attrs, Cq* sendCq = nullptr,
           Cq* recvCq = nullptr)
      : nic_(&nic) {
    result_ = nic.createVi(attrs, sendCq, recvCq, vi_);
  }
  ~ScopedVi() {
    if (nic_ == nullptr || vi_ == nullptr) return;
    if (vi_->state() == ViState::Connected) (void)nic_->disconnect(vi_);
    (void)nic_->destroyVi(vi_);
  }
  ScopedVi(ScopedVi&& other) noexcept
      : nic_(std::exchange(other.nic_, nullptr)),
        vi_(std::exchange(other.vi_, nullptr)),
        result_(other.result_) {}
  ScopedVi& operator=(ScopedVi&&) = delete;
  ScopedVi(const ScopedVi&) = delete;
  ScopedVi& operator=(const ScopedVi&) = delete;

  bool ok() const { return result_ == VipResult::VIP_SUCCESS; }
  VipResult status() const { return result_; }
  Vi* get() const { return vi_; }
  Vi* operator->() const { return vi_; }

 private:
  Provider* nic_;
  Vi* vi_ = nullptr;
  VipResult result_ = VipResult::VIP_ERROR_RESOURCE;
};

/// Scope-bound completion queue.
class ScopedCq {
 public:
  ScopedCq(Provider& nic, std::size_t entries) : nic_(&nic) {
    result_ = nic.createCq(entries, cq_);
  }
  ~ScopedCq() {
    if (nic_ != nullptr && cq_ != nullptr) (void)nic_->destroyCq(cq_);
  }
  ScopedCq(ScopedCq&& other) noexcept
      : nic_(std::exchange(other.nic_, nullptr)),
        cq_(std::exchange(other.cq_, nullptr)),
        result_(other.result_) {}
  ScopedCq& operator=(ScopedCq&&) = delete;
  ScopedCq(const ScopedCq&) = delete;
  ScopedCq& operator=(const ScopedCq&) = delete;

  bool ok() const { return result_ == VipResult::VIP_SUCCESS; }
  Cq* get() const { return cq_; }

 private:
  Provider* nic_;
  Cq* cq_ = nullptr;
  VipResult result_ = VipResult::VIP_ERROR_RESOURCE;
};

}  // namespace vibe::vipl
