// The VIA provider: one per simulated host. Owns the host's user memory,
// registration state, and NIC device, and exposes the VIPL operation
// surface (connection management, descriptor posting, completion reaping,
// completion queues, name service) with spec semantics. Every operation
// charges the calling simulated process the profile's host-side cost, so
// latency and CPU-utilization measurements are mutually consistent.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "fabric/network.hpp"
#include "mem/host_memory.hpp"
#include "mem/memory_registry.hpp"
#include "nic/nic_device.hpp"
#include "nic/profile.hpp"
#include "simcore/engine.hpp"
#include "simcore/process.hpp"
#include "vipl/vipl_types.hpp"

namespace vibe::vipl {

class Provider;
class Vi;

/// Cluster-wide host-name resolution (the VipNS* surface).
class NameService {
 public:
  void registerHost(const std::string& name, fabric::NodeId node) {
    table_[name] = node;
  }
  std::optional<fabric::NodeId> lookup(const std::string& name) const {
    auto it = table_.find(name);
    return it == table_.end() ? std::nullopt
                              : std::optional<fabric::NodeId>(it->second);
  }

 private:
  std::unordered_map<std::string, fabric::NodeId> table_;
};

/// Completion queue: merges completion notifications of the work queues
/// attached to it. Entries identify (VI, queue); the descriptor itself is
/// then reaped with sendDone/recvDone on that VI, per spec.
class Cq {
 public:
  struct Entry {
    Vi* vi = nullptr;
    bool isRecv = false;
  };

  std::size_t capacity() const { return capacity_; }
  std::size_t depth() const { return entries_.size(); }
  bool overflowed() const { return overflowed_; }

 private:
  friend class Provider;
  Cq(sim::Engine& engine, std::size_t capacity)
      : capacity_(capacity), signal_(engine) {}

  std::size_t capacity_;
  std::deque<Entry> entries_;
  sim::Signal signal_;
  bool overflowed_ = false;
};

/// A Virtual Interface endpoint.
class Vi {
 public:
  ViState state() const { return state_; }
  const VipViAttributes& attributes() const { return attrs_; }
  nic::ViEndpointId endpointId() const { return ep_; }
  /// Maximum transfer size agreed at connection establishment.
  std::uint32_t negotiatedMts() const { return negotiatedMts_; }
  fabric::NodeId remoteNode() const { return remoteNode_; }
  Provider& provider() const { return *prov_; }
  /// Connection incarnation: 0 until the first connect, bumped on every
  /// successful connect of this VI. Carried in the connect handshake so
  /// both sides can fence traffic from a previous incarnation.
  std::uint32_t epoch() const { return epoch_; }
  /// Peer's epoch learned from the most recent connect handshake.
  std::uint32_t remoteEpoch() const { return remoteEpoch_; }

  std::size_t sendCompletionsQueued() const { return sendDone_.size(); }
  std::size_t recvCompletionsQueued() const { return recvDone_.size(); }

 private:
  friend class Provider;
  Vi(Provider& prov, sim::Engine& engine, nic::ViEndpointId ep,
     const VipViAttributes& attrs, Cq* sendCq, Cq* recvCq)
      : prov_(&prov),
        ep_(ep),
        attrs_(attrs),
        sendCq_(sendCq),
        recvCq_(recvCq),
        sendSignal_(engine),
        recvSignal_(engine) {}

  Provider* prov_;
  nic::ViEndpointId ep_;
  VipViAttributes attrs_;
  ViState state_ = ViState::Idle;
  Cq* sendCq_;
  Cq* recvCq_;
  std::uint32_t negotiatedMts_ = 0;
  fabric::NodeId remoteNode_ = 0;
  nic::ViEndpointId remoteVi_ = 0;
  std::uint32_t epoch_ = 0;
  std::uint32_t remoteEpoch_ = 0;

  std::deque<VipDescriptor*> sendDone_;
  std::deque<VipDescriptor*> recvDone_;
  sim::Signal sendSignal_;
  sim::Signal recvSignal_;
  std::deque<std::function<void(VipDescriptor*)>> recvNotify_;
};

/// Connection request surfaced by connectWait, awaiting accept/reject.
struct PendingConn {
  fabric::NodeId remoteNode = 0;
  nic::ViEndpointId remoteVi = 0;
  VipViAttributes remoteAttrs;
  std::uint64_t discriminator = 0;
  std::uint32_t token = 0;
  std::uint32_t epoch = 0;  // requester's connection incarnation
};

class Provider {
 public:
  Provider(sim::Engine& engine, fabric::Network& net, fabric::NodeId node,
           const nic::NicProfile& profile, std::shared_ptr<NameService> ns,
           std::string hostName);
  ~Provider();

  Provider(const Provider&) = delete;
  Provider& operator=(const Provider&) = delete;

  // --- NIC-level queries ---
  VipResult queryNic(VipNicAttributes& out);

  // --- protection tags ---
  mem::PtagId createPtag();
  VipResult destroyPtag(mem::PtagId ptag);

  // --- memory registration ---
  VipResult registerMem(mem::VirtAddr va, std::uint64_t len,
                        const VipMemAttributes& attrs, mem::MemHandle& out);
  VipResult deregisterMem(mem::MemHandle handle);

  // --- VI / CQ lifecycle ---
  VipResult createVi(const VipViAttributes& attrs, Cq* sendCq, Cq* recvCq,
                     Vi*& out);
  VipResult destroyVi(Vi* vi);
  /// VipQueryVi: state + attributes + whether the done queues are empty.
  VipResult queryVi(Vi* vi, ViState& state, VipViAttributes& attrs,
                    bool& sendQueueEmpty, bool& recvQueueEmpty);
  /// VipSetViAttributes: only legal while the VI is not connected.
  VipResult setViAttributes(Vi* vi, const VipViAttributes& attrs);
  VipResult createCq(std::size_t entries, Cq*& out);
  VipResult destroyCq(Cq* cq);
  VipResult resizeCq(Cq* cq, std::size_t entries);

  /// Forgets every posted-but-uncompleted descriptor on `vi` without
  /// destroying it. For owners (e.g. upper-layer destructors) whose
  /// descriptor memory is about to be freed while the VI stays connected:
  /// completions still in flight become no-ops instead of writing through
  /// dangling pointers. Charges nothing and sends nothing, so simulated
  /// timing is unaffected.
  void flushViPending(Vi* vi) noexcept;

  /// Models OS cleanup at node-program exit: every descriptor still
  /// pending on this host is abandoned, so completion events that arrive
  /// after the program returned cannot write into its dead stack frames or
  /// freed buffers. Called by Cluster::run when a node program returns.
  void quiesce() noexcept;

  // --- connection management ---
  VipResult connectWait(const VipNetAddress& local, sim::Duration timeout,
                        PendingConn& out);
  VipResult connectAccept(const PendingConn& conn, Vi* vi);
  VipResult connectReject(const PendingConn& conn);
  VipResult connectRequest(Vi* vi, const VipNetAddress& remote,
                           sim::Duration timeout,
                           VipViAttributes* remoteAttrs = nullptr);
  VipResult disconnect(Vi* vi);
  /// Returns a VI that ended up in Error or Disconnected to Idle so it can
  /// be reconnected: abandons every still-pending descriptor (completions
  /// in flight become no-ops), drops unreaped completions, and clears the
  /// NIC endpoint's connection state. Also legal on a Connected VI, as a
  /// hard local reset with no Disconnect dialog — session layers use it to
  /// abandon a half-open connection whose peer already reset its side. The
  /// VI's epoch survives — the next connect bumps it. Foundation of the
  /// session/recovery layer; not part of the VIPL 1.0 surface.
  VipResult resetVi(Vi* vi);

  // --- data transfer ---
  VipResult postSend(Vi* vi, VipDescriptor* desc);
  VipResult postRecv(Vi* vi, VipDescriptor* desc);
  VipResult sendDone(Vi* vi, VipDescriptor*& out);
  VipResult recvDone(Vi* vi, VipDescriptor*& out);
  VipResult sendWait(Vi* vi, sim::Duration timeout, VipDescriptor*& out);
  VipResult recvWait(Vi* vi, sim::Duration timeout, VipDescriptor*& out);
  /// One-shot asynchronous completion handler (VipRecvNotify). The handler
  /// runs in "interrupt context": it may post descriptors and fire signals
  /// but must not block.
  VipResult recvNotify(Vi* vi, std::function<void(VipDescriptor*)> handler);

  VipResult cqDone(Cq* cq, Vi*& vi, bool& isRecv);
  VipResult cqWait(Cq* cq, sim::Duration timeout, Vi*& vi, bool& isRecv);

  // --- efficient polling (simulation-friendly spin loops) ---
  // Semantically identical to `while (xxxDone()==NOT_DONE) {}`: the waiting
  // time is charged as busy CPU; completion is observed with poll-cost
  // granularity — but the simulator executes one wakeup, not millions of
  // spins.
  VipResult pollSend(Vi* vi, VipDescriptor*& out);
  VipResult pollRecv(Vi* vi, VipDescriptor*& out);
  VipResult pollCq(Cq* cq, Vi*& vi, bool& isRecv);

  // --- name service ---
  VipResult nsGetHostByName(const std::string& name, fabric::NodeId& out);

  /// Asynchronous error callback (VipErrorCallback): connection losses and
  /// protocol errors not tied to a reaped descriptor.
  void setErrorCallback(std::function<void(Vi*, nic::WorkStatus)> cb) {
    errorCallback_ = std::move(cb);
  }

  /// Attaches a span profiler: postSend emits a Post span covering the
  /// host-side posting cost, and the NIC device emits the downstream
  /// stages. nullptr detaches (and detaches from the device).
  void setSpanProfiler(obs::SpanProfiler* spans) {
    spans_ = spans;
    device_.setSpanProfiler(spans);
  }

  // --- accessors ---
  sim::Engine& engine() { return engine_; }
  mem::HostMemory& memory() { return memory_; }
  mem::MemoryRegistry& registry() { return registry_; }
  nic::NicDevice& device() { return device_; }
  /// Un-reaped completion entries summed over this provider's open CQs.
  /// A time-series sampler probes this as the node's CQ depth.
  std::size_t cqDepthTotal() const {
    std::size_t n = 0;
    for (const auto& cq : cqs_) {
      if (cq) n += cq->depth();
    }
    return n;
  }
  const nic::NicProfile& profile() const { return profile_; }
  fabric::NodeId nodeId() const { return node_; }
  const std::string& hostName() const { return hostName_; }

 private:
  struct PendingWr {
    VipDescriptor* desc = nullptr;
    Vi* vi = nullptr;
    bool isSend = true;
  };
  struct PendingConnect {
    std::unique_ptr<sim::Signal> signal;
    bool responded = false;
    bool accepted = false;
    std::uint8_t rejectReason = 0;
    nic::ViEndpointId remoteVi = 0;
    fabric::NodeId remoteNode = 0;
    VipViAttributes remoteAttrs;
    std::uint32_t mts = 0;
    std::uint32_t epoch = 0;
  };
  struct Listener {
    std::unique_ptr<sim::Signal> signal;
    std::deque<std::pair<PendingConn, sim::EventId>> queue;  // + grace event
    std::size_t waiters = 0;
  };

  /// Charges the calling process `d` of busy virtual time.
  void charge(sim::Duration d);
  /// Adds ISR time already spent on the process's behalf (blocking reaps).
  void chargeKernelCpu(sim::Duration d);
  /// Latency + CPU accounting for waking from a blocking wait.
  void blockingWakeup();

  VipResult validateSegments(const Vi& vi,
                             const std::vector<VipDataSegment>& ds) const;
  nic::WorkRequest buildWorkRequest(const VipDescriptor& desc,
                                    std::uint64_t cookie) const;

  void onCompletion(nic::ViEndpointId ep, nic::Completion&& c);
  void deliverCompletion(Vi* vi, VipDescriptor* desc, bool isSend);
  void onControl(fabric::Packet&& p);
  void onConnRequest(fabric::Packet&& p);
  void onConnResponse(fabric::Packet&& p);
  void onDisconnect(fabric::Packet&& p);
  void onConnectionError(nic::ViEndpointId ep, nic::WorkStatus why);
  /// Defers errorCallback_ to a zero-delay event so handlers may call
  /// disconnect/resetVi/destroyVi without re-entering the control path that
  /// noticed the failure. The VI is re-resolved by endpoint id at delivery
  /// time (endpoint ids are never reused), so a VI destroyed in the
  /// meantime simply drops the notification.
  void scheduleErrorCallback(nic::ViEndpointId ep, nic::WorkStatus why);

  sim::Engine& engine_;
  fabric::NodeId node_;
  nic::NicProfile profile_;
  std::shared_ptr<NameService> ns_;
  std::string hostName_;

  mem::HostMemory memory_;
  mem::MemoryRegistry registry_;
  nic::NicDevice device_;

  std::vector<std::unique_ptr<Vi>> vis_;
  std::vector<std::unique_ptr<Cq>> cqs_;
  std::unordered_map<nic::ViEndpointId, Vi*> byEndpoint_;
  std::unordered_map<std::uint64_t, PendingWr> pending_;
  std::uint64_t nextCookie_ = 1;

  std::unordered_map<std::uint64_t, Listener> listeners_;
  std::unordered_map<std::uint32_t, PendingConnect> pendingConnects_;
  std::uint32_t nextConnToken_ = 1;

  std::function<void(Vi*, nic::WorkStatus)> errorCallback_;
  obs::SpanProfiler* spans_ = nullptr;
};

}  // namespace vibe::vipl
