// Flat, spec-named VIPL surface.
//
// Applications and the VIBe micro-benchmarks can program against the exact
// function names of the VIA Provider Library specification; each call
// forwards to the Provider object for the NIC handle. This keeps benchmark
// code readable side-by-side with the paper and with historical VIA code.
#pragma once

#include "vipl/provider.hpp"

namespace vibe::vipl {

// --- NIC ---
inline VipResult VipQueryNic(Provider& nic, VipNicAttributes& attrs) {
  return nic.queryNic(attrs);
}

// --- protection tags ---
inline mem::PtagId VipCreatePtag(Provider& nic) { return nic.createPtag(); }
inline VipResult VipDestroyPtag(Provider& nic, mem::PtagId ptag) {
  return nic.destroyPtag(ptag);
}

// --- memory ---
inline VipResult VipRegisterMem(Provider& nic, mem::VirtAddr va,
                                std::uint64_t len,
                                const VipMemAttributes& attrs,
                                mem::MemHandle& handle) {
  return nic.registerMem(va, len, attrs, handle);
}
inline VipResult VipDeregisterMem(Provider& nic, mem::MemHandle handle) {
  return nic.deregisterMem(handle);
}

// --- VI lifecycle ---
inline VipResult VipCreateVi(Provider& nic, const VipViAttributes& attrs,
                             Cq* sendCq, Cq* recvCq, Vi*& vi) {
  return nic.createVi(attrs, sendCq, recvCq, vi);
}
inline VipResult VipDestroyVi(Provider& nic, Vi* vi) {
  return nic.destroyVi(vi);
}
inline VipResult VipQueryVi(Provider& nic, Vi* vi, ViState& state,
                            VipViAttributes& attrs, bool& sendQueueEmpty,
                            bool& recvQueueEmpty) {
  return nic.queryVi(vi, state, attrs, sendQueueEmpty, recvQueueEmpty);
}
inline VipResult VipSetViAttributes(Provider& nic, Vi* vi,
                                    const VipViAttributes& attrs) {
  return nic.setViAttributes(vi, attrs);
}

// --- completion queues ---
inline VipResult VipCreateCQ(Provider& nic, std::size_t entries, Cq*& cq) {
  return nic.createCq(entries, cq);
}
inline VipResult VipDestroyCQ(Provider& nic, Cq* cq) {
  return nic.destroyCq(cq);
}
inline VipResult VipResizeCQ(Provider& nic, Cq* cq, std::size_t entries) {
  return nic.resizeCq(cq, entries);
}
inline VipResult VipCQDone(Provider& nic, Cq* cq, Vi*& vi, bool& isRecv) {
  return nic.cqDone(cq, vi, isRecv);
}
inline VipResult VipCQWait(Provider& nic, Cq* cq, sim::Duration timeout,
                           Vi*& vi, bool& isRecv) {
  return nic.cqWait(cq, timeout, vi, isRecv);
}

// --- connection management ---
inline VipResult VipConnectWait(Provider& nic, const VipNetAddress& local,
                                sim::Duration timeout, PendingConn& conn) {
  return nic.connectWait(local, timeout, conn);
}
inline VipResult VipConnectAccept(Provider& nic, const PendingConn& conn,
                                  Vi* vi) {
  return nic.connectAccept(conn, vi);
}
inline VipResult VipConnectReject(Provider& nic, const PendingConn& conn) {
  return nic.connectReject(conn);
}
inline VipResult VipConnectRequest(Provider& nic, Vi* vi,
                                   const VipNetAddress& remote,
                                   sim::Duration timeout,
                                   VipViAttributes* remoteAttrs = nullptr) {
  return nic.connectRequest(vi, remote, timeout, remoteAttrs);
}
inline VipResult VipDisconnect(Provider& nic, Vi* vi) {
  return nic.disconnect(vi);
}
/// Extension beyond VIPL 1.0: returns an Error/Disconnected/Connected VI
/// to Idle so it can be reconnected; in-flight descriptors are abandoned
/// and a live connection is torn down (see Provider::resetVi).
inline VipResult VipResetVi(Provider& nic, Vi* vi) { return nic.resetVi(vi); }

// --- data transfer ---
inline VipResult VipPostSend(Provider& nic, Vi* vi, VipDescriptor* desc) {
  return nic.postSend(vi, desc);
}
inline VipResult VipPostRecv(Provider& nic, Vi* vi, VipDescriptor* desc) {
  return nic.postRecv(vi, desc);
}
inline VipResult VipSendDone(Provider& nic, Vi* vi, VipDescriptor*& desc) {
  return nic.sendDone(vi, desc);
}
inline VipResult VipRecvDone(Provider& nic, Vi* vi, VipDescriptor*& desc) {
  return nic.recvDone(vi, desc);
}
inline VipResult VipSendWait(Provider& nic, Vi* vi, sim::Duration timeout,
                             VipDescriptor*& desc) {
  return nic.sendWait(vi, timeout, desc);
}
inline VipResult VipRecvWait(Provider& nic, Vi* vi, sim::Duration timeout,
                             VipDescriptor*& desc) {
  return nic.recvWait(vi, timeout, desc);
}
inline VipResult VipRecvNotify(Provider& nic, Vi* vi,
                               std::function<void(VipDescriptor*)> handler) {
  return nic.recvNotify(vi, std::move(handler));
}

// --- name service ---
inline VipResult VipNSGetHostByName(Provider& nic, const std::string& name,
                                    fabric::NodeId& addr) {
  return nic.nsGetHostByName(name, addr);
}

// --- error handling ---
inline void VipErrorCallback(Provider& nic,
                             std::function<void(Vi*, nic::WorkStatus)> cb) {
  nic.setErrorCallback(std::move(cb));
}

}  // namespace vibe::vipl
