#include "obs/timeseries.hpp"

#include <cstdio>
#include <sstream>

#include "obs/trace_export.hpp"

namespace vibe::obs {

void TimeSeriesSampler::setPeriod(sim::Duration periodNs) {
  if (periodNs <= 0) {
    throw sim::SimError("TimeSeriesSampler: period must be > 0 ns");
  }
  period_ = periodNs;
}

std::size_t TimeSeriesSampler::addProbe(std::string name, Probe probe) {
  if (!probe) throw sim::SimError("TimeSeriesSampler: null probe");
  if (!times_.empty()) {
    throw sim::SimError(
        "TimeSeriesSampler: register probes before the first window is "
        "captured (rows are rectangular)");
  }
  names_.push_back(std::move(name));
  probes_.push_back(std::move(probe));
  return names_.size() - 1;
}

std::size_t TimeSeriesSampler::addCounter(std::string name, const Counter& c) {
  return addProbe(std::move(name), [&c](sim::SimTime) {
    return static_cast<double>(c.value());
  });
}

std::size_t TimeSeriesSampler::addGauge(std::string name, const Gauge& g) {
  return addProbe(std::move(name), [&g](sim::SimTime) { return g.value(); });
}

std::size_t TimeSeriesSampler::addHistogramQuantile(std::string name,
                                                    const Histogram& h,
                                                    double q) {
  return addProbe(std::move(name),
                  [&h, q](sim::SimTime) { return h.quantile(q); });
}

void TimeSeriesSampler::addWindowHook(std::function<void(sim::SimTime)> hook) {
  if (!hook) throw sim::SimError("TimeSeriesSampler: null window hook");
  hooks_.push_back(std::move(hook));
}

void TimeSeriesSampler::attach(sim::Engine& engine) {
  if (period_ <= 0) {
    throw sim::SimError(
        "TimeSeriesSampler::attach: setPeriod() must be called first");
  }
  if (engine_ != nullptr) {
    throw sim::SimError("TimeSeriesSampler::attach: already attached");
  }
  engine_ = &engine;
  // First boundary: the next multiple of the period strictly after now,
  // so boundaries are absolute-time aligned and re-attaching after a
  // pause resumes the same grid.
  const sim::SimTime now = engine.now();
  nextDue_ = (now / period_ + 1) * period_;
  engine.setTimeObserver(this);
}

void TimeSeriesSampler::detach() {
  if (engine_ == nullptr) return;
  if (engine_->timeObserver() == this) engine_->setTimeObserver(nullptr);
  engine_ = nullptr;
}

void TimeSeriesSampler::onTimeAdvance(sim::SimTime now) {
  while (now >= nextDue_) {
    capture(nextDue_);
    nextDue_ += period_;
  }
}

void TimeSeriesSampler::flushUntil(sim::SimTime now) {
  if (period_ <= 0) return;
  if (nextDue_ == 0) nextDue_ = period_;
  while (nextDue_ <= now) {
    capture(nextDue_);
    nextDue_ += period_;
  }
}

void TimeSeriesSampler::capture(sim::SimTime at) {
  std::vector<double> row;
  row.reserve(probes_.size());
  for (Probe& p : probes_) row.push_back(p(at));
  if (times_.size() == maxWindows_) {
    times_.pop_front();
    rows_.pop_front();
    ++dropped_;
  }
  times_.push_back(at);
  rows_.push_back(std::move(row));
  for (auto& hook : hooks_) hook(at);
}

std::string TimeSeriesSampler::renderCsv() const {
  std::ostringstream os;
  os << "t_ns";
  for (const std::string& n : names_) os << ',' << n;
  os << '\n';
  char buf[32];
  for (std::size_t w = 0; w < times_.size(); ++w) {
    os << times_[w];
    for (const double v : rows_[w]) {
      std::snprintf(buf, sizeof(buf), "%.17g", v);
      os << ',' << buf;
    }
    os << '\n';
  }
  return os.str();
}

void TimeSeriesSampler::exportCounterTracks(TraceJsonExporter& exporter,
                                            std::uint32_t pid) const {
  for (std::size_t w = 0; w < times_.size(); ++w) {
    for (std::size_t s = 0; s < names_.size(); ++s) {
      exporter.counter(names_[s], times_[w], rows_[w][s], pid);
    }
  }
}

void TimeSeriesSampler::clear() {
  times_.clear();
  rows_.clear();
  dropped_ = 0;
}

void publishShardProfiles(MetricsRegistry& registry, std::string_view scope,
                          const std::vector<sim::ShardProfile>& profiles,
                          double loadImbalance) {
  for (const sim::ShardProfile& p : profiles) {
    const std::string base =
        scoped(scope, "shard" + std::to_string(p.shard));
    registry.counter(base + "/events").add(p.events);
    registry.counter(base + "/windows_active").add(p.windowsActive);
    registry.counter(base + "/exec_ns").add(p.execNs);
    registry.counter(base + "/barrier_wait_ns").add(p.barrierWaitNs);
    registry.counter(base + "/cross_shard_sent").add(p.crossShardSent);
    registry.gauge(base + "/domains").set(static_cast<double>(p.domains));
  }
  registry.gauge(scoped(scope, "load_imbalance")).set(loadImbalance);
}

}  // namespace vibe::obs
