// Time-series telemetry: metric-over-sim-time sampling.
//
// A TimeSeriesSampler snapshots a set of registered probes (counters,
// gauges, histogram quantiles, arbitrary callables) at a fixed virtual-
// time cadence into bounded ring buffers. It drives itself through the
// engine's TimeObserver hook: whenever virtual time crosses a window
// boundary the sampler captures one row stamped at exactly that
// boundary — the simulation state at the stamp is "every event strictly
// before the boundary has executed", which is a property of the event
// timeline, not of the host schedule, so the captured series is byte-
// identical across VIBE_JOBS and (for serial-engine workloads)
// VIBE_SIM_SHARDS.
//
// Like every obs attachment the sampler is null-by-default: nothing in
// the simulator references one unless it was attached, and a detached
// engine pays one pointer test per event (proven by golden-table
// byte-identity). Export paths: renderCsv() for plotting/diffing, and
// exportCounterTracks() merging ph:"C" counter tracks into the
// VIBE_TRACE_OUT Perfetto stream (see docs/OBSERVABILITY.md).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "simcore/engine.hpp"
#include "simcore/pdes.hpp"

namespace vibe::obs {

class TraceJsonExporter;

class TimeSeriesSampler : public sim::TimeObserver {
 public:
  /// A probe reads one value at a window boundary. `at` is the boundary
  /// timestamp; probes must only read simulation state, never mutate it
  /// or post events.
  using Probe = std::function<double(sim::SimTime at)>;

  /// `maxWindows` bounds the ring: when full, the oldest window is
  /// dropped (droppedWindows() counts them) so a long soak cannot grow
  /// without bound.
  explicit TimeSeriesSampler(std::size_t maxWindows = 4096)
      : maxWindows_(maxWindows == 0 ? 1 : maxWindows) {}

  /// Sampling cadence in virtual nanoseconds; must be > 0 before attach.
  void setPeriod(sim::Duration periodNs);
  sim::Duration period() const { return period_; }

  /// Registers a probe; returns its series index. Register all probes
  /// before the first window is captured — rows are rectangular.
  std::size_t addProbe(std::string name, Probe probe);
  /// Convenience registrations over the metrics primitives. The referred
  /// objects must outlive the sampler's use.
  std::size_t addCounter(std::string name, const Counter& c);
  std::size_t addGauge(std::string name, const Gauge& g);
  std::size_t addHistogramQuantile(std::string name, const Histogram& h,
                                   double q);

  /// Runs after each captured window (same boundary timestamp). The SLO
  /// monitor binds through this to compute its rolling-window stats in
  /// lockstep with the sampler cadence.
  void addWindowHook(std::function<void(sim::SimTime)> hook);

  /// Starts observing `engine`: the next boundary is the first multiple
  /// of the period strictly after engine.now(). detach() (or the
  /// sampler's destruction — caller's responsibility) must happen before
  /// the engine outlives it.
  void attach(sim::Engine& engine);
  void detach();

  /// TimeObserver: captures every boundary in (prev, now].
  void onTimeAdvance(sim::SimTime now) override;

  /// Captures any remaining boundaries <= `now`; call after a run drains
  /// so the tail of the timeline is not lost. Idempotent per boundary.
  void flushUntil(sim::SimTime now);

  /// --- captured data ---
  std::size_t seriesCount() const { return names_.size(); }
  const std::string& seriesName(std::size_t i) const { return names_[i]; }
  std::size_t windowCount() const { return times_.size(); }
  std::uint64_t droppedWindows() const { return dropped_; }
  sim::SimTime windowTime(std::size_t w) const { return times_[w]; }
  double value(std::size_t w, std::size_t series) const {
    return rows_[w][series];
  }

  /// "t_ns,<name>,<name>,...\n" header plus one row per window. Values
  /// render with %.17g so the CSV is a byte-exact determinism witness.
  std::string renderCsv() const;

  /// Emits every window of every series as ph:"C" counter-track samples.
  void exportCounterTracks(TraceJsonExporter& exporter,
                           std::uint32_t pid = 0) const;

  void clear();

 private:
  void capture(sim::SimTime at);

  std::size_t maxWindows_;
  sim::Duration period_ = 0;
  sim::SimTime nextDue_ = 0;
  sim::Engine* engine_ = nullptr;
  std::vector<std::string> names_;
  std::vector<Probe> probes_;
  std::vector<std::function<void(sim::SimTime)>> hooks_;
  std::deque<sim::SimTime> times_;
  std::deque<std::vector<double>> rows_;
  std::uint64_t dropped_ = 0;
};

/// Publishes a PDES shard-profile snapshot into a metrics registry under
/// `scope` (e.g. "pdes"): per-shard counters for events, windows-active,
/// exec/barrier wall nanoseconds, and cross-shard sends, plus the
/// engine-wide load-imbalance gauge. Wall-clock values are inherently
/// non-deterministic — callers keep them out of golden output.
void publishShardProfiles(MetricsRegistry& registry, std::string_view scope,
                          const std::vector<sim::ShardProfile>& profiles,
                          double loadImbalance);

}  // namespace vibe::obs
