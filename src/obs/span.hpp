// Sim-time span profiler: stage-attributed latency decomposition.
//
// Each message moving through the simulated VIA stack traverses a fixed
// pipeline of stages (post -> doorbell -> NIC tx -> wire -> rx ->
// reassembly -> completion). The datapath models emit one span per stage
// traversal when a profiler is attached — begin/end are virtual times the
// models already compute to schedule their events, so attribution costs
// nothing in simulated time and nothing at all when detached. The profiler
// aggregates spans into per-stage histograms (the "where does a microsecond
// go" table) and can retain the raw events for Perfetto export.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "obs/metrics.hpp"
#include "simcore/time.hpp"

namespace vibe::obs {

/// Pipeline stages of one message, in traversal order. EndToEnd is the
/// derived post-to-receive-completion envelope, recorded alongside the
/// stages so attribution sums can be checked against it.
enum class Stage : std::uint8_t {
  Post,        // VIPL library: descriptor build + doorbell ring (host CPU)
  Doorbell,    // NIC discovery of the rung doorbell (pickup latency)
  NicTx,       // NIC send processing + translation + DMA to the wire
  Wire,        // link serialization + propagation + switch forwarding
  Rx,          // receive-side NIC/kernel processing
  Reassembly,  // descriptor match + placement DMA into host memory
  Completion,  // completion writeback to the host
  EndToEnd,    // whole journey: post time -> receive completion written
  Reconnect,   // session recovery episode: connection loss -> re-established
  kCount,
};

const char* toString(Stage s);

/// True for the stages that tile a message's one-way journey (everything
/// except the derived EndToEnd envelope and the out-of-band Reconnect
/// episodes, which span whole outages rather than one message's hops).
constexpr bool isPipelineStage(Stage s) {
  return s != Stage::EndToEnd && s != Stage::Reconnect && s != Stage::kCount;
}

/// One stage traversal. `node`/`vi` attribute the span to the side that
/// performed the work (the sender for Post..Wire, the receiver from Rx on).
struct SpanEvent {
  Stage stage = Stage::Post;
  std::uint32_t node = 0;
  std::uint32_t vi = 0;
  sim::SimTime begin = 0;
  sim::SimTime end = 0;
  std::uint64_t bytes = 0;
};

class SpanProfiler {
 public:
  /// `maxEvents` bounds raw-event retention (aggregation is unaffected);
  /// events beyond the cap are dropped and counted.
  explicit SpanProfiler(std::size_t maxEvents = 1u << 20)
      : maxEvents_(maxEvents) {}

  /// Retain raw events for export (off by default: aggregate-only).
  void setKeepEvents(bool keep) { keepEvents_ = keep; }

  /// Records a completed span. A span with end < begin is malformed: it is
  /// dropped and counted as a mismatch.
  void emit(Stage stage, std::uint32_t node, std::uint32_t vi,
            sim::SimTime begin, sim::SimTime end, std::uint64_t bytes = 0);

  // Scoped begin/end API for call sites that bracket work instead of
  // computing both times up front. Spans nest per (stage, node, vi):
  // begin/begin/end/end attributes the inner and outer spans separately.
  void beginSpan(Stage stage, std::uint32_t node, std::uint32_t vi,
                 sim::SimTime now);
  /// Closes the innermost open span for the key. Returns false (and counts
  /// a mismatch) if none is open.
  bool endSpan(Stage stage, std::uint32_t node, std::uint32_t vi,
               sim::SimTime now, std::uint64_t bytes = 0);

  /// endSpan calls with no matching beginSpan + malformed emit calls.
  std::uint64_t mismatchCount() const { return mismatches_; }
  /// Spans begun but never ended (leaks at inspection time).
  std::size_t openSpanCount() const { return openSpans_; }

  const Histogram& stage(Stage s) const {
    return byStage_.at(static_cast<std::size_t>(s));
  }
  std::uint64_t totalSpans() const { return totalSpans_; }

  const std::vector<SpanEvent>& events() const { return events_; }
  std::uint64_t eventsDropped() const { return eventsDropped_; }

  /// Delivered messages attributed so far (EndToEnd span count, falling
  /// back to the busiest pipeline stage when EndToEnd was never emitted).
  std::size_t messageCount() const;

  /// Per-message stage attribution sum, in usec: each pipeline stage's
  /// total time divided by the message count, summed. Stages traversed
  /// several times per message (Wire hops, multi-fragment NicTx) count in
  /// full, so this should match the EndToEnd mean up to pipelining overlap.
  double stageMeanSumUsec() const;

  /// Aligned-text attribution table: one row per stage with count, mean,
  /// p50/p99 and share of the stage-sum, plus the end-to-end cross-check.
  std::string renderAttribution() const;

  void clear();

  /// Merges another profiler into this one: per-stage histograms merge,
  /// retained events concatenate in the other's recorded order (call in
  /// shard order so the combined buffer is schedule-independent), and the
  /// span/mismatch/drop counters add. Open spans do not transfer — a
  /// shard must close its spans before being merged, and any still-open
  /// ones count as mismatches in the destination.
  void mergeFrom(const SpanProfiler& other);

 private:
  using Key = std::tuple<std::uint8_t, std::uint32_t, std::uint32_t>;

  std::array<Histogram, static_cast<std::size_t>(Stage::kCount)> byStage_;
  std::map<Key, std::vector<sim::SimTime>> open_;
  std::size_t openSpans_ = 0;
  std::vector<SpanEvent> events_;
  std::size_t maxEvents_;
  bool keepEvents_ = false;
  std::uint64_t totalSpans_ = 0;
  std::uint64_t mismatches_ = 0;
  std::uint64_t eventsDropped_ = 0;
};

}  // namespace vibe::obs
