// SLO monitoring over rolling latency windows.
//
// An SloMonitor watches one cumulative latency Histogram and, sampled at
// the TimeSeriesSampler cadence (or manually), computes per-window
// statistics from the delta of the histogram's bucket counts since the
// previous window: p50/p99/p99.9 at bucket resolution, the fraction of
// samples over the SLO threshold, and the burn rate — how fast the error
// budget (1 - target) is being consumed; burn 1.0 means "exactly on
// budget", >1 means the budget depletes early. Threshold crossings of
// the windowed p99 emit TraceCategory::User records into an attached
// Tracer, so a flight-recorder dump shows when the SLO went red.
//
// Because windows are diffed from the same log-bucketed histogram the
// offline tooling reads, a window's quantiles match an offline
// recomputation from the exact window samples to within one log-bucket —
// pinned by test (tests/test_obs.cpp).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "simcore/trace.hpp"

namespace vibe::obs {

class TimeSeriesSampler;

class SloMonitor {
 public:
  struct Window {
    sim::SimTime t = 0;             // boundary timestamp (window end)
    std::uint64_t count = 0;        // samples recorded in the window
    double p50 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
    double p9999 = 0.0;
    std::uint64_t overThreshold = 0;
    double burnRate = 0.0;          // (over/count) / (1 - target)
  };

  /// Watches `source`; the histogram must outlive the monitor's use.
  /// `maxWindows` bounds the retained window history (drop-oldest).
  SloMonitor(std::string name, const Histogram& source,
             std::size_t maxWindows = 4096)
      : name_(std::move(name)),
        source_(&source),
        maxWindows_(maxWindows == 0 ? 1 : maxWindows) {}

  const std::string& name() const { return name_; }

  /// SLO: `target` fraction of samples (default 0.99) must land at or
  /// under `thresholdNs`. The threshold also drives p99 crossing events.
  void setThresholdNs(std::uint64_t ns) { thresholdNs_ = ns; }
  void setTarget(double fraction);
  std::uint64_t thresholdNs() const { return thresholdNs_; }
  double target() const { return target_; }

  /// Crossing events (windowed p99 rising above / falling back under the
  /// threshold) are recorded as TraceCategory::User with `component`.
  void setTracer(sim::Tracer* tracer, std::uint32_t component = 0) {
    tracer_ = tracer;
    component_ = component;
  }

  /// Registers sample() as a window hook plus p50/p99/p99.9/p99.99/burn
  /// series
  /// on the sampler, so the monitor runs in lockstep with the sampler
  /// cadence and its stats land in the same CSV / counter tracks.
  void bindTo(TimeSeriesSampler& sampler);

  /// Computes one window from the histogram delta since the last call.
  void sample(sim::SimTime t);

  const std::deque<Window>& windows() const { return windows_; }
  const Window& lastWindow() const { return windows_.back(); }
  /// Total threshold crossings (each direction counts one).
  std::uint64_t crossings() const { return crossings_; }
  std::uint64_t crossingCount() const { return crossings_; }
  /// True while the most recent window's p99 exceeds the threshold.
  bool breached() const { return over_; }

  /// Quantile over raw bucket counts (no min/max clamp): the shared
  /// arithmetic for windows and for offline recomputation in tests.
  static double quantileFromCounts(const std::vector<std::uint64_t>& counts,
                                   double q);

 private:
  std::string name_;
  const Histogram* source_;
  std::size_t maxWindows_;
  std::uint64_t thresholdNs_ = 0;
  double target_ = 0.99;
  sim::Tracer* tracer_ = nullptr;
  std::uint32_t component_ = 0;
  std::vector<std::uint64_t> prevBuckets_;
  std::uint64_t prevAbove_ = 0;
  std::deque<Window> windows_;
  std::uint64_t crossings_ = 0;
  bool over_ = false;
};

}  // namespace vibe::obs
