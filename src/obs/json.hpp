// Shared JSON string escaping for the observability exporters.
//
// Every name that reaches a JSON output — trace-event names, counter
// track names, metric keys, flight-recorder reasons — passes through
// jsonEscape() so hostile names (quotes, backslashes, control
// characters) cannot produce an unparseable file. One implementation,
// audited once, used by trace_export, metrics JSON, the time-series
// sampler, and the flight recorder.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace vibe::obs {

/// Escapes `s` for embedding inside a JSON string literal: quote,
/// backslash, and the named control characters get two-character
/// escapes; any other byte below 0x20 becomes \u00XX. Everything else
/// passes through byte-for-byte (UTF-8 stays valid because multi-byte
/// sequences never contain bytes below 0x80).
inline std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Renders a double as a JSON number: %.17g round-trips exactly;
/// non-finite values (JSON has no NaN/Infinity literal) become null.
inline std::string jsonNumber(double v) {
  if (!(v == v) || v > 1.7976931348623157e308 || v < -1.7976931348623157e308) {
    return "null";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace vibe::obs
