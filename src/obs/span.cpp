#include "obs/span.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace vibe::obs {

const char* toString(Stage s) {
  switch (s) {
    case Stage::Post: return "post";
    case Stage::Doorbell: return "doorbell";
    case Stage::NicTx: return "nic_tx";
    case Stage::Wire: return "wire";
    case Stage::Rx: return "rx";
    case Stage::Reassembly: return "reassembly";
    case Stage::Completion: return "completion";
    case Stage::EndToEnd: return "end_to_end";
    case Stage::Reconnect: return "reconnect";
    case Stage::kCount: break;
  }
  return "?";
}

void SpanProfiler::emit(Stage stage, std::uint32_t node, std::uint32_t vi,
                        sim::SimTime begin, sim::SimTime end,
                        std::uint64_t bytes) {
  if (end < begin || stage >= Stage::kCount) {
    ++mismatches_;
    return;
  }
  byStage_[static_cast<std::size_t>(stage)].add(end - begin);
  ++totalSpans_;
  if (keepEvents_) {
    if (events_.size() < maxEvents_) {
      events_.push_back({stage, node, vi, begin, end, bytes});
    } else {
      ++eventsDropped_;
    }
  }
}

void SpanProfiler::beginSpan(Stage stage, std::uint32_t node,
                             std::uint32_t vi, sim::SimTime now) {
  open_[{static_cast<std::uint8_t>(stage), node, vi}].push_back(now);
  ++openSpans_;
}

bool SpanProfiler::endSpan(Stage stage, std::uint32_t node, std::uint32_t vi,
                           sim::SimTime now, std::uint64_t bytes) {
  const auto it = open_.find({static_cast<std::uint8_t>(stage), node, vi});
  if (it == open_.end() || it->second.empty()) {
    ++mismatches_;
    return false;
  }
  const sim::SimTime begin = it->second.back();
  it->second.pop_back();
  if (it->second.empty()) open_.erase(it);
  --openSpans_;
  emit(stage, node, vi, begin, now, bytes);
  return true;
}

std::size_t SpanProfiler::messageCount() const {
  // The EndToEnd span is emitted once per delivered message; when it is
  // absent (e.g. only the send side was instrumented), fall back to the
  // busiest once-per-message stage so per-message division stays sane.
  const std::size_t e2e = stage(Stage::EndToEnd).count();
  if (e2e > 0) return e2e;
  std::size_t best = 0;
  for (std::size_t i = 0; i < byStage_.size(); ++i) {
    if (!isPipelineStage(static_cast<Stage>(i))) continue;
    best = std::max(best, byStage_[i].count());
  }
  return best;
}

double SpanProfiler::stageMeanSumUsec() const {
  // Per-message attribution: stages traversed multiple times per message
  // (Wire crosses link + switch + link; NicTx once per fragment) must
  // contribute their total, so divide each stage's time by the message
  // count, not its own span count.
  const std::size_t msgs = messageCount();
  if (msgs == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < byStage_.size(); ++i) {
    if (!isPipelineStage(static_cast<Stage>(i))) continue;
    sum += byStage_[i].sum() / static_cast<double>(msgs);
  }
  return sum / 1e3;
}

std::string SpanProfiler::renderAttribution() const {
  std::ostringstream os;
  os << "stage attribution (per message; where does a microsecond go)\n";
  os << "  " << std::left << std::setw(11) << "stage" << std::right
     << std::setw(9) << "spans" << std::setw(12) << "per_msg_us"
     << std::setw(12) << "span_p50_us" << std::setw(12) << "span_p99_us"
     << std::setw(9) << "share" << '\n';
  const double sumUs = stageMeanSumUsec();
  const std::size_t msgs = messageCount();
  for (std::size_t i = 0; i < byStage_.size(); ++i) {
    const auto stg = static_cast<Stage>(i);
    if (!isPipelineStage(stg)) continue;
    const Histogram& h = byStage_[i];
    const double perMsgUs =
        msgs ? h.sum() / static_cast<double>(msgs) / 1e3 : 0.0;
    os << "  " << std::left << std::setw(11) << toString(stg) << std::right
       << std::setw(9) << h.count() << std::fixed << std::setprecision(3)
       << std::setw(12) << perMsgUs << std::setw(12) << h.quantile(0.5) / 1e3
       << std::setw(12) << h.quantile(0.99) / 1e3 << std::setprecision(1)
       << std::setw(8) << (sumUs > 0.0 ? 100.0 * perMsgUs / sumUs : 0.0)
       << "%" << '\n';
  }
  os << std::fixed << std::setprecision(3);
  os << "  per-message stage sum: " << sumUs << " us\n";
  const Histogram& e2e = stage(Stage::EndToEnd);
  if (e2e.count() > 0) {
    os << "  end-to-end (post -> recv completion): mean " << e2e.mean() / 1e3
       << " us  p50 " << e2e.quantile(0.5) / 1e3 << " us  p99 "
       << e2e.quantile(0.99) / 1e3 << " us over " << e2e.count()
       << " messages\n";
  }
  if (mismatches_ > 0 || openSpans_ > 0) {
    os << "  (" << mismatches_ << " mismatched, " << openSpans_
       << " still open)\n";
  }
  return os.str();
}

void SpanProfiler::mergeFrom(const SpanProfiler& other) {
  for (std::size_t i = 0; i < byStage_.size(); ++i) {
    byStage_[i].merge(other.byStage_[i]);
  }
  // Concatenate retained events up to this profiler's own cap; the shard's
  // recorded order is preserved, so merging shards in index order yields a
  // schedule-independent combined buffer.
  if (keepEvents_) {
    for (const SpanEvent& e : other.events_) {
      if (events_.size() < maxEvents_) {
        events_.push_back(e);
      } else {
        ++eventsDropped_;
      }
    }
  }
  totalSpans_ += other.totalSpans_;
  mismatches_ += other.mismatches_ + other.openSpans_;
  eventsDropped_ += other.eventsDropped_;
}

void SpanProfiler::clear() {
  for (auto& h : byStage_) h.clear();
  open_.clear();
  openSpans_ = 0;
  events_.clear();
  totalSpans_ = 0;
  mismatches_ = 0;
  eventsDropped_ = 0;
}

}  // namespace vibe::obs
