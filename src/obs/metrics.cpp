#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <iomanip>
#include <sstream>

#include "obs/json.hpp"

namespace vibe::obs {

namespace {
constexpr std::uint64_t kSubCount = 1ull << Histogram::kSubBits;
}  // namespace

std::size_t Histogram::bucketIndex(std::uint64_t value) {
  value = std::min(value, kMaxValue);
  if (value < kSubCount) return static_cast<std::size_t>(value);
  const int octave = std::bit_width(value) - 1;  // >= kSubBits
  const std::uint64_t sub = (value >> (octave - kSubBits)) & (kSubCount - 1);
  return static_cast<std::size_t>(
      (static_cast<std::uint64_t>(octave - kSubBits + 1) << kSubBits) + sub);
}

void Histogram::bucketBounds(std::size_t index, std::uint64_t& lo,
                             std::uint64_t& hi) {
  if (index < kSubCount) {
    lo = hi = index;
    return;
  }
  const int octave =
      static_cast<int>(index >> kSubBits) + kSubBits - 1;
  const std::uint64_t sub = index & (kSubCount - 1);
  const std::uint64_t width = 1ull << (octave - kSubBits);
  lo = (1ull << octave) + sub * width;
  hi = lo + width - 1;
}

void Histogram::add(std::int64_t value) {
  const std::uint64_t v =
      value < 0 ? 0 : static_cast<std::uint64_t>(value);
  if (v > kMaxValue) ++overflow_;
  const std::size_t idx = bucketIndex(v);
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0);
  ++buckets_[idx];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += static_cast<double>(v);
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank in [0, count-1]; q=0 names the smallest sample, q=1 the largest.
  const double rank = q * static_cast<double>(count_ - 1);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const double inBucket = static_cast<double>(buckets_[i]);
    if (rank < cumulative + inBucket) {
      std::uint64_t lo = 0;
      std::uint64_t hi = 0;
      bucketBounds(i, lo, hi);
      const double frac = (rank - cumulative) / inBucket;
      const double v =
          static_cast<double>(lo) + frac * static_cast<double>(hi - lo);
      return std::clamp(v, static_cast<double>(min_),
                        static_cast<double>(max_));
    }
    cumulative += inBucket;
  }
  return static_cast<double>(max_);
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  overflow_ += other.overflow_;
}

std::uint64_t Histogram::countAbove(std::uint64_t threshold) const {
  std::uint64_t n = 0;
  for (std::size_t i = buckets_.size(); i-- > 0;) {
    if (buckets_[i] == 0) continue;
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    bucketBounds(i, lo, hi);
    if (lo <= threshold) break;  // buckets below are all <= threshold
    n += buckets_[i];
  }
  return n;
}

void Histogram::clear() {
  buckets_.clear();
  count_ = 0;
  min_ = max_ = 0;
  sum_ = 0.0;
  overflow_ = 0;
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

void MetricsRegistry::mergeFrom(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) {
    counters_[name].add(c.value());
  }
  for (const auto& [name, g] : other.gauges_) {
    gauges_[name].set(g.value());
  }
  for (const auto& [name, h] : other.histograms_) {
    histograms_[name].merge(h);
  }
}

std::string MetricsRegistry::renderText() const {
  std::ostringstream os;
  std::size_t width = 0;
  for (const auto& [name, c] : counters_) width = std::max(width, name.size());
  for (const auto& [name, g] : gauges_) width = std::max(width, name.size());
  for (const auto& [name, h] : histograms_) {
    width = std::max(width, name.size());
  }
  const int w = static_cast<int>(width);
  for (const auto& [name, c] : counters_) {
    os << "  " << std::left << std::setw(w) << name << "  "
       << std::right << std::setw(12) << c.value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    os << "  " << std::left << std::setw(w) << name << "  "
       << std::right << std::setw(12) << std::fixed << std::setprecision(3)
       << g.value() << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    os << "  " << std::left << std::setw(w) << name << "  count="
       << h.count() << std::fixed << std::setprecision(3)
       << "  mean=" << h.mean() / 1e3 << "us  p50=" << h.quantile(0.5) / 1e3
       << "us  p99=" << h.quantile(0.99) / 1e3
       << "us  max=" << static_cast<double>(h.max()) / 1e3 << "us\n";
  }
  return os.str();
}

std::string renderMetricsJson(const MetricsRegistry& registry) {
  std::ostringstream os;
  os << "{\n  \"schema\": 2,\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : registry.counters()) {
    os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
       << "\": " << c.value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : registry.gauges()) {
    os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
       << "\": " << jsonNumber(g.value());
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : registry.histograms()) {
    os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
       << "\": {\"count\": " << h.count() << ", \"min\": " << h.min()
       << ", \"max\": " << h.max() << ", \"sum\": " << jsonNumber(h.sum())
       << ", \"mean\": " << jsonNumber(h.mean())
       << ", \"p50\": " << jsonNumber(h.quantile(0.5))
       << ", \"p99\": " << jsonNumber(h.quantile(0.99))
       << ", \"p999\": " << jsonNumber(h.quantile(0.999))
       << ", \"overflow\": " << h.overflowCount() << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

}  // namespace vibe::obs
