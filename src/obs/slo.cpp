#include "obs/slo.hpp"

#include <algorithm>

#include "obs/timeseries.hpp"

namespace vibe::obs {

void SloMonitor::setTarget(double fraction) {
  if (!(fraction > 0.0) || !(fraction < 1.0)) {
    throw sim::SimError("SloMonitor: target must be in (0, 1)");
  }
  target_ = fraction;
}

double SloMonitor::quantileFromCounts(
    const std::vector<std::uint64_t>& counts, double q) {
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total - 1);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double inBucket = static_cast<double>(counts[i]);
    if (rank < cumulative + inBucket) {
      std::uint64_t lo = 0;
      std::uint64_t hi = 0;
      Histogram::bucketBounds(i, lo, hi);
      const double frac = (rank - cumulative) / inBucket;
      return static_cast<double>(lo) +
             frac * static_cast<double>(hi - lo);
    }
    cumulative += inBucket;
  }
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  Histogram::bucketBounds(counts.size() - 1, lo, hi);
  return static_cast<double>(hi);
}

void SloMonitor::bindTo(TimeSeriesSampler& sampler) {
  // Probes run in registration order, so the first series computes the
  // window for this boundary and the rest read it — row and window stay
  // aligned at the same timestamp.
  sampler.addProbe(name_ + "/p50_ns", [this](sim::SimTime t) {
    sample(t);
    return windows_.back().p50;
  });
  sampler.addProbe(name_ + "/p99_ns", [this](sim::SimTime) {
    return windows_.empty() ? 0.0 : windows_.back().p99;
  });
  sampler.addProbe(name_ + "/p999_ns", [this](sim::SimTime) {
    return windows_.empty() ? 0.0 : windows_.back().p999;
  });
  sampler.addProbe(name_ + "/p9999_ns", [this](sim::SimTime) {
    return windows_.empty() ? 0.0 : windows_.back().p9999;
  });
  sampler.addProbe(name_ + "/burn_rate", [this](sim::SimTime) {
    return windows_.empty() ? 0.0 : windows_.back().burnRate;
  });
}

void SloMonitor::sample(sim::SimTime t) {
  const std::vector<std::uint64_t>& cur = source_->bucketCounts();
  std::vector<std::uint64_t> delta(cur.size(), 0);
  for (std::size_t i = 0; i < cur.size(); ++i) {
    const std::uint64_t prev = i < prevBuckets_.size() ? prevBuckets_[i] : 0;
    delta[i] = cur[i] - prev;
  }
  prevBuckets_ = cur;

  Window w;
  w.t = t;
  for (const std::uint64_t c : delta) w.count += c;
  if (w.count > 0) {
    w.p50 = quantileFromCounts(delta, 0.5);
    w.p99 = quantileFromCounts(delta, 0.99);
    w.p999 = quantileFromCounts(delta, 0.999);
    w.p9999 = quantileFromCounts(delta, 0.9999);
  }
  const std::uint64_t above = source_->countAbove(thresholdNs_);
  w.overThreshold = above - prevAbove_;
  prevAbove_ = above;
  if (w.count > 0 && thresholdNs_ > 0) {
    const double errFrac = static_cast<double>(w.overThreshold) /
                           static_cast<double>(w.count);
    w.burnRate = errFrac / (1.0 - target_);
  }

  if (thresholdNs_ > 0 && w.count > 0) {
    const bool nowOver = w.p99 > static_cast<double>(thresholdNs_);
    if (nowOver != over_) {
      ++crossings_;
      over_ = nowOver;
      sim::trace(tracer_, t, sim::TraceCategory::User, component_,
                 "slo " + name_ + (nowOver ? " breach" : " recover") +
                     " p99_ns=" + std::to_string(w.p99) +
                     " threshold_ns=" + std::to_string(thresholdNs_));
    }
  }

  if (windows_.size() == maxWindows_) windows_.pop_front();
  windows_.push_back(w);
}

}  // namespace vibe::obs
