// Chrome trace-event (Perfetto-loadable) JSON export.
//
// Bridges the simulator's observability streams into the trace-event JSON
// format that chrome://tracing and https://ui.perfetto.dev open directly:
// Tracer records become instant events (ph:"i"), profiler spans become
// complete duration events (ph:"X"), and time-series samples become
// counter tracks (ph:"C"). Events are buffered in memory and written on
// finish(), so a crashed run loses the file rather than leaving a
// truncated, unparseable one. Activated in the bench binaries via
// VIBE_TRACE_OUT=<file> (see docs/OBSERVABILITY.md). All names pass
// through obs::jsonEscape, so hostile metric/track names stay parseable.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/span.hpp"
#include "simcore/trace.hpp"

namespace vibe::obs {

class TraceJsonExporter {
 public:
  explicit TraceJsonExporter(std::string path) : path_(std::move(path)) {}
  ~TraceJsonExporter() { finish(); }

  TraceJsonExporter(const TraceJsonExporter&) = delete;
  TraceJsonExporter& operator=(const TraceJsonExporter&) = delete;

  const std::string& path() const { return path_; }
  std::size_t eventCount() const { return events_.size(); }

  /// Adds one instant event (pid = component, name = message).
  void instant(const sim::TraceRecord& r);

  /// Adds one duration event (pid = node, tid = vi, name = stage).
  void span(const SpanEvent& e);

  /// Adds one counter-track sample (ph:"C"). Perfetto renders one value
  /// track per (pid, track) pair; the time-series sampler emits its whole
  /// ring through this. Non-finite values are clamped to 0.
  void counter(std::string_view track, sim::SimTime t, double value,
               std::uint32_t pid = 0);

  /// Adds every event the profiler retained (needs setKeepEvents(true)).
  void exportSpans(const SpanProfiler& profiler);

  /// A Tracer sink that streams records into this exporter. The exporter
  /// must outlive the tracer's use of the sink.
  sim::Tracer::Sink makeSink() {
    return [this](const sim::TraceRecord& r) { instant(r); };
  }

  /// Writes the buffered events as {"traceEvents":[...]} and closes.
  /// Idempotent; returns false on I/O failure (first call only).
  bool finish();

  /// VIBE_TRACE_OUT destination, or nullptr when unset/empty.
  static const char* envPath();
  /// Exporter for VIBE_TRACE_OUT, or null when the env var is unset.
  static std::unique_ptr<TraceJsonExporter> fromEnv();

 private:
  std::string path_;
  std::vector<std::string> events_;  // pre-rendered JSON objects
  bool finished_ = false;
};

}  // namespace vibe::obs
